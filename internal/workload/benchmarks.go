package workload

import (
	"fmt"

	"pradram/internal/cpu"
)

// Each benchmark model below states the behaviour it reproduces and the
// published characteristics it is calibrated against (Table 1 row-buffer
// hit rates and traffic split; Figure 3 dirty-word distribution). The
// models are behavioural, not functional: they generate the *address and
// store-mask stream* of the benchmark, not its computation.

// newGUPS models the GUPS (giga-updates per second) microbenchmark: random
// 8-byte read-modify-write updates into a huge table. Target: ~3%/1% R/W
// row hits, 53/47 traffic, one dirty word per line.
func newGUPS(coreID int, seed uint64, region Region) cpu.Generator {
	rng := NewRNG(mixSeed("GUPS", coreID, seed))
	table := region.sub(0, 512<<20)
	// regs[0]: previous update address (row-locality neighbor seed).
	g := newVisitGen("GUPS", rng, 1)
	g.visit = func(g *visitGen) {
		addr := table.randLine(g.rng)
		if g.rng.Bool(0.05) && g.regs[0] != 0 {
			// Occasional same-row neighbor (+128B stays on the same
			// channel under row interleaving): the paper's ~3% residual.
			addr = g.regs[0] + 128
			if addr >= table.Base+table.Bytes {
				addr = table.Base
			}
		}
		g.regs[0] = addr
		word := g.rng.Intn(8)
		g.load(addr)
		g.compute(2)
		g.store(addr, word*8, 8)
		g.compute(2)
	}
	return g
}

// newLinkedList models the pointer-chasing linked-list microbenchmark:
// serially dependent loads over randomly placed 64B nodes, with a payload
// update on roughly half the nodes. Target: ~4%/1% hits, 65/35 traffic,
// one dirty word.
func newLinkedList(coreID int, seed uint64, region Region) cpu.Generator {
	rng := NewRNG(mixSeed("LinkedList", coreID, seed))
	nodes := region.sub(0, 256<<20)
	// regs[0]: previous node address (adjacent-allocation seed).
	g := newVisitGen("LinkedList", rng, 1)
	g.visit = func(g *visitGen) {
		// Mostly random node placement; a small fraction of nodes were
		// allocated adjacently (the paper's ~4% residual row locality).
		addr := nodes.randLine(g.rng)
		if g.rng.Bool(0.08) && g.regs[0] != 0 {
			addr = g.regs[0] + 128 // same-channel neighbor line
			if addr >= nodes.Base+nodes.Bytes {
				addr = nodes.Base
			}
		}
		g.regs[0] = addr
		g.loadDep(addr) // follow the next pointer
		if g.rng.Bool(0.06) && addr+128 < nodes.Base+nodes.Bytes {
			// Fat node: the payload spills into the adjacent line, read
			// independently once the pointer line is fetched — the two
			// accesses queue together and the second row-hits (the
			// paper's ~4% read locality).
			g.load(addr + 128)
		}
		g.compute(3)
		if g.rng.Bool(0.6) {
			g.store(addr, 8, 8) // update payload word
		}
		g.compute(2)
	}
	return g
}

// newEm3d models Olden's em3d: electromagnetic wave propagation on a
// bipartite graph. Each visited node reads neighbor values through
// pointers and accumulates into its own value field. Target: ~5%/1% hits,
// 51/49 traffic, 1-2 dirty words.
func newEm3d(coreID int, seed uint64, region Region) cpu.Generator {
	rng := NewRNG(mixSeed("em3d", coreID, seed))
	graph := region.sub(0, 384<<20)
	// regs[0]: previous node address (consecutive-allocation seed).
	g := newVisitGen("em3d", rng, 1)
	g.visit = func(g *visitGen) {
		node := graph.randLine(g.rng)
		if g.rng.Bool(0.1) && g.regs[0] != 0 {
			node = g.regs[0] + 128 // nodes allocated consecutively in each list
			if node >= graph.Base+graph.Bytes {
				node = graph.Base
			}
		}
		g.regs[0] = node
		g.loadDep(node) // chase the node pointer
		if g.rng.Bool(0.08) && node+128 < graph.Base+graph.Bytes {
			// Gather the neighboring from-node of the same list, placed
			// on the adjacent line by the allocator; independent load.
			g.load(node + 128)
		}
		g.compute(2)
		// Accumulate into value (+ sometimes coefficient) of the node.
		g.store(node, 0, 8)
		if g.rng.Bool(0.3) {
			g.store(node, 8, 8)
		}
		g.compute(3)
	}
	return g
}

// newMcf models SPEC mcf: network-simplex optimization — a sequential scan
// of the arcs array interleaved with random node dereferences and 4-byte
// flow updates. Target: ~18%/1% hits, 79/21 traffic, one dirty word.
func newMcf(coreID int, seed uint64, region Region) cpu.Generator {
	rng := NewRNG(mixSeed("mcf", coreID, seed))
	arcs := region.sub(0, 256<<20)
	nodesR := region.sub(256<<20, 256<<20)
	g := newVisitGen("mcf", rng, 0)
	arcScan := g.stream(arcs, 1)
	g.visit = func(g *visitGen) {
		g.load(arcScan.next()) // sequential arc
		g.compute(2)
		n1 := nodesR.randLine(g.rng)
		n2 := nodesR.randLine(g.rng)
		g.load(n1) // tail node
		g.load(n2) // head node
		g.compute(3)
		if g.rng.Bool(0.8) {
			g.store(n1, g.rng.Intn(16)*4, 4) // 4-byte potential update
		}
		g.compute(3)
	}
	return g
}

// newOmnetpp models SPEC omnetpp: discrete event simulation — scanning the
// event heap (sequential) while touching message objects scattered across
// the heap (random) and updating their headers. Target: ~47%/2% hits,
// 71/29 traffic, 1-3 dirty words.
func newOmnetpp(coreID int, seed uint64, region Region) cpu.Generator {
	rng := NewRNG(mixSeed("omnetpp", coreID, seed))
	heap := region.sub(0, 64<<20)
	msgs := region.sub(64<<20, 384<<20)
	g := newVisitGen("omnetpp", rng, 0)
	heapScan := g.stream(heap, 1)
	g.visit = func(g *visitGen) {
		g.load(heapScan.next())
		g.load(heapScan.next())
		g.compute(3)
		m := msgs.randLine(g.rng)
		g.load(m)
		g.compute(2)
		if g.rng.Bool(0.9) {
			// Update the message header: timestamp + sometimes priority
			// and queue pointers.
			g.store(m, 0, 8)
			if g.rng.Bool(0.4) {
				g.store(m, 8, 8)
			}
			if g.rng.Bool(0.2) {
				g.store(m, 16, 8)
			}
		}
		g.compute(3)
	}
	return g
}

// newLibquantum models SPEC libquantum: streaming over the quantum
// register (an array of 16-byte nodes), toggling each node's state —
// sequential read-modify-write that eventually dirties whole lines — plus
// a slow read-only scan of the operator table. Target: ~73%/48% hits
// (bounded by the controller's 4-access row-hit cap), 66/34 traffic,
// mostly fully-dirty lines.
func newLibquantum(coreID int, seed uint64, region Region) cpu.Generator {
	rng := NewRNG(mixSeed("libquantum", coreID, seed))
	state := region.sub(0, 256<<20)
	ops := region.sub(256<<20, 128<<20)
	// regs[0]: current register-node index; regs[1]: current operator line.
	g := newVisitGen("libquantum", rng, 2)
	opScan := g.stream(ops, 1)
	g.visit = func(g *visitGen) {
		node := g.regs[0]
		line := state.Base + (node/4)*64
		if line >= state.Base+state.Bytes {
			node = 0
			line = state.Base
		}
		g.load(line)
		g.compute(1)
		g.store(line, int(node%4)*16, 16)
		// Operator table: re-read the current line, advancing every 4
		// node visits (so reads outnumber writebacks ~2:1 at DRAM).
		if node%4 == 0 {
			g.regs[1] = opScan.next()
		}
		g.load(g.regs[1])
		g.compute(2)
		g.regs[0] = node + 1
	}
	return g
}

// newLbm models SPEC lbm: a lattice-Boltzmann stencil sweep. Each cell
// update reads the source grid sequentially and scatters distribution
// values into the destination grid: the z-direction neighbors are adjacent
// (a sequential write substream) while the y/x-direction neighbors are a
// full grid-plane away (a write substream that crosses a DRAM row every
// store, giving writes the poor row locality the paper measures). Target:
// ~29%/18% hits, 57/43 traffic, ~2-4 dirty words per written line.
func newLbm(coreID int, seed uint64, region Region) cpu.Generator {
	rng := NewRNG(mixSeed("lbm", coreID, seed))
	src := region.sub(0, 128<<20)
	dstNear := region.sub(128<<20, 128<<20)
	dstFarY := region.sub(256<<20, 128<<20)
	dstFarX := region.sub(384<<20, 128<<20)
	// regs[0]: current cell counter.
	g := newVisitGen("lbm", rng, 1)
	srcScan := g.stream(src, 1)
	// 256 lines = one full DRAM row (128 lines x 2 channels): consecutive
	// far-plane writes land in consecutive rows of the same bank.
	farY := g.stream(dstFarY, 256)
	farX := g.stream(dstFarX, 256)
	g.visit = func(g *visitGen) {
		cell := g.regs[0]
		g.load(srcScan.next())
		g.compute(3)
		// z-neighbors: two 16B distribution pairs per adjacent line (the
		// line advances every other cell, accumulating 4 dirty words).
		nearAddr := dstNear.Base + ((cell/2)%dstNear.lines())*64
		g.store(nearAddr, int(cell%2)*32, 16)
		g.compute(1)
		// y/x-neighbors: 16-24B scatters one grid plane/column away.
		g.store(farY.next(), g.rng.Intn(5)*8, 24)
		g.store(farX.next(), g.rng.Intn(6)*8, 16)
		g.compute(3)
		g.regs[0] = cell + 1
	}
	return g
}

// newBzip2 models SPEC bzip2: block-sorting compression — compute-bound
// (the paper's one non-memory-intensive application) with a medium working
// set that partially fits the shared L2: sequential pointer-array scans
// plus random block-byte accesses, with small mixed-size updates. Target:
// low traffic overall, ~32%/1% hits, 69/31 traffic, mixed dirty words.
func newBzip2(coreID int, seed uint64, region Region) cpu.Generator {
	rng := NewRNG(mixSeed("bzip2", coreID, seed))
	block := region.sub(0, 128<<20)
	ptrs := region.sub(128<<20, 64<<20)
	g := newVisitGen("bzip2", rng, 0)
	ptrScan := g.stream(ptrs, 1)
	g.visit = func(g *visitGen) {
		g.compute(8)
		g.load(ptrScan.next())
		g.compute(4)
		b := block.randLine(g.rng)
		g.load(b)
		g.compute(4)
		if g.rng.Bool(0.8) {
			// Mixed-size updates: byte counters to full words.
			size := 1 << uint(g.rng.Intn(4)) // 1,2,4,8
			g.store(b, g.rng.Intn(64/size)*size, size)
		}
		if g.rng.Bool(0.25) {
			b2 := block.randLine(g.rng)
			g.load(b2)
			g.store(b2, g.rng.Intn(16)*4, 4)
		}
		g.compute(4)
	}
	return g
}

// DirtyProfile summarizes a generator's intrinsic store pattern for
// documentation and sanity tests: approximate dirty words per eviction.
func DirtyProfile(name string) (low, high int, err error) {
	switch name {
	case "GUPS", "LinkedList", "mcf":
		return 1, 1, nil
	case "em3d":
		return 1, 2, nil
	case "omnetpp":
		return 1, 3, nil
	case "lbm":
		return 2, 4, nil
	case "bzip2":
		return 1, 8, nil
	case "libquantum":
		return 6, 8, nil
	case "HammerSingle", "HammerDouble", "RowStorm", "HammerDecoy":
		return 0, 0, nil // read-only attack streams: no dirty evictions
	}
	return 0, 0, fmt.Errorf("workload: unknown benchmark %q", name)
}

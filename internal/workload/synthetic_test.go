package workload

import (
	"testing"

	"pradram/internal/core"
	"pradram/internal/cpu"
)

func TestSyntheticValidation(t *testing.T) {
	bad := []SyntheticParams{
		{DirtyWords: 0},
		{DirtyWords: 9},
		{DirtyWords: 1, WriteProb: 1.5},
		{DirtyWords: 1, SeqFraction: -0.1},
		{DirtyWords: 1, ComputeGap: -1},
	}
	for i, p := range bad {
		if _, err := NewSynthetic(p); err == nil {
			t.Errorf("case %d: %+v must fail validation", i, p)
		}
	}
	if _, err := NewSynthetic(SyntheticParams{DirtyWords: 4, WriteProb: 0.5}); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

func TestSyntheticDirtyWordCount(t *testing.T) {
	for k := 1; k <= 8; k++ {
		mk, err := NewSynthetic(SyntheticParams{DirtyWords: k, WriteProb: 1})
		if err != nil {
			t.Fatal(err)
		}
		g := mk(0, 1, testRegion())
		var op cpu.Op
		// Collect the stores of one visit and union their masks per line.
		// The final visit may be cut off mid-stream, so its line is
		// excluded from the assertion.
		perLine := map[uint64]core.ByteMask{}
		var lastLine uint64
		for i := 0; i < 4000; i++ {
			g.Next(&op)
			if op.Kind == cpu.Store {
				lastLine = op.Addr &^ 63
				perLine[lastLine] |= op.Bytes
			}
		}
		delete(perLine, lastLine)
		if len(perLine) == 0 {
			t.Fatalf("k=%d: no stores", k)
		}
		for addr, mask := range perLine {
			if got := mask.WordMask().Granularity(); got != k {
				t.Fatalf("k=%d: line %#x has %d dirty words", k, addr, got)
			}
		}
	}
}

func TestSyntheticWriteProbZero(t *testing.T) {
	mk, err := NewSynthetic(SyntheticParams{DirtyWords: 1, WriteProb: 0})
	if err != nil {
		t.Fatal(err)
	}
	g := mk(0, 1, testRegion())
	var op cpu.Op
	for i := 0; i < 2000; i++ {
		g.Next(&op)
		if op.Kind == cpu.Store {
			t.Fatal("WriteProb=0 must generate no stores")
		}
	}
}

func TestSyntheticSequentialFraction(t *testing.T) {
	mk, err := NewSynthetic(SyntheticParams{DirtyWords: 1, WriteProb: 0, SeqFraction: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := mk(0, 1, testRegion())
	var op cpu.Op
	var prev uint64
	seq := 0
	loads := 0
	for i := 0; i < 3000; i++ {
		g.Next(&op)
		if op.Kind != cpu.Load {
			continue
		}
		loads++
		if prev != 0 && op.Addr == prev+128 {
			seq++
		}
		prev = op.Addr
	}
	// The first visit is random; everything after continues sequentially.
	if seq < loads-2 {
		t.Errorf("sequential loads = %d of %d", seq, loads)
	}
}

func TestSyntheticDeterministicPerCoreSeed(t *testing.T) {
	mk, _ := NewSynthetic(SyntheticParams{DirtyWords: 2, WriteProb: 0.5})
	a, b := mk(0, 7, testRegion()), mk(0, 7, testRegion())
	c := mk(1, 7, testRegion())
	var oa, ob, oc cpu.Op
	diverged := false
	for i := 0; i < 1000; i++ {
		a.Next(&oa)
		b.Next(&ob)
		c.Next(&oc)
		if oa != ob {
			t.Fatal("same core+seed must match")
		}
		if oa != oc {
			diverged = true
		}
	}
	if !diverged {
		t.Error("different cores must diverge")
	}
}

package workload

// RNG is a splitmix64 pseudo-random generator. Every stochastic choice in
// the workload generators flows through it so runs are reproducible
// bit-for-bit from the seed (the simulator never touches math/rand or the
// wall clock).
type RNG struct{ s uint64 }

// NewRNG seeds a generator. Seed 0 is remapped so the stream is never
// degenerate.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{s: seed}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// State returns the generator's internal position for checkpointing.
func (r *RNG) State() uint64 { return r.s }

// SetState restores a position previously returned by State.
func (r *RNG) SetState(s uint64) { r.s = s }

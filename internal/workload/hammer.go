package workload

import (
	"fmt"
	"sort"

	"pradram/internal/cpu"
)

// Adversarial RowHammer generators (DESIGN.md §4g). Unlike the benchmark
// models, these are built for *analytic predictability*: every generator
// confines all of its accesses to one (channel, rank, bank), never issues
// two consecutive accesses to the same row, serializes every access behind
// the previous one (dependent loads), and guarantees every cache line is
// evicted before its reuse: all accesses of a round share one column, so
// under the row-interleaved mapping they collide in two L2 sets (one per
// row parity) with far more lines than the 8 ways — the round evicts
// itself, and no line recurs until its column comes around again.
// Under those invariants every access is a cache miss that reaches DRAM in
// program order and activates its row exactly once — regardless of paging
// policy, refresh discipline, or power-down state — so the per-row
// activation counts after n accesses have the closed forms HammerCounts
// computes, and the generator doubles as an end-to-end correctness oracle
// for the dram package's activation counters.
//
// The address layout hardcodes the paper's default organization (2
// channels, 2 ranks, 8 banks, 128 lines/row) and the row-interleaved
// mapping (line = ch | col<<1 | bank<<8 | rank<<11 | row<<12): channel 0,
// rank 0, bank coreID mod 8, with row indices relative to the core's
// region (1GB region = 4096 rows of 256KB). The oracle tests verify the
// confinement through the real AddressMapper rather than trusting this.

const (
	// hammerCols is the col-cursor period: lines per row in the default
	// geometry. The column advances once per round and every access of a
	// round uses the round's column, so a round's lines land in two L2
	// sets (the column picks the set, the row only its parity bit) and
	// evict each other — a line's next reuse is a full column lap away
	// and always misses.
	hammerCols = 128
	// hammerDecoys is the decoy visits per aggressor visit for the
	// single- and double-sided patterns.
	hammerDecoys = 32
	// decoyDilute is the decoy visits per aggressor visit for the
	// decoy-interleaved pattern (a stealthier, lower-rate hammer).
	decoyDilute = 8
	// decoyAggs is the rotating aggressor count of the decoy-interleaved
	// pattern.
	decoyAggs = 4
)

// hammerLayout fixes where each pattern's rows live, derived only from the
// region size so generators and the analytic oracle always agree. Rows are
// region-relative indices (256KB per row index under the default
// geometry); the sub-ranges never overlap: storm [rows/8, rows/4),
// aggressors [rows/4, rows/4+7], decoy pool [rows/2, rows/2+pool).
type hammerLayout struct {
	rows      int // row indices the region spans
	agg       int // primary aggressor row (HammerDouble hammers agg-1, agg+1)
	stormBase int
	stormN    int // rows in the RowStorm sweep
	decoyBase int
	decoyPool int // distinct decoy rows
}

func layoutFor(region Region) hammerLayout {
	rows := int(region.Bytes >> 18)
	return hammerLayout{
		rows:      rows,
		agg:       rows / 4,
		stormBase: rows / 8,
		stormN:    min(256, rows/8),
		decoyBase: rows / 2,
		decoyPool: min(64, rows/8),
	}
}

// hammerAddr composes the byte address of (region-relative row, col) in
// the core's target bank: channel 0, rank 0 under the row-interleaved
// mapping.
func hammerAddr(base uint64, bank, row, col int) uint64 {
	return base + (uint64(row)<<12|uint64(bank)<<8|uint64(col)<<1)<<6
}

// hammerBank is the bank a core's hammer targets (spreads cores across
// banks in multi-core runs; rows never collide anyway — regions are
// row-disjoint).
func hammerBank(coreID int) int { return coreID % 8 }

// decoyVisit emits the i-th decoy access: the pool is walked round-robin,
// at the column of the round's aggressor access so the round self-evicts
// (see the package comment above).
func decoyVisit(g *visitGen, base uint64, bank int, l hammerLayout, i uint64, col int) {
	row := l.decoyBase + int(i%uint64(l.decoyPool))
	g.loadDep(hammerAddr(base, bank, row, col))
}

// newHammerSingle is the classic single-sided hammer: one aggressor row
// activated once per round, hidden among hammerDecoys decoy accesses that
// keep the cache from absorbing the aggressor line.
// regs[0]: aggressor visit counter; regs[1]: decoy visit counter.
func newHammerSingle(coreID int, seed uint64, region Region) cpu.Generator {
	l := layoutFor(region)
	bank := hammerBank(coreID)
	g := newVisitGen("HammerSingle", NewRNG(mixSeed("HammerSingle", coreID, seed)), 2)
	g.visit = func(g *visitGen) {
		a := g.regs[0]
		col := int(a % hammerCols)
		g.loadDep(hammerAddr(region.Base, bank, l.agg, col))
		g.regs[0] = a + 1
		for k := 0; k < hammerDecoys; k++ {
			decoyVisit(g, region.Base, bank, l, g.regs[1], col)
			g.regs[1]++
		}
	}
	return g
}

// newHammerDouble is the double-sided hammer: the two rows sandwiching the
// victim row l.agg are activated back to back each round, then the decoys.
// regs[0]: round counter; regs[1]: decoy visit counter.
func newHammerDouble(coreID int, seed uint64, region Region) cpu.Generator {
	l := layoutFor(region)
	bank := hammerBank(coreID)
	g := newVisitGen("HammerDouble", NewRNG(mixSeed("HammerDouble", coreID, seed)), 2)
	g.visit = func(g *visitGen) {
		a := g.regs[0]
		col := int(a % hammerCols)
		g.loadDep(hammerAddr(region.Base, bank, l.agg-1, col))
		g.loadDep(hammerAddr(region.Base, bank, l.agg+1, col))
		g.regs[0] = a + 1
		for k := 0; k < hammerDecoys; k++ {
			decoyVisit(g, region.Base, bank, l, g.regs[1], col)
			g.regs[1]++
		}
	}
	return g
}

// newRowStorm is the row-conflict storm: a cyclic sweep over stormN rows
// of one bank, every access a row conflict. No single row gets hot, but
// the bank's activation rate — and a bounded counter table — is stressed
// uniformly. regs[0]: visit counter.
func newRowStorm(coreID int, seed uint64, region Region) cpu.Generator {
	l := layoutFor(region)
	bank := hammerBank(coreID)
	g := newVisitGen("RowStorm", NewRNG(mixSeed("RowStorm", coreID, seed)), 1)
	g.visit = func(g *visitGen) {
		for k := 0; k < 32; k++ { // batch size is invisible to the op stream
			i := g.regs[0]
			row := l.stormBase + int(i%uint64(l.stormN))
			col := int(i / uint64(l.stormN) % hammerCols)
			g.loadDep(hammerAddr(region.Base, bank, row, col))
			g.regs[0] = i + 1
		}
	}
	return g
}

// newHammerDecoy is the decoy-interleaved pattern: decoyAggs aggressor
// rows are hammered in rotation, each visit diluted by decoyDilute decoy
// accesses — a slower, stealthier attack that probes threshold detectors.
// regs[0]: aggressor visit counter; regs[1]: decoy visit counter.
func newHammerDecoy(coreID int, seed uint64, region Region) cpu.Generator {
	l := layoutFor(region)
	bank := hammerBank(coreID)
	g := newVisitGen("HammerDecoy", NewRNG(mixSeed("HammerDecoy", coreID, seed)), 2)
	g.visit = func(g *visitGen) {
		a := g.regs[0]
		row := l.agg + 2*int(a%decoyAggs)
		col := int(a / decoyAggs % hammerCols)
		g.loadDep(hammerAddr(region.Base, bank, row, col))
		g.regs[0] = a + 1
		for k := 0; k < decoyDilute; k++ {
			decoyVisit(g, region.Base, bank, l, g.regs[1], col)
			g.regs[1]++
		}
	}
	return g
}

// hammers is the adversarial-generator registry. It is deliberately
// separate from the benchmarks map: Names() keeps meaning "the paper's 8
// calibrated benchmarks" (the calibration suite iterates it), while
// New/Canonical/Set resolve hammer names too.
var hammers = map[string]Maker{
	"HammerSingle": newHammerSingle,
	"HammerDouble": newHammerDouble,
	"RowStorm":     newRowStorm,
	"HammerDecoy":  newHammerDecoy,
}

// HammerNames returns the adversarial generator names in sorted order.
func HammerNames() []string {
	names := make([]string, 0, len(hammers))
	for n := range hammers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// HammerTarget reports the (rank, bank) every access of a hammer
// generator lands in, and the absolute row index its region-relative row 0
// maps to, under the default geometry and row-interleaved mapping.
func HammerTarget(coreID int, region Region) (rank, bank, rowBase int) {
	return 0, hammerBank(coreID), int(region.Base >> 18)
}

// residues returns how often each residue class mod m occurs in [0, n):
// n/m everywhere, plus one for the first n%m classes.
func residues(n int64, m int) []int64 {
	out := make([]int64, m)
	for j := range out {
		out[j] = n / int64(m)
		if int64(j) < n%int64(m) {
			out[j]++
		}
	}
	return out
}

// HammerCounts returns the exact per-row activation counts after a hammer
// generator's first n accesses, keyed by absolute row index (zero-count
// rows omitted). This is the analytic oracle: a simulation that drives the
// generator for exactly n DRAM accesses must show these counts in its
// activation-counter table — any deviation is a counting bug.
func HammerCounts(name string, coreID int, region Region, n int64) (map[int]int64, error) {
	l := layoutFor(region)
	_, _, rowBase := HammerTarget(coreID, region)
	counts := map[int]int64{}
	addRel := func(row int, c int64) {
		if c > 0 {
			counts[rowBase+row] += c
		}
	}
	// addDecoys distributes nd decoy visits over the round-robin pool.
	addDecoys := func(nd int64) {
		for j, c := range residues(nd, l.decoyPool) {
			addRel(l.decoyBase+j, c)
		}
	}
	switch Canonical(name) {
	case "HammerSingle":
		const round = 1 + hammerDecoys
		full, rem := n/round, n%round
		agg := full
		if rem >= 1 {
			agg++
		}
		addRel(l.agg, agg)
		addDecoys(full*hammerDecoys + max(rem-1, 0))
	case "HammerDouble":
		const round = 2 + hammerDecoys
		full, rem := n/round, n%round
		a1, a2 := full, full
		if rem >= 1 {
			a1++
		}
		if rem >= 2 {
			a2++
		}
		addRel(l.agg-1, a1)
		addRel(l.agg+1, a2)
		addDecoys(full*hammerDecoys + max(rem-2, 0))
	case "RowStorm":
		for j, c := range residues(n, l.stormN) {
			addRel(l.stormBase+j, c)
		}
	case "HammerDecoy":
		const round = 1 + decoyDilute
		full, rem := n/round, n%round
		na := full
		if rem >= 1 {
			na++
		}
		for j, c := range residues(na, decoyAggs) {
			addRel(l.agg+2*j, c)
		}
		addDecoys(full*decoyDilute + max(rem-1, 0))
	default:
		return nil, fmt.Errorf("workload: unknown hammer generator %q (have %v)", name, HammerNames())
	}
	return counts, nil
}

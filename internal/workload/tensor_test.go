package workload

import (
	"testing"

	"pradram/internal/cpu"
)

func tensorTestRegion() Region { return Region{Base: 0, Bytes: 1 << 30} }

// emulateEpochActs replays the access stream for whole epochs with an
// independent open-row model and counts activations — a brute-force check
// of the closed form (it shares only access() with the oracle, which is
// the point: the stream is the contract).
func emulateEpochActs(t *testing.T, name string, cap int, epochs int) int64 {
	t.Helper()
	sp, err := TensorSpecFor(name)
	if err != nil {
		t.Fatal(err)
	}
	region := tensorTestRegion()
	open := map[int]int{}
	hits := map[int]int{}
	acts := int64(0)
	for step := uint64(0); step < uint64(sp.StepsPerEpoch()*epochs); step++ {
		for tn := 0; tn < 3; tn++ {
			bank, row, col := sp.access(region, 0, step, tn)
			if col < 0 || col >= 128 {
				t.Fatalf("%s step %d: column %d outside a row", name, step, col)
			}
			if r, ok := open[bank]; ok && r == row && hits[bank] < cap {
				hits[bank]++
				continue
			}
			open[bank] = row
			hits[bank] = 1
			acts++
		}
	}
	return acts
}

func TestTensorEpochActsClosedForm(t *testing.T) {
	const cap = 4
	totals := map[string]int64{}
	for _, name := range TensorNames() {
		total, per, err := TensorEpochActs(name, cap)
		if err != nil {
			t.Fatal(err)
		}
		if got := per[0] + per[1] + per[2]; got != total {
			t.Errorf("%s: per-tensor %v does not sum to total %d", name, per, total)
		}
		// Multi-epoch emulation: the closed form must scale linearly
		// (epoch shifts put each epoch on fresh rows, so no cross-epoch
		// row reuse perturbs the count).
		for _, epochs := range []int{1, 3} {
			if got := emulateEpochActs(t, name, cap, epochs); got != total*int64(epochs) {
				t.Errorf("%s: emulated %d acts over %d epochs, closed form %d",
					name, got, epochs, total*int64(epochs))
			}
		}
		totals[name] = total
	}
	// The permutations must have genuinely different row locality.
	if totals["TensorKCP"] == totals["TensorPKC"] || totals["TensorKCP"] == totals["TensorCPK"] ||
		totals["TensorPKC"] == totals["TensorCPK"] {
		t.Errorf("permutation totals not pairwise distinct: %v", totals)
	}
}

// TestTensorCountsMatchEmulation cross-checks the oracle walk against the
// independent emulator at an awkward stopping point (mid-epoch,
// mid-step).
func TestTensorCountsMatchEmulation(t *testing.T) {
	const cap = 4
	region := tensorTestRegion()
	for _, name := range TensorNames() {
		total, _, err := TensorEpochActs(name, cap)
		if err != nil {
			t.Fatal(err)
		}
		target := total + total/3 // stops partway through the second epoch
		counts, err := TensorCounts(name, 0, region, cap, target)
		if err != nil {
			t.Fatal(err)
		}
		sum := int64(0)
		_, banks, rowBase := TensorTarget(0, region)
		bankSet := map[int]bool{banks[0]: true, banks[1]: true, banks[2]: true}
		for k, v := range counts {
			sum += v
			if !bankSet[k.Bank] {
				t.Errorf("%s: activation in unexpected bank %d", name, k.Bank)
			}
			if k.Row < rowBase || k.Row >= rowBase+2*tensorRowBlock {
				t.Errorf("%s: row %d outside the first two epoch blocks", name, k.Row)
			}
		}
		if sum != target {
			t.Errorf("%s: counts sum to %d, want %d", name, sum, target)
		}
	}
}

// TestTensorGeneratorEmitsOracleStream pulls ops straight off the
// generator and requires them to be exactly the dependent loads access()
// predicts — the generator and the analytic oracle cannot drift apart.
func TestTensorGeneratorEmitsOracleStream(t *testing.T) {
	region := tensorTestRegion()
	for _, name := range TensorNames() {
		sp, err := TensorSpecFor(name)
		if err != nil {
			t.Fatal(err)
		}
		gen, err := New(name, 0, 1, region)
		if err != nil {
			t.Fatal(err)
		}
		var op cpu.Op
		for step := uint64(0); step < uint64(sp.StepsPerEpoch()+5); step++ {
			for tn := 0; tn < 3; tn++ {
				gen.Next(&op)
				bank, row, col := sp.access(region, 0, step, tn)
				want := hammerAddr(region.Base, bank, row, col)
				if op.Kind != cpu.Load || !op.Dep || op.Addr != want {
					t.Fatalf("%s step %d tensor %d: op %+v, want dep load at %#x",
						name, step, tn, op, want)
				}
			}
		}
	}
}

func TestMixSpecParsing(t *testing.T) {
	apps, err := Set("gups:2,linkedlist:2", 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"GUPS", "GUPS", "LinkedList", "LinkedList"}
	for i := range want {
		if apps[i] != want[i] {
			t.Fatalf("apps = %v, want %v", apps, want)
		}
	}
	if got := Canonical("gups:2, linkedlist :2"); got != "GUPS:2,LinkedList:2" {
		t.Errorf("Canonical = %q", got)
	}
	if got := Canonical("tensorkcp,GUPS:3"); got != "TensorKCP,GUPS:3" {
		t.Errorf("Canonical = %q", got)
	}
	if _, err := Set("gups:2,linkedlist", 4); err == nil {
		t.Error("count mismatch (3 instances, 4 cores) must error")
	}
	if _, err := Set("gups:0,linkedlist:4", 4); err == nil {
		t.Error("zero instance count must error")
	}
	if _, err := Set("MIX1:2,gups:2", 4); err == nil {
		t.Error("nesting a MIX inside a spec must error")
	}
	if _, err := Set("nosuch:4", 4); err == nil {
		t.Error("unknown component must error")
	}
	// Unparseable specs pass through Canonical unchanged (the error
	// surfaces in Set).
	if got := Canonical("nosuch:4"); got != "nosuch:4" {
		t.Errorf("Canonical(%q) = %q", "nosuch:4", got)
	}
}

package workload

import (
	"strings"
	"testing"

	"pradram/internal/core"
	"pradram/internal/cpu"
)

func testRegion() Region { return Region{Base: 0, Bytes: 1 << 30} }

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce the same stream")
		}
	}
	if NewRNG(1).Uint64() == NewRNG(2).Uint64() {
		t.Error("different seeds should diverge")
	}
	// Seed 0 is remapped, not degenerate.
	z := NewRNG(0)
	if z.Uint64() == 0 && z.Uint64() == 0 {
		t.Error("seed 0 must not be degenerate")
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
	// Bool(1) is always true, Bool(0) always false.
	if !r.Bool(1.0) || r.Bool(0.0) {
		t.Error("Bool boundary behaviour wrong")
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"GUPS", "LinkedList", "bzip2", "em3d", "lbm", "libquantum", "mcf", "omnetpp"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("benchmarks = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Names()[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestNewRejectsUnknownAndSmallRegion(t *testing.T) {
	if _, err := New("nosuch", 0, 1, testRegion()); err == nil {
		t.Error("unknown benchmark must error")
	}
	if _, err := New("GUPS", 0, 1, Region{Bytes: 1 << 20}); err == nil {
		t.Error("tiny region must error")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	for _, name := range Names() {
		g1, err := New(name, 0, 99, testRegion())
		if err != nil {
			t.Fatal(err)
		}
		g2, _ := New(name, 0, 99, testRegion())
		var o1, o2 cpu.Op
		for i := 0; i < 2000; i++ {
			g1.Next(&o1)
			g2.Next(&o2)
			if o1 != o2 {
				t.Fatalf("%s: op %d diverges: %+v vs %+v", name, i, o1, o2)
			}
		}
		g3, _ := New(name, 1, 99, testRegion())
		diverged := false
		for i := 0; i < 2000; i++ {
			g1.Next(&o1)
			g3.Next(&o2)
			if o1 != o2 {
				diverged = true
				break
			}
		}
		if !diverged && name != "libquantum" && name != "lbm" {
			// Pure streaming benchmarks may legitimately match; the
			// stochastic ones must not.
			t.Errorf("%s: different cores must see different streams", name)
		}
	}
}

func TestAddressesStayInRegion(t *testing.T) {
	region := Region{Base: 2 << 30, Bytes: 1 << 30}
	for _, name := range Names() {
		g, err := New(name, 0, 5, region)
		if err != nil {
			t.Fatal(err)
		}
		var op cpu.Op
		for i := 0; i < 20000; i++ {
			g.Next(&op)
			if op.Kind == cpu.Compute {
				continue
			}
			if op.Addr < region.Base || op.Addr >= region.Base+region.Bytes {
				t.Fatalf("%s: address %#x outside region [%#x, %#x)", name, op.Addr, region.Base, region.Base+region.Bytes)
			}
		}
	}
}

func TestStoreMasksValid(t *testing.T) {
	for _, name := range Names() {
		g, _ := New(name, 0, 5, testRegion())
		var op cpu.Op
		stores := 0
		for i := 0; i < 20000 && stores < 100; i++ {
			g.Next(&op)
			if op.Kind != cpu.Store {
				continue
			}
			stores++
			if op.Bytes == 0 {
				t.Fatalf("%s: store with empty byte mask", name)
			}
			// The mask must cover the addressed offset.
			off := int(op.Addr & 63)
			if op.Bytes&(core.ByteMask(1)<<uint(off)) == 0 {
				t.Fatalf("%s: store mask %v does not cover offset %d", name, op.Bytes, off)
			}
		}
		if stores == 0 {
			t.Errorf("%s: no stores generated", name)
		}
	}
}

// Rough op-mix sanity: every benchmark generates loads, and the paper's
// compute-bound outlier (bzip2) is markedly less memory-intensive.
func TestMemoryIntensityOrdering(t *testing.T) {
	intensity := func(name string) float64 {
		g, _ := New(name, 0, 5, testRegion())
		var op cpu.Op
		mem := 0
		const n = 50000
		for i := 0; i < n; i++ {
			g.Next(&op)
			if op.Kind != cpu.Compute {
				mem++
			}
		}
		return float64(mem) / n
	}
	bzip := intensity("bzip2")
	for _, name := range []string{"GUPS", "libquantum", "lbm", "mcf", "em3d", "LinkedList"} {
		if got := intensity(name); got <= bzip {
			t.Errorf("%s intensity %.2f must exceed bzip2's %.2f", name, got, bzip)
		}
	}
}

func TestPointerChasersEmitDependentLoads(t *testing.T) {
	for _, name := range []string{"LinkedList", "em3d"} {
		g, _ := New(name, 0, 5, testRegion())
		var op cpu.Op
		deps := 0
		for i := 0; i < 5000; i++ {
			g.Next(&op)
			if op.Kind == cpu.Load && op.Dep {
				deps++
			}
		}
		if deps == 0 {
			t.Errorf("%s must emit dependent loads", name)
		}
	}
}

func TestSeqStreamWraps(t *testing.T) {
	r := Region{Base: 0, Bytes: 4 * 64}
	s := newSeqStream(r, 1)
	seen := map[uint64]int{}
	for i := 0; i < 8; i++ {
		seen[s.next()]++
	}
	if len(seen) != 4 {
		t.Errorf("stream visited %d lines, want 4", len(seen))
	}
	for a, c := range seen {
		if c != 2 {
			t.Errorf("line %#x visited %d times, want 2", a, c)
		}
	}
	// Zero stride is coerced to 1.
	s2 := newSeqStream(r, 0)
	if s2.next() == s2.next() {
		t.Error("zero-stride stream must still advance")
	}
}

func TestMixesAndSets(t *testing.T) {
	if len(MixNames()) != 6 {
		t.Fatal("six mixes expected (Table 4)")
	}
	for _, m := range MixNames() {
		apps, err := Set(m, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(apps) != 4 {
			t.Errorf("%s has %d apps, want 4", m, len(apps))
		}
		for _, a := range apps {
			if _, err := New(a, 0, 1, testRegion()); err != nil {
				t.Errorf("%s references unknown app %s", m, a)
			}
		}
	}
	// MIX1 must match Table 4.
	apps, _ := Set("MIX1", 4)
	want := []string{"bzip2", "lbm", "libquantum", "omnetpp"}
	for i := range want {
		if apps[i] != want[i] {
			t.Errorf("MIX1[%d] = %s, want %s", i, apps[i], want[i])
		}
	}
	// A benchmark name replicates across cores.
	apps, err := Set("GUPS", 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range apps {
		if a != "GUPS" {
			t.Error("single-benchmark set must replicate")
		}
	}
	if _, err := Set("MIX1", 2); err == nil {
		t.Error("mix with wrong core count must error")
	}
	if _, err := Set("nosuch", 4); err == nil {
		t.Error("unknown set must error")
	}
	if got := len(SetNames()); got != 21 {
		t.Errorf("SetNames() has %d entries, want 21 (8 benchmarks + 4 hammers + 3 tensors + 6 mixes)", got)
	}
	// The Set error message enumerates the registry, not a stale list.
	if _, err := Set("nosuch", 4); err == nil || !strings.Contains(err.Error(), "HammerSingle") {
		t.Errorf("Set error must enumerate registry names, got %v", err)
	}
}

func TestDirtyProfile(t *testing.T) {
	for _, name := range Names() {
		lo, hi, err := DirtyProfile(name)
		if err != nil {
			t.Fatal(err)
		}
		if lo < 1 || hi > 8 || lo > hi {
			t.Errorf("%s: profile [%d,%d] out of range", name, lo, hi)
		}
	}
	if _, _, err := DirtyProfile("nosuch"); err == nil {
		t.Error("unknown benchmark must error")
	}
}

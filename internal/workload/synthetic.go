package workload

import (
	"fmt"

	"pradram/internal/core"
	"pradram/internal/cpu"
)

// SyntheticParams parameterizes the controlled microbenchmark used by the
// sensitivity experiments: unlike the benchmark models, every knob is
// explicit, so sweeps isolate one variable at a time.
type SyntheticParams struct {
	// DirtyWords is how many 8-byte words each written line accumulates
	// before eviction (1..8) — the x-axis of the fundamental PRA curve.
	DirtyWords int
	// WriteProb is the probability a visited line is written at all.
	WriteProb float64
	// SeqFraction is the fraction of visits that continue sequentially
	// from the previous line (row locality knob); the rest are random.
	SeqFraction float64
	// ComputeGap is the number of compute ops between memory visits
	// (memory-intensity knob).
	ComputeGap int
	// RegionBytes bounds the working set (default 512MB: far beyond L2).
	RegionBytes uint64
}

// Validate reports the first bad parameter.
func (p SyntheticParams) Validate() error {
	switch {
	case p.DirtyWords < 1 || p.DirtyWords > core.WordsPerLine:
		return fmt.Errorf("workload: DirtyWords %d out of [1,8]", p.DirtyWords)
	case p.WriteProb < 0 || p.WriteProb > 1:
		return fmt.Errorf("workload: WriteProb %v out of [0,1]", p.WriteProb)
	case p.SeqFraction < 0 || p.SeqFraction > 1:
		return fmt.Errorf("workload: SeqFraction %v out of [0,1]", p.SeqFraction)
	case p.ComputeGap < 0:
		return fmt.Errorf("workload: negative ComputeGap")
	}
	return nil
}

// NewSynthetic returns a Maker for the parameterized microbenchmark.
// Use it through sim.Config.Generator.
func NewSynthetic(p SyntheticParams) (Maker, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.RegionBytes == 0 {
		p.RegionBytes = 512 << 20
	}
	return func(coreID int, seed uint64, region Region) cpu.Generator {
		rng := NewRNG(mixSeed(fmt.Sprintf("synthetic-%d", p.DirtyWords), coreID, seed))
		area := region.sub(0, p.RegionBytes)
		g := &visitGen{name: "synthetic", rng: rng}
		var prev uint64
		g.visit = func(g *visitGen) {
			addr := area.randLine(g.rng)
			if g.rng.Bool(p.SeqFraction) && prev != 0 {
				addr = prev + 128 // same-channel next line
				if addr >= area.Base+area.Bytes {
					addr = area.Base
				}
			}
			prev = addr
			g.load(addr)
			g.compute(p.ComputeGap / 2)
			if g.rng.Bool(p.WriteProb) {
				// Dirty exactly DirtyWords distinct words, starting at a
				// random aligned word so masks vary across lines.
				start := g.rng.Intn(core.WordsPerLine)
				for w := 0; w < p.DirtyWords; w++ {
					g.store(addr, ((start+w)%core.WordsPerLine)*8, 8)
				}
			}
			g.compute(p.ComputeGap - p.ComputeGap/2)
		}
		return g
	}, nil
}

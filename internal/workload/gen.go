// Package workload provides synthetic instruction-stream generators that
// stand in for the paper's benchmarks (SPEC CPU2006 bzip2/lbm/libquantum/
// mcf/omnetpp, Olden em3d, and the GUPS and LinkedList microbenchmarks),
// which cannot be vendored here. Each generator is a small model of the
// benchmark's memory behaviour — working-set size, sequential-run
// structure, read/write mix, dependence chains, and store byte patterns —
// calibrated against the characteristics the paper publishes per benchmark:
// Table 1 (row-buffer hit rates, traffic split, activation split) and
// Figure 3 (dirty words per evicted line). The calibration is enforced by
// tests in the sim package.
package workload

import (
	"fmt"
	"sort"
	"strings"

	"pradram/internal/checkpoint"
	"pradram/internal/core"
	"pradram/internal/cpu"
)

// Region is the private physical-address slab one core's workload instance
// lives in (the paper runs four identical single-threaded instances, i.e.
// SPEC "rate" style, so instances never share data).
type Region struct {
	Base  uint64
	Bytes uint64
}

// lines returns the region size in cache lines.
func (r Region) lines() uint64 { return r.Bytes / core.LineBytes }

// sub carves a sub-region of the given size at a line-aligned offset.
func (r Region) sub(offBytes, sizeBytes uint64) Region {
	if offBytes+sizeBytes > r.Bytes {
		sizeBytes = r.Bytes - offBytes
	}
	return Region{Base: r.Base + offBytes, Bytes: sizeBytes}
}

// randLine returns a random line-aligned address in the region.
func (r Region) randLine(rng *RNG) uint64 {
	return r.Base + uint64(rng.Intn(int(r.lines())))*core.LineBytes
}

// seqStream walks a region line by line with a configurable stride,
// wrapping at the end. It models the streaming arrays of libquantum, lbm,
// and the sequential phases of the SPEC integer codes.
type seqStream struct {
	region      Region
	pos         uint64 // line index within region
	strideLines uint64
}

func newSeqStream(r Region, strideLines uint64) *seqStream {
	if strideLines == 0 {
		strideLines = 1
	}
	return &seqStream{region: r, strideLines: strideLines}
}

// next returns the current line address and advances.
func (s *seqStream) next() uint64 {
	addr := s.region.Base + s.pos*core.LineBytes
	s.pos += s.strideLines
	if s.pos >= s.region.lines() {
		s.pos %= s.strideLines // keep substream phase when striding
		if s.strideLines == 1 {
			s.pos = 0
		}
	}
	return addr
}

// visitGen is the common machinery of all generators: a visit function
// refills an op queue, Next drains it one op at a time.
//
// All mutable benchmark state lives in the regs slice (scalar registers:
// previous addresses, cell counters) and the registered streams — never in
// visit-closure variables — so a generator's exact mid-run position
// serializes through SaveState/RestoreState for warmup checkpointing.
type visitGen struct {
	name  string
	rng   *RNG
	queue []cpu.Op
	head  int
	visit func(g *visitGen)

	regs    []uint64
	streams []*seqStream
}

var _ cpu.Generator = (*visitGen)(nil)
var _ checkpoint.Saver = (*visitGen)(nil)

// newVisitGen builds the shared machinery with nregs scalar registers.
func newVisitGen(name string, rng *RNG, nregs int) *visitGen {
	return &visitGen{name: name, rng: rng, regs: make([]uint64, nregs)}
}

// stream registers a sequential stream so its position checkpoints.
func (g *visitGen) stream(r Region, strideLines uint64) *seqStream {
	s := newSeqStream(r, strideLines)
	g.streams = append(g.streams, s)
	return s
}

// SaveState serializes the generator's complete dynamic state: RNG
// position, the op queue with its drain cursor, scalar registers, and
// stream positions. Static structure (regions, strides, the visit
// function) is rebuilt by constructing the same benchmark from the same
// config, so it is not written.
func (g *visitGen) SaveState(w *checkpoint.Writer) {
	w.U64(g.rng.State())
	w.Count(len(g.queue))
	for _, op := range g.queue {
		w.U8(uint8(op.Kind))
		w.U64(op.Addr)
		w.U64(uint64(op.Bytes))
		w.Bool(op.Dep)
	}
	w.Int(g.head)
	w.Count(len(g.regs))
	for _, v := range g.regs {
		w.U64(v)
	}
	w.Count(len(g.streams))
	for _, s := range g.streams {
		w.U64(s.pos)
	}
}

// RestoreState decodes a SaveState payload into temporaries and returns a
// commit that installs it; on error the generator is untouched.
func (g *visitGen) RestoreState(r *checkpoint.Reader) (func(), error) {
	rngState := r.U64()
	queue := make([]cpu.Op, r.Count())
	for i := range queue {
		queue[i] = cpu.Op{
			Kind:  cpu.OpKind(r.U8()),
			Addr:  r.U64(),
			Bytes: core.ByteMask(r.U64()),
			Dep:   r.Bool(),
		}
	}
	head := r.Int()
	if n := r.Count(); n != len(g.regs) {
		r.Fail("workload %s: %d registers, want %d", g.name, n, len(g.regs))
	}
	regs := make([]uint64, len(g.regs))
	for i := range regs {
		regs[i] = r.U64()
	}
	if n := r.Count(); n != len(g.streams) {
		r.Fail("workload %s: %d streams, want %d", g.name, n, len(g.streams))
	}
	pos := make([]uint64, len(g.streams))
	for i := range pos {
		pos[i] = r.U64()
		if i < len(g.streams) && pos[i] >= g.streams[i].region.lines() {
			r.Fail("workload %s: stream %d position %d out of range", g.name, i, pos[i])
		}
	}
	if head < 0 || head > len(queue) {
		r.Fail("workload %s: queue head %d of %d", g.name, head, len(queue))
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return func() {
		g.rng.SetState(rngState)
		g.queue = queue
		g.head = head
		copy(g.regs, regs)
		for i, s := range g.streams {
			s.pos = pos[i]
		}
	}, nil
}

func (g *visitGen) Name() string { return g.name }

func (g *visitGen) Next(op *cpu.Op) {
	for g.head >= len(g.queue) {
		g.queue = g.queue[:0]
		g.head = 0
		g.visit(g)
	}
	*op = g.queue[g.head]
	g.head++
}

func (g *visitGen) compute(n int) {
	for i := 0; i < n; i++ {
		g.queue = append(g.queue, cpu.Op{Kind: cpu.Compute})
	}
}

func (g *visitGen) load(addr uint64) {
	g.queue = append(g.queue, cpu.Op{Kind: cpu.Load, Addr: addr})
}

func (g *visitGen) loadDep(addr uint64) {
	g.queue = append(g.queue, cpu.Op{Kind: cpu.Load, Addr: addr, Dep: true})
}

// store emits a store of size bytes at byte offset off within addr's line.
func (g *visitGen) store(addr uint64, off, size int) {
	line := addr &^ (core.LineBytes - 1)
	g.queue = append(g.queue, cpu.Op{
		Kind:  cpu.Store,
		Addr:  line + uint64(off),
		Bytes: core.StoreBytes(off, size),
	})
}

// Maker builds a generator instance for one core.
type Maker func(coreID int, seed uint64, region Region) cpu.Generator

var benchmarks = map[string]Maker{
	"bzip2":      newBzip2,
	"lbm":        newLbm,
	"libquantum": newLibquantum,
	"mcf":        newMcf,
	"omnetpp":    newOmnetpp,
	"em3d":       newEm3d,
	"GUPS":       newGUPS,
	"LinkedList": newLinkedList,
}

// Names returns the benchmark names in sorted order.
func Names() []string {
	names := make([]string, 0, len(benchmarks))
	for n := range benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Canonical resolves a workload, hammer, or mix name case-insensitively to
// its canonical spelling ("gups" -> "GUPS", "mix2" -> "MIX2"), so CLI
// flags don't require the paper's exact capitalization. Unknown names are
// returned unchanged for the caller's own error path.
func Canonical(name string) string {
	if strings.ContainsAny(name, ":,") {
		if entries, err := parseMixSpec(name); err == nil {
			return renderMixSpec(entries)
		}
		return name
	}
	if _, ok := benchmarks[name]; ok {
		return name
	}
	if _, ok := hammers[name]; ok {
		return name
	}
	if _, ok := tensors[name]; ok {
		return name
	}
	if _, ok := Mixes[name]; ok {
		return name
	}
	for n := range benchmarks {
		if strings.EqualFold(n, name) {
			return n
		}
	}
	for n := range hammers {
		if strings.EqualFold(n, name) {
			return n
		}
	}
	for n := range tensors {
		if strings.EqualFold(n, name) {
			return n
		}
	}
	for n := range Mixes {
		if strings.EqualFold(n, name) {
			return n
		}
	}
	return name
}

// New builds the named benchmark, hammer, or tensor generator.
func New(name string, coreID int, seed uint64, region Region) (cpu.Generator, error) {
	mk, ok := benchmarks[Canonical(name)]
	if !ok {
		mk, ok = hammers[Canonical(name)]
	}
	if !ok {
		mk, ok = tensors[Canonical(name)]
	}
	if !ok {
		return nil, fmt.Errorf("workload: unknown benchmark %q (have %v)", name,
			append(append(Names(), HammerNames()...), TensorNames()...))
	}
	if region.Bytes < 1<<24 {
		return nil, fmt.Errorf("workload: region too small (%d bytes); need at least 16MB", region.Bytes)
	}
	return mk(coreID, seed, region), nil
}

// Mixes are the multiprogrammed workloads of Table 4.
var Mixes = map[string][]string{
	"MIX1": {"bzip2", "lbm", "libquantum", "omnetpp"},
	"MIX2": {"mcf", "em3d", "GUPS", "LinkedList"},
	"MIX3": {"bzip2", "mcf", "lbm", "em3d"},
	"MIX4": {"libquantum", "GUPS", "omnetpp", "LinkedList"},
	"MIX5": {"bzip2", "LinkedList", "lbm", "GUPS"},
	"MIX6": {"libquantum", "em3d", "omnetpp", "mcf"},
}

// MixNames returns the mix names in order.
func MixNames() []string {
	return []string{"MIX1", "MIX2", "MIX3", "MIX4", "MIX5", "MIX6"}
}

// soloMaker reports whether name (already canonical) resolves to a
// single-core generator in any registry.
func soloMaker(name string) bool {
	if _, ok := benchmarks[name]; ok {
		return true
	}
	if _, ok := hammers[name]; ok {
		return true
	}
	_, ok := tensors[name]
	return ok
}

// mixEntry is one parsed component of a custom mix spec.
type mixEntry struct {
	name  string
	count int
}

// parseMixSpec parses a SPEC-rate-style co-run spec — comma-separated
// `name[:count]` entries, e.g. "gups:2,linkedlist:2" — into canonical
// entries. Every name must be a single-core generator (benchmark, hammer,
// or tensor); nesting mixes is rejected.
func parseMixSpec(spec string) ([]mixEntry, error) {
	parts := strings.Split(spec, ",")
	entries := make([]mixEntry, 0, len(parts))
	for _, part := range parts {
		part = strings.TrimSpace(part)
		name, countStr, hasCount := strings.Cut(part, ":")
		e := mixEntry{name: Canonical(strings.TrimSpace(name)), count: 1}
		if !soloMaker(e.name) {
			return nil, fmt.Errorf("workload: mix component %q is not a benchmark, hammer, or tensor generator", name)
		}
		if hasCount {
			n, err := fmt.Sscanf(strings.TrimSpace(countStr), "%d", &e.count)
			if n != 1 || err != nil || e.count < 1 || e.count > 1024 {
				return nil, fmt.Errorf("workload: bad instance count %q in mix spec %q", countStr, spec)
			}
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// renderMixSpec is parseMixSpec's inverse: the one canonical spelling of
// a custom mix (":1" elided), so run keys and warmup fingerprints are
// stable across equivalent user spellings.
func renderMixSpec(entries []mixEntry) string {
	var b strings.Builder
	for i, e := range entries {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(e.name)
		if e.count != 1 {
			fmt.Fprintf(&b, ":%d", e.count)
		}
	}
	return b.String()
}

// Set resolves a workload-set name to one benchmark per core: a
// benchmark, hammer, or tensor name yields n identical instances (the
// paper's "four identical instances of single-threaded applications"); a
// MIXn name yields Table 4's combination; a custom `name[:count],...`
// spec assigns workloads per core in order, and its instance counts must
// sum to exactly the core count.
func Set(name string, cores int) ([]string, error) {
	name = Canonical(name)
	if strings.ContainsAny(name, ":,") {
		entries, err := parseMixSpec(name)
		if err != nil {
			return nil, err
		}
		apps := make([]string, 0, cores)
		for _, e := range entries {
			for i := 0; i < e.count; i++ {
				apps = append(apps, e.name)
			}
		}
		if len(apps) != cores {
			return nil, fmt.Errorf("workload: mix spec %q names %d instances, have %d cores", name, len(apps), cores)
		}
		return apps, nil
	}
	if apps, ok := Mixes[name]; ok {
		if cores != len(apps) {
			return nil, fmt.Errorf("workload: mix %s needs %d cores, have %d", name, len(apps), cores)
		}
		return apps, nil
	}
	if !soloMaker(name) {
		return nil, fmt.Errorf("workload: unknown workload set %q (have %v)", name, SetNames())
	}
	apps := make([]string, cores)
	for i := range apps {
		apps[i] = name
	}
	return apps, nil
}

// SetNames returns all runnable workload-set names, regenerated from the
// registries: 8 benchmarks (x4 instances) + 4 hammer patterns + 3 tensor
// streams + 6 mixes. Custom `name[:count],...` specs compose any of the
// single-core names.
func SetNames() []string {
	return append(append(append(Names(), HammerNames()...), TensorNames()...), MixNames()...)
}

func mixSeed(name string, coreID int, seed uint64) uint64 {
	h := seed ^ 0x51_7C_C1_B7_27_22_0A_95
	for _, c := range name {
		h = (h ^ uint64(c)) * 0x100000001B3
	}
	return h ^ (uint64(coreID+1) * 0x9E3779B97F4A7C15)
}

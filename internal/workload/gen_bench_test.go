package workload

import (
	"testing"

	"pradram/internal/cpu"
)

func BenchmarkGenerators(b *testing.B) {
	for _, name := range Names() {
		b.Run(name, func(b *testing.B) {
			g, err := New(name, 0, 1, testRegion())
			if err != nil {
				b.Fatal(err)
			}
			var op cpu.Op
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.Next(&op)
			}
		})
	}
}

func BenchmarkRNG(b *testing.B) {
	r := NewRNG(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}

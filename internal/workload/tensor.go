package workload

import (
	"fmt"
	"sort"

	"pradram/internal/cpu"
)

// Tensor/conv streaming generators (DESIGN.md §4j). A convolution kernel
// walks a three-deep loop nest over output channels (K), input channels
// (C), and output pixels (P); each step touches one element of the weight
// tensor W[k][c], the input tensor I[c][p], and the output tensor O[k][p].
// The *loop permutation* decides row locality: a tensor whose row index is
// untouched by the innermost loop enjoys long same-row runs, while one
// indexed by it conflicts on every access — the loop-order/DRAM-locality
// interaction that accelerator mappers optimize.
//
// Like the hammer family, these generators are built for analytic
// predictability rather than realism, and they extend the oracle idea
// from "per-row activation counts" to "activation counts as a function of
// loop order":
//
//   - each tensor lives in its own bank (channel 0, rank 0), so a bank's
//     row sequence is exactly that tensor's access subsequence;
//   - every access is a dependent load, so requests reach DRAM in program
//     order;
//   - the column of each access is the loop index that does NOT appear in
//     the tensor's row (always < 128, the lines-per-row geometry), so
//     every (row, col) line of an epoch is touched exactly once — a
//     compulsory cache miss with nothing for any cache level to reuse;
//   - each epoch (one full loop nest) shifts all rows by tensorRowBlock,
//     so lines stay unique across tensorEpochs epochs before the row
//     space wraps.
//
// Under those invariants, and an open-page policy with a row-hit cap
// (memctrl's OpenPage + MaxRowHits), a same-row run of length L costs
// exactly ceil(L/cap) activations, which closes the form: activations
// per epoch = segments x ceil(segLen/cap) per tensor, where the segment
// structure falls out of the loop permutation (TensorEpochActs). The
// oracle tests drive the full CPU→cache→controller→DRAM stack and demand
// the simulated counters equal the closed form exactly.
//
// Bank assignment is (3*coreID + tensor) mod 8, so cores 0 and 1 use
// disjoint bank triples; the single-bank-per-tensor invariant (and with
// it the oracle) holds for up to 2 concurrent tensor cores.

const (
	// tensorK/C/P are the preset loop bounds: small enough that one epoch
	// is quick to simulate, sized so every per-tensor row count (K*C=24,
	// C*P=60, K*P=40) fits a tensorRowBlock and every column index
	// (max 10) fits a row's 128 lines.
	tensorK = 4
	tensorC = 6
	tensorP = 10

	// tensorRowBlock is the per-epoch row shift: a power of two no smaller
	// than the largest per-tensor row count, so epochs never overlap rows.
	tensorRowBlock = 64
)

// TensorSpec fixes one conv workload: the loop bounds and the nest order.
type TensorSpec struct {
	Order   string // loop nest outer→inner, a permutation of "KCP"
	K, C, P int
}

// dim returns the loop bound of dimension letter d.
func (sp TensorSpec) dim(d byte) int {
	switch d {
	case 'K':
		return sp.K
	case 'C':
		return sp.C
	case 'P':
		return sp.P
	}
	panic("workload: bad tensor dim " + string(d))
}

// StepsPerEpoch returns the loop-nest trip count.
func (sp TensorSpec) StepsPerEpoch() int { return sp.K * sp.C * sp.P }

// indices decomposes a step counter into the (k, c, p) loop indices under
// the spec's nest order (an odometer: inner loop fastest).
func (sp TensorSpec) indices(step uint64) (k, c, p int) {
	n0 := sp.dim(sp.Order[0])
	n1 := sp.dim(sp.Order[1])
	n2 := sp.dim(sp.Order[2])
	r := int(step % uint64(n0*n1*n2))
	iv := [3]int{r / (n1 * n2), r / n2 % n1, r % n2}
	out := map[byte]int{sp.Order[0]: iv[0], sp.Order[1]: iv[1], sp.Order[2]: iv[2]}
	return out['K'], out['C'], out['P']
}

// tensorRow returns tensor t's region-relative row (before the epoch
// shift) and column for loop indices (k, c, p). Tensors are indexed
// 0 = W[k][c], 1 = I[c][p], 2 = O[k][p]; the column is always the loop
// index absent from the row, which is what makes every line of an epoch
// unique.
func (sp TensorSpec) tensorRow(t, k, c, p int) (row, col int) {
	switch t {
	case 0:
		return k*sp.C + c, p
	case 1:
		return c*sp.P + p, k
	case 2:
		return k*sp.P + p, c
	}
	panic("workload: bad tensor index")
}

// tensorBank returns the bank tensor t of a core streams into.
func tensorBank(coreID, t int) int { return (3*coreID + t) % 8 }

// tensorEpochs returns how many epochs fit the region's row space before
// row indices wrap (and line reuse begins).
func tensorEpochs(region Region) uint64 {
	return (region.Bytes >> 18) / tensorRowBlock
}

// access returns the (bank, region-relative row, column) of the t-th
// access of the given step, epoch shift included. The generator and the
// analytic walk both call this — they cannot disagree on the stream.
func (sp TensorSpec) access(region Region, coreID int, step uint64, t int) (bank, row, col int) {
	k, c, p := sp.indices(step)
	row, col = sp.tensorRow(t, k, c, p)
	epoch := step / uint64(sp.StepsPerEpoch()) % tensorEpochs(region)
	return tensorBank(coreID, t), int(epoch)*tensorRowBlock + row, col
}

// newTensorGen builds the streaming generator for one core: each step
// emits its three dependent loads (W, I, O in program order) at the
// addresses access() dictates. regs[0]: step counter.
func newTensorGen(name string, sp TensorSpec, coreID int, seed uint64, region Region) cpu.Generator {
	g := newVisitGen(name, NewRNG(mixSeed(name, coreID, seed)), 1)
	g.visit = func(g *visitGen) {
		for b := 0; b < 8; b++ { // batch size is invisible to the op stream
			s := g.regs[0]
			for t := 0; t < 3; t++ {
				bank, row, col := sp.access(region, coreID, s, t)
				g.loadDep(hammerAddr(region.Base, bank, row, col))
			}
			g.regs[0] = s + 1
		}
	}
	return g
}

// tensorSpecs are the preset loop permutations. The names read
// outer→inner: TensorKCP streams pixels innermost (W rows stay put for
// P-long runs), TensorPKC streams input channels innermost (O rows stay
// put), TensorCPK streams output channels innermost (I rows stay put) —
// three distinct row-locality profiles over identical work.
var tensorSpecs = map[string]TensorSpec{
	"TensorKCP": {Order: "KCP", K: tensorK, C: tensorC, P: tensorP},
	"TensorPKC": {Order: "PKC", K: tensorK, C: tensorC, P: tensorP},
	"TensorCPK": {Order: "CPK", K: tensorK, C: tensorC, P: tensorP},
}

// tensors is the generator registry, separate from benchmarks (Names()
// keeps meaning the paper's calibrated 8) and from hammers, mirroring how
// the hammer family is wired into New/Canonical/Set.
var tensors = func() map[string]Maker {
	m := make(map[string]Maker, len(tensorSpecs))
	for name, sp := range tensorSpecs {
		name, sp := name, sp
		m[name] = func(coreID int, seed uint64, region Region) cpu.Generator {
			return newTensorGen(name, sp, coreID, seed, region)
		}
	}
	return m
}()

// TensorNames returns the tensor generator names in sorted order.
func TensorNames() []string {
	names := make([]string, 0, len(tensors))
	for n := range tensors {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TensorSpecFor returns the spec behind a tensor generator name.
func TensorSpecFor(name string) (TensorSpec, error) {
	sp, ok := tensorSpecs[Canonical(name)]
	if !ok {
		return TensorSpec{}, fmt.Errorf("workload: unknown tensor generator %q (have %v)", name, TensorNames())
	}
	return sp, nil
}

// TensorTarget reports where a core's tensor streams land: always rank 0,
// banks[t] for tensor t, with region-relative row 0 at absolute row
// rowBase — the confinement the oracle tests verify through the real
// address mapper.
func TensorTarget(coreID int, region Region) (rank int, banks [3]int, rowBase int) {
	return 0, [3]int{tensorBank(coreID, 0), tensorBank(coreID, 1), tensorBank(coreID, 2)}, int(region.Base >> 18)
}

// ceilDiv returns ceil(a/b).
func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

// TensorEpochActs returns the closed-form row activations per epoch under
// an open-page policy with a same-row hit cap: per tensor, the epoch's
// access sequence splits into segments of constant row — one segment per
// setting of the loops down to the innermost row-relevant one — and a
// segment of length L costs ceil(L/cap) activations. perTensor is indexed
// W, I, O.
func TensorEpochActs(name string, cap int) (total int64, perTensor [3]int64, err error) {
	sp, err := TensorSpecFor(name)
	if err != nil {
		return 0, perTensor, err
	}
	for t := 0; t < 3; t++ {
		irrelevant := [3]byte{'P', 'K', 'C'}[t] // the dim absent from tensor t's row
		jR := 2
		if sp.Order[2] == irrelevant {
			jR = 1 // inner loop leaves the row alone: runs of length n2
		}
		segments, segLen := int64(1), int64(1)
		for i := 0; i <= jR; i++ {
			segments *= int64(sp.dim(sp.Order[i]))
		}
		for i := jR + 1; i < 3; i++ {
			segLen *= int64(sp.dim(sp.Order[i]))
		}
		perTensor[t] = segments * ceilDiv(segLen, int64(cap))
		total += perTensor[t]
	}
	return total, perTensor, nil
}

// TensorRow keys a per-row activation count: the absolute row index of
// one bank.
type TensorRow struct {
	Bank, Row int
}

// TensorCounts returns the exact per-(bank, row) activation counts of a
// tensor generator's access stream up to the point where it has emitted
// totalActs activations — the analytic oracle. The caller reads totalActs
// off the simulated counter tables; because the stream is deterministic
// and every access reaches DRAM in program order, matching the total
// pins down a unique stream position, and the per-row breakdown must then
// agree row for row. cap is the controller's same-row hit cap
// (memctrl MaxRowHits); the walk mirrors its auto-precharge exactly: a
// row access either extends an open run (hits < cap) or activates.
func TensorCounts(name string, coreID int, region Region, cap int, totalActs int64) (map[TensorRow]int64, error) {
	sp, err := TensorSpecFor(name)
	if err != nil {
		return nil, err
	}
	_, _, rowBase := TensorTarget(coreID, region)
	counts := map[TensorRow]int64{}
	open := map[int]int{} // bank -> open row (region-relative)
	hits := map[int]int{} // bank -> column accesses since its last ACT
	emitted := int64(0)
	for step := uint64(0); emitted < totalActs; step++ {
		for t := 0; t < 3 && emitted < totalActs; t++ {
			bank, row, _ := sp.access(region, coreID, step, t)
			if r, ok := open[bank]; ok && r == row && hits[bank] < cap {
				hits[bank]++
				continue
			}
			counts[TensorRow{Bank: bank, Row: rowBase + row}]++
			open[bank] = row
			hits[bank] = 1
			emitted++
		}
	}
	return counts, nil
}

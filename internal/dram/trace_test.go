package dram

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"pradram/internal/core"
	"pradram/internal/power"
)

func TestCmdKindAndEventStrings(t *testing.T) {
	t.Parallel()
	events := []CmdEvent{
		{At: 5, Kind: CmdAct, Rank: 0, Bank: 1, Row: 42, Mask: core.Mask(0x81)},
		{At: 17, Kind: CmdRead, Rank: 0, Bank: 1, DataStart: 28, DataEnd: 32},
		{At: 40, Kind: CmdWrite, Rank: 1, Bank: 0, DataStart: 48, DataEnd: 52},
		{At: 60, Kind: CmdPre, Rank: 0, Bank: 1},
		{At: 99, Kind: CmdRef, Rank: 1},
	}
	wants := []string{"ACT", "RD", "WR", "PRE", "REF"}
	for i, e := range events {
		if !strings.Contains(e.String(), wants[i]) {
			t.Errorf("event %d string %q missing %q", i, e.String(), wants[i])
		}
	}
	if CmdKind(99).String() != "Cmd(99)" {
		t.Error("unknown kind string wrong")
	}
	if !strings.Contains(events[0].String(), "10000001b") {
		t.Error("ACT event must render its PRA mask")
	}
}

// Figure 7(a): a partial activation delays the column command by tCK (the
// mask transfer) relative to the conventional timing of Figure 7(b). The
// golden trace pins the exact command cycles.
func TestFigure7GoldenTrace(t *testing.T) {
	t.Parallel()
	run := func(mask core.Mask) []CmdEvent {
		ch, err := NewChannel(DefaultTiming(), DefaultGeometry(), power.NewAccumulator())
		if err != nil {
			t.Fatal(err)
		}
		var trace []CmdEvent
		ch.Trace = func(e CmdEvent) { trace = append(trace, e) }
		if err := ch.Activate(0, 0, 0, 7, mask, false); err != nil {
			t.Fatal(err)
		}
		at := ch.WriteReadyAt(0, 0, 0, ch.T.TBURST)
		if _, err := ch.Write(at, 0, 0, ch.T.TBURST, mask.Fraction(), false); err != nil {
			t.Fatal(err)
		}
		pre := ch.PreReadyAt(at, 0, 0)
		if err := ch.Precharge(pre, 0, 0); err != nil {
			t.Fatal(err)
		}
		return trace
	}

	full := run(core.FullMask)
	partial := run(core.Mask(0x01))
	if len(full) != 3 || len(partial) != 3 {
		t.Fatalf("traces must have ACT, WR, PRE: %d / %d", len(full), len(partial))
	}
	// Conventional: WR at tRCD = 11. Partial: WR at tRCD + tCK = 12.
	if full[1].At != 11 {
		t.Errorf("full-row write at %d, want tRCD=11 (Fig. 7b)", full[1].At)
	}
	if partial[1].At != 12 {
		t.Errorf("partial write at %d, want tRCD+1=12 (Fig. 7a)", partial[1].At)
	}
	// PRE follows tWR after the burst end in both cases.
	wantPre := full[1].DataEnd + 12
	if full[2].At != wantPre {
		t.Errorf("full PRE at %d, want burst end + tWR = %d", full[2].At, wantPre)
	}
}

// Global invariant: over any legal command stream, data-bus bursts on one
// channel never overlap, reads deliver data CL after the command, writes
// CWL after, and per-bank command ordering is ACT -> columns -> PRE.
func TestBusAndOrderingInvariants(t *testing.T) {
	t.Parallel()
	ch, err := NewChannel(DefaultTiming(), DefaultGeometry(), power.NewAccumulator())
	if err != nil {
		t.Fatal(err)
	}
	var bursts []CmdEvent
	bankOpen := map[[2]int]bool{}
	ch.Trace = func(e CmdEvent) {
		key := [2]int{e.Rank, e.Bank}
		switch e.Kind {
		case CmdAct:
			if bankOpen[key] {
				t.Fatalf("ACT to open bank: %s", e)
			}
			bankOpen[key] = true
		case CmdPre:
			if !bankOpen[key] {
				t.Fatalf("PRE to closed bank: %s", e)
			}
			bankOpen[key] = false
		case CmdRead:
			if !bankOpen[key] {
				t.Fatalf("RD to closed bank: %s", e)
			}
			if e.DataStart-e.At != int64(ch.T.TCAS) {
				t.Fatalf("read data not CL after command: %s", e)
			}
			bursts = append(bursts, e)
		case CmdWrite:
			if !bankOpen[key] {
				t.Fatalf("WR to closed bank: %s", e)
			}
			if e.DataStart-e.At != int64(ch.T.CWL) {
				t.Fatalf("write data not CWL after command: %s", e)
			}
			bursts = append(bursts, e)
		}
	}

	rng := rand.New(rand.NewSource(11))
	now := int64(0)
	open := map[[2]int]bool{}
	for i := 0; i < 5000; i++ {
		r, b := rng.Intn(ch.G.Ranks), rng.Intn(ch.G.Banks)
		k := [2]int{r, b}
		if open[k] {
			switch rng.Intn(5) {
			case 0, 1:
				at := ch.ReadReadyAt(now, r, b, ch.T.TBURST)
				if _, err := ch.Read(at, r, b, ch.T.TBURST, 1, rng.Intn(2) == 0); err != nil {
					t.Fatal(err)
				}
				open[k] = rng.Intn(2) != 0 // mirror the autoPre coin below
				// Re-derive openness from the device, the source of truth.
				_, _, open[k] = ch.OpenRow(r, b)
				now = at
			case 2, 3:
				at := ch.WriteReadyAt(now, r, b, ch.T.TBURST)
				if _, err := ch.Write(at, r, b, ch.T.TBURST, rng.Float64(), false); err != nil {
					t.Fatal(err)
				}
				now = at
			default:
				at := ch.PreReadyAt(now, r, b)
				if err := ch.Precharge(at, r, b); err != nil {
					t.Fatal(err)
				}
				open[k] = false
				now = at
			}
		} else {
			mask := core.Mask(rng.Intn(255) + 1)
			at := ch.ActReadyAt(now, r, b, mask, false)
			if err := ch.Activate(at, r, b, rng.Intn(ch.G.Rows), mask, false); err != nil {
				t.Fatal(err)
			}
			open[k] = true
			now = at
		}
	}

	// No two bursts may overlap on the shared data bus.
	sort.Slice(bursts, func(i, j int) bool { return bursts[i].DataStart < bursts[j].DataStart })
	for i := 1; i < len(bursts); i++ {
		if bursts[i].DataStart < bursts[i-1].DataEnd {
			t.Fatalf("data-bus overlap: %s then %s", bursts[i-1], bursts[i])
		}
		// Direction or rank switches need the tRTRS gap.
		prev, cur := bursts[i-1], bursts[i]
		if (prev.Kind != cur.Kind || prev.Rank != cur.Rank) &&
			cur.DataStart-prev.DataEnd < int64(ch.T.TRTRS) {
			t.Fatalf("missing bus turnaround gap: %s then %s", prev, cur)
		}
	}
	if len(bursts) < 1000 {
		t.Fatalf("stream exercised only %d bursts", len(bursts))
	}
}

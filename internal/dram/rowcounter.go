package dram

import (
	"fmt"
	"sort"
)

// Per-row activation counting and Refresh Management (DESIGN.md §4g).
//
// The channel can keep a PRAC-style per-row activation counter table,
// windowed by refresh: every ACT increments its row's counter, and a
// refresh of the row's bank clears the counts for that bank (the rows are
// rewritten, so the disturbance window restarts). The table is bounded —
// real controllers cannot afford 32K counters per bank either — using a
// Misra-Gries-style overflow policy that can overcount but never
// undercount a row:
//
//   - a tracked row's ACT increments its exact counter;
//   - an ACT to an untracked row inserts it at spill+1 when the table has
//     space (the row may have been evicted earlier, so spill is its
//     conservative floor);
//   - when the table is full, the spill counter absorbs the ACT instead
//     (Stats.RowSpills counts these), and every untracked row reports
//     spill as its count.
//
// RefreshManage models the RFM command: it refreshes the neighbours of
// the bank's highest-count row, blocking the bank for tRFM, and clears
// that row's counter. Counter state is simulation state (it survives
// ResetStats and is checkpointed), not a statistic.

// rowTable is one bank's bounded counter table.
type rowTable struct {
	counts map[int]int64 // row -> ACTs since this bank's last refresh
	spill  int64         // conservative floor for untracked rows
}

// rowCounters is the per-channel table set, indexed rank*Banks+bank.
type rowCounters struct {
	cap    int // max tracked rows per bank
	tables []rowTable
}

func newRowCounters(capPerBank, nTables int) *rowCounters {
	rc := &rowCounters{cap: capPerBank, tables: make([]rowTable, nTables)}
	for i := range rc.tables {
		rc.tables[i].counts = make(map[int]int64)
	}
	return rc
}

// onAct records one activation of row in table i and reports whether the
// table overflowed into the spill counter.
func (rc *rowCounters) onAct(i, row int) (spilled bool) {
	t := &rc.tables[i]
	if n, ok := t.counts[row]; ok {
		t.counts[row] = n + 1
		return false
	}
	if len(t.counts) < rc.cap {
		t.counts[row] = t.spill + 1
		return false
	}
	t.spill++
	return true
}

// count returns the (conservative) activation count of row in table i.
func (rc *rowCounters) count(i, row int) int64 {
	t := &rc.tables[i]
	if n, ok := t.counts[row]; ok {
		return n
	}
	return t.spill
}

// reset clears table i (the bank was refreshed).
func (rc *rowCounters) reset(i int) {
	t := &rc.tables[i]
	clear(t.counts)
	t.spill = 0
}

// victim returns the highest-count tracked row of table i (lowest row id
// on ties, so the choice is deterministic under map iteration).
func (rc *rowCounters) victim(i int) (row int, n int64, ok bool) {
	t := &rc.tables[i]
	row = -1
	for r, c := range t.counts {
		if !ok || c > n || (c == n && r < row) {
			row, n, ok = r, c, true
		}
	}
	return row, n, ok
}

// mitigate applies one RFM to table i: the victim row's counter clears.
// If the spill floor has caught up with (or passed) every tracked count,
// the aggressor may be an evicted row the table can no longer name; the
// model optimistically assumes the RFM covered it and clears the spill
// too — otherwise a saturated table would alert on every subsequent ACT.
func (rc *rowCounters) mitigate(i int) {
	t := &rc.tables[i]
	row, n, ok := rc.victim(i)
	if ok {
		delete(t.counts, row)
	}
	if !ok || t.spill >= n {
		t.spill = 0
	}
}

// TrackRows enables per-row activation counting with a bounded table of
// capPerBank rows per bank (capPerBank <= 0 disables tracking). Call
// before the first command; enabling costs one map operation per ACT,
// disabled tracking costs nothing.
func (c *Channel) TrackRows(capPerBank int) {
	if capPerBank <= 0 {
		c.rowCtr = nil
		return
	}
	c.rowCtr = newRowCounters(capPerBank, c.G.Ranks*c.G.Banks)
}

// RowTracking reports whether per-row activation counting is enabled.
func (c *Channel) RowTracking() bool { return c.rowCtr != nil }

// RowActCount returns row's activation count since bank (r,b) was last
// refreshed. Untracked rows report the bank's spill floor; with tracking
// disabled every row reports 0.
func (c *Channel) RowActCount(r, b, row int) int64 {
	if c.rowCtr == nil {
		return 0
	}
	return c.rowCtr.count(r*c.G.Banks+b, row)
}

// RowCounts returns a copy of bank (r,b)'s tracked counter table (nil with
// tracking disabled) — a test and telemetry dump, not a hot path.
func (c *Channel) RowCounts(r, b int) map[int]int64 {
	if c.rowCtr == nil {
		return nil
	}
	t := &c.rowCtr.tables[r*c.G.Banks+b]
	m := make(map[int]int64, len(t.counts))
	for row, n := range t.counts {
		m[row] = n
	}
	return m
}

// RowSpill returns bank (r,b)'s spill floor: the count every untracked
// row is conservatively assumed to have.
func (c *Channel) RowSpill(r, b int) int64 {
	if c.rowCtr == nil {
		return 0
	}
	return c.rowCtr.tables[r*c.G.Banks+b].spill
}

// rowCtrOnAct feeds one activation into the counter table.
func (c *Channel) rowCtrOnAct(r, b, row int) {
	if c.rowCtr == nil {
		return
	}
	if c.rowCtr.onAct(r*c.G.Banks+b, row) {
		c.Stats.RowSpills++
	}
}

// rowCtrResetBank clears bank (r,b)'s counters (the bank was refreshed).
func (c *Channel) rowCtrResetBank(r, b int) {
	if c.rowCtr != nil {
		c.rowCtr.reset(r*c.G.Banks + b)
	}
}

// rowCtrResetRank clears every counter of rank r (all-bank refresh, or
// self-refresh — which runs the device's internal refresh engine).
func (c *Channel) rowCtrResetRank(r int) {
	if c.rowCtr == nil {
		return
	}
	for b := 0; b < c.G.Banks; b++ {
		c.rowCtr.reset(r*c.G.Banks + b)
	}
}

// trfm returns the effective RFM blocking time: Timing.TRFM, defaulting
// to the per-bank refresh time (RFM refreshes a handful of victim rows,
// comparable to one bank's refresh burst).
func (c *Channel) trfm() int64 {
	switch {
	case c.T.TRFM > 0:
		return int64(c.T.TRFM)
	case c.T.TRFCPB > 0:
		return int64(c.T.TRFCPB)
	default:
		return int64(c.T.TRFC)
	}
}

// RFMReadyAt returns the earliest cycle an RFM may be issued to bank
// (r,b); the bank must be precharged first (ok = false while it holds an
// open row). For a rank still in power-down, the result assumes a Wake
// issued at the query time.
func (c *Channel) RFMReadyAt(now int64, r, b int) (int64, bool) {
	rk := c.rank(r)
	bk := &rk.banks[b]
	if bk.open {
		return 0, false
	}
	return max(now, rk.refUntil, c.cmdFree, bk.actAllowed, c.pdExitAt(rk, now)), true
}

// RefreshManage issues an RFM to bank (r,b): the device refreshes the
// victims of the bank's highest-count row, blocking the bank for tRFM,
// and that row's counter clears. The refresh schedule (tREFI deadlines)
// is unaffected — RFM is extra work on top of regular refresh. Energy is
// charged like a per-bank refresh burst of tRFM.
func (c *Channel) RefreshManage(at int64, r, b int) error {
	if c.rowCtr == nil {
		return fmt.Errorf("dram: RFM without row tracking enabled")
	}
	rk := c.rank(r)
	if rk.pd != PDAwake {
		return fmt.Errorf("dram: RFM to rank %d in %v (Wake it first)", r, rk.pd)
	}
	ready, ok := c.RFMReadyAt(at, r, b)
	if !ok {
		return fmt.Errorf("dram: RFM to rank %d bank %d with an open row", r, b)
	}
	if at < ready {
		return fmt.Errorf("dram: RFM at %d before ready %d", at, ready)
	}
	c.flushBG(rk)
	bk := &rk.banks[b]
	t := c.trfm()
	bk.actAllowed = max(bk.actAllowed, at+t)
	c.cmdFree = at + 1
	c.Acc.Refresh(float64(t) * c.T.TCKNs / float64(c.G.Banks))
	c.rowCtr.mitigate(r*c.G.Banks + b)
	c.Stats.RFMs++
	c.emit(CmdEvent{At: at, Kind: CmdRFM, Rank: r, Bank: b})
	return nil
}

// sortedRows returns table i's tracked rows in ascending order (the
// deterministic iteration order serialization needs).
func (rc *rowCounters) sortedRows(i int) []int {
	t := &rc.tables[i]
	rows := make([]int, 0, len(t.counts))
	for row := range t.counts {
		rows = append(rows, row)
	}
	sort.Ints(rows)
	return rows
}

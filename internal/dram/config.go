package dram

import "fmt"

// Timing holds the DDR3 timing parameters in memory-clock cycles, matching
// the paper's Table 3 for a 2Gb x8 DDR3-1600 device.
type Timing struct {
	TCKNs float64 // clock period in ns (1.25 for DDR3-1600)

	TRCD   int // ACT to column command
	TRP    int // PRE to ACT
	TCAS   int // CL: read command to first data
	TRAS   int // ACT to PRE
	TWR    int // end of write burst to PRE
	TCCD   int // column command to column command
	TRRD   int // ACT to ACT, different banks, same rank
	TFAW   int // four-activation window
	TRC    int // ACT to ACT, same bank (tRAS + tRP)
	TBURST int // data-bus cycles per 8-beat burst (4 at DDR)
	CWL    int // write command to first data
	TRTP   int // read to PRE
	TWTR   int // end of write burst to read command
	TRTRS  int // rank-to-rank data-bus switch
	TREFI  int // refresh interval
	TRFC   int // refresh cycle time (all-bank REF)
	TRFCPB int // per-bank refresh cycle time (REFpb blocks one bank)
	TXP    int // fast power-down exit to first command (DLL on)
	TXPDLL int // slow precharge power-down exit (DLL frozen) to first command
	TXS    int // self-refresh exit to first command
	TCKE   int // minimum CKE pulse width (residency in/out of power-down)
	TRFM   int // refresh-management (RFM) blocking time (0 = tRFCpb, then tRFC)

	// PRAMaskCycles is the extra command-cycle cost of a partial
	// activation: the PRA mask rides the address bus the cycle after the
	// ACT command, delaying the column command by one cycle (Figure 7a)
	// and occupying the command/address bus for one extra cycle.
	PRAMaskCycles int
}

// DefaultTiming returns the DDR3-1600 parameters from Table 3, with the
// secondary parameters (CWL, tRTP, tWTR, tRTRS, tREFI, tRFC, tXP, and the
// power-down/self-refresh set tXPDLL, tXS, tCKE, tRFCpb) set to standard
// DDR3-1600 datasheet values the paper does not list explicitly.
func DefaultTiming() Timing {
	return Timing{
		TCKNs:         1.25,
		TRCD:          11,
		TRP:           11,
		TCAS:          11,
		TRAS:          28,
		TWR:           12,
		TCCD:          4,
		TRRD:          5,
		TFAW:          24,
		TRC:           39,
		TBURST:        4,
		CWL:           8,
		TRTP:          6,
		TWTR:          6,
		TRTRS:         2,
		TREFI:         6240, // 7.8 us
		TRFC:          128,  // 160 ns for a 2Gb device
		TRFCPB:        72,   // 90 ns: per-bank refresh blocks one bank
		TXP:           5,    // 6 ns fast power-down exit
		TXPDLL:        20,   // 24 ns slow (DLL-off) precharge power-down exit
		TXS:           136,  // tRFC + 10 ns: self-refresh exit
		TCKE:          4,    // 5 ns minimum CKE pulse width
		TRFM:          72,   // 90 ns refresh-management burst (a few victim rows)
		PRAMaskCycles: 1,
	}
}

// Validate reports the first inconsistency in the timing set.
func (t Timing) Validate() error {
	switch {
	case t.TCKNs <= 0:
		return fmt.Errorf("dram: TCKNs must be positive, got %v", t.TCKNs)
	case t.TRC < t.TRAS+t.TRP:
		return fmt.Errorf("dram: TRC (%d) < TRAS+TRP (%d)", t.TRC, t.TRAS+t.TRP)
	case t.TRCD <= 0 || t.TRP <= 0 || t.TCAS <= 0 || t.TBURST <= 0:
		return fmt.Errorf("dram: primary timings must be positive")
	case t.TFAW < t.TRRD:
		return fmt.Errorf("dram: TFAW (%d) < TRRD (%d)", t.TFAW, t.TRRD)
	case t.TREFI <= t.TRFC:
		return fmt.Errorf("dram: TREFI (%d) must exceed TRFC (%d)", t.TREFI, t.TRFC)
	case t.TXP < 0 || t.TXPDLL < 0 || t.TXS < 0 || t.TCKE < 0 || t.TRFCPB < 0 || t.TRFM < 0:
		return fmt.Errorf("dram: power-down/refresh timings must be non-negative")
	case t.TXPDLL != 0 && t.TXPDLL < t.TXP:
		return fmt.Errorf("dram: TXPDLL (%d) < TXP (%d): slow exit cannot beat fast exit", t.TXPDLL, t.TXP)
	case t.TXS != 0 && t.TXS < t.TXP:
		return fmt.Errorf("dram: TXS (%d) < TXP (%d): self-refresh exit cannot beat power-down exit", t.TXS, t.TXP)
	case t.TRFCPB != 0 && t.TRFCPB > t.TRFC:
		return fmt.Errorf("dram: TRFCPB (%d) > TRFC (%d): per-bank refresh cannot outlast all-bank", t.TRFCPB, t.TRFC)
	}
	return nil
}

// Geometry describes the channel organization (paper Table 3: 8GB, 2
// channels, 2 ranks/channel, 8 x8 chips/rank, 8 banks, 32K rows, 1KB row
// per chip => 8KB row per rank => 128 64B lines per row).
type Geometry struct {
	Ranks        int
	Banks        int // per rank
	Rows         int // per bank
	LinesPerRow  int // 64B cache lines per row (rank-level row)
	ChipsPerRank int
}

// DefaultGeometry returns one baseline channel's organization.
func DefaultGeometry() Geometry {
	return Geometry{Ranks: 2, Banks: 8, Rows: 32768, LinesPerRow: 128, ChipsPerRank: 8}
}

// Validate reports the first inconsistency in the geometry.
func (g Geometry) Validate() error {
	if g.Ranks <= 0 || g.Banks <= 0 || g.Rows <= 0 || g.LinesPerRow <= 0 || g.ChipsPerRank <= 0 {
		return fmt.Errorf("dram: geometry fields must be positive: %+v", g)
	}
	return nil
}

// BytesPerChannel returns the channel capacity in bytes.
func (g Geometry) BytesPerChannel() int64 {
	return int64(g.Ranks) * int64(g.Banks) * int64(g.Rows) * int64(g.LinesPerRow) * 64
}

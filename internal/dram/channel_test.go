package dram

import (
	"math/rand"
	"testing"

	"pradram/internal/core"
	"pradram/internal/power"
)

func newTestChannel(t *testing.T) *Channel {
	t.Helper()
	ch, err := NewChannel(DefaultTiming(), DefaultGeometry(), power.NewAccumulator())
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func mustActivate(t *testing.T, c *Channel, at int64, r, b, row int, mask core.Mask, half bool) int64 {
	t.Helper()
	ready := c.ActReadyAt(at, r, b, mask, half)
	if err := c.Activate(ready, r, b, row, mask, half); err != nil {
		t.Fatalf("Activate: %v", err)
	}
	return ready
}

func TestConfigValidation(t *testing.T) {
	t.Parallel()
	bad := DefaultTiming()
	bad.TRC = 5
	if bad.Validate() == nil {
		t.Error("TRC < TRAS+TRP must fail validation")
	}
	bad = DefaultTiming()
	bad.TCKNs = 0
	if bad.Validate() == nil {
		t.Error("zero tCK must fail validation")
	}
	bad = DefaultTiming()
	bad.TFAW = 2
	if bad.Validate() == nil {
		t.Error("TFAW < TRRD must fail validation")
	}
	bad = DefaultTiming()
	bad.TREFI = 10
	if bad.Validate() == nil {
		t.Error("TREFI <= TRFC must fail validation")
	}
	g := DefaultGeometry()
	g.Banks = 0
	if g.Validate() == nil {
		t.Error("zero banks must fail validation")
	}
	if _, err := NewChannel(bad, DefaultGeometry(), nil); err == nil {
		t.Error("NewChannel must propagate validation errors")
	}
}

func TestGeometryCapacity(t *testing.T) {
	t.Parallel()
	g := DefaultGeometry()
	// 2 ranks x 8 banks x 32K rows x 128 lines x 64B = 4GB per channel
	// (2 channels = the paper's 8GB system).
	if got := g.BytesPerChannel(); got != 4<<30 {
		t.Errorf("channel capacity = %d, want 4GiB", got)
	}
}

func TestActivateThenReadTiming(t *testing.T) {
	t.Parallel()
	c := newTestChannel(t)
	if err := c.Activate(0, 0, 0, 42, core.FullMask, false); err != nil {
		t.Fatal(err)
	}
	// A read before tRCD must be rejected.
	if _, err := c.Read(int64(c.T.TRCD)-1, 0, 0, c.T.TBURST, 1, false); err == nil {
		t.Error("read before tRCD must fail")
	}
	done, err := c.Read(int64(c.T.TRCD), 0, 0, c.T.TBURST, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(c.T.TRCD + c.T.TCAS + c.T.TBURST)
	if done != want {
		t.Errorf("read done at %d, want %d", done, want)
	}
	row, mask, open := c.OpenRow(0, 0)
	if !open || row != 42 || !mask.IsFull() {
		t.Errorf("open row state wrong: row=%d mask=%s open=%v", row, mask, open)
	}
}

func TestPartialActivationExtraCycle(t *testing.T) {
	t.Parallel()
	c := newTestChannel(t)
	if err := c.Activate(0, 0, 0, 1, core.Mask(0x01), false); err != nil {
		t.Fatal(err)
	}
	// Column command is delayed by tRCD + 1 (mask transfer cycle).
	if _, err := c.Write(int64(c.T.TRCD), 0, 0, c.T.TBURST, 0.125, false); err == nil {
		t.Error("write at tRCD must fail after partial ACT (needs +1)")
	}
	if _, err := c.Write(int64(c.T.TRCD+1), 0, 0, c.T.TBURST, 0.125, false); err != nil {
		t.Errorf("write at tRCD+1 after partial ACT: %v", err)
	}
	if g := c.Stats.ActsByGranularity[1]; g != 1 {
		t.Errorf("granularity histogram[1] = %d, want 1", g)
	}
}

func TestPartialActOccupiesCmdBusTwoCycles(t *testing.T) {
	t.Parallel()
	c := newTestChannel(t)
	if err := c.Activate(0, 0, 0, 1, core.Mask(0x03), false); err != nil {
		t.Fatal(err)
	}
	// The next command on the channel cannot issue at cycle 1 (mask on the
	// address bus), only at cycle 2.
	if got := c.ActReadyAt(1, 1, 0, core.FullMask, false); got < 2 {
		t.Errorf("next ACT ready at %d, want >= 2 (mask occupies addr bus)", got)
	}
}

func TestPrechargeRules(t *testing.T) {
	t.Parallel()
	c := newTestChannel(t)
	if err := c.Precharge(0, 0, 0); err == nil {
		t.Error("PRE to closed bank must fail")
	}
	if err := c.Activate(0, 0, 0, 7, core.FullMask, false); err != nil {
		t.Fatal(err)
	}
	if err := c.Precharge(int64(c.T.TRAS)-1, 0, 0); err == nil {
		t.Error("PRE before tRAS must fail")
	}
	if err := c.Precharge(int64(c.T.TRAS), 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, open := c.OpenRow(0, 0); open {
		t.Error("bank must be closed after precharge")
	}
	// Re-activation honors tRP.
	ready := c.ActReadyAt(int64(c.T.TRAS), 0, 0, core.FullMask, false)
	if want := int64(c.T.TRAS + c.T.TRP); ready < want {
		t.Errorf("re-ACT ready at %d, want >= %d (tRP)", ready, want)
	}
	// Same-bank ACT-to-ACT also honors tRC.
	if ready < int64(c.T.TRC) {
		t.Errorf("re-ACT ready at %d, want >= tRC %d", ready, c.T.TRC)
	}
}

func TestActToOpenBankFails(t *testing.T) {
	t.Parallel()
	c := newTestChannel(t)
	if err := c.Activate(0, 0, 0, 7, core.FullMask, false); err != nil {
		t.Fatal(err)
	}
	at := c.ActReadyAt(100, 0, 0, core.FullMask, false)
	if err := c.Activate(at, 0, 0, 8, core.FullMask, false); err == nil {
		t.Error("ACT to a bank with an open row must fail")
	}
}

func TestActValidation(t *testing.T) {
	t.Parallel()
	c := newTestChannel(t)
	if err := c.Activate(0, 0, 0, 7, 0, false); err == nil {
		t.Error("empty mask must fail")
	}
	if err := c.Activate(0, 0, 0, -1, core.FullMask, false); err == nil {
		t.Error("negative row must fail")
	}
	if err := c.Activate(0, 0, 0, c.G.Rows, core.FullMask, false); err == nil {
		t.Error("row beyond geometry must fail")
	}
}

func TestTRRDBetweenBanks(t *testing.T) {
	t.Parallel()
	c := newTestChannel(t)
	if err := c.Activate(0, 0, 0, 1, core.FullMask, false); err != nil {
		t.Fatal(err)
	}
	ready := c.ActReadyAt(0, 0, 1, core.FullMask, false)
	if ready != int64(c.T.TRRD) {
		t.Errorf("second full ACT ready at %d, want tRRD %d", ready, c.T.TRRD)
	}
}

func TestTRRDRelaxedForPartial(t *testing.T) {
	t.Parallel()
	c := newTestChannel(t)
	if err := c.Activate(0, 0, 0, 1, core.Mask(0x01), false); err != nil {
		t.Fatal(err)
	}
	ready := c.ActReadyAt(0, 0, 1, core.Mask(0x01), false)
	// 1/8 activation imposes ceil(5 * 1/8) = 1 cycle of tRRD, but the mask
	// occupies the command bus for 2 cycles, so the next ACT goes at 2.
	if ready != 2 {
		t.Errorf("partial-after-partial ACT ready at %d, want 2", ready)
	}
}

func TestTFAWLimitsFullActivations(t *testing.T) {
	t.Parallel()
	c := newTestChannel(t)
	var at int64
	for b := 0; b < 4; b++ {
		at = mustActivate(t, c, at, 0, b, 1, core.FullMask, false)
	}
	ready := c.ActReadyAt(at, 0, 4, core.FullMask, false)
	if ready < int64(c.T.TFAW) {
		t.Errorf("5th full ACT at %d, want >= tFAW %d", ready, c.T.TFAW)
	}
}

func TestTFAWRelaxedForPartialActivations(t *testing.T) {
	t.Parallel()
	c := newTestChannel(t)
	var at int64
	// Sixteen 1/8 activations weigh 2.0 < 4: never FAW-limited; spacing is
	// only the command-bus (2 cycles each for mask transfer).
	for b := 0; b < 8; b++ {
		at = mustActivate(t, c, at, 0, b, 1, core.Mask(0x01), false)
		if b > 0 && at > int64(b*2) {
			t.Fatalf("partial ACT %d delayed to %d; FAW should not bind", b, at)
		}
		// Close it so we can reuse banks later if needed.
	}
	if got := c.Stats.Activations(); got != 8 {
		t.Errorf("activations = %d, want 8", got)
	}
}

func TestHalfDRAMWeightsHalf(t *testing.T) {
	t.Parallel()
	c := newTestChannel(t)
	var at int64
	// Eight half-weighted full-row ACTs sum to 4.0: all fit one window at
	// tRRD' = ceil(5*0.5) = 3 spacing.
	for b := 0; b < 8; b++ {
		ready := c.ActReadyAt(at, 0, b, core.FullMask, true)
		if b > 0 && ready-at > 3 {
			t.Fatalf("Half-DRAM ACT %d spaced %d, want <= 3", b, ready-at)
		}
		if err := c.Activate(ready, 0, b, 1, core.FullMask, true); err != nil {
			t.Fatal(err)
		}
		at = ready
	}
}

func TestDataBusConflictBetweenReads(t *testing.T) {
	t.Parallel()
	c := newTestChannel(t)
	mustActivate(t, c, 0, 0, 0, 1, core.FullMask, false)
	mustActivate(t, c, 0, 0, 1, 2, core.FullMask, false)
	at := c.ReadReadyAt(20, 0, 0, c.T.TBURST)
	done1, err := c.Read(at, 0, 0, c.T.TBURST, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	at2 := c.ReadReadyAt(at, 0, 1, c.T.TBURST)
	done2, err := c.Read(at2, 0, 1, c.T.TBURST, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if done2-done1 < int64(c.T.TBURST) {
		t.Errorf("second read data overlaps first: %d then %d", done1, done2)
	}
}

func TestWriteToReadTurnaround(t *testing.T) {
	t.Parallel()
	c := newTestChannel(t)
	mustActivate(t, c, 0, 0, 0, 1, core.FullMask, false)
	wrAt := c.WriteReadyAt(20, 0, 0, c.T.TBURST)
	wrDone, err := c.Write(wrAt, 0, 0, c.T.TBURST, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	rdAt := c.ReadReadyAt(wrAt, 0, 0, c.T.TBURST)
	if rdAt < wrDone+int64(c.T.TWTR) {
		t.Errorf("read after write at %d, want >= burst end %d + tWTR %d", rdAt, wrDone, c.T.TWTR)
	}
}

func TestWriteRecoveryBeforePrecharge(t *testing.T) {
	t.Parallel()
	c := newTestChannel(t)
	mustActivate(t, c, 0, 0, 0, 1, core.FullMask, false)
	wrAt := c.WriteReadyAt(0, 0, 0, c.T.TBURST)
	wrDone, err := c.Write(wrAt, 0, 0, c.T.TBURST, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	preAt := c.PreReadyAt(wrAt, 0, 0)
	if preAt < wrDone+int64(c.T.TWR) {
		t.Errorf("PRE at %d, want >= write end %d + tWR %d", preAt, wrDone, c.T.TWR)
	}
}

func TestAutoPrecharge(t *testing.T) {
	t.Parallel()
	c := newTestChannel(t)
	mustActivate(t, c, 0, 0, 0, 1, core.FullMask, false)
	at := c.ReadReadyAt(0, 0, 0, c.T.TBURST)
	if _, err := c.Read(at, 0, 0, c.T.TBURST, 1, true); err != nil {
		t.Fatal(err)
	}
	if _, _, open := c.OpenRow(0, 0); open {
		t.Error("auto-precharge must close the row")
	}
	if c.Stats.Precharges != 1 {
		t.Errorf("precharges = %d, want 1", c.Stats.Precharges)
	}
}

func TestColumnToClosedBankFails(t *testing.T) {
	t.Parallel()
	c := newTestChannel(t)
	if _, err := c.Read(0, 0, 0, 4, 1, false); err == nil {
		t.Error("read from closed bank must fail")
	}
	if _, err := c.Write(0, 0, 0, 4, 1, false); err == nil {
		t.Error("write to closed bank must fail")
	}
}

func TestRefreshLifecycle(t *testing.T) {
	t.Parallel()
	c := newTestChannel(t)
	r := 0
	if c.RefreshDue(0, r) {
		t.Error("refresh not due at cycle 0")
	}
	due := int64(c.T.TREFI) * int64(r+1) / int64(c.G.Ranks)
	if !c.RefreshDue(due, r) {
		t.Error("refresh due at scheduled point")
	}
	// Refresh with an open bank is refused.
	mustActivate(t, c, 0, r, 0, 1, core.FullMask, false)
	if _, ok := c.RefreshReadyAt(due, r); ok {
		t.Error("refresh must not be ready with open banks")
	}
	if err := c.Refresh(due, r); err == nil {
		t.Error("refresh with open banks must fail")
	}
	pre := c.PreReadyAt(due, r, 0)
	if err := c.Precharge(pre, r, 0); err != nil {
		t.Fatal(err)
	}
	ready, ok := c.RefreshReadyAt(pre, r)
	if !ok {
		t.Fatal("refresh should be ready after precharge")
	}
	if err := c.Refresh(ready, r); err != nil {
		t.Fatal(err)
	}
	if c.RefreshDue(ready, r) {
		t.Error("refresh no longer due after REF")
	}
	// The rank is blocked for tRFC.
	if got := c.ActReadyAt(ready, r, 0, core.FullMask, false); got < ready+int64(c.T.TRFC) {
		t.Errorf("ACT during refresh at %d, want >= %d", got, ready+int64(c.T.TRFC))
	}
	if c.Stats.Refreshes != 1 {
		t.Errorf("refreshes = %d, want 1", c.Stats.Refreshes)
	}
}

func TestPowerDownAndWake(t *testing.T) {
	t.Parallel()
	c := newTestChannel(t)
	c.PowerDown(0, 0)
	if !c.PoweredDown(0) {
		t.Error("rank should be powered down")
	}
	// ACT to a powered-down rank is rejected outright.
	if err := c.Activate(200, 0, 0, 1, core.FullMask, false); err == nil {
		t.Error("ACT to powered-down rank must fail")
	}
	// Readiness queries assume a wake at query time: at least tXP away.
	ready := c.ActReadyAt(100, 0, 0, core.FullMask, false)
	if ready < 100+int64(c.T.TXP) {
		t.Errorf("ACT from power-down at %d, want >= %d", ready, 100+int64(c.T.TXP))
	}
	// After an explicit wake, commands wait tXP and then proceed.
	c.Wake(100, 0)
	if c.PoweredDown(0) {
		t.Error("Wake must clear power-down")
	}
	ready = c.ActReadyAt(100, 0, 0, core.FullMask, false)
	if ready != 100+int64(c.T.TXP) {
		t.Errorf("post-wake ACT ready at %d, want %d", ready, 100+int64(c.T.TXP))
	}
	if err := c.Activate(ready, 0, 0, 1, core.FullMask, false); err != nil {
		t.Fatal(err)
	}
	// Waking an awake rank is a no-op.
	c.Wake(ready, 0)
	// Power-down with an open bank is refused.
	c.PowerDown(ready, 0)
	if c.PoweredDown(0) {
		t.Error("power-down with open bank must be refused")
	}
	// Refresh to a powered-down rank is rejected too.
	c2 := newTestChannel(t)
	c2.PowerDown(0, 0)
	if err := c2.Refresh(int64(c2.T.TREFI), 0); err == nil {
		t.Error("REF to powered-down rank must fail")
	}
}

func TestBackgroundAccountingStates(t *testing.T) {
	t.Parallel()
	acc := power.NewAccumulator()
	c, err := NewChannel(DefaultTiming(), DefaultGeometry(), acc)
	if err != nil {
		t.Fatal(err)
	}
	// 10 cycles precharged-standby on both ranks.
	c.AdvanceTo(10)
	preE := acc.TotalEnergy()
	if preE <= 0 {
		t.Fatal("background energy must accrue")
	}
	// Open a bank: active standby is costlier.
	mustActivate(t, c, 10, 0, 0, 1, core.FullMask, false)
	acc.Reset()
	c.AdvanceTo(20)
	actE := acc.TotalEnergy()
	if actE <= preE {
		t.Errorf("active standby (%v) must exceed precharged standby (%v)", actE, preE)
	}
	// Powered down is cheapest.
	pre := c.PreReadyAt(20, 0, 0)
	if err := c.Precharge(pre, 0, 0); err != nil {
		t.Fatal(err)
	}
	c.AdvanceTo(pre)
	c.PowerDown(pre, 0)
	c.PowerDown(pre, 1)
	acc.Reset()
	c.AdvanceTo(pre + 10)
	pdnE := acc.TotalEnergy()
	if pdnE >= preE {
		t.Errorf("power-down energy (%v) must be below precharged standby (%v)", pdnE, preE)
	}
	if c.Stats.PowerDownCycles == 0 {
		t.Error("power-down cycles must be counted")
	}
}

func TestStatsWordAccounting(t *testing.T) {
	t.Parallel()
	c := newTestChannel(t)
	mustActivate(t, c, 0, 0, 0, 1, core.FullMask, false)
	at := c.WriteReadyAt(0, 0, 0, c.T.TBURST)
	if _, err := c.Write(at, 0, 0, c.T.TBURST, 0.25, false); err != nil {
		t.Fatal(err)
	}
	if c.Stats.WordsWritten != 2 || c.Stats.WordBudget != 8 {
		t.Errorf("word accounting = %d/%d, want 2/8", c.Stats.WordsWritten, c.Stats.WordBudget)
	}
}

func TestAvgGranularity(t *testing.T) {
	t.Parallel()
	var s Stats
	if s.AvgGranularity() != 0 {
		t.Error("empty stats average 0")
	}
	s.ActsByGranularity[8] = 1
	s.ActsByGranularity[1] = 1
	if got := s.AvgGranularity(); got != 4.5 {
		t.Errorf("avg granularity = %v, want 4.5", got)
	}
}

// Property-style fuzz: a driver that always asks ReadyAt before issuing must
// never see an error, and device invariants hold throughout.
func TestRandomLegalCommandStream(t *testing.T) {
	t.Parallel()
	c := newTestChannel(t)
	rng := rand.New(rand.NewSource(7))
	now := int64(0)
	type key struct{ r, b int }
	open := map[key]bool{}
	for i := 0; i < 3000; i++ {
		r := rng.Intn(c.G.Ranks)
		b := rng.Intn(c.G.Banks)
		k := key{r, b}
		if open[k] {
			switch rng.Intn(4) {
			case 0:
				at := c.ReadReadyAt(now, r, b, c.T.TBURST)
				if _, err := c.Read(at, r, b, c.T.TBURST, 1, false); err != nil {
					t.Fatalf("step %d: %v", i, err)
				}
				now = at
			case 1:
				at := c.WriteReadyAt(now, r, b, c.T.TBURST)
				if _, err := c.Write(at, r, b, c.T.TBURST, rng.Float64(), false); err != nil {
					t.Fatalf("step %d: %v", i, err)
				}
				now = at
			default:
				at := c.PreReadyAt(now, r, b)
				if err := c.Precharge(at, r, b); err != nil {
					t.Fatalf("step %d: %v", i, err)
				}
				open[k] = false
				now = at
			}
		} else {
			mask := core.Mask(rng.Intn(255) + 1)
			half := rng.Intn(2) == 0
			at := c.ActReadyAt(now, r, b, mask, half)
			if err := c.Activate(at, r, b, rng.Intn(c.G.Rows), mask, half); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
			open[k] = true
			now = at
		}
		c.AdvanceTo(now)
	}
	if c.Stats.Activations() == 0 || c.Stats.Reads == 0 || c.Stats.Writes == 0 {
		t.Error("random stream should exercise all command types")
	}
	if c.Acc.TotalEnergy() <= 0 {
		t.Error("energy must accrue")
	}
}

package dram

import (
	"testing"

	"pradram/internal/core"
	"pradram/internal/power"
)

// drain advances rank r of ch past any refresh obligation at cycle now by
// issuing due refreshes, returning the first cycle with no refresh due.
func drainRefresh(t *testing.T, c *Channel, now int64, r int) int64 {
	t.Helper()
	for c.RefreshDue(now, r) {
		at, ok := c.RefreshReadyAt(now, r)
		if !ok {
			t.Fatal("refresh blocked by open banks")
		}
		if err := c.Refresh(at, r); err != nil {
			t.Fatalf("Refresh: %v", err)
		}
		now = at + int64(c.T.TRFC)
	}
	return now
}

func TestSlowExitPowerDownUsesTXPDLL(t *testing.T) {
	t.Parallel()
	ch := newTestChannel(t)
	ch.SlowExitPD = true
	if !ch.EnterPowerDown(10, 0) {
		t.Fatal("slow power-down entry refused")
	}
	if got := ch.PDStateOf(0); got != PDPrechargeSlow {
		t.Fatalf("state = %v, want pre-pd-slow", got)
	}
	ch.Wake(100, 0)
	ready := ch.ActReadyAt(100, 0, 0, core.FullMask, false)
	if want := int64(100 + ch.T.TXPDLL); ready != want {
		t.Fatalf("post-slow-wake ACT ready at %d, want %d (tXPDLL)", ready, want)
	}
}

func TestActivePowerDownLifecycle(t *testing.T) {
	t.Parallel()
	ch := newTestChannel(t)
	// APD entry requires an open bank.
	if ch.EnterActivePowerDown(5, 0) {
		t.Fatal("APD entered with all banks closed")
	}
	at := mustActivate(t, ch, 0, 0, 0, 7, core.FullMask, false)
	entry := at + int64(ch.T.TRAS)
	if !ch.EnterActivePowerDown(entry, 0) {
		t.Fatal("APD entry refused with an open bank")
	}
	if got := ch.PDStateOf(0); got != PDActive {
		t.Fatalf("state = %v, want active-pd", got)
	}
	// Columns and precharges are rejected while CKE is low.
	if _, err := ch.Read(entry+1, 0, 0, ch.T.TBURST, 1, false); err == nil {
		t.Fatal("RD accepted in active power-down")
	}
	if _, err := ch.Write(entry+1, 0, 0, ch.T.TBURST, 1, false); err == nil {
		t.Fatal("WR accepted in active power-down")
	}
	if err := ch.Precharge(entry+1, 0, 0); err == nil {
		t.Fatal("PRE accepted in active power-down")
	}
	// The open row must survive wake, and the first column waits tXP.
	wake := entry + 50
	ch.Wake(wake, 0)
	if _, _, open := ch.OpenRow(0, 0); !open {
		t.Fatal("row lost across active power-down")
	}
	ready := ch.ReadReadyAt(wake, 0, 0, ch.T.TBURST)
	if want := wake + int64(ch.T.TXP); ready != want {
		t.Fatalf("post-APD-wake RD ready at %d, want %d (tXP)", ready, want)
	}
	if _, err := ch.Read(ready, 0, 0, ch.T.TBURST, 1, false); err != nil {
		t.Fatalf("RD after APD wake: %v", err)
	}
}

func TestSelfRefreshLifecycle(t *testing.T) {
	t.Parallel()
	ch := newTestChannel(t)
	// Entry is refused while a refresh is due.
	due := ch.NextRefreshAt(0)
	if ch.EnterSelfRefresh(due, 0) {
		t.Fatal("self-refresh entered with a refresh due")
	}
	now := drainRefresh(t, ch, due, 0)
	if !ch.EnterSelfRefresh(now, 0) {
		t.Fatal("self-refresh entry refused on a refresh-current rank")
	}
	if got := ch.PDStateOf(0); got != PDSelfRefresh {
		t.Fatalf("state = %v, want self-refresh", got)
	}
	// No external refresh falls due while self-refreshing, and the rank's
	// deadline drops out of the channel horizon.
	far := now + 100*int64(ch.T.TREFI)
	if ch.RefreshDue(far, 0) {
		t.Fatal("external refresh due during self-refresh")
	}
	if ch.NextRefreshAt(0) != neverRefresh {
		t.Fatal("self-refreshing rank still advertises a refresh deadline")
	}
	if err := ch.Refresh(far, 0); err == nil {
		t.Fatal("external REF accepted during self-refresh")
	}
	// Exit costs tXS, and the refresh timer re-arms after the exit.
	ch.Wake(far, 0)
	ready := ch.ActReadyAt(far, 0, 0, core.FullMask, false)
	if want := far + int64(ch.T.TXS); ready != want {
		t.Fatalf("post-SR-wake ACT ready at %d, want %d (tXS)", ready, want)
	}
	if next := ch.NextRefreshAt(0); next != ready+int64(ch.T.TREFI) {
		t.Fatalf("post-SR refresh deadline %d, want %d", next, ready+int64(ch.T.TREFI))
	}
	if ch.Stats.SelfRefEntries != 1 {
		t.Fatalf("SelfRefEntries = %d, want 1", ch.Stats.SelfRefEntries)
	}
}

func TestTCKEMinimumResidency(t *testing.T) {
	t.Parallel()
	ch := newTestChannel(t)
	// A wake within tCKE of entry is clamped: CKE cannot rise before
	// entry + tCKE, so the exit window lands at entry + tCKE + tXP.
	if !ch.EnterPowerDown(100, 0) {
		t.Fatal("power-down entry refused")
	}
	ch.Wake(101, 0)
	ready := ch.ActReadyAt(101, 0, 0, core.FullMask, false)
	if want := int64(100 + ch.T.TCKE + ch.T.TXP); ready != want {
		t.Fatalf("early-wake ACT ready at %d, want %d (tCKE clamp + tXP)", ready, want)
	}
	// Re-entry within tCKE of the wake is refused (CKE high pulse width),
	// then allowed once the window passes.
	wakeEff := int64(100 + ch.T.TCKE)
	if ch.EnterPowerDown(wakeEff+1, 0) {
		t.Fatal("re-entered power-down inside the tCKE window")
	}
	okAt := wakeEff + int64(ch.T.TCKE) + int64(ch.T.TXP)
	if !ch.EnterPowerDown(okAt, 0) {
		t.Fatal("power-down re-entry refused after tCKE + tXP")
	}
}

func TestPerBankRefreshBlocksOnlyTargetBank(t *testing.T) {
	t.Parallel()
	ch := newTestChannel(t)
	ch.RefMode = RefPerBank
	iv := int64(ch.T.TREFI) / int64(ch.G.Banks)
	if got := ch.refInterval(); got != iv {
		t.Fatalf("refInterval = %d, want %d", got, iv)
	}
	// All-bank REF is rejected in per-bank mode.
	if err := ch.Refresh(ch.NextRefreshAt(0), 0); err == nil {
		t.Fatal("all-bank REF accepted on a per-bank channel")
	}
	// Open a row in a non-target bank; REFpb must still issue.
	target := ch.NextRefreshBank(0)
	other := (target + 1) % ch.G.Banks
	mustActivate(t, ch, 0, 0, other, 3, core.FullMask, false)
	now := ch.NextRefreshAt(0)
	at, ok := ch.RefreshBankReadyAt(now, 0)
	if !ok {
		t.Fatal("REFpb blocked by an open row in a different bank")
	}
	if err := ch.RefreshBank(at, 0); err != nil {
		t.Fatalf("RefreshBank: %v", err)
	}
	// The target bank is blocked for tRFCpb; the open bank keeps serving.
	if ready := ch.ActReadyAt(at+1, 0, target, core.FullMask, false); ready < at+int64(ch.T.TRFCPB) {
		t.Fatalf("refreshed bank ACT-ready at %d, want >= %d (tRFCpb)", ready, at+int64(ch.T.TRFCPB))
	}
	if ready := ch.ReadReadyAt(at+1, 0, other, ch.T.TBURST); ready >= at+int64(ch.T.TRFCPB) {
		t.Fatalf("other bank blocked until %d by a per-bank refresh", ready)
	}
	// The cursor advanced and the deadline moved one per-bank interval.
	if got := ch.NextRefreshBank(0); got != other {
		t.Fatalf("refresh cursor = %d, want %d", got, other)
	}
	if got := ch.NextRefreshAt(0); got != now+iv {
		t.Fatalf("next deadline = %d, want %d", got, now+iv)
	}
	// A REFpb aimed at an open bank reports not-ready.
	mustActivate(t, ch, at+int64(ch.T.TRFCPB), 0, target, 5, core.FullMask, false) // reopen some bank
	for ch.NextRefreshBank(0) != other {
		at2, ok := ch.RefreshBankReadyAt(ch.NextRefreshAt(0), 0)
		if !ok {
			t.Fatal("REFpb unexpectedly blocked")
		}
		if err := ch.RefreshBank(at2, 0); err != nil {
			t.Fatalf("RefreshBank: %v", err)
		}
	}
	if _, ok := ch.RefreshBankReadyAt(ch.NextRefreshAt(0), 0); ok {
		t.Fatal("REFpb ready with an open row in the target bank")
	}
}

func TestRefreshPostponeWindowBounds(t *testing.T) {
	t.Parallel()
	ch := newTestChannel(t)
	ch.MaxPostpone = 8
	iv := int64(ch.T.TREFI)
	due := ch.NextRefreshAt(0)
	if ch.RefreshMust(due, 0) {
		t.Fatal("refresh already mandatory at its nominal deadline")
	}
	if !ch.RefreshMust(due+8*iv, 0) {
		t.Fatal("refresh still postponable past 8x tREFI")
	}
	if got := ch.MustRefreshAt(0); got != due+8*iv {
		t.Fatalf("MustRefreshAt = %d, want %d", got, due+8*iv)
	}
	// Postponing past one interval counts as a postponed refresh.
	late := due + iv
	if err := ch.Refresh(late, 0); err != nil {
		t.Fatalf("postponed Refresh: %v", err)
	}
	if ch.Stats.PostponedRefreshes != 1 {
		t.Fatalf("PostponedRefreshes = %d, want 1", ch.Stats.PostponedRefreshes)
	}
	// Pull in up to the credit; the 8th consecutive early refresh that
	// would exceed the window is rejected.
	now := late + int64(ch.T.TRFC)
	pulled := 0
	for ch.CanPullIn(now, 0) {
		at, ok := ch.RefreshReadyAt(now, 0)
		if !ok {
			t.Fatal("refresh blocked by open banks")
		}
		if err := ch.Refresh(at, 0); err != nil {
			t.Fatalf("pull-in Refresh #%d: %v", pulled+1, err)
		}
		now = at + int64(ch.T.TRFC)
		pulled++
		if pulled > 16 {
			t.Fatal("pull-in never exhausted its credit")
		}
	}
	if ch.Stats.PulledInRefreshes == 0 {
		t.Fatal("no pulled-in refreshes counted")
	}
	// Beyond the credit the channel rejects the early refresh outright.
	at, _ := ch.RefreshReadyAt(now, 0)
	if err := ch.Refresh(at, 0); err == nil {
		t.Fatal("refresh pull-in beyond the 8x window accepted")
	}
}

func TestPostponeZeroKeepsSeedDiscipline(t *testing.T) {
	t.Parallel()
	ch := newTestChannel(t)
	if ch.CanPullIn(0, 0) {
		t.Fatal("pull-in allowed with MaxPostpone = 0")
	}
	due := ch.NextRefreshAt(0)
	if !ch.RefreshMust(due, 0) {
		t.Fatal("with MaxPostpone = 0, due must imply mandatory")
	}
	if err := ch.Refresh(due-1, 0); err == nil {
		t.Fatal("early refresh accepted with no pull-in credit")
	}
}

func TestBackgroundAccountingDeepStates(t *testing.T) {
	t.Parallel()
	ch, err := NewChannel(DefaultTiming(), DefaultGeometry(), power.NewAccumulator())
	if err != nil {
		t.Fatal(err)
	}
	// Rank 0: slow power-down. Rank 1 would interleave refreshes; keep the
	// span short of any deadline.
	ch.SlowExitPD = true
	if !ch.EnterPowerDown(0, 0) {
		t.Fatal("entry refused")
	}
	ch.AdvanceTo(1000)
	if ch.Stats.SlowPDCycles != 1000 {
		t.Fatalf("SlowPDCycles = %d, want 1000", ch.Stats.SlowPDCycles)
	}
	ch.Wake(1000, 0)
	// Self-refresh accrues SelfRefCycles.
	now := drainRefresh(t, ch, ch.NextRefreshAt(0), 0)
	if !ch.EnterSelfRefresh(now, 0) {
		t.Fatal("self-refresh refused")
	}
	ch.AdvanceTo(now + 500)
	if ch.Stats.SelfRefCycles != 500 {
		t.Fatalf("SelfRefCycles = %d, want 500", ch.Stats.SelfRefCycles)
	}
	if got := ch.Stats.LowPowerCycles(); got != 1500 {
		t.Fatalf("LowPowerCycles = %d, want 1500", got)
	}
	if ch.Stats.TotalRankCycles() == 0 {
		t.Fatal("TotalRankCycles must include awake rank 1")
	}
}

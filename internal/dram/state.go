package dram

import (
	"pradram/internal/checkpoint"
	"pradram/internal/core"
)

// Checkpointing (DESIGN.md §4e). The channel serializes bus/command state
// and the per-rank, per-bank timing windows. Statistics, per-bank command
// tallies, and accumulated energy are NOT serialized: checkpoints are
// taken at the warmup boundary, immediately after ResetStats (which also
// flushes pending background spans, so bgFrom == acctUpTo there — but the
// fields are written anyway to keep the round trip exact at any point).

// SaveState appends the channel's dynamic state.
func (c *Channel) SaveState(w *checkpoint.Writer) {
	w.I64(c.cmdFree)
	w.I64(c.busFree)
	w.U8(uint8(c.busDir))
	w.Int(c.busRank)
	w.I64(c.acctUpTo)
	for r := range c.ranks {
		rk := &c.ranks[r]
		w.I64(rk.rrdAllowed)
		w.I64(rk.colAllowed)
		w.I64(rk.rdAfterWr)
		w.Count(len(rk.faw))
		for _, e := range rk.faw {
			w.I64(e.t)
			w.F64(e.w)
		}
		w.I64(rk.refUntil)
		w.I64(rk.nextRefresh)
		w.Int(rk.refBank)
		w.U8(uint8(rk.pd))
		w.I64(rk.pdEnteredAt)
		w.I64(rk.pdExit)
		w.I64(rk.pdReady)
		w.I64(rk.bgFrom)
		for b := range rk.banks {
			bk := &rk.banks[b]
			w.Bool(bk.open)
			w.Int(bk.row)
			w.U8(uint8(bk.mask))
			w.I64(bk.actAllowed)
			w.I64(bk.rdAllowed)
			w.I64(bk.wrAllowed)
			w.I64(bk.preAllowed)
		}
	}
	// Per-row activation counter tables (rowcounter.go): counter contents
	// are simulation state, not statistics — a restored run must alert and
	// RFM at exactly the cycles the monolithic run would (ckptFormat v3).
	// Tracked rows serialize in ascending row order for determinism.
	w.Bool(c.rowCtr != nil)
	if c.rowCtr != nil {
		for i := range c.rowCtr.tables {
			t := &c.rowCtr.tables[i]
			rows := c.rowCtr.sortedRows(i)
			w.Count(len(rows))
			for _, row := range rows {
				w.Int(row)
				w.I64(t.counts[row])
			}
			w.I64(t.spill)
		}
	}
}

// RestoreState decodes a SaveState payload into temporaries and returns a
// commit that installs it; on error the channel is untouched. openCount is
// recomputed from the bank states rather than trusted from the payload.
func (c *Channel) RestoreState(r *checkpoint.Reader) (func(), error) {
	cmdFree := r.I64()
	busFree := r.I64()
	busDir := BusDir(r.U8())
	if busDir > BusWrite {
		r.Fail("dram: bus direction %d", busDir)
	}
	busRank := r.Int()
	if busRank < 0 || busRank >= c.G.Ranks {
		r.Fail("dram: bus rank %d of %d", busRank, c.G.Ranks)
	}
	acctUpTo := r.I64()
	ranks := make([]rankState, len(c.ranks))
	for ri := range ranks {
		rk := &ranks[ri]
		rk.rrdAllowed = r.I64()
		rk.colAllowed = r.I64()
		rk.rdAfterWr = r.I64()
		rk.faw = make([]fawEntry, r.Count())
		for i := range rk.faw {
			rk.faw[i] = fawEntry{t: r.I64(), w: r.F64()}
		}
		rk.refUntil = r.I64()
		rk.nextRefresh = r.I64()
		rk.refBank = r.Int()
		if rk.refBank < 0 || rk.refBank >= c.G.Banks {
			r.Fail("dram: rank %d refresh bank %d of %d", ri, rk.refBank, c.G.Banks)
		}
		rk.pd = PDState(r.U8())
		if rk.pd > PDSelfRefresh {
			r.Fail("dram: rank %d power-down state %d", ri, rk.pd)
		}
		rk.pdEnteredAt = r.I64()
		rk.pdExit = r.I64()
		rk.pdReady = r.I64()
		rk.bgFrom = r.I64()
		rk.banks = make([]bankState, c.G.Banks)
		for bi := range rk.banks {
			bk := &rk.banks[bi]
			bk.open = r.Bool()
			bk.row = r.Int()
			bk.mask = core.Mask(r.U8())
			bk.actAllowed = r.I64()
			bk.rdAllowed = r.I64()
			bk.wrAllowed = r.I64()
			bk.preAllowed = r.I64()
			if bk.open {
				if bk.row < 0 || bk.row >= c.G.Rows {
					r.Fail("dram: rank %d bank %d open row %d of %d", ri, bi, bk.row, c.G.Rows)
				}
				if bk.mask == 0 {
					r.Fail("dram: rank %d bank %d open with empty mask", ri, bi)
				}
				rk.openCount++
			}
		}
		switch rk.pd {
		case PDPrechargeFast, PDPrechargeSlow, PDSelfRefresh:
			if rk.openCount > 0 {
				r.Fail("dram: rank %d in %v with %d open banks", ri, rk.pd, rk.openCount)
			}
		case PDActive:
			if rk.openCount == 0 {
				r.Fail("dram: rank %d in active power-down with no open banks", ri)
			}
		}
	}
	tracking := r.Bool()
	if tracking != (c.rowCtr != nil) {
		r.Fail("dram: checkpoint row tracking %v, channel has %v", tracking, c.rowCtr != nil)
	}
	var rowCtr *rowCounters
	if tracking && r.Err() == nil {
		rowCtr = newRowCounters(c.rowCtr.cap, c.G.Ranks*c.G.Banks)
		for i := range rowCtr.tables {
			t := &rowCtr.tables[i]
			n := r.Count()
			if n > rowCtr.cap {
				r.Fail("dram: row counter table %d holds %d of %d rows", i, n, rowCtr.cap)
				n = 0
			}
			prev := -1
			for j := 0; j < n; j++ {
				row := r.Int()
				cnt := r.I64()
				if row <= prev || row >= c.G.Rows {
					r.Fail("dram: row counter table %d row %d (prev %d, rows %d)", i, row, prev, c.G.Rows)
				}
				if cnt <= 0 {
					r.Fail("dram: row counter table %d row %d count %d", i, row, cnt)
				}
				t.counts[row] = cnt
				prev = row
			}
			if t.spill = r.I64(); t.spill < 0 {
				r.Fail("dram: row counter table %d spill %d", i, t.spill)
			}
		}
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return func() {
		c.cmdFree = cmdFree
		c.busFree = busFree
		c.busDir = busDir
		c.busRank = busRank
		c.acctUpTo = acctUpTo
		c.ranks = ranks
		if tracking {
			c.rowCtr = rowCtr
		}
	}, nil
}

// Package dram is a cycle-level timing model of a DDR3 memory channel, the
// role DRAMSim2 plays in the paper's evaluation platform. It models banks as
// finite-state machines with open rows (optionally partially opened under
// PRA masks), enforces the DDR3 command-timing constraints the paper lists
// in Table 3 (tRCD, tRP, tCAS, tRAS, tWR, tCCD, tRRD, tFAW, tRC) plus the
// command/data-bus structural hazards, implements the weighted tRRD/tFAW
// relaxation for partial activations (Section 4.1.3), periodic refresh, and
// precharge power-down, and charges the power model for every event.
//
// The package is deliberately policy-free: the memory controller in
// internal/memctrl decides *what* to issue and when; this package answers
// "when is that command legal" and mutates device state when it is issued.
// All times are absolute memory-clock cycles (800 MHz for DDR3-1600).
package dram

package dram

import "math"

// SpeedGrade is one DDR3 data-rate bin with its JEDEC-style timing set.
// The paper evaluates DDR3-1600; the other grades support the sensitivity
// sweep over data rates. Chip power parameters are held at the Table 3
// values across grades (they are specified for the 1600 bin), so the
// sweep isolates the timing effect.
type SpeedGrade struct {
	Name   string
	Timing Timing
	// CPUPerMem is the integer CPU:memory clock ratio used with the
	// paper's 3.2 GHz cores (rounded where the true ratio is fractional).
	CPUPerMem int64
}

// SpeedGrades returns the supported DDR3 bins, slowest first.
func SpeedGrades() []SpeedGrade {
	mk := func(tck float64, cl, rcd, rp, ras, wr, rrd, faw, cwl, rtp, wtr, rfc, refi int) Timing {
		t := DefaultTiming()
		t.TCKNs = tck
		t.TCAS, t.TRCD, t.TRP, t.TRAS = cl, rcd, rp, ras
		t.TRC = ras + rp
		t.TWR = wr
		t.TRRD = rrd
		t.TFAW = faw
		t.CWL = cwl
		t.TRTP = rtp
		t.TWTR = wtr
		t.TRFC = rfc
		// tRFCpb is the device's 90 ns per-bank refresh rescaled to this
		// bin's clock (the default 72 cycles assume tCK = 1.25 ns).
		t.TRFCPB = int(math.Ceil(90 / tck))
		t.TREFI = refi
		return t
	}
	return []SpeedGrade{
		{"DDR3-800", mk(2.5, 6, 6, 6, 15, 6, 4, 16, 5, 4, 4, 64, 3120), 8},
		{"DDR3-1066", mk(1.875, 7, 7, 7, 20, 8, 4, 20, 6, 4, 4, 86, 4160), 6},
		{"DDR3-1333", mk(1.5, 9, 9, 9, 24, 10, 4, 20, 7, 5, 5, 107, 5200), 5},
		{"DDR3-1600", DefaultTiming(), 4},
		{"DDR3-1866", mk(1.071, 13, 13, 13, 32, 14, 5, 26, 9, 7, 7, 150, 7280), 3},
		{"DDR3-2133", mk(0.938, 14, 14, 14, 36, 16, 6, 27, 10, 8, 8, 171, 8320), 3},
	}
}

// SpeedGradeByName resolves a grade by name; ok is false when unknown.
func SpeedGradeByName(name string) (SpeedGrade, bool) {
	for _, g := range SpeedGrades() {
		if g.Name == name {
			return g, true
		}
	}
	return SpeedGrade{}, false
}

package dram

import (
	"fmt"

	"pradram/internal/core"
	"pradram/internal/power"
)

// BusDir is the direction of the last data-bus transfer, used to charge the
// rank-to-rank / turnaround gap.
type BusDir uint8

// The data-bus directions.
const (
	BusIdle  BusDir = iota // no transfer yet
	BusRead                // last transfer drove read data
	BusWrite               // last transfer drove write data
)

type bankState struct {
	open bool
	row  int
	mask core.Mask

	actAllowed int64 // earliest next ACT (tRC same bank, tRP after PRE)
	rdAllowed  int64 // earliest column read (tRCD, +1 for partial ACT)
	wrAllowed  int64 // earliest column write
	preAllowed int64 // earliest PRE (tRAS, tRTP, write recovery)
}

type fawEntry struct {
	t int64
	w float64
}

type rankState struct {
	banks []bankState

	rrdAllowed  int64 // weighted tRRD from the last ACT in this rank
	colAllowed  int64 // tCCD across the rank's shared column path
	rdAfterWr   int64 // tWTR: write burst end to next read command
	faw         []fawEntry
	refUntil    int64 // end of an in-flight refresh
	nextRefresh int64 // next external refresh deadline (suspended in self-refresh)
	refBank     int   // next REFpb target bank (per-bank refresh round-robin)
	pd          PDState
	pdEnteredAt int64 // cycle the current power-down state was entered
	pdExit      int64 // power-down exit: no command before this cycle (tXP/tXPDLL/tXS)
	pdReady     int64 // earliest next power-down entry (tCKE after the last wake)
	openCount   int

	// bgFrom is the first cycle whose background energy has not been
	// accrued yet. Background accounting is lazy: spans of constant rank
	// state are charged in one multiply when the state changes (any
	// command that touches pd/openCount/refUntil) or when a probe
	// flushes (AdvanceTo). Span boundaries are command and probe
	// cycles only — never tick cycles — so per-cycle and fast-forwarded
	// operation produce bit-identical energy sums.
	bgFrom int64
}

// Stats counts device-level events for the experiment harness.
type Stats struct {
	// ActsByGranularity[g] counts activations that opened g/8 of a row,
	// g = 1..8. Index 0 is unused.
	ActsByGranularity [9]int64
	Reads             int64
	Writes            int64
	Precharges        int64
	// Refreshes counts all-bank REF commands; PerBankRefreshes counts
	// REFpb commands (per-bank refresh mode).
	Refreshes        int64
	PerBankRefreshes int64
	// PostponedRefreshes counts refreshes issued at least one full
	// interval past their nominal deadline (debt >= 2 intervals at issue);
	// PulledInRefreshes counts refreshes issued ahead of their deadline.
	// Both stay within the JEDEC 8x tREFI elasticity window.
	PostponedRefreshes int64
	PulledInRefreshes  int64
	// SelfRefEntries counts transitions into self-refresh.
	SelfRefEntries int64
	// PowerDownCycles counts fast-exit precharge power-down rank-cycles
	// (the only power-down state of the pre-FSM simulator; the name is
	// kept for report compatibility).
	PowerDownCycles int64
	// ActivePDCycles, SlowPDCycles, and SelfRefCycles count rank-cycles in
	// active power-down, slow-exit precharge power-down, and self-refresh.
	ActivePDCycles int64
	SlowPDCycles   int64
	SelfRefCycles  int64
	// Rank-state occupancy in rank-cycles (one count per rank per memory
	// cycle): together with the four power-down counters above they
	// partition total rank-cycles and feed the analytic power
	// calculator's background fractions.
	ActiveRankCycles     int64
	PrechargedRankCycles int64
	// WordsWritten / WordBudget track the write I/O utilization: words
	// actually driven on the bus vs words a conventional system would
	// drive (8 per write).
	WordsWritten int64
	WordBudget   int64
	// RFMs counts Refresh Management commands (rowcounter.go); RowSpills
	// counts activations the bounded per-row counter table absorbed into
	// its spill floor instead of tracking exactly.
	RFMs      int64
	RowSpills int64
}

// Activations returns the total number of row activations.
func (s Stats) Activations() int64 {
	var n int64
	for _, c := range s.ActsByGranularity {
		n += c
	}
	return n
}

// LowPowerCycles returns the rank-cycles spent with CKE low, summed over
// all four power-down states.
func (s Stats) LowPowerCycles() int64 {
	return s.PowerDownCycles + s.ActivePDCycles + s.SlowPDCycles + s.SelfRefCycles
}

// TotalRankCycles returns the rank-cycle occupancy total across every
// background state (the denominator for residency fractions).
func (s Stats) TotalRankCycles() int64 {
	return s.ActiveRankCycles + s.PrechargedRankCycles + s.LowPowerCycles()
}

// AvgGranularity returns the average activation granularity in eighths
// (8.0 means every activation was a full row).
func (s Stats) AvgGranularity() float64 {
	var n, sum int64
	for g, c := range s.ActsByGranularity {
		n += c
		sum += int64(g) * c
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// BankCount is the always-on per-bank command tally the telemetry layer
// samples. It lives outside Stats so Result snapshots (and the disk-cache
// JSON) are unaffected; maintaining it costs one increment per command.
type BankCount struct {
	Act, Pre, Rd, Wr int64
}

// Channel is one DDR3 channel: command/address bus, data bus, and a set of
// ranks of banks. All methods take the current absolute memory cycle.
type Channel struct {
	T Timing
	G Geometry

	// Acc receives the energy of every event on this channel. Never nil.
	Acc *power.Accumulator

	// NoWeightedFAW disables the partial-activation tRRD/tFAW relaxation
	// (every ACT charges weight 1.0) — an ablation knob for quantifying
	// how much of PRA's behaviour comes from the relaxed timing
	// constraints of Section 4.1.3.
	NoWeightedFAW bool

	// SlowExitPD makes EnterPowerDown use the slow-exit (DLL-off)
	// precharge power-down state: lower standby power, tXPDLL exit.
	SlowExitPD bool

	// RefMode selects the refresh discipline (all-bank vs per-bank).
	RefMode RefreshMode

	// MaxPostpone is how many refresh intervals a refresh may be postponed
	// or pulled in (the JEDEC DDR3 elasticity is 8). 0 disables both:
	// refreshes are due exactly at their nominal deadline, as in the
	// pre-FSM simulator.
	MaxPostpone int

	// Trace, when non-nil, receives every issued command in issue order
	// (see CmdEvent). Used for command-level debugging, golden-trace
	// tests, and the global bus-occupancy invariant checks.
	Trace func(CmdEvent)

	ranks   []rankState
	cmdFree int64 // next cycle the command/address bus is free

	busFree int64 // first cycle the data bus is free
	busDir  BusDir
	busRank int

	acctUpTo int64 // background energy accounted up to this cycle

	perBank []BankCount // indexed rank*Banks+bank

	// rowCtr is the optional per-row activation counter table set
	// (rowcounter.go); nil unless TrackRows enabled it. Counter contents
	// are simulation state: they survive ResetStats and are checkpointed.
	rowCtr *rowCounters

	Stats Stats
}

// NewChannel builds a channel with validated parameters. The accumulator's
// chip counts are aligned with the geometry.
func NewChannel(t Timing, g Geometry, acc *power.Accumulator) (*Channel, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if acc == nil {
		acc = power.NewAccumulator()
	}
	acc.ChipsPerRank = g.ChipsPerRank
	acc.OtherRanks = g.Ranks - 1
	ch := &Channel{
		T: t, G: g, Acc: acc,
		ranks:   make([]rankState, g.Ranks),
		perBank: make([]BankCount, g.Ranks*g.Banks),
	}
	for r := range ch.ranks {
		ch.ranks[r].banks = make([]bankState, g.Banks)
		// Stagger refreshes across ranks to avoid lockstep stalls.
		ch.ranks[r].nextRefresh = int64(t.TREFI) * int64(r+1) / int64(g.Ranks)
	}
	return ch, nil
}

func (c *Channel) rank(r int) *rankState { return &c.ranks[r] }

func (c *Channel) bank(r, b int) *bankState { return &c.ranks[r].banks[b] }

// OpenRow reports the open row and PRA mask of a bank.
func (c *Channel) OpenRow(r, b int) (row int, mask core.Mask, open bool) {
	bk := c.bank(r, b)
	return bk.row, bk.mask, bk.open
}

// AnyBankOpen reports whether any bank in rank r holds an open row.
func (c *Channel) AnyBankOpen(r int) bool { return c.rank(r).openCount > 0 }

// OpenBankCount returns the number of open banks across all ranks.
func (c *Channel) OpenBankCount() int {
	n := 0
	for r := range c.ranks {
		n += c.ranks[r].openCount
	}
	return n
}

// ResetStats zeroes the event counters (energy is reset via the
// accumulator). Used to exclude warmup from measurements. Pending
// background spans are flushed first so they land in the discarded
// pre-reset tallies, not the fresh ones.
func (c *Channel) ResetStats() {
	c.FlushBackground()
	c.Stats = Stats{}
	for i := range c.perBank {
		c.perBank[i] = BankCount{}
	}
}

// BankCounts returns the per-bank command tally of bank (r,b).
func (c *Channel) BankCounts(r, b int) BankCount { return c.perBank[r*c.G.Banks+b] }

// Clock advances the channel's accounting clock without accruing anything;
// background spans stay pending until the next state change or flush. The
// controller calls it at the top of every memory tick, so commands always
// execute with acctUpTo == the current cycle.
func (c *Channel) Clock(cycle int64) {
	if cycle > c.acctUpTo {
		c.acctUpTo = cycle
	}
}

// AdvanceTo advances the accounting clock to cycle and flushes all pending
// background spans — the probe entry point: callers about to read energy or
// rank-state cycle counters use it to bring both up to (but not including)
// cycle.
func (c *Channel) AdvanceTo(cycle int64) {
	c.Clock(cycle)
	c.FlushBackground()
}

// FlushBackground accrues every rank's pending background span up to the
// accounting clock.
func (c *Channel) FlushBackground() {
	for r := range c.ranks {
		c.flushBG(&c.ranks[r])
	}
}

// flushBG charges rank rk's background energy for [bgFrom, acctUpTo). The
// rank's state over that span is constant except for at most one internal
// boundary — the end of an in-flight refresh — because every mutation of
// poweredDown/openCount/refUntil flushes first. Each constant-state piece
// is charged in a single multiply; the split points are command and probe
// cycles, identical whether the controller ticks every cycle or
// fast-forwards, so the float sums match bit for bit.
func (c *Channel) flushBG(rk *rankState) {
	t, end := rk.bgFrom, c.acctUpTo
	if t >= end {
		return
	}
	rk.bgFrom = end
	tck := c.T.TCKNs
	if rk.refUntil > t {
		stop := min(rk.refUntil, end)
		n := stop - t
		c.Stats.ActiveRankCycles += n
		c.Acc.Background(power.RankActive, tck*float64(n))
		t = stop
	}
	if t >= end {
		return
	}
	n := end - t
	switch {
	case rk.pd == PDPrechargeFast:
		c.Stats.PowerDownCycles += n
		c.Acc.Background(power.RankPoweredDown, tck*float64(n))
	case rk.pd == PDActive:
		c.Stats.ActivePDCycles += n
		c.Acc.Background(power.RankActivePD, tck*float64(n))
	case rk.pd == PDPrechargeSlow:
		c.Stats.SlowPDCycles += n
		c.Acc.Background(power.RankPoweredDownSlow, tck*float64(n))
	case rk.pd == PDSelfRefresh:
		c.Stats.SelfRefCycles += n
		c.Acc.Background(power.RankSelfRefresh, tck*float64(n))
	case rk.openCount > 0:
		c.Stats.ActiveRankCycles += n
		c.Acc.Background(power.RankActive, tck*float64(n))
	default:
		c.Stats.PrechargedRankCycles += n
		c.Acc.Background(power.RankPrecharged, tck*float64(n))
	}
}

// neverRefresh is the refresh-horizon sentinel for ranks that owe no
// external refresh (self-refreshing ranks). Far enough that it never
// constrains a sleep horizon, small enough that adding offsets cannot
// overflow.
const neverRefresh = int64(1) << 62

// NextRefreshAny returns the earliest scheduled refresh deadline across
// all ranks — the channel-level bound the controller folds into its sleep
// horizon (a sleeping channel must still wake to refresh on time).
// Self-refreshing ranks owe no external refresh and are skipped; if every
// rank self-refreshes the result is the neverRefresh sentinel.
func (c *Channel) NextRefreshAny() int64 {
	earliest := neverRefresh
	for r := range c.ranks {
		if c.ranks[r].pd == PDSelfRefresh {
			continue
		}
		if at := c.ranks[r].nextRefresh; at < earliest {
			earliest = at
		}
	}
	return earliest
}

// fawReadyAt returns the earliest cycle an activation of weight w fits the
// weighted four-activation window (sum of in-window weights <= 4).
func (c *Channel) fawReadyAt(rk *rankState, w float64) int64 {
	sum := w
	for _, e := range rk.faw {
		sum += e.w
	}
	const eps = 1e-9
	if sum <= 4+eps {
		return 0
	}
	need := sum - 4
	var at int64
	for _, e := range rk.faw {
		need -= e.w
		at = e.t + int64(c.T.TFAW)
		if need <= eps {
			break
		}
	}
	return at
}

// ActReadyAt returns the earliest cycle >= now at which an ACT of the given
// mask may be issued to bank (r,b). For a rank still in power-down, the
// result assumes a Wake issued at the query time.
func (c *Channel) ActReadyAt(now int64, r, b int, mask core.Mask, halfDRAM bool) int64 {
	var t LatTerms
	return c.ActLatTerms(now, r, b, mask, halfDRAM, &t)
}

// Activate opens (part of) a row. mask selects the MAT groups; FullMask is
// a conventional activation. halfDRAM marks Half-DRAM organizations, which
// halve both the activation energy and the tRRD/tFAW weight.
func (c *Channel) Activate(at int64, r, b, row int, mask core.Mask, halfDRAM bool) error {
	if mask.IsZero() {
		return fmt.Errorf("dram: activation with empty mask on rank %d bank %d", r, b)
	}
	if row < 0 || row >= c.G.Rows {
		return fmt.Errorf("dram: row %d out of range", row)
	}
	rk, bk := c.rank(r), c.bank(r, b)
	if rk.pd != PDAwake {
		return fmt.Errorf("dram: ACT to rank %d in %v (Wake it first)", r, rk.pd)
	}
	if ready := c.ActReadyAt(at, r, b, mask, halfDRAM); at < ready {
		return fmt.Errorf("dram: ACT at %d before ready %d (rank %d bank %d)", at, ready, r, b)
	}
	if bk.open {
		return fmt.Errorf("dram: ACT to open bank %d/%d", r, b)
	}
	w := core.ActivationWeight(mask, halfDRAM)
	if c.NoWeightedFAW {
		w = 1
	}

	c.flushBG(rk)
	bk.open, bk.row, bk.mask = true, row, mask
	bk.actAllowed = at + int64(c.T.TRC)
	colDelay := int64(c.T.TRCD)
	cmdCycles := int64(1)
	if !mask.IsFull() {
		// Partial activation: the mask arrives on the address bus next
		// cycle; the chip starts the activation only then (Fig. 7a).
		colDelay += int64(c.T.PRAMaskCycles)
		cmdCycles += int64(c.T.PRAMaskCycles)
	}
	bk.rdAllowed = at + colDelay
	bk.wrAllowed = at + colDelay
	bk.preAllowed = at + int64(c.T.TRAS)

	rk.rrdAllowed = at + int64(core.ScaledRRD(c.T.TRRD, w))
	// Prune expired window entries, then record this activation.
	keep := rk.faw[:0]
	for _, e := range rk.faw {
		if e.t+int64(c.T.TFAW) > at {
			keep = append(keep, e)
		}
	}
	rk.faw = append(keep, fawEntry{t: at, w: w})
	rk.openCount++
	c.cmdFree = at + cmdCycles

	c.Acc.Activation(mask.Granularity(), halfDRAM, float64(c.T.TRC)*c.T.TCKNs)
	c.Stats.ActsByGranularity[mask.Granularity()]++
	c.perBank[r*c.G.Banks+b].Act++
	c.rowCtrOnAct(r, b, row)
	c.emit(CmdEvent{At: at, Kind: CmdAct, Rank: r, Bank: b, Row: row, Mask: mask})
	return nil
}

// busStart returns the earliest data-bus start for a transfer in direction
// d from rank r, given the command would put data on the bus at wantStart.
func (c *Channel) busStart(wantStart int64, d BusDir, r int) int64 {
	gap := int64(0)
	if c.busDir != BusIdle && (c.busDir != d || c.busRank != r) {
		gap = int64(c.T.TRTRS)
	}
	return max(wantStart, c.busFree+gap)
}

// ReadReadyAt returns the earliest command cycle >= now for a column read
// of burstCycles from bank (r,b).
func (c *Channel) ReadReadyAt(now int64, r, b, burstCycles int) int64 {
	var t LatTerms
	return c.ReadLatTerms(now, r, b, burstCycles, &t)
}

// Read issues a column read; returns the cycle the last data beat arrives.
// autoPre closes the row with an auto-precharge honoring tRTP. frac scales
// the array-read and I/O energy relative to a full-rate burst: FGA drives
// the bus at half rate for twice as long (prefetch broken), so it passes
// burstCycles = 2x base with frac = 0.5 and spends the same energy moving
// the same bits.
func (c *Channel) Read(at int64, r, b, burstCycles int, frac float64, autoPre bool) (done int64, err error) {
	rk, bk := c.rank(r), c.bank(r, b)
	if rk.pd != PDAwake {
		return 0, fmt.Errorf("dram: RD to rank %d in %v (Wake it first)", r, rk.pd)
	}
	if !bk.open {
		return 0, fmt.Errorf("dram: RD to closed bank %d/%d", r, b)
	}
	if ready := c.ReadReadyAt(at, r, b, burstCycles); at < ready {
		return 0, fmt.Errorf("dram: RD at %d before ready %d", at, ready)
	}
	start := at + int64(c.T.TCAS)
	end := start + int64(burstCycles)
	c.busFree, c.busDir, c.busRank = end, BusRead, r
	rk.colAllowed = at + max(int64(c.T.TCCD), int64(burstCycles))
	bk.preAllowed = max(bk.preAllowed, at+int64(c.T.TRTP))
	if frac < 0 {
		frac = 0
	} else if frac > 1 {
		frac = 1
	}
	c.cmdFree = at + 1
	c.Acc.ReadBurst(float64(burstCycles) * c.T.TCKNs * frac)
	c.Stats.Reads++
	c.perBank[r*c.G.Banks+b].Rd++
	c.emit(CmdEvent{At: at, Kind: CmdRead, Rank: r, Bank: b, Row: bk.row, DataStart: start, DataEnd: end})
	if autoPre {
		c.closeBank(r, b, rk, bk, bk.preAllowed)
	}
	return end, nil
}

// WriteReadyAt returns the earliest command cycle >= now for a column write.
func (c *Channel) WriteReadyAt(now int64, r, b, burstCycles int) int64 {
	var t LatTerms
	return c.WriteLatTerms(now, r, b, burstCycles, &t)
}

// Write issues a column write. frac is the fraction of the line's words
// actually driven (PRA transfers only dirty words). Returns the cycle the
// burst completes on the bus.
func (c *Channel) Write(at int64, r, b, burstCycles int, frac float64, autoPre bool) (done int64, err error) {
	rk, bk := c.rank(r), c.bank(r, b)
	if rk.pd != PDAwake {
		return 0, fmt.Errorf("dram: WR to rank %d in %v (Wake it first)", r, rk.pd)
	}
	if !bk.open {
		return 0, fmt.Errorf("dram: WR to closed bank %d/%d", r, b)
	}
	if ready := c.WriteReadyAt(at, r, b, burstCycles); at < ready {
		return 0, fmt.Errorf("dram: WR at %d before ready %d", at, ready)
	}
	start := at + int64(c.T.CWL)
	end := start + int64(burstCycles)
	c.busFree, c.busDir, c.busRank = end, BusWrite, r
	rk.colAllowed = at + max(int64(c.T.TCCD), int64(burstCycles))
	rk.rdAfterWr = end + int64(c.T.TWTR)
	bk.preAllowed = max(bk.preAllowed, end+int64(c.T.TWR))
	c.cmdFree = at + 1
	c.Acc.WriteBurst(float64(burstCycles)*c.T.TCKNs, frac)
	c.Stats.Writes++
	c.perBank[r*c.G.Banks+b].Wr++
	c.Stats.WordsWritten += int64(frac*float64(core.WordsPerLine) + 0.5)
	c.Stats.WordBudget += core.WordsPerLine
	c.emit(CmdEvent{At: at, Kind: CmdWrite, Rank: r, Bank: b, Row: bk.row, DataStart: start, DataEnd: end})
	if autoPre {
		c.closeBank(r, b, rk, bk, bk.preAllowed)
	}
	return end, nil
}

// PreReadyAt returns the earliest cycle a precharge may be issued. For a
// rank in active power-down, the result assumes a Wake issued at the query
// time.
func (c *Channel) PreReadyAt(now int64, r, b int) int64 {
	rk, bk := c.rank(r), c.bank(r, b)
	return max(now, bk.preAllowed, rk.refUntil, c.cmdFree, c.pdExitAt(rk, now))
}

// Precharge closes the bank's row. The ACT-PRE pair energy was charged at
// activation (the Micron model folds both into P_ACT over tRC).
func (c *Channel) Precharge(at int64, r, b int) error {
	rk, bk := c.rank(r), c.bank(r, b)
	if rk.pd != PDAwake {
		return fmt.Errorf("dram: PRE to rank %d in %v (Wake it first)", r, rk.pd)
	}
	if !bk.open {
		return fmt.Errorf("dram: PRE to closed bank %d/%d", r, b)
	}
	if ready := c.PreReadyAt(at, r, b); at < ready {
		return fmt.Errorf("dram: PRE at %d before ready %d", at, ready)
	}
	c.cmdFree = at + 1
	c.closeBank(r, b, rk, bk, at)
	return nil
}

func (c *Channel) closeBank(r, b int, rk *rankState, bk *bankState, preAt int64) {
	c.flushBG(rk)
	c.emit(CmdEvent{At: preAt, Kind: CmdPre, Rank: r, Bank: b, Row: bk.row})
	bk.open = false
	bk.mask = 0
	bk.actAllowed = max(bk.actAllowed, preAt+int64(c.T.TRP))
	rk.openCount--
	c.Stats.Precharges++
	c.perBank[r*c.G.Banks+b].Pre++
}

// refInterval returns the nominal cycles between refresh commands: tREFI
// for all-bank refresh, tREFI/banks for the per-bank round-robin.
func (c *Channel) refInterval() int64 {
	if c.RefMode == RefPerBank {
		return int64(c.T.TREFI) / int64(c.G.Banks)
	}
	return int64(c.T.TREFI)
}

// postponeWindow returns the refresh elasticity in cycles: how far past
// (or ahead of) its nominal deadline a refresh may issue.
func (c *Channel) postponeWindow() int64 {
	return int64(c.MaxPostpone) * c.refInterval()
}

// RefreshDue reports whether rank r owes a refresh at cycle now. A
// self-refreshing rank never owes an external refresh.
func (c *Channel) RefreshDue(now int64, r int) bool {
	rk := c.rank(r)
	return rk.pd != PDSelfRefresh && rk.nextRefresh <= now
}

// RefreshMust reports whether rank r's refresh can no longer be postponed:
// the nominal deadline plus the full elasticity window has passed. With
// MaxPostpone = 0 it coincides with RefreshDue.
func (c *Channel) RefreshMust(now int64, r int) bool {
	rk := c.rank(r)
	return rk.pd != PDSelfRefresh && rk.nextRefresh+c.postponeWindow() <= now
}

// CanPullIn reports whether rank r may issue a refresh ahead of its
// nominal deadline at cycle now without exceeding the pull-in credit of
// MaxPostpone intervals.
func (c *Channel) CanPullIn(now int64, r int) bool {
	if c.MaxPostpone == 0 {
		return false
	}
	rk := c.rank(r)
	return rk.pd != PDSelfRefresh && rk.nextRefresh-now < c.postponeWindow()
}

// NextRefreshAt returns the cycle rank r's next refresh falls due
// (neverRefresh while the rank self-refreshes).
func (c *Channel) NextRefreshAt(r int) int64 {
	rk := c.rank(r)
	if rk.pd == PDSelfRefresh {
		return neverRefresh
	}
	return rk.nextRefresh
}

// MustRefreshAt returns the cycle rank r's next refresh stops being
// postponable — its hard deadline under the elasticity window.
func (c *Channel) MustRefreshAt(r int) int64 {
	rk := c.rank(r)
	if rk.pd == PDSelfRefresh {
		return neverRefresh
	}
	return rk.nextRefresh + c.postponeWindow()
}

// RefreshReadyAt returns the earliest cycle a REF may be issued to rank r;
// all banks must be precharged first (the controller is responsible for
// closing them). For a rank still in power-down, the result assumes a Wake
// issued at the query time.
func (c *Channel) RefreshReadyAt(now int64, r int) (int64, bool) {
	rk := c.rank(r)
	if rk.openCount > 0 {
		return 0, false
	}
	at := max(now, rk.refUntil, c.cmdFree, c.pdExitAt(rk, now))
	for b := range rk.banks {
		// tRP from the last precharge must have elapsed; actAllowed
		// tracks exactly that for a closed bank.
		at = max(at, rk.banks[b].actAllowed)
	}
	return at, true
}

// refreshElasticity validates a refresh issue cycle against the pull-in
// credit and updates the postpone/pull-in counters.
func (c *Channel) refreshElasticity(at int64, rk *rankState) error {
	if ahead := rk.nextRefresh - at; ahead > 0 {
		if ahead >= c.postponeWindow() {
			return fmt.Errorf("dram: refresh pull-in at %d exceeds the %dx interval credit (deadline %d)",
				at, c.MaxPostpone, rk.nextRefresh)
		}
		c.Stats.PulledInRefreshes++
	} else if at >= rk.nextRefresh+c.refInterval() {
		c.Stats.PostponedRefreshes++
	}
	return nil
}

// Refresh issues an all-bank REF to rank r, blocking it for tRFC. The rank
// must have been woken from power-down first, and all banks precharged.
func (c *Channel) Refresh(at int64, r int) error {
	rk := c.rank(r)
	if rk.pd != PDAwake {
		return fmt.Errorf("dram: REF to rank %d in %v (Wake it first)", r, rk.pd)
	}
	if c.RefMode == RefPerBank {
		return fmt.Errorf("dram: all-bank REF on a per-bank refresh channel (use RefreshBank)")
	}
	ready, ok := c.RefreshReadyAt(at, r)
	if !ok {
		return fmt.Errorf("dram: REF to rank %d with open banks", r)
	}
	if at < ready {
		return fmt.Errorf("dram: REF at %d before ready %d", at, ready)
	}
	if err := c.refreshElasticity(at, rk); err != nil {
		return err
	}
	c.flushBG(rk)
	rk.refUntil = at + int64(c.T.TRFC)
	rk.nextRefresh += c.refInterval()
	for b := range rk.banks {
		rk.banks[b].actAllowed = max(rk.banks[b].actAllowed, rk.refUntil)
	}
	c.cmdFree = at + 1
	c.Acc.Refresh(float64(c.T.TRFC) * c.T.TCKNs)
	c.Stats.Refreshes++
	c.rowCtrResetRank(r)
	c.emit(CmdEvent{At: at, Kind: CmdRef, Rank: r})
	return nil
}

// NextRefreshBank returns the bank a per-bank refresh of rank r targets
// next (the round-robin cursor).
func (c *Channel) NextRefreshBank(r int) int { return c.rank(r).refBank }

// RefreshBankReadyAt returns the earliest cycle a REFpb may be issued to
// rank r's round-robin target bank; that bank must be precharged first
// (ok = false while it holds an open row). Other banks keep operating. For
// a rank still in power-down, the result assumes a Wake issued at the
// query time.
func (c *Channel) RefreshBankReadyAt(now int64, r int) (int64, bool) {
	rk := c.rank(r)
	bk := &rk.banks[rk.refBank]
	if bk.open {
		return 0, false
	}
	return max(now, rk.refUntil, c.cmdFree, bk.actAllowed, c.pdExitAt(rk, now)), true
}

// RefreshBank issues a per-bank REFpb to rank r's round-robin target bank,
// blocking only that bank for tRFCpb and advancing the refresh deadline by
// tREFI/banks. The refresh energy is charged at 1/banks of the all-bank
// refresh power over tRFCpb (one bank's rows refresh at a time).
func (c *Channel) RefreshBank(at int64, r int) error {
	rk := c.rank(r)
	if rk.pd != PDAwake {
		return fmt.Errorf("dram: REFpb to rank %d in %v (Wake it first)", r, rk.pd)
	}
	if c.RefMode != RefPerBank {
		return fmt.Errorf("dram: REFpb on an all-bank refresh channel")
	}
	b := rk.refBank
	ready, ok := c.RefreshBankReadyAt(at, r)
	if !ok {
		return fmt.Errorf("dram: REFpb to rank %d bank %d with an open row", r, b)
	}
	if at < ready {
		return fmt.Errorf("dram: REFpb at %d before ready %d", at, ready)
	}
	if err := c.refreshElasticity(at, rk); err != nil {
		return err
	}
	c.flushBG(rk)
	bk := &rk.banks[b]
	bk.actAllowed = max(bk.actAllowed, at+int64(c.T.TRFCPB))
	rk.nextRefresh += c.refInterval()
	rk.refBank = (b + 1) % c.G.Banks
	c.cmdFree = at + 1
	c.Acc.Refresh(float64(c.T.TRFCPB) * c.T.TCKNs / float64(c.G.Banks))
	c.Stats.PerBankRefreshes++
	c.rowCtrResetBank(r, b)
	c.emit(CmdEvent{At: at, Kind: CmdRef, Rank: r, Bank: b})
	return nil
}

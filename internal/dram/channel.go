package dram

import (
	"fmt"

	"pradram/internal/core"
	"pradram/internal/power"
)

// BusDir is the direction of the last data-bus transfer, used to charge the
// rank-to-rank / turnaround gap.
type BusDir uint8

const (
	BusIdle BusDir = iota
	BusRead
	BusWrite
)

type bankState struct {
	open bool
	row  int
	mask core.Mask

	actAllowed int64 // earliest next ACT (tRC same bank, tRP after PRE)
	rdAllowed  int64 // earliest column read (tRCD, +1 for partial ACT)
	wrAllowed  int64 // earliest column write
	preAllowed int64 // earliest PRE (tRAS, tRTP, write recovery)
}

type fawEntry struct {
	t int64
	w float64
}

type rankState struct {
	banks []bankState

	rrdAllowed  int64 // weighted tRRD from the last ACT in this rank
	colAllowed  int64 // tCCD across the rank's shared column path
	rdAfterWr   int64 // tWTR: write burst end to next read command
	faw         []fawEntry
	refUntil    int64 // end of an in-flight refresh
	nextRefresh int64
	poweredDown bool
	pdExit      int64 // power-down exit: no command before this cycle (tXP)
	openCount   int

	// bgFrom is the first cycle whose background energy has not been
	// accrued yet. Background accounting is lazy: spans of constant rank
	// state are charged in one multiply when the state changes (any
	// command that touches poweredDown/openCount/refUntil) or when a
	// probe flushes (AdvanceTo). Span boundaries are command and probe
	// cycles only — never tick cycles — so per-cycle and fast-forwarded
	// operation produce bit-identical energy sums.
	bgFrom int64
}

// Stats counts device-level events for the experiment harness.
type Stats struct {
	// ActsByGranularity[g] counts activations that opened g/8 of a row,
	// g = 1..8. Index 0 is unused.
	ActsByGranularity [9]int64
	Reads             int64
	Writes            int64
	Precharges        int64
	Refreshes         int64
	PowerDownCycles   int64
	// Rank-state occupancy in rank-cycles (one count per rank per memory
	// cycle): together with PowerDownCycles they partition total
	// rank-cycles and feed the analytic power calculator's background
	// fractions.
	ActiveRankCycles     int64
	PrechargedRankCycles int64
	// WordsWritten / WordBudget track the write I/O utilization: words
	// actually driven on the bus vs words a conventional system would
	// drive (8 per write).
	WordsWritten int64
	WordBudget   int64
}

// Activations returns the total number of row activations.
func (s Stats) Activations() int64 {
	var n int64
	for _, c := range s.ActsByGranularity {
		n += c
	}
	return n
}

// AvgGranularity returns the average activation granularity in eighths
// (8.0 means every activation was a full row).
func (s Stats) AvgGranularity() float64 {
	var n, sum int64
	for g, c := range s.ActsByGranularity {
		n += c
		sum += int64(g) * c
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// BankCount is the always-on per-bank command tally the telemetry layer
// samples. It lives outside Stats so Result snapshots (and the disk-cache
// JSON) are unaffected; maintaining it costs one increment per command.
type BankCount struct {
	Act, Pre, Rd, Wr int64
}

// Channel is one DDR3 channel: command/address bus, data bus, and a set of
// ranks of banks. All methods take the current absolute memory cycle.
type Channel struct {
	T Timing
	G Geometry

	// Acc receives the energy of every event on this channel. Never nil.
	Acc *power.Accumulator

	// NoWeightedFAW disables the partial-activation tRRD/tFAW relaxation
	// (every ACT charges weight 1.0) — an ablation knob for quantifying
	// how much of PRA's behaviour comes from the relaxed timing
	// constraints of Section 4.1.3.
	NoWeightedFAW bool

	// Trace, when non-nil, receives every issued command in issue order
	// (see CmdEvent). Used for command-level debugging, golden-trace
	// tests, and the global bus-occupancy invariant checks.
	Trace func(CmdEvent)

	ranks   []rankState
	cmdFree int64 // next cycle the command/address bus is free

	busFree int64 // first cycle the data bus is free
	busDir  BusDir
	busRank int

	acctUpTo int64 // background energy accounted up to this cycle

	perBank []BankCount // indexed rank*Banks+bank

	Stats Stats
}

// NewChannel builds a channel with validated parameters. The accumulator's
// chip counts are aligned with the geometry.
func NewChannel(t Timing, g Geometry, acc *power.Accumulator) (*Channel, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if acc == nil {
		acc = power.NewAccumulator()
	}
	acc.ChipsPerRank = g.ChipsPerRank
	acc.OtherRanks = g.Ranks - 1
	ch := &Channel{
		T: t, G: g, Acc: acc,
		ranks:   make([]rankState, g.Ranks),
		perBank: make([]BankCount, g.Ranks*g.Banks),
	}
	for r := range ch.ranks {
		ch.ranks[r].banks = make([]bankState, g.Banks)
		// Stagger refreshes across ranks to avoid lockstep stalls.
		ch.ranks[r].nextRefresh = int64(t.TREFI) * int64(r+1) / int64(g.Ranks)
	}
	return ch, nil
}

func (c *Channel) rank(r int) *rankState { return &c.ranks[r] }

func (c *Channel) bank(r, b int) *bankState { return &c.ranks[r].banks[b] }

// OpenRow reports the open row and PRA mask of a bank.
func (c *Channel) OpenRow(r, b int) (row int, mask core.Mask, open bool) {
	bk := c.bank(r, b)
	return bk.row, bk.mask, bk.open
}

// AnyBankOpen reports whether any bank in rank r holds an open row.
func (c *Channel) AnyBankOpen(r int) bool { return c.rank(r).openCount > 0 }

// OpenBankCount returns the number of open banks across all ranks.
func (c *Channel) OpenBankCount() int {
	n := 0
	for r := range c.ranks {
		n += c.ranks[r].openCount
	}
	return n
}

// ResetStats zeroes the event counters (energy is reset via the
// accumulator). Used to exclude warmup from measurements. Pending
// background spans are flushed first so they land in the discarded
// pre-reset tallies, not the fresh ones.
func (c *Channel) ResetStats() {
	c.FlushBackground()
	c.Stats = Stats{}
	for i := range c.perBank {
		c.perBank[i] = BankCount{}
	}
}

// BankCounts returns the per-bank command tally of bank (r,b).
func (c *Channel) BankCounts(r, b int) BankCount { return c.perBank[r*c.G.Banks+b] }

// PoweredDown reports whether rank r is in precharge power-down.
func (c *Channel) PoweredDown(r int) bool { return c.rank(r).poweredDown }

// Clock advances the channel's accounting clock without accruing anything;
// background spans stay pending until the next state change or flush. The
// controller calls it at the top of every memory tick, so commands always
// execute with acctUpTo == the current cycle.
func (c *Channel) Clock(cycle int64) {
	if cycle > c.acctUpTo {
		c.acctUpTo = cycle
	}
}

// AdvanceTo advances the accounting clock to cycle and flushes all pending
// background spans — the probe entry point: callers about to read energy or
// rank-state cycle counters use it to bring both up to (but not including)
// cycle.
func (c *Channel) AdvanceTo(cycle int64) {
	c.Clock(cycle)
	c.FlushBackground()
}

// FlushBackground accrues every rank's pending background span up to the
// accounting clock.
func (c *Channel) FlushBackground() {
	for r := range c.ranks {
		c.flushBG(&c.ranks[r])
	}
}

// flushBG charges rank rk's background energy for [bgFrom, acctUpTo). The
// rank's state over that span is constant except for at most one internal
// boundary — the end of an in-flight refresh — because every mutation of
// poweredDown/openCount/refUntil flushes first. Each constant-state piece
// is charged in a single multiply; the split points are command and probe
// cycles, identical whether the controller ticks every cycle or
// fast-forwards, so the float sums match bit for bit.
func (c *Channel) flushBG(rk *rankState) {
	t, end := rk.bgFrom, c.acctUpTo
	if t >= end {
		return
	}
	rk.bgFrom = end
	tck := c.T.TCKNs
	if rk.refUntil > t {
		stop := min(rk.refUntil, end)
		n := stop - t
		c.Stats.ActiveRankCycles += n
		c.Acc.Background(power.RankActive, tck*float64(n))
		t = stop
	}
	if t >= end {
		return
	}
	n := end - t
	switch {
	case rk.poweredDown:
		c.Stats.PowerDownCycles += n
		c.Acc.Background(power.RankPoweredDown, tck*float64(n))
	case rk.openCount > 0:
		c.Stats.ActiveRankCycles += n
		c.Acc.Background(power.RankActive, tck*float64(n))
	default:
		c.Stats.PrechargedRankCycles += n
		c.Acc.Background(power.RankPrecharged, tck*float64(n))
	}
}

// NextRefreshAny returns the earliest scheduled refresh deadline across
// all ranks — the channel-level bound the controller folds into its sleep
// horizon (a sleeping channel must still wake to refresh on time).
func (c *Channel) NextRefreshAny() int64 {
	earliest := c.ranks[0].nextRefresh
	for r := 1; r < len(c.ranks); r++ {
		if at := c.ranks[r].nextRefresh; at < earliest {
			earliest = at
		}
	}
	return earliest
}

// fawReadyAt returns the earliest cycle an activation of weight w fits the
// weighted four-activation window (sum of in-window weights <= 4).
func (c *Channel) fawReadyAt(rk *rankState, w float64) int64 {
	sum := w
	for _, e := range rk.faw {
		sum += e.w
	}
	const eps = 1e-9
	if sum <= 4+eps {
		return 0
	}
	need := sum - 4
	var at int64
	for _, e := range rk.faw {
		need -= e.w
		at = e.t + int64(c.T.TFAW)
		if need <= eps {
			break
		}
	}
	return at
}

// Wake takes rank r out of precharge power-down. The rank accepts no
// command before now + tXP. Waking an already-awake rank is a no-op. The
// controller must wake a rank before issuing to it; readiness queries on a
// still-powered-down rank report as if the wake were issued now.
func (c *Channel) Wake(now int64, r int) {
	rk := c.rank(r)
	if !rk.poweredDown {
		return
	}
	c.flushBG(rk)
	rk.poweredDown = false
	rk.pdExit = max(rk.pdExit, now+int64(c.T.TXP))
}

// ActReadyAt returns the earliest cycle >= now at which an ACT of the given
// mask may be issued to bank (r,b). For a rank still in power-down, the
// result assumes a Wake issued at the query time.
func (c *Channel) ActReadyAt(now int64, r, b int, mask core.Mask, halfDRAM bool) int64 {
	rk, bk := c.rank(r), c.bank(r, b)
	w := core.ActivationWeight(mask, halfDRAM)
	if c.NoWeightedFAW {
		w = 1
	}
	at := max(now, bk.actAllowed, rk.rrdAllowed, c.fawReadyAt(rk, w), rk.refUntil, c.cmdFree, rk.pdExit)
	if rk.poweredDown {
		at = max(at, now+int64(c.T.TXP))
	}
	return at
}

// Activate opens (part of) a row. mask selects the MAT groups; FullMask is
// a conventional activation. halfDRAM marks Half-DRAM organizations, which
// halve both the activation energy and the tRRD/tFAW weight.
func (c *Channel) Activate(at int64, r, b, row int, mask core.Mask, halfDRAM bool) error {
	if mask.IsZero() {
		return fmt.Errorf("dram: activation with empty mask on rank %d bank %d", r, b)
	}
	if row < 0 || row >= c.G.Rows {
		return fmt.Errorf("dram: row %d out of range", row)
	}
	rk, bk := c.rank(r), c.bank(r, b)
	if rk.poweredDown {
		return fmt.Errorf("dram: ACT to powered-down rank %d (Wake it first)", r)
	}
	if ready := c.ActReadyAt(at, r, b, mask, halfDRAM); at < ready {
		return fmt.Errorf("dram: ACT at %d before ready %d (rank %d bank %d)", at, ready, r, b)
	}
	if bk.open {
		return fmt.Errorf("dram: ACT to open bank %d/%d", r, b)
	}
	w := core.ActivationWeight(mask, halfDRAM)
	if c.NoWeightedFAW {
		w = 1
	}

	c.flushBG(rk)
	bk.open, bk.row, bk.mask = true, row, mask
	bk.actAllowed = at + int64(c.T.TRC)
	colDelay := int64(c.T.TRCD)
	cmdCycles := int64(1)
	if !mask.IsFull() {
		// Partial activation: the mask arrives on the address bus next
		// cycle; the chip starts the activation only then (Fig. 7a).
		colDelay += int64(c.T.PRAMaskCycles)
		cmdCycles += int64(c.T.PRAMaskCycles)
	}
	bk.rdAllowed = at + colDelay
	bk.wrAllowed = at + colDelay
	bk.preAllowed = at + int64(c.T.TRAS)

	rk.rrdAllowed = at + int64(core.ScaledRRD(c.T.TRRD, w))
	// Prune expired window entries, then record this activation.
	keep := rk.faw[:0]
	for _, e := range rk.faw {
		if e.t+int64(c.T.TFAW) > at {
			keep = append(keep, e)
		}
	}
	rk.faw = append(keep, fawEntry{t: at, w: w})
	rk.openCount++
	c.cmdFree = at + cmdCycles

	c.Acc.Activation(mask.Granularity(), halfDRAM, float64(c.T.TRC)*c.T.TCKNs)
	c.Stats.ActsByGranularity[mask.Granularity()]++
	c.perBank[r*c.G.Banks+b].Act++
	c.emit(CmdEvent{At: at, Kind: CmdAct, Rank: r, Bank: b, Row: row, Mask: mask})
	return nil
}

// busStart returns the earliest data-bus start for a transfer in direction
// d from rank r, given the command would put data on the bus at wantStart.
func (c *Channel) busStart(wantStart int64, d BusDir, r int) int64 {
	gap := int64(0)
	if c.busDir != BusIdle && (c.busDir != d || c.busRank != r) {
		gap = int64(c.T.TRTRS)
	}
	return max(wantStart, c.busFree+gap)
}

// ReadReadyAt returns the earliest command cycle >= now for a column read
// of burstCycles from bank (r,b).
func (c *Channel) ReadReadyAt(now int64, r, b, burstCycles int) int64 {
	rk, bk := c.rank(r), c.bank(r, b)
	at := max(now, bk.rdAllowed, rk.colAllowed, rk.rdAfterWr, rk.refUntil, c.cmdFree)
	// The data phase must fit the bus: command time is data start - CL.
	start := c.busStart(at+int64(c.T.TCAS), BusRead, r)
	return start - int64(c.T.TCAS)
}

// Read issues a column read; returns the cycle the last data beat arrives.
// autoPre closes the row with an auto-precharge honoring tRTP. frac scales
// the array-read and I/O energy relative to a full-rate burst: FGA drives
// the bus at half rate for twice as long (prefetch broken), so it passes
// burstCycles = 2x base with frac = 0.5 and spends the same energy moving
// the same bits.
func (c *Channel) Read(at int64, r, b, burstCycles int, frac float64, autoPre bool) (done int64, err error) {
	rk, bk := c.rank(r), c.bank(r, b)
	if !bk.open {
		return 0, fmt.Errorf("dram: RD to closed bank %d/%d", r, b)
	}
	if ready := c.ReadReadyAt(at, r, b, burstCycles); at < ready {
		return 0, fmt.Errorf("dram: RD at %d before ready %d", at, ready)
	}
	start := at + int64(c.T.TCAS)
	end := start + int64(burstCycles)
	c.busFree, c.busDir, c.busRank = end, BusRead, r
	rk.colAllowed = at + max(int64(c.T.TCCD), int64(burstCycles))
	bk.preAllowed = max(bk.preAllowed, at+int64(c.T.TRTP))
	if frac < 0 {
		frac = 0
	} else if frac > 1 {
		frac = 1
	}
	c.cmdFree = at + 1
	c.Acc.ReadBurst(float64(burstCycles) * c.T.TCKNs * frac)
	c.Stats.Reads++
	c.perBank[r*c.G.Banks+b].Rd++
	c.emit(CmdEvent{At: at, Kind: CmdRead, Rank: r, Bank: b, Row: bk.row, DataStart: start, DataEnd: end})
	if autoPre {
		c.closeBank(r, b, rk, bk, bk.preAllowed)
	}
	return end, nil
}

// WriteReadyAt returns the earliest command cycle >= now for a column write.
func (c *Channel) WriteReadyAt(now int64, r, b, burstCycles int) int64 {
	rk, bk := c.rank(r), c.bank(r, b)
	at := max(now, bk.wrAllowed, rk.colAllowed, rk.refUntil, c.cmdFree)
	start := c.busStart(at+int64(c.T.CWL), BusWrite, r)
	return start - int64(c.T.CWL)
}

// Write issues a column write. frac is the fraction of the line's words
// actually driven (PRA transfers only dirty words). Returns the cycle the
// burst completes on the bus.
func (c *Channel) Write(at int64, r, b, burstCycles int, frac float64, autoPre bool) (done int64, err error) {
	rk, bk := c.rank(r), c.bank(r, b)
	if !bk.open {
		return 0, fmt.Errorf("dram: WR to closed bank %d/%d", r, b)
	}
	if ready := c.WriteReadyAt(at, r, b, burstCycles); at < ready {
		return 0, fmt.Errorf("dram: WR at %d before ready %d", at, ready)
	}
	start := at + int64(c.T.CWL)
	end := start + int64(burstCycles)
	c.busFree, c.busDir, c.busRank = end, BusWrite, r
	rk.colAllowed = at + max(int64(c.T.TCCD), int64(burstCycles))
	rk.rdAfterWr = end + int64(c.T.TWTR)
	bk.preAllowed = max(bk.preAllowed, end+int64(c.T.TWR))
	c.cmdFree = at + 1
	c.Acc.WriteBurst(float64(burstCycles)*c.T.TCKNs, frac)
	c.Stats.Writes++
	c.perBank[r*c.G.Banks+b].Wr++
	c.Stats.WordsWritten += int64(frac*float64(core.WordsPerLine) + 0.5)
	c.Stats.WordBudget += core.WordsPerLine
	c.emit(CmdEvent{At: at, Kind: CmdWrite, Rank: r, Bank: b, Row: bk.row, DataStart: start, DataEnd: end})
	if autoPre {
		c.closeBank(r, b, rk, bk, bk.preAllowed)
	}
	return end, nil
}

// PreReadyAt returns the earliest cycle a precharge may be issued.
func (c *Channel) PreReadyAt(now int64, r, b int) int64 {
	bk := c.bank(r, b)
	return max(now, bk.preAllowed, c.rank(r).refUntil, c.cmdFree)
}

// Precharge closes the bank's row. The ACT-PRE pair energy was charged at
// activation (the Micron model folds both into P_ACT over tRC).
func (c *Channel) Precharge(at int64, r, b int) error {
	rk, bk := c.rank(r), c.bank(r, b)
	if !bk.open {
		return fmt.Errorf("dram: PRE to closed bank %d/%d", r, b)
	}
	if ready := c.PreReadyAt(at, r, b); at < ready {
		return fmt.Errorf("dram: PRE at %d before ready %d", at, ready)
	}
	c.cmdFree = at + 1
	c.closeBank(r, b, rk, bk, at)
	return nil
}

func (c *Channel) closeBank(r, b int, rk *rankState, bk *bankState, preAt int64) {
	c.flushBG(rk)
	c.emit(CmdEvent{At: preAt, Kind: CmdPre, Rank: r, Bank: b, Row: bk.row})
	bk.open = false
	bk.mask = 0
	bk.actAllowed = max(bk.actAllowed, preAt+int64(c.T.TRP))
	rk.openCount--
	c.Stats.Precharges++
	c.perBank[r*c.G.Banks+b].Pre++
}

// RefreshDue reports whether rank r owes a refresh at cycle now.
func (c *Channel) RefreshDue(now int64, r int) bool { return c.rank(r).nextRefresh <= now }

// NextRefreshAt returns the cycle rank r's next refresh falls due.
func (c *Channel) NextRefreshAt(r int) int64 { return c.rank(r).nextRefresh }

// RefreshReadyAt returns the earliest cycle a REF may be issued to rank r;
// all banks must be precharged first (the controller is responsible for
// closing them). For a rank still in power-down, the result assumes a Wake
// issued at the query time.
func (c *Channel) RefreshReadyAt(now int64, r int) (int64, bool) {
	rk := c.rank(r)
	if rk.openCount > 0 {
		return 0, false
	}
	at := max(now, rk.refUntil, c.cmdFree, rk.pdExit)
	for b := range rk.banks {
		// tRP from the last precharge must have elapsed; actAllowed
		// tracks exactly that for a closed bank.
		at = max(at, rk.banks[b].actAllowed)
	}
	if rk.poweredDown {
		at = max(at, now+int64(c.T.TXP))
	}
	return at, true
}

// Refresh issues a REF to rank r, blocking it for tRFC. The rank must have
// been woken from power-down first.
func (c *Channel) Refresh(at int64, r int) error {
	rk := c.rank(r)
	if rk.poweredDown {
		return fmt.Errorf("dram: REF to powered-down rank %d (Wake it first)", r)
	}
	ready, ok := c.RefreshReadyAt(at, r)
	if !ok {
		return fmt.Errorf("dram: REF to rank %d with open banks", r)
	}
	if at < ready {
		return fmt.Errorf("dram: REF at %d before ready %d", at, ready)
	}
	c.flushBG(rk)
	rk.refUntil = at + int64(c.T.TRFC)
	rk.nextRefresh += int64(c.T.TREFI)
	for b := range rk.banks {
		rk.banks[b].actAllowed = max(rk.banks[b].actAllowed, rk.refUntil)
	}
	c.cmdFree = at + 1
	c.Acc.Refresh(float64(c.T.TRFC) * c.T.TCKNs)
	c.Stats.Refreshes++
	c.emit(CmdEvent{At: at, Kind: CmdRef, Rank: r})
	return nil
}

// PowerDown puts rank r into precharge power-down. It is a no-op if banks
// are open or a refresh is in flight.
func (c *Channel) PowerDown(now int64, r int) {
	rk := c.rank(r)
	if rk.openCount == 0 && rk.refUntil <= now && !rk.poweredDown {
		c.flushBG(rk)
		rk.poweredDown = true
	}
}

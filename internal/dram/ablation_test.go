package dram

import (
	"testing"

	"pradram/internal/core"
	"pradram/internal/power"
)

// With NoWeightedFAW set, partial activations charge full weight: the FAW
// window binds after four 1/8 activations just as it does for full rows.
func TestNoWeightedFAWDisablesRelaxation(t *testing.T) {
	t.Parallel()
	ch, err := NewChannel(DefaultTiming(), DefaultGeometry(), power.NewAccumulator())
	if err != nil {
		t.Fatal(err)
	}
	ch.NoWeightedFAW = true
	var at int64
	for bnk := 0; bnk < 4; bnk++ {
		ready := ch.ActReadyAt(at, 0, bnk, core.Mask(0x01), false)
		if err := ch.Activate(ready, 0, bnk, 1, core.Mask(0x01), false); err != nil {
			t.Fatal(err)
		}
		at = ready
	}
	ready := ch.ActReadyAt(at, 0, 4, core.Mask(0x01), false)
	if ready < int64(ch.T.TFAW) {
		t.Errorf("5th partial ACT at %d; with relaxation disabled it must wait for tFAW %d", ready, ch.T.TFAW)
	}
	// tRRD is also unscaled: spacing between partial ACTs is full tRRD
	// (the mask cycle adds atop, but tRRD dominates here).
	ch2, _ := NewChannel(DefaultTiming(), DefaultGeometry(), power.NewAccumulator())
	ch2.NoWeightedFAW = true
	if err := ch2.Activate(0, 0, 0, 1, core.Mask(0x01), false); err != nil {
		t.Fatal(err)
	}
	if got := ch2.ActReadyAt(0, 0, 1, core.Mask(0x01), false); got != int64(ch2.T.TRRD) {
		t.Errorf("unrelaxed partial tRRD = %d, want %d", got, ch2.T.TRRD)
	}
}

func TestNextRefreshAtAdvances(t *testing.T) {
	t.Parallel()
	ch, err := NewChannel(DefaultTiming(), DefaultGeometry(), power.NewAccumulator())
	if err != nil {
		t.Fatal(err)
	}
	first := ch.NextRefreshAt(0)
	if first <= 0 || first > int64(ch.T.TREFI) {
		t.Fatalf("first refresh at %d, want within one tREFI", first)
	}
	if err := ch.Refresh(first, 0); err != nil {
		t.Fatal(err)
	}
	if got := ch.NextRefreshAt(0); got != first+int64(ch.T.TREFI) {
		t.Errorf("next refresh at %d, want %d", got, first+int64(ch.T.TREFI))
	}
}

func TestOpenBankCountAndReset(t *testing.T) {
	t.Parallel()
	ch, err := NewChannel(DefaultTiming(), DefaultGeometry(), power.NewAccumulator())
	if err != nil {
		t.Fatal(err)
	}
	if ch.OpenBankCount() != 0 {
		t.Fatal("fresh channel has no open banks")
	}
	mustActivate(t, ch, 0, 0, 0, 1, core.FullMask, false)
	mustActivate(t, ch, 10, 1, 3, 2, core.FullMask, false)
	if got := ch.OpenBankCount(); got != 2 {
		t.Errorf("open banks = %d, want 2", got)
	}
	ch.ResetStats()
	if ch.Stats.Activations() != 0 {
		t.Error("ResetStats must zero counters")
	}
	if ch.OpenBankCount() != 2 {
		t.Error("ResetStats must not disturb device state")
	}
}

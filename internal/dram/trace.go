package dram

import (
	"fmt"

	"pradram/internal/core"
)

// CmdKind identifies a DRAM command in the trace stream.
type CmdKind uint8

// The traced DRAM command kinds.
const (
	CmdAct   CmdKind = iota // row activation
	CmdRead                 // column read
	CmdWrite                // column write
	CmdPre                  // bank precharge
	CmdRef                  // refresh
	CmdRFM                  // refresh management (RowHammer mitigation)
)

// String returns the command's mnemonic ("ACT", "RD", ...).
func (k CmdKind) String() string {
	switch k {
	case CmdAct:
		return "ACT"
	case CmdRead:
		return "RD"
	case CmdWrite:
		return "WR"
	case CmdPre:
		return "PRE"
	case CmdRef:
		return "REF"
	case CmdRFM:
		return "RFM"
	}
	return fmt.Sprintf("Cmd(%d)", int(k))
}

// CmdEvent is one command as issued on the channel, with its data-bus
// occupancy when applicable. Events stream to Channel.Trace in issue
// order; the hook must not retain the event past the call.
type CmdEvent struct {
	At   int64 // command cycle
	Kind CmdKind
	Rank int
	Bank int
	Row  int
	Mask core.Mask // activations: the PRA mask (FullMask for normal ACTs)

	// DataStart/DataEnd delimit the burst on the data bus for RD/WR
	// (half-open interval [DataStart, DataEnd)); zero otherwise.
	DataStart, DataEnd int64
}

// String renders the event in a DRAMSim2-like one-line format.
func (e CmdEvent) String() string {
	switch e.Kind {
	case CmdAct:
		return fmt.Sprintf("%8d %-3s r%d b%d row %d mask %s", e.At, e.Kind, e.Rank, e.Bank, e.Row, e.Mask)
	case CmdRead, CmdWrite:
		return fmt.Sprintf("%8d %-3s r%d b%d bus [%d,%d)", e.At, e.Kind, e.Rank, e.Bank, e.DataStart, e.DataEnd)
	case CmdRef:
		return fmt.Sprintf("%8d %-3s r%d", e.At, e.Kind, e.Rank)
	default:
		return fmt.Sprintf("%8d %-3s r%d b%d", e.At, e.Kind, e.Rank, e.Bank)
	}
}

// emit streams an event to the trace hook if one is installed.
func (c *Channel) emit(e CmdEvent) {
	if c.Trace != nil {
		c.Trace(e)
	}
}

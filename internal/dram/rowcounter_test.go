package dram

import (
	"math/rand"
	"reflect"
	"testing"

	"pradram/internal/core"
)

// Tests for the per-row activation counters and the RFM command
// (rowcounter.go, DESIGN.md §4g).

func trackedChannel(t *testing.T, capPerBank int) *Channel {
	t.Helper()
	c := newTestChannel(t)
	c.TrackRows(capPerBank)
	return c
}

// actRow activates a row at the earliest legal cycle and precharges it
// again, returning the precharge cycle, so counter tests can hammer one
// row repeatedly without tripping the open-bank rules.
func actRow(t *testing.T, c *Channel, now int64, r, b, row int) int64 {
	t.Helper()
	at := mustActivate(t, c, now, r, b, row, core.FullMask, false)
	pre := c.PreReadyAt(at, r, b)
	if err := c.Precharge(pre, r, b); err != nil {
		t.Fatalf("Precharge: %v", err)
	}
	return pre
}

func TestRowCounterDisabledCostsNothing(t *testing.T) {
	t.Parallel()
	c := newTestChannel(t)
	if c.RowTracking() {
		t.Error("tracking must be off by default")
	}
	now := actRow(t, c, 0, 0, 0, 42)
	if got := c.RowActCount(0, 0, 42); got != 0 {
		t.Errorf("disabled tracking reports count %d, want 0", got)
	}
	if c.RowCounts(0, 0) != nil {
		t.Error("disabled tracking must report a nil table")
	}
	// Enabling and disabling again drops the table.
	c.TrackRows(4)
	now = actRow(t, c, now, 0, 0, 42)
	c.TrackRows(0)
	if c.RowTracking() || c.RowActCount(0, 0, 42) != 0 {
		t.Error("TrackRows(0) must disable tracking")
	}
}

func TestRowCounterCountsPerRowPerBank(t *testing.T) {
	t.Parallel()
	c := trackedChannel(t, 8)
	now := int64(0)
	for i := 0; i < 3; i++ {
		now = actRow(t, c, now, 0, 0, 100)
	}
	now = actRow(t, c, now, 0, 0, 200)
	now = actRow(t, c, now, 1, 3, 100)
	_ = now
	for _, tc := range []struct {
		r, b, row int
		want      int64
	}{
		{0, 0, 100, 3}, {0, 0, 200, 1}, {1, 3, 100, 1},
		{0, 0, 300, 0}, // untracked, no spill: floor 0
		{0, 1, 100, 0}, // same row, different bank
	} {
		if got := c.RowActCount(tc.r, tc.b, tc.row); got != tc.want {
			t.Errorf("RowActCount(%d,%d,%d) = %d, want %d", tc.r, tc.b, tc.row, got, tc.want)
		}
	}
	if got := c.RowCounts(0, 0); !reflect.DeepEqual(got, map[int]int64{100: 3, 200: 1}) {
		t.Errorf("RowCounts(0,0) = %v", got)
	}
}

func TestRowCounterSpillNeverUndercounts(t *testing.T) {
	t.Parallel()
	c := trackedChannel(t, 2)
	now := int64(0)
	for i := 0; i < 3; i++ {
		now = actRow(t, c, now, 0, 0, 10)
	}
	now = actRow(t, c, now, 0, 0, 11)
	// Table full: row 12's activations go to the spill counter.
	now = actRow(t, c, now, 0, 0, 12)
	now = actRow(t, c, now, 0, 0, 12)
	if got := c.RowSpill(0, 0); got != 2 {
		t.Errorf("spill = %d, want 2", got)
	}
	if c.Stats.RowSpills != 2 {
		t.Errorf("Stats.RowSpills = %d, want 2", c.Stats.RowSpills)
	}
	// The untracked row reports the spill floor — >= its true count of 2.
	if got := c.RowActCount(0, 0, 12); got != 2 {
		t.Errorf("untracked row count = %d, want spill floor 2", got)
	}
	// An RFM clears the hottest row (10), freeing a slot; the next insert
	// starts at spill+1, the conservative floor for a possibly-evicted row.
	if err := c.RefreshManage(c.cmdFree+int64(c.T.TRP), 0, 0); err != nil {
		t.Fatalf("RefreshManage: %v", err)
	}
	if got := c.RowActCount(0, 0, 10); got != 2 {
		t.Errorf("mitigated row reports %d, want spill floor 2", got)
	}
	now = actRow(t, c, now+int64(c.T.TRFM), 0, 0, 13)
	if got := c.RowActCount(0, 0, 13); got != 3 {
		t.Errorf("fresh insert after spill = %d, want spill+1 = 3", got)
	}
}

func TestRowCounterVictimTieBreak(t *testing.T) {
	t.Parallel()
	c := trackedChannel(t, 8)
	now := actRow(t, c, 0, 0, 0, 30)
	now = actRow(t, c, now, 0, 0, 20)
	now = actRow(t, c, now, 0, 0, 25)
	_ = now
	// All counts equal: the RFM must pick the lowest row id.
	if err := c.RefreshManage(c.cmdFree+int64(c.T.TRP), 0, 0); err != nil {
		t.Fatalf("RefreshManage: %v", err)
	}
	got := c.RowCounts(0, 0)
	if _, there := got[20]; there || len(got) != 2 {
		t.Errorf("victim must be lowest row 20 on ties; table after RFM: %v", got)
	}
}

func TestRowCounterMitigateClearsSaturatedSpill(t *testing.T) {
	t.Parallel()
	c := trackedChannel(t, 1)
	now := actRow(t, c, 0, 0, 0, 5)
	// Spill past the single tracked count: every untracked row now looks
	// as hot as the tracked one.
	for i := 0; i < 3; i++ {
		now = actRow(t, c, now, 0, 0, 6+i)
	}
	if c.RowSpill(0, 0) != 3 {
		t.Fatalf("spill = %d, want 3", c.RowSpill(0, 0))
	}
	// The RFM cannot name the true aggressor anymore; it must clear the
	// spill floor too, or every later ACT would re-alert forever.
	if err := c.RefreshManage(c.cmdFree+int64(c.T.TRP), 0, 0); err != nil {
		t.Fatalf("RefreshManage: %v", err)
	}
	if got := c.RowSpill(0, 0); got != 0 {
		t.Errorf("spill after saturated mitigate = %d, want 0", got)
	}
	if got := c.RowCounts(0, 0); len(got) != 0 {
		t.Errorf("table after mitigate = %v, want empty", got)
	}
}

func TestRFMBlocksOnlyTargetBank(t *testing.T) {
	t.Parallel()
	c := trackedChannel(t, 8)
	now := actRow(t, c, 0, 0, 0, 7)
	deadline := c.NextRefreshAt(0)
	at, ok := c.RFMReadyAt(now, 0, 0)
	if !ok {
		t.Fatal("RFMReadyAt not ok with the bank closed")
	}
	if err := c.RefreshManage(at, 0, 0); err != nil {
		t.Fatal(err)
	}
	if c.Stats.RFMs != 1 {
		t.Errorf("Stats.RFMs = %d, want 1", c.Stats.RFMs)
	}
	// The target bank is blocked for tRFM; a sibling bank is not.
	if got := c.ActReadyAt(at+1, 0, 0, core.FullMask, false); got < at+int64(c.T.TRFM) {
		t.Errorf("target bank ready at %d, want >= %d (tRFM)", got, at+int64(c.T.TRFM))
	}
	if got := c.ActReadyAt(at+1, 0, 1, core.FullMask, false); got >= at+int64(c.T.TRFM) {
		t.Errorf("sibling bank blocked until %d by an RFM to bank 0", got)
	}
	// RFM is extra work: the regular refresh schedule must not advance.
	if got := c.NextRefreshAt(0); got != deadline {
		t.Errorf("nextRefresh moved from %d to %d after RFM", deadline, got)
	}
}

func TestRFMErrors(t *testing.T) {
	t.Parallel()
	c := newTestChannel(t)
	if err := c.RefreshManage(0, 0, 0); err == nil {
		t.Error("RFM without tracking must fail")
	}
	c.TrackRows(8)
	now := mustActivate(t, c, 0, 0, 0, 9, core.FullMask, false)
	if _, ok := c.RFMReadyAt(now, 0, 0); ok {
		t.Error("RFMReadyAt must refuse an open bank")
	}
	if err := c.RefreshManage(now+1, 0, 0); err == nil {
		t.Error("RFM to an open bank must fail")
	}
	pre := c.PreReadyAt(now, 0, 0)
	if err := c.Precharge(pre, 0, 0); err != nil {
		t.Fatal(err)
	}
	c.AdvanceTo(pre + int64(c.T.TRP))
	c.PowerDown(pre+int64(c.T.TRP), 0)
	if err := c.RefreshManage(pre+int64(c.T.TRP)+1, 0, 0); err == nil {
		t.Error("RFM to a powered-down rank must fail")
	}
}

func TestRowCounterRefreshResets(t *testing.T) {
	t.Parallel()
	t.Run("allbank", func(t *testing.T) {
		t.Parallel()
		c := trackedChannel(t, 8)
		now := actRow(t, c, 0, 0, 0, 1)
		now = actRow(t, c, now, 0, 5, 2)
		now = actRow(t, c, now, 1, 0, 3)
		at, ok := c.RefreshReadyAt(max(now, c.NextRefreshAt(0)), 0)
		if !ok {
			t.Fatal("refresh not ready")
		}
		if err := c.Refresh(at, 0); err != nil {
			t.Fatal(err)
		}
		// Every bank of rank 0 cleared; rank 1 untouched.
		if c.RowActCount(0, 0, 1) != 0 || c.RowActCount(0, 5, 2) != 0 {
			t.Error("all-bank REF must clear every bank of the rank")
		}
		if c.RowActCount(1, 0, 3) != 1 {
			t.Error("REF to rank 0 must not clear rank 1")
		}
	})
	t.Run("perbank", func(t *testing.T) {
		t.Parallel()
		c := trackedChannel(t, 8)
		c.RefMode = RefPerBank
		// Bank 0 is the round-robin target; bank 1 must survive its REFpb.
		now := actRow(t, c, 0, 0, 0, 1)
		now = actRow(t, c, now, 0, 1, 2)
		target := c.NextRefreshBank(0)
		if target != 0 {
			t.Fatalf("refresh cursor at bank %d, want 0", target)
		}
		at, ok := c.RefreshBankReadyAt(max(now, c.NextRefreshAt(0)), 0)
		if !ok {
			t.Fatal("REFpb not ready")
		}
		if err := c.RefreshBank(at, 0); err != nil {
			t.Fatal(err)
		}
		if c.RowActCount(0, 0, 1) != 0 {
			t.Error("REFpb must clear its target bank")
		}
		if c.RowActCount(0, 1, 2) != 1 {
			t.Error("REFpb must leave sibling banks' counters alone")
		}
	})
	t.Run("selfrefresh", func(t *testing.T) {
		t.Parallel()
		c := trackedChannel(t, 8)
		now := actRow(t, c, 0, 0, 0, 1)
		c.AdvanceTo(now + int64(c.T.TRP))
		if !c.EnterSelfRefresh(now+int64(c.T.TRP), 0) {
			t.Fatal("self-refresh entry refused")
		}
		if c.RowActCount(0, 0, 1) != 0 {
			t.Error("self-refresh must clear the rank's counters (the internal engine walks every row)")
		}
	})
}

// FuzzRowCounterWindow drives a random legal command stream — activations,
// precharges, refreshes (all-bank or per-bank, with and without elastic
// postpone credit), and RFMs — against a shadow model that counts every
// activation exactly, and checks the counter-table contract at every step:
//
//   - reset invariant: no count survives a refresh of its row's bank, and
//     a refresh clears nothing else;
//   - Misra-Gries invariant: the table never undercounts — every row
//     reports at least its exact activation count since the bank's last
//     refresh;
//   - exactness: while a bank's table has never overflowed (and no RFM
//     rewrote it), it matches the shadow model bit for bit.
func FuzzRowCounterWindow(f *testing.F) {
	f.Add(uint64(1), uint8(4), false, uint8(0))
	f.Add(uint64(7), uint8(1), true, uint8(4))
	f.Add(uint64(42), uint8(15), false, uint8(8))
	f.Add(uint64(9), uint8(2), true, uint8(1))
	f.Fuzz(func(t *testing.T, seed uint64, cap8 uint8, perBank bool, postpone uint8) {
		capPerBank := int(cap8%16) + 1
		c := newTestChannel(t)
		if perBank {
			c.RefMode = RefPerBank
		}
		c.MaxPostpone = int(postpone % 9)
		c.TrackRows(capPerBank)
		rng := rand.New(rand.NewSource(int64(seed)))

		nBanks := c.G.Ranks * c.G.Banks
		exact := make([]map[int]int64, nBanks) // shadow: true counts since last reset
		dirty := make([]bool, nBanks)          // table overflowed or was RFM-rewritten
		for i := range exact {
			exact[i] = make(map[int]int64)
		}
		open := make([]bool, nBanks)
		now := int64(0)

		closeBank := func(r, b int) {
			at := c.PreReadyAt(now, r, b)
			if err := c.Precharge(at, r, b); err != nil {
				t.Fatalf("Precharge(%d,%d): %v", r, b, err)
			}
			open[r*c.G.Banks+b] = false
			now = at
		}
		// refreshAt picks a legal issue cycle within the pull-in credit
		// (the elasticity window scales with the per-bank interval in
		// REFpb mode).
		interval := int64(c.T.TREFI)
		if perBank {
			interval /= int64(c.G.Banks)
		}
		refreshAt := func(ready int64, r int) int64 {
			at := ready
			if win := int64(c.MaxPostpone) * interval; win > 0 {
				at = max(at, c.NextRefreshAt(r)-rng.Int63n(win))
			} else {
				at = max(at, c.NextRefreshAt(r))
			}
			return at
		}
		checkBank := func(r, b int) {
			i := r*c.G.Banks + b
			for row, n := range exact[i] {
				if got := c.RowActCount(r, b, row); got < n {
					t.Fatalf("rank %d bank %d row %d undercounts: reported %d, exact %d",
						r, b, row, got, n)
				}
			}
			if !dirty[i] {
				if got := c.RowCounts(r, b); len(got) != len(exact[i]) || !reflect.DeepEqual(got, exact[i]) {
					t.Fatalf("rank %d bank %d diverged without overflow: table %v, exact %v",
						r, b, got, exact[i])
				}
				if s := c.RowSpill(r, b); s != 0 {
					t.Fatalf("rank %d bank %d spill %d without overflow", r, b, s)
				}
			}
		}

		for i := 0; i < 1500; i++ {
			r := rng.Intn(c.G.Ranks)
			b := rng.Intn(c.G.Banks)
			bi := r*c.G.Banks + b
			switch op := rng.Intn(10); {
			case op < 5: // activate (precharging first if needed)
				if open[bi] {
					closeBank(r, b)
				}
				row := rng.Intn(3 * capPerBank) // small row set forces overflow
				at := c.ActReadyAt(now, r, b, core.FullMask, false)
				if err := c.Activate(at, r, b, row, core.FullMask, false); err != nil {
					t.Fatalf("step %d Activate: %v", i, err)
				}
				open[bi] = true
				now = at
				exact[bi][row]++
				if _, tracked := c.RowCounts(r, b)[row]; !tracked {
					dirty[bi] = true // spilled
				}
			case op < 7: // precharge something open
				if open[bi] {
					closeBank(r, b)
				}
			case op < 9: // refresh rank r (its due bank for per-bank mode)
				if perBank {
					tb := c.NextRefreshBank(r)
					if open[r*c.G.Banks+tb] {
						closeBank(r, tb)
					}
					ready, ok := c.RefreshBankReadyAt(now, r)
					if !ok {
						t.Fatalf("step %d: REFpb target still open", i)
					}
					at := refreshAt(ready, r)
					if err := c.RefreshBank(at, r); err != nil {
						t.Fatalf("step %d RefreshBank: %v", i, err)
					}
					now = at
					exact[r*c.G.Banks+tb] = make(map[int]int64)
					dirty[r*c.G.Banks+tb] = false
					checkBank(r, tb)
				} else {
					for bb := 0; bb < c.G.Banks; bb++ {
						if open[r*c.G.Banks+bb] {
							closeBank(r, bb)
						}
					}
					ready, ok := c.RefreshReadyAt(now, r)
					if !ok {
						t.Fatalf("step %d: REF with open banks", i)
					}
					at := refreshAt(ready, r)
					if err := c.Refresh(at, r); err != nil {
						t.Fatalf("step %d Refresh: %v", i, err)
					}
					now = at
					for bb := 0; bb < c.G.Banks; bb++ {
						exact[r*c.G.Banks+bb] = make(map[int]int64)
						dirty[r*c.G.Banks+bb] = false
						checkBank(r, bb)
					}
				}
			default: // RFM
				if open[bi] {
					closeBank(r, b)
				}
				at, ok := c.RFMReadyAt(now, r, b)
				if !ok {
					t.Fatalf("step %d: RFM bank still open", i)
				}
				if err := c.RefreshManage(at, r, b); err != nil {
					t.Fatalf("step %d RefreshManage: %v", i, err)
				}
				now = at
				// The RFM rewrites the table (victim cleared, spill maybe
				// zeroed); the shadow restarts and exactness is off until
				// the next refresh of this bank.
				exact[bi] = make(map[int]int64)
				dirty[bi] = true
			}
			c.AdvanceTo(now)
			checkBank(r, b)
		}
		// Final sweep: the undercount invariant must hold everywhere.
		for r := 0; r < c.G.Ranks; r++ {
			for b := 0; b < c.G.Banks; b++ {
				checkBank(r, b)
			}
		}
	})
}

package dram

import "fmt"

// PDState is a rank's power-down FSM state (DESIGN.md §4f). The zero value
// is the fully-awake state, so zero-initialized and legacy checkpointed
// ranks behave exactly like the pre-FSM simulator.
type PDState uint8

const (
	// PDAwake: CKE high, commands accepted (ACT STBY or PRE STBY power).
	PDAwake PDState = iota
	// PDActive: active power-down — CKE low with one or more banks open.
	// Exit costs tXP; row-buffer contents survive.
	PDActive
	// PDPrechargeFast: fast-exit precharge power-down (DLL kept running).
	// Exit costs tXP.
	PDPrechargeFast
	// PDPrechargeSlow: slow-exit precharge power-down (DLL frozen). Exit
	// costs tXPDLL; background power drops below the fast-exit state.
	PDPrechargeSlow
	// PDSelfRefresh: self-refresh — the device refreshes itself from an
	// internal oscillator; the external refresh obligation is suspended.
	// Exit costs tXS.
	PDSelfRefresh
)

// pdStateNames indexes PDState. Kept in sync with the constants above.
var pdStateNames = [...]string{"awake", "active-pd", "pre-pd-fast", "pre-pd-slow", "self-refresh"}

// String names the state for events and reports.
func (s PDState) String() string {
	if int(s) < len(pdStateNames) {
		return pdStateNames[s]
	}
	return fmt.Sprintf("PDState(%d)", uint8(s))
}

// RefreshMode selects the refresh management discipline of a channel.
type RefreshMode uint8

const (
	// RefAllBank is the conventional discipline: one all-bank REF per rank
	// every tREFI, blocking the whole rank for tRFC. The zero value, and
	// the only mode the pre-FSM simulator had.
	RefAllBank RefreshMode = iota
	// RefPerBank round-robins REFpb commands across banks at a tREFI/banks
	// cadence; each blocks only its target bank, for the shorter tRFCpb.
	RefPerBank
)

// String names the refresh mode.
func (m RefreshMode) String() string {
	switch m {
	case RefAllBank:
		return "allbank"
	case RefPerBank:
		return "perbank"
	}
	return fmt.Sprintf("RefreshMode(%d)", uint8(m))
}

// PDStateOf reports rank r's power-down FSM state.
func (c *Channel) PDStateOf(r int) PDState { return c.rank(r).pd }

// PoweredDown reports whether rank r is in any power-down state (CKE low),
// including self-refresh.
func (c *Channel) PoweredDown(r int) bool { return c.rank(r).pd != PDAwake }

// exitLatency returns the cycles from CKE rising to the first legal
// command for a rank leaving state s.
func (c *Channel) exitLatency(s PDState) int64 {
	switch s {
	case PDPrechargeSlow:
		return int64(c.T.TXPDLL)
	case PDSelfRefresh:
		return int64(c.T.TXS)
	default: // PDActive, PDPrechargeFast
		return int64(c.T.TXP)
	}
}

// wakeAt returns the earliest cycle >= now at which CKE may legally rise
// for a powered-down rank: entry must have satisfied the minimum CKE-low
// pulse width tCKE (tCKESR is modeled as tCKE).
func (c *Channel) wakeAt(rk *rankState, now int64) int64 {
	return max(now, rk.pdEnteredAt+int64(c.T.TCKE))
}

// pdExitAt returns the earliest cycle rank rk accepts a command, assuming a
// Wake issued at the query time for a still-powered-down rank. For an awake
// rank it is the residual exit window of the last wake.
func (c *Channel) pdExitAt(rk *rankState, now int64) int64 {
	if rk.pd == PDAwake {
		return rk.pdExit
	}
	return max(rk.pdExit, c.wakeAt(rk, now)+c.exitLatency(rk.pd))
}

// Wake takes rank r out of its power-down state. CKE rises at the earliest
// legal cycle >= now (entry residency tCKE is enforced as a clamp) and the
// rank accepts no command before that plus the state's exit latency (tXP,
// tXPDLL, or tXS). Waking an already-awake rank is a no-op. The controller
// must wake a rank before issuing to it; readiness queries on a
// still-powered-down rank report as if the wake were issued now. Waking
// from self-refresh re-arms the external refresh timer one interval after
// the exit completes.
func (c *Channel) Wake(now int64, r int) {
	rk := c.rank(r)
	if rk.pd == PDAwake {
		return
	}
	c.flushBG(rk)
	w := c.wakeAt(rk, now)
	rk.pdExit = max(rk.pdExit, w+c.exitLatency(rk.pd))
	rk.pdReady = w + int64(c.T.TCKE)
	if rk.pd == PDSelfRefresh {
		rk.nextRefresh = rk.pdExit + c.refInterval()
	}
	rk.pd = PDAwake
}

// PDEntryReadyAt returns the earliest cycle at which an awake rank r could
// legally drop CKE again: past the tCKE high pulse since the last wake,
// past that wake's exit window, and past any in-flight refresh. The
// controller uses it to bound its sleep while a power-down entry decision
// is pending; for a rank already powered down it returns the residual
// constraint times of the last wake, which are in the past.
func (c *Channel) PDEntryReadyAt(r int) int64 {
	rk := c.rank(r)
	return max(rk.pdReady, rk.pdExit, rk.refUntil)
}

// canEnterPD reports whether rank r may drop CKE at cycle now: it must be
// awake, past the minimum CKE-high pulse width since the last wake, past
// the exit window of that wake, and not mid-refresh.
func (c *Channel) canEnterPD(now int64, rk *rankState) bool {
	return rk.pd == PDAwake && now >= rk.pdReady && now >= rk.pdExit && rk.refUntil <= now
}

// enterPD flips rank rk into state s at cycle now, flushing the pending
// background span first so the new state's power starts exactly at now.
func (c *Channel) enterPD(now int64, rk *rankState, s PDState) {
	c.flushBG(rk)
	rk.pd = s
	rk.pdEnteredAt = now
}

// EnterPowerDown puts rank r into precharge power-down — fast exit, or
// slow (DLL-off) exit when the channel's SlowExitPD knob is set — and
// reports whether it entered. Entry requires all banks closed, no refresh
// in flight, and tCKE residency since the last wake.
func (c *Channel) EnterPowerDown(now int64, r int) bool {
	rk := c.rank(r)
	if rk.openCount != 0 || !c.canEnterPD(now, rk) {
		return false
	}
	s := PDPrechargeFast
	if c.SlowExitPD {
		s = PDPrechargeSlow
	}
	c.enterPD(now, rk, s)
	return true
}

// PowerDown puts rank r into precharge power-down. It is a no-op if banks
// are open, a refresh is in flight, or the rank is inside the tCKE window
// of its last wake. Kept as the compatibility entry point; EnterPowerDown
// reports whether entry happened.
func (c *Channel) PowerDown(now int64, r int) { c.EnterPowerDown(now, r) }

// EnterActivePowerDown puts rank r into active power-down (CKE low with
// open banks — the open-page companion state) and reports whether it
// entered. Entry requires at least one open bank; exit costs tXP and the
// row buffers survive.
func (c *Channel) EnterActivePowerDown(now int64, r int) bool {
	rk := c.rank(r)
	if rk.openCount == 0 || !c.canEnterPD(now, rk) {
		return false
	}
	c.enterPD(now, rk, PDActive)
	return true
}

// EnterSelfRefresh puts rank r into self-refresh and reports whether it
// entered. Entry requires all banks closed, the rank refresh-current (no
// refresh due — the controller must top up first), and an awake rank (a
// rank in precharge power-down must be woken, paying tXP, before the SRE
// command can issue). While in self-refresh the rank owes no external
// refreshes; NextRefreshAny skips it and RefreshDue reports false.
func (c *Channel) EnterSelfRefresh(now int64, r int) bool {
	rk := c.rank(r)
	if rk.openCount != 0 || !c.canEnterPD(now, rk) || rk.nextRefresh <= now {
		return false
	}
	c.enterPD(now, rk, PDSelfRefresh)
	c.Stats.SelfRefEntries++
	// The device's internal refresh engine takes over and walks every row
	// during self-refresh, so the disturbance windows restart: clear the
	// rank's per-row activation counters (rowcounter.go).
	c.rowCtrResetRank(r)
	return true
}

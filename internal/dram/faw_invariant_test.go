package dram

import (
	"math/rand"
	"testing"

	"pradram/internal/core"
	"pradram/internal/power"
)

// Brute-force re-verification of the weighted activation-window rules: the
// channel's incremental fawReadyAt/rrdAllowed bookkeeping must agree with
// a from-scratch recomputation over the full command history. The driver
// issues a random legal stream; the trace hook collects every ACT; the
// checker replays the history.
func TestWeightedFAWGoldenReference(t *testing.T) {
	t.Parallel()
	ch, err := NewChannel(DefaultTiming(), DefaultGeometry(), power.NewAccumulator())
	if err != nil {
		t.Fatal(err)
	}
	type act struct {
		at   int64
		rank int
		w    float64
		rrd  int // tRRD the activation imposes on the next ACT
	}
	var acts []act
	ch.Trace = func(e CmdEvent) {
		if e.Kind != CmdAct {
			return
		}
		w := core.ActivationWeight(e.Mask, false)
		acts = append(acts, act{at: e.At, rank: e.Rank, w: w, rrd: core.ScaledRRD(ch.T.TRRD, w)})
	}

	rng := rand.New(rand.NewSource(23))
	now := int64(0)
	open := map[[2]int]bool{}
	for i := 0; i < 4000; i++ {
		r, b := rng.Intn(ch.G.Ranks), rng.Intn(ch.G.Banks)
		k := [2]int{r, b}
		if open[k] {
			at := ch.PreReadyAt(now, r, b)
			if err := ch.Precharge(at, r, b); err != nil {
				t.Fatal(err)
			}
			open[k] = false
			now = at
			continue
		}
		mask := core.Mask(rng.Intn(255) + 1)
		at := ch.ActReadyAt(now, r, b, mask, false)
		if err := ch.Activate(at, r, b, rng.Intn(ch.G.Rows), mask, false); err != nil {
			t.Fatal(err)
		}
		open[k] = true
		now = at
	}
	if len(acts) < 1500 {
		t.Fatalf("stream produced only %d activations", len(acts))
	}

	// Golden check 1: the weighted four-activation window. For every ACT,
	// the weights of same-rank ACTs within the preceding tFAW (inclusive
	// of this one) must not exceed 4.
	tfaw := int64(ch.T.TFAW)
	const eps = 1e-9
	for i, a := range acts {
		sum := 0.0
		for j := i; j >= 0; j-- {
			prev := acts[j]
			if prev.rank != a.rank {
				continue
			}
			if prev.at <= a.at-tfaw {
				break // history is time-ordered per rank
			}
			sum += prev.w
		}
		if sum > 4+eps {
			t.Fatalf("ACT %d at cycle %d: window weight %.3f > 4", i, a.at, sum)
		}
	}

	// Golden check 2: weighted tRRD. Consecutive same-rank ACTs must be
	// spaced by at least the tRRD the earlier one imposed.
	last := map[int]act{}
	for i, a := range acts {
		if prev, ok := last[a.rank]; ok {
			if gap := a.at - prev.at; gap < int64(prev.rrd) {
				t.Fatalf("ACT %d at %d: gap %d below scaled tRRD %d", i, a.at, gap, prev.rrd)
			}
		}
		last[a.rank] = a
	}
}

// The same golden checks with relaxation disabled: every activation
// charges full weight, so at most 4 fit any window regardless of masks.
func TestUnweightedFAWGoldenReference(t *testing.T) {
	t.Parallel()
	ch, err := NewChannel(DefaultTiming(), DefaultGeometry(), power.NewAccumulator())
	if err != nil {
		t.Fatal(err)
	}
	ch.NoWeightedFAW = true
	var times []int64
	ch.Trace = func(e CmdEvent) {
		if e.Kind == CmdAct && e.Rank == 0 {
			times = append(times, e.At)
		}
	}
	now := int64(0)
	for i := 0; i < 64; i++ {
		b := i % ch.G.Banks
		if _, _, isOpen := ch.OpenRow(0, b); isOpen {
			at := ch.PreReadyAt(now, 0, b)
			if err := ch.Precharge(at, 0, b); err != nil {
				t.Fatal(err)
			}
			now = at
		}
		mask := core.Mask(0x01) // minimal mask; must still weigh 1.0
		at := ch.ActReadyAt(now, 0, b, mask, false)
		if err := ch.Activate(at, 0, b, 1, mask, false); err != nil {
			t.Fatal(err)
		}
		now = at
	}
	tfaw := int64(ch.T.TFAW)
	for i := range times {
		count := 0
		for j := i; j >= 0 && times[j] > times[i]-tfaw; j-- {
			count++
		}
		if count > 4 {
			t.Fatalf("unweighted window holds %d ACTs > 4 at cycle %d", count, times[i])
		}
	}
}

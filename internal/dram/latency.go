package dram

import "pradram/internal/core"

// LatTerm indexes one constraint family contributing to a command's ready
// time. The controller's latency-attribution layer (memctrl) uses the
// per-term deadlines to blame each cycle a request waited on the component
// that was holding the command back; ActReadyAt / ReadReadyAt /
// WriteReadyAt are computed *from* these terms, so the decomposition can
// never drift out of lockstep with the readiness rules it explains.
type LatTerm uint8

const (
	// TermBank is the bank FSM itself: PRE/ACT serialization (tRP, tRC,
	// RFM blocking) before an ACT, and the RAS-to-CAS window (tRCD, plus
	// the PRA mask cycle) before a column command.
	TermBank LatTerm = iota
	// TermTiming covers the rank- and channel-shared constraints: tRRD and
	// the weighted tFAW window, tCCD on the shared column path, tWTR
	// write-to-read turnaround, the one-cycle command/address bus, and
	// data-bus contention (burst overlap and tRTRS turnaround gaps).
	TermTiming
	// TermRefresh is the end of an in-flight refresh blocking the rank.
	TermRefresh
	// TermPD is the power-down exit window (tXP / tXPDLL / tXS).
	TermPD
	// NumLatTerms sizes LatTerms.
	NumLatTerms
)

// LatTerms holds one absolute ready deadline per constraint family. A term
// at or before the query cycle was not blocking; the command's ready cycle
// is the maximum over the terms (and the query cycle itself).
type LatTerms [NumLatTerms]int64

// maxTerms folds a term set back into the single ready cycle.
func maxTerms(now int64, t *LatTerms) int64 {
	at := now
	for _, d := range t {
		if d > at {
			at = d
		}
	}
	return at
}

// ActLatTerms fills t with the per-term deadlines gating an ACT of the
// given mask on bank (r,b) and returns the resulting ready cycle — the
// same value as ActReadyAt, which is defined in terms of this method.
func (c *Channel) ActLatTerms(now int64, r, b int, mask core.Mask, halfDRAM bool, t *LatTerms) int64 {
	rk, bk := c.rank(r), c.bank(r, b)
	w := core.ActivationWeight(mask, halfDRAM)
	if c.NoWeightedFAW {
		w = 1
	}
	t[TermBank] = bk.actAllowed
	t[TermTiming] = max(rk.rrdAllowed, c.fawReadyAt(rk, w), c.cmdFree)
	t[TermRefresh] = rk.refUntil
	t[TermPD] = c.pdExitAt(rk, now)
	return maxTerms(now, t)
}

// ReadLatTerms fills t with the per-term deadlines gating a column read on
// bank (r,b) and returns the resulting ready cycle — the same value as
// ReadReadyAt, which is defined in terms of this method. Data-bus
// contention (the burst must fit the bus, including tRTRS gaps) folds into
// TermTiming.
func (c *Channel) ReadLatTerms(now int64, r, b, burstCycles int, t *LatTerms) int64 {
	rk, bk := c.rank(r), c.bank(r, b)
	t[TermBank] = bk.rdAllowed
	t[TermTiming] = max(rk.colAllowed, rk.rdAfterWr, c.cmdFree)
	t[TermRefresh] = rk.refUntil
	t[TermPD] = c.pdExitAt(rk, now)
	at := maxTerms(now, t)
	// The data phase must fit the bus: command time is data start - CL.
	ready := c.busStart(at+int64(c.T.TCAS), BusRead, r) - int64(c.T.TCAS)
	if ready > at {
		t[TermTiming] = ready
	}
	return ready
}

// WriteLatTerms fills t with the per-term deadlines gating a column write
// on bank (r,b) and returns the resulting ready cycle — the same value as
// WriteReadyAt, which is defined in terms of this method.
func (c *Channel) WriteLatTerms(now int64, r, b, burstCycles int, t *LatTerms) int64 {
	rk, bk := c.rank(r), c.bank(r, b)
	t[TermBank] = bk.wrAllowed
	t[TermTiming] = max(rk.colAllowed, c.cmdFree)
	t[TermRefresh] = rk.refUntil
	t[TermPD] = c.pdExitAt(rk, now)
	at := maxTerms(now, t)
	ready := c.busStart(at+int64(c.T.CWL), BusWrite, r) - int64(c.T.CWL)
	if ready > at {
		t[TermTiming] = ready
	}
	return ready
}

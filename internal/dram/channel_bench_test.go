package dram

import (
	"testing"

	"pradram/internal/core"
	"pradram/internal/power"
)

// BenchmarkActivatePrechargeCycle measures the core command path: ACT,
// column write, PRE on one bank.
func BenchmarkActivatePrechargeCycle(b *testing.B) {
	ch, err := NewChannel(DefaultTiming(), DefaultGeometry(), power.NewAccumulator())
	if err != nil {
		b.Fatal(err)
	}
	now := int64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = ch.ActReadyAt(now, 0, 0, core.FullMask, false)
		if err := ch.Activate(now, 0, 0, i%ch.G.Rows, core.FullMask, false); err != nil {
			b.Fatal(err)
		}
		at := ch.WriteReadyAt(now, 0, 0, ch.T.TBURST)
		if _, err := ch.Write(at, 0, 0, ch.T.TBURST, 1, false); err != nil {
			b.Fatal(err)
		}
		pre := ch.PreReadyAt(at, 0, 0)
		if err := ch.Precharge(pre, 0, 0); err != nil {
			b.Fatal(err)
		}
		now = pre
	}
}

// BenchmarkPartialActivation measures the PRA activation path with mask
// handling and weighted FAW accounting.
func BenchmarkPartialActivation(b *testing.B) {
	ch, err := NewChannel(DefaultTiming(), DefaultGeometry(), power.NewAccumulator())
	if err != nil {
		b.Fatal(err)
	}
	now := int64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bank := i % ch.G.Banks
		mask := core.Mask(1 << uint(i%8))
		now = ch.ActReadyAt(now, 0, bank, mask, false)
		if err := ch.Activate(now, 0, bank, i%ch.G.Rows, mask, false); err != nil {
			b.Fatal(err)
		}
		pre := ch.PreReadyAt(now+int64(ch.T.TRAS), 0, bank)
		if err := ch.Precharge(pre, 0, bank); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdvanceTo measures background-energy accrual.
func BenchmarkAdvanceTo(b *testing.B) {
	ch, err := NewChannel(DefaultTiming(), DefaultGeometry(), power.NewAccumulator())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.AdvanceTo(int64(i + 1))
	}
}

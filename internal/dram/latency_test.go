package dram

import (
	"testing"

	"pradram/internal/core"
)

// TestLatTermsMatchReadyAt pins the lockstep contract: the ready cycle each
// *ReadyAt method reports must equal the max over the term deadlines its
// *LatTerms twin fills (the methods are defined that way; this test keeps a
// future hand-rolled fast path honest), and no individual term may exceed
// the ready cycle.
func TestLatTermsMatchReadyAt(t *testing.T) {
	t.Parallel()
	ch := newTestChannel(t)
	mustActivate(t, ch, 0, 0, 0, 7, core.FullMask, false)
	if _, err := ch.Read(ch.ReadReadyAt(0, 0, 0, ch.T.TBURST), 0, 0, ch.T.TBURST, 1, false); err != nil {
		t.Fatal(err)
	}

	for now := int64(0); now < 64; now += 7 {
		var at LatTerms
		ready := ch.ActLatTerms(now, 0, 1, core.FullMask, false, &at)
		if got := ch.ActReadyAt(now, 0, 1, core.FullMask, false); got != ready {
			t.Fatalf("ActReadyAt(%d) = %d, terms say %d", now, got, ready)
		}
		if m := maxTerms(now, &at); m != ready {
			t.Fatalf("ACT terms %v max %d != ready %d", at, m, ready)
		}
		var rd LatTerms
		ready = ch.ReadLatTerms(now, 0, 0, ch.T.TBURST, &rd)
		if got := ch.ReadReadyAt(now, 0, 0, ch.T.TBURST); got != ready {
			t.Fatalf("ReadReadyAt(%d) = %d, terms say %d", now, got, ready)
		}
		for i, d := range rd {
			if d > ready {
				t.Fatalf("read term %d deadline %d exceeds ready %d", i, d, ready)
			}
		}
		var wr LatTerms
		ready = ch.WriteLatTerms(now, 0, 0, ch.T.TBURST, &wr)
		if got := ch.WriteReadyAt(now, 0, 0, ch.T.TBURST); got != ready {
			t.Fatalf("WriteReadyAt(%d) = %d, terms say %d", now, got, ready)
		}
	}
}

// TestLatTermsBlameTheBindingConstraint drives one constraint family at a
// time and asserts the decomposition points at it.
func TestLatTermsBlameTheBindingConstraint(t *testing.T) {
	t.Parallel()

	t.Run("bank-tRC", func(t *testing.T) {
		ch := newTestChannel(t)
		at := mustActivate(t, ch, 0, 0, 0, 1, core.FullMask, false)
		pre := ch.PreReadyAt(at, 0, 0)
		if err := ch.Precharge(pre, 0, 0); err != nil {
			t.Fatal(err)
		}
		var terms LatTerms
		ready := ch.ActLatTerms(pre+1, 0, 0, core.FullMask, false, &terms)
		if terms[TermBank] != ready || ready <= pre+1 {
			t.Fatalf("PRE->ACT wait not blamed on the bank term: ready %d terms %v", ready, terms)
		}
	})

	t.Run("refresh", func(t *testing.T) {
		ch := newTestChannel(t)
		due := ch.ranks[0].nextRefresh
		if err := ch.Refresh(due, 0); err != nil {
			t.Fatal(err)
		}
		var terms LatTerms
		ready := ch.ActLatTerms(due+1, 0, 0, core.FullMask, false, &terms)
		if terms[TermRefresh] != ready || ready != ch.ranks[0].refUntil {
			t.Fatalf("refresh-blocked ACT not blamed on the refresh term: ready %d terms %v", ready, terms)
		}
	})

	t.Run("power-down-exit", func(t *testing.T) {
		ch := newTestChannel(t)
		if !ch.EnterPowerDown(int64(ch.T.TCKE), 0) {
			t.Fatal("power-down entry refused")
		}
		now := int64(ch.T.TCKE) * 3
		var terms LatTerms
		ready := ch.ActLatTerms(now, 0, 0, core.FullMask, false, &terms)
		if terms[TermPD] != ready || ready < now+int64(ch.T.TXP) {
			t.Fatalf("power-down exit not blamed on the PD term: ready %d terms %v", ready, terms)
		}
	})

	t.Run("timing-tRRD", func(t *testing.T) {
		ch := newTestChannel(t)
		at := mustActivate(t, ch, 0, 0, 0, 1, core.FullMask, false)
		var terms LatTerms
		ready := ch.ActLatTerms(at+1, 0, 1, core.FullMask, false, &terms)
		if terms[TermTiming] != ready || ready != at+int64(ch.T.TRRD) {
			t.Fatalf("tRRD wait not blamed on the timing term: ready %d terms %v", ready, terms)
		}
	})

	t.Run("timing-data-bus", func(t *testing.T) {
		ch := newTestChannel(t)
		mustActivate(t, ch, 0, 0, 0, 1, core.FullMask, false)
		mustActivate(t, ch, 0, 1, 0, 1, core.FullMask, false)
		rd := ch.ReadReadyAt(0, 0, 0, ch.T.TBURST)
		if _, err := ch.Read(rd, 0, 0, ch.T.TBURST, 1, false); err != nil {
			t.Fatal(err)
		}
		// A write from another rank must wait out the read burst + tRTRS on
		// the shared data bus; that wait belongs to the timing term.
		var terms LatTerms
		now := rd + int64(ch.T.TCCD)
		ready := ch.WriteLatTerms(now, 1, 0, ch.T.TBURST, &terms)
		if ready <= now {
			t.Skip("bus not contended at this geometry/timing")
		}
		if terms[TermTiming] != ready {
			t.Fatalf("bus contention not blamed on the timing term: now %d ready %d terms %v", now, ready, terms)
		}
	})
}

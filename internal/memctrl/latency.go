package memctrl

import (
	"pradram/internal/core"
	"pradram/internal/dram"
	"pradram/internal/stats"
)

// Per-request latency attribution (DESIGN.md §4h). Every request's
// arrival-to-data latency is decomposed, cycle-exactly, into the named
// components below. The mechanism rides the scheduler's existing readiness
// queries: the dram package's *LatTerms methods report one absolute
// deadline per device-constraint family (and *ReadyAt is defined as their
// max, so the decomposition cannot drift from the rules it explains), and
// each command issued on a request's behalf sweeps the interval since the
// request's last attribution point, blaming sub-intervals on the
// constraint families in deadline order. Whatever no constraint explains —
// scheduler scan order, losing the command slot to other requests, row-hit
// caps — is queue time by definition, which makes the breakdown sum to the
// total latency by construction.
//
// With Config.LatBreak off the per-request cost is one int64 assignment
// (the sweep frontier still advances so checkpoints carry it either way)
// and simulated results are bit-identical to a controller without this
// file.

// LatComponent indexes one component of a request's arrival-to-data
// latency. Components partition the latency: for every completed request
// the per-component cycles sum exactly to done-arrive.
type LatComponent uint8

const (
	// LatQueue is the wait no device constraint explains: time in the
	// queue before the scheduler picked the request, slots lost to older
	// or drain-prioritized requests, and row-hit cap deferrals. It is the
	// residual of the partition, so the conservation invariant holds by
	// construction.
	LatQueue LatComponent = iota
	// LatBank is the bank FSM: PRE/ACT serialization (tRP, tRC, a pending
	// RFM holding actAllowed) before the request's ACT, and the
	// RAS-to-CAS window before its column command.
	LatBank
	// LatTiming covers rank- and channel-shared constraints: tRRD and the
	// weighted tFAW activation window, tCCD, tWTR turnaround, the
	// command/address bus, and data-bus contention.
	LatTiming
	// LatRefresh is time blocked behind an in-flight REF/REFpb (tRFC).
	LatRefresh
	// LatPD is the power-down exit window (tXP / tXPDLL / tXS).
	LatPD
	// LatAlert is time stalled by a RowHammer mitigation alert back-off
	// (mitigation.go): the channel-wide command freeze until alertUntil.
	LatAlert
	// LatXfer is the data phase of the completing column command: CL (or
	// CWL) plus the burst on the data bus.
	LatXfer
	// NumLatComponents sizes LatBreakdown.
	NumLatComponents
)

// latComponentNames are the short names used in reports, CSV headers, and
// telemetry variable names.
var latComponentNames = [NumLatComponents]string{
	"queue", "bank", "timing", "refresh", "pd", "alert", "xfer",
}

// String returns the component's short report name.
func (c LatComponent) String() string {
	if c < NumLatComponents {
		return latComponentNames[c]
	}
	return "unknown"
}

// LatBreakdown is one latency decomposition in memory cycles, indexed by
// LatComponent.
type LatBreakdown [NumLatComponents]int64

// Sum returns the total cycles across all components. For a completed
// request (and for the per-kind aggregates in Stats) it equals the
// request's arrival-to-data latency.
func (b *LatBreakdown) Sum() int64 {
	var s int64
	for _, v := range b {
		s += v
	}
	return s
}

// Accum adds o into b component-wise.
func (b *LatBreakdown) Accum(o *LatBreakdown) {
	for i, v := range o {
		b[i] += v
	}
}

// latSpanCap bounds the per-channel sampled-span ring. At the default
// sampling rate the ring covers the tail of the run; the trace exporter
// documents that spans are a sample, not a census.
const latSpanCap = 4096

// LatSpan is one sampled request lifetime, for trace export: the request's
// identity, its arrival and data-completion cycles (memory clock), and its
// component breakdown.
type LatSpan struct {
	Kind   core.AccessKind
	Loc    Loc
	Arrive int64
	Done   int64
	Break  LatBreakdown
}

// sweepWait blames the cycles in [req.mark, now) — the wait since the last
// command issued on req's behalf — and advances the frontier to now, the
// issue cycle of the current command. Each constraint family's deadline is
// clamped into the interval; walking them in ascending order blames each
// family for the stretch between the previous deadline and its own (the
// earliest-releasing constraint still active owns the cycle). Cycles past
// the last deadline stay unblamed here and fall to LatQueue when the
// request completes. Only the latest deadline per family is visible at
// issue time, so a family that blocked twice within one wait is undercounted
// in favor of LatQueue — the conservative direction (DESIGN.md §4h).
//
// Ties blame the episodic cause over its knock-on effect: a refresh clamps
// every bank's actAllowed to refUntil, so the refresh and bank deadlines
// coincide and the cycle belongs to refresh. The insertion sort is stable
// and the array below lists refresh/PD/alert first, which implements
// exactly that preference.
func (cc *chanCtl) sweepWait(req *request, now int64, t *dram.LatTerms) {
	if cc.cfg.LatBreak {
		type deadline struct {
			at   int64
			comp LatComponent
		}
		dls := [5]deadline{
			{t[dram.TermRefresh], LatRefresh},
			{t[dram.TermPD], LatPD},
			{cc.alertUntil, LatAlert},
			{t[dram.TermBank], LatBank},
			{t[dram.TermTiming], LatTiming},
		}
		for i := range dls {
			if dls[i].at < req.mark {
				dls[i].at = req.mark
			}
			if dls[i].at > now {
				dls[i].at = now
			}
			for j := i; j > 0 && dls[j-1].at > dls[j].at; j-- {
				dls[j-1], dls[j] = dls[j], dls[j-1]
			}
		}
		prev := req.mark
		for _, d := range dls {
			if d.at > prev {
				req.brk[d.comp] += d.at - prev
				prev = d.at
			}
		}
	}
	req.mark = now
}

// completeLat finalizes req's attribution at its completing column command
// (issued at issue, data done at done) and folds it into the channel
// aggregates: the data phase becomes LatXfer, the unexplained remainder
// becomes LatQueue — making the breakdown sum exactly done-arrive — and the
// total feeds the percentile histograms and the sampled-span ring. Callers
// update ReadLatencySum/WriteLatencySum themselves (those are always-on).
func (cc *chanCtl) completeLat(req *request, issue, done int64) {
	if !cc.cfg.LatBreak {
		return
	}
	req.brk[LatXfer] += done - issue
	lat := done - req.arrive
	req.brk[LatQueue] += lat - req.brk.Sum()
	if req.kind == core.Read {
		cc.stats.ReadLatBreak.Accum(&req.brk)
		cc.stats.ReadLatHist.Add(lat)
		cc.latHistBank[req.loc.Rank*cc.cfg.Geom.Banks+req.loc.Bank].Add(lat)
	} else {
		cc.stats.WriteLatBreak.Accum(&req.brk)
		cc.stats.WriteLatHist.Add(lat)
	}
	cc.recordSpan(req, done)
}

// recordSpan samples every LatSpanEvery-th completed request into the span
// ring (oldest spans are overwritten once the ring is full).
func (cc *chanCtl) recordSpan(req *request, done int64) {
	every := int64(cc.cfg.LatSpanEvery)
	if every <= 0 {
		return
	}
	if cc.spanSeq%every == 0 {
		s := LatSpan{Kind: req.kind, Loc: req.loc, Arrive: req.arrive, Done: done, Break: req.brk}
		if len(cc.spans) < latSpanCap {
			cc.spans = append(cc.spans, s)
		} else {
			cc.spans[cc.spanHead] = s
			cc.spanHead = (cc.spanHead + 1) % latSpanCap
		}
	}
	cc.spanSeq++
}

// resetLat clears the measurement-scoped attribution state (aggregates
// live in Stats and are cleared with it). In-flight requests keep their
// full arrival-to-data latency — their completions land in the post-reset
// aggregates exactly like ReadLatencySum — but the blame they accrued
// before the reset is dropped and falls to the LatQueue residual instead.
// That keeps a warmup checkpoint (taken right after this reset) equivalent
// to the live system regardless of whether attribution was on while
// warming, which is what lets LatBreak stay out of the warmup fingerprint.
func (cc *chanCtl) resetLat() {
	for i := range cc.latHistBank {
		cc.latHistBank[i] = stats.LogHist{}
	}
	cc.spans = cc.spans[:0]
	cc.spanHead = 0
	cc.spanSeq = 0
	for _, req := range cc.readQ {
		req.brk = LatBreakdown{}
	}
	for _, req := range cc.writeQ {
		req.brk = LatBreakdown{}
	}
	for _, req := range cc.forwards {
		req.brk = LatBreakdown{}
	}
}

// LatSpans returns a copy of the sampled request spans of every channel,
// oldest first within each channel (empty unless LatBreak and LatSpanEvery
// are set).
func (c *Controller) LatSpans() []LatSpan {
	var out []LatSpan
	for _, cc := range c.chans {
		out = append(out, cc.spans[cc.spanHead:]...)
		out = append(out, cc.spans[:cc.spanHead]...)
	}
	return out
}

// BankReadLatHist returns channel ch's read-latency histogram for bank
// (r, b) (zero-valued when LatBreak is off).
func (c *Controller) BankReadLatHist(ch, r, b int) stats.LogHist {
	cc := c.chans[ch]
	if cc.latHistBank == nil {
		return stats.LogHist{}
	}
	return cc.latHistBank[r*c.cfg.Geom.Banks+b]
}

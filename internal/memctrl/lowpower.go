package memctrl

import (
	"fmt"
	"strings"
)

// PDPolicy selects when the controller drops an idle rank into a
// power-down state (DESIGN.md §4f). The zero value reproduces the
// pre-FSM behavior: immediate fast-exit precharge power-down.
type PDPolicy uint8

const (
	// PDImmediate powers a rank down the first scheduling pass it is
	// idle (no queued work, no open banks, no refresh due). Maximum
	// residency, but a request arriving right after entry pays the
	// tCKE+tXP round trip.
	PDImmediate PDPolicy = iota
	// PDNone never powers ranks down (the power-management ablation
	// baseline; self-refresh escalation may still apply).
	PDNone
	// PDTimed powers a rank down once it has been idle for PDTimeout
	// memory cycles — a hysteresis that avoids thrashing entry/exit on
	// short idle gaps.
	PDTimed
	// PDQueueAware behaves like PDImmediate while the whole channel is
	// empty but applies the PDTimeout hysteresis when other ranks still
	// have queued work (bank-parallel phases tend to spread requests
	// across ranks, so channel activity predicts near-term rank work).
	PDQueueAware
)

// pdPolicyNames indexes PDPolicy.
var pdPolicyNames = [...]string{"immediate", "none", "timeout", "queue"}

// String names the policy as accepted by ParsePDPolicy.
func (p PDPolicy) String() string {
	if int(p) < len(pdPolicyNames) {
		return pdPolicyNames[p]
	}
	return fmt.Sprintf("PDPolicy(%d)", uint8(p))
}

// PDPolicies lists the power-down entry policy names in declaration order.
func PDPolicies() []string { return append([]string(nil), pdPolicyNames[:]...) }

// ParsePDPolicy resolves a power-down policy name ("immediate", "none",
// "timeout", "queue").
func ParsePDPolicy(name string) (PDPolicy, error) {
	for i, n := range pdPolicyNames {
		if strings.EqualFold(name, n) {
			return PDPolicy(i), nil
		}
	}
	return 0, fmt.Errorf("memctrl: unknown power-down policy %q (want one of %s)",
		name, strings.Join(pdPolicyNames[:], ", "))
}

// RefreshMode selects the controller's refresh management discipline.
// The zero value is the conventional all-bank refresh of the pre-FSM
// simulator.
type RefreshMode uint8

const (
	// RefreshAllBank issues one all-bank REF per rank every tREFI,
	// blocking the whole rank for tRFC.
	RefreshAllBank RefreshMode = iota
	// RefreshPerBank round-robins per-bank REFpb commands at a
	// tREFI/banks cadence; only the target bank blocks, for tRFCpb.
	RefreshPerBank
	// RefreshElastic keeps all-bank REF but exploits the JEDEC 8x tREFI
	// elasticity: refreshes are postponed while a rank has work and
	// pulled in (up to the 8-interval credit) before the rank powers
	// down, so sleeps are not cut short by refresh wakes.
	RefreshElastic
)

// refreshModeNames indexes RefreshMode.
var refreshModeNames = [...]string{"allbank", "perbank", "elastic"}

// String names the mode as accepted by ParseRefreshMode.
func (m RefreshMode) String() string {
	if int(m) < len(refreshModeNames) {
		return refreshModeNames[m]
	}
	return fmt.Sprintf("RefreshMode(%d)", uint8(m))
}

// RefreshModes lists the refresh-mode names in declaration order.
func RefreshModes() []string { return append([]string(nil), refreshModeNames[:]...) }

// ParseRefreshMode resolves a refresh-mode name ("allbank", "perbank",
// "elastic"; "postpone" is accepted as an alias for "elastic").
func ParseRefreshMode(name string) (RefreshMode, error) {
	if strings.EqualFold(name, "postpone") {
		return RefreshElastic, nil
	}
	for i, n := range refreshModeNames {
		if strings.EqualFold(name, n) {
			return RefreshMode(i), nil
		}
	}
	return 0, fmt.Errorf("memctrl: unknown refresh mode %q (want one of %s)",
		name, strings.Join(refreshModeNames[:], ", "))
}

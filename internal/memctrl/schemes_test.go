package memctrl

import (
	"testing"

	"pradram/internal/core"
	"pradram/internal/power"
)

func TestHalfDRAMPRAWrite(t *testing.T) {
	t.Parallel()
	c := newCtl(t, func(cfg *Config) { cfg.Scheme = HalfDRAMPRA })
	addr := addrAt(c, Loc{Row: 6})
	c.Write(addr, core.StoreBytes(0, 8))
	runUntil(t, c, 0, 100000, func() bool { return c.Stats().WritesServed == 1 })
	d := c.DeviceStats()
	if d.ActsByGranularity[1] != 1 {
		t.Errorf("HalfDRAM+PRA write must be a 1/8 partial ACT, got %v", d.ActsByGranularity)
	}
	// The activation energy must sit below plain PRA's 1/8 figure (half
	// the bitlines per MAT group).
	e := c.Energy()[power.CompActPre]
	cPRA := newCtl(t, func(cfg *Config) { cfg.Scheme = PRA })
	cPRA.Write(addr, core.StoreBytes(0, 8))
	runUntil(t, cPRA, 0, 100000, func() bool { return cPRA.Stats().WritesServed == 1 })
	if ePRA := cPRA.Energy()[power.CompActPre]; e >= ePRA {
		t.Errorf("HalfDRAM+PRA ACT energy %v must be below PRA %v", e, ePRA)
	}
}

func TestHalfDRAMPRAReadIsHalfRow(t *testing.T) {
	t.Parallel()
	c := newCtl(t, func(cfg *Config) { cfg.Scheme = HalfDRAMPRA })
	done := false
	c.Read(addrAt(c, Loc{Row: 6}), core.Untagged(func(int64) { done = true }))
	runUntil(t, c, 0, 10000, func() bool { return done })
	// Reads use a full mask on the Half-DRAM organization: granularity 8
	// in the histogram, but cheaper energy than the plain baseline.
	if got := c.DeviceStats().ActsByGranularity[8]; got != 1 {
		t.Errorf("HalfDRAM+PRA read activation histogram %v", c.DeviceStats().ActsByGranularity)
	}
	base := newCtl(t, nil)
	doneB := false
	base.Read(addrAt(base, Loc{Row: 6}), core.Untagged(func(int64) { doneB = true }))
	runUntil(t, base, 0, 10000, func() bool { return doneB })
	if c.Energy()[power.CompActPre] >= base.Energy()[power.CompActPre] {
		t.Error("HalfDRAM+PRA read ACT energy must be below baseline")
	}
}

func TestFGAWriteBurstLonger(t *testing.T) {
	t.Parallel()
	// FGA occupies the bus twice as long per write; two writes to the
	// same open row are spaced >= 8 memory cycles apart.
	c := newCtl(t, func(cfg *Config) { cfg.Scheme = FGA })
	c.Write(addrAt(c, Loc{Row: 2, Col: 0}), core.FullByteMask)
	c.Write(addrAt(c, Loc{Row: 2, Col: 1}), core.FullByteMask)
	runUntil(t, c, 0, 100000, func() bool { return c.Stats().WritesServed == 2 })
	if got := c.DeviceStats().Writes; got != 2 {
		t.Fatalf("device writes = %d", got)
	}
}

func TestFGAIOEnergyMatchesBaseline(t *testing.T) {
	t.Parallel()
	ioEnergy := func(s Scheme) float64 {
		c := newCtl(t, func(cfg *Config) { cfg.Scheme = s })
		done := false
		c.Read(addrAt(c, Loc{Row: 2}), core.Untagged(func(int64) { done = true }))
		c.Write(addrAt(c, Loc{Row: 3}), core.FullByteMask)
		runUntil(t, c, 0, 100000, func() bool { return done && c.Stats().WritesServed == 1 })
		b := c.Energy()
		return b[power.CompRdIO] + b[power.CompWrODT] + b[power.CompRdTerm] + b[power.CompWrTerm]
	}
	base, fga := ioEnergy(Baseline), ioEnergy(FGA)
	if diff := fga/base - 1; diff > 0.01 || diff < -0.01 {
		t.Errorf("FGA I/O energy must equal baseline (same bits moved): ratio %.3f", fga/base)
	}
}

func TestAblationNoPartialIO(t *testing.T) {
	t.Parallel()
	c := newCtl(t, func(cfg *Config) {
		cfg.Scheme = PRA
		cfg.NoPartialIO = true
	})
	c.Write(addrAt(c, Loc{Row: 4}), core.StoreBytes(0, 8))
	runUntil(t, c, 0, 100000, func() bool { return c.Stats().WritesServed == 1 })
	d := c.DeviceStats()
	if d.ActsByGranularity[1] != 1 {
		t.Error("activation must stay partial under NoPartialIO")
	}
	if d.WordsWritten != 8 {
		t.Errorf("NoPartialIO must drive all words, got %d", d.WordsWritten)
	}
}

func TestAblationNoMaskCycle(t *testing.T) {
	t.Parallel()
	latency := func(noCycle bool) int64 {
		c := newCtl(t, func(cfg *Config) {
			cfg.Scheme = PRA
			cfg.NoMaskCycle = noCycle
		})
		c.Write(addrAt(c, Loc{Row: 4}), core.StoreBytes(0, 8))
		var cpu int64
		cpu = runUntil(t, c, 0, 100000, func() bool { return c.Stats().WritesServed == 1 })
		return cpu
	}
	with, without := latency(false), latency(true)
	if without >= with {
		t.Errorf("removing the mask cycle must not slow the write: %d vs %d", without, with)
	}
}

func TestAblationNoTimingRelaxEndToEnd(t *testing.T) {
	t.Parallel()
	// Eight same-bank-group partial writes: with relaxation they stream
	// quickly; without, tRRD/tFAW pace them. Compare completion times.
	finish := func(noRelax bool) int64 {
		c := newCtl(t, func(cfg *Config) {
			cfg.Scheme = PRA
			cfg.NoTimingRelax = noRelax
		})
		for i := 0; i < 8; i++ {
			c.Write(addrAt(c, Loc{Row: i, Bank: i % 8}), core.StoreBytes(0, 8))
		}
		return runUntil(t, c, 0, 200000, func() bool { return c.Stats().WritesServed == 8 })
	}
	relaxed, strict := finish(false), finish(true)
	if strict < relaxed {
		t.Errorf("disabling relaxation must not speed up writes: %d vs %d", strict, relaxed)
	}
}

func TestRestrictedPolicyWithPRA(t *testing.T) {
	t.Parallel()
	c := newCtl(t, func(cfg *Config) {
		cfg.Scheme = PRA
		cfg.Policy = RestrictedClose
		cfg.Mapping = LineInterleaved
	})
	c.Write(addrAt(c, Loc{Row: 7}), core.StoreBytes(0, 16))
	runUntil(t, c, 0, 100000, func() bool { return c.Stats().WritesServed == 1 })
	d := c.DeviceStats()
	if d.ActsByGranularity[2] != 1 {
		t.Errorf("restricted PRA write must still activate partially: %v", d.ActsByGranularity)
	}
	if d.Precharges != 1 {
		t.Errorf("restricted policy must auto-precharge, got %d", d.Precharges)
	}
}

func TestLineInterleavedController(t *testing.T) {
	t.Parallel()
	c := newCtl(t, func(cfg *Config) { cfg.Mapping = LineInterleaved })
	served := 0
	for i := 0; i < 8; i++ {
		c.Read(uint64(i)*64, core.Untagged(func(int64) { served++ }))
	}
	runUntil(t, c, 0, 100000, func() bool { return served == 8 })
	// Line interleaving spreads consecutive lines across banks: at least
	// 4 distinct banks activated.
	if got := c.DeviceStats().Activations(); got < 4 {
		t.Errorf("activations = %d, want >= 4 (bank spread)", got)
	}
}

func TestRefreshWithQueuedRequests(t *testing.T) {
	t.Parallel()
	c := newCtl(t, nil)
	served := 0
	// Enqueue a slow trickle of reads across a long window so a refresh
	// falls due mid-traffic.
	for cpu := int64(0); cpu < 4*9000; cpu++ {
		if cpu%2048 == 0 {
			c.Read(addrAt(c, Loc{Row: int(cpu % 1000)}), core.Untagged(func(int64) { served++ }))
		}
		c.Tick(cpu)
	}
	if c.DeviceStats().Refreshes == 0 {
		t.Error("refreshes must occur under traffic")
	}
	if served == 0 {
		t.Error("reads must still be served across refreshes")
	}
}

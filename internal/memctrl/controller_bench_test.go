package memctrl

import (
	"testing"

	"pradram/internal/core"
)

// benchTraffic drives the controller with a synthetic random read/write
// mix and measures ticks per second under load.
func benchTraffic(b *testing.B, scheme Scheme) {
	cfg := DefaultConfig()
	cfg.Scheme = scheme
	c, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := uint64(0x12345)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	outstanding := 0
	b.ResetTimer()
	for cpu := int64(0); cpu < int64(b.N); cpu++ {
		if outstanding < 48 {
			addr := (next() % (4 << 30)) &^ 63
			if next()%2 == 0 {
				if c.Read(addr, core.Untagged(func(int64) { outstanding-- })) {
					outstanding++
				}
			} else {
				c.Write(addr, core.StoreBytes(int(next()%8)*8, 8))
			}
		}
		c.Tick(cpu)
	}
}

func BenchmarkControllerBaseline(b *testing.B) { benchTraffic(b, Baseline) }
func BenchmarkControllerPRA(b *testing.B)      { benchTraffic(b, PRA) }

// BenchmarkAddressDecompose measures the mapping hot path.
func BenchmarkAddressDecompose(b *testing.B) {
	am, err := NewAddressMapper(RowInterleaved, 2, DefaultConfig().Geom)
	if err != nil {
		b.Fatal(err)
	}
	var sink int
	for i := 0; i < b.N; i++ {
		l := am.Decompose(uint64(i) * 8192)
		sink += l.Bank
	}
	_ = sink
}

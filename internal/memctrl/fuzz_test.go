package memctrl

import (
	"math/rand"
	"testing"

	"pradram/internal/core"
)

// Conservation fuzz: under random traffic, every accepted read completes
// exactly once, served counts match accepted counts, device-level command
// counts are consistent with controller-level stats, and every scheme
// drains to idle. Runs the whole scheme x policy matrix.
func TestTrafficConservationMatrix(t *testing.T) {
	for _, scheme := range Schemes() {
		for _, policy := range []Policy{RelaxedClose, RestrictedClose, OpenPage} {
			scheme, policy := scheme, policy
			name := scheme.String() + "/" + policy.String()
			t.Run(name, func(t *testing.T) {
				cfg := DefaultConfig()
				cfg.Scheme = scheme
				cfg.Policy = policy
				if policy == RestrictedClose {
					cfg.Mapping = LineInterleaved
				}
				c, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(int64(scheme)*10 + int64(policy)))
				var acceptedReads, acceptedWrites, completions int64
				outstanding := 0
				var cpu int64
				for ; cpu < 4*60_000; cpu++ {
					if cpu%6 == 0 && outstanding < 40 {
						addr := (rng.Uint64() % (4 << 30)) &^ 63
						if rng.Intn(3) == 0 {
							m := core.StoreBytes(rng.Intn(8)*8, 8*(1+rng.Intn(3)))
							if c.Write(addr, m) {
								acceptedWrites++
							}
						} else {
							if c.Read(addr, func(int64) {
								completions++
								outstanding--
							}) {
								acceptedReads++
								outstanding++
							}
						}
					}
					c.Tick(cpu)
				}
				// Drain.
				for limit := cpu + 4*2_000_000; c.Pending() && cpu < limit; cpu++ {
					c.Tick(cpu)
				}
				if c.Pending() {
					t.Fatal("controller failed to drain")
				}
				s := c.Stats()
				if completions != acceptedReads {
					t.Errorf("read completions %d != accepted %d", completions, acceptedReads)
				}
				if s.ReadsServed != acceptedReads {
					t.Errorf("served reads %d != accepted %d", s.ReadsServed, acceptedReads)
				}
				// Writes may merge in the queue: served <= accepted.
				if s.WritesServed > acceptedWrites {
					t.Errorf("served writes %d > accepted %d", s.WritesServed, acceptedWrites)
				}
				d := c.DeviceStats()
				// Device reads exclude forwarded ones.
				if d.Reads != s.ReadsServed-s.Forwarded {
					t.Errorf("device reads %d != served-forwarded %d", d.Reads, s.ReadsServed-s.Forwarded)
				}
				if d.Writes != s.WritesServed {
					t.Errorf("device writes %d != served %d", d.Writes, s.WritesServed)
				}
				// Hits + activations cover all device accesses: every
				// column access either hit an open row or paid an ACT
				// (false hits re-activate, so ACTs can exceed misses, but
				// never undercut them).
				misses := (d.Reads - (s.RowHitRead - s.Forwarded)) + (d.Writes - s.RowHitWrite)
				if d.Activations() < misses {
					t.Errorf("activations %d < misses %d", d.Activations(), misses)
				}
				if c.Energy().Total() <= 0 {
					t.Error("no energy accrued")
				}
			})
		}
	}
}

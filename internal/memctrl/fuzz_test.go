package memctrl

import (
	"math/rand"
	"testing"

	"pradram/internal/core"
)

// checkConservation asserts the invariants that must hold after any
// traffic pattern drains: every accepted read completed exactly once,
// served counts match accepted counts, device-level command counts are
// consistent with controller-level stats, and energy accrued.
func checkConservation(t *testing.T, c *Controller, acceptedReads, acceptedWrites, completions int64) {
	t.Helper()
	s := c.Stats()
	if completions != acceptedReads {
		t.Errorf("read completions %d != accepted %d", completions, acceptedReads)
	}
	if s.ReadsServed != acceptedReads {
		t.Errorf("served reads %d != accepted %d", s.ReadsServed, acceptedReads)
	}
	// Writes may merge in the queue: served <= accepted.
	if s.WritesServed > acceptedWrites {
		t.Errorf("served writes %d > accepted %d", s.WritesServed, acceptedWrites)
	}
	d := c.DeviceStats()
	// Device reads exclude forwarded ones.
	if d.Reads != s.ReadsServed-s.Forwarded {
		t.Errorf("device reads %d != served-forwarded %d", d.Reads, s.ReadsServed-s.Forwarded)
	}
	if d.Writes != s.WritesServed {
		t.Errorf("device writes %d != served %d", d.Writes, s.WritesServed)
	}
	// Hits + activations cover all device accesses: every column access
	// either hit an open row or paid an ACT (false hits re-activate, so
	// ACTs can exceed misses, but never undercut them).
	misses := (d.Reads - (s.RowHitRead - s.Forwarded)) + (d.Writes - s.RowHitWrite)
	if d.Activations() < misses {
		t.Errorf("activations %d < misses %d", d.Activations(), misses)
	}
	if acceptedReads+acceptedWrites > 0 && c.Energy().Total() <= 0 {
		t.Error("no energy accrued")
	}
}

// driveRandomTraffic feeds seeded random traffic into a fresh controller,
// drains it, and checks conservation. The shared harness behind both the
// deterministic matrix test and the fuzz target.
func driveRandomTraffic(t *testing.T, cfg Config, seed int64, cycles int64) {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	var acceptedReads, acceptedWrites, completions int64
	outstanding := 0
	var cpu int64
	for ; cpu < cycles; cpu++ {
		if cpu%6 == 0 && outstanding < 40 {
			addr := (rng.Uint64() % (4 << 30)) &^ 63
			if rng.Intn(3) == 0 {
				m := core.StoreBytes(rng.Intn(8)*8, 8*(1+rng.Intn(3)))
				if c.Write(addr, m) {
					acceptedWrites++
				}
			} else {
				if c.Read(addr, core.Untagged(func(int64) {
					completions++
					outstanding--
				})) {
					acceptedReads++
					outstanding++
				}
			}
		}
		c.Tick(cpu)
	}
	// Drain.
	for limit := cpu + 4*2_000_000; c.Pending() && cpu < limit; cpu++ {
		c.Tick(cpu)
	}
	if c.Pending() {
		t.Fatal("controller failed to drain")
	}
	checkConservation(t, c, acceptedReads, acceptedWrites, completions)
}

// Conservation fuzz: under random traffic, the conservation invariants
// hold for the whole scheme x policy matrix.
func TestTrafficConservationMatrix(t *testing.T) {
	t.Parallel()
	for _, scheme := range Schemes() {
		for _, policy := range []Policy{RelaxedClose, RestrictedClose, OpenPage} {
			scheme, policy := scheme, policy
			name := scheme.String() + "/" + policy.String()
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				cfg := DefaultConfig()
				cfg.Scheme = scheme
				cfg.Policy = policy
				if policy == RestrictedClose {
					cfg.Mapping = LineInterleaved
				}
				driveRandomTraffic(t, cfg, int64(scheme)*10+int64(policy), 4*60_000)
			})
		}
	}
}

// FuzzTrafficConservation lets the fuzzer pick the scheme, policy, and
// traffic seed. The seed corpus pins the configurations the parallel
// experiment runner exercises hardest: under the concurrent cache every
// distinct (workload, scheme, policy) key simulates exactly once, so the
// PRA and baseline relaxed-close controllers see the densest shared-row
// traffic (write merging, read forwarding — the controller's own cache
// paths), and the restricted/line-interleaved pair covers the other
// mapping. Run with: go test ./internal/memctrl -fuzz FuzzTrafficConservation
func FuzzTrafficConservation(f *testing.F) {
	// One seed per scheme at the default relaxed-close/row-interleaved
	// pairing, plus restricted and open-page variants of PRA.
	for _, s := range Schemes() {
		f.Add(uint8(s), uint8(RelaxedClose), int64(1))
	}
	f.Add(uint8(PRA), uint8(RestrictedClose), int64(2))
	f.Add(uint8(PRA), uint8(OpenPage), int64(3))
	// The dedup-heavy interleavings: same seed, differing only in scheme,
	// as produced when the worker pool runs a baseline/PRA pair of one
	// workload concurrently.
	f.Add(uint8(Baseline), uint8(RelaxedClose), int64(77))
	f.Add(uint8(PRA), uint8(RelaxedClose), int64(77))

	f.Fuzz(func(t *testing.T, schemeByte, policyByte uint8, seed int64) {
		schemes := Schemes()
		scheme := schemes[int(schemeByte)%len(schemes)]
		policies := []Policy{RelaxedClose, RestrictedClose, OpenPage}
		policy := policies[int(policyByte)%len(policies)]
		cfg := DefaultConfig()
		cfg.Scheme = scheme
		cfg.Policy = policy
		if policy == RestrictedClose {
			cfg.Mapping = LineInterleaved
		}
		// A shorter window than the matrix test keeps fuzz iterations
		// fast; the drain bound and invariants are identical.
		driveRandomTraffic(t, cfg, seed, 4*12_000)
	})
}

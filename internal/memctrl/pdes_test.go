package memctrl

import (
	"testing"

	"pradram/internal/core"
)

// Merge-order regression for parallel-in-time ticking (pdes.go): when
// several channels complete reads at the same DRAM tick, the completions
// must drain in one canonical order — channel index, then capture order —
// identical to the sequential tick loop and independent of goroutine
// scheduling. The test drives feedback traffic (each completion enqueues
// the next read at a pseudo-randomly derived channel), so any ordering
// divergence would compound into a different address stream and fail the
// comparison loudly rather than by a single swapped pair.

type completionRec struct {
	ch int
	at int64
}

// pdesTraffic runs a 4-channel controller under closed-loop read traffic
// plus a periodic write-then-read forward pair, returning the completion
// log and the controller for counter inspection.
func pdesTraffic(t *testing.T, workers int) ([]completionRec, *Controller) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Channels = 4
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if workers > 0 {
		c.EnableParallel(workers)
	}
	defer c.StopWorkers()

	g := cfg.Geom
	lcg := uint64(0x9E3779B97F4A7C15)
	nextLoc := func() Loc {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		return Loc{
			Channel: int(lcg>>33) % cfg.Channels,
			Rank:    int(lcg>>41) % g.Ranks,
			Bank:    int(lcg>>47) % g.Banks,
			Row:     int(lcg>>17) % g.Rows,
			Col:     int(lcg>>5) % g.LinesPerRow,
		}
	}

	const total = 400
	var log []completionRec
	issued := 0
	var enqueue func()
	enqueue = func() {
		loc := nextLoc()
		ch := loc.Channel
		ok := c.Read(c.am.Compose(loc), core.Untagged(func(at int64) {
			log = append(log, completionRec{ch, at})
			if issued < total {
				issued++
				enqueue()
				if issued%7 == 0 {
					// A write followed by a read of the same line: the
					// read is served from the write queue, exercising
					// the forward (inline-tick) path of the dispatch.
					fl := nextLoc()
					faddr := c.am.Compose(fl)
					c.Write(faddr, core.FullByteMask)
					fch := fl.Channel
					if c.Read(faddr, core.Untagged(func(at int64) {
						log = append(log, completionRec{fch, at})
					})) {
						issued++
					}
				}
			}
		}))
		if !ok {
			t.Fatal("read rejected: queues should stay shallow under closed-loop traffic")
		}
	}

	// Seed phase: one read per channel to the same (rank, bank, row), so
	// all four channels run in lockstep and complete at the same tick —
	// a guaranteed same-cycle cross-partition merge right at the start.
	for ch := 0; ch < cfg.Channels; ch++ {
		ch := ch
		if !c.Read(c.am.Compose(Loc{Channel: ch, Row: 3}), core.Untagged(func(at int64) {
			log = append(log, completionRec{ch, at})
		})) {
			t.Fatal("seed read rejected")
		}
	}
	for i := 0; i < 4; i++ {
		issued++
		enqueue()
	}

	for cpu := int64(0); issued < total && cpu < 10_000_000; cpu++ {
		c.Tick(cpu)
	}
	// Drain the tail so both runs observe every completion.
	deadline := int64(12_000_000)
	for cpu := int64(10_000_000); c.Pending() && cpu < deadline; cpu++ {
		c.Tick(cpu)
	}
	if c.Pending() {
		t.Fatal("traffic never drained")
	}
	return log, c
}

func TestParallelMergeOrderCanonical(t *testing.T) {
	t.Parallel()
	seqLog, _ := pdesTraffic(t, 0)
	parLog, pc := pdesTraffic(t, 3)

	if pc.ParallelTicks() == 0 {
		t.Fatal("parallel run never dispatched a multi-channel tick; the merge check is vacuous")
	}
	// The seed phase must actually produce a same-cycle cross-channel
	// merge: four completions sharing one timestamp.
	sameAt := 0
	for i := 1; i < len(seqLog); i++ {
		if seqLog[i].at == seqLog[i-1].at && seqLog[i].ch != seqLog[i-1].ch {
			sameAt++
		}
	}
	if sameAt == 0 {
		t.Fatal("no same-cycle cross-channel completions observed; the merge check is vacuous")
	}

	if len(seqLog) != len(parLog) {
		t.Fatalf("completion counts differ: sequential %d, parallel %d", len(seqLog), len(parLog))
	}
	for i := range seqLog {
		if seqLog[i] != parLog[i] {
			t.Fatalf("completion order diverges at entry %d: sequential %+v, parallel %+v",
				i, seqLog[i], parLog[i])
		}
	}
}

// TestEnableParallelDegenerate pins the graceful no-ops: one channel or a
// one-share request keeps the controller sequential, DisableParallel
// reverts, and StopWorkers on a sequential controller is harmless.
func TestEnableParallelDegenerate(t *testing.T) {
	t.Parallel()
	cfg := DefaultConfig()
	cfg.Channels = 1
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.EnableParallel(8)
	if c.ParallelEnabled() {
		t.Error("single-channel controller must stay sequential")
	}
	c.StopWorkers()

	cfg.Channels = 4
	c, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.EnableParallel(1)
	if c.ParallelEnabled() {
		t.Error("one worker share must stay sequential")
	}
	c.EnableParallel(99)
	if got := c.ParallelWorkers(); got != 4 {
		t.Errorf("worker shares must clamp to the channel count: got %d, want 4", got)
	}
	c.DisableParallel()
	if c.ParallelEnabled() || c.ParallelWorkers() != 0 || c.ParallelTicks() != 0 {
		t.Error("DisableParallel must fully revert to sequential state")
	}
}

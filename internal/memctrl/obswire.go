package memctrl

import (
	"fmt"

	"pradram/internal/dram"
	"pradram/internal/obs"
	"pradram/internal/power"
	"pradram/internal/stats"
)

// This file wires the controller into the observability layer: AttachObs
// registers the epoch-recorder probes (per-bank command counts, queue
// depths, row-hit and false-hit counters, activation-granularity
// histogram, energy components) and connects the structured event log.
// Everything registered here is a read-only view over counters the
// controller maintains anyway, so attaching telemetry can never perturb
// simulated numbers.

// CPUPerMem exposes the CPU-to-memory clock ratio (the sim layer converts
// its CPU-cycle clock into the DRAM epochs the recorder is configured in).
func (c *Controller) CPUPerMem() int64 { return c.cfg.CPUPerMem }

// AttachObs registers telemetry probes on rec and threads ev through the
// controller and its DRAM channels. Either argument may be nil. Call once,
// before the first Tick.
func (c *Controller) AttachObs(rec *obs.Recorder, ev *obs.EventLog) {
	// The event trace interleaves all channels through one shared ring
	// whose order is part of the bit-identity contract, so an events-on
	// run must tick sequentially (pdes.go). The recorder is unaffected:
	// it only reads between ticks, when any workers are parked.
	if ev.Level() != obs.LevelOff {
		c.DisableParallel()
	}
	for i, cc := range c.chans {
		cc.attachObs(rec, ev, i)
	}
	if rec == nil {
		return
	}

	// Channel-summed request counters: deltas of these per epoch give the
	// served bandwidth, row-hit rate, and false-hit rate time-series.
	sum := func(f func(*Stats) int64) func() int64 {
		return func() int64 {
			var n int64
			for _, cc := range c.chans {
				n += f(&cc.stats)
			}
			return n
		}
	}
	rec.Counter("reads_served", sum(func(s *Stats) int64 { return s.ReadsServed }))
	rec.Counter("writes_served", sum(func(s *Stats) int64 { return s.WritesServed }))
	rec.Counter("row_hit_read", sum(func(s *Stats) int64 { return s.RowHitRead }))
	rec.Counter("row_hit_write", sum(func(s *Stats) int64 { return s.RowHitWrite }))
	rec.Counter("false_hit_read", sum(func(s *Stats) int64 { return s.FalseHitRead }))
	rec.Counter("false_hit_write", sum(func(s *Stats) int64 { return s.FalseHitWrite }))
	rec.Counter("acts_for_reads", sum(func(s *Stats) int64 { return s.ActsForReads }))
	rec.Counter("acts_for_writes", sum(func(s *Stats) int64 { return s.ActsForWrites }))
	// RowHammer mitigation (mitigation.go): alert and back-off overhead.
	rec.Counter("alerts", sum(func(s *Stats) int64 { return s.Alerts }))
	rec.Counter("alert_stall_cycles", sum(func(s *Stats) int64 { return s.AlertStallCycles }))

	// Latency accounting (latency.go): the always-on sums, and — only when
	// attribution is enabled — the per-component breakdown counters and the
	// percentile gauges over the channel-merged histograms.
	rec.Counter("read_lat_sum", sum(func(s *Stats) int64 { return s.ReadLatencySum }))
	rec.Counter("write_lat_sum", sum(func(s *Stats) int64 { return s.WriteLatencySum }))
	if c.cfg.LatBreak {
		for comp := LatComponent(0); comp < NumLatComponents; comp++ {
			comp := comp
			rec.Counter("readlat_"+comp.String(), sum(func(s *Stats) int64 { return s.ReadLatBreak[comp] }))
			rec.Counter("writelat_"+comp.String(), sum(func(s *Stats) int64 { return s.WriteLatBreak[comp] }))
		}
		quant := func(write bool, q float64) func() float64 {
			return func() float64 {
				var h stats.LogHist
				for _, cc := range c.chans {
					if write {
						h.Merge(&cc.stats.WriteLatHist)
					} else {
						h.Merge(&cc.stats.ReadLatHist)
					}
				}
				return h.Quantile(q)
			}
		}
		rec.Gauge("readlat_p50", quant(false, 0.50))
		rec.Gauge("readlat_p95", quant(false, 0.95))
		rec.Gauge("readlat_p99", quant(false, 0.99))
		rec.Gauge("readlat_p999", quant(false, 0.999))
		rec.Gauge("writelat_p50", quant(true, 0.50))
		rec.Gauge("writelat_p99", quant(true, 0.99))
	}

	// Partial-activation fraction-opened histogram (Figure 11 over time):
	// act_gran_g counts activations that opened g/8 of a row this epoch.
	for g := 1; g <= 8; g++ {
		g := g
		rec.Counter(fmt.Sprintf("act_gran_%d", g), func() int64 {
			var n int64
			for _, cc := range c.chans {
				n += cc.ch.Stats.ActsByGranularity[g]
			}
			return n
		})
	}
	// Refresh-management and power-down FSM counters (DESIGN.md §4f). The
	// rank-cycle residency counters are lazily accrued, so epoch deltas
	// are exact only after the recorder's CatchUp hook has run; the sim
	// layer samples after CatchUp.
	dsum := func(f func(*dram.Stats) int64) func() int64 {
		return func() int64 {
			var n int64
			for _, cc := range c.chans {
				n += f(&cc.ch.Stats)
			}
			return n
		}
	}
	rec.Counter("refreshes", dsum(func(s *dram.Stats) int64 { return s.Refreshes }))
	rec.Counter("perbank_refreshes", dsum(func(s *dram.Stats) int64 { return s.PerBankRefreshes }))
	rec.Counter("postponed_refreshes", dsum(func(s *dram.Stats) int64 { return s.PostponedRefreshes }))
	rec.Counter("pulledin_refreshes", dsum(func(s *dram.Stats) int64 { return s.PulledInRefreshes }))
	rec.Counter("selfref_entries", dsum(func(s *dram.Stats) int64 { return s.SelfRefEntries }))
	rec.Counter("powerdown_rank_cycles", dsum(func(s *dram.Stats) int64 { return s.PowerDownCycles }))
	rec.Counter("activepd_rank_cycles", dsum(func(s *dram.Stats) int64 { return s.ActivePDCycles }))
	rec.Counter("slowpd_rank_cycles", dsum(func(s *dram.Stats) int64 { return s.SlowPDCycles }))
	rec.Counter("selfref_rank_cycles", dsum(func(s *dram.Stats) int64 { return s.SelfRefCycles }))
	rec.Counter("rfms", dsum(func(s *dram.Stats) int64 { return s.RFMs }))
	rec.Counter("row_spills", dsum(func(s *dram.Stats) int64 { return s.RowSpills }))

	// Energy components: activate vs background (vs refresh) attribution
	// per epoch, plus the total.
	energy := func(comp power.Component) func() float64 {
		return func() float64 {
			var e float64
			for _, cc := range c.chans {
				e += cc.acc.Component(comp)
			}
			return e
		}
	}
	rec.CounterF("energy_actpre_pj", energy(power.CompActPre))
	rec.CounterF("energy_bg_pj", energy(power.CompBG))
	rec.CounterF("energy_ref_pj", energy(power.CompRef))
	rec.CounterF("energy_total_pj", func() float64 {
		var e float64
		for _, cc := range c.chans {
			e += cc.acc.TotalEnergy()
		}
		return e
	})
}

// attachObs wires one channel: its event scope, the command-level DRAM
// trace bridge, queue-depth gauges, and the per-bank command counters.
func (cc *chanCtl) attachObs(rec *obs.Recorder, ev *obs.EventLog, idx int) {
	cc.ev = ev
	cc.scope = fmt.Sprintf("memctrl.ch%d", idx)
	if ev.Enabled(obs.LevelCmd) {
		scope := fmt.Sprintf("dram.ch%d", idx)
		cc.ch.Trace = func(e dram.CmdEvent) {
			ev.Emit(obs.Event{
				Cycle: e.At, Level: obs.LevelCmd, Scope: scope,
				Kind: e.Kind.String(), Detail: e.String(),
			})
		}
	}
	if rec == nil {
		return
	}
	p := fmt.Sprintf("ch%d", idx)
	rec.Gauge(p+"_readq", func() float64 { return float64(len(cc.readQ)) })
	rec.Gauge(p+"_writeq", func() float64 { return float64(len(cc.writeQ)) })
	rec.Gauge(p+"_drain", func() float64 {
		if cc.drain {
			return 1
		}
		return 0
	})
	rec.Gauge(p+"_open_banks", func() float64 { return float64(cc.ch.OpenBankCount()) })
	geom := cc.cfg.Geom
	for r := 0; r < geom.Ranks; r++ {
		for b := 0; b < geom.Banks; b++ {
			r, b := r, b
			name := fmt.Sprintf("%s_r%d_b%d", p, r, b)
			rec.Counter(name+"_act", func() int64 { return cc.ch.BankCounts(r, b).Act })
			rec.Counter(name+"_pre", func() int64 { return cc.ch.BankCounts(r, b).Pre })
			rec.Counter(name+"_rd", func() int64 { return cc.ch.BankCounts(r, b).Rd })
			rec.Counter(name+"_wr", func() int64 { return cc.ch.BankCounts(r, b).Wr })
			if cc.cfg.LatBreak {
				hb := r*geom.Banks + b
				rec.Gauge(name+"_rdlat_p99", func() float64 { return cc.latHistBank[hb].Quantile(0.99) })
			}
		}
	}
}

package memctrl

import (
	"fmt"

	"pradram/internal/obs"
)

// RowHammer mitigation (DESIGN.md §4g): a PRAC-style Alert/RFM scheme
// layered on the per-row activation counters the dram package maintains
// (dram/rowcounter.go). The flow mirrors how real PRAC devices behave:
//
//  1. Every activation bumps its row's counter inside the device; the
//     counters are windowed by refresh (a refresh of a row's bank clears
//     them — the disturbance accumulated so far is healed).
//  2. When an activation pushes a row's count to the configured threshold,
//     the device raises ALERT_n. The controller must back off: the whole
//     channel's command stream stalls for MitAlertCycles. Refresh is the
//     one exception — it keeps its priority so mitigation can never push a
//     rank past its retention deadline.
//  3. After the back-off the controller issues an RFM (refresh management)
//     command to the offending bank — precharging it first if a row is
//     open, exactly like a per-bank refresh — which refreshes the
//     neighbors of the bank's hottest tracked row and clears its counter.
//
// The scheme is orthogonal to the PRA/FGA/DBI/SDS activation schemes and
// to the power-down policies; MitThreshold == 0 disables it entirely, in
// which case no counter table exists and simulation results are
// bit-identical to a controller built without this file.

// Default mitigation parameters (used when the corresponding Config field
// is zero and MitThreshold > 0).
const (
	// DefaultMitAlertCycles is the default alert back-off: 144 memory
	// cycles = 180 ns at DDR3-1600, the order of the per-ALERT overhead
	// PRAC DDR5 devices impose.
	DefaultMitAlertCycles = 144
	// DefaultMitTableCap is the default per-bank counter-table capacity.
	// 512 tracked rows out of 32K keeps the table at SRAM-feasible size
	// while the Misra-Gries spill floor bounds the undercount to zero.
	DefaultMitTableCap = 512
)

// mitAlertCycles returns the effective alert back-off.
func (c Config) mitAlertCycles() int64 {
	if c.MitAlertCycles > 0 {
		return c.MitAlertCycles
	}
	return DefaultMitAlertCycles
}

// mitTableCap returns the effective per-bank counter-table capacity.
func (c Config) mitTableCap() int {
	if c.MitTableCap > 0 {
		return c.MitTableCap
	}
	return DefaultMitTableCap
}

// RowActCount reports channel ch's tracked activation count for a row
// since its bank's last refresh (the spill floor for untracked rows, 0
// when mitigation is off). Exposed for the analytic-oracle tests.
func (c *Controller) RowActCount(ch, r, b, row int) int64 {
	return c.chans[ch].ch.RowActCount(r, b, row)
}

// RowCounts returns a copy of channel ch's tracked row→count table for
// one bank (nil when mitigation is off).
func (c *Controller) RowCounts(ch, r, b int) map[int]int64 {
	return c.chans[ch].ch.RowCounts(r, b)
}

// RowSpill reports channel ch's Misra-Gries spill floor for one bank.
func (c *Controller) RowSpill(ch, r, b int) int64 {
	return c.chans[ch].ch.RowSpill(r, b)
}

// mitOnAct runs after every successful activation: if mitigation is armed
// and the activated row's count has reached the threshold, raise the alert.
// The stall cost is accounted analytically here (MitAlertCycles per alert,
// by construction of the schedule gate), so skip and noskip runs agree on
// it without counting idle ticks.
func (cc *chanCtl) mitOnAct(mem int64, l Loc) {
	if cc.cfg.MitThreshold <= 0 || cc.rfmPending {
		// While an alert is in flight no activations can issue (the gate
		// in schedule blocks them), so rfmPending is impossible here; the
		// check is defensive.
		return
	}
	if cc.ch.RowActCount(l.Rank, l.Bank, l.Row) < int64(cc.cfg.MitThreshold) {
		return
	}
	cc.rfmPending = true
	cc.rfmRank, cc.rfmBank = l.Rank, l.Bank
	cc.alertUntil = mem + cc.cfg.mitAlertCycles()
	cc.stats.Alerts++
	cc.stats.AlertStallCycles += cc.cfg.mitAlertCycles()
	if cc.ev.Enabled(obs.LevelState) {
		cc.ev.Emit(obs.Event{Cycle: mem, Level: obs.LevelState, Scope: cc.scope,
			Kind: "alert", Detail: fmt.Sprintf("rank %d bank %d row %d hit threshold %d, back-off %d",
				l.Rank, l.Bank, l.Row, cc.cfg.MitThreshold, cc.cfg.mitAlertCycles())})
	}
}

// issueRFM drives a pending alert to completion: wait out the back-off,
// close the target bank if a row is open there (the triggering activation
// left one open), then issue the RFM. Returns true when it consumed the
// command slot. The rank cannot be powered down here: the triggering ACT
// proves it awake, and idleManage is unreachable while rfmPending.
func (cc *chanCtl) issueRFM(mem int64) bool {
	if mem < cc.alertUntil {
		cc.noteReady(cc.alertUntil)
		return false
	}
	r, b := cc.rfmRank, cc.rfmBank
	if _, _, open := cc.ch.OpenRow(r, b); open {
		if at := cc.ch.PreReadyAt(mem, r, b); at <= mem {
			if err := cc.ch.Precharge(mem, r, b); err == nil {
				cc.hitCount[r][b] = 0
				return true
			}
		} else {
			cc.noteReady(at)
		}
		return false
	}
	at, ok := cc.ch.RFMReadyAt(mem, r, b)
	if !ok {
		return false
	}
	if at > mem {
		cc.noteReady(at)
		return false
	}
	if err := cc.ch.RefreshManage(mem, r, b); err != nil {
		return false
	}
	cc.rfmPending = false
	if cc.ev.Enabled(obs.LevelState) {
		cc.ev.Emit(obs.Event{Cycle: mem, Level: obs.LevelState, Scope: cc.scope,
			Kind: "rfm", Detail: fmt.Sprintf("rank %d bank %d blocked for tRFM=%d", r, b, cc.cfg.Timing.TRFM)})
	}
	return true
}

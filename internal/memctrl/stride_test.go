package memctrl

import "testing"

// The controller derives its DRAM clock from the CPU clock with a stride
// counter (nextMemAt) instead of a per-Tick division. These tests pin the
// counter to the arithmetic it replaced — MemCycle() after Tick(cpu) must
// equal floor(cpu/CPUPerMem) — and cover SkipTo's realignment, including
// its same-window fast path, so fast-forwarded runs stamp request arrivals
// exactly as per-cycle runs do.

func strideController(t *testing.T) *Controller {
	t.Helper()
	c, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestMemCycleSequencePerCycle(t *testing.T) {
	t.Parallel()
	c := strideController(t)
	cpm := c.CPUPerMem()
	if c.MemCycle() != -1 {
		t.Fatalf("MemCycle before any tick = %d, want -1", c.MemCycle())
	}
	for cpu := int64(0); cpu < 25*cpm+3; cpu++ {
		c.Tick(cpu)
		if got, want := c.MemCycle(), cpu/cpm; got != want {
			t.Fatalf("after Tick(%d): MemCycle = %d, want floor(%d/%d) = %d", cpu, got, cpu, cpm, want)
		}
	}
}

func TestSkipToRealignsStride(t *testing.T) {
	t.Parallel()
	c := strideController(t)
	cpm := c.CPUPerMem()
	// Establish some history, then jump to targets that land on and off
	// DRAM-tick boundaries; after resuming per-cycle ticking from each
	// target the sequence must rejoin floor(cpu/cpm) immediately.
	for cpu := int64(0); cpu < 3*cpm; cpu++ {
		c.Tick(cpu)
	}
	for _, target := range []int64{
		5 * cpm,      // exactly on a boundary: next tick runs DRAM work
		9*cpm + 1,    // just past a boundary
		14*cpm - 1,   // just before a boundary
		1000 * cpm,   // far jump, aligned
		2000*cpm + 3, // far jump, unaligned
	} {
		c.SkipTo(target)
		for cpu := target; cpu < target+2*cpm; cpu++ {
			c.Tick(cpu)
			if got, want := c.MemCycle(), cpu/cpm; got != want {
				t.Fatalf("after SkipTo(%d) and Tick(%d): MemCycle = %d, want %d", target, cpu, got, want)
			}
		}
	}
}

func TestSkipToSameWindowIsNoOp(t *testing.T) {
	t.Parallel()
	c := strideController(t)
	cpm := c.CPUPerMem()
	for cpu := int64(0); cpu <= 7*cpm; cpu++ {
		c.Tick(cpu)
	}
	before := c.MemCycle()
	// Targets inside the current DRAM-tick window (the cycles per-cycle
	// ticking would silently pass through) must leave the stride state
	// untouched — this is the fast path SkipTo short-circuits.
	for _, target := range []int64{7*cpm + 1, 7*cpm + cpm/2, 8 * cpm} {
		c.SkipTo(target)
		if c.MemCycle() != before {
			t.Fatalf("SkipTo(%d) inside the current window changed MemCycle %d -> %d", target, before, c.MemCycle())
		}
	}
	// The next boundary tick must still fire exactly once at 8*cpm.
	c.Tick(8 * cpm)
	if got, want := c.MemCycle(), int64(8); got != want {
		t.Fatalf("boundary tick after in-window SkipTo: MemCycle = %d, want %d", got, want)
	}
}

func TestTickResynchronizesAfterOvershoot(t *testing.T) {
	t.Parallel()
	c := strideController(t)
	cpm := c.CPUPerMem()
	for cpu := int64(0); cpu < 2*cpm; cpu++ {
		c.Tick(cpu)
	}
	// A caller that jumps the clock without calling SkipTo first (the run
	// loop always does, but Tick guards the invariant anyway) is realigned
	// by Tick itself.
	jump := 50*cpm + 2
	c.Tick(jump)
	if got, want := c.MemCycle(), jump/cpm; got != want {
		t.Fatalf("Tick(%d) after overshoot: MemCycle = %d, want %d", jump, got, want)
	}
}

package memctrl

import (
	"testing"

	"pradram/internal/core"
)

func TestOpenPageKeepsRowsOpen(t *testing.T) {
	t.Parallel()
	c := newCtl(t, func(cfg *Config) { cfg.Policy = OpenPage })
	done := false
	c.Read(addrAt(c, Loc{Row: 5, Col: 0}), core.Untagged(func(int64) { done = true }))
	runUntil(t, c, 0, 10000, func() bool { return done })
	// The queue is empty, yet the row stays open (relaxed close would
	// have closed it).
	var cpu int64 = 10000
	for ; cpu < 12000; cpu++ {
		c.Tick(cpu)
	}
	if got := c.chans[0].ch.OpenBankCount() + c.chans[1].ch.OpenBankCount(); got != 1 {
		t.Fatalf("open banks = %d, want 1 (open-page persistence)", got)
	}
	// A late same-row read hits without re-activation.
	done = false
	c.Read(addrAt(c, Loc{Row: 5, Col: 1}), core.Untagged(func(int64) { done = true }))
	runUntil(t, c, cpu, 10000, func() bool { return done })
	s := c.Stats()
	if s.RowHitRead != 1 {
		t.Errorf("late same-row read hits = %d, want 1", s.RowHitRead)
	}
	if c.DeviceStats().Activations() != 1 {
		t.Errorf("activations = %d, want 1", c.DeviceStats().Activations())
	}
}

func TestOpenPageConflictCloses(t *testing.T) {
	t.Parallel()
	c := newCtl(t, func(cfg *Config) { cfg.Policy = OpenPage })
	done := 0
	c.Read(addrAt(c, Loc{Row: 5}), core.Untagged(func(int64) { done++ }))
	runUntil(t, c, 0, 10000, func() bool { return done == 1 })
	// A conflicting row in the same bank forces PRE + ACT.
	c.Read(addrAt(c, Loc{Row: 6}), core.Untagged(func(int64) { done++ }))
	runUntil(t, c, 10000, 20000, func() bool { return done == 2 })
	d := c.DeviceStats()
	if d.Activations() != 2 || d.Precharges != 1 {
		t.Errorf("acts/pres = %d/%d, want 2/1", d.Activations(), d.Precharges)
	}
}

func TestOpenPagePRAFalseHitsPersist(t *testing.T) {
	t.Parallel()
	// Under open-page a partially opened PRA row persists, so a much
	// later read to it false-hits — the policy-sensitivity effect the
	// extension exposes.
	c := newCtl(t, func(cfg *Config) {
		cfg.Policy = OpenPage
		cfg.Scheme = PRA
	})
	c.Write(addrAt(c, Loc{Row: 5, Col: 0}), core.StoreBytes(0, 8))
	cpu := runUntil(t, c, 0, 100000, func() bool { return c.Stats().WritesServed == 1 })
	// Read promptly (before a refresh closes the persisted partial row).
	done := false
	c.Read(addrAt(c, Loc{Row: 5, Col: 3}), core.Untagged(func(int64) { done = true }))
	runUntil(t, c, cpu+1, 100000, func() bool { return done })
	if got := c.Stats().FalseHitRead; got != 1 {
		t.Errorf("false read hits = %d, want 1 (partial row persisted)", got)
	}
}

func TestOpenPageParsing(t *testing.T) {
	t.Parallel()
	p, err := ParsePolicy("open")
	if err != nil || p != OpenPage {
		t.Fatalf("ParsePolicy(open) = %v, %v", p, err)
	}
	if OpenPage.String() != "open-page" {
		t.Error("OpenPage string wrong")
	}
}

package memctrl

import "fmt"

// Scheme selects the row-activation architecture under study (Section 5.2).
type Scheme int

const (
	// Baseline is the conventional DRAM: full-row activation, full bursts.
	Baseline Scheme = iota
	// FGA is fine-grained activation at half-row granularity, the variant
	// the paper evaluates: half activation energy for reads and writes,
	// but the n-bit prefetch is broken so every 64B transfer takes twice
	// the bursts (16 bursts / 8 memory cycles).
	FGA
	// HalfDRAM activates half of every MAT for reads and writes at full
	// bandwidth (Zhang et al., ISCA'14; the Half-DRAM-1Row variant).
	HalfDRAM
	// PRA is the paper's contribution: full-row activation for reads;
	// partial activation (one-eighth to full) for writes driven by FGD
	// dirty-word masks, with only dirty words transferred on the bus.
	PRA
	// HalfDRAMPRA layers PRA's write-mask selection on top of the
	// Half-DRAM organization (Section 5.2.3): reads activate half rows;
	// writes activate half of the masked MAT groups.
	HalfDRAMPRA
	// SDS is the Skinflint DRAM System (Lee et al., HPCA 2013), the
	// inter-chip comparison point of Section 3: a write accesses only the
	// chips whose byte positions are dirty (one chip per byte position of
	// every word), skipping activation and data transfer on clean chips.
	// Because chips are independent devices, skipping a chip saves its
	// full share linearly — but one dirty word already touches all eight
	// byte positions, so SDS's coverage is far below PRA's.
	SDS
)

var schemeNames = map[Scheme]string{
	Baseline: "baseline", FGA: "fga", HalfDRAM: "halfdram",
	PRA: "pra", HalfDRAMPRA: "halfdram+pra", SDS: "sds",
}

// String returns the scheme's canonical name (the one ParseScheme accepts).
func (s Scheme) String() string {
	if n, ok := schemeNames[s]; ok {
		return n
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// ParseScheme resolves a scheme name used by the CLIs.
func ParseScheme(name string) (Scheme, error) {
	for s, n := range schemeNames {
		if n == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("memctrl: unknown scheme %q (baseline, fga, halfdram, pra, halfdram+pra, sds)", name)
}

// Schemes lists all schemes in presentation order.
func Schemes() []Scheme { return []Scheme{Baseline, FGA, HalfDRAM, PRA, HalfDRAMPRA, SDS} }

// halfDRAMOrg reports whether the scheme uses the Half-DRAM cell
// organization (halved activation energy and tRRD/tFAW weight per mask
// bit). FGA also activates half the bitline capacity per row.
func (s Scheme) halfDRAMOrg() bool { return s == HalfDRAM || s == HalfDRAMPRA || s == FGA }

// praWrites reports whether writes use dirtiness-driven partial access
// masks (PRA at word/MAT-group granularity; SDS at chip granularity).
func (s Scheme) praWrites() bool { return s == PRA || s == HalfDRAMPRA || s == SDS }

// chipMasks reports whether write masks select chips (SDS) rather than
// MAT groups (PRA).
func (s Scheme) chipMasks() bool { return s == SDS }

// burstCycles returns the data-bus cycles one 64B transfer occupies.
func (s Scheme) burstCycles(base int) int {
	if s == FGA {
		return 2 * base // prefetch broken: 16 bursts instead of 8
	}
	return base
}

// ioFrac returns the I/O energy scale per transfer relative to a full-rate
// burst: FGA moves the same bits at half rate over twice the time, so its
// per-transfer I/O energy matches the baseline (the paper's Figure 12(b)
// note: FGA's I/O *power* drops only via the longer runtime).
func (s Scheme) ioFrac() float64 {
	if s == FGA {
		return 0.5
	}
	return 1
}

// Policy selects the row-buffer management policy (Section 5.1.2).
type Policy int

const (
	// RelaxedClose closes an open row when no queued request can benefit
	// from it, and puts idle ranks into precharge power-down.
	RelaxedClose Policy = iota
	// RestrictedClose auto-precharges after every column access: each
	// request is an atomic ACT + column + PRE.
	RestrictedClose
	// OpenPage keeps rows open until a conflicting request needs the
	// bank (classic open-page management). Not evaluated in the paper —
	// provided as an extension for policy-sensitivity studies. Idle ranks
	// still refresh, but rows are never closed speculatively, so
	// precharge power-down only happens behind refreshes.
	//
	// Under OpenPage the activation count of a serialized access stream
	// is analytically predictable: Config.MaxRowHits caps consecutive
	// column accesses per activation (the auto-precharge fires with the
	// capping access), so a run of L same-row accesses costs exactly
	// ceil(L/MaxRowHits) activations — the closed form the tensor-stream
	// oracle (internal/workload.TensorEpochActs) checks end to end.
	OpenPage
)

// String returns the policy's canonical name (the one ParsePolicy accepts).
func (p Policy) String() string {
	switch p {
	case RelaxedClose:
		return "relaxed-close"
	case RestrictedClose:
		return "restricted-close"
	default:
		return "open-page"
	}
}

// ParsePolicy resolves a policy name used by the CLIs.
func ParsePolicy(name string) (Policy, error) {
	switch name {
	case "relaxed", "relaxed-close":
		return RelaxedClose, nil
	case "restricted", "restricted-close":
		return RestrictedClose, nil
	case "open", "open-page":
		return OpenPage, nil
	}
	return 0, fmt.Errorf("memctrl: unknown policy %q (relaxed, restricted, open)", name)
}

package memctrl

// Parallel-in-time ticking (DESIGN.md §4i): channels are independent
// discrete-event islands — every field a chanCtl.tick touches is owned by
// that channel (its queues, FSMs, dram.Channel, power accumulator; cfg and
// the address map are read-only) — EXCEPT when a read completes and its
// done.Fn callback re-enters the front end (cache fill, writeback spawn,
// possibly a re-entrant Write into any channel). Sequential semantics are
// therefore fixed entirely by where completions fire, and the engine's job
// each DRAM tick reduces to a conservative lookahead question: which
// prefix of channels provably fires no front-end-visible completion this
// tick, or fires one only at the very end of its tick?
//
// Per tick the master classifies each channel, in index order, as:
//
//   - silent: cannot invoke any done.Fn this tick. Proof obligations, in
//     tick order: no pending write-forwarded reads (they complete at the
//     top of the tick); nextWake > mem (the tick early-returns before
//     scheduling); empty read queue (only read columns and forwards call
//     back, and the read queue cannot grow mid-tick — front-end enqueues
//     happen between ticks, and re-entrant fills spawn only writes);
//     rfmPending (the pass is refresh/RFM-only); or no open bank (a
//     column needs a row already open at scan time — an ACT issued this
//     tick ends the pass before any column).
//   - tail-completing: may complete a read column. That callback is the
//     last action of the tick (the pass returns immediately after), so
//     deferring it past the tick barrier is invisible to the channel
//     itself, and replaying it before any higher-indexed channel ticks
//     preserves the sequential cross-channel order exactly.
//   - inline: has pending forwards. Forward completions fire before the
//     nextWake check and the scheduling pass, and their fill callbacks
//     can re-enter this same channel mid-tick (a spawned write disarms
//     nextWake), so the channel must tick on the master with callbacks
//     inline, after every lower-indexed channel.
//
// The dispatch plan is then: the longest prefix of silent channels plus
// at most one trailing tail-completing channel ticks concurrently on the
// pdes.Team (completions captured into per-channel rings); the master
// drains the rings in channel order at the barrier; the remaining
// channels tick sequentially inline. Cross-channel visibility matches the
// sequential loop by construction: a completion on channel i is applied
// before any channel j > i ticks (sequential same-tick visibility) and
// after every channel j <= i ticked (they would have seen it only next
// tick anyway, since request arrival stamps are lastMem+1).
//
// Runs with the event trace enabled fall back to sequential ticking —
// events interleave through one shared ring whose order is part of the
// bit-identity contract (AttachObs calls DisableParallel). The recorder,
// probes, checkpointing, and CatchUp all run between ticks, when the
// workers are parked, so they need no changes.

import (
	"runtime"

	"pradram/internal/core"
	"pradram/internal/pdes"
)

// parEngine drives the per-tick conservative dispatch over a worker team.
type parEngine struct {
	c    *Controller
	team *pdes.Team

	parTicks     int64 // ticks that dispatched >= 2 channels concurrently
	parChanTicks int64 // channel-ticks executed on the team
}

// EnableParallel switches the controller to parallel-in-time ticking over
// workers goroutine shares (the caller included; workers <= 0 selects
// runtime.GOMAXPROCS(0), and the count is clamped to the channel count).
// It is a no-op — the controller stays sequential — when fewer than two
// shares would result (single-channel config, or auto on a single-CPU
// process). Results are bit-identical either way; see the package comment
// in pdes.go. Call before the first Tick; not safe mid-run.
func (c *Controller) EnableParallel(workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(c.chans) {
		workers = len(c.chans)
	}
	if workers < 2 {
		return
	}
	p := &parEngine{c: c}
	p.team = pdes.NewTeam(workers, func(share int, mem, end int64) {
		for i := share; i < int(end); i += workers {
			c.chans[i].tick(mem)
		}
	})
	for _, cc := range c.chans {
		// At most one read column completes per channel per tick (a
		// scheduling pass ends at the first issued command), so the ring
		// never grows past 1; the slack is free insurance.
		cc.deferred = pdes.NewRing(4)
	}
	c.par = p
}

// DisableParallel reverts to sequential ticking, releasing any worker
// goroutines. Used by AttachObs when the event trace is on (shared-ring
// event order is part of the bit-identity contract) and by -seq paths.
func (c *Controller) DisableParallel() {
	if c.par == nil {
		return
	}
	c.par.team.Stop()
	c.par = nil
	for _, cc := range c.chans {
		cc.deferring = false
		cc.deferred = nil
	}
}

// StopWorkers parks and releases the engine's worker goroutines, keeping
// parallel mode enabled: the next Tick restarts them lazily. Run loops
// call this when a measurement phase ends so idle Systems hold no
// goroutines. No-op on sequential controllers.
func (c *Controller) StopWorkers() {
	if c.par != nil {
		c.par.team.Stop()
	}
}

// ParallelEnabled reports whether the controller ticks in parallel mode.
func (c *Controller) ParallelEnabled() bool { return c.par != nil }

// ParallelWorkers returns the worker-share count (0 when sequential).
func (c *Controller) ParallelWorkers() int {
	if c.par == nil {
		return 0
	}
	return c.par.team.Size()
}

// ParallelTicks returns how many DRAM ticks dispatched at least two
// channels concurrently — the non-vacuity counter the identity tests
// assert on. Cumulative over the controller's lifetime.
func (c *Controller) ParallelTicks() int64 {
	if c.par == nil {
		return 0
	}
	return c.par.parTicks
}

// ParallelChannelTicks returns how many channel-ticks ran on the team.
func (c *Controller) ParallelChannelTicks() int64 {
	if c.par == nil {
		return 0
	}
	return c.par.parChanTicks
}

// couldCompleteColumn conservatively reports whether this channel's tick
// at mem could complete a read column (the only mid-pass completion
// source besides forwards, which the caller checks separately). May
// return true when no completion will actually occur; must never return
// false when one could. See the proof obligations in the file comment.
func (cc *chanCtl) couldCompleteColumn(mem int64) bool {
	return len(cc.readQ) > 0 && cc.nextWake <= mem && !cc.rfmPending &&
		cc.ch.OpenBankCount() > 0
}

// tick runs one DRAM tick over all channels under the dispatch plan
// described in the file comment, bit-identical to the sequential loop.
func (p *parEngine) tick(mem int64) {
	chans := p.c.chans
	parEnd := len(chans) // channels [0, parEnd) tick concurrently
	for i, cc := range chans {
		if len(cc.forwards) > 0 {
			parEnd = i // inline: completions fire pre-scheduling
			break
		}
		if cc.couldCompleteColumn(mem) {
			parEnd = i + 1 // tail-completing: defer past the barrier
			break
		}
	}

	if parEnd < 2 {
		for _, cc := range chans {
			cc.tick(mem)
		}
		return
	}

	for i := 0; i < parEnd; i++ {
		chans[i].deferring = true
	}
	p.team.Do(mem, int64(parEnd))
	p.parTicks++
	p.parChanTicks += int64(parEnd)
	for i := 0; i < parEnd; i++ {
		cc := chans[i]
		cc.deferring = false
		cc.deferred.Drain() // canonical order: channel index, then capture order
	}
	for i := parEnd; i < len(chans); i++ {
		chans[i].tick(mem)
	}
}

// complete fires (or, mid-parallel-phase, defers) a request completion.
// Both completion sites — forward completions and read columns — funnel
// through here so the deferral decision has one audited choke point. The
// core.Done is passed by value: the captured Fn survives the request's
// release back to the pool.
func (cc *chanCtl) complete(d core.Done, at int64) {
	if cc.deferring {
		cc.deferred.Push(pdes.Msg{Fn: d.Fn, At: at})
		return
	}
	d.Fn(at)
}

package memctrl

import (
	"pradram/internal/checkpoint"
	"pradram/internal/core"
)

// Checkpointing (DESIGN.md §4e). The controller serializes the clock
// stride, the NextEvent cache, and per channel: the DRAM channel state,
// the request queues (verbatim order — FR-FCFS scans them in order, so
// order is simulation-visible), the forward list, drain/refresh/hit
// bookkeeping, and the wake time. The derived occupancy indices
// (rowCount, rankCount) are recomputed from the restored queues.
// Statistics and energy are not serialized: checkpoints are taken at the
// warmup boundary, immediately after ResetStats.
//
// Read-request completions point back into the cache hierarchy's MSHR
// entries; they are rebound through the line-id resolver the hierarchy's
// RestoreState returns.

func saveReq(w *checkpoint.Writer, req *request) {
	w.U8(uint8(req.kind))
	w.Int(req.loc.Channel)
	w.Int(req.loc.Rank)
	w.Int(req.loc.Bank)
	w.Int(req.loc.Row)
	w.Int(req.loc.Col)
	w.U64(req.rowKey)
	w.U64(uint64(req.byteMask))
	w.U8(uint8(req.wordMask))
	w.I64(req.arrive)
	if req.kind == core.Read {
		w.U8(uint8(req.done.Tag.Kind))
		w.U64(req.done.Tag.Serial)
	}
	w.Bool(req.activated)
	w.Bool(req.falseHit)
	// Attribution state (latency.go), ckptFormat v4: the sweep frontier
	// and the blame accumulated so far, so a restored run's completed
	// requests report the same breakdowns as the monolithic run's.
	w.I64(req.mark)
	for _, v := range req.brk {
		w.I64(v)
	}
}

// SaveState appends the controller's dynamic state.
func (c *Controller) SaveState(w *checkpoint.Writer) {
	w.I64(c.lastMem)
	w.I64(c.nextMemAt)
	w.Bool(c.active)
	w.I64(c.minWake)
	for _, cc := range c.chans {
		cc.ch.SaveState(w)
		w.Count(len(cc.readQ))
		for _, req := range cc.readQ {
			saveReq(w, req)
		}
		w.Count(len(cc.writeQ))
		for _, req := range cc.writeQ {
			saveReq(w, req)
		}
		w.Count(len(cc.forwards))
		for _, req := range cc.forwards {
			saveReq(w, req)
		}
		w.Bool(cc.drain)
		for r := range cc.hitCount {
			for b := range cc.hitCount[r] {
				w.Int(cc.hitCount[r][b])
			}
		}
		for _, p := range cc.refPending {
			w.Bool(p)
		}
		for _, t := range cc.lastWork {
			w.I64(t)
		}
		w.I64(cc.nextWake)
		// Alert/RFM mitigation FSM (mitigation.go), ckptFormat v3: a
		// restored run must wait out an in-flight back-off and issue the
		// pending RFM exactly like the monolithic run.
		w.Bool(cc.rfmPending)
		w.Int(cc.rfmRank)
		w.Int(cc.rfmBank)
		w.I64(cc.alertUntil)
	}
}

// restoreReq decodes one request for channel cc; fillResolve rebinds read
// completions to the restored MSHR entries.
func (cc *chanCtl) restoreReq(r *checkpoint.Reader, fillResolve func(lineID uint64) (core.Done, bool)) *request {
	req := &request{}
	req.kind = core.AccessKind(r.U8())
	if req.kind != core.Read && req.kind != core.Write {
		r.Fail("memctrl: request kind %d", req.kind)
	}
	req.loc.Channel = r.Int()
	req.loc.Rank = r.Int()
	req.loc.Bank = r.Int()
	req.loc.Row = r.Int()
	req.loc.Col = r.Int()
	req.rowKey = r.U64()
	req.byteMask = core.ByteMask(r.U64())
	req.wordMask = core.Mask(r.U8())
	req.arrive = r.I64()
	if req.kind == core.Read {
		kind := core.DoneKind(r.U8())
		serial := r.U64()
		if kind != core.DoneFill {
			r.Fail("memctrl: read completion tag kind %d", kind)
		} else if r.Err() == nil {
			d, ok := fillResolve(serial)
			if !ok {
				r.Fail("memctrl: no in-flight miss for line %#x", serial)
			}
			req.done = d
		}
	}
	req.activated = r.Bool()
	req.falseHit = r.Bool()
	req.mark = r.I64()
	for i := range req.brk {
		req.brk[i] = r.I64()
	}
	if req.mark < req.arrive {
		r.Fail("memctrl: attribution mark %d before arrival %d", req.mark, req.arrive)
	}
	g := cc.cfg.Geom
	if req.loc.Channel != cc.idx || req.loc.Rank < 0 || req.loc.Rank >= g.Ranks ||
		req.loc.Bank < 0 || req.loc.Bank >= g.Banks || req.loc.Row < 0 || req.loc.Row >= g.Rows {
		r.Fail("memctrl: request location %+v out of range on channel %d", req.loc, cc.idx)
	}
	return req
}

// RestoreState decodes a SaveState payload into temporaries and returns a
// commit that installs it; on error the controller is untouched.
func (c *Controller) RestoreState(r *checkpoint.Reader, fillResolve func(lineID uint64) (core.Done, bool)) (func(), error) {
	lastMem := r.I64()
	nextMemAt := r.I64()
	active := r.Bool()
	minWake := r.I64()
	type chanState struct {
		chCommit                func()
		readQ, writeQ, forwards []*request
		drain                   bool
		hitCount                []int
		refPending              []bool
		lastWork                []int64
		nextWake                int64
		rfmPending              bool
		rfmRank, rfmBank        int
		alertUntil              int64
	}
	states := make([]chanState, len(c.chans))
	for i, cc := range c.chans {
		st := &states[i]
		chCommit, err := cc.ch.RestoreState(r)
		if err != nil {
			return nil, err
		}
		st.chCommit = chCommit
		nq := r.Count()
		if nq > c.cfg.ReadQ {
			r.Fail("memctrl: read queue %d of %d", nq, c.cfg.ReadQ)
			nq = 0
		}
		st.readQ = make([]*request, nq)
		for j := range st.readQ {
			st.readQ[j] = cc.restoreReq(r, fillResolve)
		}
		nq = r.Count()
		if nq > c.cfg.WriteQ {
			r.Fail("memctrl: write queue %d of %d", nq, c.cfg.WriteQ)
			nq = 0
		}
		st.writeQ = make([]*request, nq)
		for j := range st.writeQ {
			st.writeQ[j] = cc.restoreReq(r, fillResolve)
		}
		st.forwards = make([]*request, r.Count())
		for j := range st.forwards {
			st.forwards[j] = cc.restoreReq(r, fillResolve)
		}
		st.drain = r.Bool()
		st.hitCount = make([]int, c.cfg.Geom.Ranks*c.cfg.Geom.Banks)
		for j := range st.hitCount {
			st.hitCount[j] = r.Int()
		}
		st.refPending = make([]bool, c.cfg.Geom.Ranks)
		for j := range st.refPending {
			st.refPending[j] = r.Bool()
		}
		st.lastWork = make([]int64, c.cfg.Geom.Ranks)
		for j := range st.lastWork {
			st.lastWork[j] = r.I64()
		}
		st.nextWake = r.I64()
		st.rfmPending = r.Bool()
		st.rfmRank = r.Int()
		st.rfmBank = r.Int()
		st.alertUntil = r.I64()
		if st.rfmPending && (st.rfmRank < 0 || st.rfmRank >= c.cfg.Geom.Ranks ||
			st.rfmBank < 0 || st.rfmBank >= c.cfg.Geom.Banks) {
			r.Fail("memctrl: pending RFM target rank %d bank %d out of range", st.rfmRank, st.rfmBank)
		}
		if st.rfmPending && c.cfg.MitThreshold <= 0 {
			r.Fail("memctrl: pending RFM with mitigation disabled")
		}
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return func() {
		c.lastMem = lastMem
		c.nextMemAt = nextMemAt
		c.active = active
		c.minWake = minWake
		for i, cc := range c.chans {
			st := &states[i]
			st.chCommit()
			cc.readQ = st.readQ
			cc.writeQ = st.writeQ
			cc.forwards = st.forwards
			cc.drain = st.drain
			for ri := range cc.hitCount {
				for bi := range cc.hitCount[ri] {
					cc.hitCount[ri][bi] = st.hitCount[ri*c.cfg.Geom.Banks+bi]
				}
			}
			copy(cc.refPending, st.refPending)
			copy(cc.lastWork, st.lastWork)
			cc.nextWake = st.nextWake
			cc.rfmPending = st.rfmPending
			cc.rfmRank = st.rfmRank
			cc.rfmBank = st.rfmBank
			cc.alertUntil = st.alertUntil
			cc.freeReq = nil
			// Recompute the derived occupancy indices (forwarded reads are
			// never counted — they bypassed noteAdd on enqueue).
			cc.rowCount = nil
			for ri := range cc.rankCount {
				cc.rankCount[ri] = 0
			}
			for _, req := range cc.readQ {
				cc.noteAdd(req)
			}
			for _, req := range cc.writeQ {
				cc.noteAdd(req)
			}
		}
	}, nil
}

package memctrl

import (
	"testing"

	"pradram/internal/core"
	"pradram/internal/power"
)

func newCtl(t *testing.T, mod func(*Config)) *Controller {
	t.Helper()
	cfg := DefaultConfig()
	if mod != nil {
		mod(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// runUntil ticks the controller until cond returns true or the budget runs
// out; it returns the CPU cycle reached.
func runUntil(t *testing.T, c *Controller, start, budget int64, cond func() bool) int64 {
	t.Helper()
	for cpu := start; cpu < start+budget; cpu++ {
		c.Tick(cpu)
		if cond() {
			return cpu
		}
	}
	t.Fatalf("condition not reached within %d cycles", budget)
	return 0
}

func addrAt(c *Controller, l Loc) uint64 { return c.Mapper().Compose(l) }

func TestConfigValidation(t *testing.T) {
	t.Parallel()
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Channels = 3
	if bad.Validate() == nil {
		t.Error("3 channels must fail")
	}
	bad = good
	bad.HighWM, bad.LowWM = 10, 20
	if bad.Validate() == nil {
		t.Error("inverted watermarks must fail")
	}
	bad = good
	bad.CPUPerMem = 0
	if bad.Validate() == nil {
		t.Error("zero clock ratio must fail")
	}
	bad = good
	bad.MaxRowHits = 0
	if bad.Validate() == nil {
		t.Error("zero row-hit cap must fail")
	}
	if _, err := New(bad); err == nil {
		t.Error("New must propagate validation")
	}
}

func TestSingleReadLatency(t *testing.T) {
	t.Parallel()
	c := newCtl(t, nil)
	var doneAt int64 = -1
	if !c.Read(0x1000, core.Untagged(func(at int64) { doneAt = at })) {
		t.Fatal("read rejected")
	}
	runUntil(t, c, 0, 10000, func() bool { return doneAt >= 0 })
	// Idle-start read: power-down exit + ACT + tRCD + CL + burst, in CPU
	// cycles (x4). Roughly (11+11+4)*4 = 104 plus scheduling slack.
	if doneAt < 26*4 || doneAt > 60*4 {
		t.Errorf("read latency %d CPU cycles, want ~104-240", doneAt)
	}
	s := c.Stats()
	if s.ReadsServed != 1 || s.RowHitRead != 0 {
		t.Errorf("stats %+v, want 1 read, 0 hits", s)
	}
}

func TestRowHitsAndCap(t *testing.T) {
	t.Parallel()
	c := newCtl(t, nil)
	done := 0
	for col := 0; col < 8; col++ {
		addr := addrAt(c, Loc{Row: 5, Col: col})
		if !c.Read(addr, core.Untagged(func(int64) { done++ })) {
			t.Fatal("read rejected")
		}
	}
	runUntil(t, c, 0, 100000, func() bool { return done == 8 })
	s := c.Stats()
	// 8 same-row reads under a 4-access cap: ACT, 3 hits, re-ACT, 3 hits.
	if s.RowHitRead != 6 {
		t.Errorf("row hits = %d, want 6 (4-access cap)", s.RowHitRead)
	}
	if got := c.DeviceStats().Activations(); got != 2 {
		t.Errorf("activations = %d, want 2", got)
	}
}

func TestPRAPartialWriteActivation(t *testing.T) {
	t.Parallel()
	c := newCtl(t, func(cfg *Config) { cfg.Scheme = PRA })
	addr := addrAt(c, Loc{Row: 9})
	if !c.Write(addr, core.StoreBytes(0, 8)) { // word 0 dirty
		t.Fatal("write rejected")
	}
	runUntil(t, c, 0, 100000, func() bool { return c.Stats().WritesServed == 1 })
	d := c.DeviceStats()
	if d.ActsByGranularity[1] != 1 {
		t.Errorf("granularity histogram = %v, want one 1/8 activation", d.ActsByGranularity)
	}
	if d.WordsWritten != 1 || d.WordBudget != 8 {
		t.Errorf("words written = %d/%d, want 1/8", d.WordsWritten, d.WordBudget)
	}
}

func TestBaselineWriteIsFullRow(t *testing.T) {
	t.Parallel()
	c := newCtl(t, nil)
	addr := addrAt(c, Loc{Row: 9})
	c.Write(addr, core.StoreBytes(0, 8))
	runUntil(t, c, 0, 100000, func() bool { return c.Stats().WritesServed == 1 })
	d := c.DeviceStats()
	if d.ActsByGranularity[8] != 1 {
		t.Errorf("baseline write must fully activate, got %v", d.ActsByGranularity)
	}
	if d.WordsWritten != 8 {
		t.Errorf("baseline transfers all words, got %d", d.WordsWritten)
	}
}

func TestPRAMaskMerging(t *testing.T) {
	t.Parallel()
	c := newCtl(t, func(cfg *Config) { cfg.Scheme = PRA })
	// Two same-row writes with different dirty words, queued together:
	// their masks OR into one 2/8 activation (Section 5.2.1).
	c.Write(addrAt(c, Loc{Row: 9, Col: 0}), core.StoreBytes(0, 8))
	c.Write(addrAt(c, Loc{Row: 9, Col: 1}), core.StoreBytes(8, 8))
	runUntil(t, c, 0, 100000, func() bool { return c.Stats().WritesServed == 2 })
	d := c.DeviceStats()
	if d.ActsByGranularity[2] != 1 || d.Activations() != 1 {
		t.Errorf("want one 2/8 activation, got %v", d.ActsByGranularity)
	}
	s := c.Stats()
	if s.RowHitWrite != 1 {
		t.Errorf("second merged write must count as a row hit, got %d", s.RowHitWrite)
	}
}

func TestQueuedReadForcesFullActivation(t *testing.T) {
	t.Parallel()
	c := newCtl(t, func(cfg *Config) { cfg.Scheme = PRA })
	c.Write(addrAt(c, Loc{Row: 9, Col: 0}), core.StoreBytes(0, 8))
	done := false
	c.Read(addrAt(c, Loc{Row: 9, Col: 1}), core.Untagged(func(int64) { done = true }))
	runUntil(t, c, 0, 100000, func() bool { return done && c.Stats().WritesServed == 1 })
	d := c.DeviceStats()
	// The read is served first (read priority) with a full ACT; the write
	// then hits the open full row: one full activation, no partial.
	if d.ActsByGranularity[8] != 1 || d.Activations() != 1 {
		t.Errorf("want one full activation, got %v", d.ActsByGranularity)
	}
	if c.Stats().FalseHitRead != 0 {
		t.Error("no false hit expected when the read activates first")
	}
}

func TestFalseRowBufferHitOnRead(t *testing.T) {
	t.Parallel()
	c := newCtl(t, func(cfg *Config) { cfg.Scheme = PRA })
	// Three same-row writes keep the partial row open (relaxed policy sees
	// pending beneficiaries).
	for i := 0; i < 3; i++ {
		c.Write(addrAt(c, Loc{Row: 9, Col: i}), core.StoreBytes(0, 8))
	}
	var cpu int64
	cpu = runUntil(t, c, 0, 100000, func() bool { return c.Stats().WritesServed >= 1 })
	// The row is now open with a partial mask; a read to it false-hits.
	done := false
	c.Read(addrAt(c, Loc{Row: 9, Col: 7}), core.Untagged(func(int64) { done = true }))
	runUntil(t, c, cpu+1, 200000, func() bool { return done })
	if got := c.Stats().FalseHitRead; got != 1 {
		t.Errorf("false read hits = %d, want 1", got)
	}
}

func TestFalseRowBufferHitOnWrite(t *testing.T) {
	t.Parallel()
	c := newCtl(t, func(cfg *Config) { cfg.Scheme = PRA })
	for i := 0; i < 3; i++ {
		c.Write(addrAt(c, Loc{Row: 9, Col: i}), core.StoreBytes(0, 8)) // word 0
	}
	cpu := runUntil(t, c, 0, 100000, func() bool { return c.Stats().WritesServed >= 1 })
	// A write needing word 7, outside the open 1/8 mask, false-hits.
	c.Write(addrAt(c, Loc{Row: 9, Col: 7}), core.StoreBytes(56, 8))
	runUntil(t, c, cpu+1, 200000, func() bool { return c.Stats().WritesServed == 4 })
	if got := c.Stats().FalseHitWrite; got != 1 {
		t.Errorf("false write hits = %d, want 1", got)
	}
}

func TestWriteForwarding(t *testing.T) {
	t.Parallel()
	c := newCtl(t, nil)
	addr := addrAt(c, Loc{Row: 3})
	c.Write(addr, core.FullByteMask)
	done := false
	c.Read(addr, core.Untagged(func(int64) { done = true }))
	runUntil(t, c, 0, 1000, func() bool { return done })
	if c.Stats().Forwarded != 1 {
		t.Errorf("forwarded = %d, want 1", c.Stats().Forwarded)
	}
}

func TestWriteMergeInQueue(t *testing.T) {
	t.Parallel()
	c := newCtl(t, func(cfg *Config) { cfg.Scheme = PRA })
	addr := addrAt(c, Loc{Row: 4})
	c.Write(addr, core.StoreBytes(0, 8))
	c.Write(addr, core.StoreBytes(8, 8)) // merges with the first
	runUntil(t, c, 0, 100000, func() bool { return c.Stats().WritesServed >= 1 })
	s := c.Stats()
	if s.WritesServed != 1 {
		t.Errorf("writes served = %d, want 1 (merged)", s.WritesServed)
	}
	if got := c.DeviceStats().WordsWritten; got != 2 {
		t.Errorf("merged write must carry 2 words, got %d", got)
	}
}

func TestReadQueueLimit(t *testing.T) {
	t.Parallel()
	c := newCtl(t, func(cfg *Config) { cfg.ReadQ = 4 })
	accepted := 0
	for i := 0; i < 8; i++ {
		// All to channel 0, distinct rows.
		if c.Read(addrAt(c, Loc{Row: i}), core.Untagged(func(int64) {})) {
			accepted++
		}
	}
	if accepted != 4 {
		t.Errorf("accepted %d reads, want 4", accepted)
	}
	if c.Stats().ReadRejects != 4 {
		t.Errorf("rejects = %d, want 4", c.Stats().ReadRejects)
	}
}

func TestWriteDrainWatermarks(t *testing.T) {
	t.Parallel()
	c := newCtl(t, func(cfg *Config) {
		cfg.WriteQ, cfg.HighWM, cfg.LowWM = 16, 8, 2
	})
	// Park a stream of reads so writes would otherwise starve.
	for i := 0; i < 32; i++ {
		c.Read(addrAt(c, Loc{Row: 100 + i}), core.Untagged(func(int64) {}))
	}
	for i := 0; i < 10; i++ {
		c.Write(addrAt(c, Loc{Row: i, Rank: 1}), core.FullByteMask)
	}
	runUntil(t, c, 0, 500000, func() bool {
		s := c.Stats()
		return s.WritesServed >= 8 // drained past the high watermark
	})
}

func TestRestrictedClosePolicyNoHits(t *testing.T) {
	t.Parallel()
	c := newCtl(t, func(cfg *Config) {
		cfg.Policy = RestrictedClose
		cfg.Mapping = LineInterleaved
	})
	done := 0
	for col := 0; col < 4; col++ {
		c.Read(addrAt(c, Loc{Row: 5, Col: col}), core.Untagged(func(int64) { done++ }))
	}
	runUntil(t, c, 0, 200000, func() bool { return done == 4 })
	s := c.Stats()
	if s.RowHitRead != 0 {
		t.Errorf("restricted close-page must have 0 row hits, got %d", s.RowHitRead)
	}
	d := c.DeviceStats()
	if d.Activations() != 4 || d.Precharges != 4 {
		t.Errorf("want 4 ACT + 4 PRE, got %d/%d", d.Activations(), d.Precharges)
	}
}

func TestFGAReadSlower(t *testing.T) {
	t.Parallel()
	latency := func(s Scheme) int64 {
		c := newCtl(t, func(cfg *Config) { cfg.Scheme = s })
		var doneAt int64 = -1
		c.Read(0x4000, core.Untagged(func(at int64) { doneAt = at }))
		runUntil(t, c, 0, 10000, func() bool { return doneAt >= 0 })
		return doneAt
	}
	base, fga := latency(Baseline), latency(FGA)
	// FGA needs 8 extra data-bus cycles per 64B (16 bursts): 4 memory
	// cycles = 16 CPU cycles more.
	if fga != base+16 {
		t.Errorf("FGA latency %d, baseline %d; want +16 CPU cycles", fga, base)
	}
}

func TestRefreshOccursWhenIdle(t *testing.T) {
	t.Parallel()
	c := newCtl(t, nil)
	for cpu := int64(0); cpu < 4*8000; cpu++ { // > tREFI memory cycles
		c.Tick(cpu)
	}
	if got := c.DeviceStats().Refreshes; got < 2 {
		t.Errorf("refreshes = %d, want >= 2 (both channels)", got)
	}
}

func TestPowerDownWhenIdle(t *testing.T) {
	t.Parallel()
	c := newCtl(t, nil)
	for cpu := int64(0); cpu < 4000; cpu++ {
		c.Tick(cpu)
	}
	if got := c.DeviceStats().PowerDownCycles; got == 0 {
		t.Error("idle ranks must power down")
	}
}

func TestHalfDRAMUsesLessActEnergy(t *testing.T) {
	t.Parallel()
	energyFor := func(s Scheme) float64 {
		c := newCtl(t, func(cfg *Config) { cfg.Scheme = s })
		done := false
		c.Read(0x8000, core.Untagged(func(int64) { done = true }))
		runUntil(t, c, 0, 10000, func() bool { return done })
		return c.Energy()[power.CompActPre]
	}
	if hd, base := energyFor(HalfDRAM), energyFor(Baseline); hd >= base {
		t.Errorf("Half-DRAM ACT energy %v must be below baseline %v", hd, base)
	}
}

func TestPRAWriteIOEnergyScales(t *testing.T) {
	t.Parallel()
	energyFor := func(s Scheme) float64 {
		c := newCtl(t, func(cfg *Config) { cfg.Scheme = s })
		c.Write(addrAt(c, Loc{Row: 2}), core.StoreBytes(0, 8))
		runUntil(t, c, 0, 100000, func() bool { return c.Stats().WritesServed == 1 })
		b := c.Energy()
		return b[power.CompWrODT] + b[power.CompWrTerm]
	}
	pra, base := energyFor(PRA), energyFor(Baseline)
	if pra >= base/4 {
		t.Errorf("PRA 1-word write I/O energy %v should be ~1/8 of baseline %v", pra, base)
	}
}

func TestPendingReflectsQueues(t *testing.T) {
	t.Parallel()
	c := newCtl(t, nil)
	if c.Pending() {
		t.Error("fresh controller must be idle")
	}
	done := false
	c.Read(0x100, core.Untagged(func(int64) { done = true }))
	if !c.Pending() {
		t.Error("queued read must report pending")
	}
	runUntil(t, c, 0, 10000, func() bool { return done })
	if c.Pending() {
		t.Error("drained controller must be idle")
	}
}

func TestChannelsSplitTraffic(t *testing.T) {
	t.Parallel()
	c := newCtl(t, nil)
	served := 0
	for i := 0; i < 16; i++ {
		c.Read(uint64(i)*64, core.Untagged(func(int64) { served++ }))
	}
	runUntil(t, c, 0, 100000, func() bool { return served == 16 })
	// Row-interleaved: even lines channel 0, odd lines channel 1. Both
	// channels must have served reads.
	for i, cc := range c.chans {
		if cc.ch.Stats.Reads == 0 {
			t.Errorf("channel %d served no reads", i)
		}
	}
}

package memctrl

import (
	"testing"

	"pradram/internal/core"
	"pradram/internal/power"
)

func TestSDSChipMaskForFullWordStore(t *testing.T) {
	t.Parallel()
	// One fully dirty 8-byte word touches every byte position: SDS must
	// access all 8 chips (full activation), while PRA would open 1 MAT
	// group — the Section 3 asymmetry.
	c := newCtl(t, func(cfg *Config) { cfg.Scheme = SDS })
	c.Write(addrAt(c, Loc{Row: 3}), core.StoreBytes(0, 8))
	runUntil(t, c, 0, 100000, func() bool { return c.Stats().WritesServed == 1 })
	d := c.DeviceStats()
	if d.ActsByGranularity[8] != 1 {
		t.Errorf("SDS full-word write must access all chips, got %v", d.ActsByGranularity)
	}
	if d.WordsWritten != 8 {
		t.Errorf("SDS full-word write transfers on all chips, got %d/8", d.WordsWritten)
	}
}

func TestSDSSkipsCleanChips(t *testing.T) {
	t.Parallel()
	// A 2-byte store dirties byte positions 0 and 1 only: SDS accesses 2
	// chips; activation energy scales linearly (2/8 of full).
	c := newCtl(t, func(cfg *Config) { cfg.Scheme = SDS })
	c.Write(addrAt(c, Loc{Row: 3}), core.StoreBytes(0, 2))
	runUntil(t, c, 0, 100000, func() bool { return c.Stats().WritesServed == 1 })
	d := c.DeviceStats()
	if d.ActsByGranularity[2] != 1 {
		t.Errorf("SDS 2-byte write must access 2 chips, got %v", d.ActsByGranularity)
	}
	e := c.Energy()[power.CompActPre]
	// Linear scale: exactly 2/8 of the full activation energy.
	base := newCtl(t, nil)
	base.Write(addrAt(base, Loc{Row: 3}), core.StoreBytes(0, 2))
	runUntil(t, base, 0, 100000, func() bool { return base.Stats().WritesServed == 1 })
	full := base.Energy()[power.CompActPre]
	if ratio := e / full; ratio < 0.24 || ratio > 0.26 {
		t.Errorf("SDS ACT energy ratio = %.3f, want 0.25 (linear per-chip)", ratio)
	}
}

func TestSDSVsPRACoverage(t *testing.T) {
	t.Parallel()
	// The same dirty pattern — two full words — yields 2/8 under PRA
	// (two MAT groups) but 8/8 under SDS (every byte position dirty).
	pattern := core.StoreBytes(0, 8) | core.StoreBytes(24, 8)
	run := func(s Scheme) [9]int64 {
		c := newCtl(t, func(cfg *Config) { cfg.Scheme = s })
		c.Write(addrAt(c, Loc{Row: 5}), pattern)
		runUntil(t, c, 0, 100000, func() bool { return c.Stats().WritesServed == 1 })
		return c.DeviceStats().ActsByGranularity
	}
	pra, sds := run(PRA), run(SDS)
	if pra[2] != 1 {
		t.Errorf("PRA: want 2/8 activation, got %v", pra)
	}
	if sds[8] != 1 {
		t.Errorf("SDS: want 8/8 chip access, got %v", sds)
	}
}

func TestSDSNoExtraMaskCycle(t *testing.T) {
	t.Parallel()
	// SDS delivers its mask via DM pins: the column command is not
	// delayed, so a partial SDS write completes no later than a PRA one.
	finish := func(s Scheme) int64 {
		c := newCtl(t, func(cfg *Config) { cfg.Scheme = s })
		c.Write(addrAt(c, Loc{Row: 3}), core.StoreBytes(0, 2))
		return runUntil(t, c, 0, 100000, func() bool { return c.Stats().WritesServed == 1 })
	}
	if sds, pra := finish(SDS), finish(PRA); sds > pra {
		t.Errorf("SDS write at %d must not be slower than PRA at %d", sds, pra)
	}
}

func TestSDSParsesAndLists(t *testing.T) {
	t.Parallel()
	s, err := ParseScheme("sds")
	if err != nil || s != SDS {
		t.Fatalf("ParseScheme(sds) = %v, %v", s, err)
	}
	found := false
	for _, sc := range Schemes() {
		if sc == SDS {
			found = true
		}
	}
	if !found {
		t.Error("SDS missing from Schemes()")
	}
	if !SDS.praWrites() || !SDS.chipMasks() || SDS.halfDRAMOrg() {
		t.Error("SDS scheme property flags wrong")
	}
}

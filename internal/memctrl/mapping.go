// Package memctrl implements the paper's memory controller (Section 5.1.2):
// FR-FCFS scheduling with separate 64-entry read/write queues per channel
// (48/16 write-drain watermarks), read-over-write priority, a four-access
// cap on open-row reuse, row- and line-interleaved address mappings, the
// relaxed and restricted close-page policies with precharge power-down, and
// the row-activation schemes under study: conventional full-row activation
// (baseline), fine-grained activation (FGA), Half-DRAM, PRA, and the
// Half-DRAM + PRA combination. PRA-specific behaviour — partial write
// activations from FGD masks, OR-merging of queued same-row write masks,
// false-row-buffer-hit handling, and dirty-word-only write bursts — lives
// here, layered on the timing model in internal/dram.
package memctrl

import (
	"fmt"
	"math/bits"

	"pradram/internal/dram"
)

// Mapping selects the physical-address interleaving.
type Mapping int

const (
	// RowInterleaved places consecutive cache lines in the same row
	// (channel bits lowest, then column, bank, rank, row) — the paper's
	// mapping for the relaxed close-page policy.
	RowInterleaved Mapping = iota
	// LineInterleaved stripes consecutive lines across banks and ranks
	// (channel, bank, rank, column, row) — the paper's mapping for the
	// restricted close-page policy, maximizing parallelism.
	LineInterleaved
)

// String returns the mapping's canonical name.
func (m Mapping) String() string {
	if m == RowInterleaved {
		return "row-interleaved"
	}
	return "line-interleaved"
}

// Loc is a fully decomposed line address.
type Loc struct {
	Channel int
	Rank    int
	Bank    int
	Row     int
	Col     int // line-within-row index
}

// AddressMapper decomposes physical addresses for a given organization.
type AddressMapper struct {
	mapping  Mapping
	channels int
	geom     dram.Geometry

	chBits, colBits, bankBits, rankBits, rowBits uint
}

// NewAddressMapper validates that every field is a power of two and builds
// the mapper.
func NewAddressMapper(m Mapping, channels int, g dram.Geometry) (*AddressMapper, error) {
	fields := []struct {
		name string
		v    int
	}{
		{"channels", channels}, {"ranks", g.Ranks}, {"banks", g.Banks},
		{"rows", g.Rows}, {"lines per row", g.LinesPerRow},
	}
	for _, f := range fields {
		if f.v <= 0 || f.v&(f.v-1) != 0 {
			return nil, fmt.Errorf("memctrl: %s must be a positive power of two, got %d", f.name, f.v)
		}
	}
	return &AddressMapper{
		mapping:  m,
		channels: channels,
		geom:     g,
		chBits:   uint(bits.TrailingZeros(uint(channels))),
		colBits:  uint(bits.TrailingZeros(uint(g.LinesPerRow))),
		bankBits: uint(bits.TrailingZeros(uint(g.Banks))),
		rankBits: uint(bits.TrailingZeros(uint(g.Ranks))),
		rowBits:  uint(bits.TrailingZeros(uint(g.Rows))),
	}, nil
}

// Decompose splits a byte address into its DRAM coordinates. Addresses
// beyond the installed capacity wrap in the row field.
func (am *AddressMapper) Decompose(addr uint64) Loc {
	line := addr >> 6
	take := func(bitsN uint) int {
		v := int(line & ((1 << bitsN) - 1))
		line >>= bitsN
		return v
	}
	var l Loc
	switch am.mapping {
	case RowInterleaved:
		l.Channel = take(am.chBits)
		l.Col = take(am.colBits)
		l.Bank = take(am.bankBits)
		l.Rank = take(am.rankBits)
		l.Row = take(am.rowBits)
	default: // LineInterleaved
		l.Channel = take(am.chBits)
		l.Bank = take(am.bankBits)
		l.Rank = take(am.rankBits)
		l.Col = take(am.colBits)
		l.Row = take(am.rowBits)
	}
	return l
}

// Compose is the inverse of Decompose (for addresses within capacity).
func (am *AddressMapper) Compose(l Loc) uint64 {
	var line uint64
	put := func(v int, bitsN, shift uint) uint {
		line |= uint64(v) << shift
		return shift + bitsN
	}
	var s uint
	switch am.mapping {
	case RowInterleaved:
		s = put(l.Channel, am.chBits, 0)
		s = put(l.Col, am.colBits, s)
		s = put(l.Bank, am.bankBits, s)
		s = put(l.Rank, am.rankBits, s)
		put(l.Row, am.rowBits, s)
	default:
		s = put(l.Channel, am.chBits, 0)
		s = put(l.Bank, am.bankBits, s)
		s = put(l.Rank, am.rankBits, s)
		s = put(l.Col, am.colBits, s)
		put(l.Row, am.rowBits, s)
	}
	return line << 6
}

// RowKey returns a value identifying the DRAM row a line maps to; two
// addresses share a key iff they live in the same (channel, rank, bank,
// row). Used for same-row merging and the DBI.
func (am *AddressMapper) RowKey(addr uint64) uint64 {
	return am.RowKeyOf(am.Decompose(addr))
}

// RowKeyOf packs already-decomposed coordinates into a row key.
func (am *AddressMapper) RowKeyOf(l Loc) uint64 {
	return ((uint64(l.Row)<<am.bankBits|uint64(l.Bank))<<am.rankBits|uint64(l.Rank))<<am.chBits | uint64(l.Channel)
}

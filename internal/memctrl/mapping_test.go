package memctrl

import (
	"testing"
	"testing/quick"

	"pradram/internal/dram"
)

func TestMapperValidation(t *testing.T) {
	t.Parallel()
	g := dram.DefaultGeometry()
	if _, err := NewAddressMapper(RowInterleaved, 3, g); err == nil {
		t.Error("non-power-of-two channels must fail")
	}
	bad := g
	bad.Banks = 6
	if _, err := NewAddressMapper(RowInterleaved, 2, bad); err == nil {
		t.Error("non-power-of-two banks must fail")
	}
	if _, err := NewAddressMapper(RowInterleaved, 2, g); err != nil {
		t.Errorf("default geometry must map: %v", err)
	}
}

func TestDecomposeComposeRoundTrip(t *testing.T) {
	t.Parallel()
	g := dram.DefaultGeometry()
	for _, m := range []Mapping{RowInterleaved, LineInterleaved} {
		am, err := NewAddressMapper(m, 2, g)
		if err != nil {
			t.Fatal(err)
		}
		f := func(raw uint64) bool {
			addr := (raw % (8 << 30)) &^ 63 // line-aligned, within 8GB
			l := am.Decompose(addr)
			if l.Channel >= 2 || l.Rank >= g.Ranks || l.Bank >= g.Banks ||
				l.Row >= g.Rows || l.Col >= g.LinesPerRow {
				return false
			}
			return am.Compose(l) == addr
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", m, err)
		}
	}
}

func TestRowInterleavedLocality(t *testing.T) {
	t.Parallel()
	am, _ := NewAddressMapper(RowInterleaved, 2, dram.DefaultGeometry())
	// Consecutive lines on the same channel share a row until the column
	// bits roll over: lines 0 and 2 (both channel 0).
	a, b := am.Decompose(0), am.Decompose(128)
	if a.Channel != 0 || b.Channel != 0 {
		t.Fatal("lines 0 and 2 should be channel 0")
	}
	if a.Row != b.Row || a.Bank != b.Bank || a.Rank != b.Rank {
		t.Error("row-interleaved consecutive lines must share a row")
	}
	if a.Col == b.Col {
		t.Error("columns must differ")
	}
	if am.RowKey(0) != am.RowKey(128) {
		t.Error("row keys must match for same row")
	}
	// 128 lines per row per channel: line 128 on channel 0 starts a new bank.
	c := am.Decompose(uint64(128) * 128)
	if c.Bank == a.Bank && c.Row == a.Row && c.Rank == a.Rank {
		t.Error("after a full row, the bank must advance")
	}
}

func TestLineInterleavedParallelism(t *testing.T) {
	t.Parallel()
	am, _ := NewAddressMapper(LineInterleaved, 2, dram.DefaultGeometry())
	a, b := am.Decompose(0), am.Decompose(128) // consecutive channel-0 lines
	if a.Bank == b.Bank {
		t.Error("line-interleaved consecutive lines must hit different banks")
	}
}

func TestRowKeyDistinguishesCoordinates(t *testing.T) {
	t.Parallel()
	am, _ := NewAddressMapper(RowInterleaved, 2, dram.DefaultGeometry())
	base := am.Compose(Loc{Channel: 0, Rank: 0, Bank: 0, Row: 10, Col: 0})
	cases := []Loc{
		{Channel: 1, Rank: 0, Bank: 0, Row: 10, Col: 0},
		{Channel: 0, Rank: 1, Bank: 0, Row: 10, Col: 0},
		{Channel: 0, Rank: 0, Bank: 1, Row: 10, Col: 0},
		{Channel: 0, Rank: 0, Bank: 0, Row: 11, Col: 0},
	}
	for _, l := range cases {
		if am.RowKey(am.Compose(l)) == am.RowKey(base) {
			t.Errorf("row key collision with %+v", l)
		}
	}
	same := am.Compose(Loc{Channel: 0, Rank: 0, Bank: 0, Row: 10, Col: 99})
	if am.RowKey(same) != am.RowKey(base) {
		t.Error("same row, different column must share a key")
	}
}

func TestSchemePolicyParsing(t *testing.T) {
	t.Parallel()
	for _, s := range Schemes() {
		got, err := ParseScheme(s.String())
		if err != nil || got != s {
			t.Errorf("ParseScheme(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseScheme("nosuch"); err == nil {
		t.Error("unknown scheme must error")
	}
	for _, name := range []string{"relaxed", "restricted", "relaxed-close", "restricted-close"} {
		if _, err := ParsePolicy(name); err != nil {
			t.Errorf("ParsePolicy(%q): %v", name, err)
		}
	}
	if _, err := ParsePolicy("nosuch"); err == nil {
		t.Error("unknown policy must error")
	}
	if Scheme(99).String() == "" {
		t.Error("unknown scheme string must be non-empty")
	}
}

func TestSchemeProperties(t *testing.T) {
	t.Parallel()
	if !FGA.halfDRAMOrg() || !HalfDRAM.halfDRAMOrg() || !HalfDRAMPRA.halfDRAMOrg() {
		t.Error("FGA/HalfDRAM/HalfDRAMPRA use the half organization")
	}
	if Baseline.halfDRAMOrg() || PRA.halfDRAMOrg() {
		t.Error("baseline and PRA use the plain organization")
	}
	if !PRA.praWrites() || !HalfDRAMPRA.praWrites() || Baseline.praWrites() || HalfDRAM.praWrites() {
		t.Error("praWrites flags wrong")
	}
	if FGA.burstCycles(4) != 8 || PRA.burstCycles(4) != 4 {
		t.Error("burst cycles wrong")
	}
}

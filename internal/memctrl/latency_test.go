package memctrl

import (
	"reflect"
	"testing"

	"pradram/internal/core"
	"pradram/internal/dram"
	"pradram/internal/stats"
)

func TestLatComponentNames(t *testing.T) {
	t.Parallel()
	want := []string{"queue", "bank", "timing", "refresh", "pd", "alert", "xfer"}
	for c := LatComponent(0); c < NumLatComponents; c++ {
		if c.String() != want[c] {
			t.Errorf("component %d = %q, want %q", c, c.String(), want[c])
		}
	}
	if NumLatComponents.String() != "unknown" {
		t.Error("out-of-range component must stringify as unknown")
	}
}

// TestSweepWaitPartition pins the deadline-sweep convention on synthetic
// terms: ascending clamped deadlines each own the stretch back to the
// previous one, terms at or before the mark vanish, and completion turns
// the unexplained remainder into queue time so the breakdown sums exactly.
func TestSweepWaitPartition(t *testing.T) {
	t.Parallel()
	cfg := DefaultConfig()
	cfg.LatBreak = true
	cc := &chanCtl{cfg: &cfg}
	cc.latHistBank = make([]stats.LogHist, cfg.Geom.Ranks*cfg.Geom.Banks)

	req := &request{kind: core.Read, arrive: 10, mark: 10}
	var terms dram.LatTerms
	terms[dram.TermBank] = 30
	terms[dram.TermTiming] = 20
	terms[dram.TermRefresh] = 5 // released before the mark: contributes nothing
	cc.sweepWait(req, 40, &terms)
	if req.mark != 40 {
		t.Fatalf("mark = %d, want 40", req.mark)
	}
	var want LatBreakdown
	want[LatTiming] = 10 // [10, 20)
	want[LatBank] = 10   // [20, 30)
	if req.brk != want {
		t.Fatalf("sweep breakdown = %v, want %v", req.brk, want)
	}

	// Column issued at 40, data done at 47: 7 cycles transfer, the
	// unblamed [30, 40) becomes queue, and the total is conserved.
	cc.completeLat(req, 40, 47)
	if req.brk[LatXfer] != 7 || req.brk[LatQueue] != 10 {
		t.Fatalf("completion breakdown = %v, want xfer 7 queue 10", req.brk)
	}
	if req.brk.Sum() != 47-10 {
		t.Fatalf("breakdown sum %d != latency %d", req.brk.Sum(), 47-10)
	}
	if cc.stats.ReadLatBreak != req.brk || cc.stats.ReadLatHist.N != 1 {
		t.Fatalf("channel aggregates not updated: %v N=%d", cc.stats.ReadLatBreak, cc.stats.ReadLatHist.N)
	}
	if got := cc.latHistBank[0].N; got != 1 {
		t.Fatalf("per-bank histogram N = %d, want 1", got)
	}
}

// TestSweepWaitAlertClamp pins that an alert deadline beyond the issue
// cycle (defensive — the schedule gate makes it unreachable) clamps to it,
// and that sweepWait with LatBreak off still advances the mark.
func TestSweepWaitAlertClamp(t *testing.T) {
	t.Parallel()
	cfg := DefaultConfig()
	cfg.LatBreak = true
	cc := &chanCtl{cfg: &cfg, alertUntil: 100}
	req := &request{arrive: 0, mark: 0}
	var terms dram.LatTerms
	cc.sweepWait(req, 40, &terms)
	if req.brk[LatAlert] != 40 || req.brk.Sum() != 40 {
		t.Fatalf("breakdown = %v, want 40 cycles of alert", req.brk)
	}

	cfg2 := DefaultConfig()
	off := &chanCtl{cfg: &cfg2}
	req2 := &request{arrive: 0, mark: 0}
	off.sweepWait(req2, 40, &terms)
	if req2.mark != 40 || req2.brk != (LatBreakdown{}) {
		t.Fatalf("LatBreak off: mark %d brk %v, want 40 and zeros", req2.mark, req2.brk)
	}
}

// TestSpanRingWraps drives the sampler past the ring capacity and checks
// the oldest spans are overwritten in order.
func TestSpanRingWraps(t *testing.T) {
	t.Parallel()
	cfg := DefaultConfig()
	cfg.LatBreak = true
	cfg.LatSpanEvery = 1
	cc := &chanCtl{cfg: &cfg}
	req := &request{kind: core.Read}
	for i := 0; i < latSpanCap+10; i++ {
		req.arrive = int64(i)
		cc.recordSpan(req, int64(i)+5)
	}
	if len(cc.spans) != latSpanCap || cc.spanHead != 10 {
		t.Fatalf("ring len %d head %d, want %d/10", len(cc.spans), cc.spanHead, latSpanCap)
	}
	if cc.spans[cc.spanHead].Arrive != 10 {
		t.Fatalf("oldest surviving span arrives at %d, want 10", cc.spans[cc.spanHead].Arrive)
	}
}

// latTraffic drives a mixed read/write pattern with row hits, bank
// conflicts, write forwarding, and cross-rank traffic, returning the
// completion cycles in arrival order.
func latTraffic(t *testing.T, c *Controller) []int64 {
	t.Helper()
	var doneAt []int64
	served := 0
	enq := func(i int) {
		l := Loc{Rank: i % 2, Bank: i % 8, Row: (i * 7) % 64, Col: i % 4}
		slot := len(doneAt)
		doneAt = append(doneAt, -1)
		if !c.Read(addrAt(c, l), core.Untagged(func(at int64) { doneAt[slot] = at; served++ })) {
			t.Fatal("read rejected")
		}
		c.Write(addrAt(c, Loc{Rank: (i + 1) % 2, Bank: i % 8, Row: i % 16}), core.StoreBytes((i%8)*8, 8))
		if i%9 == 0 { // forwarding: read of a just-written line
			slot := len(doneAt)
			doneAt = append(doneAt, -1)
			c.Read(addrAt(c, Loc{Rank: (i + 1) % 2, Bank: i % 8, Row: i % 16}), core.Untagged(func(at int64) { doneAt[slot] = at; served++ }))
		}
	}
	next := 0
	for cpu := int64(0); cpu < 300000; cpu++ {
		if cpu%512 == 0 && next < 96 {
			enq(next)
			next++
		}
		c.Tick(cpu)
	}
	for cpu := int64(300000); served < len(doneAt); cpu++ {
		c.Tick(cpu)
		if cpu > 600000 {
			t.Fatal("traffic did not drain")
		}
	}
	return doneAt
}

// TestLatConservation runs mixed traffic spanning refresh windows with
// mitigation armed and asserts the hard invariant: the per-component
// breakdowns sum exactly to the latency sums, and the histograms saw every
// served request.
func TestLatConservation(t *testing.T) {
	t.Parallel()
	c := newCtl(t, func(cfg *Config) {
		cfg.LatBreak = true
		cfg.LatSpanEvery = 3
		cfg.MitThreshold = 3
	})
	latTraffic(t, c)
	s := c.Stats()
	if s.ReadLatBreak.Sum() != s.ReadLatencySum {
		t.Errorf("read conservation: breakdown %v sums %d, latency sum %d",
			s.ReadLatBreak, s.ReadLatBreak.Sum(), s.ReadLatencySum)
	}
	if s.WriteLatBreak.Sum() != s.WriteLatencySum {
		t.Errorf("write conservation: breakdown %v sums %d, latency sum %d",
			s.WriteLatBreak, s.WriteLatBreak.Sum(), s.WriteLatencySum)
	}
	for comp := LatComponent(0); comp < NumLatComponents; comp++ {
		if s.ReadLatBreak[comp] < 0 || s.WriteLatBreak[comp] < 0 {
			t.Errorf("negative %v component: read %d write %d", comp, s.ReadLatBreak[comp], s.WriteLatBreak[comp])
		}
	}
	if s.ReadLatHist.N != s.ReadsServed || s.WriteLatHist.N != s.WritesServed {
		t.Errorf("histogram N = %d/%d, served %d/%d", s.ReadLatHist.N, s.WriteLatHist.N, s.ReadsServed, s.WritesServed)
	}
	var bankN int64
	for ch := 0; ch < c.cfg.Channels; ch++ {
		for r := 0; r < c.cfg.Geom.Ranks; r++ {
			for b := 0; b < c.cfg.Geom.Banks; b++ {
				bankN += c.BankReadLatHist(ch, r, b).N
			}
		}
	}
	if bankN != s.ReadsServed {
		t.Errorf("per-bank histograms cover %d reads, served %d", bankN, s.ReadsServed)
	}
	if s.ReadLatBreak[LatXfer] == 0 || s.ReadLatBreak[LatBank] == 0 {
		t.Errorf("transfer/bank components empty under real traffic: %v", s.ReadLatBreak)
	}
	if s.Alerts == 0 || s.ReadLatBreak[LatAlert]+s.WriteLatBreak[LatAlert] == 0 {
		t.Errorf("mitigation armed (alerts=%d) but no alert time attributed", s.Alerts)
	}
	for _, sp := range c.LatSpans() {
		if sp.Break.Sum() != sp.Done-sp.Arrive {
			t.Errorf("span %+v breakdown does not sum to its latency", sp)
		}
	}
	if len(c.LatSpans()) == 0 {
		t.Error("sampling enabled but no spans recorded")
	}
}

// TestLatBreakOffBitIdentity runs identical traffic with attribution on and
// off: completion cycles and every simulated statistic must match exactly;
// only the attribution fields may differ.
func TestLatBreakOffBitIdentity(t *testing.T) {
	t.Parallel()
	run := func(latBreak bool) ([]int64, Stats, dram.Stats) {
		c := newCtl(t, func(cfg *Config) {
			cfg.LatBreak = latBreak
			if latBreak {
				cfg.LatSpanEvery = 2
			}
			cfg.MitThreshold = 3
		})
		doneAt := latTraffic(t, c)
		return doneAt, c.Stats(), c.DeviceStats()
	}
	doneOn, sOn, dOn := run(true)
	doneOff, sOff, dOff := run(false)
	if !reflect.DeepEqual(doneOn, doneOff) {
		t.Fatal("completion cycles differ between LatBreak on and off")
	}
	if dOn != dOff {
		t.Fatalf("device stats differ:\non  %+v\noff %+v", dOn, dOff)
	}
	// Zero the attribution-only fields on the enabled run; everything else
	// must be bit-identical.
	sOn.ReadLatBreak = LatBreakdown{}
	sOn.WriteLatBreak = LatBreakdown{}
	sOn.ReadLatHist = stats.LogHist{}
	sOn.WriteLatHist = stats.LogHist{}
	if sOn != sOff {
		t.Fatalf("controller stats differ beyond attribution fields:\non  %+v\noff %+v", sOn, sOff)
	}
}

// TestLatAttributionPowerDown wakes an idle (powered-down) controller with
// a read and checks the exit latency lands in the PD component.
func TestLatAttributionPowerDown(t *testing.T) {
	t.Parallel()
	c := newCtl(t, func(cfg *Config) { cfg.LatBreak = true })
	for cpu := int64(0); cpu < 8000; cpu++ { // idle long enough to power down
		c.Tick(cpu)
	}
	if c.DeviceStats().PowerDownCycles == 0 {
		t.Fatal("precondition: ranks did not power down")
	}
	done := false
	c.Read(0x1000, core.Untagged(func(int64) { done = true }))
	for cpu := int64(8000); !done; cpu++ {
		c.Tick(cpu)
		if cpu > 30000 {
			t.Fatal("read did not complete")
		}
	}
	if got := c.Stats().ReadLatBreak[LatPD]; got == 0 {
		t.Errorf("power-down exit not attributed: %v", c.Stats().ReadLatBreak)
	}
}

// TestLatAttributionRefresh enqueues a read the cycle a refresh begins and
// checks the tRFC block lands in the refresh component.
func TestLatAttributionRefresh(t *testing.T) {
	t.Parallel()
	c := newCtl(t, func(cfg *Config) {
		cfg.LatBreak = true
		cfg.Channels = 1
	})
	cpu := int64(0)
	for c.DeviceStats().Refreshes == 0 {
		c.Tick(cpu)
		cpu++
		if cpu > 100000 {
			t.Fatal("no refresh issued while idle")
		}
	}
	done := false
	c.Read(0x1000, core.Untagged(func(int64) { done = true }))
	for ; !done; cpu++ {
		c.Tick(cpu)
		if cpu > 200000 {
			t.Fatal("read did not complete")
		}
	}
	if got := c.Stats().ReadLatBreak[LatRefresh]; got == 0 {
		t.Errorf("refresh block not attributed: %v", c.Stats().ReadLatBreak)
	}
}

package memctrl

import (
	"fmt"

	"pradram/internal/core"
	"pradram/internal/dram"
	"pradram/internal/obs"
	"pradram/internal/pdes"
	"pradram/internal/power"
	"pradram/internal/stats"
)

// Config assembles a full memory system: scheme, policy, mapping, and the
// per-channel organization.
type Config struct {
	Scheme  Scheme
	Policy  Policy
	Mapping Mapping

	Channels int
	Geom     dram.Geometry
	Timing   dram.Timing

	ReadQ      int // read queue entries per channel
	WriteQ     int // write queue entries per channel
	HighWM     int // write-drain start watermark
	LowWM      int // write-drain stop watermark
	MaxRowHits int // open-row access cap (fairness, Section 5.1.2)

	// CPUPerMem is the CPU-to-memory clock ratio (4 for 3.2GHz over
	// DDR3-1600's 800MHz command clock).
	CPUPerMem int64

	// ECC models an x72 DIMM: a ninth chip per rank stores ECC codes with
	// its PRA pin tied high (Section 4.2) — it always fully activates and
	// always transfers, while the eight data chips keep their partial-
	// activation savings. Timing is unchanged; only energy accounting
	// differs.
	ECC bool

	// Power-down management (DESIGN.md §4f). The zero values reproduce the
	// pre-FSM behavior: immediate fast-exit precharge power-down, no active
	// power-down, no self-refresh, conventional all-bank refresh.
	PDPolicy  PDPolicy // when idle ranks drop CKE
	PDTimeout int64    // idle memory cycles before PDTimed/PDQueueAware entry
	// SRTimeout escalates a rank to self-refresh after this many idle
	// memory cycles (0 = never). Independent of PDPolicy: a rank already
	// in precharge power-down is woken (paying the exit latency) so the
	// self-refresh entry command can issue.
	SRTimeout int64
	// PDSlowExit selects slow-exit (DLL-off) precharge power-down: lower
	// background power, tXPDLL instead of tXP on exit.
	PDSlowExit bool
	// APD allows active power-down for idle ranks with open rows (only
	// reachable under the open-page policy, which keeps rows open with no
	// queued beneficiary).
	APD bool
	// RefreshMode selects all-bank, per-bank, or elastic (postpone and
	// pull-in within the JEDEC 8x tREFI window) refresh management.
	RefreshMode RefreshMode

	// RowHammer mitigation (DESIGN.md §4g): PRAC-style per-row activation
	// counting with Alert/RFM back-off, orthogonal to Scheme (any scheme
	// can run with or without it). MitThreshold == 0 disables everything:
	// no counter table is allocated and results are bit-identical to a
	// build without the feature.
	//
	// When a row's activation count since its bank's last refresh reaches
	// MitThreshold, the device raises an alert: the channel's command
	// stream stalls for MitAlertCycles (the ALERT_n back-off real PRAC
	// devices enforce), after which the controller issues an RFM command
	// to the offending bank (precharging it first if needed) that
	// refreshes the highest-count row's victims and clears its counter.
	MitThreshold int
	// MitAlertCycles is the alert back-off in memory cycles before the
	// RFM may issue (0 selects the default 144 cycles = 180ns, the
	// per-alert overhead measured on real PRAC parts).
	MitAlertCycles int64
	// MitTableCap bounds the per-bank counter table (0 selects the
	// default 512 rows). Overflow falls back to a Misra-Gries spill floor
	// that may overcount but never undercounts a row (dram/rowcounter.go).
	MitTableCap int

	// Latency attribution (DESIGN.md §4h). LatBreak enables the
	// per-request latency breakdown, the percentile histograms, and span
	// sampling. Attribution is purely observational: with LatBreak off the
	// per-request cost is one int64 assignment and simulated results are
	// bit-identical to a controller without the feature.
	LatBreak bool
	// LatSpanEvery samples every Nth completed request into the span ring
	// for trace export (0 disables sampling; only meaningful with
	// LatBreak).
	LatSpanEvery int

	// Ablation knobs (all default off = full PRA as published). They
	// isolate the contribution of each PRA design element:
	//   NoTimingRelax  — partial ACTs charge full tRRD/tFAW weight.
	//   NoPartialIO    — writes drive all 8 words even under PRA masks.
	//   NoMaskCycle    — the PRA mask transfer costs no extra cycle.
	NoTimingRelax bool
	NoPartialIO   bool
	NoMaskCycle   bool
}

// DefaultConfig returns the paper's Table 3 memory system.
func DefaultConfig() Config {
	return Config{
		Scheme:   Baseline,
		Policy:   RelaxedClose,
		Mapping:  RowInterleaved,
		Channels: 2,
		Geom:     dram.DefaultGeometry(),
		Timing:   dram.DefaultTiming(),
		ReadQ:    64, WriteQ: 64, HighWM: 48, LowWM: 16,
		MaxRowHits: 4,
		CPUPerMem:  4,
	}
}

// Validate reports the first configuration inconsistency.
func (c Config) Validate() error {
	switch {
	case c.Channels <= 0 || c.Channels&(c.Channels-1) != 0:
		return fmt.Errorf("memctrl: channels must be a positive power of two, got %d", c.Channels)
	case c.ReadQ <= 0 || c.WriteQ <= 0:
		return fmt.Errorf("memctrl: queue sizes must be positive")
	case c.HighWM <= c.LowWM || c.HighWM > c.WriteQ:
		return fmt.Errorf("memctrl: watermarks must satisfy low < high <= writeQ")
	case c.MaxRowHits <= 0:
		return fmt.Errorf("memctrl: MaxRowHits must be positive")
	case c.CPUPerMem <= 0:
		return fmt.Errorf("memctrl: CPUPerMem must be positive")
	case c.Geom.Ranks*c.Geom.Banks > 64:
		return fmt.Errorf("memctrl: at most 64 banks per channel supported (have %d)", c.Geom.Ranks*c.Geom.Banks)
	}
	switch {
	case c.PDPolicy > PDQueueAware:
		return fmt.Errorf("memctrl: unknown power-down policy %d", c.PDPolicy)
	case c.RefreshMode > RefreshElastic:
		return fmt.Errorf("memctrl: unknown refresh mode %d", c.RefreshMode)
	case c.PDTimeout < 0 || c.SRTimeout < 0:
		return fmt.Errorf("memctrl: power-down timeouts must be non-negative")
	case (c.PDPolicy == PDTimed || c.PDPolicy == PDQueueAware) && c.PDTimeout == 0:
		return fmt.Errorf("memctrl: %v power-down policy requires PDTimeout > 0", c.PDPolicy)
	case c.MitThreshold < 0 || c.MitAlertCycles < 0 || c.MitTableCap < 0:
		return fmt.Errorf("memctrl: mitigation parameters must be non-negative")
	case c.LatSpanEvery < 0:
		return fmt.Errorf("memctrl: LatSpanEvery must be non-negative")
	}
	if err := c.Timing.Validate(); err != nil {
		return err
	}
	return c.Geom.Validate()
}

// Stats aggregates controller-level counters (per channel, summed by the
// Controller accessor).
type Stats struct {
	ReadsServed, WritesServed   int64
	RowHitRead, RowHitWrite     int64
	FalseHitRead, FalseHitWrite int64
	Forwarded                   int64
	ReadRejects, WriteRejects   int64
	ReadLatencySum              int64 // memory cycles, arrival to data
	WriteLatencySum             int64 // memory cycles, arrival to end of data phase
	ActsForReads, ActsForWrites int64
	// ReadLatBreak/WriteLatBreak decompose the latency sums per component
	// and ReadLatHist/WriteLatHist are the log2 latency histograms behind
	// the reported percentiles. All four are populated only under
	// Config.LatBreak; the conservation invariant ReadLatBreak.Sum() ==
	// ReadLatencySum (and the write-side twin) holds whenever LatBreak was
	// on for the whole measured interval (latency.go).
	ReadLatBreak  LatBreakdown
	WriteLatBreak LatBreakdown
	ReadLatHist   stats.LogHist
	WriteLatHist  stats.LogHist
	// Alerts counts mitigation alerts (threshold crossings) and
	// AlertStallCycles the memory cycles the command stream spent in
	// alert back-off (MitAlertCycles per alert, by construction).
	Alerts           int64
	AlertStallCycles int64
}

// Add accumulates other into s.
func (s *Stats) Add(o Stats) {
	s.ReadsServed += o.ReadsServed
	s.WritesServed += o.WritesServed
	s.RowHitRead += o.RowHitRead
	s.RowHitWrite += o.RowHitWrite
	s.FalseHitRead += o.FalseHitRead
	s.FalseHitWrite += o.FalseHitWrite
	s.Forwarded += o.Forwarded
	s.ReadRejects += o.ReadRejects
	s.WriteRejects += o.WriteRejects
	s.ReadLatencySum += o.ReadLatencySum
	s.WriteLatencySum += o.WriteLatencySum
	s.ActsForReads += o.ActsForReads
	s.ActsForWrites += o.ActsForWrites
	s.Alerts += o.Alerts
	s.AlertStallCycles += o.AlertStallCycles
	s.ReadLatBreak.Accum(&o.ReadLatBreak)
	s.WriteLatBreak.Accum(&o.WriteLatBreak)
	s.ReadLatHist.Merge(&o.ReadLatHist)
	s.WriteLatHist.Merge(&o.WriteLatHist)
}

type request struct {
	kind      core.AccessKind
	loc       Loc
	rowKey    uint64
	byteMask  core.ByteMask // writes: FGD dirty bytes
	wordMask  core.Mask     // cached projection of byteMask (FullMask for reads)
	arrive    int64         // memory cycle
	done      core.Done     // reads: completion, invoked with the CPU cycle
	activated bool          // an ACT was issued on this request's behalf
	falseHit  bool
	// mark is the attribution frontier (latency.go): all waiting before it
	// has been blamed, so each command sweep covers [mark, issue). It
	// advances whether or not LatBreak is on — the assignment is free, and
	// keeping it live means checkpoints can always carry it, making
	// LatBreak safely excludable from the warmup fingerprint. brk is the
	// blame accumulated so far (LatBreak only).
	mark     int64
	brk      LatBreakdown
	nextFree *request // freelist link while recycled
}

// need returns the PRA word mask this request requires open.
func (r *request) need() core.Mask { return r.wordMask }

type chanCtl struct {
	cfg *Config
	ch  *dram.Channel
	acc *power.Accumulator
	am  *AddressMapper
	idx int // channel index

	readQ, writeQ []*request
	drain         bool
	hitCount      [][]int
	refPending    []bool
	forwards      []*request // reads served from the write queue

	// rowCount tracks queued requests per row key and rankCount per rank,
	// so the hot benefit/idle checks avoid scanning the queues. rowCount is
	// a small unordered key/count list rather than a map: the queues hold a
	// handful of distinct rows at a time, and a linear scan over that beats
	// map hashing on the scheduling hot path. No caller iterates it, so its
	// internal order (swap-delete on removal) cannot leak into results.
	rowCount  rowCounts
	rankCount []int

	// lastWork is the last scheduling-pass cycle at which each rank had
	// queued work, the idle clock the timeout-based power-down policies
	// count from. It is updated only inside scheduling passes (after the
	// nextWake early-return), so skip-mode and per-cycle runs observe the
	// identical sequence of values.
	lastWork []int64

	// nextWake is the earliest memory cycle at which scheduling could
	// possibly issue a command; between now and then ticks only accrue
	// background energy. It is re-armed whenever a scheduling pass issues
	// nothing and disarmed (0) on every enqueue or issued command.
	nextWake int64
	wakeMin  int64 // candidate collected during the current pass

	// Alert/RFM mitigation FSM (mitigation.go): while rfmPending, the
	// command stream is stalled until alertUntil, then an RFM issues to
	// bank (rfmRank, rfmBank). Checkpointed (state.go).
	rfmPending       bool
	rfmRank, rfmBank int
	alertUntil       int64

	// ev/scope are the structured event hook (nil/"" when tracing is off);
	// see AttachObs. Emission sites guard with ev.Enabled, which is
	// nil-safe, so the disabled cost is one pointer check.
	ev    *obs.EventLog
	scope string

	// freeReq recycles request structs: a request dies when it is serviced
	// (leaves its queue or the forwards list and its callback returned),
	// so the pool's high-water mark is the queue depth.
	freeReq *request

	// Parallel-in-time support (pdes.go): while deferring, completion
	// callbacks are captured into deferred instead of firing inline, and
	// the master replays them in channel order after the tick barrier.
	// Both stay zero on sequential controllers.
	deferring bool
	deferred  *pdes.Ring

	// Latency attribution (latency.go, LatBreak only): per-bank read
	// latency histograms indexed rank*Banks+bank, and the sampled-span
	// ring. Measurement-scoped like Stats — cleared by ResetStats, never
	// checkpointed (checkpoints are taken right after ResetStats, when all
	// of this is empty in monolithic and restored runs alike).
	latHistBank []stats.LogHist
	spans       []LatSpan
	spanHead    int
	spanSeq     int64

	stats Stats
}

// allocReq returns a zeroed request (fresh allocations are zero by
// construction, recycled ones are zeroed by releaseReq), so enqueue paths
// only assign the fields they use.
func (cc *chanCtl) allocReq() *request {
	r := cc.freeReq
	if r == nil {
		return &request{}
	}
	cc.freeReq = r.nextFree
	r.nextFree = nil
	return r
}

func (cc *chanCtl) releaseReq(r *request) {
	*r = request{nextFree: cc.freeReq}
	cc.freeReq = r
}

// noteReady records a future readiness time observed during a scheduling
// pass, to bound how long the channel may sleep.
func (cc *chanCtl) noteReady(at int64) {
	if at < cc.wakeMin {
		cc.wakeMin = at
	}
}

func (cc *chanCtl) noteAdd(req *request) {
	cc.rowCount.inc(req.rowKey)
	cc.rankCount[req.loc.Rank]++
}

func (cc *chanCtl) noteRemove(req *request) {
	cc.rowCount.dec(req.rowKey)
	cc.rankCount[req.loc.Rank]--
}

// rowCounts is a small key→count multiset over row keys.
type rowCounts []rowKC

type rowKC struct {
	key uint64
	n   int
}

func (rc rowCounts) get(key uint64) int {
	for i := range rc {
		if rc[i].key == key {
			return rc[i].n
		}
	}
	return 0
}

func (rc *rowCounts) inc(key uint64) {
	s := *rc
	for i := range s {
		if s[i].key == key {
			s[i].n++
			return
		}
	}
	*rc = append(s, rowKC{key: key, n: 1})
}

func (rc *rowCounts) dec(key uint64) {
	s := *rc
	for i := range s {
		if s[i].key != key {
			continue
		}
		if s[i].n--; s[i].n == 0 {
			last := len(s) - 1
			s[i] = s[last]
			*rc = s[:last]
		}
		return
	}
}

// Controller is the full multi-channel memory controller. It implements
// the cache.Backend contract in the CPU clock domain and steps the DRAM
// channels in the memory clock domain.
type Controller struct {
	cfg   Config
	am    *AddressMapper
	chans []*chanCtl

	lastMem int64
	// cpm caches cfg.CPUPerMem and nextMemAt the CPU cycle of the next
	// DRAM tick, replacing the per-Tick modulo/division pair on the clock
	// ratio with a stride counter (one compare, one add per DRAM tick).
	cpm       int64
	nextMemAt int64

	// NextEvent cache, refreshed after every DRAM tick and invalidated
	// (active=true) by enqueues: active means some channel must be scanned
	// at the next DRAM tick; otherwise minWake is the earliest channel
	// wake-up in memory cycles. NextEvent is on the run loop's
	// per-executed-cycle path, so it must not walk the channels itself.
	active  bool
	minWake int64

	// par is the conservative parallel-in-time engine (pdes.go), nil on
	// sequential controllers.
	par *parEngine
}

// New builds a controller; each channel gets its own power accumulator.
func New(cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	am, err := NewAddressMapper(cfg.Mapping, cfg.Channels, cfg.Geom)
	if err != nil {
		return nil, err
	}
	if cfg.NoMaskCycle {
		cfg.Timing.PRAMaskCycles = 0
	}
	if cfg.Scheme == SDS {
		// SDS delivers its chip mask through the DM pins alongside the
		// write (no extra address-bus cycle) and does not relax tRRD/tFAW
		// (the Skinflint design predates the weighted-window idea).
		cfg.Timing.PRAMaskCycles = 0
		cfg.NoTimingRelax = true
	}
	c := &Controller{cfg: cfg, am: am, lastMem: -1, cpm: cfg.CPUPerMem, active: true}
	for i := 0; i < cfg.Channels; i++ {
		acc := power.NewAccumulator()
		ch, err := dram.NewChannel(cfg.Timing, cfg.Geom, acc)
		if err != nil {
			return nil, err
		}
		ch.NoWeightedFAW = cfg.NoTimingRelax
		ch.SlowExitPD = cfg.PDSlowExit
		if cfg.MitThreshold > 0 {
			ch.TrackRows(cfg.mitTableCap())
		}
		switch cfg.RefreshMode {
		case RefreshPerBank:
			ch.RefMode = dram.RefPerBank
		case RefreshElastic:
			ch.MaxPostpone = 8
		}
		acc.LinearActScale = cfg.Scheme == SDS
		if cfg.ECC {
			acc.ECCChips = 1
		}
		cc := &chanCtl{cfg: &c.cfg, ch: ch, acc: acc, am: am, idx: i}
		cc.hitCount = make([][]int, cfg.Geom.Ranks)
		for r := range cc.hitCount {
			cc.hitCount[r] = make([]int, cfg.Geom.Banks)
		}
		cc.refPending = make([]bool, cfg.Geom.Ranks)
		cc.rowCount = nil
		cc.rankCount = make([]int, cfg.Geom.Ranks)
		cc.lastWork = make([]int64, cfg.Geom.Ranks)
		if cfg.LatBreak {
			cc.latHistBank = make([]stats.LogHist, cfg.Geom.Ranks*cfg.Geom.Banks)
		}
		c.chans = append(c.chans, cc)
	}
	return c, nil
}

// Mapper exposes the address mapper (for experiments and the DBI RowKey).
func (c *Controller) Mapper() *AddressMapper { return c.am }

// RowKey identifies the DRAM row of an address (cache.Config.RowKey).
func (c *Controller) RowKey(addr uint64) uint64 { return c.am.RowKey(addr) }

// Read enqueues a line fill. done.Fn receives the CPU cycle the data
// arrives. Returns false when the channel's read queue is full.
func (c *Controller) Read(addr uint64, done core.Done) bool {
	l := c.am.Decompose(addr)
	cc := c.chans[l.Channel]
	if len(cc.readQ) >= c.cfg.ReadQ {
		cc.stats.ReadRejects++
		return false
	}
	req := cc.allocReq()
	req.kind = core.Read
	req.loc = l
	req.rowKey = c.am.RowKeyOf(l)
	req.wordMask = core.FullMask
	req.arrive = c.lastMem + 1
	req.mark = req.arrive
	req.done = done // invoked with the CPU cycle: call sites scale by CPUPerMem
	cc.nextWake = 0
	c.active = true
	// Forward from the write queue: the newest matching write has the data.
	for _, w := range cc.writeQ {
		if w.loc == l {
			cc.forwards = append(cc.forwards, req)
			cc.stats.Forwarded++
			return true
		}
	}
	cc.readQ = append(cc.readQ, req)
	cc.noteAdd(req)
	return true
}

// Write enqueues a dirty-line writeback with its FGD byte mask. Returns
// false when the write queue is full. Writes to a line already queued are
// merged (their dirty masks OR together).
func (c *Controller) Write(addr uint64, mask core.ByteMask) bool {
	l := c.am.Decompose(addr)
	cc := c.chans[l.Channel]
	if mask == 0 {
		mask = core.FullByteMask
	}
	// The write mask projection depends on the scheme: PRA selects MAT
	// groups (words), SDS selects chips (byte positions).
	project := core.ByteMask.WordMask
	if c.cfg.Scheme.chipMasks() {
		project = core.ByteMask.ChipMask
	}
	for _, w := range cc.writeQ {
		if w.loc == l {
			w.byteMask |= mask
			w.wordMask = project(w.byteMask)
			return true
		}
	}
	if len(cc.writeQ) >= c.cfg.WriteQ {
		cc.stats.WriteRejects++
		return false
	}
	req := cc.allocReq()
	req.kind = core.Write
	req.loc = l
	req.rowKey = c.am.RowKeyOf(l)
	req.byteMask = mask
	req.wordMask = project(mask)
	req.arrive = c.lastMem + 1
	req.mark = req.arrive
	cc.writeQ = append(cc.writeQ, req)
	cc.noteAdd(req)
	cc.nextWake = 0
	c.active = true
	return true
}

// ResetStats zeroes all counters and accumulated energy; queued requests
// and device state are untouched. Used to exclude warmup from measurement.
func (c *Controller) ResetStats() {
	for _, cc := range c.chans {
		cc.stats = Stats{}
		cc.ch.ResetStats()
		cc.acc.Reset()
		cc.resetLat()
	}
}

// Pending reports whether any request is still queued or forwarding.
func (c *Controller) Pending() bool {
	for _, cc := range c.chans {
		if len(cc.readQ) > 0 || len(cc.writeQ) > 0 || len(cc.forwards) > 0 {
			return true
		}
	}
	return false
}

// Tick advances the controller at CPU-cycle granularity; DRAM work happens
// every CPUPerMem-th cycle. The stride counter nextMemAt stands in for a
// modulo on the clock ratio: between DRAM ticks the call is one compare.
// A caller that fast-forwarded past nextMemAt without SkipTo is
// resynchronized here (the overshoot is only legal when every skipped
// DRAM tick was a provable no-op, which is what NextEvent guarantees).
func (c *Controller) Tick(cpu int64) {
	if cpu != c.nextMemAt {
		if cpu < c.nextMemAt {
			return
		}
		c.SkipTo(cpu)
		if cpu != c.nextMemAt {
			return
		}
	}
	mem := c.lastMem + 1
	c.lastMem = mem
	c.nextMemAt = cpu + c.cpm
	if c.par != nil {
		c.par.tick(mem)
	} else {
		for _, cc := range c.chans {
			cc.tick(mem)
		}
	}
	c.active = false
	min := int64(farFuture)
	for _, cc := range c.chans {
		if len(cc.forwards) > 0 || cc.nextWake == 0 {
			c.active = true
			return
		}
		if cc.nextWake < min {
			min = cc.nextWake
		}
	}
	c.minWake = min
}

// SkipTo realigns the DRAM clock after the run loop jumps the CPU cycle
// to target (the next cycle it will execute). It restores the invariant
// per-cycle ticking maintains — lastMem is the DRAM cycle of the last
// tick at or before the previous CPU cycle — so request arrival stamps
// taken between DRAM ticks (lastMem+1) match the unskipped run exactly.
func (c *Controller) SkipTo(target int64) {
	if target > c.nextMemAt-c.cpm && target <= c.nextMemAt {
		// Still inside the current DRAM-tick window (nextMemAt is always a
		// clock-ratio multiple, so the window floor is nextMemAt-cpm): the
		// division below would reproduce the state unchanged.
		return
	}
	mem := target / c.cpm
	if target == mem*c.cpm {
		c.lastMem = mem - 1
		c.nextMemAt = target
	} else {
		c.lastMem = mem
		c.nextMemAt = (mem + 1) * c.cpm
	}
}

// MemCycle returns the DRAM cycle of the most recent DRAM tick (-1 before
// the first), i.e. the value per-cycle ticking would have derived as
// floor(cpu/CPUPerMem). Exposed for the clock-stride regression tests.
func (c *Controller) MemCycle() int64 { return c.lastMem }

// NextEvent reports the earliest CPU cycle at which the controller can do
// observable work, assuming nothing new is enqueued before then: the next
// DRAM tick while any channel is active (pending forwards, or a disarmed
// wake meaning the scheduler must scan again), otherwise the earliest
// channel wake-up (readiness or refresh deadline) converted to the CPU
// clock. Skipped cycles in between are exactly the ticks that per-cycle
// operation would spend in the "mem < nextWake" sleep path, whose only
// effect — lazy background-energy accrual — is caught up jump-exactly by
// AdvanceTo/CatchUp.
func (c *Controller) NextEvent(now int64) int64 {
	if c.active {
		return c.nextMemAt
	}
	if c.minWake >= core.FarFuture/c.cpm {
		return core.FarFuture // avoid overflowing the sentinel
	}
	return c.minWake * c.cpm
}

// CatchUp brings the lazy per-channel background-energy accounting to the
// point per-cycle ticking would have reached just before CPU cycle cpu —
// through the last DRAM tick at or before cpu-1. The run loop calls it
// before reading energy or rank-state cycle counters (epoch samples,
// end-of-run results) so fast-forwarding never leaves them stale; under
// per-cycle ticking it is a no-op.
func (c *Controller) CatchUp(cpu int64) {
	mem := (cpu - 1) / c.cpm
	for _, cc := range c.chans {
		cc.ch.AdvanceTo(mem)
	}
}

// Stats returns the channel-summed controller statistics.
func (c *Controller) Stats() Stats {
	var s Stats
	for _, cc := range c.chans {
		s.Add(cc.stats)
	}
	return s
}

// DeviceStats returns the channel-summed DRAM event statistics. As a probe
// it flushes pending background spans first, so the rank-cycle counters are
// current through the last clocked cycle.
func (c *Controller) DeviceStats() dram.Stats {
	var s dram.Stats
	for _, cc := range c.chans {
		cc.ch.FlushBackground()
		d := cc.ch.Stats
		for g := range s.ActsByGranularity {
			s.ActsByGranularity[g] += d.ActsByGranularity[g]
		}
		s.Reads += d.Reads
		s.Writes += d.Writes
		s.Precharges += d.Precharges
		s.Refreshes += d.Refreshes
		s.PerBankRefreshes += d.PerBankRefreshes
		s.PostponedRefreshes += d.PostponedRefreshes
		s.PulledInRefreshes += d.PulledInRefreshes
		s.SelfRefEntries += d.SelfRefEntries
		s.PowerDownCycles += d.PowerDownCycles
		s.ActivePDCycles += d.ActivePDCycles
		s.SlowPDCycles += d.SlowPDCycles
		s.SelfRefCycles += d.SelfRefCycles
		s.ActiveRankCycles += d.ActiveRankCycles
		s.PrechargedRankCycles += d.PrechargedRankCycles
		s.WordsWritten += d.WordsWritten
		s.WordBudget += d.WordBudget
		s.RFMs += d.RFMs
		s.RowSpills += d.RowSpills
	}
	return s
}

// Energy returns the channel-summed energy breakdown in pJ. As a probe it
// flushes pending background spans first.
func (c *Controller) Energy() power.Breakdown {
	var b power.Breakdown
	for _, cc := range c.chans {
		cc.ch.FlushBackground()
		b = b.Add(cc.acc.Energy())
	}
	return b
}

// --- per-channel scheduling ---

// farFuture aliases the shared next-event sentinel (core.FarFuture) under
// the name the scheduling passes historically used.
const farFuture = core.FarFuture

func (cc *chanCtl) tick(mem int64) {
	cc.ch.Clock(mem)

	// Complete write-forwarded reads one memory cycle after enqueue.
	if len(cc.forwards) > 0 {
		for i, f := range cc.forwards {
			cc.stats.ReadsServed++
			cc.stats.RowHitRead++ // served without any DRAM activity
			cc.stats.ReadLatencySum += mem - f.arrive
			cc.completeLat(f, mem, mem) // no DRAM command: all queue time
			cc.complete(f.done, mem*cc.cfg.CPUPerMem)
			cc.forwards[i] = nil
			cc.releaseReq(f)
		}
		cc.forwards = cc.forwards[:0]
	}

	// Nothing can become issueable before nextWake (it is cleared on every
	// enqueue and issued command); skip the scheduling scans until then.
	if mem < cc.nextWake {
		return
	}

	// Wake powered-down ranks that have work (requests or a refresh the
	// rank must take — under elastic refresh a merely-due refresh is
	// postponed rather than cutting the sleep short); the wake costs the
	// state's exit latency before the first command (tXP/tXPDLL/tXS).
	for r := 0; r < cc.cfg.Geom.Ranks; r++ {
		if cc.rankHasWork(r) {
			cc.lastWork[r] = mem
		}
		if cc.ch.PoweredDown(r) && (cc.rankHasWork(r) || cc.refreshWakes(mem, r)) {
			st := cc.ch.PDStateOf(r)
			cc.ch.Wake(mem, r)
			if cc.ev.Enabled(obs.LevelState) {
				cc.ev.Emit(obs.Event{Cycle: mem, Level: obs.LevelState, Scope: cc.scope,
					Kind: "wake", Detail: fmt.Sprintf("rank %d out of %v", r, st)})
			}
		}
	}

	// Watermark-driven write drain (Section 5.1.2).
	if len(cc.writeQ) >= cc.cfg.HighWM {
		if !cc.drain && cc.ev.Enabled(obs.LevelState) {
			cc.ev.Emit(obs.Event{Cycle: mem, Level: obs.LevelState, Scope: cc.scope,
				Kind: "drain-start", Detail: fmt.Sprintf("write queue %d >= high watermark %d", len(cc.writeQ), cc.cfg.HighWM)})
		}
		cc.drain = true
	} else if cc.drain && len(cc.writeQ) <= cc.cfg.LowWM {
		cc.drain = false
		if cc.ev.Enabled(obs.LevelState) {
			cc.ev.Emit(obs.Event{Cycle: mem, Level: obs.LevelState, Scope: cc.scope,
				Kind: "drain-stop", Detail: fmt.Sprintf("write queue %d <= low watermark %d", len(cc.writeQ), cc.cfg.LowWM)})
		}
	}

	cc.wakeMin = farFuture
	if cc.schedule(mem) {
		cc.nextWake = 0
		return
	}
	// Nothing issued: sleep until the earliest collected readiness or the
	// next refresh deadline, whichever comes first.
	wake := cc.wakeMin
	if due := cc.refreshHorizon(mem); due < wake {
		wake = due
	}
	if wake <= mem {
		wake = mem + 1
	}
	cc.nextWake = wake
}

// schedule makes one scheduling pass; reports whether a command issued.
func (cc *chanCtl) schedule(mem int64) bool {
	if cc.issueRefresh(mem) {
		return true
	}
	// Alert back-off (mitigation.go): a raised alert stalls everything
	// but refresh — refresh keeps priority so mitigation can never starve
	// the retention deadline — until the RFM has issued.
	if cc.rfmPending {
		return cc.issueRFM(mem)
	}
	primary, secondary := &cc.readQ, &cc.writeQ
	if cc.drain || len(cc.readQ) == 0 {
		primary, secondary = &cc.writeQ, &cc.readQ
	}
	if cc.tryColumn(mem, primary) {
		return true
	}
	// Secondary-queue columns drain ahead of primary ACT/PRE work: a
	// column to an already-open row is cheap, and it guarantees that rows
	// kept open for queued beneficiaries (see tryPrep) actually drain
	// instead of starving the bank.
	if cc.tryColumn(mem, secondary) {
		return true
	}
	if cc.tryPrep(mem, primary) {
		return true
	}
	if cc.tryPrep(mem, secondary) {
		return true
	}
	return cc.idleManage(mem)
}

// refreshWakes reports whether a refresh obligation justifies waking
// powered-down rank r: any due refresh under the conventional modes, only
// a must-issue one (postponement credit exhausted) under elastic refresh.
func (cc *chanCtl) refreshWakes(mem int64, r int) bool {
	if cc.cfg.RefreshMode == RefreshElastic {
		return cc.ch.RefreshMust(mem, r)
	}
	return cc.ch.RefreshDue(mem, r)
}

// refreshWanted reports whether this pass should push a refresh toward
// rank r. Powered-down ranks never want one here: the wake loop at the top
// of the pass decides when a refresh is worth a wake, so a still-sleeping
// rank is by definition one whose refreshes are being deferred. Under
// elastic refresh an awake busy rank postpones due refreshes until either
// the 8x tREFI credit runs out or the rank goes idle.
func (cc *chanCtl) refreshWanted(mem int64, r int) bool {
	if cc.ch.PoweredDown(r) {
		return false
	}
	if cc.cfg.RefreshMode == RefreshElastic {
		return cc.ch.RefreshMust(mem, r) ||
			(cc.ch.RefreshDue(mem, r) && !cc.rankHasWork(r))
	}
	return cc.ch.RefreshDue(mem, r)
}

// refreshHorizon returns the earliest cycle a refresh obligation can force
// scheduling work, for the channel sleep computation. Under elastic
// refresh a powered-down or busy rank only matters at its must-refresh
// deadline (its merely-due refreshes are being postponed); elsewhere the
// plain next-due time stands.
func (cc *chanCtl) refreshHorizon(mem int64) int64 {
	if cc.cfg.RefreshMode != RefreshElastic {
		return cc.ch.NextRefreshAny()
	}
	h := int64(farFuture)
	for r := 0; r < cc.cfg.Geom.Ranks; r++ {
		var at int64
		if cc.ch.PoweredDown(r) || cc.rankHasWork(r) {
			at = cc.ch.MustRefreshAt(r)
		} else {
			at = cc.ch.NextRefreshAt(r)
		}
		if at < h {
			h = at
		}
	}
	return h
}

// issueRefresh drives due refreshes: close the rank's banks, then REF (or
// a round-robin REFpb under per-bank refresh). Returns true when it
// consumed the command slot.
func (cc *chanCtl) issueRefresh(mem int64) bool {
	if cc.ch.NextRefreshAny() > mem {
		// No rank is due. refPending entries are already false: a pending
		// flag only rises while its rank is due, and the refresh that
		// clears the due condition resets the flag in the same pass.
		return false
	}
	for r := 0; r < cc.cfg.Geom.Ranks; r++ {
		if cc.cfg.RefreshMode == RefreshPerBank {
			// REFpb blocks only its target bank, so the rank-wide
			// refPending column freeze does not apply.
			if cc.refreshWanted(mem, r) && cc.issueRefreshBank(mem, r) {
				return true
			}
			continue
		}
		if !cc.refreshWanted(mem, r) {
			cc.refPending[r] = false
			continue
		}
		cc.refPending[r] = true
		if cc.ch.AnyBankOpen(r) {
			for b := 0; b < cc.cfg.Geom.Banks; b++ {
				if _, _, open := cc.ch.OpenRow(r, b); !open {
					continue
				}
				if at := cc.ch.PreReadyAt(mem, r, b); at <= mem {
					if err := cc.ch.Precharge(mem, r, b); err == nil {
						cc.hitCount[r][b] = 0
						return true
					}
				} else {
					cc.noteReady(at)
				}
			}
			continue // waiting for tRAS/tWR on some bank
		}
		if at, ok := cc.ch.RefreshReadyAt(mem, r); ok {
			if at <= mem {
				if err := cc.ch.Refresh(mem, r); err == nil {
					cc.refPending[r] = false
					if cc.ev.Enabled(obs.LevelState) {
						cc.ev.Emit(obs.Event{Cycle: mem, Level: obs.LevelState, Scope: cc.scope,
							Kind: "refresh", Detail: fmt.Sprintf("rank %d blocked for tRFC=%d", r, cc.cfg.Timing.TRFC)})
					}
					return true
				}
			} else {
				cc.noteReady(at)
			}
		}
	}
	return false
}

// issueRefreshBank pushes rank r's round-robin per-bank refresh forward:
// close the target bank if a row is open there, then REFpb. Returns true
// when it consumed the command slot. REFpb cannot lose the bank to a
// re-activation: issueRefresh runs first in every scheduling pass and both
// REFpb and ACT are gated by the same actAllowed window, so the refresh
// command wins the first cycle both become legal.
func (cc *chanCtl) issueRefreshBank(mem int64, r int) bool {
	b := cc.ch.NextRefreshBank(r)
	if _, _, open := cc.ch.OpenRow(r, b); open {
		if at := cc.ch.PreReadyAt(mem, r, b); at <= mem {
			if err := cc.ch.Precharge(mem, r, b); err == nil {
				cc.hitCount[r][b] = 0
				return true
			}
		} else {
			cc.noteReady(at)
		}
		return false
	}
	at, ok := cc.ch.RefreshBankReadyAt(mem, r)
	if !ok {
		return false
	}
	if at > mem {
		cc.noteReady(at)
		return false
	}
	if err := cc.ch.RefreshBank(mem, r); err != nil {
		return false
	}
	if cc.ev.Enabled(obs.LevelState) {
		cc.ev.Emit(obs.Event{Cycle: mem, Level: obs.LevelState, Scope: cc.scope,
			Kind: "refresh", Detail: fmt.Sprintf("rank %d bank %d blocked for tRFCpb=%d", r, b, cc.cfg.Timing.TRFCPB)})
	}
	return true
}

// writeFrac returns the fraction of the line's words transferred for a
// write: PRA schemes drive only dirty words (Section 4.1.2); FGA halves
// the bus rate instead.
func (cc *chanCtl) writeFrac(req *request) float64 {
	if !cc.cfg.Scheme.praWrites() || cc.cfg.NoPartialIO {
		return cc.cfg.Scheme.ioFrac()
	}
	return req.need().Fraction()
}

// tryColumn issues the first ready column command for a covered open-row
// request, honoring the open-row access cap.
func (cc *chanCtl) tryColumn(mem int64, q *[]*request) bool {
	if cc.ch.OpenBankCount() == 0 {
		return false // no open rows, so no column command can be legal
	}
	geom := cc.cfg.Geom
	burst := cc.cfg.Scheme.burstCycles(cc.cfg.Timing.TBURST)
	if len(*q) < geom.Ranks*geom.Banks {
		// Short queue: one OpenRow per request beats snapshotting every
		// bank (the common case — queues are near-empty most cycles).
		for i, req := range *q {
			l := req.loc
			if cc.refPending[l.Rank] {
				continue
			}
			row, mask, open := cc.ch.OpenRow(l.Rank, l.Bank)
			if !open || row != l.Row {
				continue
			}
			if cc.issueColumn(mem, q, i, req, mask, burst) {
				return true
			}
		}
		return false
	}
	// Deep queue: hoist open-row state, one snapshot instead of
	// per-request lookups.
	var openRows [64]int32 // row or -1; geometry is validated <= 64 banks
	for r := 0; r < geom.Ranks; r++ {
		for b := 0; b < geom.Banks; b++ {
			if row, _, open := cc.ch.OpenRow(r, b); open {
				openRows[r*geom.Banks+b] = int32(row)
			} else {
				openRows[r*geom.Banks+b] = -1
			}
		}
	}
	for i, req := range *q {
		l := req.loc
		if openRows[l.Rank*geom.Banks+l.Bank] != int32(l.Row) || cc.refPending[l.Rank] {
			continue
		}
		_, mask, _ := cc.ch.OpenRow(l.Rank, l.Bank)
		if cc.issueColumn(mem, q, i, req, mask, burst) {
			return true
		}
	}
	return false
}

// issueColumn attempts the column command for request i of q, whose bank
// holds its row open under mask. Reports whether a command issued; both
// tryColumn scan paths funnel through here so their decisions are
// identical by construction.
func (cc *chanCtl) issueColumn(mem int64, q *[]*request, i int, req *request, mask core.Mask, burst int) bool {
	l := req.loc
	if core.ClassifyAccess(true, true, mask, req.kind, req.need()) != core.Hit {
		return false
	}
	if cc.hitCount[l.Rank][l.Bank] >= cc.cfg.MaxRowHits {
		return false
	}
	autoPre := cc.autoPrecharge(req, mask)
	var terms dram.LatTerms
	if req.kind == core.Read {
		if at := cc.ch.ReadLatTerms(mem, l.Rank, l.Bank, burst, &terms); at > mem {
			cc.noteReady(at)
			return false
		}
		done, err := cc.ch.Read(mem, l.Rank, l.Bank, burst, cc.cfg.Scheme.ioFrac(), autoPre)
		if err != nil {
			return false
		}
		cc.finishColumn(q, i, req, autoPre)
		cc.stats.ReadLatencySum += done - req.arrive
		cc.sweepWait(req, mem, &terms)
		cc.completeLat(req, mem, done)
		cc.complete(req.done, done*cc.cfg.CPUPerMem)
	} else {
		if at := cc.ch.WriteLatTerms(mem, l.Rank, l.Bank, burst, &terms); at > mem {
			cc.noteReady(at)
			return false
		}
		end, err := cc.ch.Write(mem, l.Rank, l.Bank, burst, cc.writeFrac(req), autoPre)
		if err != nil {
			return false
		}
		cc.finishColumn(q, i, req, autoPre)
		cc.stats.WriteLatencySum += end - req.arrive
		cc.sweepWait(req, mem, &terms)
		cc.completeLat(req, mem, end)
	}
	cc.releaseReq(req)
	return true
}

// finishColumn updates hit accounting and removes the request from its
// queue.
func (cc *chanCtl) finishColumn(q *[]*request, i int, req *request, autoPre bool) {
	l := req.loc
	if autoPre {
		cc.hitCount[l.Rank][l.Bank] = 0
	} else {
		cc.hitCount[l.Rank][l.Bank]++
	}
	if req.kind == core.Read {
		cc.stats.ReadsServed++
		if !req.activated {
			cc.stats.RowHitRead++
		}
	} else {
		cc.stats.WritesServed++
		if !req.activated {
			cc.stats.RowHitWrite++
		}
	}
	s := *q
	copy(s[i:], s[i+1:])
	*q = s[:len(s)-1]
	cc.noteRemove(req)
}

// autoPrecharge decides whether a column access should close the row:
// always under the restricted policy; under the relaxed policy only when
// no queued request would hit the (possibly partial) open row within the
// access cap.
func (cc *chanCtl) autoPrecharge(req *request, openMask core.Mask) bool {
	if cc.cfg.Policy == RestrictedClose {
		return true
	}
	l := req.loc
	if cc.hitCount[l.Rank][l.Bank]+1 >= cc.cfg.MaxRowHits {
		return true
	}
	if cc.cfg.Policy == OpenPage {
		return false // rows stay open until a conflict or the hit cap
	}
	// req itself is still queued, so a count of 1 means nobody else.
	if cc.rowCount.get(req.rowKey) <= 1 {
		return true
	}
	if openMask.IsFull() {
		return false // any same-row request hits a full row
	}
	for _, q := range [2][]*request{cc.readQ, cc.writeQ} {
		for _, o := range q {
			if o == req || o.rowKey != req.rowKey {
				continue
			}
			if core.ClassifyAccess(true, true, openMask, o.kind, o.need()) == core.Hit {
				return false
			}
		}
	}
	return true
}

// actMask computes the activation mask for a request (Section 5.2.1: PRA
// masks of queued same-row writes are ORed; a queued same-row read forces
// a full activation).
func (cc *chanCtl) actMask(req *request) core.Mask {
	if !cc.cfg.Scheme.praWrites() || req.kind == core.Read {
		return core.FullMask
	}
	if cc.rowCount.get(req.rowKey) <= 1 {
		return req.need() // no other queued request shares the row
	}
	m := req.need()
	for _, o := range cc.writeQ {
		if o.rowKey == req.rowKey {
			m = m.Union(o.need())
		}
	}
	for _, o := range cc.readQ {
		if o.rowKey == req.rowKey {
			return core.FullMask
		}
	}
	return m
}

// tryPrep progresses the oldest request that needs an ACT or PRE. Only the
// oldest request per bank matters (FCFS within a bank), so each bank is
// examined once per scan.
func (cc *chanCtl) tryPrep(mem int64, q *[]*request) bool {
	half := cc.cfg.Scheme.halfDRAMOrg()
	var visited uint64
	for _, req := range *q {
		l := req.loc
		if cc.refPending[l.Rank] {
			continue
		}
		row, mask, open := cc.ch.OpenRow(l.Rank, l.Bank)
		// False-hit accounting happens for every queued request that
		// observes the partially open row, even while older same-bank
		// requests are still in line (Section 5.2.1): in a conventional
		// DRAM this request would have hit the open row.
		if open && row == l.Row && !req.falseHit &&
			core.ClassifyAccess(true, true, mask, req.kind, req.need()) == core.FalseHit {
			req.falseHit = true
			if req.kind == core.Read {
				cc.stats.FalseHitRead++
			} else {
				cc.stats.FalseHitWrite++
			}
		}
		bankBit := uint64(1) << uint(l.Rank*cc.cfg.Geom.Banks+l.Bank)
		if visited&bankBit != 0 {
			continue
		}
		visited |= bankBit
		if !open {
			m := cc.actMask(req)
			var terms dram.LatTerms
			if at := cc.ch.ActLatTerms(mem, l.Rank, l.Bank, m, half, &terms); at > mem {
				cc.noteReady(at)
				continue
			}
			if err := cc.ch.Activate(mem, l.Rank, l.Bank, l.Row, m, half); err != nil {
				continue
			}
			cc.hitCount[l.Rank][l.Bank] = 0
			req.activated = true
			cc.sweepWait(req, mem, &terms)
			if req.kind == core.Read {
				cc.stats.ActsForReads++
			} else {
				cc.stats.ActsForWrites++
			}
			cc.mitOnAct(mem, l)
			return true
		}
		sameRow := row == l.Row
		outcome := core.ClassifyAccess(true, sameRow, mask, req.kind, req.need())
		if outcome == core.Hit && cc.hitCount[l.Rank][l.Bank] < cc.cfg.MaxRowHits {
			continue // waiting for the column path; nothing to prep
		}
		if cc.rowBenefits(l.Rank, l.Bank, row, mask) {
			// Another queued request will hit the open row: let it drain
			// before conflicting it away (bounded by the row-hit cap), so
			// read/write phase switches do not waste fresh activations.
			continue
		}
		if at := cc.ch.PreReadyAt(mem, l.Rank, l.Bank); at <= mem {
			if err := cc.ch.Precharge(mem, l.Rank, l.Bank); err == nil {
				cc.hitCount[l.Rank][l.Bank] = 0
				return true
			}
		} else {
			cc.noteReady(at)
		}
	}
	return false
}

// idleManage closes rows no queued request benefits from and power-downs
// idle ranks (relaxed close-page with precharge power-down). Reports
// whether a precharge command was issued.
func (cc *chanCtl) idleManage(mem int64) bool {
	geom := cc.cfg.Geom
	if cc.ch.OpenBankCount() > 0 && cc.cfg.Policy != OpenPage {
		for r := 0; r < geom.Ranks; r++ {
			if !cc.ch.AnyBankOpen(r) {
				continue // skip the bank walk for fully closed ranks
			}
			for b := 0; b < geom.Banks; b++ {
				row, mask, open := cc.ch.OpenRow(r, b)
				if !open {
					continue
				}
				if cc.rowBenefits(r, b, row, mask) {
					continue
				}
				if at := cc.ch.PreReadyAt(mem, r, b); at <= mem {
					if err := cc.ch.Precharge(mem, r, b); err == nil {
						cc.hitCount[r][b] = 0
						return true
					}
				} else {
					cc.noteReady(at)
				}
			}
		}
	}
	for r := 0; r < geom.Ranks; r++ {
		if cc.rankHasWork(r) {
			continue
		}
		if st := cc.ch.PDStateOf(r); st != dram.PDAwake {
			// Self-refresh escalation: a rank that has slept in precharge
			// power-down past SRTimeout is woken (paying the exit latency)
			// so the self-refresh entry command can issue on a later pass.
			if (st == dram.PDPrechargeFast || st == dram.PDPrechargeSlow) && cc.srDueAt(r) <= mem {
				cc.ch.Wake(mem, r)
				if cc.ev.Enabled(obs.LevelState) {
					cc.ev.Emit(obs.Event{Cycle: mem, Level: obs.LevelState, Scope: cc.scope,
						Kind: "wake", Detail: fmt.Sprintf("rank %d out of %v to escalate to self-refresh", r, st)})
				}
				cc.noteReady(cc.ch.PDEntryReadyAt(r))
			}
			continue
		}
		if cc.ch.RefreshDue(mem, r) {
			continue // issueRefresh owns the rank until it is current
		}
		pdAt := cc.pdDueAt(mem, r)
		if cc.ch.AnyBankOpen(r) {
			// Open rows with no queued beneficiary only persist under the
			// open-page policy; active power-down is their companion state.
			if !cc.cfg.APD {
				continue
			}
			if pdAt > mem {
				cc.noteReady(pdAt)
				continue
			}
			if at := cc.ch.PDEntryReadyAt(r); at > mem {
				cc.noteReady(at)
			} else if cc.ch.EnterActivePowerDown(mem, r) && cc.ev.Enabled(obs.LevelState) {
				cc.ev.Emit(obs.Event{Cycle: mem, Level: obs.LevelState, Scope: cc.scope,
					Kind: "power-down", Detail: fmt.Sprintf("rank %d idle, entering active power-down", r)})
			}
			continue
		}
		srAt := cc.srDueAt(r)
		// Elastic pull-in: about to sleep with refresh credit to spare —
		// refresh early so the coming sleep is not cut short. Pointless
		// when self-refresh is imminent (the device then refreshes itself).
		if cc.cfg.RefreshMode == RefreshElastic && pdAt <= mem && srAt > mem && cc.ch.CanPullIn(mem, r) {
			if at, ok := cc.ch.RefreshReadyAt(mem, r); ok {
				if at <= mem {
					if cc.ch.Refresh(mem, r) == nil {
						if cc.ev.Enabled(obs.LevelState) {
							cc.ev.Emit(obs.Event{Cycle: mem, Level: obs.LevelState, Scope: cc.scope,
								Kind: "refresh", Detail: fmt.Sprintf("rank %d pull-in before power-down", r)})
						}
						return true
					}
				} else {
					cc.noteReady(at)
				}
			}
			continue
		}
		if srAt <= mem {
			if at := cc.ch.PDEntryReadyAt(r); at > mem {
				cc.noteReady(at)
			} else if cc.ch.EnterSelfRefresh(mem, r) && cc.ev.Enabled(obs.LevelState) {
				cc.ev.Emit(obs.Event{Cycle: mem, Level: obs.LevelState, Scope: cc.scope,
					Kind: "self-refresh", Detail: fmt.Sprintf("rank %d idle for %d cycles, entering self-refresh", r, mem-cc.lastWork[r])})
			}
			continue
		}
		if cc.cfg.SRTimeout > 0 {
			cc.noteReady(srAt)
		}
		if pdAt > mem {
			if cc.cfg.PDPolicy != PDNone {
				cc.noteReady(pdAt)
			}
			continue
		}
		if at := cc.ch.PDEntryReadyAt(r); at > mem {
			cc.noteReady(at)
			continue
		}
		if cc.ch.EnterPowerDown(mem, r) && cc.ev.Enabled(obs.LevelState) {
			cc.ev.Emit(obs.Event{Cycle: mem, Level: obs.LevelState, Scope: cc.scope,
				Kind: "power-down", Detail: fmt.Sprintf("rank %d idle, entering precharge power-down", r)})
		}
	}
	return false
}

// pdDueAt returns the cycle at which the power-down policy wants idle rank
// r to drop CKE (farFuture under PDNone; a value <= mem means "now").
func (cc *chanCtl) pdDueAt(mem int64, r int) int64 {
	switch cc.cfg.PDPolicy {
	case PDNone:
		return farFuture
	case PDTimed:
		return cc.lastWork[r] + cc.cfg.PDTimeout
	case PDQueueAware:
		if len(cc.readQ) == 0 && len(cc.writeQ) == 0 {
			return mem
		}
		return cc.lastWork[r] + cc.cfg.PDTimeout
	default: // PDImmediate
		return mem
	}
}

// srDueAt returns the cycle at which idle rank r should escalate to
// self-refresh (farFuture when escalation is disabled).
func (cc *chanCtl) srDueAt(r int) int64 {
	if cc.cfg.SRTimeout == 0 {
		return farFuture
	}
	return cc.lastWork[r] + cc.cfg.SRTimeout
}

// rowBenefits reports whether any queued request would hit the open row.
func (cc *chanCtl) rowBenefits(rank, bank, row int, mask core.Mask) bool {
	if cc.hitCount[rank][bank] >= cc.cfg.MaxRowHits {
		return false
	}
	key := cc.am.RowKeyOf(Loc{Channel: cc.idx, Rank: rank, Bank: bank, Row: row})
	if cc.rowCount.get(key) == 0 {
		return false
	}
	if mask.IsFull() {
		return true
	}
	for _, q := range [2][]*request{cc.readQ, cc.writeQ} {
		for _, o := range q {
			if o.rowKey != key {
				continue
			}
			if core.ClassifyAccess(true, true, mask, o.kind, o.need()) == core.Hit {
				return true
			}
		}
	}
	return false
}

func (cc *chanCtl) rankHasWork(rank int) bool { return cc.rankCount[rank] > 0 }

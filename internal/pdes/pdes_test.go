package pdes

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// TestTeamRunsEveryShare checks that each dispatch executes every share
// exactly once with the dispatched payload, across many epochs and after
// a Stop/restart cycle.
func TestTeamRunsEveryShare(t *testing.T) {
	t.Parallel()
	const n = 4
	var counts [n]atomic.Int64
	var sum atomic.Int64
	team := NewTeam(n, func(share int, a, b int64) {
		counts[share].Add(1)
		sum.Add(a + b)
	})
	if team.Size() != n {
		t.Fatalf("Size() = %d, want %d", team.Size(), n)
	}
	const epochs = 1000
	var want int64
	for i := int64(0); i < epochs; i++ {
		team.Do(i, 2*i)
		want += n * 3 * i
	}
	team.Stop()
	// Restart after Stop must work.
	team.Do(1, 1)
	want += n * 2
	team.Stop()
	for s := range counts {
		if got := counts[s].Load(); got != epochs+1 {
			t.Errorf("share %d ran %d times, want %d", s, got, epochs+1)
		}
	}
	if got := sum.Load(); got != want {
		t.Errorf("payload sum = %d, want %d", got, want)
	}
}

// TestTeamSingleShare checks the n==1 degenerate case stays a plain call
// with no goroutines.
func TestTeamSingleShare(t *testing.T) {
	t.Parallel()
	before := runtime.NumGoroutine()
	ran := 0
	team := NewTeam(1, func(share int, a, b int64) {
		if share != 0 || a != 7 || b != 9 {
			t.Errorf("run(%d, %d, %d), want run(0, 7, 9)", share, a, b)
		}
		ran++
	})
	team.Do(7, 9)
	team.Stop()
	if ran != 1 {
		t.Fatalf("ran %d times, want 1", ran)
	}
	if after := runtime.NumGoroutine(); after > before+1 {
		t.Errorf("goroutines grew from %d to %d for a single-share team", before, after)
	}
}

// TestTeamBarrier checks that Do is a full barrier: writes made by worker
// shares are visible to the master after Do returns, with no atomics on
// the data itself (the race detector patrols this under -race).
func TestTeamBarrier(t *testing.T) {
	t.Parallel()
	const n = 3
	cells := make([]int64, n)
	team := NewTeam(n, func(share int, a, b int64) {
		cells[share] = a * int64(share+1)
	})
	defer team.Stop()
	for i := int64(1); i <= 500; i++ {
		team.Do(i, 0)
		for s := int64(0); s < n; s++ {
			if cells[s] != i*(s+1) {
				t.Fatalf("epoch %d: cells[%d] = %d, want %d", i, s, cells[s], i*(s+1))
			}
		}
	}
}

// TestRingOrder checks Drain replays messages in append order and the
// backing array is reused (steady state allocates nothing).
func TestRingOrder(t *testing.T) {
	t.Parallel()
	r := NewRing(8)
	var got []int64
	for round := 0; round < 3; round++ {
		got = got[:0]
		for i := int64(0); i < 5; i++ {
			r.Push(Msg{Fn: func(at int64) { got = append(got, at) }, At: i})
		}
		if r.Len() != 5 {
			t.Fatalf("Len = %d, want 5", r.Len())
		}
		r.Drain()
		if r.Len() != 0 {
			t.Fatalf("Len after Drain = %d, want 0", r.Len())
		}
		for i, at := range got {
			if at != int64(i) {
				t.Fatalf("round %d: drain order %v, want ascending", round, got)
			}
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		r.Push(Msg{Fn: func(int64) {}, At: 1})
		r.Drain()
	})
	if allocs > 0 {
		t.Errorf("steady-state push/drain allocates %.1f objects/op, want 0", allocs)
	}
}

func BenchmarkTeamDispatch(b *testing.B) {
	team := NewTeam(2, func(share int, a, b int64) {})
	defer team.Stop()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		team.Do(int64(i), 0)
	}
}

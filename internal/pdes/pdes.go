// Package pdes provides the synchronization core of the conservative
// parallel-discrete-event engine: a Team of persistent worker goroutines
// that execute one "share" each of a tick's work between two barriers, and
// a preallocated Ring that carries deferred cross-partition messages back
// to the master in a canonical order.
//
// The package is deliberately model-agnostic — it knows nothing about DRAM
// channels. The memctrl layer decides per tick which partitions are
// provably independent (the conservative lookahead) and hands the Team a
// (tick, limit) pair; the Team fans the callback out over its shares and
// returns only when every share has finished, so the caller observes a
// full happens-before barrier on both sides of the parallel region.
//
// Synchronization is built for the steady state of a simulator run:
// millions of dispatches, each microseconds long. Dispatch publishes the
// job through one atomic store; workers spin briefly (yielding to the
// scheduler) before parking on a channel, so a loaded machine makes
// progress without burning a core and an idle one wakes in nanoseconds.
// The steady state allocates nothing: jobs are plain fields, wake tokens
// travel through preallocated 1-buffered channels, and Ring reuses its
// backing array across ticks.
package pdes

import (
	"runtime"
	"sync/atomic"
)

// spinBudget bounds how many Gosched-yielding spin iterations a waiter
// performs before parking on its wake channel. Small enough that a
// single-core machine falls through to parking almost immediately, large
// enough that a multi-core steady state almost never parks.
const spinBudget = 64

// Team runs a fixed callback over n shares per dispatch: share 0 on the
// calling goroutine, shares 1..n-1 on persistent workers. Workers are
// started lazily on the first Do and released by Stop; a Team may be
// restarted by calling Do again after Stop. All methods must be called
// from a single master goroutine.
type Team struct {
	n   int
	run func(share int, a, b int64)

	// Job payload, published by the release store of epoch (Go atomics
	// are sequentially consistent, so workers that acquire-load the new
	// epoch observe these writes).
	jobA, jobB int64
	stop       bool

	epoch   atomic.Int64
	done    atomic.Int64 // total shares completed across all epochs
	pending int64        // shares dispatched to workers per epoch (n-1)

	workers []teamWorker
	master  waiter
	started bool
}

type teamWorker struct {
	w waiter
	// pad keeps adjacent workers' hot atomics off one cache line.
	_ [64]byte
}

// waiter is one park/wake slot: parked is set by the waiter before
// blocking on wake; the signaller clears it with a CAS so exactly one
// token is sent per park. wake is 1-buffered, so a token sent to a waiter
// that decided not to block is consumed harmlessly on its next park.
type waiter struct {
	parked atomic.Bool
	wake   chan struct{}
}

func (w *waiter) init() { w.wake = make(chan struct{}, 1) }

// signal wakes the waiter if it is parked (or has announced it is about
// to park). Safe to call when the waiter is running: the CAS fails and
// nothing is sent.
func (w *waiter) signal() {
	if w.parked.CompareAndSwap(true, false) {
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}
}

// await blocks until ready() holds, spinning with scheduler yields before
// parking. ready must eventually hold after a matching signal.
func (w *waiter) await(ready func() bool) {
	for {
		for i := 0; i < spinBudget; i++ {
			if ready() {
				return
			}
			runtime.Gosched()
		}
		w.parked.Store(true)
		if ready() {
			w.parked.Store(false)
			return
		}
		<-w.wake
	}
}

// NewTeam creates a Team of n shares executing run. n must be >= 1; run
// receives the share index and the two int64 payloads passed to Do. With
// n == 1 Do degenerates to a plain call of run(0, a, b) on the caller.
func NewTeam(n int, run func(share int, a, b int64)) *Team {
	if n < 1 {
		panic("pdes: team size must be >= 1")
	}
	t := &Team{n: n, run: run, pending: int64(n - 1)}
	t.master.init()
	t.workers = make([]teamWorker, n-1)
	for i := range t.workers {
		t.workers[i].w.init()
	}
	return t
}

// Size returns the number of shares.
func (t *Team) Size() int { return t.n }

// Do executes run(share, a, b) for every share, returning after all have
// completed. Share 0 runs on the calling goroutine; the rest run
// concurrently on the worker goroutines.
func (t *Team) Do(a, b int64) {
	if t.n == 1 {
		t.run(0, a, b)
		return
	}
	if !t.started {
		t.start()
	}
	t.jobA, t.jobB = a, b
	target := t.dispatch()
	t.run(0, a, b)
	t.master.await(func() bool { return t.done.Load() >= target })
}

// dispatch publishes the current job fields as a new epoch and wakes any
// parked workers; it returns the done-counter value that marks this
// epoch's completion.
func (t *Team) dispatch() int64 {
	e := t.epoch.Add(1)
	for i := range t.workers {
		t.workers[i].w.signal()
	}
	return e * t.pending
}

func (t *Team) start() {
	t.started = true
	for i := range t.workers {
		go t.workerLoop(i+1, &t.workers[i].w, t.epoch.Load())
	}
}

func (t *Team) workerLoop(share int, w *waiter, seen int64) {
	for {
		w.await(func() bool { return t.epoch.Load() != seen })
		seen = t.epoch.Load()
		if t.stop {
			t.done.Add(1)
			t.master.signal()
			return
		}
		t.run(share, t.jobA, t.jobB)
		t.done.Add(1)
		t.master.signal()
	}
}

// Stop releases the worker goroutines. Idempotent; a subsequent Do
// restarts them. Must not be called concurrently with Do.
func (t *Team) Stop() {
	if !t.started {
		return
	}
	t.stop = true
	target := t.dispatch()
	t.master.await(func() bool { return t.done.Load() >= target })
	t.stop = false
	t.started = false
}

// Msg is one deferred cross-partition message: an opaque payload pair
// recorded where it was produced and replayed by the master in ring order.
type Msg struct {
	Fn func(int64) // completion callback (value-copied at capture time)
	At int64       // callback argument (CPU cycle of completion)
}

// Ring is a grow-once FIFO of deferred messages. A partition whose events
// must not fire mid-parallel-phase appends to its Ring during the tick;
// the master drains it in append order after the barrier. Append order
// within one partition equals sequential callback order, and the master
// drains partitions in canonical index order, so the global replay order
// is scheduler-independent. The backing array is retained across ticks —
// steady-state appends allocate nothing once the high-water mark is
// reached.
type Ring struct {
	buf []Msg
}

// NewRing preallocates capacity for n messages.
func NewRing(n int) *Ring {
	return &Ring{buf: make([]Msg, 0, n)}
}

// Push appends a message.
func (r *Ring) Push(m Msg) { r.buf = append(r.buf, m) }

// Len returns the number of pending messages.
func (r *Ring) Len() int { return len(r.buf) }

// Drain invokes every pending message's callback in append order and
// empties the ring, retaining its capacity.
func (r *Ring) Drain() {
	for i := range r.buf {
		m := &r.buf[i]
		m.Fn(m.At)
		m.Fn = nil // drop the closure reference for the GC
	}
	r.buf = r.buf[:0]
}

package cpu

import (
	"pradram/internal/checkpoint"
	"pradram/internal/core"
)

// Checkpointing (DESIGN.md §4e). The core's dynamic state is the ROB ring
// (entry completion flags and load serials), the queue occupancy counters,
// the pre-fetched pending op, and the retirement statistics. The ROB is
// canonicalized to start at index 0 on save so two identical pipeline
// states produce identical bytes regardless of how the ring happened to be
// rotated. Completion callbacks held by the cache hierarchy are not saved
// here — they are tagged (core.DoneTag) and rebound through the resolver
// RestoreState returns.

// lastLoad encodings beyond ring offsets (see SaveState).
const (
	lastLoadNil    = -2 // no dependence anchor
	lastLoadAnchor = -1 // anchor retired out of the ROB but still live
)

// SaveState appends the core's dynamic state.
func (c *Core) SaveState(w *checkpoint.Writer) {
	w.Int(c.count)
	for i := 0; i < c.count; i++ {
		e := c.rob[(c.head+i)%c.cfg.ROB]
		w.Bool(e.done)
		w.U64(e.serial)
	}
	// The dependence anchor is either nil, an entry inside the ring
	// (encoded as its offset from head), or an entry that retired out.
	last := int64(lastLoadNil)
	if c.lastLoad != nil {
		if c.lastLoad.retiredOut {
			last = lastLoadAnchor
		} else {
			last = lastLoadNil
			for i := 0; i < c.count; i++ {
				if c.rob[(c.head+i)%c.cfg.ROB] == c.lastLoad {
					last = int64(i)
					break
				}
			}
		}
	}
	w.I64(last)
	if last == lastLoadAnchor {
		w.Bool(c.lastLoad.done)
		w.U64(c.lastLoad.serial)
	}
	w.Int(c.ldqUsed)
	w.Int(c.stqUsed)
	w.U64(c.loadSerial)
	w.Bool(c.hasPending)
	if c.hasPending {
		w.U8(uint8(c.pending.Kind))
		w.U64(c.pending.Addr)
		w.U64(uint64(c.pending.Bytes))
		w.Bool(c.pending.Dep)
	}
	w.Bool(c.idle)
	w.I64(c.Retired)
	w.I64(c.Cycles)
	w.I64(c.Loads)
	w.I64(c.Stores)
	w.I64(c.ComputeOps)
}

// RestoreState decodes a SaveState payload. It returns a commit that
// installs the state (head canonicalized to 0) and a resolver mapping the
// completion tags the hierarchy holds for this core — in-flight load
// serials and the shared store completion — back to callbacks bound to
// the restored entries. The resolver is valid immediately (it closes over
// the decoded entries); the commit must still run for those entries to
// become the live ROB. On error the core is untouched.
func (c *Core) RestoreState(r *checkpoint.Reader) (func(), func(tag core.DoneTag) (core.Done, bool), error) {
	count := r.Int()
	if count < 0 || count > c.cfg.ROB {
		r.Fail("cpu %d: ROB count %d of %d", c.ID, count, c.cfg.ROB)
		count = 0
	}
	entries := make([]*robEntry, count)
	slab := make([]robEntry, count)
	for i := range entries {
		e := &slab[i]
		e.onDone = func(int64) {
			e.done = true
			c.ldqUsed--
			c.idle = false
		}
		e.done = r.Bool()
		e.serial = r.U64()
		entries[i] = e
	}
	last := r.I64()
	var anchor *robEntry
	switch {
	case last == lastLoadNil:
	case last == lastLoadAnchor:
		anchor = &robEntry{retiredOut: true}
		anchor.onDone = func(int64) {
			anchor.done = true
			c.ldqUsed--
			c.idle = false
		}
		anchor.done = r.Bool()
		anchor.serial = r.U64()
	case last >= 0 && last < int64(count):
	default:
		r.Fail("cpu %d: lastLoad code %d with %d entries", c.ID, last, count)
	}
	ldqUsed := r.Int()
	stqUsed := r.Int()
	loadSerial := r.U64()
	hasPending := r.Bool()
	var pending Op
	if hasPending {
		pending = Op{
			Kind:  OpKind(r.U8()),
			Addr:  r.U64(),
			Bytes: core.ByteMask(r.U64()),
			Dep:   r.Bool(),
		}
	}
	idle := r.Bool()
	retired := r.I64()
	cycles := r.I64()
	loads := r.I64()
	stores := r.I64()
	computeOps := r.I64()
	if ldqUsed < 0 || ldqUsed > c.cfg.LDQ || stqUsed < 0 || stqUsed > c.cfg.STQ {
		r.Fail("cpu %d: queue occupancy LDQ=%d STQ=%d", c.ID, ldqUsed, stqUsed)
	}
	if err := r.Err(); err != nil {
		return nil, nil, err
	}

	resolve := func(tag core.DoneTag) (core.Done, bool) {
		switch tag.Kind {
		case core.DoneStore:
			return core.Done{Fn: c.storeDone, Tag: tag}, true
		case core.DoneLoad:
			// Serials are unique among in-flight loads (assigned at
			// dispatch, and an entry only recycles after completion), so
			// a linear scan is unambiguous.
			for _, e := range entries {
				if !e.done && e.serial == tag.Serial {
					return core.Done{Fn: e.onDone, Tag: tag}, true
				}
			}
			if anchor != nil && !anchor.done && anchor.serial == tag.Serial {
				return core.Done{Fn: anchor.onDone, Tag: tag}, true
			}
		}
		return core.Done{}, false
	}

	commit := func() {
		// Rebuild the ring canonicalized at head 0 and reseed the
		// freelist with fresh spares (old entries are garbage once the
		// hierarchy's rebound callbacks replace theirs).
		c.rob = make([]*robEntry, c.cfg.ROB)
		copy(c.rob, entries)
		c.head = 0
		c.tail = count % c.cfg.ROB
		c.count = count
		c.free = nil
		spare := make([]robEntry, c.cfg.ROB+1-count)
		for i := range spare {
			e := &spare[i]
			e.onDone = func(int64) {
				e.done = true
				c.ldqUsed--
				c.idle = false
			}
			e.next = c.free
			c.free = e
		}
		c.lastLoad = nil
		if last == lastLoadAnchor {
			c.lastLoad = anchor
		} else if last >= 0 {
			c.lastLoad = entries[last]
		}
		c.ldqUsed = ldqUsed
		c.stqUsed = stqUsed
		c.loadSerial = loadSerial
		c.pending = pending
		c.hasPending = hasPending
		c.idle = idle
		c.Retired = retired
		c.Cycles = cycles
		c.Loads = loads
		c.Stores = stores
		c.ComputeOps = computeOps
	}
	return commit, resolve, nil
}

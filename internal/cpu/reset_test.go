package cpu

import "testing"

func TestResetStatsKeepsPipeline(t *testing.T) {
	mem := &fakeMem{}
	ops := []Op{{Kind: Load, Addr: 0x40}}
	c, _ := New(0, DefaultConfig(), &scriptGen{ops: ops}, mem)
	run(c, 20) // load outstanding, ROB partially filled
	before := c.count
	c.ResetStats()
	if c.Retired != 0 || c.Cycles != 0 || c.Loads != 0 {
		t.Error("ResetStats must zero counters")
	}
	if c.count != before {
		t.Error("ResetStats must not disturb the ROB")
	}
	// Completing the load lets retirement resume and recount from zero.
	mem.completeAll(20)
	run(c, 50)
	if c.Retired == 0 {
		t.Error("execution must continue after reset")
	}
	if c.IPC() <= 0 {
		t.Error("IPC must be measured over the post-reset window")
	}
}

func TestFreelistRecyclesEntries(t *testing.T) {
	// A long compute stream must not grow memory per instruction: the
	// freelist recycles ROB entries. Indirectly verified via the ring
	// never exceeding the ROB and the core staying correct over many
	// cycles.
	c, _ := New(0, DefaultConfig(), &scriptGen{}, &fakeMem{})
	run(c, 5000)
	if c.count > c.cfg.ROB {
		t.Errorf("ring occupancy %d exceeds ROB %d", c.count, c.cfg.ROB)
	}
	if c.Retired < int64(4000*c.cfg.Width/2) {
		t.Errorf("retired %d, expected near width*cycles", c.Retired)
	}
}

package cpu

import (
	"testing"

	"pradram/internal/core"
)

// scriptGen replays a fixed op sequence, then pads with compute ops.
type scriptGen struct {
	ops []Op
	i   int
}

func (g *scriptGen) Next(op *Op) {
	if g.i < len(g.ops) {
		*op = g.ops[g.i]
		g.i++
		return
	}
	*op = Op{Kind: Compute}
}
func (g *scriptGen) Name() string { return "script" }

// fakeMem completes loads when told to; stores complete instantly unless
// refuseStores is set.
type fakeMem struct {
	loadDone     []func(at int64)
	refuseLoads  bool
	refuseStores bool
	loads        int
	stores       int
}

func (m *fakeMem) Load(coreID int, addr uint64, now int64, done core.Done) bool {
	if m.refuseLoads {
		return false
	}
	m.loads++
	m.loadDone = append(m.loadDone, done.Fn)
	return true
}

func (m *fakeMem) Store(coreID int, addr uint64, mask core.ByteMask, now int64, done core.Done) bool {
	if m.refuseStores {
		return false
	}
	m.stores++
	done.Fn(now)
	return true
}

func (m *fakeMem) completeAll(at int64) {
	ds := m.loadDone
	m.loadDone = nil
	for _, d := range ds {
		d(at)
	}
}

func run(c *Core, cycles int) {
	for i := 0; i < cycles; i++ {
		c.Tick(int64(i))
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config: %v", err)
	}
	bad := DefaultConfig()
	bad.ROB = 0
	if bad.Validate() == nil {
		t.Error("zero ROB must fail")
	}
	if _, err := New(0, bad, &scriptGen{}, &fakeMem{}); err == nil {
		t.Error("New must reject bad config")
	}
	if _, err := New(0, DefaultConfig(), nil, &fakeMem{}); err == nil {
		t.Error("New must reject nil generator")
	}
}

func TestComputeIPCReachesWidth(t *testing.T) {
	c, err := New(0, DefaultConfig(), &scriptGen{}, &fakeMem{})
	if err != nil {
		t.Fatal(err)
	}
	run(c, 1000)
	// Pure compute stream: IPC must approach the dispatch width.
	if ipc := c.IPC(); ipc < 7.5 {
		t.Errorf("compute IPC = %.2f, want ~8", ipc)
	}
}

func TestLoadBlocksRetirementUntilComplete(t *testing.T) {
	mem := &fakeMem{}
	gen := &scriptGen{ops: []Op{{Kind: Load, Addr: 0x40}}}
	c, _ := New(0, DefaultConfig(), gen, mem)
	run(c, 50)
	// The load was dispatched but never completed: the ROB head blocks, so
	// retirement stops at the instructions ahead of it (none).
	if c.Retired != 0 {
		t.Errorf("retired %d with load outstanding, want 0", c.Retired)
	}
	mem.completeAll(50)
	run(c, 10)
	if c.Retired == 0 {
		t.Error("retirement must resume after the load completes")
	}
}

func TestROBFillsOnLongMiss(t *testing.T) {
	mem := &fakeMem{}
	gen := &scriptGen{ops: []Op{{Kind: Load, Addr: 0x40}}} // 1 load, rest compute
	cfg := DefaultConfig()
	c, _ := New(0, cfg, gen, mem)
	run(c, 1000)
	// With the head blocked, exactly ROB-entries can be in flight.
	if got := c.count; got != cfg.ROB {
		t.Errorf("ROB occupancy = %d, want %d (full)", got, cfg.ROB)
	}
}

func TestMLPIndependentLoads(t *testing.T) {
	mem := &fakeMem{}
	var ops []Op
	for i := 0; i < 16; i++ {
		ops = append(ops, Op{Kind: Load, Addr: uint64(i) * 64})
	}
	c, _ := New(0, DefaultConfig(), &scriptGen{ops: ops}, mem)
	run(c, 10)
	// Independent loads all issue without waiting for each other.
	if mem.loads != 16 {
		t.Errorf("issued %d loads, want 16 (MLP)", mem.loads)
	}
}

func TestDependentLoadsSerialize(t *testing.T) {
	mem := &fakeMem{}
	ops := []Op{
		{Kind: Load, Addr: 0x40},
		{Kind: Load, Addr: 0x80, Dep: true},
		{Kind: Load, Addr: 0xC0, Dep: true},
	}
	c, _ := New(0, DefaultConfig(), &scriptGen{ops: ops}, mem)
	run(c, 20)
	if mem.loads != 1 {
		t.Fatalf("issued %d loads, want 1 (pointer chase serializes)", mem.loads)
	}
	mem.completeAll(20)
	run(c, 5)
	if mem.loads != 2 {
		t.Fatalf("after first completion, issued %d loads, want 2", mem.loads)
	}
	mem.completeAll(30)
	run(c, 5)
	if mem.loads != 3 {
		t.Errorf("after second completion, issued %d loads, want 3", mem.loads)
	}
}

func TestLDQBound(t *testing.T) {
	mem := &fakeMem{}
	cfg := DefaultConfig()
	cfg.LDQ = 4
	var ops []Op
	for i := 0; i < 10; i++ {
		ops = append(ops, Op{Kind: Load, Addr: uint64(i) * 64})
	}
	c, _ := New(0, cfg, &scriptGen{ops: ops}, mem)
	run(c, 10)
	if mem.loads != 4 {
		t.Errorf("issued %d loads, want 4 (LDQ bound)", mem.loads)
	}
}

func TestSTQBoundWithSlowStores(t *testing.T) {
	// Stores whose completion never arrives pile up in the STQ.
	mem := &fakeMem{}
	cfg := DefaultConfig()
	cfg.STQ = 2
	var ops []Op
	for i := 0; i < 10; i++ {
		ops = append(ops, Op{Kind: Store, Addr: uint64(i) * 64, Bytes: 0xFF})
	}
	slowMem := &stqFake{fakeMem: mem}
	c, _ := New(0, cfg, &scriptGen{ops: ops}, slowMem)
	run(c, 10)
	if slowMem.stores != 2 {
		t.Errorf("issued %d stores, want 2 (STQ bound)", slowMem.stores)
	}
}

// stqFake accepts stores but never completes them.
type stqFake struct {
	*fakeMem
	stores int
}

func (m *stqFake) Store(coreID int, addr uint64, mask core.ByteMask, now int64, done core.Done) bool {
	m.stores++
	return true
}

func TestStoresRetireWithoutBlocking(t *testing.T) {
	mem := &fakeMem{}
	gen := &scriptGen{ops: []Op{{Kind: Store, Addr: 0x40, Bytes: 0xFF}}}
	c, _ := New(0, DefaultConfig(), gen, mem)
	run(c, 10)
	if c.Retired == 0 {
		t.Error("stores must not block retirement")
	}
	if c.Stores != 1 || mem.stores != 1 {
		t.Errorf("stores = %d/%d, want 1/1", c.Stores, mem.stores)
	}
}

func TestRefusedLoadRetries(t *testing.T) {
	mem := &fakeMem{refuseLoads: true}
	gen := &scriptGen{ops: []Op{{Kind: Load, Addr: 0x40}}}
	c, _ := New(0, DefaultConfig(), gen, mem)
	run(c, 5)
	if mem.loads != 0 {
		t.Fatal("load must be refused")
	}
	mem.refuseLoads = false
	run(c, 5)
	if mem.loads != 1 {
		t.Errorf("refused load must retry and issue exactly once, got %d", mem.loads)
	}
}

func TestIPCZeroBeforeRunning(t *testing.T) {
	c, _ := New(0, DefaultConfig(), &scriptGen{}, &fakeMem{})
	if c.IPC() != 0 {
		t.Error("IPC before any cycle must be 0")
	}
}

func TestOpCounters(t *testing.T) {
	mem := &fakeMem{}
	ops := []Op{
		{Kind: Load, Addr: 0x40},
		{Kind: Store, Addr: 0x80, Bytes: 1},
		{Kind: Compute},
	}
	c, _ := New(0, DefaultConfig(), &scriptGen{ops: ops}, mem)
	mem.completeAll(0)
	run(c, 5)
	mem.completeAll(5)
	run(c, 5)
	if c.Loads != 1 || c.Stores != 1 || c.ComputeOps < 1 {
		t.Errorf("counters loads=%d stores=%d compute=%d", c.Loads, c.Stores, c.ComputeOps)
	}
}

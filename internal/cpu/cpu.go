// Package cpu models the processor side of the paper's baseline system
// (Table 3): 3.2 GHz, 8-wide out-of-order cores with a 192-entry ROB and
// 32/32-entry load/store queues. The model is deliberately ISA-free — what
// the DRAM study needs from the CPU is its memory-level parallelism and its
// latency/bandwidth sensitivity, both of which come from the windowed
// in-order-retire structure: instructions dispatch in order up to the issue
// width, loads complete when the hierarchy answers, dependent loads
// (pointer chases) cannot dispatch until the previous load returns, and the
// ROB stalls dispatch when full. IPC therefore responds to memory latency
// and bandwidth exactly the way the weighted-speedup metric needs.
package cpu

import (
	"fmt"

	"pradram/internal/core"
)

// OpKind classifies generated instructions.
type OpKind uint8

const (
	Compute OpKind = iota
	Load
	Store
)

// Op is one instruction token from a workload generator.
type Op struct {
	Kind OpKind
	Addr uint64
	// Bytes is the dirty byte mask within the 64B line for stores.
	Bytes core.ByteMask
	// Dep marks a load whose address depends on the previous load's value
	// (pointer chasing): it cannot dispatch until that load completes.
	Dep bool
}

// Generator produces an infinite instruction stream for one core.
type Generator interface {
	Next(op *Op)
	Name() string
}

// MemPort is the cache hierarchy interface a core issues to. Both methods
// may refuse admission (MSHRs full); the core retries next cycle.
// Completions are tagged (core.Done) so components holding them can be
// checkpointed and the callbacks rebound on restore.
type MemPort interface {
	Load(coreID int, addr uint64, now int64, done core.Done) bool
	Store(coreID int, addr uint64, mask core.ByteMask, now int64, done core.Done) bool
}

// Config sizes one core.
type Config struct {
	Width int // dispatch/retire width
	ROB   int
	LDQ   int
	STQ   int
}

// DefaultConfig returns the Table 3 core: 8-way, ROB 192, LDQ/STQ 32/32.
func DefaultConfig() Config { return Config{Width: 8, ROB: 192, LDQ: 32, STQ: 32} }

// Validate reports the first bad field.
func (c Config) Validate() error {
	if c.Width <= 0 || c.ROB <= 0 || c.LDQ <= 0 || c.STQ <= 0 {
		return fmt.Errorf("cpu: all config fields must be positive: %+v", c)
	}
	return nil
}

type robEntry struct {
	done       bool
	retiredOut bool      // left the ROB while still the dependence anchor
	next       *robEntry // freelist link while recycled
	// serial is the per-core dispatch serial of the in-flight load bound
	// to this entry; it is the checkpoint identity (core.DoneLoad tag) of
	// the completion the hierarchy holds for it.
	serial uint64
	// onDone is the completion callback bound to this entry for its whole
	// pooled lifetime — entries recycle through the freelist, so the
	// closure is allocated once per physical entry, not once per load.
	onDone func(at int64)
}

// Core is one out-of-order core.
type Core struct {
	ID  int
	cfg Config
	gen Generator
	mem MemPort

	// The ROB is a fixed ring of entry pointers; entries are recycled
	// through a freelist once retired (a retired entry is never touched
	// by callbacks again: loads only retire after their callback ran).
	rob        []*robEntry
	head, tail int // ring indices; count tracks occupancy
	count      int
	free       *robEntry

	ldqUsed  int
	stqUsed  int
	lastLoad *robEntry // most recently dispatched load (for Dep)

	// loadSerial numbers load dispatches; each accepted load's ROB entry
	// records the serial it was issued under, giving every in-flight load
	// completion a stable identity across checkpoint save/restore.
	loadSerial uint64

	pending    Op // a fetched but not yet dispatched op
	hasPending bool

	// storeDone is the shared store-completion callback (stores are not
	// tracked per entry, so one closure serves every store).
	storeDone func(at int64)

	// idle records that the last Tick neither retired nor dispatched
	// anything: every dispatch blocker (ROB full, pointer-chase wait,
	// LDQ/STQ full, hierarchy refusal) clears only through a completion
	// callback, so until one runs, further Ticks are provable no-ops.
	// The callbacks reset it, which is what lets NextEvent promise
	// quiescence between a blocked Tick and the next completion.
	idle bool

	// Retired counts retired instructions; Cycles counts Tick calls.
	Retired int64
	Cycles  int64
	// Loads/Stores/ComputeOps retired, for traffic sanity checks.
	Loads, Stores, ComputeOps int64
}

// New builds a core over a generator and memory port.
func New(id int, cfg Config, gen Generator, mem MemPort) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if gen == nil || mem == nil {
		return nil, fmt.Errorf("cpu: generator and memory port are required")
	}
	c := &Core{ID: id, cfg: cfg, gen: gen, mem: mem, rob: make([]*robEntry, cfg.ROB)}
	c.storeDone = func(int64) {
		c.stqUsed--
		c.idle = false
	}
	// Seed the freelist from one contiguous slab: at most ROB entries are
	// live plus the retired dependence anchor, so alloc never grows the
	// pool and the retire scan walks adjacent memory.
	slab := make([]robEntry, cfg.ROB+1)
	for i := range slab {
		e := &slab[i]
		e.onDone = func(int64) {
			e.done = true
			c.ldqUsed--
			c.idle = false
		}
		e.next = c.free
		c.free = e
	}
	return c, nil
}

func (c *Core) alloc(done bool) *robEntry {
	e := c.free
	if e == nil {
		e = &robEntry{}
		e.onDone = func(int64) {
			e.done = true
			c.ldqUsed--
			c.idle = false
		}
	} else {
		c.free = e.next
		e.next = nil
	}
	e.done = done
	e.retiredOut = false
	return e
}

func (c *Core) push(e *robEntry) {
	c.rob[c.tail] = e
	if c.tail++; c.tail == c.cfg.ROB {
		c.tail = 0 // branch instead of modulo: ROB size is not a power of two
	}
	c.count++
}

// ResetStats zeroes the retirement counters; pipeline state (ROB, queues,
// in-flight misses) is untouched. Used to exclude warmup from measurement.
func (c *Core) ResetStats() {
	c.Retired, c.Cycles = 0, 0
	c.Loads, c.Stores, c.ComputeOps = 0, 0, 0
}

// IPC returns retired instructions per cycle so far.
func (c *Core) IPC() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.Retired) / float64(c.Cycles)
}

// Tick advances the core one CPU cycle: retire in order, then dispatch.
func (c *Core) Tick(now int64) {
	c.Cycles++
	retired := c.retire()
	dispatched := c.dispatch(now)
	c.idle = retired == 0 && dispatched == 0
}

// NextEvent reports the earliest CPU cycle at which the core's state can
// change: now+1 while it is making progress, FarFuture once a Tick came
// up empty (a blocked core stays blocked until a memory completion runs,
// and the completion callbacks clear idle themselves). Re-Ticking a
// quiescent core is always safe — skipped Ticks are exact no-ops (the
// only state a blocked Tick touches is the pre-fetched pending op, which
// is fetched at most once).
func (c *Core) NextEvent(now int64) int64 {
	if !c.idle {
		return now + 1
	}
	return core.FarFuture
}

// SkipCycles accounts n elapsed-but-unticked cycles, keeping Cycles (and
// IPC) on the elapsed-time clock when the run loop fast-forwards.
func (c *Core) SkipCycles(n int64) { c.Cycles += n }

// Quiescent reports whether the next Tick is a provable no-op (same
// condition that makes NextEvent return FarFuture): the run loop uses it
// to skip Ticking blocked cores on cycles other components force it to
// execute. A completion callback clears the condition.
func (c *Core) Quiescent() bool { return c.idle }

// retire retires up to Width completed instructions in order.
func (c *Core) retire() int {
	retired := 0
	for retired < c.cfg.Width && c.count > 0 && c.rob[c.head].done {
		e := c.rob[c.head]
		c.rob[c.head] = nil
		if c.head++; c.head == c.cfg.ROB {
			c.head = 0
		}
		c.count--
		retired++
		// Recycle unless it is the dependence anchor for the next load;
		// the anchor is marked and recycled when a newer load replaces it.
		if e != c.lastLoad {
			e.next = c.free
			c.free = e
		} else {
			e.retiredOut = true
		}
	}
	c.Retired += int64(retired)
	return retired
}

// dispatch dispatches up to Width new instructions, returning how many
// actually entered the ROB.
func (c *Core) dispatch(now int64) int {
	n := 0
	for d := 0; d < c.cfg.Width; d++ {
		if c.count >= c.cfg.ROB {
			return n // ROB full
		}
		if !c.hasPending {
			c.gen.Next(&c.pending)
			c.hasPending = true
		}
		op := &c.pending
		switch op.Kind {
		case Compute:
			c.push(c.alloc(true))
			c.ComputeOps++
		case Load:
			if op.Dep && c.lastLoad != nil && !c.lastLoad.done {
				return n // address not ready: pointer chase stalls dispatch
			}
			e := c.alloc(false)
			if c.ldqUsed >= c.cfg.LDQ {
				e.next, c.free = c.free, e
				return n
			}
			e.serial = c.loadSerial
			done := core.Done{Fn: e.onDone, Tag: core.DoneTag{Kind: core.DoneLoad, Core: int32(c.ID), Serial: e.serial}}
			if !c.mem.Load(c.ID, op.Addr, now, done) {
				e.next, c.free = c.free, e
				return n // hierarchy refused; retry next cycle
			}
			c.loadSerial++
			c.ldqUsed++
			c.push(e)
			if old := c.lastLoad; old != nil && old.retiredOut {
				old.retiredOut = false
				old.next = c.free
				c.free = old
			}
			c.lastLoad = e
			c.Loads++
		case Store:
			if c.stqUsed >= c.cfg.STQ {
				return n
			}
			done := core.Done{Fn: c.storeDone, Tag: core.DoneTag{Kind: core.DoneStore, Core: int32(c.ID)}}
			if !c.mem.Store(c.ID, op.Addr, op.Bytes, now, done) {
				return n
			}
			c.stqUsed++
			// Stores retire immediately (they drain from the store queue
			// in the background); the STQ bound models the backpressure.
			c.push(c.alloc(true))
			c.Stores++
		}
		c.hasPending = false
		n++
	}
	return n
}

// Generator exposes the core's instruction generator (for checkpointing).
func (c *Core) Generator() Generator { return c.gen }

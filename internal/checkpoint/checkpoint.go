// Package checkpoint is the binary encoding layer for warmup
// checkpointing (DESIGN.md §4e). Each stateful simulator component
// serializes itself through a Writer and restores through a Reader; the
// sim layer frames the concatenated payloads with a magic number, format
// version, model version, warmup fingerprint, and CRC32 trailer.
//
// The encoding is deliberately dumb: fixed-width little-endian integers,
// IEEE-754 bit-pattern floats, length-prefixed byte strings. Determinism
// matters more than density — two checkpoints of identical simulator
// state must be byte-identical, so components serialize map contents in
// sorted key order and ring buffers in canonical rotation. The one
// density concession is the Uvarint/Varint pair, added for the trace
// format's footer index, whose per-chunk entries would otherwise dominate
// small captures; varints are just as deterministic (one canonical
// encoding per value, enforced on decode).
//
// The Reader carries a sticky error: every accessor returns the zero
// value once any read has failed, so decode code can run straight through
// and check Err once. Restores are transactional at the component level —
// decode into temporaries, return a commit closure, and only mutate live
// state after every component has decoded cleanly — so a corrupt
// checkpoint can never leave a half-restored simulator behind.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrCorrupt is wrapped by every decode failure so callers can
// distinguish "bad checkpoint bytes" from their own errors.
var ErrCorrupt = errors.New("corrupt checkpoint")

// Saver is the component checkpointing contract: SaveState appends the
// component's dynamic state; RestoreState decodes the same bytes into
// temporaries and returns a commit closure that installs them. A failed
// decode returns an error and MUST leave the component untouched — the
// caller runs every component's decode before any commit, so a corrupt
// checkpoint aborts with the live simulator intact.
type Saver interface {
	SaveState(w *Writer)
	RestoreState(r *Reader) (commit func(), err error)
}

// maxCount bounds every length prefix the Reader will accept. The
// largest real collections in a checkpoint are cache line arrays (a few
// hundred thousand entries); anything past this is a corrupt length about
// to drive a giant allocation.
const maxCount = 1 << 28

// Writer accumulates a checkpoint payload. The zero value is ready to
// use.
type Writer struct {
	buf []byte
}

// Bytes returns the accumulated payload.
func (w *Writer) Bytes() []byte { return w.buf }

// Grow preallocates capacity for at least n more bytes, so a caller that
// knows the rough payload size (the sim layer: cache line arrays dominate,
// ~1.7 MB on the default geometry) avoids the append-doubling copies.
func (w *Writer) Grow(n int) {
	if rem := cap(w.buf) - len(w.buf); rem < n {
		buf := make([]byte, len(w.buf), len(w.buf)+n)
		copy(buf, w.buf)
		w.buf = buf
	}
}

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

func (w *Writer) U8(v uint8)   { w.buf = append(w.buf, v) }
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *Writer) I64(v int64)  { w.U64(uint64(v)) }
func (w *Writer) Int(v int)    { w.I64(int64(v)) }
func (w *Writer) F64(v float64) {
	w.U64(math.Float64bits(v))
}

func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// Uvarint writes v in the canonical unsigned LEB128 form used by
// encoding/binary.
func (w *Writer) Uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

// Varint writes v zig-zag encoded (encoding/binary's signed varint).
func (w *Writer) Varint(v int64) {
	w.buf = binary.AppendVarint(w.buf, v)
}

// Count writes a collection length prefix.
func (w *Writer) Count(n int) { w.U64(uint64(n)) }

// String writes a length-prefixed string.
func (w *Writer) String(s string) {
	w.Count(len(s))
	w.buf = append(w.buf, s...)
}

// Bytes64 writes a length-prefixed byte slice.
func (w *Writer) Bytes64(b []byte) {
	w.Count(len(b))
	w.buf = append(w.buf, b...)
}

// Reader decodes a checkpoint payload with a sticky error: after the
// first failure every accessor returns the zero value and Err reports the
// original cause.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps payload for decoding.
func NewReader(payload []byte) *Reader { return &Reader{buf: payload} }

// Err returns the first decode error, or nil.
func (r *Reader) Err() error { return r.err }

// Fail records err (wrapped in ErrCorrupt) as the sticky error if none is
// set yet. Component decoders use it for semantic validation ("count out
// of range", "unknown tag kind").
func (r *Reader) Fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
	}
}

// Done reports whether the payload was fully consumed without error.
func (r *Reader) Done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(r.buf)-r.off)
	}
	return nil
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.buf)-r.off < n {
		r.Fail("truncated at offset %d (want %d bytes, have %d)", r.off, n, len(r.buf)-r.off)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *Reader) I64() int64   { return int64(r.U64()) }
func (r *Reader) Int() int     { return int(r.I64()) }
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

func (r *Reader) Bool() bool {
	switch v := r.U8(); v {
	case 0:
		return false
	case 1:
		return true
	default:
		r.Fail("bad bool byte %d", v)
		return false
	}
}

// Uvarint reads an unsigned varint. Over-long (non-canonical) encodings
// and values overflowing 64 bits fail, so every value has exactly one
// accepted byte form.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.Fail("bad uvarint at offset %d", r.off)
		return 0
	}
	if n > 1 && r.buf[r.off+n-1] == 0 {
		r.Fail("non-canonical uvarint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

// Varint reads a zig-zag signed varint with the same canonical-form
// checks as Uvarint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.Fail("bad varint at offset %d", r.off)
		return 0
	}
	if n > 1 && r.buf[r.off+n-1] == 0 {
		r.Fail("non-canonical varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

// Count reads a collection length prefix and validates it against both
// the global sanity bound and the remaining payload (at least one byte
// per element), so corrupt lengths fail before any allocation.
func (r *Reader) Count() int {
	n := r.U64()
	if r.err != nil {
		return 0
	}
	if n > maxCount || int(n) > len(r.buf)-r.off {
		r.Fail("count %d out of range at offset %d", n, r.off)
		return 0
	}
	return int(n)
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.Count()
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// Bytes64 reads a length-prefixed byte slice (copied out of the payload).
func (r *Reader) Bytes64() []byte {
	n := r.Count()
	b := r.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

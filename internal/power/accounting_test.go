package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestComponentString(t *testing.T) {
	if CompActPre.String() != "ACT-PRE" || CompRef.String() != "REF" {
		t.Error("component names wrong")
	}
	if Component(99).String() != "Component(99)" {
		t.Error("out-of-range component string wrong")
	}
}

func TestBreakdownTotalsAndShares(t *testing.T) {
	var b Breakdown
	b[CompActPre] = 30
	b[CompBG] = 50
	b[CompRdIO] = 10
	b[CompWrODT] = 10
	if b.Total() != 100 {
		t.Errorf("total = %v, want 100", b.Total())
	}
	if b.IO() != 20 {
		t.Errorf("IO = %v, want 20", b.IO())
	}
	if b.Share(CompActPre) != 0.3 {
		t.Errorf("ACT-PRE share = %v, want 0.3", b.Share(CompActPre))
	}
	if (Breakdown{}).Share(CompBG) != 0 {
		t.Error("empty breakdown share must be 0")
	}
	sum := b.Add(b)
	if sum.Total() != 200 {
		t.Errorf("Add total = %v, want 200", sum.Total())
	}
}

func TestActivationEnergyCharges(t *testing.T) {
	a := NewAccumulator()
	const tRC = 39 * 1.25
	a.Activation(8, false, tRC)
	full := a.Energy()[CompActPre]
	want := 22.2 * tRC * 8
	if math.Abs(full-want) > 1e-6 {
		t.Errorf("full ACT energy = %v pJ, want %v", full, want)
	}
	a.Reset()
	a.Activation(1, false, tRC)
	eighth := a.Energy()[CompActPre]
	if ratio := eighth / full; math.Abs(ratio-3.7/22.2) > 1e-9 {
		t.Errorf("1/8 ACT ratio = %v, want %v", ratio, 3.7/22.2)
	}
	a.Reset()
	a.Activation(0, false, tRC)
	if a.TotalEnergy() != 0 {
		t.Error("granularity-0 activation must be free")
	}
}

func TestHalfDRAMActivationCheaper(t *testing.T) {
	a := NewAccumulator()
	for g := 1; g <= 8; g++ {
		plain := a.ActPowerScaled(g, false)
		half := a.ActPowerScaled(g, true)
		if half >= plain {
			t.Errorf("g=%d: Half-DRAM power %.2f must be below plain %.2f", g, half, plain)
		}
	}
	// Half-DRAM full row sits near the published 4/8 point (11.6 mW).
	hd := a.ActPowerScaled(8, true)
	if math.Abs(hd-11.6) > 0.5 {
		t.Errorf("Half-DRAM full-row P_ACT = %.2f mW, want ~11.6", hd)
	}
}

func TestReadWriteBurstCharges(t *testing.T) {
	a := NewAccumulator()
	const burst = 4 * 1.25
	a.ReadBurst(burst)
	e := a.Energy()
	if e[CompRd] != 78*burst*8 {
		t.Errorf("RD energy = %v", e[CompRd])
	}
	if e[CompRdIO] != 4.6*burst*8 {
		t.Errorf("RD I/O energy = %v", e[CompRdIO])
	}
	if e[CompRdTerm] != 15.5*burst*8*1 {
		t.Errorf("RD TERM energy = %v", e[CompRdTerm])
	}

	a.Reset()
	a.WriteBurst(burst, 1)
	full := a.Energy()
	a.Reset()
	a.WriteBurst(burst, 0.125)
	partial := a.Energy()
	for _, c := range []Component{CompWr, CompWrODT, CompWrTerm} {
		if math.Abs(partial[c]/full[c]-0.125) > 1e-9 {
			t.Errorf("%s: partial write must scale by transferred fraction", c)
		}
	}
	a.Reset()
	a.WriteBurst(burst, -1)
	if a.TotalEnergy() != 0 {
		t.Error("negative fraction clamps to 0")
	}
	a.Reset()
	a.WriteBurst(burst, 2)
	if got := a.Energy()[CompWr]; got != full[CompWr] {
		t.Error("fraction above 1 clamps to 1")
	}
}

func TestBackgroundStates(t *testing.T) {
	a := NewAccumulator()
	a.Background(RankActive, 10)
	act := a.TotalEnergy()
	a.Reset()
	a.Background(RankPrecharged, 10)
	pre := a.TotalEnergy()
	a.Reset()
	a.Background(RankPoweredDown, 10)
	pdn := a.TotalEnergy()
	if !(act > pre && pre > pdn) {
		t.Errorf("background ordering violated: act=%v pre=%v pdn=%v", act, pre, pdn)
	}
	if act != 42*10*8 || pre != 27*10*8 || pdn != 18*10*8 {
		t.Error("background energies do not match Table 3 values")
	}
}

func TestRefreshCharge(t *testing.T) {
	a := NewAccumulator()
	a.Refresh(160)
	if got := a.Energy()[CompRef]; got != 210*160*8 {
		t.Errorf("REF energy = %v, want %v", got, 210.0*160*8)
	}
}

func TestAvgPower(t *testing.T) {
	a := NewAccumulator()
	a.Background(RankPrecharged, 100)
	// 27 mW x 8 chips for the whole interval.
	if got := a.AvgPowerMW(100); math.Abs(got-216) > 1e-9 {
		t.Errorf("avg power = %v mW, want 216", got)
	}
	if a.AvgPowerMW(0) != 0 {
		t.Error("zero runtime yields zero power")
	}
}

// Property: energy is additive and never negative for any event sequence.
func TestAccumulatorAdditiveProperty(t *testing.T) {
	f := func(events []uint8) bool {
		a := NewAccumulator()
		prev := 0.0
		for _, ev := range events {
			switch ev % 5 {
			case 0:
				a.Activation(int(ev%8)+1, ev%2 == 0, 48.75)
			case 1:
				a.ReadBurst(5)
			case 2:
				a.WriteBurst(5, float64(ev%9)/8)
			case 3:
				a.Background(RankState(ev%3), 7)
			case 4:
				a.Refresh(160)
			}
			now := a.TotalEnergy()
			if now < prev {
				return false
			}
			prev = now
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

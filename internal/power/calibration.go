package power

import (
	"fmt"
	"strconv"
	"strings"
)

// Factor is a multiplicative correction applied to one energy component,
// expressed as a min/nominal/max band. Nom is the best single-number
// correction for a typical device; Min and Max bound the plausible spread
// across devices, vendors, and data patterns. A Factor of {1, 1, 1} leaves
// the component at its datasheet-derived value.
type Factor struct {
	Min, Nom, Max float64
}

// Unit is the identity correction factor.
var Unit = Factor{Min: 1, Nom: 1, Max: 1}

// Band is a min/nominal/max energy (or power) triple produced by applying a
// Calibration to a Breakdown. Units follow the input: pJ when applied to
// energies, mW when applied to powers.
type Band struct {
	Min, Nom, Max float64
}

// Scale returns the band multiplied by k (for unit conversions such as
// pJ -> mW over a runtime).
func (b Band) Scale(k float64) Band {
	return Band{Min: b.Min * k, Nom: b.Nom * k, Max: b.Max * k}
}

// Spread returns the half-width of the band relative to its nominal value
// ((Max-Min)/2 / Nom), a scalar summary of how uncertain the estimate is.
// It returns 0 when Nom is 0.
func (b Band) Spread() float64 {
	if b.Nom == 0 {
		return 0
	}
	return (b.Max - b.Min) / 2 / b.Nom
}

// Calibration is a set of per-component correction factors layered over the
// datasheet power model. It is applied to finished Breakdowns only — after
// simulation — so a calibration can never perturb simulated timing or
// state: the same run re-reported under a different calibration stays
// bit-identical in everything but the energy band.
//
// The built-in presets follow the methodology of Ghose et al., "What Your
// DRAM Power Models Are Not Telling You: Lessons from a Detailed
// Experimental Study" (SIGMETRICS 2018, arXiv:1807.05102), which measured
// real DDR3L devices against vendor-model predictions: datasheet IDD values
// are worst-case and overstate idle/activate power, while read/write power
// depends on data patterns and can exceed the datasheet figure.
type Calibration struct {
	// Name identifies the preset ("none", "vendor", "ghose").
	Name string
	// Factors holds one correction band per energy component.
	Factors [NumComponents]Factor
	// Sigma is an extra symmetric per-device variation fraction widening
	// every component band (Min *= 1-Sigma, Max *= 1+Sigma). It models
	// process variation between individual devices of the same part
	// number, on top of the preset's vendor/model spread.
	Sigma float64
}

// CalNone returns the identity calibration: every factor is {1, 1, 1}, so
// the band degenerates to the datasheet point estimate.
func CalNone() Calibration {
	c := Calibration{Name: "none"}
	for i := range c.Factors {
		c.Factors[i] = Unit
	}
	return c
}

// CalVendor returns a calibration modeling inter-vendor spread only: the
// nominal stays at the datasheet value (1.0) while min/max span the
// current draw Ghose et al. observed across the three major DRAM vendors
// for the same speed bin — roughly +/-20% on dynamic array power, +/-15%
// on I/O and termination, and +/-10% on background and refresh.
func CalVendor() Calibration {
	c := Calibration{Name: "vendor"}
	dyn := Factor{Min: 0.80, Nom: 1.00, Max: 1.20}
	io := Factor{Min: 0.85, Nom: 1.00, Max: 1.15}
	bg := Factor{Min: 0.90, Nom: 1.00, Max: 1.10}
	c.Factors[CompActPre] = dyn
	c.Factors[CompRd] = dyn
	c.Factors[CompWr] = dyn
	c.Factors[CompRdIO] = io
	c.Factors[CompWrODT] = io
	c.Factors[CompRdTerm] = io
	c.Factors[CompWrTerm] = io
	c.Factors[CompBG] = bg
	c.Factors[CompRef] = bg
	return c
}

// CalGhose returns the measurement-informed calibration following the
// directional findings of Ghose et al. (arXiv:1807.05102): real devices
// draw markedly less activate/precharge and standby current than the
// worst-case datasheet IDD values (nominal corrections below 1.0), while
// read — and especially write — array power varies with the data pattern
// and can exceed the datasheet figure (bands reaching above 1.0). The
// numbers are rounded characterizations of their published DDR3L results,
// not a device-specific fit; see the EXPERIMENTS.md accuracy caveats.
func CalGhose() Calibration {
	c := Calibration{Name: "ghose"}
	c.Factors[CompActPre] = Factor{Min: 0.60, Nom: 0.80, Max: 1.00}
	c.Factors[CompRd] = Factor{Min: 0.85, Nom: 1.10, Max: 1.45}
	c.Factors[CompWr] = Factor{Min: 0.80, Nom: 1.05, Max: 1.35}
	c.Factors[CompRdIO] = Factor{Min: 0.90, Nom: 1.00, Max: 1.10}
	c.Factors[CompWrODT] = Factor{Min: 0.90, Nom: 1.00, Max: 1.10}
	c.Factors[CompRdTerm] = Factor{Min: 0.90, Nom: 1.00, Max: 1.10}
	c.Factors[CompWrTerm] = Factor{Min: 0.90, Nom: 1.00, Max: 1.10}
	c.Factors[CompBG] = Factor{Min: 0.70, Nom: 0.90, Max: 1.00}
	c.Factors[CompRef] = Factor{Min: 0.75, Nom: 0.95, Max: 1.05}
	return c
}

// WithSigma returns a copy of the calibration with the per-device variation
// fraction set (0.05 widens every band by +/-5%). Negative values are
// clamped to 0.
func (c Calibration) WithSigma(sigma float64) Calibration {
	if sigma < 0 {
		sigma = 0
	}
	c.Sigma = sigma
	return c
}

// factor returns component i's band with the device sigma folded in.
func (c Calibration) factor(i Component) Factor {
	f := c.Factors[i]
	if c.Sigma > 0 {
		f.Min *= 1 - c.Sigma
		f.Max *= 1 + c.Sigma
	}
	return f
}

// Component returns the calibrated band of one component of b.
func (c Calibration) Component(b Breakdown, comp Component) Band {
	if comp < 0 || comp >= NumComponents {
		return Band{}
	}
	f := c.factor(comp)
	v := b[comp]
	return Band{Min: v * f.Min, Nom: v * f.Nom, Max: v * f.Max}
}

// Total returns the calibrated band of b's total energy: each component is
// scaled by its own factor band and the extremes are summed. Summing
// per-component extremes assumes the component errors can align in the
// worst case, so Total is a conservative (widest) band.
func (c Calibration) Total(b Breakdown) Band {
	var t Band
	for i := Component(0); i < NumComponents; i++ {
		cb := c.Component(b, i)
		t.Min += cb.Min
		t.Nom += cb.Nom
		t.Max += cb.Max
	}
	return t
}

// Apply returns three full breakdowns — b scaled by every component's Min,
// Nom, and Max factor respectively — for reports that want a calibrated
// per-component table rather than a single band.
func (c Calibration) Apply(b Breakdown) (min, nom, max Breakdown) {
	for i := Component(0); i < NumComponents; i++ {
		f := c.factor(i)
		min[i] = b[i] * f.Min
		nom[i] = b[i] * f.Nom
		max[i] = b[i] * f.Max
	}
	return min, nom, max
}

// Calibrations lists the built-in preset names accepted by
// ParseCalibration.
func Calibrations() []string { return []string{"none", "vendor", "ghose"} }

// ParseCalibration resolves a calibration spec: a preset name ("none",
// "vendor", "ghose"), optionally suffixed with ":P" where P is a
// per-device variation percentage, e.g. "ghose:5" for the Ghose preset
// widened by +/-5% device sigma.
func ParseCalibration(spec string) (Calibration, error) {
	name, sig, hasSigma := strings.Cut(spec, ":")
	var c Calibration
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "none":
		c = CalNone()
	case "vendor":
		c = CalVendor()
	case "ghose":
		c = CalGhose()
	default:
		return Calibration{}, fmt.Errorf("unknown power calibration %q (want one of %s)",
			name, strings.Join(Calibrations(), ", "))
	}
	if hasSigma {
		pct, err := strconv.ParseFloat(strings.TrimSpace(sig), 64)
		if err != nil || pct < 0 || pct > 100 {
			return Calibration{}, fmt.Errorf("bad device sigma %q in calibration spec %q (want a percentage 0..100)", sig, spec)
		}
		c = c.WithSigma(pct / 100)
	}
	return c, nil
}

package power

import (
	"math"
	"testing"
)

func TestCalNoneIsIdentity(t *testing.T) {
	var b Breakdown
	for i := range b {
		b[i] = float64(i+1) * 100
	}
	band := CalNone().Total(b)
	if band.Min != b.Total() || band.Nom != b.Total() || band.Max != b.Total() {
		t.Fatalf("CalNone band %+v != point %v", band, b.Total())
	}
	min, nom, max := CalNone().Apply(b)
	if min != b || nom != b || max != b {
		t.Fatalf("CalNone Apply changed the breakdown")
	}
}

func TestBandOrdering(t *testing.T) {
	var b Breakdown
	for i := range b {
		b[i] = 1000
	}
	for _, cal := range []Calibration{CalNone(), CalVendor(), CalGhose(), CalGhose().WithSigma(0.05)} {
		band := cal.Total(b)
		if !(band.Min <= band.Nom && band.Nom <= band.Max) {
			t.Errorf("%s: band not ordered: %+v", cal.Name, band)
		}
		for c := Component(0); c < NumComponents; c++ {
			cb := cal.Component(b, c)
			if !(cb.Min <= cb.Nom && cb.Nom <= cb.Max) {
				t.Errorf("%s/%s: component band not ordered: %+v", cal.Name, c, cb)
			}
		}
	}
}

func TestGhoseDirectionality(t *testing.T) {
	// The Ghose corrections must preserve the paper's measured directions:
	// activate/precharge and background nominal corrections below 1 (datasheet
	// IDDs are worst-case), read/write bands reaching above 1 (data-dependent).
	c := CalGhose()
	if c.Factors[CompActPre].Nom >= 1 {
		t.Errorf("ACT-PRE nominal correction should be < 1, got %v", c.Factors[CompActPre].Nom)
	}
	if c.Factors[CompBG].Nom >= 1 {
		t.Errorf("BG nominal correction should be < 1, got %v", c.Factors[CompBG].Nom)
	}
	if c.Factors[CompRd].Max <= 1 || c.Factors[CompWr].Max <= 1 {
		t.Errorf("RD/WR max corrections should exceed 1, got %v / %v",
			c.Factors[CompRd].Max, c.Factors[CompWr].Max)
	}
}

func TestSigmaWidensBand(t *testing.T) {
	var b Breakdown
	b[CompActPre] = 1000
	narrow := CalGhose().Total(b)
	wide := CalGhose().WithSigma(0.10).Total(b)
	if !(wide.Min < narrow.Min && wide.Max > narrow.Max) {
		t.Fatalf("sigma did not widen the band: narrow %+v wide %+v", narrow, wide)
	}
	if wide.Nom != narrow.Nom {
		t.Fatalf("sigma moved the nominal: %v -> %v", narrow.Nom, wide.Nom)
	}
}

func TestTotalSumsComponents(t *testing.T) {
	var b Breakdown
	for i := range b {
		b[i] = float64(i*i + 1)
	}
	cal := CalGhose().WithSigma(0.03)
	var want Band
	for c := Component(0); c < NumComponents; c++ {
		cb := cal.Component(b, c)
		want.Min += cb.Min
		want.Nom += cb.Nom
		want.Max += cb.Max
	}
	got := cal.Total(b)
	for _, pair := range [][2]float64{{got.Min, want.Min}, {got.Nom, want.Nom}, {got.Max, want.Max}} {
		if math.Abs(pair[0]-pair[1]) > 1e-9 {
			t.Fatalf("Total %+v != summed components %+v", got, want)
		}
	}
}

func TestParseCalibration(t *testing.T) {
	for _, tc := range []struct {
		spec  string
		name  string
		sigma float64
		ok    bool
	}{
		{"none", "none", 0, true},
		{"", "none", 0, true},
		{"vendor", "vendor", 0, true},
		{"ghose", "ghose", 0, true},
		{"GHOSE", "ghose", 0, true},
		{"ghose:5", "ghose", 0.05, true},
		{"vendor:12.5", "vendor", 0.125, true},
		{"bogus", "", 0, false},
		{"ghose:-1", "", 0, false},
		{"ghose:abc", "", 0, false},
	} {
		c, err := ParseCalibration(tc.spec)
		if tc.ok != (err == nil) {
			t.Errorf("ParseCalibration(%q) err = %v, want ok=%v", tc.spec, err, tc.ok)
			continue
		}
		if !tc.ok {
			continue
		}
		if c.Name != tc.name || math.Abs(c.Sigma-tc.sigma) > 1e-12 {
			t.Errorf("ParseCalibration(%q) = {%s sigma=%v}, want {%s sigma=%v}",
				tc.spec, c.Name, c.Sigma, tc.name, tc.sigma)
		}
	}
}

func TestBackgroundStatePowers(t *testing.T) {
	// The five low-power background states must order by depth.
	a := NewAccumulator()
	const ns = 1000
	energyOf := func(s RankState) float64 {
		a.Reset()
		a.Background(s, ns)
		return a.Component(CompBG)
	}
	act := energyOf(RankActive)
	pre := energyOf(RankPrecharged)
	apd := energyOf(RankActivePD)
	ppd := energyOf(RankPoweredDown)
	sr := energyOf(RankSelfRefresh)
	slow := energyOf(RankPoweredDownSlow)
	if !(act > pre && pre > apd && apd > ppd && ppd > sr && sr > slow) {
		t.Fatalf("state powers not ordered: act=%v pre=%v apd=%v ppd=%v sr=%v slow=%v",
			act, pre, apd, ppd, sr, slow)
	}
}

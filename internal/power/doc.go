// Package power implements the DRAM power and energy model of the PRA paper
// (Section 5.1.1): the Micron-style per-state power accounting (TN-41-01)
// using the per-chip milliwatt figures the paper publishes in Table 3, the
// CACTI-3DD-derived MAT-level activation energy breakdown of Table 2 and
// Figure 9, the IDD-based pure-activation-power derivation of Equations 1
// and 2, and the partial-row scaling that projects the MAT energy
// proportionality onto the industrial P_ACT parameter.
//
// All energies are accounted in picojoules (mW x ns = pJ) and all rates in
// per-chip milliwatts; callers multiply by the number of chips involved.
package power

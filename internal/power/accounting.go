package power

import "fmt"

// Component identifies one slice of the DRAM power breakdown, following the
// legend of Figure 2 (with the I/O slice kept at its natural finer grain:
// read I/O, write ODT, and read/write termination, which Figure 12(b)
// aggregates as "I/O").
type Component int

const (
	CompActPre Component = iota // row activation + bank precharge pairs
	CompRd                      // column read array power
	CompWr                      // column write array power
	CompRdIO                    // read output drivers
	CompWrODT                   // write on-die termination
	CompRdTerm                  // read termination on the other rank
	CompWrTerm                  // write termination on the other rank
	CompBG                      // background / standby
	CompRef                     // refresh

	// NumComponents counts the components above; Breakdown is indexed by
	// Component and sized by it.
	NumComponents
)

var componentNames = [NumComponents]string{
	"ACT-PRE", "RD", "WR", "RD I/O", "WR ODT", "RD TERM", "WR TERM", "BG", "REF",
}

// String returns the component's table label (e.g. "ACT-PRE", "BG").
func (c Component) String() string {
	if c < 0 || c >= NumComponents {
		return fmt.Sprintf("Component(%d)", int(c))
	}
	return componentNames[c]
}

// Breakdown is an energy breakdown in picojoules.
type Breakdown [NumComponents]float64

// Total returns the summed energy in pJ.
func (b Breakdown) Total() float64 {
	var t float64
	for _, v := range b {
		t += v
	}
	return t
}

// IO returns the aggregate I/O energy (read I/O + write ODT + read/write
// termination), the grouping used in Figure 12(b).
func (b Breakdown) IO() float64 {
	return b[CompRdIO] + b[CompWrODT] + b[CompRdTerm] + b[CompWrTerm]
}

// Add returns the element-wise sum of two breakdowns.
func (b Breakdown) Add(o Breakdown) Breakdown {
	for i := range b {
		b[i] += o[i]
	}
	return b
}

// Share returns component c's fraction of the total (0 when total is 0).
func (b Breakdown) Share(c Component) float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return b[c] / t
}

// Accumulator accrues DRAM energy per component. One Accumulator covers one
// channel (all its ranks); the simulator sums accumulators for system
// totals. The zero value is ready to use after setting the parameter
// fields, but NewAccumulator wires the defaults.
type Accumulator struct {
	Chip ChipPowers
	MAT  MATEnergy

	// ChipsPerRank is how many devices act in lockstep per rank (8 for the
	// baseline x8 rank with a 64-bit bus).
	ChipsPerRank int
	// OtherRanks is how many other ranks on the channel terminate a
	// transfer (1 for the 2-rank channels of the baseline).
	OtherRanks int

	// LinearActScale switches partial-activation energy from the
	// MAT-level curve (shared activation bus and predecoder keep partial
	// rows from scaling linearly) to a linear per-chip scale. Inter-chip
	// schemes (SDS) skip whole devices, each of which carries its own
	// shared overheads, so their saving is linear in skipped chips.
	LinearActScale bool

	// ECCChips counts extra devices per rank storing ECC codes (1 on an
	// x72 DIMM). Per Section 4.2, the ECC chip's PRA command pin is tied
	// high: it always activates a full row and always transfers its data,
	// regardless of the PRA mask on the data chips.
	ECCChips int

	energy Breakdown
}

// NewAccumulator returns an accumulator with the paper's baseline
// parameters.
func NewAccumulator() *Accumulator {
	return &Accumulator{
		Chip:         DefaultChipPowers(),
		MAT:          DefaultMATEnergy(),
		ChipsPerRank: 8,
		OtherRanks:   1,
	}
}

// ActPowerScaled returns the per-chip activation power (mW) of a g/8
// partial activation under the MAT-energy scaling. It prefers the published
// Table 3 series for the plain-DRAM granularities and falls back to the
// analytic scale (used for Half-DRAM variants, which Table 3 doesn't
// enumerate).
func (a *Accumulator) ActPowerScaled(g int, halfDRAM bool) float64 {
	if g <= 0 {
		return 0
	}
	if g > 8 {
		g = 8
	}
	if a.LinearActScale {
		return a.Chip.Act[7] * float64(g) / 8
	}
	if !halfDRAM {
		return a.Chip.Act[g-1]
	}
	return a.Chip.Act[7] * a.MAT.ScaleGranularity(g, true)
}

// Activation charges one ACT-PRE pair at g/8 granularity. tRCns is the row
// cycle time in nanoseconds: the Micron model folds activation and
// precharge energy into P_ACT over tRC (Section 5.1.1). The ECC chip, when
// present, always activates fully.
func (a *Accumulator) Activation(g int, halfDRAM bool, tRCns float64) {
	e := a.ActPowerScaled(g, halfDRAM) * tRCns * float64(a.ChipsPerRank)
	if a.ECCChips > 0 {
		e += a.ActPowerScaled(8, halfDRAM) * tRCns * float64(a.ECCChips)
	}
	a.energy[CompActPre] += e
}

// ReadBurst charges one column read of burstNs on the data bus: array read
// power and read I/O on the selected rank, read termination on the other
// ranks.
func (a *Accumulator) ReadBurst(burstNs float64) {
	n := float64(a.ChipsPerRank + a.ECCChips)
	a.energy[CompRd] += a.Chip.Rd * burstNs * n
	a.energy[CompRdIO] += a.Chip.RdIO * burstNs * n
	a.energy[CompRdTerm] += a.Chip.RdTerm * burstNs * n * float64(a.OtherRanks)
}

// WriteBurst charges one column write of burstNs. frac is the fraction of
// the line's words actually driven on the bus: PRA transfers only dirty
// words, so array write, ODT, and termination energy all scale with frac
// (Section 4.1.2 / Figure 12(b)). Conventional schemes pass frac = 1.
func (a *Accumulator) WriteBurst(burstNs, frac float64) {
	if frac < 0 {
		frac = 0
	} else if frac > 1 {
		frac = 1
	}
	// Data chips transfer only the masked fraction; the ECC chip always
	// receives its full data (its PRA pin is tied high).
	n := float64(a.ChipsPerRank)*frac + float64(a.ECCChips)
	a.energy[CompWr] += a.Chip.Wr * burstNs * n
	a.energy[CompWrODT] += a.Chip.WrODT * burstNs * n
	a.energy[CompWrTerm] += a.Chip.WrTerm * burstNs * n * float64(a.OtherRanks)
}

// RankState describes a rank's background-power state for one accounting
// interval.
type RankState int

const (
	RankActive          RankState = iota // at least one bank open: ACT STBY
	RankPrecharged                       // all banks idle, CKE high: PRE STBY
	RankPoweredDown                      // fast-exit precharge power-down: PRE PDN
	RankActivePD                         // active power-down (banks open, CKE low): ACT PDN
	RankPoweredDownSlow                  // slow-exit precharge power-down (DLL frozen)
	RankSelfRefresh                      // self-refresh (internal refresh included)
)

// Background charges ns nanoseconds of standby power for one rank in the
// given state. Self-refresh intervals are charged at the IDD6-derived
// SelfRef power only — the internally generated refresh bursts are folded
// into that figure, so no separate Refresh charge applies while a rank
// self-refreshes.
func (a *Accumulator) Background(s RankState, ns float64) {
	var p float64
	switch s {
	case RankActive:
		p = a.Chip.ActStby
	case RankPrecharged:
		p = a.Chip.PreStby
	case RankActivePD:
		p = a.Chip.ActPdn
	case RankPoweredDownSlow:
		p = a.Chip.PrePdnSlow
	case RankSelfRefresh:
		p = a.Chip.SelfRef
	default:
		p = a.Chip.PrePdn
	}
	a.energy[CompBG] += p * ns * float64(a.ChipsPerRank+a.ECCChips)
}

// Refresh charges one refresh of tRFCns on a rank. The refresh power is
// charged on top of background for the duration of tRFC.
func (a *Accumulator) Refresh(tRFCns float64) {
	a.energy[CompRef] += a.Chip.Ref * tRFCns * float64(a.ChipsPerRank+a.ECCChips)
}

// Energy returns the accumulated breakdown in pJ.
func (a *Accumulator) Energy() Breakdown { return a.energy }

// Component returns the accumulated energy of one component in pJ — the
// live-probe accessor the telemetry recorder samples at epoch boundaries
// (cheaper than copying the whole Breakdown per probe).
func (a *Accumulator) Component(c Component) float64 {
	if c < 0 || c >= NumComponents {
		return 0
	}
	return a.energy[c]
}

// TotalEnergy returns the total accumulated energy in pJ.
func (a *Accumulator) TotalEnergy() float64 { return a.energy.Total() }

// AvgPowerMW returns the average power over a runtime in nanoseconds
// (pJ / ns = mW).
func (a *Accumulator) AvgPowerMW(runtimeNs float64) float64 {
	if runtimeNs <= 0 {
		return 0
	}
	return a.energy.Total() / runtimeNs
}

// Reset clears the accumulated energy.
func (a *Accumulator) Reset() { a.energy = Breakdown{} }

package power

// ChipPowers holds the per-chip power parameters of the baseline 2Gb x8
// DDR3-1600 device, in milliwatts, exactly as published in Table 3 of the
// paper ("Power (mW)" block).
type ChipPowers struct {
	PreStby float64 // PRE STBY: precharge standby (all banks idle, CKE high)
	PrePdn  float64 // PRE PDN: fast-exit precharge power-down (CKE low, DLL on)
	Ref     float64 // REF: refresh power during tRFC
	ActStby float64 // ACT STBY: active standby (>=1 bank open)

	// The deeper low-power states are not part of the paper's Table 3 (the
	// paper models only fast-exit precharge power-down); the values below
	// are derived from the same 2Gb x8 DDR3-1600 datasheet current set at
	// VDD = 1.5V so that the five background states order consistently:
	// ActStby > PreStby > ActPdn > PrePdn > SelfRef > PrePdnSlow.
	ActPdn     float64 // ACT PDN: active power-down (CKE low, banks open; IDD3P)
	PrePdnSlow float64 // PRE PDN SLOW: slow-exit precharge power-down, DLL frozen (IDD2P0)
	SelfRef    float64 // SELF REF: self-refresh, internal refresh bursts included (IDD6)
	Rd         float64 // RD: column-read array power while bursting
	Wr         float64 // WR: column-write array power while bursting
	RdIO       float64 // RD I/O: output driver power while bursting
	WrODT      float64 // WR ODT: on-die termination power while receiving data
	RdTerm     float64 // RD TERM: termination of reads on the other rank
	WrTerm     float64 // WR TERM: termination of writes on the other rank

	// Act[g-1] is the activation power at g/8-row granularity, g = 1..8.
	// Act[7] is the conventional full-row activation power P_ACT from
	// Equation 2; the partial entries follow the MAT-energy scaling.
	Act [8]float64
}

// DefaultChipPowers returns the Table 3 values for the 2Gb x8 DDR3-1600 chip.
func DefaultChipPowers() ChipPowers {
	return ChipPowers{
		PreStby: 27,
		PrePdn:  18,
		Ref:     210,
		ActStby: 42,
		// Non-Table-3 states, datasheet-derived (see ChipPowers):
		// IDD3P = 16mA, IDD2P0 = 10mA, IDD6 = 11mA at VDD = 1.5V.
		ActPdn:     24,
		PrePdnSlow: 15,
		SelfRef:    16.5,
		Rd:         78,
		Wr:         93,
		RdIO:       4.6,
		WrODT:      21.2,
		RdTerm:     15.5,
		WrTerm:     15.4,
		Act:        [8]float64{3.7, 6.4, 9.1, 11.6, 14.3, 16.9, 19.6, 22.2},
	}
}

// IDD holds the DDR3 current parameters used by Equation 1 to derive the
// pure activation power from datasheet currents. The values are chosen to
// be mutually consistent with the published ACT STBY (42mW => IDD3N=28mA),
// PRE STBY (27mW => IDD2N=18mA) and P_ACT (22.2mW => IDD0=40mA) figures at
// VDD=1.5V.
type IDD struct {
	VDD   float64 // volts
	IDD0  float64 // mA, activate-precharge current over tRC
	IDD2N float64 // mA, precharge standby current
	IDD3N float64 // mA, active standby current
}

// DefaultIDD returns the current set consistent with Table 3.
func DefaultIDD() IDD {
	return IDD{VDD: 1.5, IDD0: 40, IDD2N: 18, IDD3N: 28}
}

// ActCurrent implements Equation 1: the pure activation current is IDD0
// minus the background current that flows anyway during the row cycle
// (IDD3N while the row is open for tRAS, IDD2N for the remaining
// tRC - tRAS of the precharge phase).
func (p IDD) ActCurrent(tRAS, tRC float64) float64 {
	return p.IDD0 - (p.IDD3N*tRAS+p.IDD2N*(tRC-tRAS))/tRC
}

// ActPower implements Equation 2: P_ACT = VDD x I_ACT, in mW when currents
// are in mA.
func (p IDD) ActPower(tRAS, tRC float64) float64 {
	return p.VDD * p.ActCurrent(tRAS, tRC)
}

// MATEnergy is the CACTI-3DD row-activation energy breakdown of the 2Gb x8
// DDR3-1600 chip at the 20nm node (Table 2), in picojoules.
type MATEnergy struct {
	LocalBitline   float64 // per MAT
	LocalSenseAmp  float64 // per MAT
	LocalWordline  float64 // per MAT
	RowDecoder     float64 // per MAT (local row decoder)
	ActivationBus  float64 // per bank, shared across MATs
	RowPredecoder  float64 // per bank, shared
	MATsPerRow     int     // MATs activated by a conventional full-row ACT
	MATsPerPRAStep int     // MATs per PRA mask bit (a group of two MATs)
}

// DefaultMATEnergy returns the Table 2 numbers.
func DefaultMATEnergy() MATEnergy {
	return MATEnergy{
		LocalBitline:   15.583,
		LocalSenseAmp:  1.257,
		LocalWordline:  0.046,
		RowDecoder:     0.035,
		ActivationBus:  17.944,
		RowPredecoder:  0.072,
		MATsPerRow:     16,
		MATsPerPRAStep: 2,
	}
}

// PerMAT returns the activation energy spent inside one MAT (Table 2's
// "Total row activation energy per MAT": 16.921 pJ).
func (m MATEnergy) PerMAT() float64 {
	return m.LocalBitline + m.LocalSenseAmp + m.LocalWordline + m.RowDecoder
}

// Shared returns the per-bank energy shared across all MATs of the
// sub-array (activation bus + row predecoder: 18.016 pJ).
func (m MATEnergy) Shared() float64 { return m.ActivationBus + m.RowPredecoder }

// EnergyMATs returns the activation energy when n MAT-equivalents are
// activated (Figure 9). n = MATsPerRow reproduces Table 2's "Total row
// activation energy per bank" (288.752 pJ). n = 0 costs nothing: the bank
// was never activated.
func (m MATEnergy) EnergyMATs(n int) float64 {
	if n <= 0 {
		return 0
	}
	return float64(n)*m.PerMAT() + m.Shared()
}

// FullEnergy is the conventional full-row activation energy per bank.
func (m MATEnergy) FullEnergy() float64 { return m.EnergyMATs(m.MATsPerRow) }

// Scale returns the ratio of the activation energy with n MAT-equivalents
// to the full-row energy. This is the "scaling factor of activation energy
// projected onto the industrial power consumption parameter" of Section
// 5.1.1: P_ACT(partial) = Scale x P_ACT(full). Because of the shared
// activation bus and row predecoder the ratio at half the MATs stays above
// 0.5 — the effect Figure 9 calls out.
func (m MATEnergy) Scale(n int) float64 {
	return m.EnergyMATs(n) / m.FullEnergy()
}

// ScaleGranularity returns the activation-power scale for a g/8 partial row
// activation (g = 1..8, selecting 2g MATs). When halfDRAM is set the scheme
// activates only half of every selected MAT's bitlines, which the model
// treats as g MAT-equivalents instead of 2g.
func (m MATEnergy) ScaleGranularity(g int, halfDRAM bool) float64 {
	if g <= 0 {
		return 0
	}
	if g > 8 {
		g = 8
	}
	n := g * m.MATsPerPRAStep
	if halfDRAM {
		n /= 2
	}
	return m.Scale(n)
}

// DieArea holds the Table 2 area breakdown of the 2Gb chip, in mm^2, plus
// the PRA hardware-overhead constants of Section 4.2 used in the Table 2
// experiment report.
type DieArea struct {
	DRAMCell            float64
	SenseAmplifier      float64
	RowPredecoder       float64
	LocalWordlineDriver float64
	TotalChip           float64 // total area including periphery

	PRALatchAreaUm2     float64 // one 8-bit PRA latch, 20nm
	PRALatchPowerUW     float64 // per row activation
	PRALatchAreaPct     float64 // eight latches vs whole die
	PRALatchPowerPct    float64 // vs activation power
	WordlineGateAreaPct float64 // AND gates on local wordlines
}

// DefaultDieArea returns the published Table 2 / Section 4.2 numbers.
func DefaultDieArea() DieArea {
	return DieArea{
		DRAMCell:            4.677,
		SenseAmplifier:      1.909,
		RowPredecoder:       0.067,
		LocalWordlineDriver: 1.617,
		TotalChip:           11.884,
		PRALatchAreaUm2:     1.97,
		PRALatchPowerUW:     3.8,
		PRALatchAreaPct:     0.13,
		PRALatchPowerPct:    0.017,
		WordlineGateAreaPct: 3.0,
	}
}

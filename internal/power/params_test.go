package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMATEnergyReproducesTable2(t *testing.T) {
	m := DefaultMATEnergy()
	if got, want := m.PerMAT(), 16.921; math.Abs(got-want) > 1e-9 {
		t.Errorf("per-MAT energy = %.3f pJ, want %.3f (Table 2)", got, want)
	}
	if got, want := m.Shared(), 18.016; math.Abs(got-want) > 1e-9 {
		t.Errorf("shared energy = %.3f pJ, want %.3f (Table 2)", got, want)
	}
	if got, want := m.FullEnergy(), 288.752; math.Abs(got-want) > 1e-3 {
		t.Errorf("full-row energy = %.3f pJ, want %.3f (Table 2)", got, want)
	}
}

// Figure 9: activation energy is affine in the number of MATs and halving
// the MATs does not halve the energy because of the shared structures.
func TestEnergyMATsFigure9Shape(t *testing.T) {
	m := DefaultMATEnergy()
	if m.EnergyMATs(0) != 0 {
		t.Error("zero MATs must cost zero")
	}
	prev := 0.0
	for n := 1; n <= 16; n++ {
		e := m.EnergyMATs(n)
		if e <= prev {
			t.Fatalf("energy not strictly increasing at n=%d", n)
		}
		prev = e
	}
	half := m.EnergyMATs(8) / m.FullEnergy()
	if half <= 0.5 {
		t.Errorf("half-MAT energy ratio = %.3f; must exceed 0.5 (shared structures, Fig. 9)", half)
	}
	if half > 0.60 {
		t.Errorf("half-MAT energy ratio = %.3f; too far above 0.5", half)
	}
}

// The analytic scaling must reproduce the published Table 3 activation
// power series (22.2, 19.6, 16.9, 14.3, 11.6, 9.1, 6.4, 3.7 mW) within
// rounding slack.
func TestScalingReproducesTable3ActSeries(t *testing.T) {
	m := DefaultMATEnergy()
	chip := DefaultChipPowers()
	full := chip.Act[7]
	for g := 1; g <= 8; g++ {
		derived := full * m.ScaleGranularity(g, false)
		published := chip.Act[g-1]
		if math.Abs(derived-published) > 0.35 {
			t.Errorf("g=%d/8: derived P_ACT %.2f mW vs published %.2f mW", g, derived, published)
		}
	}
}

func TestScaleGranularityBounds(t *testing.T) {
	m := DefaultMATEnergy()
	if m.ScaleGranularity(0, false) != 0 {
		t.Error("granularity 0 scales to 0")
	}
	if got := m.ScaleGranularity(8, false); math.Abs(got-1) > 1e-12 {
		t.Errorf("full granularity scale = %v, want 1", got)
	}
	if got := m.ScaleGranularity(9, false); math.Abs(got-1) > 1e-12 {
		t.Errorf("clamped granularity scale = %v, want 1", got)
	}
	// Half-DRAM at full row behaves like 8 MAT-equivalents.
	hd := m.ScaleGranularity(8, true)
	if math.Abs(hd-m.Scale(8)) > 1e-12 {
		t.Errorf("Half-DRAM full-row scale = %v, want Scale(8) = %v", hd, m.Scale(8))
	}
}

// Property: scaling is monotone in granularity and Half-DRAM never costs
// more than the plain scheme at the same granularity.
func TestScaleMonotoneProperty(t *testing.T) {
	m := DefaultMATEnergy()
	f := func(gRaw uint8, half bool) bool {
		g := int(gRaw%8) + 1
		s := m.ScaleGranularity(g, half)
		if s <= 0 || s > 1 {
			return false
		}
		if g < 8 && m.ScaleGranularity(g+1, half) < s {
			return false
		}
		return m.ScaleGranularity(g, true) <= m.ScaleGranularity(g, false)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Equations 1 and 2 must reproduce the published P_ACT = 22.2 mW with the
// published tRAS=28, tRC=39 cycles at 1.25 ns/cycle.
func TestIDDEquationsReproducePAct(t *testing.T) {
	idd := DefaultIDD()
	const tCK = 1.25
	p := idd.ActPower(28*tCK, 39*tCK)
	if math.Abs(p-22.2) > 0.15 {
		t.Errorf("Eq.1/2 P_ACT = %.2f mW, want 22.2 (Table 3)", p)
	}
	// Background figures must be consistent with the same current set.
	if got := idd.VDD * idd.IDD3N; math.Abs(got-42) > 1e-9 {
		t.Errorf("VDD*IDD3N = %.1f mW, want ACT STBY 42", got)
	}
	if got := idd.VDD * idd.IDD2N; math.Abs(got-27) > 1e-9 {
		t.Errorf("VDD*IDD2N = %.1f mW, want PRE STBY 27", got)
	}
}

func TestIDDActCurrentShape(t *testing.T) {
	idd := DefaultIDD()
	// Longer tRAS leaves more background in the row cycle, so the pure
	// activation current shrinks.
	short := idd.ActCurrent(20, 39)
	long := idd.ActCurrent(35, 39)
	if long >= short {
		t.Errorf("ActCurrent must decrease with tRAS: %.2f !< %.2f", long, short)
	}
}

func TestDefaultDieArea(t *testing.T) {
	a := DefaultDieArea()
	itemized := a.DRAMCell + a.SenseAmplifier + a.RowPredecoder + a.LocalWordlineDriver
	if itemized >= a.TotalChip {
		t.Errorf("itemized area %.3f must be below total die %.3f (periphery exists)", itemized, a.TotalChip)
	}
	if a.PRALatchAreaPct > 1 || a.WordlineGateAreaPct > 5 {
		t.Error("PRA overheads must stay small (Section 4.2)")
	}
}

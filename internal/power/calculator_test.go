package power

import (
	"math"
	"testing"
	"testing/quick"
)

func idleWorkload() Workload {
	return Workload{WriteFrac: 1}
}

func TestCalculatorIdleSystem(t *testing.T) {
	c := NewCalculator()
	b, err := c.Estimate(idleWorkload())
	if err != nil {
		t.Fatal(err)
	}
	// Idle: only precharge-standby background and refresh.
	wantBG := 27.0 * 8 * 4
	if math.Abs(b[CompBG]-wantBG) > 1e-9 {
		t.Errorf("idle BG = %v mW, want %v", b[CompBG], wantBG)
	}
	wantRef := 210.0 * (128.0 / 6240.0) * 8 * 4
	if math.Abs(b[CompRef]-wantRef) > 1e-6 {
		t.Errorf("idle REF = %v mW, want %v", b[CompRef], wantRef)
	}
	if b[CompActPre] != 0 || b[CompRd] != 0 || b[CompWr] != 0 {
		t.Error("idle system must have no dynamic power")
	}
}

func TestCalculatorPowerDownSavesBackground(t *testing.T) {
	c := NewCalculator()
	idle, _ := c.Estimate(idleWorkload())
	pdn := idleWorkload()
	pdn.PowerDownFrac = 1
	down, err := c.Estimate(pdn)
	if err != nil {
		t.Fatal(err)
	}
	if down[CompBG] >= idle[CompBG] {
		t.Error("power-down must reduce background power")
	}
	if want := 18.0 * 8 * 4; math.Abs(down[CompBG]-want) > 1e-9 {
		t.Errorf("PDN BG = %v, want %v", down[CompBG], want)
	}
}

func TestCalculatorActivationScaling(t *testing.T) {
	c := NewCalculator()
	base := idleWorkload()
	base.WritesPerNs = 0.1
	base.ActiveFrac = 1
	full, err := c.Estimate(base)
	if err != nil {
		t.Fatal(err)
	}
	partial := base
	partial.ActGranularity[0] = 1 // all 1/8-row activations
	partial.WriteFrac = 0.125
	pra, err := c.Estimate(partial)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := pra[CompActPre] / full[CompActPre]; math.Abs(ratio-3.7/22.2) > 1e-9 {
		t.Errorf("1/8 ACT power ratio = %v, want %v", ratio, 3.7/22.2)
	}
	if ratio := pra[CompWrODT] / full[CompWrODT]; math.Abs(ratio-0.125) > 1e-9 {
		t.Errorf("write ODT ratio = %v, want 0.125", ratio)
	}
}

func TestCalculatorRowHitsRemoveActivations(t *testing.T) {
	c := NewCalculator()
	w := idleWorkload()
	w.ReadsPerNs = 0.2
	w.ActiveFrac = 1
	miss, _ := c.Estimate(w)
	w.RowHitRead = 0.75
	hit, err := c.Estimate(w)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := hit[CompActPre] / miss[CompActPre]; math.Abs(ratio-0.25) > 1e-9 {
		t.Errorf("hit-rate ACT scaling = %v, want 0.25", ratio)
	}
	// Column power unchanged by hit rate.
	if hit[CompRd] != miss[CompRd] {
		t.Error("read array power must not depend on hit rate")
	}
}

func TestCalculatorValidation(t *testing.T) {
	c := NewCalculator()
	bad := idleWorkload()
	bad.RowHitRead = 1.5
	if _, err := c.Estimate(bad); err == nil {
		t.Error("hit rate > 1 must fail")
	}
	bad = idleWorkload()
	bad.ActiveFrac, bad.PowerDownFrac = 0.7, 0.7
	if _, err := c.Estimate(bad); err == nil {
		t.Error("background fractions > 1 must fail")
	}
	bad = idleWorkload()
	bad.ReadsPerNs = -1
	if _, err := c.Estimate(bad); err == nil {
		t.Error("negative rates must fail")
	}
	bad = idleWorkload()
	bad.ActGranularity[0], bad.ActGranularity[7] = 0.9, 0.9
	if _, err := c.Estimate(bad); err == nil {
		t.Error("granularity shares > 1 must fail")
	}
}

// Property: estimated power is monotone in traffic and never negative.
func TestCalculatorMonotoneProperty(t *testing.T) {
	c := NewCalculator()
	f := func(r8, w8, hit8 uint8) bool {
		w := idleWorkload()
		w.ReadsPerNs = float64(r8) / 256
		w.WritesPerNs = float64(w8) / 256
		w.RowHitRead = float64(hit8) / 256
		w.ActiveFrac = 0.5
		b, err := c.Estimate(w)
		if err != nil {
			return false
		}
		if b.Total() <= 0 {
			return false
		}
		w2 := w
		w2.ReadsPerNs *= 2
		b2, err := c.Estimate(w2)
		if err != nil {
			return false
		}
		return b2.Total() >= b.Total()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWorkloadFromCounts(t *testing.T) {
	var gran [9]int64
	gran[1], gran[8] = 30, 70
	w := WorkloadFromCounts(1000, 200, 100, 50, 10, gran, 400, 800, 0.6, 0.2)
	if w.ReadsPerNs != 0.2 || w.WritesPerNs != 0.1 {
		t.Errorf("rates %v/%v", w.ReadsPerNs, w.WritesPerNs)
	}
	if w.RowHitRead != 0.25 || w.RowHitWrite != 0.1 {
		t.Errorf("hit rates %v/%v", w.RowHitRead, w.RowHitWrite)
	}
	if w.ActGranularity[0] != 0.3 || w.ActGranularity[7] != 0.7 {
		t.Errorf("granularity %v", w.ActGranularity)
	}
	if w.WriteFrac != 0.5 {
		t.Errorf("write frac %v", w.WriteFrac)
	}
	// Zero-division guards.
	z := WorkloadFromCounts(0, 0, 0, 0, 0, [9]int64{}, 0, 0, 0, 0)
	if z.ReadsPerNs != 0 || z.RowHitRead != 0 || z.WriteFrac != 1 {
		t.Errorf("zero counts mishandled: %+v", z)
	}
}

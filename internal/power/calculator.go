package power

import "fmt"

// Calculator is the closed-form DRAM power model — the role Micron's
// TN-41-01 spreadsheet plays in the paper's methodology. Given workload
// aggregates (request rates, row-buffer hit rates, granularity mix) it
// predicts the steady-state power breakdown analytically, without
// simulation. The experiment harness cross-validates it against the
// cycle-level simulator: the two share parameters but compute power along
// entirely independent paths, so agreement is a strong model check.
type Calculator struct {
	Chip ChipPowers
	MAT  MATEnergy
	IDD  IDD

	ChipsPerRank int
	ECCChips     int
	Ranks        int // total ranks across all channels

	TCKNs   float64 // memory clock period
	TRCns   float64 // row cycle time
	TRFCns  float64 // refresh cycle time
	TREFIns float64 // refresh interval
	BurstNs float64 // data-bus time per 64B transfer
}

// NewCalculator returns a calculator for the paper's baseline system
// (2 channels x 2 ranks x 8 chips of 2Gb x8 DDR3-1600).
func NewCalculator() *Calculator {
	const tck = 1.25
	return &Calculator{
		Chip:         DefaultChipPowers(),
		MAT:          DefaultMATEnergy(),
		IDD:          DefaultIDD(),
		ChipsPerRank: 8,
		Ranks:        4,
		TCKNs:        tck,
		TRCns:        39 * tck,
		TRFCns:       128 * tck,
		TREFIns:      6240 * tck,
		BurstNs:      4 * tck,
	}
}

// Workload describes the aggregate memory behaviour the calculator
// consumes. Rates are per nanosecond across the whole memory system.
type Workload struct {
	ReadsPerNs  float64
	WritesPerNs float64

	// RowHitRead/Write are the fractions of requests served from open
	// rows (no activation).
	RowHitRead  float64
	RowHitWrite float64

	// ActGranularity[g-1] is the fraction of *activations* opening g/8 of
	// a row. Zero value means all full-row.
	ActGranularity [8]float64

	// WriteFrac is the mean fraction of words driven per write burst
	// (1.0 conventionally; mean dirty-word fraction under PRA).
	WriteFrac float64

	// ActiveFrac is the fraction of time at least one bank is open per
	// rank; PowerDownFrac the fraction spent in precharge power-down.
	// The remainder idles in precharge standby.
	ActiveFrac    float64
	PowerDownFrac float64
}

// Validate reports the first inconsistency.
func (w Workload) Validate() error {
	if w.ReadsPerNs < 0 || w.WritesPerNs < 0 {
		return fmt.Errorf("power: negative request rates")
	}
	if w.RowHitRead < 0 || w.RowHitRead > 1 || w.RowHitWrite < 0 || w.RowHitWrite > 1 {
		return fmt.Errorf("power: hit rates must be within [0,1]")
	}
	if w.ActiveFrac < 0 || w.PowerDownFrac < 0 || w.ActiveFrac+w.PowerDownFrac > 1+1e-9 {
		return fmt.Errorf("power: background fractions must partition [0,1]")
	}
	var sum float64
	for _, v := range w.ActGranularity {
		if v < 0 {
			return fmt.Errorf("power: negative granularity share")
		}
		sum += v
	}
	if sum > 1+1e-9 {
		return fmt.Errorf("power: granularity shares sum to %v > 1", sum)
	}
	return nil
}

// Estimate returns the predicted power breakdown in mW (energy per ns).
func (c *Calculator) Estimate(w Workload) (Breakdown, error) {
	var b Breakdown
	if err := w.Validate(); err != nil {
		return b, err
	}
	chips := float64(c.ChipsPerRank)
	ecc := float64(c.ECCChips)
	acc := Accumulator{Chip: c.Chip, MAT: c.MAT, ChipsPerRank: c.ChipsPerRank, ECCChips: c.ECCChips}

	// Activations: misses activate; each ACT-PRE pair costs P_ACT(g)*tRC.
	actRate := w.ReadsPerNs*(1-w.RowHitRead) + w.WritesPerNs*(1-w.RowHitWrite)
	gran := w.ActGranularity
	var sum float64
	for _, v := range gran {
		sum += v
	}
	if sum == 0 {
		gran[7] = 1 // all full-row
	}
	for g := 1; g <= 8; g++ {
		share := gran[g-1]
		if share == 0 {
			continue
		}
		perAct := acc.ActPowerScaled(g, false)*c.TRCns*chips +
			acc.ActPowerScaled(8, false)*c.TRCns*ecc
		b[CompActPre] += actRate * share * perAct
	}

	// Column traffic: array power and I/O during bursts.
	rdBus := w.ReadsPerNs * c.BurstNs
	wrBus := w.WritesPerNs * c.BurstNs
	wf := w.WriteFrac
	if wf <= 0 {
		wf = 1
	}
	nChips := chips + ecc
	wrChips := chips*wf + ecc
	otherRanks := 1.0
	b[CompRd] = c.Chip.Rd * rdBus * nChips
	b[CompRdIO] = c.Chip.RdIO * rdBus * nChips
	b[CompRdTerm] = c.Chip.RdTerm * rdBus * nChips * otherRanks
	b[CompWr] = c.Chip.Wr * wrBus * wrChips
	b[CompWrODT] = c.Chip.WrODT * wrBus * wrChips
	b[CompWrTerm] = c.Chip.WrTerm * wrBus * wrChips * otherRanks

	// Background across all ranks.
	idleFrac := 1 - w.ActiveFrac - w.PowerDownFrac
	perRank := c.Chip.ActStby*w.ActiveFrac + c.Chip.PreStby*idleFrac + c.Chip.PrePdn*w.PowerDownFrac
	b[CompBG] = perRank * nChips * float64(c.Ranks)

	// Refresh: each rank refreshes every tREFI for tRFC at P_REF.
	b[CompRef] = c.Chip.Ref * (c.TRFCns / c.TREFIns) * nChips * float64(c.Ranks)

	return b, nil
}

// WorkloadFromCounts converts simulation-style counters into a Workload:
// counts over a window of runtimeNs. granularity is the activation
// histogram (index g = g/8 activations, index 0 unused).
func WorkloadFromCounts(runtimeNs float64, reads, writes, hitR, hitW int64,
	granularity [9]int64, wordsWritten, wordBudget int64,
	activeFrac, pdnFrac float64) Workload {
	w := Workload{
		ActiveFrac:    activeFrac,
		PowerDownFrac: pdnFrac,
		WriteFrac:     1,
	}
	if runtimeNs > 0 {
		w.ReadsPerNs = float64(reads) / runtimeNs
		w.WritesPerNs = float64(writes) / runtimeNs
	}
	if reads > 0 {
		w.RowHitRead = float64(hitR) / float64(reads)
	}
	if writes > 0 {
		w.RowHitWrite = float64(hitW) / float64(writes)
	}
	var acts int64
	for _, v := range granularity {
		acts += v
	}
	if acts > 0 {
		for g := 1; g <= 8; g++ {
			w.ActGranularity[g-1] = float64(granularity[g]) / float64(acts)
		}
	}
	if wordBudget > 0 {
		w.WriteFrac = float64(wordsWritten) / float64(wordBudget)
	}
	return w
}

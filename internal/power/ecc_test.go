package power

import (
	"math"
	"testing"
)

func TestECCChipAlwaysFullActivation(t *testing.T) {
	plain := NewAccumulator()
	ecc := NewAccumulator()
	ecc.ECCChips = 1
	const tRC = 48.75

	plain.Activation(1, false, tRC)
	ecc.Activation(1, false, tRC)
	// ECC adds one chip at the FULL activation power, not the partial.
	want := plain.Energy()[CompActPre] + 22.2*tRC
	if got := ecc.Energy()[CompActPre]; math.Abs(got-want) > 1e-6 {
		t.Errorf("ECC partial ACT energy = %v, want %v", got, want)
	}

	// For a full-row activation, ECC is just a ninth chip.
	plain.Reset()
	ecc.Reset()
	plain.Activation(8, false, tRC)
	ecc.Activation(8, false, tRC)
	if got, want := ecc.Energy()[CompActPre], plain.Energy()[CompActPre]*9/8; math.Abs(got-want) > 1e-6 {
		t.Errorf("ECC full ACT energy = %v, want %v", got, want)
	}
}

func TestECCChipAlwaysTransfersOnWrites(t *testing.T) {
	ecc := NewAccumulator()
	ecc.ECCChips = 1
	const burst = 5.0
	// A 1/8-word PRA write: data chips at 1/8, ECC chip at full.
	ecc.WriteBurst(burst, 0.125)
	want := 21.2 * burst * (8*0.125 + 1)
	if got := ecc.Energy()[CompWrODT]; math.Abs(got-want) > 1e-6 {
		t.Errorf("ECC write ODT = %v, want %v", got, want)
	}
}

func TestECCBackgroundAndRefreshScale(t *testing.T) {
	plain := NewAccumulator()
	ecc := NewAccumulator()
	ecc.ECCChips = 1
	plain.Background(RankPrecharged, 10)
	ecc.Background(RankPrecharged, 10)
	if got, want := ecc.TotalEnergy(), plain.TotalEnergy()*9/8; math.Abs(got-want) > 1e-9 {
		t.Errorf("ECC background = %v, want %v", got, want)
	}
	plain.Reset()
	ecc.Reset()
	plain.Refresh(160)
	ecc.Refresh(160)
	if got, want := ecc.TotalEnergy(), plain.TotalEnergy()*9/8; math.Abs(got-want) > 1e-9 {
		t.Errorf("ECC refresh = %v, want %v", got, want)
	}
}

func TestLinearActScale(t *testing.T) {
	a := NewAccumulator()
	a.LinearActScale = true
	for g := 1; g <= 8; g++ {
		want := 22.2 * float64(g) / 8
		if got := a.ActPowerScaled(g, false); math.Abs(got-want) > 1e-9 {
			t.Errorf("linear scale g=%d: %v, want %v", g, got, want)
		}
	}
}

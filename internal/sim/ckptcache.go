package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
)

// This file is the campaign half of warmup checkpointing (DESIGN.md §4e).
// The Runner memoizes one checkpoint per warmup fingerprint: the first run
// needing a fingerprint warms its own system, snapshots it, and publishes
// the bytes; every later run with the same fingerprint — same campaign or,
// with CkptDir, a later process — restores instead of re-warming. All
// reuse is validated by System.Restore (CRC, model version, fingerprint),
// and every failure path degrades to a cold warmup on the same system, so
// checkpointing can change wall-clock but never results (enforced by
// TestRunnerCheckpointIdentical).

// ckptStore persists warmup checkpoints as raw System.Checkpoint payloads
// under dir. Filenames are keyed by fingerprint and ModelVersion, so a
// model bump orphans old entries instead of loading them; the payload
// itself embeds both as well, and System.Restore re-checks them — the
// store never needs to trust a filename.
type ckptStore struct{ dir string }

func newCkptStore(dir string) *ckptStore { return &ckptStore{dir: dir} }

func (d *ckptStore) path(fp string) string {
	h := sha256.Sum256([]byte("ckpt|" + ModelVersion + "|" + fp))
	return filepath.Join(d.dir, hex.EncodeToString(h[:12])+".ckpt")
}

// load returns the stored checkpoint for a fingerprint. Any read failure
// is simply a miss; a stale or corrupt payload is caught later by
// System.Restore and falls back to a cold warmup.
func (d *ckptStore) load(fp string) ([]byte, bool) {
	raw, err := os.ReadFile(d.path(fp))
	if err != nil || len(raw) == 0 {
		return nil, false
	}
	return raw, true
}

// store writes via a unique temp file plus atomic rename (same protocol as
// diskCache.store), so concurrent writers never interleave partial bytes.
func (d *ckptStore) store(fp string, data []byte) error {
	if err := os.MkdirAll(d.dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(d.dir, ".pradram-*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), d.path(fp))
}

// remove drops a stored checkpoint (used when a loaded entry fails
// Restore, so the bad bytes are not re-read forever).
func (d *ckptStore) remove(fp string) { os.Remove(d.path(fp)) }

// CheckpointStore is the exported face of the on-disk checkpoint store,
// for drivers that manage their own systems instead of going through a
// Runner (prasim -ckpt-dir). Load returns raw checkpoint bytes that MUST
// still be validated by System.Restore; Remove drops an entry a restore
// rejected so it is re-made rather than re-read forever.
type CheckpointStore struct{ d *ckptStore }

// NewCheckpointStore opens (lazily creating) a checkpoint directory.
func NewCheckpointStore(dir string) *CheckpointStore {
	return &CheckpointStore{d: newCkptStore(dir)}
}

// Load returns the stored checkpoint for a warmup fingerprint.
func (s *CheckpointStore) Load(fp string) ([]byte, bool) { return s.d.load(fp) }

// Store persists a checkpoint for a warmup fingerprint (atomic rename).
func (s *CheckpointStore) Store(fp string, data []byte) error { return s.d.store(fp, data) }

// Remove drops the stored checkpoint for a warmup fingerprint.
func (s *CheckpointStore) Remove(fp string) { s.d.remove(fp) }

// inflightCkpt is one in-progress warmup other runs of the same
// fingerprint can wait on. data stays nil if the producer failed to
// checkpoint, in which case waiters warm cold.
type inflightCkpt struct {
	done chan struct{}
	data []byte
}

// ckptAcquire resolves a fingerprint against the checkpoint memo.
// Exactly one of three outcomes:
//
//	data, nil    — hit: restore from data.
//	nil, publish — this caller is the producer: warm, checkpoint, and
//	               publish the bytes (nil on failure) exactly once.
//	nil, nil     — the producer failed; warm cold without publishing.
func (r *Runner) ckptAcquire(fp string) ([]byte, func([]byte)) {
	r.ckptMu.Lock()
	if data, ok := r.ckpts[fp]; ok {
		r.ckptMu.Unlock()
		return data, nil
	}
	if in, ok := r.ckptFlight[fp]; ok {
		r.ckptMu.Unlock()
		<-in.done
		return in.data, nil
	}
	in := &inflightCkpt{done: make(chan struct{})}
	r.ckptFlight[fp] = in
	r.ckptMu.Unlock()
	return nil, func(data []byte) {
		in.data = data
		r.ckptMu.Lock()
		if data != nil {
			r.ckpts[fp] = data
		}
		delete(r.ckptFlight, fp)
		r.ckptMu.Unlock()
		close(in.done)
	}
}

// runOne executes one configuration through the checkpoint layer: reuse a
// warmed snapshot when one exists, produce one when this is the first run
// of its fingerprint, and fall back to a monolithic run whenever the
// configuration cannot be checkpointed or a restore is rejected.
func (r *Runner) runOne(cfg Config) (Result, error) {
	if r.opt.NoCheckpoint {
		return RunOne(cfg)
	}
	fp, ok := WarmupFingerprint(cfg)
	if !ok {
		return RunOne(cfg)
	}
	s, err := New(cfg)
	if err != nil {
		return Result{}, err
	}
	data, publish := r.ckptAcquire(fp)
	if data != nil {
		// Restore validates everything and leaves s pristine on failure,
		// so the fallback below warms the very same system cold.
		if err := s.Restore(data); err == nil {
			r.ckptHits.Add(1)
			return s.Measure()
		}
	}
	r.ckptMisses.Add(1)
	if publish == nil {
		return s.Run()
	}
	// Producer. A persisted checkpoint from an earlier process replaces
	// the warmup if it restores; a rejected entry is deleted and re-made.
	if r.ckptDisk != nil {
		if stored, ok := r.ckptDisk.load(fp); ok {
			if err := s.Restore(stored); err == nil {
				publish(stored)
				// The cold warmup never ran: undo the miss above.
				r.ckptMisses.Add(-1)
				r.ckptHits.Add(1)
				return s.Measure()
			}
			r.ckptDisk.remove(fp)
		}
	}
	if err := s.Warmup(); err != nil {
		publish(nil)
		return Result{}, err
	}
	snap, err := s.Checkpoint()
	if err != nil {
		snap = nil // waiters warm cold; this run proceeds regardless
	}
	publish(snap)
	if snap != nil && r.ckptDisk != nil {
		// A failed store only costs a future re-warmup.
		_ = r.ckptDisk.store(fp, snap)
	}
	return s.Measure()
}

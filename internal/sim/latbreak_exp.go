package sim

import (
	"fmt"

	"pradram/internal/memctrl"
	"pradram/internal/stats"
)

// The latency-attribution experiment (DESIGN.md §4h): run every activation
// scheme over the benchmark set with per-request attribution enabled and
// tabulate where read latency is spent — the per-component shares and the
// tail percentiles. It doubles as an end-to-end audit of the conservation
// invariant: a row whose components do not sum exactly to the measured
// latency total fails the experiment rather than printing a wrong table.

// latBreakWorkloads are the experiment's rows: the eight single
// benchmarks. The multiprogrammed mixes add contention but no new
// attribution mechanism, so they stay out of the default table to keep the
// sweep at schemes x benchmarks.
var latBreakWorkloads = benchOrder

func latBreakKey(w string, s memctrl.Scheme) runKey {
	return runKey{workload: w, scheme: s, policy: memctrl.RelaxedClose, active: 0,
		latBreak: true}
}

func keysLatBreak() []runKey {
	var keys []runKey
	for _, w := range latBreakWorkloads {
		for _, s := range memctrl.Schemes() {
			keys = append(keys, latBreakKey(w, s))
		}
	}
	return keys
}

// ExpLatBreak regenerates the latency-breakdown table: per scheme and
// workload, the mean and tail read latency in nanoseconds and each
// component's share of the total read latency.
func ExpLatBreak(r *Runner) (string, error) {
	cols := []string{"workload", "scheme", "avg ns", "p50 ns", "p99 ns"}
	for comp := memctrl.LatComponent(0); comp < memctrl.NumLatComponents; comp++ {
		cols = append(cols, comp.String()+"%")
	}
	t := stats.NewTable(cols...)
	for _, w := range latBreakWorkloads {
		for _, s := range memctrl.Schemes() {
			res, err := r.Run(latBreakKey(w, s))
			if err != nil {
				return "", err
			}
			if got, want := res.Ctrl.ReadLatBreak.Sum(), res.Ctrl.ReadLatencySum; got != want {
				return "", fmt.Errorf("latbreak: %s/%s read breakdown sums to %d cycles, latency total is %d (conservation violated)",
					w, s, got, want)
			}
			if got, want := res.Ctrl.WriteLatBreak.Sum(), res.Ctrl.WriteLatencySum; got != want {
				return "", fmt.Errorf("latbreak: %s/%s write breakdown sums to %d cycles, latency total is %d (conservation violated)",
					w, s, got, want)
			}
			row := []any{w, s.String(),
				fmt.Sprintf("%.1f", res.AvgReadLatencyNs()),
				fmt.Sprintf("%.0f", res.ReadLatQuantileNs(0.50)),
				fmt.Sprintf("%.0f", res.ReadLatQuantileNs(0.99))}
			for comp := memctrl.LatComponent(0); comp < memctrl.NumLatComponents; comp++ {
				row = append(row, fmt.Sprintf("%.1f", 100*res.ReadLatShare(comp)))
			}
			t.Row(row...)
		}
	}
	return t.String() + "\nComponent shares partition the mean read latency (they sum to 100%);\n" +
		"percentiles are log-bucket upper bounds (power-of-two resolution).\n", nil
}

package sim

import (
	"strings"
	"testing"

	"pradram/internal/memctrl"
)

func tinyRunner() *Runner {
	return NewRunner(ExpOptions{Instr: 30_000, Warmup: 40_000, Seed: 1})
}

func TestExperimentRegistry(t *testing.T) {
	t.Parallel()
	exps := Experiments()
	if len(exps) != 22 {
		t.Fatalf("have %d experiments, want 22", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("experiment %+v incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		got, err := ExperimentByID(e.ID)
		if err != nil || got.ID != e.ID {
			t.Errorf("ExperimentByID(%s) = %v, %v", e.ID, got.ID, err)
		}
	}
	if _, err := ExperimentByID("nope"); err == nil {
		t.Error("unknown id must error")
	}
}

func TestAnalyticExperimentsContent(t *testing.T) {
	t.Parallel()
	r := tinyRunner()
	out, err := ExpTable2(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"288.752", "16.921", "18.016", "11.884"} {
		if !strings.Contains(out, want) {
			t.Errorf("table2 output missing %q", want)
		}
	}
	out, err = ExpTable3(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"22.2", "3.7", "P_ACT"} {
		if !strings.Contains(out, want) {
			t.Errorf("table3 output missing %q", want)
		}
	}
	out, err = ExpFig9(r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "288.752") || !strings.Contains(out, "shared") {
		t.Errorf("fig9 output incomplete:\n%s", out)
	}
}

// Every simulation-backed experiment must run end-to-end on a tiny budget.
func TestAllExperimentsRunTiny(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("runs every experiment; skipped with -short")
	}
	r := tinyRunner()
	for _, e := range Experiments() {
		out, err := e.Run(r)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if len(out) < 40 {
			t.Errorf("%s: suspiciously short output (%d bytes)", e.ID, len(out))
		}
	}
}

func TestRunnerMemoization(t *testing.T) {
	t.Parallel()
	r := tinyRunner()
	k := runKey{workload: "GUPS", scheme: memctrl.Baseline, policy: memctrl.RelaxedClose, active: 1}
	a, err := r.Run(k)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(k)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Ctrl != b.Ctrl {
		t.Error("memoized run must return the identical result")
	}
	// Different key must actually rerun and occupy its own cache slot.
	k2 := k
	k2.scheme = memctrl.PRA
	c, err := r.Run(k2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Scheme != memctrl.PRA {
		t.Error("second key must run the requested scheme")
	}
	if len(r.cache) != 2 {
		t.Errorf("run cache holds %d entries, want 2", len(r.cache))
	}
	if r.Simulations() != 2 {
		t.Errorf("runner executed %d simulations, want 2", r.Simulations())
	}
}

func TestAloneIPCs(t *testing.T) {
	t.Parallel()
	r := tinyRunner()
	m, err := r.AloneIPCs([]string{"GUPS", "GUPS", "em3d"}, memctrl.RelaxedClose)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 {
		t.Fatalf("alone map = %v, want 2 unique apps", m)
	}
	for app, ipc := range m {
		if ipc <= 0 || ipc > 8 {
			t.Errorf("%s alone IPC = %v out of range", app, ipc)
		}
	}
}

func TestNormalizedWSIdentity(t *testing.T) {
	t.Parallel()
	r := tinyRunner()
	k := runKey{workload: "GUPS", scheme: memctrl.Baseline, policy: memctrl.RelaxedClose, active: 4}
	base, err := r.Run(k)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := r.NormalizedWS(base, base, memctrl.RelaxedClose)
	if err != nil {
		t.Fatal(err)
	}
	if ws != 1 {
		t.Errorf("self-normalized WS = %v, want 1", ws)
	}
}

func TestRunnerDefaultsApplied(t *testing.T) {
	t.Parallel()
	r := NewRunner(ExpOptions{Instr: -5, Warmup: -5})
	if r.opt.Instr <= 0 || r.opt.Warmup != 0 {
		t.Errorf("runner defaults not applied: %+v", r.opt)
	}
}

func TestAblationKnobsChangeBehaviour(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("slow; skipped with -short")
	}
	r := tinyRunner()
	full, err := r.Run(runKey{workload: "GUPS", scheme: memctrl.PRA, policy: memctrl.RelaxedClose, active: 4})
	if err != nil {
		t.Fatal(err)
	}
	noIO, err := r.Run(runKey{workload: "GUPS", scheme: memctrl.PRA, policy: memctrl.RelaxedClose, active: 4, noIO: true})
	if err != nil {
		t.Fatal(err)
	}
	// Without partial I/O the bus carries all 8 words per write.
	if noIO.Dev.WordsWritten <= full.Dev.WordsWritten {
		t.Errorf("no-partial-IO must transfer more words: %d vs %d",
			noIO.Dev.WordsWritten, full.Dev.WordsWritten)
	}
	if noIO.Dev.WordsWritten != noIO.Dev.WordBudget {
		t.Errorf("no-partial-IO must transfer the full budget, got %d of %d",
			noIO.Dev.WordsWritten, noIO.Dev.WordBudget)
	}
	// Activations stay partial (the ablation only disables the transfer
	// saving, not the activation saving).
	if noIO.Dev.AvgGranularity() >= 8 {
		t.Error("no-partial-IO must still activate partially")
	}
}

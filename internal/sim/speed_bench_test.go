package sim

import "testing"

// Full-system wall-clock benchmarks for the event-driven fast-forward
// path, paired skip/noskip so tools/benchgate -speed can gate on their
// ratio without a stored hardware baseline:
//
//   - The memory-bound pair (single-core LinkedList, a pointer chase that
//     leaves the core quiescent for most of every miss) is where skipping
//     must win big; its noskip/skip ratio is the speedup gate.
//   - The compute-bound pair (bzip2, high IPC, few idle stretches) is
//     where skipping has nothing to skip; its gate is that the NextEvent
//     bookkeeping costs (almost) nothing when it never fires.
//
// Runs are deterministic, so every iteration does identical work and
// ns/op differences are pure host effects.

func speedMemBoundCfg() Config {
	cfg := DefaultConfig("LinkedList")
	cfg.InstrPerCore = 150_000
	cfg.WarmupPerCore = 50_000
	cfg.ActiveCores = 1
	return cfg
}

func speedComputeBoundCfg() Config {
	cfg := DefaultConfig("bzip2")
	cfg.InstrPerCore = 150_000
	cfg.WarmupPerCore = 50_000
	return cfg
}

func benchRun(b *testing.B, cfg Config, noskip bool) {
	b.Helper()
	cfg.NoSkip = noskip
	for i := 0; i < b.N; i++ {
		s, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
		if !noskip && s.Skipped() == 0 && cfg.Workload == "LinkedList" {
			b.Fatal("memory-bound benchmark never fast-forwarded")
		}
	}
}

func BenchmarkSpeedMemBoundSkip(b *testing.B)       { benchRun(b, speedMemBoundCfg(), false) }
func BenchmarkSpeedMemBoundNoSkip(b *testing.B)     { benchRun(b, speedMemBoundCfg(), true) }
func BenchmarkSpeedComputeBoundSkip(b *testing.B)   { benchRun(b, speedComputeBoundCfg(), false) }
func BenchmarkSpeedComputeBoundNoSkip(b *testing.B) { benchRun(b, speedComputeBoundCfg(), true) }

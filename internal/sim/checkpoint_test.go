package sim

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"pradram/internal/checkpoint"
	"pradram/internal/cpu"
	"pradram/internal/memctrl"
	"pradram/internal/obs"
	"pradram/internal/workload"
)

// warmAndCheckpoint builds cfg, runs its warmup, and returns the
// checkpoint bytes.
func warmAndCheckpoint(t *testing.T, cfg Config) []byte {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Warmup(); err != nil {
		t.Fatal(err)
	}
	data, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// restoreAndMeasure builds cfg, installs the checkpoint, and runs the
// measured window.
func restoreAndMeasure(t *testing.T, cfg Config, data []byte) (*System, Result) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Restore(data); err != nil {
		t.Fatal(err)
	}
	res, err := s.Measure()
	if err != nil {
		t.Fatal(err)
	}
	return s, res
}

// TestCheckpointBitIdentityMatrix is the tentpole's correctness contract:
// for every activation scheme crossed with representative workloads (plus
// the DBI, ECC, and NoSkip variants), warmup → checkpoint → restore into a
// fresh system → measure must be bit-identical to a monolithic Run — same
// Result, same epoch timeline, same event log.
func TestCheckpointBitIdentityMatrix(t *testing.T) {
	t.Parallel()
	type variant struct {
		name string
		mod  func(*Config)
	}
	variants := []variant{{"plain", func(*Config) {}}}
	for _, sch := range memctrl.Schemes() {
		for _, wl := range []string{"GUPS", "LinkedList", "bzip2"} {
			sch, wl := sch, wl
			name := fmt.Sprintf("%s/%s", sch, wl)
			vs := variants
			if sch == memctrl.PRA && wl == "GUPS" {
				// The case-study variants ride on one cell of the matrix
				// rather than multiplying the whole sweep.
				vs = []variant{
					{"plain", func(*Config) {}},
					{"DBI", func(c *Config) { c.DBI = true }},
					{"ECC", func(c *Config) { c.ECC = true }},
					{"noskip", func(c *Config) { c.NoSkip = true }},
				}
			}
			for _, v := range vs {
				v := v
				sub := name
				if v.name != "plain" {
					sub = name + "/" + v.name
				}
				t.Run(sub, func(t *testing.T) {
					t.Parallel()
					cfg := skipCfg(wl)
					cfg.Scheme = sch
					v.mod(&cfg)

					mono, err := New(cfg)
					if err != nil {
						t.Fatal(err)
					}
					rm, err := mono.Run()
					if err != nil {
						t.Fatal(err)
					}
					data := warmAndCheckpoint(t, cfg)
					restored, rr := restoreAndMeasure(t, cfg, data)
					checkIdentical(t, mono, restored, rm, rr)
				})
			}
		}
	}
}

// TestCheckpointProducerKeepsMeasuring proves a checkpoint is a pure
// snapshot: the system that produced it can keep running its own measured
// window and still matches a monolithic run exactly.
func TestCheckpointProducerKeepsMeasuring(t *testing.T) {
	t.Parallel()
	cfg := skipCfg("GUPS")
	cfg.Scheme = memctrl.PRA
	producer, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := producer.Warmup(); err != nil {
		t.Fatal(err)
	}
	if _, err := producer.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	rp, err := producer.Measure()
	if err != nil {
		t.Fatal(err)
	}
	mono, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := mono.Run()
	if err != nil {
		t.Fatal(err)
	}
	checkIdentical(t, mono, producer, rm, rp)
}

// TestCheckpointTraceCapture covers the Capture path end to end: a
// restored capture run must record exactly the request stream the
// monolithic capture run records.
func TestCheckpointTraceCapture(t *testing.T) {
	t.Parallel()
	cfg := skipCfg("LinkedList")
	cfg.Capture = true
	mono, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := mono.Run()
	if err != nil {
		t.Fatal(err)
	}
	data := warmAndCheckpoint(t, cfg)
	restored, rr := restoreAndMeasure(t, cfg, data)
	checkIdentical(t, mono, restored, rm, rr)
	if !reflect.DeepEqual(mono.Trace(), restored.Trace()) {
		t.Errorf("captured traces differ: %d vs %d records",
			len(mono.Trace().Records), len(restored.Trace().Records))
	}
}

// TestCheckpointFieldExclusions justifies, one by one, every Config field
// the warmup fingerprint leaves out: changing the field must not change
// the fingerprint, and a checkpoint produced WITHOUT the field set must
// restore into a config WITH it and measure bit-identically to that
// config's own monolithic run. Together the two assertions prove the
// field cannot influence warmup execution.
func TestCheckpointFieldExclusions(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		why  string
		mod  func(*Config)
	}{
		{"ECC", "timing is unchanged; only energy accounting differs, and energy resets at the boundary",
			func(c *Config) { c.ECC = true }},
		{"NoPartialIO", "affects only write-burst energy and word counters, never command timing",
			func(c *Config) { c.NoPartialIO = true }},
		{"InstrPerCore", "the retire target only drives the measured window",
			func(c *Config) { c.InstrPerCore = 6_000 }},
		{"Capture", "the capture wrapper forwards synchronously and warmup records are dropped at the boundary",
			func(c *Config) { c.Capture = true }},
		{"Obs", "telemetry observes state without influencing it (PR 3's bit-identity contract)",
			func(c *Config) { c.Obs = ObsConfig{EpochCycles: 256, EventLevel: obs.LevelCmd} }},
		{"PowerCal", "calibration scales the finished energy breakdown post-hoc; no simulated state reads it",
			func(c *Config) { c.PowerCal = "ghose:10" }},
		{"LatBreak", "attribution observes command issue without changing it, and the sweep frontier is checkpointed unconditionally",
			func(c *Config) { c.LatBreak = true; c.LatSpanEvery = 8 }},
		{"Par", "parallel-in-time ticking reproduces the sequential tick order bit-exactly (pdes identity suite), and checkpoints are taken between ticks with the workers parked",
			func(c *Config) { c.Par = 2 }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			base := skipCfg("GUPS")
			base.Scheme = memctrl.PRA
			variant := base
			tc.mod(&variant)

			fb, ok := WarmupFingerprint(base)
			if !ok {
				t.Fatal("base config not checkpointable")
			}
			fv, ok := WarmupFingerprint(variant)
			if !ok {
				t.Fatal("variant config not checkpointable")
			}
			if fb != fv {
				t.Fatalf("%s changed the warmup fingerprint; it is supposed to be excluded (%s)", tc.name, tc.why)
			}

			data := warmAndCheckpoint(t, base)
			mono, err := New(variant)
			if err != nil {
				t.Fatal(err)
			}
			rm, err := mono.Run()
			if err != nil {
				t.Fatal(err)
			}
			restored, rr := restoreAndMeasure(t, variant, data)
			checkIdentical(t, mono, restored, rm, rr)
		})
	}
}

// TestWarmupFingerprintFields classifies every sim.Config field as
// fingerprint-relevant or not and asserts the fingerprint reacts exactly
// as classified. A future Config field fails this test until it is
// classified here AND in WarmupFingerprint — the guard the checkpoint
// design depends on: an unclassified field could silently let two
// different warmups share a checkpoint.
func TestWarmupFingerprintFields(t *testing.T) {
	t.Parallel()
	// For each field: a mutation keeping the config checkpointable, and
	// whether the fingerprint must change. Fields that make a config
	// un-checkpointable are marked unsupported.
	type probe struct {
		mutate      func(*Config)
		wantChange  bool
		unsupported bool
	}
	probes := map[string]probe{
		"Workload":      {mutate: func(c *Config) { c.Workload = "LinkedList" }, wantChange: true},
		"Scheme":        {mutate: func(c *Config) { c.Scheme = memctrl.PRA }, wantChange: true},
		"Policy":        {mutate: func(c *Config) { c.Policy = memctrl.RestrictedClose }, wantChange: true},
		"DBI":           {mutate: func(c *Config) { c.DBI = true }, wantChange: true},
		"ECC":           {mutate: func(c *Config) { c.ECC = true }, wantChange: false},
		"Capture":       {mutate: func(c *Config) { c.Capture = true }, wantChange: false},
		"NoTimingRelax": {mutate: func(c *Config) { c.NoTimingRelax = true }, wantChange: true},
		"NoPartialIO":   {mutate: func(c *Config) { c.NoPartialIO = true }, wantChange: false},
		"NoMaskCycle":   {mutate: func(c *Config) { c.NoMaskCycle = true }, wantChange: true},
		"Cores":         {mutate: func(c *Config) { c.Cores = 2 }, wantChange: true},
		"ActiveCores":   {mutate: func(c *Config) { c.ActiveCores = 1 }, wantChange: true},
		"InstrPerCore":  {mutate: func(c *Config) { c.InstrPerCore = 123_456 }, wantChange: false},
		"WarmupPerCore": {mutate: func(c *Config) { c.WarmupPerCore = 4_321 }, wantChange: true},
		"Seed":          {mutate: func(c *Config) { c.Seed = 99 }, wantChange: true},
		"MaxCycles":     {mutate: func(c *Config) { c.MaxCycles = 1 << 40 }, wantChange: true},
		"NoSkip":        {mutate: func(c *Config) { c.NoSkip = true }, wantChange: true},
		"Channels":      {mutate: func(c *Config) { c.Channels = 4 }, wantChange: true},
		// Parallel-in-time ticking is bit-identical to sequential (the
		// pdes identity suite), so a checkpoint serves both settings.
		"Par": {mutate: func(c *Config) { c.Par = 2 }, wantChange: false},
		"CPU":           {mutate: func(c *Config) { c.CPU.ROB = 64 }, wantChange: true},
		"Generator":     {unsupported: true},
		"Timing":        {mutate: func(c *Config) { t := c.timingOrDefault(); t.TRCD = 99; c.Timing = &t }, wantChange: true},
		"CPUPerMem":     {mutate: func(c *Config) { c.CPUPerMem = 8 }, wantChange: true},
		"Obs":           {mutate: func(c *Config) { c.Obs = ObsConfig{EpochCycles: 64} }, wantChange: false},
		"PDPolicy":      {mutate: func(c *Config) { c.PDPolicy = memctrl.PDNone }, wantChange: true},
		"PDTimeout":     {mutate: func(c *Config) { c.PDPolicy = memctrl.PDTimed; c.PDTimeout = 100 }, wantChange: true},
		"SRTimeout":     {mutate: func(c *Config) { c.SRTimeout = 10_000 }, wantChange: true},
		"PDSlowExit":    {mutate: func(c *Config) { c.PDSlowExit = true }, wantChange: true},
		"APD":           {mutate: func(c *Config) { c.APD = true }, wantChange: true},
		"RefreshMode":   {mutate: func(c *Config) { c.RefreshMode = memctrl.RefreshPerBank }, wantChange: true},
		"PowerCal":      {mutate: func(c *Config) { c.PowerCal = "ghose" }, wantChange: false},
		// Latency attribution observes scheduling without influencing it
		// (latency.go's bit-identity tests), and the sweep frontier each
		// request carries is maintained — and checkpointed — regardless of
		// the flag, so a checkpoint serves both settings.
		"LatBreak":     {mutate: func(c *Config) { c.LatBreak = true }, wantChange: false},
		"LatSpanEvery": {mutate: func(c *Config) { c.LatBreak = true; c.LatSpanEvery = 16 }, wantChange: false},
		// Mitigation steers alert/RFM scheduling during warmup, and the
		// table capacity shapes the checkpointed counter tables.
		"MitThreshold":   {mutate: func(c *Config) { c.MitThreshold = 32 }, wantChange: true},
		"MitAlertCycles": {mutate: func(c *Config) { c.MitThreshold = 32; c.MitAlertCycles = 288 }, wantChange: true},
		"MitTableCap":    {mutate: func(c *Config) { c.MitThreshold = 32; c.MitTableCap = 64 }, wantChange: true},
	}

	typ := reflect.TypeOf(Config{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		p, ok := probes[name]
		if !ok {
			t.Errorf("Config field %q is not classified for the warmup fingerprint; "+
				"decide whether it can influence warmup execution, add it to WarmupFingerprint "+
				"if so, and record the decision here and in TestCheckpointFieldExclusions", name)
			continue
		}
		base := DefaultConfig("GUPS")
		base.WarmupPerCore = 1000
		fp0, ok := WarmupFingerprint(base)
		if !ok {
			t.Fatal("base config must be checkpointable")
		}
		mut := base
		if p.unsupported {
			mut.Generator = func(coreID int, seed uint64, region workload.Region) cpu.Generator { return nil }
			if _, ok := WarmupFingerprint(mut); ok {
				t.Errorf("%s: config must be unsupported for checkpointing", name)
			}
			continue
		}
		p.mutate(&mut)
		fp1, ok := WarmupFingerprint(mut)
		if !ok {
			t.Errorf("%s: mutated config unexpectedly not checkpointable", name)
			continue
		}
		if changed := fp0 != fp1; changed != p.wantChange {
			t.Errorf("%s: fingerprint change = %v, classified as %v", name, changed, p.wantChange)
		}
	}

	// Zero or negative warmup leaves nothing to checkpoint.
	noWarm := DefaultConfig("GUPS")
	noWarm.WarmupPerCore = 0
	if _, ok := WarmupFingerprint(noWarm); ok {
		t.Error("config without a warmup phase must not be checkpointable")
	}
}

// TestCheckpointNormalization pins the fingerprint's config normalization:
// spellings of the same effective warmup must share a fingerprint.
func TestCheckpointNormalization(t *testing.T) {
	t.Parallel()
	base := DefaultConfig("GUPS")
	base.WarmupPerCore = 1000
	fp0, _ := WarmupFingerprint(base)

	spelled := base
	spelled.Workload = "gups" // case-insensitive canonical name
	if fp, _ := WarmupFingerprint(spelled); fp != fp0 {
		t.Error("canonical workload spelling must not change the fingerprint")
	}
	spelled = base
	spelled.ActiveCores = base.Cores // explicit == default (all cores)
	if fp, _ := WarmupFingerprint(spelled); fp != fp0 {
		t.Error("explicit ActiveCores == Cores must match the 0 default")
	}
	spelled = base
	tm := spelled.timingOrDefault()
	spelled.Timing = &tm // explicit default timing == nil
	spelled.CPUPerMem = 4
	if fp, _ := WarmupFingerprint(spelled); fp != fp0 {
		t.Error("explicit default Timing/CPUPerMem must match the nil/0 defaults")
	}
}

// TestRestoreRejectsMismatches covers the guard rails: wrong fingerprint,
// wrong model/format headers, and reuse of a warmed system must all be
// refused with a clear error, leaving the target untouched.
func TestRestoreRejectsMismatches(t *testing.T) {
	t.Parallel()
	cfg := quickCheckpointCfg("GUPS")
	data := warmAndCheckpoint(t, cfg)

	other := cfg
	other.Seed = cfg.Seed + 1
	s, err := New(other)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Restore(data); err == nil {
		t.Error("restore with a mismatched fingerprint must fail")
	}
	// The refused system is untouched and still runs cold.
	if _, err := s.Run(); err != nil {
		t.Errorf("system refused a checkpoint but can no longer run: %v", err)
	}

	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Restore(data); err != nil {
		t.Fatal(err)
	}
	if err := s2.Restore(data); err == nil {
		t.Error("restoring into an already-warmed system must fail")
	}

	unck := cfg
	unck.WarmupPerCore = 0
	s3, err := New(unck)
	if err != nil {
		t.Fatal(err)
	}
	if err := s3.Restore(data); err == nil {
		t.Error("restore into a non-checkpointable config must fail")
	}
}

// quickCheckpointCfg is a small checkpointable config for the corruption
// and guard-rail tests.
func quickCheckpointCfg(wl string) Config {
	cfg := DefaultConfig(wl)
	cfg.Cores = 2
	cfg.InstrPerCore = 2_000
	cfg.WarmupPerCore = 1_000
	return cfg
}

// TestRestoreRejectsCorruption flips every byte region of a valid
// checkpoint and asserts restore either fails cleanly (never panics,
// never installs partial state — proven by the system still cold-warming
// to the exact monolithic result) or, where the flip lands in bytes the
// CRC protects, is caught by the CRC check itself.
func TestRestoreRejectsCorruption(t *testing.T) {
	t.Parallel()
	cfg := quickCheckpointCfg("GUPS")
	data := warmAndCheckpoint(t, cfg)
	want, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Stride through the payload (covering every region without running
	// len(data) simulations), plus the CRC trailer and a truncation.
	stride := len(data)/97 + 1
	for off := 0; off < len(data); off += stride {
		corrupt := append([]byte(nil), data...)
		corrupt[off] ^= 0x41
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Restore(corrupt); err == nil {
			t.Fatalf("restore accepted a checkpoint corrupted at byte %d", off)
		}
		got, err := s.Run()
		if err != nil {
			t.Fatalf("cold fallback after corrupt restore (byte %d) failed: %v", off, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("cold fallback after corrupt restore (byte %d) diverged — restore leaked state", off)
		}
	}
	for _, n := range []int{0, 3, len(data) / 2, len(data) - 1} {
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Restore(data[:n]); err == nil {
			t.Fatalf("restore accepted a checkpoint truncated to %d bytes", n)
		}
	}
}

// FuzzCheckpointRoundTrip randomizes the configuration and a corruption
// site: the clean round trip must measure bit-identically to a monolithic
// run, and the corrupted restore must fail cleanly and leave the system
// able to cold-warm to the same result.
func FuzzCheckpointRoundTrip(f *testing.F) {
	f.Add(int64(2_000), uint64(1), uint8(0), uint8(0), uint16(0))
	f.Add(int64(1_000), uint64(7), uint8(1), uint8(1), uint16(37))
	f.Add(int64(3_000), uint64(42), uint8(2), uint8(2), uint16(999))
	f.Fuzz(func(t *testing.T, instr int64, seed uint64, wsel, ssel uint8, site uint16) {
		if instr < 200 || instr > 5_000 {
			t.Skip()
		}
		workloads := []string{"GUPS", "LinkedList", "bzip2"}
		schemes := memctrl.Schemes()
		cfg := DefaultConfig(workloads[int(wsel)%len(workloads)])
		cfg.Scheme = schemes[int(ssel)%len(schemes)]
		cfg.Cores = 2
		cfg.InstrPerCore = instr
		cfg.WarmupPerCore = instr / 2
		cfg.Seed = seed%1000 + 1

		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Warmup(); err != nil {
			t.Fatal(err)
		}
		data, err := s.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		want, err := s.Measure()
		if err != nil {
			t.Fatal(err)
		}

		clean, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := clean.Restore(data); err != nil {
			t.Fatalf("clean restore failed: %v", err)
		}
		got, err := clean.Measure()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("restored run diverged from monolithic (instr %d, seed %d, %s/%s)",
				instr, seed, cfg.Scheme, cfg.Workload)
		}

		corrupt := append([]byte(nil), data...)
		corrupt[int(site)%len(corrupt)] ^= 0x5A
		dirty, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(corrupt, data) {
			t.Fatal("corruption was a no-op") // unreachable: 0x5A never XORs to zero
		}
		rerr := dirty.Restore(corrupt)
		if rerr == nil {
			t.Fatal("corrupted restore succeeded")
		}
		got, err = dirty.Run()
		if err != nil {
			t.Fatalf("cold fallback failed after rejected restore (%v): %v", rerr, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Error("cold fallback diverged — rejected restore leaked state")
		}
	})
}

// TestCheckpointErrorsWrapErrCorrupt pins the error contract callers
// branch on: byte-level damage surfaces as checkpoint.ErrCorrupt.
func TestCheckpointErrorsWrapErrCorrupt(t *testing.T) {
	t.Parallel()
	cfg := quickCheckpointCfg("GUPS")
	data := warmAndCheckpoint(t, cfg)
	corrupt := append([]byte(nil), data...)
	corrupt[len(corrupt)/2] ^= 0xFF
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Restore(corrupt); !errors.Is(err, checkpoint.ErrCorrupt) {
		t.Errorf("mid-payload corruption should wrap ErrCorrupt, got %v", err)
	}
}

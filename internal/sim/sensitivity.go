package sim

import (
	"fmt"

	"pradram/internal/dram"
	"pradram/internal/memctrl"
	"pradram/internal/stats"
	"pradram/internal/workload"
)

// ExpSensitivity sweeps the fundamental PRA variable — dirty words per
// written line — on a controlled synthetic workload, plus a write-share
// sweep. It answers "how much saving is left as lines get dirtier", the
// curve implied by Figure 3 + Figure 12: PRA's saving comes entirely from
// lines with few dirty words.
func ExpSensitivity(r *Runner) (string, error) {
	instr := r.opt.Instr / 2
	if instr < 20_000 {
		instr = 20_000
	}
	run := func(scheme memctrl.Scheme, p workload.SyntheticParams) (Result, error) {
		mk, err := workload.NewSynthetic(p)
		if err != nil {
			return Result{}, err
		}
		cfg := DefaultConfig(fmt.Sprintf("synthetic-d%d", p.DirtyWords))
		cfg.Generator = mk
		cfg.Scheme = scheme
		cfg.InstrPerCore = instr
		cfg.WarmupPerCore = instr * 2
		cfg.Seed = r.opt.Seed
		return RunOne(cfg)
	}

	var b []byte
	out := stats.NewTable("dirty words", "PRA power", "PRA ACT gran", "1/8..8/8 shares %")
	for k := 1; k <= 8; k++ {
		p := workload.SyntheticParams{DirtyWords: k, WriteProb: 0.9, ComputeGap: 4}
		base, err := run(memctrl.Baseline, p)
		if err != nil {
			return "", err
		}
		pra, err := run(memctrl.PRA, p)
		if err != nil {
			return "", err
		}
		shares := ""
		for g := 1; g <= 8; g++ {
			shares += fmt.Sprintf("%4.0f", 100*pra.GranularityShare(g))
		}
		out.Row(k,
			stats.Ratio(pra.AvgPowerMW(), base.AvgPowerMW()),
			fmt.Sprintf("%.2f/8", pra.Dev.AvgGranularity()),
			shares)
	}
	b = append(b, out.String()...)
	b = append(b, "\nPRA saving shrinks monotonically as lines get dirtier; at 8 dirty words\nonly the read-side behaviour remains (activations are full rows).\n\n"...)

	wr := stats.NewTable("write prob", "PRA power", "write traffic %")
	for _, wp := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		p := workload.SyntheticParams{DirtyWords: 1, WriteProb: wp, ComputeGap: 4}
		base, err := run(memctrl.Baseline, p)
		if err != nil {
			return "", err
		}
		pra, err := run(memctrl.PRA, p)
		if err != nil {
			return "", err
		}
		wr.Row(wp,
			stats.Ratio(pra.AvgPowerMW(), base.AvgPowerMW()),
			100*(1-base.ReadTrafficShare()))
	}
	b = append(b, wr.String()...)
	b = append(b, "\nThe saving grows with the write share of DRAM traffic — PRA only acts on\nwrites (the paper's asymmetric design).\n"...)
	return string(b), nil
}

// ExpSpeedGrades sweeps DDR3 data-rate bins on GUPS: PRA's relative saving
// across timing regimes. Chip power values are held at the DDR3-1600
// figures, so the sweep isolates the timing effect.
func ExpSpeedGrades(r *Runner) (string, error) {
	instr := r.opt.Instr / 2
	if instr < 20_000 {
		instr = 20_000
	}
	t := stats.NewTable("grade", "base mW", "pra mW", "pra/base", "base sumIPC", "pra sumIPC")
	for _, g := range dram.SpeedGrades() {
		run := func(scheme memctrl.Scheme) (Result, error) {
			cfg := DefaultConfig("GUPS")
			cfg.Scheme = scheme
			cfg.InstrPerCore = instr
			cfg.WarmupPerCore = instr * 2
			cfg.Seed = r.opt.Seed
			timing := g.Timing
			cfg.Timing = &timing
			cfg.CPUPerMem = g.CPUPerMem
			return RunOne(cfg)
		}
		base, err := run(memctrl.Baseline)
		if err != nil {
			return "", fmt.Errorf("%s: %w", g.Name, err)
		}
		pra, err := run(memctrl.PRA)
		if err != nil {
			return "", fmt.Errorf("%s: %w", g.Name, err)
		}
		t.Row(g.Name, base.AvgPowerMW(), pra.AvgPowerMW(),
			stats.Ratio(pra.AvgPowerMW(), base.AvgPowerMW()),
			base.SumIPC(), pra.SumIPC())
	}
	return t.String() + "\nPRA's relative saving holds across DDR3 bins; absolute power scales with\nthe achievable activation rate of each timing set.\n", nil
}

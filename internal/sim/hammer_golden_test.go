package sim

import (
	"os"
	"path/filepath"
	"testing"
)

// TestHammerGolden pins the exact bytes of the hammer experiment's
// mitigation-overhead table at a small fixed budget, the same way
// TestFig9Golden pins a published-number table: no refactor of the
// experiment layer, the mitigation scheme, or the adversarial generators
// may change the table without a deliberate golden update
// (go test ./internal/sim -run HammerGolden -update). Unlike fig9 this
// table comes from real simulation, so the golden bytes are specific to
// the budget below — but they must never depend on the worker count.
func TestHammerGolden(t *testing.T) {
	t.Parallel()
	e, err := ExperimentByID("hammer")
	if err != nil {
		t.Fatal(err)
	}

	opt := ExpOptions{Instr: 4_000, Seed: 1}
	opt.Workers = 1
	seqOut, err := NewRunner(opt).RunExperiment(e)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers = 4
	parOut, err := NewRunner(opt).RunExperiment(e)
	if err != nil {
		t.Fatal(err)
	}
	if seqOut != parOut {
		t.Fatalf("hammer output depends on the worker count:\n-j1:\n%s\n-j4:\n%s", seqOut, parOut)
	}

	path := filepath.Join("testdata", "hammer.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(seqOut), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if seqOut != string(want) {
		t.Errorf("hammer output drifted from golden file (run with -update if intentional):\n--- got ---\n%s\n--- want ---\n%s", seqOut, want)
	}
}

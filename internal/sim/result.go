package sim

import (
	"pradram/internal/cache"
	"pradram/internal/dram"
	"pradram/internal/memctrl"
	"pradram/internal/power"
	"pradram/internal/stats"
)

// Result carries everything a run measured. Derived metrics are methods so
// experiment code and tests share one definition.
type Result struct {
	Workload string
	Scheme   memctrl.Scheme
	Policy   memctrl.Policy
	DBI      bool
	Apps     []string

	Cycles  int64
	CoreIPC []float64

	Ctrl   memctrl.Stats
	Dev    dram.Stats
	Cache  cache.Stats
	Energy power.Breakdown

	// Cal is the power-model calibration the run was configured with
	// (Config.PowerCal); EnergyBand and PowerBandMW apply it. A zero Cal
	// (e.g. a Result decoded from an old cache entry) behaves as "none".
	Cal power.Calibration
}

// calibration returns the effective calibration, defaulting a zero value
// to the identity so Results from older cache entries keep working.
func (r Result) calibration() power.Calibration {
	if r.Cal.Name == "" {
		return power.CalNone()
	}
	return r.Cal
}

// RuntimeNs returns the run's wall time in DRAM-visible nanoseconds.
func (r Result) RuntimeNs() float64 { return float64(r.Cycles) * CPUCycleNs }

// AvgPowerMW returns the average total DRAM power over the run.
func (r Result) AvgPowerMW() float64 {
	return stats.Ratio(r.Energy.Total(), r.RuntimeNs())
}

// TotalEnergyPJ returns total DRAM energy.
func (r Result) TotalEnergyPJ() float64 { return r.Energy.Total() }

// EDP returns the energy-delay product in pJ*ns (comparisons are always
// against a baseline, so the unit cancels).
func (r Result) EDP() float64 { return r.Energy.Total() * r.RuntimeNs() }

// EnergyBand returns the calibrated total-energy band in pJ: the nominal
// value applies each component's nominal correction factor, and the
// min/max ends combine the per-component extremes (a conservative band;
// see power.Calibration). Under the "none" calibration all three equal
// TotalEnergyPJ().
func (r Result) EnergyBand() power.Band {
	return r.calibration().Total(r.Energy)
}

// PowerBandMW returns the calibrated average-power band over the run.
func (r Result) PowerBandMW() power.Band {
	ns := r.RuntimeNs()
	if ns == 0 {
		return power.Band{}
	}
	return r.EnergyBand().Scale(1 / ns)
}

// LowPowerResidency returns the fraction of rank-cycles spent with CKE
// low (any power-down state or self-refresh) during the measured window.
func (r Result) LowPowerResidency() float64 {
	return stats.Ratio(float64(r.Dev.LowPowerCycles()), float64(r.Dev.TotalRankCycles()))
}

// SelfRefreshResidency returns the fraction of rank-cycles spent in
// self-refresh.
func (r Result) SelfRefreshResidency() float64 {
	return stats.Ratio(float64(r.Dev.SelfRefCycles), float64(r.Dev.TotalRankCycles()))
}

// RowHitRateRead returns the fraction of read requests served from an open
// row (false hits count as misses, as in Section 5.2.1).
func (r Result) RowHitRateRead() float64 {
	return stats.Ratio(float64(r.Ctrl.RowHitRead), float64(r.Ctrl.ReadsServed))
}

// RowHitRateWrite is the write-request equivalent.
func (r Result) RowHitRateWrite() float64 {
	return stats.Ratio(float64(r.Ctrl.RowHitWrite), float64(r.Ctrl.WritesServed))
}

// RowHitRateTotal combines reads and writes.
func (r Result) RowHitRateTotal() float64 {
	return stats.Ratio(float64(r.Ctrl.RowHitRead+r.Ctrl.RowHitWrite),
		float64(r.Ctrl.ReadsServed+r.Ctrl.WritesServed))
}

// FalseHitRateRead returns false read hits per read request.
func (r Result) FalseHitRateRead() float64 {
	return stats.Ratio(float64(r.Ctrl.FalseHitRead), float64(r.Ctrl.ReadsServed))
}

// FalseHitRateWrite returns false write hits per write request.
func (r Result) FalseHitRateWrite() float64 {
	return stats.Ratio(float64(r.Ctrl.FalseHitWrite), float64(r.Ctrl.WritesServed))
}

// ReadTrafficShare returns reads / (reads + writes) at the DRAM interface.
func (r Result) ReadTrafficShare() float64 {
	return stats.Ratio(float64(r.Ctrl.ReadsServed), float64(r.Ctrl.ReadsServed+r.Ctrl.WritesServed))
}

// ReadActShare returns the fraction of row activations caused by reads.
func (r Result) ReadActShare() float64 {
	return stats.Ratio(float64(r.Ctrl.ActsForReads), float64(r.Ctrl.ActsForReads+r.Ctrl.ActsForWrites))
}

// GranularityShare returns the proportion of activations at g/8 granularity
// (Figure 11).
func (r Result) GranularityShare(g int) float64 {
	if g < 1 || g > 8 {
		return 0
	}
	return stats.Ratio(float64(r.Dev.ActsByGranularity[g]), float64(r.Dev.Activations()))
}

// AvgReadLatencyNs returns the mean DRAM read latency (arrival to data) in
// nanoseconds.
func (r Result) AvgReadLatencyNs() float64 {
	memCycleNs := CPUCycleNs * 4
	return stats.Ratio(float64(r.Ctrl.ReadLatencySum), float64(r.Ctrl.ReadsServed)) * memCycleNs
}

// AvgWriteLatencyNs returns the mean DRAM write latency (arrival to the
// end of the write burst) in nanoseconds.
func (r Result) AvgWriteLatencyNs() float64 {
	memCycleNs := CPUCycleNs * 4
	return stats.Ratio(float64(r.Ctrl.WriteLatencySum), float64(r.Ctrl.WritesServed)) * memCycleNs
}

// ReadLatShare returns component comp's share of the total read latency —
// the breakdown columns of the latbreak experiment. Zero unless the run
// had Config.LatBreak set.
func (r Result) ReadLatShare(comp memctrl.LatComponent) float64 {
	return stats.Ratio(float64(r.Ctrl.ReadLatBreak[comp]), float64(r.Ctrl.ReadLatBreak.Sum()))
}

// WriteLatShare is the write-request equivalent of ReadLatShare.
func (r Result) WriteLatShare(comp memctrl.LatComponent) float64 {
	return stats.Ratio(float64(r.Ctrl.WriteLatBreak[comp]), float64(r.Ctrl.WriteLatBreak.Sum()))
}

// ReadLatQuantileNs returns the q-quantile of the read-latency
// distribution in nanoseconds (log-bucketed, so an upper bound with
// power-of-two resolution; see stats.LogHist). Zero unless the run had
// Config.LatBreak set.
func (r Result) ReadLatQuantileNs(q float64) float64 {
	return r.Ctrl.ReadLatHist.Quantile(q) * CPUCycleNs * 4
}

// WriteLatQuantileNs is the write-request equivalent of ReadLatQuantileNs.
func (r Result) WriteLatQuantileNs(q float64) float64 {
	return r.Ctrl.WriteLatHist.Quantile(q) * CPUCycleNs * 4
}

// SumIPC returns the sum of per-core IPCs.
func (r Result) SumIPC() float64 {
	var s float64
	for _, v := range r.CoreIPC {
		s += v
	}
	return s
}

// WeightedSpeedup computes Equation 3 against per-app alone IPCs.
func (r Result) WeightedSpeedup(alone map[string]float64) float64 {
	var ws float64
	for i, app := range r.Apps {
		if a := alone[app]; a > 0 && i < len(r.CoreIPC) {
			ws += r.CoreIPC[i] / a
		}
	}
	return ws
}

// MaxSlowdown returns the worst per-core slowdown relative to the alone
// IPCs — the standard multiprogrammed fairness metric (larger is worse;
// 1.0 means no core was slowed at all).
func (r Result) MaxSlowdown(alone map[string]float64) float64 {
	var worst float64
	for i, app := range r.Apps {
		if a := alone[app]; a > 0 && i < len(r.CoreIPC) && r.CoreIPC[i] > 0 {
			if s := a / r.CoreIPC[i]; s > worst {
				worst = s
			}
		}
	}
	return worst
}

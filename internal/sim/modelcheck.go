package sim

import (
	"fmt"

	"pradram/internal/memctrl"
	"pradram/internal/power"
	"pradram/internal/stats"
)

// AnalyticEstimate feeds a simulation result's aggregate counters into the
// closed-form Micron-style calculator and returns the predicted breakdown
// in mW. The calculator and the simulator share parameters but compute
// power along independent paths (closed-form rates vs event-by-event
// accounting), so the ratio between them is a model-consistency check.
func AnalyticEstimate(res Result) (power.Breakdown, error) {
	calc := power.NewCalculator()
	total := float64(res.Dev.ActiveRankCycles + res.Dev.PrechargedRankCycles + res.Dev.PowerDownCycles)
	activeFrac, pdnFrac := 0.0, 0.0
	if total > 0 {
		activeFrac = float64(res.Dev.ActiveRankCycles) / total
		pdnFrac = float64(res.Dev.PowerDownCycles) / total
	}
	w := power.WorkloadFromCounts(
		res.RuntimeNs(),
		res.Ctrl.ReadsServed, res.Ctrl.WritesServed,
		res.Ctrl.RowHitRead, res.Ctrl.RowHitWrite,
		res.Dev.ActsByGranularity,
		res.Dev.WordsWritten, res.Dev.WordBudget,
		activeFrac, pdnFrac,
	)
	return calc.Estimate(w)
}

// modelCheckCases is the workload/scheme spread the cross-validation
// runs; keysModelCheck precomputes exactly this set.
var modelCheckCases = []struct {
	workload string
	scheme   memctrl.Scheme
}{
	{"GUPS", memctrl.Baseline},
	{"GUPS", memctrl.PRA},
	{"libquantum", memctrl.Baseline},
	{"libquantum", memctrl.PRA},
	{"MIX2", memctrl.Baseline},
	{"MIX2", memctrl.PRA},
}

// ExpModelCheck cross-validates the analytic calculator against the
// cycle-level simulation on a spread of workloads and schemes.
func ExpModelCheck(r *Runner) (string, error) {
	cases := modelCheckCases
	t := stats.NewTable("workload", "scheme", "simulated mW", "analytic mW", "ratio",
		"ACT ratio", "I/O ratio", "BG ratio")
	for _, c := range cases {
		res, err := r.Run(runKey{workload: c.workload, scheme: c.scheme, policy: memctrl.RelaxedClose, active: 4})
		if err != nil {
			return "", err
		}
		est, err := AnalyticEstimate(res)
		if err != nil {
			return "", err
		}
		simMW := res.AvgPowerMW()
		simBrk := res.Energy
		rt := res.RuntimeNs()
		ratio := func(c power.Component) string {
			s := simBrk[c] / rt
			if s == 0 {
				return "-"
			}
			return fmt.Sprintf("%.3f", est[c]/s)
		}
		ioSim := simBrk.IO() / rt
		ioRatio := "-"
		if ioSim > 0 {
			ioRatio = fmt.Sprintf("%.3f", est.IO()/ioSim)
		}
		t.Row(c.workload, c.scheme.String(), simMW, est.Total(),
			stats.Ratio(est.Total(), simMW), ratio(power.CompActPre), ioRatio, ratio(power.CompBG))
	}
	return t.String() + "\nRatios near 1.0 mean the closed-form model and the event-driven simulation\nagree; deviations come from burstiness the closed form cannot see (refresh\ninterference, drain phasing, queueing).\n", nil
}

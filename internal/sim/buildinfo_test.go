package sim

import "testing"

// TestBuildInfoContract pins the keys operators script against when
// correlating a live campaign (/vars/build) with its disk caches: the
// model version that keys result caches and the checkpoint container
// format must always be present and must match the package constants.
func TestBuildInfoContract(t *testing.T) {
	info := BuildInfo()
	if got := info["model_version"]; got != ModelVersion {
		t.Errorf("model_version = %v, want %v", got, ModelVersion)
	}
	if got := info["ckpt_format"]; got != int(ckptFormat) {
		t.Errorf("ckpt_format = %v, want %v", got, int(ckptFormat))
	}
	// Under `go test` the toolchain stamps build info, so the module block
	// should be there too.
	if got := info["module"]; got != "pradram" {
		t.Errorf("module = %v, want pradram", got)
	}
	if _, ok := info["go_version"]; !ok {
		t.Error("go_version missing")
	}
}

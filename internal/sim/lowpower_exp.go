package sim

import (
	"fmt"

	"pradram/internal/memctrl"
	"pradram/internal/power"
	"pradram/internal/stats"
)

// The power-down & refresh management experiments (DESIGN.md §4f):
// pdsweep measures how each entry policy and refresh mode trades
// low-power residency against performance, and powerband reports every
// energy figure as the min/nominal/max band its calibration implies.

// pdVariant is one power-management configuration of the sweep.
type pdVariant struct {
	name                 string
	policy               memctrl.PDPolicy
	pdTimeout, srTimeout int64
	slowPD               bool
	refMode              memctrl.RefreshMode
}

// pdVariants is the sweep, in presentation order. Timeouts are in memory
// cycles: 200 (250ns) is a conventional power-down hysteresis, 5000
// (6.25us) a conservative self-refresh threshold.
func pdVariants() []pdVariant {
	return []pdVariant{
		{name: "no-pd", policy: memctrl.PDNone},
		{name: "immediate", policy: memctrl.PDImmediate},
		{name: "imm-slowexit", policy: memctrl.PDImmediate, slowPD: true},
		{name: "timeout-200", policy: memctrl.PDTimed, pdTimeout: 200},
		{name: "queue-200", policy: memctrl.PDQueueAware, pdTimeout: 200},
		{name: "imm+selfref", policy: memctrl.PDImmediate, srTimeout: 5000},
		{name: "imm+perbank", policy: memctrl.PDImmediate, refMode: memctrl.RefreshPerBank},
		{name: "imm+elastic", policy: memctrl.PDImmediate, refMode: memctrl.RefreshElastic},
	}
}

// pdSweepWorkloads spans the intensity range: GUPS keeps every rank busy,
// bzip2 is compute-bound, and MIX1's imbalanced mix leaves whole ranks
// idle the longest — which is what rank-granularity power-down harvests.
var pdSweepWorkloads = []string{"bzip2", "GUPS", "MIX1"}

func pdKey(w string, v pdVariant) runKey {
	return runKey{workload: w, scheme: memctrl.Baseline, policy: memctrl.RelaxedClose, active: 4,
		pdPolicy: v.policy, pdTimeout: v.pdTimeout, srTimeout: v.srTimeout,
		slowPD: v.slowPD, refMode: v.refMode}
}

func keysPDSweep() []runKey {
	var keys []runKey
	for _, w := range pdSweepWorkloads {
		for _, v := range pdVariants() {
			keys = append(keys, pdKey(w, v))
		}
	}
	return keys
}

// ExpPDSweep regenerates the power-down & refresh management sweep:
// low-power residency, refresh-management activity, and the resulting
// background/total power for every entry policy, against the no-power-
// down baseline of each workload.
func ExpPDSweep(r *Runner) (string, error) {
	t := stats.NewTable("workload", "policy",
		"lowpow%", "selfref%", "REF", "REFpb", "post/pull",
		"BG mW", "total mW", "dPower%", "dCycles%")
	for _, w := range pdSweepWorkloads {
		base, err := r.Run(pdKey(w, pdVariant{name: "no-pd", policy: memctrl.PDNone}))
		if err != nil {
			return "", err
		}
		for _, v := range pdVariants() {
			res, err := r.Run(pdKey(w, v))
			if err != nil {
				return "", err
			}
			t.Row(w, v.name,
				fmt.Sprintf("%5.1f", 100*res.LowPowerResidency()),
				fmt.Sprintf("%5.1f", 100*res.SelfRefreshResidency()),
				res.Dev.Refreshes,
				res.Dev.PerBankRefreshes,
				fmt.Sprintf("%d/%d", res.Dev.PostponedRefreshes, res.Dev.PulledInRefreshes),
				res.Energy[power.CompBG]/res.RuntimeNs(),
				res.AvgPowerMW(),
				100*(res.AvgPowerMW()/base.AvgPowerMW()-1),
				100*(float64(res.Cycles)/float64(base.Cycles)-1))
		}
	}
	return t.String() + "\nlowpow% counts rank-cycles with CKE low (any power-down state or self-refresh);\n" +
		"dPower/dCycles are relative to the no-pd row of the same workload.\n", nil
}

// powerBandRuns are the (workload, scheme) pairs the band report covers.
func powerBandRuns() []runKey {
	var keys []runKey
	for _, w := range []string{"GUPS", "MIX1"} {
		for _, s := range []memctrl.Scheme{memctrl.Baseline, memctrl.PRA} {
			keys = append(keys, runKey{workload: w, scheme: s, policy: memctrl.RelaxedClose, active: 4})
		}
	}
	return keys
}

func keysPowerBand() []runKey { return powerBandRuns() }

// ExpPowerBand regenerates the calibrated power-band report: each
// simulated energy result under every calibration preset, as the
// min/nominal/max average-power band the correction factors imply.
// Calibration is post-hoc, so all presets share one simulation per run.
func ExpPowerBand(r *Runner) (string, error) {
	specs := []string{"none", "vendor", "ghose", "ghose:10"}
	t := stats.NewTable("workload", "scheme", "calibration",
		"min mW", "nom mW", "max mW", "spread%")
	for _, k := range powerBandRuns() {
		res, err := r.Run(k)
		if err != nil {
			return "", err
		}
		for _, spec := range specs {
			cal, err := power.ParseCalibration(spec)
			if err != nil {
				return "", err
			}
			band := cal.Total(res.Energy).Scale(1 / res.RuntimeNs())
			t.Row(k.workload, k.scheme.String(), spec,
				band.Min, band.Nom, band.Max, 100*band.Spread())
		}
	}
	return t.String() + "\nBands combine per-component correction-factor extremes (conservative);\n" +
		"the ghose preset follows the real-device deviations reported by Ghose et al.\n" +
		"(arXiv:1807.05102); \":10\" adds +-10% device-to-device variation on top.\n", nil
}

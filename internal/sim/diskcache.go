package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// ModelVersion stamps disk-cached results AND warmup checkpoints with the
// simulation model's semantic version. Bump it whenever a change alters
// simulated numbers, so stale caches invalidate instead of silently
// resurfacing old results — for checkpoints the stakes are higher than a
// wrong table: restoring a snapshot taken under different model semantics
// would silently contaminate every run warmed from it. A bump orphans old
// checkpoint files (their names hash the version) and System.Restore
// additionally rejects any payload whose embedded version disagrees.
// Container-format changes to the checkpoint encoding itself are versioned
// separately by ckptFormat (checkpoint.go).
// v3: Result gained always-on write-latency accounting
// (Ctrl.WriteLatencySum), so v2 cache entries would deserialize with the
// field silently zero.
const ModelVersion = "pradram-model-v3"

// diskCache persists one Result per configuration as a JSON file under
// dir, so repeated praexp invocations and CI reruns skip simulation
// entirely. Entries are keyed by the runKey string, the experiment budget
// (Instr/Warmup/Seed), and ModelVersion; anything else is a miss.
type diskCache struct{ dir string }

// diskEntry is the on-disk format. The key fields are stored in full (not
// just hashed into the filename) so a load can verify it found the right
// entry rather than trusting the hash.
type diskEntry struct {
	Key          string `json:"key"`
	ModelVersion string `json:"model_version"`
	Instr        int64  `json:"instr"`
	Warmup       int64  `json:"warmup"`
	Seed         uint64 `json:"seed"`
	Result       Result `json:"result"`
}

func newDiskCache(dir string) *diskCache {
	return &diskCache{dir: dir}
}

// matches reports whether an entry belongs to (key, opt) at the current
// model version.
func (e *diskEntry) matches(key string, opt ExpOptions) bool {
	return e.Key == key && e.ModelVersion == ModelVersion &&
		e.Instr == opt.Instr && e.Warmup == opt.Warmup && e.Seed == opt.Seed
}

func (d *diskCache) path(key string, opt ExpOptions) string {
	h := sha256.Sum256([]byte(fmt.Sprintf("%s|%s|%d|%d|%d",
		ModelVersion, key, opt.Instr, opt.Warmup, opt.Seed)))
	return filepath.Join(d.dir, hex.EncodeToString(h[:12])+".json")
}

// load returns the cached result for (key, opt), if present and valid.
// Any read, decode, or verification failure is simply a miss — the run
// re-simulates and overwrites the entry.
func (d *diskCache) load(key string, opt ExpOptions) (Result, bool) {
	raw, err := os.ReadFile(d.path(key, opt))
	if err != nil {
		return Result{}, false
	}
	var e diskEntry
	if err := json.Unmarshal(raw, &e); err != nil || !e.matches(key, opt) {
		return Result{}, false
	}
	return e.Result, true
}

// store writes the entry via a unique temp file plus atomic rename, so
// concurrent writers (parallel workers, or two praexp processes sharing a
// cache directory) can never interleave partial JSON.
func (d *diskCache) store(key string, opt ExpOptions, res Result) error {
	if err := os.MkdirAll(d.dir, 0o755); err != nil {
		return err
	}
	raw, err := json.Marshal(diskEntry{
		Key: key, ModelVersion: ModelVersion,
		Instr: opt.Instr, Warmup: opt.Warmup, Seed: opt.Seed,
		Result: res,
	})
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(d.dir, ".pradram-*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), d.path(key, opt))
}

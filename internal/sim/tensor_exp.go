package sim

import (
	"fmt"

	"pradram/internal/memctrl"
	"pradram/internal/stats"
	"pradram/internal/workload"
)

// The tensor-locality experiment (DESIGN.md §4j): the three loop
// permutations of the tensor/conv streaming generator touch the same set
// of rows in different orders, so their open-page activation counts are
// analytically predictable — segments × ceil(run/MaxRowHits) per epoch.
// The experiment runs each permutation through the full stack and reports
// the measured activation rate next to the closed form, plus what the
// locality difference is worth in row hits and DRAM power under Baseline
// and PRA.

// tensorSchemes spans the paper's axis on the tensor streams.
var tensorSchemes = []memctrl.Scheme{memctrl.Baseline, memctrl.PRA}

func tensorKey(w string, s memctrl.Scheme) runKey {
	// One active core keeps each tensor's bank private (co-runs map
	// different cores onto overlapping banks, which would break the
	// per-bank open-row accounting the closed form relies on), and the
	// open-page policy is where the ceil(run/MaxRowHits) law holds.
	return runKey{workload: w, scheme: s, policy: memctrl.OpenPage, active: 1}
}

func keysTensor() []runKey {
	var keys []runKey
	for _, w := range workload.TensorNames() {
		for _, s := range tensorSchemes {
			keys = append(keys, tensorKey(w, s))
		}
	}
	return keys
}

// ExpTensor regenerates the loop-permutation locality table. The analytic
// column is the oracle the correctness suite checks exactly (per bank,
// per row) under a refresh-free controller; here refresh is live, so the
// measured rate may sit a hair above it — every REF closes the open rows
// and the next access to each re-activates.
func ExpTensor(r *Runner) (string, error) {
	cap := memctrl.DefaultConfig().MaxRowHits
	t := stats.NewTable("tensor", "scheme", "ACTs/kAcc analytic", "ACTs/kAcc measured",
		"row hit%", "power mW", "cycles")
	for _, w := range workload.TensorNames() {
		spec, err := workload.TensorSpecFor(w)
		if err != nil {
			return "", err
		}
		acts, _, err := workload.TensorEpochActs(w, cap)
		if err != nil {
			return "", err
		}
		// Accesses per epoch: three tensor operands touched per step.
		analytic := 1000 * float64(acts) / float64(3*spec.StepsPerEpoch())
		for _, s := range tensorSchemes {
			res, err := r.Run(tensorKey(w, s))
			if err != nil {
				return "", err
			}
			served := res.Ctrl.ReadsServed + res.Ctrl.WritesServed
			measured := 1000 * float64(res.Dev.Activations()) / float64(served)
			t.Row(w, s.String(),
				fmt.Sprintf("%.1f", analytic),
				fmt.Sprintf("%.1f", measured),
				fmt.Sprintf("%.1f", 100*res.RowHitRateTotal()),
				res.AvgPowerMW(),
				res.Cycles)
		}
	}
	return t.String() + fmt.Sprintf("\nAnalytic: closed-form open-page activations per 1000 accesses at MaxRowHits=%d\n"+
		"(segments x ceil(run/cap) per epoch; the oracle test checks it exactly per bank\n"+
		"and row with refresh off). Loop order alone moves the activation rate. PRA\n"+
		"matches baseline here by design: the streams are read-only and PRA narrows\n"+
		"write activations only.\n", cap), nil
}

package sim

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"pradram/internal/memctrl"
	"pradram/internal/obs"
)

// skipCfg is a small but non-trivial configuration for the skip-vs-noskip
// identity checks: two cores, enough instructions to reach steady state
// through a warmup, and full telemetry (epoch sampling plus the command-
// level event trace) so the comparison covers timelines and event logs,
// not just end-of-run Results.
func skipCfg(workload string) Config {
	cfg := DefaultConfig(workload)
	cfg.Cores = 2
	cfg.InstrPerCore = 8_000
	cfg.WarmupPerCore = 2_000
	cfg.Obs = ObsConfig{EpochCycles: 512, EventLevel: obs.LevelCmd}
	return cfg
}

// runBoth executes cfg with fast-forwarding on and off and returns both
// systems with their results.
func runBoth(t *testing.T, cfg Config) (skip, noskip *System, rs, rn Result) {
	t.Helper()
	run := func(off bool) (*System, Result) {
		c := cfg
		c.NoSkip = off
		s, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return s, r
	}
	skip, rs = run(false)
	noskip, rn = run(true)
	return
}

// checkIdentical asserts the two runs agree on everything observable: the
// Result struct, the sampled epoch timeline, and the structured event log.
func checkIdentical(t *testing.T, skip, noskip *System, rs, rn Result) {
	t.Helper()
	if !reflect.DeepEqual(rs, rn) {
		t.Errorf("Results differ between skip and noskip:\nskip:   %+v\nnoskip: %+v", rs, rn)
	}
	ss, sn := skip.Recorder().Snapshot(), noskip.Recorder().Snapshot()
	if !reflect.DeepEqual(ss, sn) {
		t.Errorf("epoch timelines differ: skip %d rows, noskip %d rows", len(ss.Rows), len(sn.Rows))
	}
	es, en := skip.Events().Events(), noskip.Events().Events()
	if !reflect.DeepEqual(es, en) {
		n := len(es)
		if len(en) < n {
			n = len(en)
		}
		for i := 0; i < n; i++ {
			if es[i] != en[i] {
				t.Errorf("event logs diverge at entry %d: skip %+v, noskip %+v", i, es[i], en[i])
				return
			}
		}
		t.Errorf("event logs differ in length: skip %d, noskip %d", len(es), len(en))
	}
}

// TestSkipBitIdentityMatrix is the tentpole's correctness contract: for
// every activation scheme crossed with representative workloads (plus the
// DBI and ECC variants), a fast-forwarded run must be bit-identical to a
// per-cycle run — same Result, same epoch timeline, same event log. On the
// memory-bound workloads it additionally proves the skip path engaged at
// all (Skipped() > 0), so the matrix cannot pass vacuously.
func TestSkipBitIdentityMatrix(t *testing.T) {
	t.Parallel()
	type variant struct {
		name string
		mod  func(*Config)
	}
	variants := []variant{{"plain", func(*Config) {}}}
	for _, sch := range memctrl.Schemes() {
		for _, wl := range []string{"GUPS", "LinkedList", "bzip2"} {
			sch, wl := sch, wl
			name := fmt.Sprintf("%s/%s", sch, wl)
			vs := variants
			if sch == memctrl.PRA && wl == "GUPS" {
				// The case-study variants ride on one cell of the matrix
				// rather than multiplying the whole sweep.
				vs = []variant{
					{"plain", func(*Config) {}},
					{"DBI", func(c *Config) { c.DBI = true }},
					{"ECC", func(c *Config) { c.ECC = true }},
				}
			}
			for _, v := range vs {
				v := v
				sub := name
				if v.name != "plain" {
					sub = name + "/" + v.name
				}
				t.Run(sub, func(t *testing.T) {
					t.Parallel()
					cfg := skipCfg(wl)
					cfg.Scheme = sch
					v.mod(&cfg)
					skip, noskip, rs, rn := runBoth(t, cfg)
					checkIdentical(t, skip, noskip, rs, rn)
					if wl != "bzip2" && skip.Skipped() == 0 {
						t.Error("memory-bound run never fast-forwarded; the identity check is vacuous")
					}
					if noskip.Skipped() != 0 {
						t.Errorf("NoSkip run reports %d skipped cycles", noskip.Skipped())
					}
				})
			}
		}
	}
}

// TestSkipBudgetCountsExecutedTicks pins the MaxCycles semantics the
// fast-forward path depends on: the no-progress budget is spent in ticks
// the loop actually executed, not in cycles elapsed. A memory-bound run
// whose elapsed cycle count far exceeds the budget must still complete as
// long as its executed ticks fit, because skipped cycles are free.
func TestSkipBudgetCountsExecutedTicks(t *testing.T) {
	t.Parallel()
	cfg := skipCfg("LinkedList")
	cfg.Obs = ObsConfig{}
	cfg.ActiveCores = 1
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if s.Skipped() == 0 {
		t.Fatal("LinkedList single-core run never skipped; budget test needs an idle-heavy run")
	}
	if res.Cycles <= 0 {
		t.Fatal("run reported no cycles")
	}
	// Every elapsed cycle is either executed or skipped over.
	ticks, elapsed := s.ticks, s.ticks+s.Skipped()
	budget := ticks + ticks/2 // fits executed ticks, far below elapsed cycles
	if budget >= elapsed {
		t.Skipf("run not idle-dominated enough to separate the measures (ticks %d, elapsed %d)", ticks, elapsed)
	}
	cfg.MaxCycles = budget
	if _, err := RunOne(cfg); err != nil {
		t.Errorf("run aborted under a tick budget it fits (budget %d ticks, %d elapsed cycles): %v",
			budget, elapsed, err)
	}
	// The same budget interpreted as elapsed cycles would have aborted:
	// per-cycle mode spends one tick per cycle and must run out.
	cfg.NoSkip = true
	if _, err := RunOne(cfg); err == nil || !strings.Contains(err.Error(), "no progress") {
		t.Errorf("per-cycle run under the same budget should exhaust it, got %v", err)
	}
}

// TestMaxCyclesAbortsBothModes covers the abort path in both run modes: a
// tiny budget must produce the no-progress error, never a hang, whether
// the loop fast-forwards or ticks every cycle.
func TestMaxCyclesAbortsBothModes(t *testing.T) {
	t.Parallel()
	for _, noskip := range []bool{false, true} {
		cfg := quickCfg("GUPS")
		cfg.MaxCycles = 10
		cfg.NoSkip = noskip
		_, err := RunOne(cfg)
		if err == nil || !strings.Contains(err.Error(), "no progress") {
			t.Errorf("NoSkip=%v: tiny MaxCycles must abort with a progress error, got %v", noskip, err)
		}
	}
}

// FuzzSkipEpochBoundaries randomizes the interaction the fast-forward path
// must never perturb: the telemetry epoch boundary (which clamps every
// jump), the instruction target, and the workload seed. For any input the
// skip and per-cycle runs must agree on the Result and on the sampled
// timeline.
func FuzzSkipEpochBoundaries(f *testing.F) {
	f.Add(int64(64), int64(3_000), uint64(1), uint8(0))
	f.Add(int64(1), int64(1_000), uint64(7), uint8(1))
	f.Add(int64(997), int64(5_000), uint64(42), uint8(2))
	f.Add(int64(4096), int64(2_000), uint64(3), uint8(0))
	f.Fuzz(func(t *testing.T, epoch, instr int64, seed uint64, wsel uint8) {
		if epoch < 1 || epoch > 1<<20 || instr < 100 || instr > 20_000 {
			t.Skip()
		}
		workloads := []string{"GUPS", "LinkedList", "bzip2"}
		cfg := DefaultConfig(workloads[int(wsel)%len(workloads)])
		cfg.Cores = 2
		cfg.InstrPerCore = instr
		cfg.WarmupPerCore = instr / 4
		cfg.Seed = seed%1000 + 1
		cfg.Obs = ObsConfig{EpochCycles: epoch}
		run := func(off bool) (Result, obs.TimelineSnapshot) {
			c := cfg
			c.NoSkip = off
			s, err := New(c)
			if err != nil {
				t.Fatal(err)
			}
			r, err := s.Run()
			if err != nil {
				t.Fatal(err)
			}
			return r, s.Recorder().Snapshot()
		}
		rs, ts := run(false)
		rn, tn := run(true)
		if !reflect.DeepEqual(rs, rn) {
			t.Errorf("Results differ (epoch %d, instr %d, seed %d)", epoch, instr, seed)
		}
		if !reflect.DeepEqual(ts, tn) {
			t.Errorf("timelines differ (epoch %d, instr %d, seed %d): %d vs %d rows",
				epoch, instr, seed, len(ts.Rows), len(tn.Rows))
		}
	})
}

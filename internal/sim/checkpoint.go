package sim

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"

	"pradram/internal/checkpoint"
	"pradram/internal/core"
	"pradram/internal/cpu"
	"pradram/internal/dram"
	"pradram/internal/memctrl"
	"pradram/internal/workload"
)

// Warmup checkpointing (DESIGN.md §4e). A checkpoint captures the full
// simulator state at the warmup boundary — the instant Warmup returns,
// immediately after every statistic was reset — so a campaign can warm a
// configuration once and measure many variants from the same state.
// Restore-then-Measure is bit-identical to a monolithic Run: the bit-
// identity matrix in checkpoint_test.go enforces it per scheme, workload,
// and variant.
//
// Checkpoints are keyed by a warmup fingerprint: a hash over exactly the
// Config fields that can influence execution up to the warmup boundary.
// Fields that only affect energy accounting, statistics, or the measured
// window are excluded — each exclusion is justified by a cross-restore
// test (TestCheckpointFieldExclusions) and the full field classification
// is enforced by TestWarmupFingerprintFields, so adding a Config field
// without classifying it fails the build's tests.

// warmupKey lists every Config field included in the fingerprint. The
// fingerprint hashes this struct's %#v rendering, so adding a field here
// (or changing a member type) changes every fingerprint — which is the
// safe direction: at worst a cold warmup, never a wrong reuse.
type warmupKey struct {
	Workload      string // canonical spelling: resolves per-core generators and their regions
	Scheme        memctrl.Scheme
	Policy        memctrl.Policy
	DBI           bool // changes cache writeback behaviour during warmup
	NoTimingRelax bool // changes DRAM timing during warmup
	NoMaskCycle   bool // changes DRAM timing during warmup
	Cores         int
	ActiveCores   int // normalized (0 means all cores)
	WarmupPerCore int64
	Seed          uint64
	CPU           cpu.Config
	Timing        dram.Timing // normalized (nil Config.Timing means the DDR3-1600 default)
	CPUPerMem     int64       // normalized to the effective clock ratio
	NoSkip        bool        // changes the executed-tick count carried across the boundary
	MaxCycles     int64       // changes where a stuck warmup aborts
	Channels      int         // changes address decomposition, hence all warmup traffic

	// Power-down and refresh management all steer controller decisions
	// during warmup (entry timing, refresh scheduling), so they are part
	// of the key. PowerCal is NOT: calibration is applied post-hoc to the
	// energy breakdown and cannot influence execution.
	PDPolicy    memctrl.PDPolicy
	PDTimeout   int64
	SRTimeout   int64
	PDSlowExit  bool
	APD         bool
	RefreshMode memctrl.RefreshMode

	// RowHammer mitigation parameters steer alert/RFM decisions during
	// warmup, and the counter-table capacity shapes the serialized tables.
	MitThreshold   int
	MitAlertCycles int64
	MitTableCap    int
}

// timingOrDefault returns the effective DDR3 timing set (Config.Timing,
// or the DDR3-1600 default a nil Timing selects).
func (c Config) timingOrDefault() dram.Timing {
	if c.Timing != nil {
		return *c.Timing
	}
	return dram.DefaultTiming()
}

// WarmupFingerprint returns the checkpoint key for cfg's warmup phase and
// whether the configuration supports checkpointing at all. Configs with a
// custom Generator hook are unsupported (the hook is opaque, so equality
// of warmup behaviour cannot be established), as are configs without a
// warmup phase (there is no boundary to checkpoint).
func WarmupFingerprint(cfg Config) (string, bool) {
	if cfg.Generator != nil || cfg.WarmupPerCore <= 0 {
		return "", false
	}
	key := warmupKey{
		Workload:       workload.Canonical(cfg.Workload),
		Scheme:         cfg.Scheme,
		Policy:         cfg.Policy,
		DBI:            cfg.DBI,
		NoTimingRelax:  cfg.NoTimingRelax,
		NoMaskCycle:    cfg.NoMaskCycle,
		Cores:          cfg.Cores,
		ActiveCores:    cfg.ActiveCores,
		WarmupPerCore:  cfg.WarmupPerCore,
		Seed:           cfg.Seed,
		CPU:            cfg.CPU,
		Timing:         cfg.timingOrDefault(),
		CPUPerMem:      memctrl.DefaultConfig().CPUPerMem,
		NoSkip:         cfg.NoSkip,
		MaxCycles:      cfg.MaxCycles,
		Channels:       cfg.Channels,
		PDPolicy:       cfg.PDPolicy,
		PDTimeout:      cfg.PDTimeout,
		SRTimeout:      cfg.SRTimeout,
		PDSlowExit:     cfg.PDSlowExit,
		APD:            cfg.APD,
		RefreshMode:    cfg.RefreshMode,
		MitThreshold:   cfg.MitThreshold,
		MitAlertCycles: cfg.MitAlertCycles,
		MitTableCap:    cfg.MitTableCap,
	}
	if key.ActiveCores == 0 {
		key.ActiveCores = key.Cores
	}
	if cfg.CPUPerMem > 0 {
		key.CPUPerMem = cfg.CPUPerMem
	}
	h := sha256.Sum256([]byte(fmt.Sprintf("%#v", key)))
	return hex.EncodeToString(h[:16]), true
}

// ckptMagic stamps checkpoint files; ckptFormat is the container-format
// version (bump on any layout change). Model-semantics changes are covered
// by ModelVersion, which is embedded alongside.
const (
	ckptMagic  = "pradram-ckpt"
	ckptFormat = 4 // v4: per-request latency-attribution mark + breakdown
)

// Checkpoint serializes the system's complete post-warmup state. It must
// be called at the warmup boundary — after Warmup returned nil and before
// Measure — because the encoding relies on all statistics and energy
// accumulators being freshly reset there (they are omitted from the
// payload). The bytes are self-describing: magic, format version, model
// version, warmup fingerprint, component payloads, CRC32 trailer.
func (s *System) Checkpoint() ([]byte, error) {
	if !s.warmed {
		return nil, fmt.Errorf("sim: checkpoint requires a completed warmup")
	}
	fp, ok := WarmupFingerprint(s.cfg)
	if !ok {
		return nil, fmt.Errorf("sim: config does not support checkpointing")
	}
	w := &checkpoint.Writer{}
	w.Grow(2 << 20) // cache line arrays dominate: ~1.7 MB on the default geometry
	w.String(ckptMagic)
	w.U8(ckptFormat)
	w.String(ModelVersion)
	w.String(fp)
	w.I64(s.cycle)
	w.I64(s.ticks)
	w.I64(s.skipped)
	w.I64(s.now)
	for _, c := range s.cores {
		c.SaveState(w)
	}
	for _, c := range s.cores {
		sv, ok := c.Generator().(checkpoint.Saver)
		if !ok {
			return nil, fmt.Errorf("sim: generator %T is not checkpointable", c.Generator())
		}
		sv.SaveState(w)
	}
	s.hier.SaveState(w)
	s.ctrl.SaveState(w)
	buf := w.Bytes()
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf)), nil
}

// Restore installs a checkpointed warmup state into a freshly built
// System, replacing a Warmup call; follow it with Measure. The checkpoint
// must carry the current model version and the fingerprint of this
// system's own config — restore never trusts the caller to have matched
// them. Validation is transactional: the header and CRC are checked
// before any decode, every component decodes into temporaries, and state
// is only installed once the entire payload (including full consumption)
// has been verified — a failed Restore leaves the System pristine, so the
// caller can fall back to a cold Warmup on the same instance.
func (s *System) Restore(data []byte) error {
	if s.warmed || s.cycle != 0 || s.ticks != 0 {
		return fmt.Errorf("sim: restore requires a freshly built system")
	}
	fp, ok := WarmupFingerprint(s.cfg)
	if !ok {
		return fmt.Errorf("sim: config does not support checkpointing")
	}
	if len(data) < 4 {
		return fmt.Errorf("%w: too short for a checkpoint", checkpoint.ErrCorrupt)
	}
	body := data[:len(data)-4]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(data[len(data)-4:]); got != want {
		return fmt.Errorf("%w: CRC mismatch (got %08x, want %08x)", checkpoint.ErrCorrupt, got, want)
	}
	r := checkpoint.NewReader(body)
	if magic := r.String(); r.Err() == nil && magic != ckptMagic {
		return fmt.Errorf("%w: bad magic %q", checkpoint.ErrCorrupt, magic)
	}
	if format := r.U8(); r.Err() == nil && format != ckptFormat {
		return fmt.Errorf("sim: checkpoint format %d, want %d", format, ckptFormat)
	}
	if mv := r.String(); r.Err() == nil && mv != ModelVersion {
		return fmt.Errorf("sim: checkpoint model version %q, want %q", mv, ModelVersion)
	}
	if cfp := r.String(); r.Err() == nil && cfp != fp {
		return fmt.Errorf("sim: checkpoint fingerprint %s does not match config %s", cfp, fp)
	}
	if err := r.Err(); err != nil {
		return err
	}

	cycle := r.I64()
	ticks := r.I64()
	skipped := r.I64()
	now := r.I64()
	if cycle < 0 || ticks < 0 || skipped < 0 {
		return fmt.Errorf("%w: negative clock state", checkpoint.ErrCorrupt)
	}

	commits := make([]func(), 0, 2*len(s.cores)+3)
	resolvers := make([]func(core.DoneTag) (core.Done, bool), len(s.cores))
	for i, c := range s.cores {
		commit, resolve, err := c.RestoreState(r)
		if err != nil {
			return err
		}
		commits = append(commits, commit)
		resolvers[i] = resolve
	}
	resolve := func(tag core.DoneTag) (core.Done, bool) {
		if int(tag.Core) < 0 || int(tag.Core) >= len(resolvers) {
			return core.Done{}, false
		}
		return resolvers[tag.Core](tag)
	}
	for _, c := range s.cores {
		sv, ok := c.Generator().(checkpoint.Saver)
		if !ok {
			return fmt.Errorf("sim: generator %T is not checkpointable", c.Generator())
		}
		commit, err := sv.RestoreState(r)
		if err != nil {
			return err
		}
		commits = append(commits, commit)
	}
	hierCommit, fillResolve, err := s.hier.RestoreState(r, resolve)
	if err != nil {
		return err
	}
	commits = append(commits, hierCommit)
	ctrlCommit, err := s.ctrl.RestoreState(r, fillResolve)
	if err != nil {
		return err
	}
	commits = append(commits, ctrlCommit)
	if err := r.Done(); err != nil {
		return err
	}

	for _, commit := range commits {
		commit()
	}
	s.cycle = cycle
	s.ticks = ticks
	s.skipped = skipped
	s.now = now
	if s.cap != nil {
		// Same rebase Warmup performs: the measured window starts here.
		s.cap.Trace.Records = s.cap.Trace.Records[:0]
		s.capBase = cycle
	}
	s.ev.Reset()
	s.warmed = true
	return nil
}

package sim

import (
	"testing"

	"pradram/internal/memctrl"
)

// BenchmarkProfileRun is the end-to-end throughput benchmark (and the
// standing CPU-profiling target): a full 4-core MIX2 run under PRA,
// exercising the pointer-chasing workloads that stress the scheduler most.
func BenchmarkProfileRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig("MIX2")
		cfg.Scheme = memctrl.PRA
		cfg.InstrPerCore = 100_000
		cfg.WarmupPerCore = 100_000
		if _, err := RunOne(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

package sim

import (
	"sort"
	"testing"

	"pradram/internal/dram"
	"pradram/internal/memctrl"
	"pradram/internal/workload"
)

// The analytic-oracle tests for the tensor/conv streaming generators
// (DESIGN.md §4j). Where the hammer oracle pins per-row activation counts
// that are independent of the paging policy, the tensor oracle pins the
// *policy-dependent* count: under OpenPage, a same-row run of length L
// costs exactly ceil(L/MaxRowHits) activations, so the loop permutation's
// row locality shows up as a closed-form activation total
// (workload.TensorEpochActs) and a per-(bank, row) breakdown
// (workload.TensorCounts). These tests run the full stack and demand
// exact agreement — a cache absorbing a supposedly-compulsory miss, a
// reordered dependent load, a mis-mapped bank bit, or an open-page
// accounting bug all surface as a count mismatch.

func tensorOracleCfg(name string) Config {
	cfg := DefaultConfig(name)
	cfg.Cores = 1
	cfg.InstrPerCore = 12_000
	cfg.WarmupPerCore = 0
	cfg.Policy = memctrl.OpenPage // the policy whose ACT count the closed form models
	t := dram.DefaultTiming()
	t.TREFI = 1 << 30 // no refresh before the run ends: counters never reset
	cfg.Timing = &t
	cfg.MitThreshold = 1 << 30 // counting armed, threshold unreachable
	// The streams visit ~60 fresh rows per bank per epoch; an exact oracle
	// needs every row tracked, so the table must outlast the run.
	cfg.MitTableCap = 8192
	return cfg
}

// scanTensorCounters sweeps every bank of the system, asserts all
// activity is confined to the core's three tensor banks on (channel 0,
// rank 0), and returns the merged per-(bank, row) table plus the total.
func scanTensorCounters(t *testing.T, s *System, banks [3]int) (map[workload.TensorRow]int64, int64) {
	t.Helper()
	ctrl := s.Controller()
	g := dram.DefaultGeometry()
	bankSet := map[int]bool{banks[0]: true, banks[1]: true, banks[2]: true}
	got := map[workload.TensorRow]int64{}
	var total int64
	for ch := 0; ch < hammerOracleChannels; ch++ {
		for r := 0; r < g.Ranks; r++ {
			for b := 0; b < g.Banks; b++ {
				counts := ctrl.RowCounts(ch, r, b)
				spill := ctrl.RowSpill(ch, r, b)
				if ch == 0 && r == 0 && bankSet[b] {
					if spill != 0 {
						t.Errorf("bank %d spilled (%d): table capacity too small for an exact oracle", b, spill)
					}
					for row, c := range counts {
						got[workload.TensorRow{Bank: b, Row: row}] = c
						total += c
					}
					continue
				}
				if len(counts) != 0 || spill != 0 {
					t.Errorf("bank confinement violated: ch%d rank%d bank%d holds %d tracked rows, spill %d",
						ch, r, b, len(counts), spill)
				}
			}
		}
	}
	return got, total
}

// TestTensorAnalyticOracle is the end-to-end acceptance check: for every
// loop permutation, simulated ACT counts equal the analytic walk exactly,
// per bank and per row.
func TestTensorAnalyticOracle(t *testing.T) {
	t.Parallel()
	cap := memctrl.DefaultConfig().MaxRowHits
	totals := map[string]int64{}
	epochTotals := map[string]int64{}
	for _, name := range workload.TensorNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := tensorOracleCfg(name)
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Run(); err != nil {
				t.Fatal(err)
			}
			region := workload.Region{Base: 0, Bytes: 1 << 30}
			_, banks, rowBase := workload.TensorTarget(0, region)
			// Confirm the generator's hardcoded mapping against the real
			// address mapper: region-relative row 0 of each tensor bank
			// must decompose to (channel 0, rank 0, bank, rowBase).
			for _, bank := range banks {
				loc := s.Controller().Mapper().Decompose(region.Base + uint64(bank)<<14)
				if loc.Channel != 0 || loc.Rank != 0 || loc.Bank != bank || loc.Row != rowBase {
					t.Fatalf("mapper places region row 0 at %+v, want ch0 rank0 bank%d row%d",
						loc, bank, rowBase)
				}
			}
			got, total := scanTensorCounters(t, s, banks)
			epochActs, _, err := workload.TensorEpochActs(name, cap)
			if err != nil {
				t.Fatal(err)
			}
			if total < epochActs {
				t.Fatalf("only %d activations reached DRAM (one epoch is %d); the oracle is vacuous",
					total, epochActs)
			}
			want, err := workload.TensorCounts(name, 0, region, cap, total)
			if err != nil {
				t.Fatal(err)
			}
			keys := map[workload.TensorRow]bool{}
			for k := range got {
				keys[k] = true
			}
			for k := range want {
				keys[k] = true
			}
			sorted := make([]workload.TensorRow, 0, len(keys))
			for k := range keys {
				sorted = append(sorted, k)
			}
			sort.Slice(sorted, func(i, j int) bool {
				if sorted[i].Bank != sorted[j].Bank {
					return sorted[i].Bank < sorted[j].Bank
				}
				return sorted[i].Row < sorted[j].Row
			})
			for _, k := range sorted {
				if got[k] != want[k] {
					t.Errorf("bank %d row %d: simulated count %d, analytic count %d",
						k.Bank, k.Row, got[k], want[k])
				}
			}
			totals[name] = total
			epochTotals[name] = epochActs
		})
	}
	// The acceptance criterion demands at least two permutations with
	// different row locality: the per-epoch closed forms must differ (and
	// they do more than pairwise — KCP/PKC/CPK all differ).
	t.Run("permutations-differ", func(t *testing.T) {
		if epochTotals["TensorKCP"] == epochTotals["TensorPKC"] ||
			epochTotals["TensorKCP"] == epochTotals["TensorCPK"] ||
			epochTotals["TensorPKC"] == epochTotals["TensorCPK"] {
			t.Errorf("per-epoch activation totals not pairwise distinct: %v", epochTotals)
		}
	})
}

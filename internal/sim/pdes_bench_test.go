package sim

import "testing"

// Full-system wall-clock benchmarks for parallel-in-time ticking, paired
// seq/par so tools/benchgate -pdes can gate on their ratio without a
// stored hardware baseline:
//
//   - The multi-channel pair (four-core lbm over four channels) is where
//     partitioned ticking must win: lbm's scatter stores keep all four
//     write queues draining concurrently, and a draining channel with an
//     empty read queue is provably completion-free, so nearly every
//     executed tick dispatches the full channel set to the worker team.
//     Its seq/par ratio is the speedup gate — enforced only when the
//     process actually has cores to parallelize over (benchgate checks
//     GOMAXPROCS; the measurement is recorded either way).
//   - The one-channel pair is the degenerate case: with nothing to
//     partition, EnableParallel declines and requesting -par must cost
//     nothing. Its par/seq ratio is the overhead ceiling.
//
// Runs are deterministic and bit-identical across modes (the pdes
// identity suite enforces it), so ns/op differences are pure host and
// scheduling effects.

func pdesBenchCfg(channels int) Config {
	cfg := DefaultConfig("lbm")
	cfg.Channels = channels
	cfg.InstrPerCore = 120_000
	cfg.WarmupPerCore = 30_000
	return cfg
}

func benchPdes(b *testing.B, channels, par int) {
	b.Helper()
	cfg := pdesBenchCfg(channels)
	cfg.Par = par
	for i := 0; i < b.N; i++ {
		s, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
		if par > 0 && channels > 1 && s.Controller().ParallelTicks() == 0 {
			b.Fatal("parallel benchmark never dispatched a parallel tick")
		}
	}
}

func BenchmarkPdesMultiChanSeq(b *testing.B) { benchPdes(b, 4, 0) }
func BenchmarkPdesMultiChanPar(b *testing.B) { benchPdes(b, 4, 4) }
func BenchmarkPdesOneChanSeq(b *testing.B)   { benchPdes(b, 1, 0) }
func BenchmarkPdesOneChanPar(b *testing.B)   { benchPdes(b, 1, 4) }

package sim

import (
	"fmt"
	"reflect"
	"testing"

	"pradram/internal/memctrl"
	"pradram/internal/obs"
)

// Bit-identity matrix for parallel-in-time ticking (DESIGN.md §4i): a run
// whose memory controller ticks its channels concurrently over the
// conservative PDES dispatch must be indistinguishable — Result, epoch
// timeline, event log — from the sequential tick loop, across schemes,
// workloads, skip modes, mitigation, and checkpoint restore. Unlike the
// skip matrix this one widens the controller to four channels, since two
// is the degenerate minimum for a partitioned run.

// pdesPar is the worker-share count the identity cells request: odd on
// purpose, so the round-robin channel assignment is uneven (shares own
// {0,3}, {1}, {2} of four channels) and share boundaries move relative to
// the dispatch prefix.
const pdesPar = 3

// pdesCfg sizes a matrix cell: four channels, recorder-only telemetry
// (the event trace forces the sequential fallback, covered separately by
// TestPdesEventTraceFallsBackSequential).
func pdesCfg(workload string) Config {
	cfg := DefaultConfig(workload)
	cfg.Cores = 2
	cfg.Channels = 4
	cfg.InstrPerCore = 8_000
	cfg.WarmupPerCore = 2_000
	cfg.Obs = ObsConfig{EpochCycles: 512}
	return cfg
}

// runSeqPar executes cfg sequentially and with parallel-in-time ticking
// and returns both systems with their results.
func runSeqPar(t *testing.T, cfg Config) (seq, par *System, rs, rp Result) {
	t.Helper()
	run := func(shares int) (*System, Result) {
		c := cfg
		c.Par = shares
		s, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return s, r
	}
	seq, rs = run(0)
	par, rp = run(pdesPar)
	return
}

// requireParEngaged fails the test if the parallel run never dispatched a
// multi-channel tick — the non-vacuity guard of every identity cell.
func requireParEngaged(t *testing.T, par *System) {
	t.Helper()
	ctrl := par.Controller()
	if !ctrl.ParallelEnabled() {
		t.Fatal("parallel ticking is not enabled on the par system")
	}
	if got, want := ctrl.ParallelWorkers(), pdesPar; got != want {
		t.Fatalf("ParallelWorkers() = %d, want %d", got, want)
	}
	if ctrl.ParallelTicks() == 0 {
		t.Error("run never dispatched a parallel tick; the identity check is vacuous")
	}
	if ctrl.ParallelChannelTicks() < ctrl.ParallelTicks() {
		t.Errorf("channel-tick counter %d below dispatch counter %d",
			ctrl.ParallelChannelTicks(), ctrl.ParallelTicks())
	}
}

// TestPdesBitIdentityMatrix is the tentpole's correctness contract: every
// activation scheme crossed with representative workloads (plus noskip,
// DBI, power-down, latency-attribution, and mitigation variants riding on
// single cells) must produce bit-identical Results and timelines whether
// the channels tick sequentially or concurrently.
func TestPdesBitIdentityMatrix(t *testing.T) {
	t.Parallel()
	type variant struct {
		name string
		mod  func(*Config)
	}
	variants := []variant{{"plain", func(*Config) {}}}
	for _, sch := range memctrl.Schemes() {
		for _, wl := range []string{"GUPS", "LinkedList", "bzip2"} {
			sch, wl := sch, wl
			name := fmt.Sprintf("%s/%s", sch, wl)
			vs := variants
			if sch == memctrl.PRA && wl == "GUPS" {
				// Feature variants ride on one cell of the matrix
				// rather than multiplying the whole sweep.
				vs = []variant{
					{"plain", func(*Config) {}},
					{"noskip", func(c *Config) { c.NoSkip = true }},
					{"DBI", func(c *Config) { c.DBI = true }},
					{"latbreak", func(c *Config) { c.LatBreak = true; c.LatSpanEvery = 8 }},
					{"pd-sr", func(c *Config) {
						c.PDPolicy = memctrl.PDTimed
						c.PDTimeout = 64
						c.SRTimeout = 4_096
						c.RefreshMode = memctrl.RefreshElastic
					}},
				}
			}
			for _, v := range vs {
				v := v
				sub := name
				if v.name != "plain" {
					sub = name + "/" + v.name
				}
				t.Run(sub, func(t *testing.T) {
					t.Parallel()
					cfg := pdesCfg(wl)
					cfg.Scheme = sch
					v.mod(&cfg)
					seq, par, rs, rp := runSeqPar(t, cfg)
					checkIdentical(t, seq, par, rs, rp)
					if seq.Controller().ParallelEnabled() {
						t.Error("sequential control run has parallel ticking enabled")
					}
					if wl != "bzip2" {
						requireParEngaged(t, par)
					}
				})
			}
		}
	}
}

// TestPdesHammerIdentity crosses parallel ticking with the Alert/RFM
// mitigation on the double-sided hammer — the hardest scheduling case:
// alert back-off deadlines and RFM issue are per-channel FSM state whose
// tick must not move relative to cross-channel completions — in both skip
// modes.
func TestPdesHammerIdentity(t *testing.T) {
	t.Parallel()
	for _, noskip := range []bool{false, true} {
		noskip := noskip
		name := "skip"
		if noskip {
			name = "noskip"
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := pdesCfg("HammerDouble")
			cfg.Scheme = memctrl.PRA
			cfg.MitThreshold = hammerMitThreshold
			cfg.NoSkip = noskip
			seq, par, rs, rp := runSeqPar(t, cfg)
			checkIdentical(t, seq, par, rs, rp)
			requireParEngaged(t, par)
			if rp.Ctrl.Alerts == 0 {
				t.Error("hammer run raised no alerts; the mitigation cell is vacuous")
			}
		})
	}
}

// TestPdesCheckpointRestoreIdentity proves the cold/restore axis of the
// matrix: a checkpoint taken by a sequential warmup restores into a
// parallel system (and vice versa — Par is excluded from the warmup
// fingerprint) and measures bit-identically to the sequential monolithic
// run.
func TestPdesCheckpointRestoreIdentity(t *testing.T) {
	t.Parallel()
	cells := []struct {
		name string
		mod  func(*Config)
	}{
		{"PRA-GUPS", func(c *Config) { c.Scheme = memctrl.PRA }},
		{"hammer-mit", func(c *Config) {
			c.Workload = "HammerDouble"
			c.Scheme = memctrl.PRA
			c.MitThreshold = hammerMitThreshold
		}},
		{"pd-lbm", func(c *Config) {
			c.Workload = "lbm"
			c.PDPolicy = memctrl.PDTimed
			c.PDTimeout = 64
		}},
	}
	for _, cell := range cells {
		cell := cell
		t.Run(cell.name, func(t *testing.T) {
			t.Parallel()
			cfg := pdesCfg("GUPS")
			cell.mod(&cfg)
			seqCfg, parCfg := cfg, cfg
			parCfg.Par = pdesPar

			seqSys, err := New(seqCfg)
			if err != nil {
				t.Fatal(err)
			}
			want, err := seqSys.Run()
			if err != nil {
				t.Fatal(err)
			}

			// Sequential warmup's checkpoint, measured in parallel mode.
			data := warmAndCheckpoint(t, seqCfg)
			parSys, got := restoreAndMeasure(t, parCfg, data)
			checkIdentical(t, seqSys, parSys, want, got)
			requireParEngaged(t, parSys)

			// Parallel warmup's checkpoint, measured sequentially.
			dataPar := warmAndCheckpoint(t, parCfg)
			if !reflect.DeepEqual(data, dataPar) {
				t.Error("sequential and parallel warmups produced different checkpoint bytes")
			}
			seqSys2, got2 := restoreAndMeasure(t, seqCfg, dataPar)
			checkIdentical(t, seqSys, seqSys2, want, got2)
		})
	}
}

// TestPdesEventTraceFallsBackSequential pins the fallback rule: a run
// that records the structured event trace must tick sequentially even
// when Par is set (event order through the shared ring is part of the
// bit-identity contract), and its output must still match the sequential
// run exactly — including the event log.
func TestPdesEventTraceFallsBackSequential(t *testing.T) {
	t.Parallel()
	cfg := pdesCfg("GUPS")
	cfg.Scheme = memctrl.PRA
	cfg.Obs = ObsConfig{EpochCycles: 512, EventLevel: obs.LevelCmd}
	seq, par, rs, rp := runSeqPar(t, cfg)
	checkIdentical(t, seq, par, rs, rp)
	ctrl := par.Controller()
	if ctrl.ParallelEnabled() {
		t.Error("event-tracing run kept parallel ticking enabled; must fall back to sequential")
	}
	if ctrl.ParallelTicks() != 0 {
		t.Errorf("event-tracing run dispatched %d parallel ticks", ctrl.ParallelTicks())
	}
	if len(par.Events().Events()) == 0 {
		t.Error("fallback run recorded no events; the comparison is vacuous")
	}
}

// FuzzPdesWindowBoundaries randomizes the edges the conservative dispatch
// must never mispredict across: refresh scheduling (per-bank and elastic
// modes push REF against busy windows), power-down entry/exit timeouts,
// and mitigation alert deadlines. For any input the sequential and
// parallel runs must agree on the Result and the sampled timeline.
func FuzzPdesWindowBoundaries(f *testing.F) {
	f.Add(int64(3_000), uint64(1), uint8(0), uint8(0), int64(0), int64(0))
	f.Add(int64(2_000), uint64(7), uint8(1), uint8(1), int64(64), int64(4_096))
	f.Add(int64(4_000), uint64(42), uint8(3), uint8(2), int64(1), int64(1))
	f.Add(int64(1_000), uint64(3), uint8(2), uint8(1), int64(200), int64(0))
	f.Fuzz(func(t *testing.T, instr int64, seed uint64, wsel, rsel uint8, pdTimeout, srTimeout int64) {
		if instr < 100 || instr > 20_000 || pdTimeout < 0 || pdTimeout > 1<<20 ||
			srTimeout < 0 || srTimeout > 1<<24 {
			t.Skip()
		}
		workloads := []string{"GUPS", "lbm", "LinkedList", "HammerDouble"}
		cfg := pdesCfg(workloads[int(wsel)%len(workloads)])
		cfg.InstrPerCore = instr
		cfg.WarmupPerCore = instr / 4
		cfg.Seed = seed%1000 + 1
		switch rsel % 3 {
		case 1:
			cfg.RefreshMode = memctrl.RefreshPerBank
		case 2:
			cfg.RefreshMode = memctrl.RefreshElastic
		}
		if pdTimeout > 0 {
			cfg.PDPolicy = memctrl.PDTimed
			cfg.PDTimeout = pdTimeout
		}
		cfg.SRTimeout = srTimeout
		if cfg.Workload == "HammerDouble" {
			cfg.MitThreshold = hammerMitThreshold
		}
		seq, par, rs, rp := runSeqPar(t, cfg)
		if !reflect.DeepEqual(rs, rp) {
			t.Errorf("Results differ (instr %d, seed %d, wsel %d, rsel %d, pd %d, sr %d)",
				instr, seed, wsel, rsel, pdTimeout, srTimeout)
		}
		ts, tp := seq.Recorder().Snapshot(), par.Recorder().Snapshot()
		if !reflect.DeepEqual(ts, tp) {
			t.Errorf("timelines differ (instr %d, seed %d): %d vs %d rows",
				instr, seed, len(ts.Rows), len(tp.Rows))
		}
	})
}

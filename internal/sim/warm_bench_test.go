package sim

import (
	"testing"

	"pradram/internal/memctrl"
)

// Paired wall-clock benchmarks for warmup checkpointing, gated by
// tools/benchgate -warm on ratios between the pairs (host-normalized, no
// stored baseline):
//
//   - The campaign pair runs four configurations that share one warmup
//     fingerprint (ECC and NoPartialIO are energy-only knobs, excluded
//     from it) under a warmup-dominated budget. The checkpoint path warms
//     once and restores three times; the cold path warms four times. The
//     cold/checkpoint ratio is the campaign speedup the feature exists
//     for, and its CI floor is 1.3x.
//   - The single pair runs one configuration through the producer path
//     (warm, serialize a checkpoint, measure) against a monolithic Run.
//     The only extra work is serialization (~2-3 ms for the ~1.7 MB
//     payload, constant in run length), so its gate is a tight overhead
//     ceiling: producing a snapshot nobody reuses must be (almost) free.
//     The pair uses a longer budget than the campaign so the constant
//     serialization cost is measured against a realistic run, not
//     magnified by a tiny one.
//
// Runs are deterministic, so every iteration does identical simulation
// work and ns/op differences are pure host effects.

// warmCampaignConfigs is the fingerprint-sharing campaign: GUPS under PRA
// with a warmup four times the measured window, crossed over the two
// energy-only knobs the fingerprint excludes.
func warmCampaignConfigs() []Config {
	var cfgs []Config
	for _, ecc := range []bool{false, true} {
		for _, noIO := range []bool{false, true} {
			cfg := DefaultConfig("GUPS")
			cfg.Scheme = memctrl.PRA
			cfg.ActiveCores = 1
			cfg.InstrPerCore = 50_000
			cfg.WarmupPerCore = 200_000
			cfg.ECC = ecc
			cfg.NoPartialIO = noIO
			cfgs = append(cfgs, cfg)
		}
	}
	return cfgs
}

func benchWarmCampaign(b *testing.B, noCkpt bool) {
	b.Helper()
	cfgs := warmCampaignConfigs()
	for i := 0; i < b.N; i++ {
		r := NewRunner(ExpOptions{Instr: 50_000, Warmup: 200_000, NoCheckpoint: noCkpt})
		for _, cfg := range cfgs {
			if _, err := r.runOne(cfg); err != nil {
				b.Fatal(err)
			}
		}
		if !noCkpt && r.CheckpointHits() != int64(len(cfgs)-1) {
			b.Fatalf("campaign reused %d warmups, want %d", r.CheckpointHits(), len(cfgs)-1)
		}
	}
}

func benchWarmSingle(b *testing.B, ckpt bool) {
	b.Helper()
	cfg := warmCampaignConfigs()[0]
	cfg.InstrPerCore = 200_000
	for i := 0; i < b.N; i++ {
		s, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !ckpt {
			if _, err := s.Run(); err != nil {
				b.Fatal(err)
			}
			continue
		}
		if err := s.Warmup(); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Checkpoint(); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Measure(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWarmCampaignCheckpoint(b *testing.B) { benchWarmCampaign(b, false) }
func BenchmarkWarmCampaignCold(b *testing.B)       { benchWarmCampaign(b, true) }
func BenchmarkWarmSingleCheckpoint(b *testing.B)   { benchWarmSingle(b, true) }
func BenchmarkWarmSingleCold(b *testing.B)         { benchWarmSingle(b, false) }

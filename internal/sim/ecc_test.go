package sim

import (
	"testing"

	"pradram/internal/memctrl"
)

func TestECCReducesPRASavingButKeepsIt(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("four full runs with deep warmup; skipped with -short")
	}
	run := func(scheme memctrl.Scheme, ecc bool) Result {
		cfg := quickCfg("GUPS")
		cfg.Scheme = scheme
		cfg.ECC = ecc
		cfg.InstrPerCore = 60_000
		cfg.WarmupPerCore = 120_000
		res, err := RunOne(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	basePlain := run(memctrl.Baseline, false)
	baseECC := run(memctrl.Baseline, true)
	praPlain := run(memctrl.PRA, false)
	praECC := run(memctrl.PRA, true)

	// ECC adds a ninth chip: baseline power rises by roughly 1/8.
	ratio := baseECC.AvgPowerMW() / basePlain.AvgPowerMW()
	if ratio < 1.08 || ratio > 1.18 {
		t.Errorf("ECC baseline power ratio = %.3f, want ~1.125", ratio)
	}
	// PRA still saves power under ECC, but relatively less: the ECC chip
	// never participates in the saving.
	savePlain := 1 - praPlain.AvgPowerMW()/basePlain.AvgPowerMW()
	saveECC := 1 - praECC.AvgPowerMW()/baseECC.AvgPowerMW()
	if saveECC <= 0 {
		t.Error("PRA must still save power with ECC")
	}
	if saveECC >= savePlain {
		t.Errorf("ECC saving %.3f must be below non-ECC %.3f (ninth chip is exempt)", saveECC, savePlain)
	}
}

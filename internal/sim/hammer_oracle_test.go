package sim

import (
	"sort"
	"testing"

	"pradram/internal/dram"
	"pradram/internal/workload"
)

// The analytic-oracle tests for the RowHammer scenario family (DESIGN.md
// §4g). Each hammer generator is built so that its per-row activation
// counts after n DRAM accesses have a closed form (workload.HammerCounts);
// these tests run the full stack — generator, out-of-order core, cache
// hierarchy, controller, DRAM timing model — and demand the activation
// counter table match that closed form EXACTLY. Any caching the generators
// failed to defeat, any reordering of their dependent loads, any
// mis-mapped address bit, or any bug in the counter machinery shows up as
// a count mismatch.
//
// The oracle configuration removes the two legitimate sources of extra
// activations: refresh (a REF forces a precharge, so a request split
// across a refresh re-activates its row — and resets counters besides)
// and the mitigation itself (an RFM does the same). TREFI is pushed past
// the run horizon and the threshold is armed but unreachable, so counting
// is on while nothing ever clears or perturbs it.

// hammerOracleGeom pins the geometry the sweep below iterates (the paper's
// default organization the generators hardcode).
const hammerOracleChannels = 2

func hammerOracleCfg(name string) Config {
	cfg := DefaultConfig(name)
	cfg.Cores = 1
	cfg.InstrPerCore = 12_000
	cfg.WarmupPerCore = 0
	t := dram.DefaultTiming()
	t.TREFI = 1 << 30 // no refresh before the run ends: counters never reset
	cfg.Timing = &t
	cfg.MitThreshold = 1 << 30 // counting armed, threshold unreachable
	return cfg
}

// oracleCompare asserts a bank's tracked counter table equals the analytic
// prediction row for row, reporting every divergence.
func oracleCompare(t *testing.T, got, want map[int]int64) {
	t.Helper()
	rows := map[int]bool{}
	for r := range got {
		rows[r] = true
	}
	for r := range want {
		rows[r] = true
	}
	sorted := make([]int, 0, len(rows))
	for r := range rows {
		sorted = append(sorted, r)
	}
	sort.Ints(sorted)
	for _, r := range sorted {
		if got[r] != want[r] {
			t.Errorf("row %d: simulated count %d, analytic count %d", r, got[r], want[r])
		}
	}
}

// scanCounters sweeps every bank of the system, asserts all activity is
// confined to the expected (channel 0, rank, bank) target, and returns the
// target bank's table plus its total activation count.
func scanCounters(t *testing.T, s *System, wantRank, wantBank int) (map[int]int64, int64) {
	t.Helper()
	ctrl := s.Controller()
	g := dram.DefaultGeometry()
	var got map[int]int64
	var total int64
	for ch := 0; ch < hammerOracleChannels; ch++ {
		for r := 0; r < g.Ranks; r++ {
			for b := 0; b < g.Banks; b++ {
				counts := ctrl.RowCounts(ch, r, b)
				spill := ctrl.RowSpill(ch, r, b)
				if ch == 0 && r == wantRank && b == wantBank {
					got = counts
					if spill != 0 {
						t.Errorf("target bank spilled (%d): table capacity too small for an exact oracle", spill)
					}
					for _, c := range counts {
						total += c
					}
					continue
				}
				if len(counts) != 0 || spill != 0 {
					t.Errorf("bank confinement violated: ch%d rank%d bank%d holds %d tracked rows, spill %d",
						ch, r, b, len(counts), spill)
				}
			}
		}
	}
	return got, total
}

// TestHammerAnalyticOracle is the tentpole's headline check: for every
// adversarial generator, analytic counts == simulated counts, exactly.
func TestHammerAnalyticOracle(t *testing.T) {
	t.Parallel()
	for _, name := range workload.HammerNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := hammerOracleCfg(name)
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Run(); err != nil {
				t.Fatal(err)
			}
			region := workload.Region{Base: 0, Bytes: 1 << 30}
			rank, bank, _ := workload.HammerTarget(0, region)
			got, total := scanCounters(t, s, rank, bank)
			if total == 0 {
				t.Fatal("no activations reached the target bank; the oracle is vacuous")
			}
			want, err := workload.HammerCounts(name, 0, region, total)
			if err != nil {
				t.Fatal(err)
			}
			oracleCompare(t, got, want)
		})
	}
}

// TestHammerAnalyticOracleMultiCore runs the same contract with two cores
// hammering concurrently: each core's region maps to its own bank, the
// streams interleave arbitrarily at the controller, yet each bank's table
// must still equal that core's closed form — per-core program order is
// all the oracle needs.
func TestHammerAnalyticOracleMultiCore(t *testing.T) {
	t.Parallel()
	cfg := hammerOracleCfg("HammerSingle")
	cfg.Cores = 2
	cfg.InstrPerCore = 6_000
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for core := 0; core < 2; core++ {
		region := workload.Region{Base: uint64(core) << 30, Bytes: 1 << 30}
		rank, bank, rowBase := workload.HammerTarget(core, region)
		// Confirm the generator's hardcoded mapping against the real
		// address mapper: region-relative row 0 of the target bank must
		// decompose to (channel 0, rank, bank, rowBase).
		loc := s.Controller().Mapper().Decompose(region.Base + uint64(bank)<<14)
		if loc.Channel != 0 || loc.Rank != rank || loc.Bank != bank || loc.Row != rowBase {
			t.Fatalf("core %d: mapper places region row 0 at %+v, want ch0 rank%d bank%d row%d",
				core, loc, rank, bank, rowBase)
		}
		got := s.Controller().RowCounts(0, rank, bank)
		var total int64
		for _, c := range got {
			total += c
		}
		if total == 0 {
			t.Fatalf("core %d: no activations in its bank", core)
		}
		if spill := s.Controller().RowSpill(0, rank, bank); spill != 0 {
			t.Errorf("core %d: unexpected spill %d", core, spill)
		}
		want, err := workload.HammerCounts("HammerSingle", core, region, total)
		if err != nil {
			t.Fatal(err)
		}
		oracleCompare(t, got, want)
	}
}

// TestHammerMitigationEngages closes the loop on the defense itself: with
// the experiment's threshold armed, the targeted hammer patterns must
// raise alerts and draw RFMs, the row-uniform streams (GUPS, and RowStorm
// by design) must draw none, and every alert must charge exactly the
// configured back-off.
func TestHammerMitigationEngages(t *testing.T) {
	t.Parallel()
	run := func(name string) Result {
		cfg := DefaultConfig(name)
		cfg.Cores = 1
		cfg.InstrPerCore = 12_000
		cfg.WarmupPerCore = 0
		cfg.MitThreshold = hammerMitThreshold
		cfg.MitAlertCycles = 200
		res, err := RunOne(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, name := range []string{"HammerSingle", "HammerDouble", "HammerDecoy"} {
		res := run(name)
		if res.Ctrl.Alerts == 0 {
			t.Errorf("%s: aggressive pattern raised no alerts at threshold %d",
				name, hammerMitThreshold)
		}
		// Every alert completes in exactly one RFM; at most the final one
		// may still be pending when the run ends.
		if res.Dev.RFMs != res.Ctrl.Alerts && res.Dev.RFMs != res.Ctrl.Alerts-1 {
			t.Errorf("%s: %d alerts but %d RFMs; every alert must complete in one RFM",
				name, res.Ctrl.Alerts, res.Dev.RFMs)
		}
		if want := res.Ctrl.Alerts * 200; res.Ctrl.AlertStallCycles != want {
			t.Errorf("%s: stall cycles %d, want alerts*back-off = %d",
				name, res.Ctrl.AlertStallCycles, want)
		}
	}
	for _, name := range []string{"GUPS", "RowStorm"} {
		if res := run(name); res.Ctrl.Alerts != 0 {
			t.Errorf("%s: row-uniform traffic raised %d alerts at threshold %d",
				name, res.Ctrl.Alerts, hammerMitThreshold)
		}
	}
}

package sim

import "runtime/debug"

// BuildInfo returns the version block the cmd binaries publish as the
// "build" introspection variable (obs.Server /vars/build): the simulator's
// versioned contracts — the semantic model version that keys result caches
// and warmup checkpoints, and the checkpoint container format — plus
// whatever the Go toolchain stamped into the binary (module path and
// version, Go version, VCS revision). Operators correlate a live campaign
// with its caches through this block, so it must never require a running
// simulation to produce.
func BuildInfo() map[string]any {
	info := map[string]any{
		"model_version": ModelVersion,
		"ckpt_format":   int(ckptFormat),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		info["module"] = bi.Main.Path
		info["module_version"] = bi.Main.Version
		info["go_version"] = bi.GoVersion
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				info["vcs_revision"] = s.Value
			case "vcs.time":
				info["vcs_time"] = s.Value
			case "vcs.modified":
				info["vcs_modified"] = s.Value
			}
		}
	}
	return info
}

// Package sim wires the substrates into the paper's evaluation platform —
// the role gem5+DRAMSim2 play in the original work: four out-of-order cores
// (internal/cpu) over a two-level FGD cache hierarchy (internal/cache), a
// multi-channel FR-FCFS memory controller (internal/memctrl) driving
// cycle-level DDR3 channels (internal/dram) with the Micron/CACTI power
// model (internal/power), fed by the synthetic benchmark generators
// (internal/workload). It also hosts the weighted-speedup harness and the
// experiment drivers that regenerate every table and figure of the paper's
// evaluation (Section 5).
package sim

import (
	"fmt"

	"pradram/internal/cache"
	"pradram/internal/core"
	"pradram/internal/cpu"
	"pradram/internal/dram"
	"pradram/internal/memctrl"
	"pradram/internal/obs"
	"pradram/internal/power"
	"pradram/internal/trace"
	"pradram/internal/workload"
)

// CPUClockGHz is the core clock (Table 3).
const CPUClockGHz = 3.2

// CPUCycleNs is one CPU cycle in nanoseconds.
const CPUCycleNs = 1.0 / CPUClockGHz

// Config describes one simulation run.
type Config struct {
	// Workload is a benchmark name (run as identical instances on all
	// active cores) or a MIXn name from Table 4.
	Workload string
	Scheme   memctrl.Scheme
	Policy   memctrl.Policy
	// DBI enables the Dirty-Block-Index proactive writeback case study.
	DBI bool

	// ECC models an x72 ECC DIMM whose ninth chip always fully activates
	// (Section 4.2).
	ECC bool

	// Capture records the DRAM request stream (line fills and dirty
	// writebacks with FGD masks) during the measured window; retrieve it
	// with System.Trace and replay it with the trace package.
	Capture bool

	// Ablation knobs for the PRA design-choice studies (see
	// memctrl.Config): each disables one element of the full scheme.
	NoTimingRelax bool
	NoPartialIO   bool
	NoMaskCycle   bool

	// Power-down and refresh management (DESIGN.md §4f; see
	// memctrl.Config for the field semantics). The zero values reproduce
	// the historical behavior: immediate fast-exit precharge power-down
	// for idle ranks, no self-refresh, all-bank refresh.
	PDPolicy    memctrl.PDPolicy
	PDTimeout   int64 // idle memory cycles before PDTimed/PDQueueAware entry
	SRTimeout   int64 // idle memory cycles before self-refresh (0 = never)
	PDSlowExit  bool  // slow-exit (DLL-off) precharge power-down
	APD         bool  // active power-down for idle ranks with open rows
	RefreshMode memctrl.RefreshMode

	// RowHammer mitigation (DESIGN.md §4g; see memctrl.Config). A zero
	// MitThreshold disables mitigation and is bit-identical to builds
	// without the feature; the other two fields take effect only when the
	// threshold is set (0 selects the memctrl defaults).
	MitThreshold   int
	MitAlertCycles int64
	MitTableCap    int

	// LatBreak enables per-request latency attribution (DESIGN.md §4h):
	// every request's arrival-to-data latency is decomposed cycle-exactly
	// into queue / bank / timing / refresh / power-down / alert / transfer
	// components (Result carries the aggregates and percentile
	// histograms). Attribution observes scheduling without influencing
	// it: simulated results are bit-identical with the flag off, and the
	// flag is excluded from the warmup fingerprint for the same reason.
	LatBreak bool
	// LatSpanEvery samples every Nth completed request as a LatSpan for
	// trace export (System.LatSpans); 0 disables sampling. Only
	// meaningful with LatBreak set.
	LatSpanEvery int

	// PowerCal selects the measurement-informed power-model calibration
	// ("none", "vendor", "ghose", optionally with a device-variation
	// sigma suffix like "ghose:10" — see power.ParseCalibration). It is
	// applied post-hoc to the energy breakdown, so it cannot perturb
	// simulated state; every energy result then carries a
	// min/nominal/max band (Result.EnergyBand). Empty means "none".
	PowerCal string

	Cores        int   // total cores (4 in the paper)
	ActiveCores  int   // cores that execute (1 for IPC_alone runs); 0 = all
	InstrPerCore int64 // retire target per active core (after warmup)
	// WarmupPerCore runs this many instructions per core before resetting
	// all statistics, so short runs measure steady-state behaviour (the
	// paper fast-forwards to SimPoint regions for the same reason). The
	// main use is populating the 4MB L2 so dirty evictions — the traffic
	// PRA acts on — flow at their steady-state rate.
	WarmupPerCore int64
	Seed          uint64

	// MaxCycles aborts a run that stopped making progress; 0 derives a
	// generous bound from InstrPerCore. The bound is spent in ticks
	// *executed*, not cycles elapsed, so it stays meaningful when the run
	// loop fast-forwards over quiescent stretches (which can legitimately
	// push the cycle number far past any fixed cycle budget).
	MaxCycles int64

	// NoSkip disables event-driven fast-forwarding: the run loop ticks
	// every component on every CPU cycle, as the original implementation
	// did. Results are bit-identical either way (the determinism suite
	// enforces it); the flag exists as a debugging escape hatch and as
	// the baseline for the speed benchmarks.
	NoSkip bool

	// Par selects parallel-in-time ticking of the memory controller — a
	// conservative PDES over per-channel partitions (DESIGN §4i): 0
	// keeps the sequential tick loop; N >= 2 requests N worker shares,
	// clamped to the channel count. AutoPar derives a GOMAXPROCS-aware
	// value that composes with campaign-level workers. Results are
	// bit-identical either way (the pdes identity suite enforces it);
	// runs with the event trace enabled fall back to sequential ticking
	// because shared-ring event order is part of that contract. Like
	// NoSkip, Par is excluded from the warmup fingerprint and the
	// campaign result cache key.
	Par int

	// Channels overrides the memory controller's channel count (0 keeps
	// the memctrl default; must be a power of two). More channels widen
	// both modeled DRAM parallelism and the Par partition count. Unlike
	// Par it changes simulated behaviour, so it is part of the warmup
	// fingerprint.
	Channels int

	CPU cpu.Config

	// Generator, when non-nil, overrides the named workload with a custom
	// maker on every active core (Workload then only labels the run) —
	// the hook the synthetic sensitivity sweeps use.
	Generator workload.Maker

	// Timing overrides the DDR3 timing set (e.g. a dram.SpeedGrades
	// entry); CPUPerMem must be set alongside it when the clock ratio
	// changes. Nil keeps the DDR3-1600 default.
	Timing    *dram.Timing
	CPUPerMem int64

	// Obs selects the telemetry the run carries (epoch time-series
	// recorder, structured event trace); the zero value disables both.
	// See obswire.go.
	Obs ObsConfig
}

// DefaultConfig returns the paper's baseline system for a workload.
func DefaultConfig(workloadName string) Config {
	return Config{
		Workload:     workloadName,
		Scheme:       memctrl.Baseline,
		Policy:       memctrl.RelaxedClose,
		Cores:        4,
		InstrPerCore: 1_000_000,
		Seed:         1,
		CPU:          cpu.DefaultConfig(),
	}
}

// Validate reports the first configuration problem.
func (c Config) Validate() error {
	switch {
	case c.Cores <= 0:
		return fmt.Errorf("sim: cores must be positive")
	case c.ActiveCores < 0 || c.ActiveCores > c.Cores:
		return fmt.Errorf("sim: active cores %d out of range [0,%d]", c.ActiveCores, c.Cores)
	case c.InstrPerCore <= 0:
		return fmt.Errorf("sim: instruction target must be positive")
	case c.Workload == "":
		return fmt.Errorf("sim: workload is required")
	case c.Par < 0:
		return fmt.Errorf("sim: parallel shares must be >= 0, got %d", c.Par)
	case c.Channels < 0:
		return fmt.Errorf("sim: channel count must be >= 0, got %d", c.Channels)
	}
	if c.PowerCal != "" {
		if _, err := power.ParseCalibration(c.PowerCal); err != nil {
			return err
		}
	}
	return c.CPU.Validate()
}

// mapping returns the paper's pairing of mapping to policy: row-interleaved
// for relaxed close-page, line-interleaved for restricted close-page
// (Section 5.1.2).
func (c Config) mapping() memctrl.Mapping {
	if c.Policy == memctrl.RestrictedClose {
		return memctrl.LineInterleaved
	}
	return memctrl.RowInterleaved
}

// System is one assembled simulation instance.
type System struct {
	cfg   Config
	ctrl  *memctrl.Controller
	hier  *cache.Hierarchy
	cores []*cpu.Core
	apps  []string

	now     int64 // current CPU cycle, for the trace capture
	capBase int64 // capture timebase (reset to the warmup boundary)
	cap     *trace.Capture

	// Telemetry (nil when Config.Obs is zero; see obswire.go). The
	// recorder epoch is configured in DRAM cycles, so the CPU-cycle run
	// loop keeps the boundary pre-converted: epochCPU = epoch * cpm and
	// recNext is the next sample point in CPU cycles.
	rec      *obs.Recorder
	ev       *obs.EventLog
	cpm      int64
	epochCPU int64
	recNext  int64

	// skipped counts CPU cycles the run loop fast-forwarded over (zero
	// under Config.NoSkip) and ticks the loop iterations it actually
	// executed; tests use them to prove the skip path engaged and to pin
	// the executed-ticks budget semantics.
	skipped int64
	ticks   int64

	// cal is the parsed power-model calibration (Config.PowerCal),
	// stamped into every Result so energy bands travel with the numbers.
	cal power.Calibration

	// cycle is the run loop's position. It lives on the System (not as a
	// Run local) so Warmup and Measure can run as separate phases with a
	// checkpoint in between; ticks carries the executed-tick budget across
	// the same boundary.
	cycle  int64
	warmed bool
}

// New assembles a system from the configuration.
func New(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.ActiveCores == 0 {
		cfg.ActiveCores = cfg.Cores
	}
	// Normalize the workload spelling once, so Results, run keys, and
	// checkpoint fingerprints agree across equivalent user spellings
	// ("gups" vs "GUPS", mix specs with stray spaces).
	cfg.Workload = workload.Canonical(cfg.Workload)

	mcfg := memctrl.DefaultConfig()
	mcfg.Scheme = cfg.Scheme
	mcfg.Policy = cfg.Policy
	mcfg.Mapping = cfg.mapping()
	mcfg.ECC = cfg.ECC
	mcfg.NoTimingRelax = cfg.NoTimingRelax
	mcfg.NoPartialIO = cfg.NoPartialIO
	mcfg.NoMaskCycle = cfg.NoMaskCycle
	mcfg.PDPolicy = cfg.PDPolicy
	mcfg.PDTimeout = cfg.PDTimeout
	mcfg.SRTimeout = cfg.SRTimeout
	mcfg.PDSlowExit = cfg.PDSlowExit
	mcfg.APD = cfg.APD
	mcfg.RefreshMode = cfg.RefreshMode
	mcfg.MitThreshold = cfg.MitThreshold
	mcfg.MitAlertCycles = cfg.MitAlertCycles
	mcfg.MitTableCap = cfg.MitTableCap
	mcfg.LatBreak = cfg.LatBreak
	mcfg.LatSpanEvery = cfg.LatSpanEvery
	if cfg.Timing != nil {
		mcfg.Timing = *cfg.Timing
	}
	if cfg.CPUPerMem > 0 {
		mcfg.CPUPerMem = cfg.CPUPerMem
	}
	if cfg.Channels > 0 {
		mcfg.Channels = cfg.Channels
	}
	ctrl, err := memctrl.New(mcfg)
	if err != nil {
		return nil, err
	}
	if cfg.Par > 0 {
		// attachObs below reverts to sequential ticking if the event
		// trace is on (memctrl.AttachObs owns that rule).
		ctrl.EnableParallel(cfg.Par)
	}

	s := &System{cfg: cfg, ctrl: ctrl, cal: power.CalNone()}
	if cfg.PowerCal != "" {
		// Validate() already vetted the spec; re-parse for the value.
		s.cal, _ = power.ParseCalibration(cfg.PowerCal)
	}
	var backend cache.Backend = ctrl
	if cfg.Capture {
		s.cap = &trace.Capture{Inner: ctrl, Now: func() int64 { return s.now - s.capBase }}
		backend = s.cap
	}

	ccfg := cache.DefaultConfig(cfg.ActiveCores)
	ccfg.DBI = cfg.DBI
	ccfg.RowKey = ctrl.RowKey
	hier, err := cache.New(ccfg, backend)
	if err != nil {
		return nil, err
	}
	s.hier = hier

	var apps []string
	if cfg.Generator != nil {
		apps = make([]string, cfg.ActiveCores)
		for i := range apps {
			apps[i] = cfg.Workload // label only
		}
	} else {
		apps, err = workload.Set(cfg.Workload, cfg.Cores)
		if err != nil {
			return nil, err
		}
		apps = apps[:cfg.ActiveCores]
	}
	s.apps = apps
	for i, app := range apps {
		region := workload.Region{Base: uint64(i) << 30, Bytes: 1 << 30}
		var gen cpu.Generator
		if cfg.Generator != nil {
			gen = cfg.Generator(i, cfg.Seed, region)
		} else {
			gen, err = workload.New(app, i, cfg.Seed, region)
			if err != nil {
				return nil, err
			}
		}
		c, err := cpu.New(i, cfg.CPU, gen, hier)
		if err != nil {
			return nil, err
		}
		s.cores = append(s.cores, c)
	}
	if cfg.Obs.enabled() {
		s.attachObs()
	}
	return s, nil
}

// maxTicks returns the no-progress budget. It counts ticks executed
// (cycles the loop actually simulated), not cycles elapsed:
// fast-forwarding can push the cycle number arbitrarily far without doing
// work, and work — not wall-clock position — is what a hung run fails to
// convert into retirement. With skipping off the two measures coincide, so
// the seed's abort behaviour is unchanged.
func (s *System) maxTicks() int64 {
	if s.cfg.MaxCycles != 0 {
		return s.cfg.MaxCycles
	}
	return (s.cfg.InstrPerCore+s.cfg.WarmupPerCore)*2000 + 10_000_000
}

// Run executes the configured number of instructions on every active core
// and returns the collected metrics. Cores that finish early keep running
// (to preserve contention) until the slowest core reaches its target, as in
// multiprogrammed SPEC-rate methodology; each core's IPC is measured at its
// own finish point.
func (s *System) Run() (Result, error) {
	if err := s.Warmup(); err != nil {
		return Result{}, err
	}
	return s.Measure()
}

// Warmup runs Config.WarmupPerCore instructions per core and resets every
// statistic, so Measure sees steady-state cache and DRAM behaviour. It is
// the first half of Run, split out so the post-warmup state can be
// checkpointed (Checkpoint) and reused (Restore) across runs that share a
// warmup fingerprint. With no warmup configured it is a no-op.
func (s *System) Warmup() error {
	if s.cfg.WarmupPerCore <= 0 || s.warmed {
		return nil
	}
	// Parallel-mode worker goroutines start lazily at the first parallel
	// tick; release them when the phase ends so idle Systems hold none.
	defer s.ctrl.StopWorkers()
	maxTicks := s.maxTicks()
	// With skipping on, a cycle another component forces the loop to
	// execute still need not Tick a blocked core: a quiescent core's Tick
	// is a provable no-op (the NextEvent contract), so SkipCycles stands in
	// for it. With skipping off every component ticks every cycle, keeping
	// the baseline faithful to per-cycle operation.
	skipIdle := !s.cfg.NoSkip
	warm := s.cfg.WarmupPerCore
	remaining := len(s.cores)
	done := make([]bool, len(s.cores))
	for remaining > 0 {
		if s.ticks >= maxTicks {
			return fmt.Errorf("sim: warmup made no progress after %d executed ticks (cycle %d)", s.ticks, s.cycle)
		}
		s.ticks++
		s.now = s.cycle
		s.hier.Tick(s.cycle)
		for i, c := range s.cores {
			if skipIdle && c.Quiescent() {
				c.SkipCycles(1)
				continue // cannot retire, so the done check is moot
			}
			c.Tick(s.cycle)
			if !done[i] && c.Retired >= warm {
				done[i] = true
				remaining--
			}
		}
		s.ctrl.Tick(s.cycle)
		s.cycle++
		if remaining > 0 {
			var err error
			if s.cycle, err = s.fastForward(s.cycle); err != nil {
				return err
			}
		}
	}
	// Fast-forwarding defers background-energy accrual; settle it at
	// the boundary so the reset discards exactly the warmup share.
	s.ctrl.CatchUp(s.cycle)
	for _, c := range s.cores {
		c.ResetStats()
	}
	s.hier.ResetStats()
	s.ctrl.ResetStats()
	if s.cap != nil {
		// Drop warmup traffic and rebase capture time to the measured
		// window so replays start at cycle zero.
		s.cap.Trace.Records = s.cap.Trace.Records[:0]
		s.capBase = s.cycle
	}
	// Drop warmup events so the ring holds only measured-window
	// activity.
	s.ev.Reset()
	s.warmed = true
	return nil
}

// Measure runs the measured window — the second half of Run — and returns
// the collected metrics. Call it after Warmup (or after Restore installed
// a checkpointed warmup state).
func (s *System) Measure() (Result, error) {
	defer s.ctrl.StopWorkers()
	target := s.cfg.InstrPerCore
	maxTicks := s.maxTicks()
	skipIdle := !s.cfg.NoSkip
	cycle, ticks := s.cycle, s.ticks
	defer func() { s.cycle, s.ticks = cycle, ticks }()

	finish := make([]int64, len(s.cores))
	for i := range finish {
		finish[i] = -1
	}
	remaining := len(s.cores)
	start := cycle
	if s.rec != nil {
		// Snapshot counter baselines at the measurement-window start so
		// the first epoch's deltas exclude warmup, and arm the first
		// epoch boundary (in CPU cycles; the recorder itself runs on the
		// DRAM clock).
		s.rec.Begin(cycle / s.cpm)
		s.recNext = cycle + s.epochCPU
	}
	for remaining > 0 {
		if ticks >= maxTicks {
			return Result{}, fmt.Errorf("sim: no progress after %d executed ticks (cycle %d, %d cores unfinished)", ticks, cycle, remaining)
		}
		ticks++
		s.now = cycle
		s.hier.Tick(cycle)
		for i, c := range s.cores {
			if skipIdle && c.Quiescent() {
				c.SkipCycles(1)
				continue // cannot retire, so the finish check is moot
			}
			c.Tick(cycle)
			if finish[i] < 0 && c.Retired >= target {
				finish[i] = cycle - start + 1
				remaining--
			}
		}
		s.ctrl.Tick(cycle)
		cycle++
		if remaining > 0 {
			var err error
			if cycle, err = s.fastForward(cycle); err != nil {
				return Result{}, err
			}
		}
		if s.rec != nil && cycle >= s.recNext {
			// Settle lazy accrual so the sampled energy and rank-state
			// counters match per-cycle ticking exactly (no-op there).
			s.ctrl.CatchUp(cycle)
			s.rec.Sample(cycle / s.cpm)
			s.recNext += s.epochCPU
		}
	}
	s.ctrl.CatchUp(cycle)
	if s.rec != nil {
		s.rec.Flush(cycle / s.cpm)
	}
	cycle -= start

	res := Result{
		Workload: s.cfg.Workload,
		Scheme:   s.cfg.Scheme,
		Policy:   s.cfg.Policy,
		DBI:      s.cfg.DBI,
		Apps:     append([]string(nil), s.apps...),
		Cycles:   cycle,
		CoreIPC:  make([]float64, len(s.cores)),
		Ctrl:     s.ctrl.Stats(),
		Dev:      s.ctrl.DeviceStats(),
		Cache:    s.hier.Stats,
		Energy:   s.ctrl.Energy(),
		Cal:      s.cal,
	}
	for i := range s.cores {
		res.CoreIPC[i] = float64(target) / float64(finish[i])
	}
	return res, nil
}

// fastForward decides the next cycle the run loop executes, given that
// next (= the cycle just executed, plus one) is the default. When every
// component reports that nothing can change before some future cycle, the
// loop jumps straight there: the skipped ticks are exact no-ops, which is
// what each component's NextEvent contract guarantees. The jump is
// clamped to the next telemetry epoch boundary so sample timing (and
// therefore the recorded timeline) is untouched, and the controller's
// DRAM-clock stride is realigned so arrival stamps match per-cycle
// ticking bit for bit. A system that is totally quiescent — every
// component at FarFuture while cores still owe instructions — can never
// make progress again, so that is reported as an error immediately
// rather than burning the tick budget.
func (s *System) fastForward(next int64) (int64, error) {
	if s.cfg.NoSkip {
		return next, nil
	}
	now := next - 1
	// Cores first: a core that retired or dispatched this tick reports
	// now+1, which nothing can beat, so the scan stops without paying for
	// the controller's per-channel walk (the common case while any core
	// is making progress). min is commutative, so the order cannot change
	// the jump target.
	target := int64(core.FarFuture)
	for _, c := range s.cores {
		if t := c.NextEvent(now); t < target {
			if t <= next {
				return next, nil
			}
			target = t
		}
	}
	if t := s.hier.NextEvent(now); t < target {
		target = t
	}
	if t := s.ctrl.NextEvent(now); t < target {
		target = t
	}
	if target >= core.FarFuture {
		return 0, fmt.Errorf("sim: no progress possible: all components quiescent at cycle %d", now)
	}
	if s.recNext > 0 && target > s.recNext {
		target = s.recNext
	}
	if target <= next {
		return next, nil
	}
	s.ctrl.SkipTo(target)
	delta := target - next
	s.skipped += delta
	for _, c := range s.cores {
		c.SkipCycles(delta)
	}
	return target, nil
}

// Skipped returns the number of CPU cycles fast-forwarded over so far
// (always zero with Config.NoSkip). Exposed so tests and benchmarks can
// verify the event-driven path actually engaged.
func (s *System) Skipped() int64 { return s.skipped }

// Trace returns the request stream captured over the measured window, or
// nil when Config.Capture was off. Replay it with the trace package.
func (s *System) Trace() *trace.Trace {
	if s.cap == nil {
		return nil
	}
	return &s.cap.Trace
}

// LatSpans returns the sampled per-request latency spans collected over
// the measured window, oldest first per channel (empty unless
// Config.LatBreak and LatSpanEvery are set). The obs package's trace
// exporter turns them into a Chrome-trace/Perfetto file.
func (s *System) LatSpans() []memctrl.LatSpan { return s.ctrl.LatSpans() }

// Hierarchy exposes the cache hierarchy (for cache-only experiments such
// as Figure 3).
func (s *System) Hierarchy() *cache.Hierarchy { return s.hier }

// Controller exposes the memory controller.
func (s *System) Controller() *memctrl.Controller { return s.ctrl }

// RunOne is the convenience path: build and run a config.
func RunOne(cfg Config) (Result, error) {
	s, err := New(cfg)
	if err != nil {
		return Result{}, err
	}
	return s.Run()
}

// interface checks
var _ cache.Backend = (*memctrl.Controller)(nil)
var _ cpu.MemPort = (*cache.Hierarchy)(nil)
var _ = dram.DefaultTiming
var _ = power.DefaultChipPowers

package sim

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// TestFig9Golden pins the exact bytes of one praexp experiment table, so
// no refactor of the experiment layer — parallel execution order above
// all — can reorder or reformat a published-number comparison without a
// deliberate golden update (go test ./internal/sim -run Fig9Golden -update).
// Figure 9 is analytic (pure energy model, no simulation), so the golden
// bytes are stable across budgets, seeds, and worker counts.
func TestFig9Golden(t *testing.T) {
	t.Parallel()
	e, err := ExperimentByID("fig9")
	if err != nil {
		t.Fatal(err)
	}

	// Render through both a sequential and a parallel runner: the bytes
	// must agree with each other and with the golden file.
	seqOut, err := NewRunner(ExpOptions{Instr: 1000, Workers: 1}).RunExperiment(e)
	if err != nil {
		t.Fatal(err)
	}
	parOut, err := NewRunner(ExpOptions{Instr: 1000, Workers: 4}).RunExperiment(e)
	if err != nil {
		t.Fatal(err)
	}
	if seqOut != parOut {
		t.Fatalf("fig9 output depends on the worker count:\n-j1:\n%s\n-j4:\n%s", seqOut, parOut)
	}

	path := filepath.Join("testdata", "fig9.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(seqOut), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if seqOut != string(want) {
		t.Errorf("fig9 output drifted from golden file (run with -update if intentional):\n--- got ---\n%s\n--- want ---\n%s", seqOut, want)
	}
}

package sim

import (
	"bytes"
	"reflect"
	"testing"

	"pradram/internal/memctrl"
	"pradram/internal/obs"
	"pradram/internal/trace"
	"pradram/internal/workload"
)

// The multi-program mix determinism matrix (DESIGN.md §4j): custom
// `name[:count]` co-run specs must behave exactly like every other
// workload under the three equivalence contracts — sequential ==
// parallel-in-time, captured traces byte-identical across drivers, and
// streaming v2 replay bit-identical to materialized replay — plus carry
// correct per-core attribution and survive warmup checkpointing.

// mixCells spans the spec grammar: explicit counts, mixed count/no-count
// entries, tensor streams co-running with benchmarks, and the 4-way
// heterogeneous form.
func mixCells() []string {
	return []string{
		"GUPS:2,LinkedList:2",
		"TensorKCP,GUPS:2,lbm",
		"mcf,em3d,GUPS,LinkedList",
	}
}

func mixCfg(spec string) Config {
	cfg := DefaultConfig(spec)
	cfg.Cores = 4
	cfg.InstrPerCore = 8_000
	cfg.WarmupPerCore = 2_000
	cfg.Capture = true
	return cfg
}

// TestMixDeterminismMatrix is the seq==par==replay matrix over mix specs.
func TestMixDeterminismMatrix(t *testing.T) {
	t.Parallel()
	for _, spec := range mixCells() {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			t.Parallel()
			run := func(par int) (*System, Result) {
				cfg := mixCfg(spec)
				if spec == "TensorKCP,GUPS:2,lbm" {
					// The tensor stream's dependent all-miss loads make
					// simulated time expensive; a shorter window still
					// exercises the co-run.
					cfg.InstrPerCore = 2_000
					cfg.WarmupPerCore = 500
				}
				cfg.Par = par
				s, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				r, err := s.Run()
				if err != nil {
					t.Fatal(err)
				}
				return s, r
			}
			seqSys, seqRes := run(0)
			parSys, parRes := run(2)
			if !reflect.DeepEqual(seqRes, parRes) {
				t.Errorf("sequential and parallel mix results differ:\nseq: %+v\npar: %+v", seqRes, parRes)
			}

			// Per-core attribution: Apps mirrors the spec expansion and
			// every core ran.
			apps, err := workload.Set(spec, 4)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seqRes.Apps, apps) {
				t.Errorf("Result.Apps = %v, want %v", seqRes.Apps, apps)
			}
			if len(seqRes.CoreIPC) != 4 {
				t.Fatalf("CoreIPC has %d entries, want 4", len(seqRes.CoreIPC))
			}
			for i, ipc := range seqRes.CoreIPC {
				if ipc <= 0 {
					t.Errorf("core %d (%s): IPC %v, want > 0", i, apps[i], ipc)
				}
			}

			// The captured request streams must be byte-identical across
			// drivers in both serializations.
			seqTr, parTr := seqSys.Trace(), parSys.Trace()
			var seqV1, parV1, seqV2 bytes.Buffer
			if err := seqTr.Save(&seqV1); err != nil {
				t.Fatal(err)
			}
			if err := parTr.Save(&parV1); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(seqV1.Bytes(), parV1.Bytes()) {
				t.Error("captured traces differ between sequential and parallel drivers")
			}
			if err := seqTr.SaveV2(&seqV2); err != nil {
				t.Fatal(err)
			}

			// Replay equivalence: materialized v1 replay == streaming v2
			// replay, for the plain and parallel replay drivers.
			for _, opt := range []trace.ReplayOpts{{}, {Parallel: 2}} {
				want, err := trace.ReplayWith(seqTr, memctrl.DefaultConfig(), opt)
				if err != nil {
					t.Fatal(err)
				}
				s, err := trace.Open(bytes.NewReader(seqV2.Bytes()))
				if err != nil {
					t.Fatal(err)
				}
				got, err := trace.ReplayStream(s, memctrl.DefaultConfig(), opt)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Errorf("opt %+v: streaming replay of the mix capture diverged", opt)
				}
			}
		})
	}
}

// TestMixCheckpointIdentity proves custom mix specs compose with warmup
// checkpointing: warmup → checkpoint → restore → measure equals a
// monolithic run, and the canonicalized spec is what the fingerprint
// carries (equivalent spellings interchange checkpoints).
func TestMixCheckpointIdentity(t *testing.T) {
	t.Parallel()
	cfg := mixCfg("GUPS:2,LinkedList:2")
	cfg.Capture = false
	cfg.Obs = ObsConfig{EpochCycles: 512, EventLevel: obs.LevelCmd}
	mono, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := mono.Run()
	if err != nil {
		t.Fatal(err)
	}
	data := warmAndCheckpoint(t, cfg)
	// Restore under an equivalent spelling of the same spec: the
	// fingerprint stores the canonical form, so this must be accepted.
	alt := cfg
	alt.Workload = "gups:2, linkedlist:2"
	restored, rr := restoreAndMeasure(t, alt, data)
	checkIdentical(t, mono, restored, rm, rr)
}

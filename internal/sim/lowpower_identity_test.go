package sim

import (
	"testing"

	"pradram/internal/memctrl"
)

// pdIdentityVariants spans the power-management feature space for the
// bit-identity matrices below: every entry policy, the slow-exit and APD
// toggles, self-refresh, and both alternative refresh modes. Each variant
// must preserve the two determinism contracts this repo guarantees —
// fast-forwarding and checkpoint restore change nothing observable.
func pdIdentityVariants() []struct {
	name string
	mod  func(*Config)
} {
	return []struct {
		name string
		mod  func(*Config)
	}{
		{"no-pd", func(c *Config) { c.PDPolicy = memctrl.PDNone }},
		{"immediate", func(c *Config) { c.PDPolicy = memctrl.PDImmediate }},
		{"imm-slow-apd", func(c *Config) { c.PDSlowExit = true; c.APD = true }},
		{"timeout", func(c *Config) { c.PDPolicy = memctrl.PDTimed; c.PDTimeout = 64 }},
		{"queue", func(c *Config) { c.PDPolicy = memctrl.PDQueueAware; c.PDTimeout = 64 }},
		{"selfref", func(c *Config) { c.SRTimeout = 512 }},
		{"perbank", func(c *Config) { c.RefreshMode = memctrl.RefreshPerBank }},
		{"elastic", func(c *Config) { c.RefreshMode = memctrl.RefreshElastic }},
	}
}

// TestPDSkipBitIdentityMatrix extends the fast-forwarding bit-identity
// contract to the power-down FSM: for every power-management variant
// crossed with both activation schemes, a skipping run must match a
// per-cycle run on the Result struct, the epoch timeline, and the event
// log. The power-down machinery is the hard case for cycle skipping —
// entry decisions depend on per-rank idle clocks and wake-ups on FSM exit
// latencies, all of which must feed the nextWake lower bound without ever
// reading state that differs between the two execution modes.
func TestPDSkipBitIdentityMatrix(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		// Keep a reduced matrix even under -short: the two variants that
		// exercise the most FSM states.
		short := pdIdentityVariants()
		pdShort := []struct {
			name string
			mod  func(*Config)
		}{short[2], short[5]}
		for _, v := range pdShort {
			v := v
			t.Run("GUPS/Baseline/"+v.name, func(t *testing.T) {
				t.Parallel()
				cfg := skipCfg("GUPS")
				v.mod(&cfg)
				skip, noskip, rs, rn := runBoth(t, cfg)
				checkIdentical(t, skip, noskip, rs, rn)
			})
		}
		return
	}
	for _, sch := range []memctrl.Scheme{memctrl.Baseline, memctrl.PRA} {
		for _, wl := range []string{"GUPS", "bzip2"} {
			for _, v := range pdIdentityVariants() {
				sch, wl, v := sch, wl, v
				t.Run(wl+"/"+sch.String()+"/"+v.name, func(t *testing.T) {
					t.Parallel()
					cfg := skipCfg(wl)
					cfg.Scheme = sch
					v.mod(&cfg)
					skip, noskip, rs, rn := runBoth(t, cfg)
					checkIdentical(t, skip, noskip, rs, rn)
					if wl != "bzip2" && skip.Skipped() == 0 {
						t.Error("skip run never fast-forwarded; matrix cell is vacuous")
					}
				})
			}
		}
	}
}

// TestPDCheckpointBitIdentityMatrix extends the checkpoint bit-identity
// contract the same way: warmup → checkpoint → restore into a fresh system
// → measure must equal a monolithic Run for every power-management
// variant. This is what proves the new FSM rank fields and the
// controller's per-rank idle clocks are fully captured by SaveState — a
// missed field would surface here as a post-restore divergence.
func TestPDCheckpointBitIdentityMatrix(t *testing.T) {
	t.Parallel()
	variants := pdIdentityVariants()
	if testing.Short() {
		variants = variants[2:3] // slow-exit + APD touches the most state
	}
	for _, v := range variants {
		v := v
		t.Run("GUPS/"+v.name, func(t *testing.T) {
			t.Parallel()
			cfg := skipCfg("GUPS")
			cfg.Scheme = memctrl.PRA
			v.mod(&cfg)

			mono, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			rm, err := mono.Run()
			if err != nil {
				t.Fatal(err)
			}
			data := warmAndCheckpoint(t, cfg)
			restored, rr := restoreAndMeasure(t, cfg, data)
			checkIdentical(t, mono, restored, rm, rr)
		})
	}
}

package sim

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"pradram/internal/memctrl"
)

// ckptCampaignKeys is a small campaign containing two fingerprint-sharing
// pairs: NoPartialIO is excluded from the warmup fingerprint, so each
// (workload, scheme) pair warms once and its noIO variant restores.
func ckptCampaignKeys() []runKey {
	return []runKey{
		{workload: "GUPS", scheme: memctrl.PRA, policy: memctrl.RelaxedClose, active: 1},
		{workload: "GUPS", scheme: memctrl.PRA, policy: memctrl.RelaxedClose, active: 1, noIO: true},
		{workload: "LinkedList", scheme: memctrl.Baseline, policy: memctrl.RelaxedClose, active: 1},
		{workload: "LinkedList", scheme: memctrl.Baseline, policy: memctrl.RelaxedClose, active: 1, noIO: true},
	}
}

func ckptRunnerOpts() ExpOptions {
	return ExpOptions{Instr: 3000, Warmup: 3000, Seed: 1, Workers: 2}
}

// TestRunnerCheckpointIdentical proves the checkpoint layer is invisible
// in results: a campaign run with checkpoint reuse returns bit-identical
// Results to the same campaign with NoCheckpoint, while actually reusing
// warmups (hit counter) on the fingerprint-sharing keys.
func TestRunnerCheckpointIdentical(t *testing.T) {
	keys := ckptCampaignKeys()

	warm := NewRunner(ckptRunnerOpts())
	if err := warm.Precompute(keys); err != nil {
		t.Fatalf("checkpointed campaign: %v", err)
	}
	optCold := ckptRunnerOpts()
	optCold.NoCheckpoint = true
	cold := NewRunner(optCold)
	if err := cold.Precompute(keys); err != nil {
		t.Fatalf("cold campaign: %v", err)
	}

	for _, k := range keys {
		rw, err := warm.Run(k)
		if err != nil {
			t.Fatalf("warm %s: %v", k, err)
		}
		rc, err := cold.Run(k)
		if err != nil {
			t.Fatalf("cold %s: %v", k, err)
		}
		if !reflect.DeepEqual(rw, rc) {
			t.Errorf("%s: checkpointed result differs from cold result", k)
		}
	}
	if hits := warm.CheckpointHits(); hits != 2 {
		t.Errorf("checkpoint hits = %d, want 2 (one per fingerprint-sharing pair)", hits)
	}
	if misses := warm.CheckpointMisses(); misses != 2 {
		t.Errorf("checkpoint misses = %d, want 2 (one producer per fingerprint)", misses)
	}
	if h, m := cold.CheckpointHits(), cold.CheckpointMisses(); h != 0 || m != 0 {
		t.Errorf("NoCheckpoint runner counted hits=%d misses=%d, want 0/0", h, m)
	}
}

// TestRunnerCheckpointDisk proves -ckpt-dir persistence: a second runner
// process sharing the directory restores the first runner's warmup
// instead of repeating it, with identical results.
func TestRunnerCheckpointDisk(t *testing.T) {
	dir := t.TempDir()
	key := runKey{workload: "GUPS", scheme: memctrl.PRA, policy: memctrl.RelaxedClose, active: 1}

	opt := ckptRunnerOpts()
	opt.CkptDir = dir
	a := NewRunner(opt)
	resA, err := a.Run(key)
	if err != nil {
		t.Fatalf("first runner: %v", err)
	}
	if h, m := a.CheckpointHits(), a.CheckpointMisses(); h != 0 || m != 1 {
		t.Fatalf("first runner hits=%d misses=%d, want 0/1", h, m)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil || len(files) != 1 {
		t.Fatalf("checkpoint files on disk = %v (err %v), want exactly one", files, err)
	}

	b := NewRunner(opt)
	resB, err := b.Run(key)
	if err != nil {
		t.Fatalf("second runner: %v", err)
	}
	if h, m := b.CheckpointHits(), b.CheckpointMisses(); h != 1 || m != 0 {
		t.Errorf("second runner hits=%d misses=%d, want 1/0", h, m)
	}
	if b.Simulations() != 1 {
		t.Errorf("second runner simulations = %d, want 1 (measure still runs)", b.Simulations())
	}
	if !reflect.DeepEqual(resA, resB) {
		t.Errorf("restored-from-disk result differs from cold result")
	}
}

// TestRunnerCheckpointDiskCorrupt proves a damaged persisted checkpoint is
// rejected, replaced, and never changes results.
func TestRunnerCheckpointDiskCorrupt(t *testing.T) {
	dir := t.TempDir()
	key := runKey{workload: "GUPS", scheme: memctrl.PRA, policy: memctrl.RelaxedClose, active: 1}
	opt := ckptRunnerOpts()
	opt.CkptDir = dir

	a := NewRunner(opt)
	resA, err := a.Run(key)
	if err != nil {
		t.Fatalf("first runner: %v", err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if len(files) != 1 {
		t.Fatalf("checkpoint files on disk = %v, want exactly one", files)
	}
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x41
	if err := os.WriteFile(files[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	b := NewRunner(opt)
	resB, err := b.Run(key)
	if err != nil {
		t.Fatalf("runner with corrupt store: %v", err)
	}
	if h, m := b.CheckpointHits(), b.CheckpointMisses(); h != 0 || m != 1 {
		t.Errorf("corrupt-store runner hits=%d misses=%d, want 0/1 (cold fallback)", h, m)
	}
	if !reflect.DeepEqual(resA, resB) {
		t.Errorf("result after corrupt-checkpoint fallback differs")
	}

	// The producer replaces the damaged entry, so a third runner hits.
	c := NewRunner(opt)
	if _, err := c.Run(key); err != nil {
		t.Fatalf("third runner: %v", err)
	}
	if h := c.CheckpointHits(); h != 1 {
		t.Errorf("third runner hits = %d, want 1 (store was repaired)", h)
	}
}

// TestRunnerCheckpointIneligible proves runs without a warmup phase bypass
// the checkpoint layer without touching the counters.
func TestRunnerCheckpointIneligible(t *testing.T) {
	opt := ckptRunnerOpts()
	opt.Warmup = 0
	r := NewRunner(opt)
	if _, err := r.Run(runKey{workload: "GUPS", scheme: memctrl.Baseline, policy: memctrl.RelaxedClose, active: 1}); err != nil {
		t.Fatal(err)
	}
	if h, m := r.CheckpointHits(), r.CheckpointMisses(); h != 0 || m != 0 {
		t.Errorf("warmupless runner counted hits=%d misses=%d, want 0/0", h, m)
	}
}

package sim

import (
	"encoding/csv"
	"reflect"
	"regexp"
	"strings"
	"testing"

	"pradram/internal/memctrl"
	"pradram/internal/obs"
)

// This file extends the determinism suite to the telemetry layer: every
// probe is a read-only view, so a run with the recorder and event trace
// attached must produce bit-identical Results to a bare run — that is the
// invariant that lets telemetry ship enabled in experiment campaigns
// without a validation pass.

// tinyObsConfig is a telemetry-heavy budget-sized run.
func tinyObsConfig(workload string, scheme memctrl.Scheme) Config {
	cfg := DefaultConfig(workload)
	cfg.Scheme = scheme
	cfg.InstrPerCore = 12_000
	cfg.WarmupPerCore = 12_000
	return cfg
}

func TestTelemetryDoesNotPerturbResults(t *testing.T) {
	t.Parallel()
	for _, scheme := range []memctrl.Scheme{memctrl.Baseline, memctrl.PRA} {
		bare, err := RunOne(tinyObsConfig("GUPS", scheme))
		if err != nil {
			t.Fatal(err)
		}

		cfg := tinyObsConfig("GUPS", scheme)
		cfg.Obs = ObsConfig{EpochCycles: 5_000, EventLevel: obs.LevelCmd, EventCap: 256}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		instrumented, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}

		if !reflect.DeepEqual(bare, instrumented) {
			t.Errorf("%v: telemetry perturbed the result:\nbare:         %+v\ninstrumented: %+v",
				scheme, bare, instrumented)
		}
		// The telemetry must actually have recorded something, or the
		// comparison above proves nothing.
		if s.Recorder() == nil || s.Recorder().Rows() == 0 {
			t.Errorf("%v: recorder captured no epochs", scheme)
		}
		if s.Events() == nil || s.Events().Total() == 0 {
			t.Errorf("%v: event log captured nothing at cmd level", scheme)
		}
	}
}

// TestTimelineColumnsConsistent cross-checks the epoch time-series against
// the run's own Result: per-bank ACT deltas summed over all epochs and
// banks must equal the device's total activation count, and the
// granularity histogram columns must sum to the same total.
func TestTimelineColumnsConsistent(t *testing.T) {
	t.Parallel()
	cfg := tinyObsConfig("GUPS", memctrl.PRA)
	cfg.Obs = ObsConfig{EpochCycles: 5_000}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	rec := s.Recorder()

	sumCol := func(name string) float64 {
		var sum float64
		col := rec.Column(name)
		if col == nil {
			t.Fatalf("column %q missing", name)
		}
		for _, v := range col {
			sum += v
		}
		return sum
	}

	bankAct := regexp.MustCompile(`^ch\d+_r\d+_b\d+_act$`)
	var actTotal, bankCols float64
	for _, name := range rec.Header() {
		if bankAct.MatchString(name) {
			actTotal += sumCol(name)
			bankCols++
		}
	}
	if bankCols == 0 {
		t.Fatal("no per-bank ACT columns registered")
	}
	if want := float64(res.Dev.Activations()); actTotal != want {
		t.Errorf("per-bank ACT columns sum to %v, device counted %v", actTotal, want)
	}

	var granTotal float64
	for g := 1; g <= 8; g++ {
		granTotal += sumCol("act_gran_" + string(rune('0'+g)))
	}
	if want := float64(res.Dev.Activations()); granTotal != want {
		t.Errorf("granularity histogram sums to %v, device counted %v", granTotal, want)
	}

	if sumCol("reads_served") != float64(res.Ctrl.ReadsServed) {
		t.Errorf("reads_served column sums to %v, want %v", sumCol("reads_served"), res.Ctrl.ReadsServed)
	}
	if sumCol("energy_total_pj") != res.Energy.Total() {
		t.Errorf("energy_total_pj column sums to %v, want %v", sumCol("energy_total_pj"), res.Energy.Total())
	}
	if sumCol("dirty_words_overflow") != 0 {
		t.Error("DirtyWords histogram overflowed: bucket range is wrong")
	}

	// The CSV dump must be machine-parseable with a standard reader and
	// rectangular.
	var b strings.Builder
	if err := rec.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatalf("CSV not parseable: %v", err)
	}
	if len(rows) != rec.Rows()+1 {
		t.Errorf("CSV has %d rows, want %d epochs + header", len(rows), rec.Rows())
	}
	for i, r := range rows {
		if len(r) != len(rec.Header()) {
			t.Fatalf("CSV row %d has %d cells, header has %d", i, len(r), len(rec.Header()))
		}
	}
}

// TestExperimentOutputIdenticalWithTelemetry is the campaign-level
// guarantee behind shipping praexp with progress + telemetry always
// available: a runner with full telemetry and progress tracking must emit
// byte-identical tables to a bare runner.
func TestExperimentOutputIdenticalWithTelemetry(t *testing.T) {
	t.Parallel()
	e, err := ExperimentByID("modelcheck")
	if err != nil {
		t.Fatal(err)
	}
	bareOut, err := NewRunner(tinyOpt(4)).RunExperiment(e)
	if err != nil {
		t.Fatal(err)
	}

	opt := tinyOpt(4)
	opt.Obs = ObsConfig{EpochCycles: 5_000, EventLevel: obs.LevelState}
	opt.Progress = obs.NewProgress()
	r := NewRunner(opt)
	instrOut, err := r.RunExperiment(e)
	if err != nil {
		t.Fatal(err)
	}

	if bareOut != instrOut {
		t.Errorf("telemetry changed experiment output:\n--- bare ---\n%s\n--- instrumented ---\n%s", bareOut, instrOut)
	}
	snap := opt.Progress.Snapshot()
	if snap.Total == 0 || snap.Done != snap.Total || snap.InFlight != 0 {
		t.Errorf("progress inconsistent after campaign: %+v", snap)
	}

	// Re-asserting the same keys (praexp warms the whole campaign, then
	// each experiment precomputes its own set again) must not inflate the
	// progress total: everything is memoized.
	if err := r.Precompute(e.Keys()); err != nil {
		t.Fatal(err)
	}
	if again := opt.Progress.Snapshot(); again.Total != snap.Total {
		t.Errorf("repeated Precompute inflated progress total: %d -> %d", snap.Total, again.Total)
	}
}

package sim

import (
	"testing"

	"pradram/internal/memctrl"
)

func TestAnalyticEstimateAgreesRoughly(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("simulation-backed; skipped with -short")
	}
	cfg := quickCfg("GUPS")
	cfg.InstrPerCore = 60_000
	cfg.WarmupPerCore = 120_000
	res, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	est, err := AnalyticEstimate(res)
	if err != nil {
		t.Fatal(err)
	}
	simMW := res.AvgPowerMW()
	ratio := est.Total() / simMW
	// The closed-form model and the event-driven accounting share
	// parameters: totals must agree closely.
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("analytic/simulated power ratio = %.3f, want within 15%%", ratio)
	}
	// The activation component especially (same P_ACT, same counts).
	actSim := res.Energy[0] / res.RuntimeNs()
	if actSim > 0 {
		if r := est[0] / actSim; r < 0.9 || r > 1.1 {
			t.Errorf("ACT component ratio = %.3f", r)
		}
	}
}

func TestAnalyticEstimateRejectsBadCounters(t *testing.T) {
	t.Parallel()
	var res Result
	res.Ctrl.ReadsServed = -5 // impossible counter
	res.Cycles = 100
	if _, err := AnalyticEstimate(res); err == nil {
		t.Error("negative rates must propagate a validation error")
	}
}

func TestMaxSlowdown(t *testing.T) {
	t.Parallel()
	res := Result{
		Apps:    []string{"a", "b"},
		CoreIPC: []float64{1.0, 0.5},
	}
	alone := map[string]float64{"a": 2.0, "b": 0.5}
	// Core 0 slowed 2x, core 1 not at all.
	if got := res.MaxSlowdown(alone); got != 2.0 {
		t.Errorf("MaxSlowdown = %v, want 2.0", got)
	}
	if got := res.MaxSlowdown(map[string]float64{}); got != 0 {
		t.Errorf("empty alone map must yield 0, got %v", got)
	}
}

func TestModelCheckExperimentTiny(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("simulation-backed; skipped with -short")
	}
	out, err := ExpModelCheck(NewRunner(ExpOptions{Instr: 20_000, Warmup: 30_000, Seed: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) < 100 {
		t.Error("model-check output too short")
	}
	_ = memctrl.Baseline
}

package sim

import (
	"fmt"

	"pradram/internal/obs"
)

// This file wires a System into the observability layer (internal/obs):
// ObsConfig selects what telemetry a run carries, attachObs builds the
// recorder and event log and registers the sim-level probes, and the Run
// loop in sim.go ticks the recorder on epoch boundaries. Every probe is a
// read-only view over counters the simulator maintains anyway, so a run
// with telemetry attached produces bit-identical Results to one without
// (the determinism suite asserts this).

// ObsConfig selects which parts of the telemetry layer a run carries. The
// zero value disables everything and adds only a nil check per simulated
// cycle to the hot loop.
type ObsConfig struct {
	// EpochCycles is the recorder sampling period in DRAM cycles (the
	// paper's numbers are all per-memory-cycle, so epochs are defined in
	// the memory clock domain even though the sim loop runs on the CPU
	// clock). 0 disables the epoch time-series recorder.
	EpochCycles int64

	// EventLevel enables the structured event trace at the given
	// verbosity; obs.LevelOff (the zero value) disables it.
	EventLevel obs.Level

	// EventCap overrides the event ring capacity (0 = obs.DefaultEventCap).
	EventCap int
}

func (o ObsConfig) enabled() bool {
	return o.EpochCycles > 0 || o.EventLevel != obs.LevelOff
}

// attachObs builds the recorder and event log requested by cfg.Obs and
// registers probes across every substrate. Called once from New, after the
// controller, hierarchy, and cores exist.
func (s *System) attachObs() {
	o := s.cfg.Obs
	if o.EventLevel != obs.LevelOff {
		s.ev = obs.NewEventLog(o.EventCap, o.EventLevel)
	}
	s.cpm = s.ctrl.CPUPerMem()
	if o.EpochCycles > 0 {
		s.rec = obs.NewRecorder(o.EpochCycles)
		s.epochCPU = o.EpochCycles * s.cpm
	}
	s.ctrl.AttachObs(s.rec, s.ev)
	s.hier.Events = s.ev
	if s.rec == nil {
		return
	}

	// Cache-hierarchy probes: demand stream, writeback traffic, and the
	// DBI case study. dirty_words_overflow surfaces Hist clamping (it
	// should stay 0; a nonzero epoch means the histogram range is wrong).
	rec, h := s.rec, s.hier
	rec.Counter("l1_miss", func() int64 { return h.Stats.L1Misses })
	rec.Counter("l2_hit", func() int64 { return h.Stats.L2Hits })
	rec.Counter("l2_miss", func() int64 { return h.Stats.L2Misses })
	rec.Counter("writebacks", func() int64 { return h.Stats.Writebacks })
	rec.Counter("dirty_bytes", func() int64 { return h.Stats.DirtyBytes })
	rec.Counter("dbi_proactive", func() int64 { return h.Stats.DBIProactive })
	rec.Counter("dirty_words_overflow", func() int64 { return h.Stats.DirtyWords.Overflow })

	// Per-core progress: retired-instruction deltas give a per-epoch IPC
	// time-series when divided by the epoch's CPU cycles.
	for i, c := range s.cores {
		c := c
		rec.Counter(fmt.Sprintf("core%d_retired", i), func() int64 { return c.Retired })
	}
}

// Recorder returns the epoch time-series recorder, or nil when
// Config.Obs.EpochCycles was 0.
func (s *System) Recorder() *obs.Recorder { return s.rec }

// Events returns the structured event log, or nil when tracing was off.
// A nil *obs.EventLog is safe to pass around: all its methods degrade to
// "tracing disabled".
func (s *System) Events() *obs.EventLog { return s.ev }

package sim

import (
	"fmt"

	"pradram/internal/memctrl"
	"pradram/internal/stats"
)

// The RowHammer mitigation experiment (DESIGN.md §4g): drive the
// adversarial hammer generators (plus GUPS as a benign control) against
// the Alert/RFM mitigation, with PRA on and off, and report what the
// defense costs — alerts raised, RFMs issued, command-stream stall cycles,
// and the runtime and power deltas against the same run with mitigation
// disabled.

// hammerMitThreshold is the per-row activation threshold the experiment
// arms. A serialized attack stream lands only a handful of activations on
// an aggressor row per refresh window (tREFI between counter resets), so a
// small threshold is what separates the hammer patterns from the benign
// control here; real PRAC thresholds are larger because real windows are
// too. At 4, the three targeted hammers alert steadily while GUPS and the
// row-uniform RowStorm never do.
const hammerMitThreshold = 4

// hammerWorkloads are the experiment's rows: the four adversarial
// patterns, then GUPS — memory-intensive but row-uniform, so a correctly
// tuned threshold should barely fire on it.
var hammerWorkloads = []string{"HammerSingle", "HammerDouble", "RowStorm", "HammerDecoy", "GUPS"}

// hammerSchemes spans the paper's axis: does partial-row activation change
// what the mitigation costs?
var hammerSchemes = []memctrl.Scheme{memctrl.Baseline, memctrl.PRA}

func hammerKey(w string, s memctrl.Scheme, threshold int) runKey {
	return runKey{workload: w, scheme: s, policy: memctrl.RelaxedClose, active: 1,
		mitThreshold: threshold}
}

func keysHammer() []runKey {
	var keys []runKey
	for _, w := range hammerWorkloads {
		for _, s := range hammerSchemes {
			keys = append(keys, hammerKey(w, s, 0), hammerKey(w, s, hammerMitThreshold))
		}
	}
	return keys
}

// ExpHammer regenerates the mitigation-overhead table. Every mitigation-on
// run is paired with the identical run with mitigation off (which is
// bit-identical to a simulator without the feature — the identity suite
// enforces that), so the deltas isolate the defense's cost.
func ExpHammer(r *Runner) (string, error) {
	t := stats.NewTable("workload", "scheme",
		"alerts", "RFMs", "stall cyc", "spills", "dCycles%", "dPower%")
	for _, w := range hammerWorkloads {
		for _, s := range hammerSchemes {
			base, err := r.Run(hammerKey(w, s, 0))
			if err != nil {
				return "", err
			}
			res, err := r.Run(hammerKey(w, s, hammerMitThreshold))
			if err != nil {
				return "", err
			}
			t.Row(w, s.String(),
				res.Ctrl.Alerts,
				res.Dev.RFMs,
				res.Ctrl.AlertStallCycles,
				res.Dev.RowSpills,
				fmt.Sprintf("%+.2f", 100*(float64(res.Cycles)/float64(base.Cycles)-1)),
				fmt.Sprintf("%+.2f", 100*(res.AvgPowerMW()/base.AvgPowerMW()-1)))
		}
	}
	return t.String() + fmt.Sprintf("\nAlert/RFM mitigation at threshold %d activations per row per refresh window;\n"+
		"deltas are against the same configuration with mitigation off.\n", hammerMitThreshold), nil
}

package sim

import (
	"reflect"
	"sync"
	"testing"

	"pradram/internal/memctrl"
)

// The determinism suite is the regression gate that keeps parallelism
// from silently perturbing paper numbers: the same runKey set must produce
// bit-identical Results through the sequential path and the worker pool.
// These tests stay enabled under -short so `go test -race -short ./...`
// exercises the concurrent cache on every CI run.

// determinismKeys is a small spread over schemes, policies, and core
// counts — enough shape diversity to catch order-dependent state without
// blowing the -race budget.
func determinismKeys() []runKey {
	return []runKey{
		{workload: "GUPS", scheme: memctrl.Baseline, policy: memctrl.RelaxedClose, active: 1},
		{workload: "GUPS", scheme: memctrl.PRA, policy: memctrl.RelaxedClose, active: 4},
		{workload: "em3d", scheme: memctrl.HalfDRAM, policy: memctrl.RestrictedClose, active: 4},
		{workload: "MIX2", scheme: memctrl.PRA, policy: memctrl.RelaxedClose, dbi: true, active: 4},
	}
}

// tinyOpt is the budget the determinism tests run at. Workers is pinned
// (not NumCPU) so the parallel path really overlaps runs even on a
// single-CPU CI machine.
func tinyOpt(workers int) ExpOptions {
	return ExpOptions{Instr: 12_000, Warmup: 12_000, Seed: 1, Workers: workers}
}

func TestParallelPoolMatchesSequential(t *testing.T) {
	t.Parallel()
	keys := determinismKeys()

	seq := NewRunner(tinyOpt(1))
	if err := seq.Precompute(keys); err != nil {
		t.Fatal(err)
	}
	par := NewRunner(tinyOpt(4))
	if err := par.Precompute(keys); err != nil {
		t.Fatal(err)
	}

	for _, k := range keys {
		a, err := seq.Run(k)
		if err != nil {
			t.Fatal(err)
		}
		b, err := par.Run(k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: sequential and parallel results differ:\nseq: %+v\npar: %+v", k, a, b)
		}
	}
	if got, want := par.Simulations(), int64(len(keys)); got != want {
		t.Errorf("parallel pool executed %d simulations, want %d (no duplicates, no drops)", got, want)
	}
}

// TestSingleflightDeduplicates hammers one key from many goroutines: all
// callers must receive the identical result and the simulation must have
// executed exactly once.
func TestSingleflightDeduplicates(t *testing.T) {
	t.Parallel()
	r := NewRunner(tinyOpt(4))
	k := runKey{workload: "GUPS", scheme: memctrl.Baseline, policy: memctrl.RelaxedClose, active: 1}

	const callers = 8
	results := make([]Result, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = r.Run(k)
		}(i)
	}
	wg.Wait()

	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Errorf("caller %d saw a different result", i)
		}
	}
	if got := r.Simulations(); got != 1 {
		t.Errorf("%d simulations executed for one key, want 1 (singleflight)", got)
	}
}

// TestExperimentOutputIdenticalAcrossWorkers renders a full experiment
// table through both paths: the formatted bytes must match exactly, which
// is what guarantees `praexp -exp all` emits identical tables at any -j.
func TestExperimentOutputIdenticalAcrossWorkers(t *testing.T) {
	t.Parallel()
	e, err := ExperimentByID("modelcheck")
	if err != nil {
		t.Fatal(err)
	}
	seqOut, err := NewRunner(tinyOpt(1)).RunExperiment(e)
	if err != nil {
		t.Fatal(err)
	}
	parOut, err := NewRunner(tinyOpt(4)).RunExperiment(e)
	if err != nil {
		t.Fatal(err)
	}
	if seqOut != parOut {
		t.Errorf("experiment output differs between -j 1 and -j 4:\n--- sequential ---\n%s\n--- parallel ---\n%s", seqOut, parOut)
	}
}

// TestDiskCacheRoundTrip proves a result survives the JSON round trip
// bit-identically and that a second runner recalls it without simulating.
func TestDiskCacheRoundTrip(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	opt := tinyOpt(2)
	opt.CacheDir = dir
	k := runKey{workload: "em3d", scheme: memctrl.PRA, policy: memctrl.RelaxedClose, active: 4}

	first := NewRunner(opt)
	a, err := first.Run(k)
	if err != nil {
		t.Fatal(err)
	}
	if first.Simulations() != 1 || first.DiskHits() != 0 {
		t.Fatalf("cold run: %d sims, %d disk hits", first.Simulations(), first.DiskHits())
	}

	second := NewRunner(opt)
	b, err := second.Run(k)
	if err != nil {
		t.Fatal(err)
	}
	if second.Simulations() != 0 || second.DiskHits() != 1 {
		t.Errorf("warm run: %d sims, %d disk hits, want 0 and 1", second.Simulations(), second.DiskHits())
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("disk round trip changed the result:\nfresh: %+v\ncached: %+v", a, b)
	}
}

// TestDiskCacheKeyedByBudgetAndVersion: a different budget or seed must
// miss rather than resurface a foreign result.
func TestDiskCacheKeyedByBudgetAndVersion(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	opt := tinyOpt(1)
	opt.CacheDir = dir
	k := runKey{workload: "GUPS", scheme: memctrl.Baseline, policy: memctrl.RelaxedClose, active: 1}

	if _, err := NewRunner(opt).Run(k); err != nil {
		t.Fatal(err)
	}
	changed := opt
	changed.Seed = 99
	r := NewRunner(changed)
	if _, err := r.Run(k); err != nil {
		t.Fatal(err)
	}
	if r.DiskHits() != 0 {
		t.Error("a different seed must not hit the disk cache")
	}
	if r.Simulations() != 1 {
		t.Errorf("changed-seed run executed %d simulations, want 1", r.Simulations())
	}
}

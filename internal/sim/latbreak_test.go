package sim

import (
	"fmt"
	"reflect"
	"testing"

	"pradram/internal/memctrl"
	"pradram/internal/stats"
)

// latCfg is skipCfg with latency attribution and span sampling armed —
// the configuration the conservation matrix and the identity legs share.
func latCfg(workload string) Config {
	cfg := skipCfg(workload)
	cfg.LatBreak = true
	cfg.LatSpanEvery = 7
	return cfg
}

// checkConserved asserts the attribution contract on one finished run: the
// component breakdowns sum exactly to the always-on latency totals, no
// component is negative, and the histogram populations match the request
// counts the controller served.
func checkConserved(t *testing.T, res Result) {
	t.Helper()
	if got, want := res.Ctrl.ReadLatBreak.Sum(), res.Ctrl.ReadLatencySum; got != want {
		t.Errorf("read breakdown sums to %d cycles, latency total is %d", got, want)
	}
	if got, want := res.Ctrl.WriteLatBreak.Sum(), res.Ctrl.WriteLatencySum; got != want {
		t.Errorf("write breakdown sums to %d cycles, latency total is %d", got, want)
	}
	for comp := memctrl.LatComponent(0); comp < memctrl.NumLatComponents; comp++ {
		if res.Ctrl.ReadLatBreak[comp] < 0 || res.Ctrl.WriteLatBreak[comp] < 0 {
			t.Errorf("component %s is negative: read %d, write %d",
				comp, res.Ctrl.ReadLatBreak[comp], res.Ctrl.WriteLatBreak[comp])
		}
	}
	if got, want := res.Ctrl.ReadLatHist.N, res.Ctrl.ReadsServed; got != want {
		t.Errorf("read histogram holds %d samples, controller served %d reads", got, want)
	}
	if got, want := res.Ctrl.WriteLatHist.N, res.Ctrl.WritesServed; got != want {
		t.Errorf("write histogram holds %d samples, controller served %d writes", got, want)
	}
}

// TestLatAttributionConservationMatrix is the tentpole's correctness
// contract end to end: for every activation scheme crossed with
// representative workloads, with attribution on, (1) a fast-forwarded run
// is bit-identical to a per-cycle run, (2) a checkpoint-restored run is
// bit-identical to the monolithic run, and (3) every leg satisfies the
// conservation invariant — components sum exactly to the latency totals —
// including span-level conservation for every sampled request.
func TestLatAttributionConservationMatrix(t *testing.T) {
	t.Parallel()
	for _, sch := range memctrl.Schemes() {
		for _, wl := range []string{"GUPS", "LinkedList", "bzip2"} {
			sch, wl := sch, wl
			t.Run(fmt.Sprintf("%s/%s", sch, wl), func(t *testing.T) {
				t.Parallel()
				cfg := latCfg(wl)
				cfg.Scheme = sch
				skip, noskip, rs, rn := runBoth(t, cfg)
				checkIdentical(t, skip, noskip, rs, rn)
				checkConserved(t, rs)

				data := warmAndCheckpoint(t, cfg)
				restored, rr := restoreAndMeasure(t, cfg, data)
				checkIdentical(t, skip, restored, rs, rr)

				spans := skip.LatSpans()
				if wl != "bzip2" && len(spans) == 0 {
					t.Error("memory-bound run sampled no spans; the span checks are vacuous")
				}
				for _, s := range spans {
					if got, want := s.Break.Sum(), s.Done-s.Arrive; got != want {
						t.Errorf("span %+v breakdown sums to %d, lifetime is %d", s.Loc, got, want)
					}
				}
				if !reflect.DeepEqual(spans, restored.LatSpans()) {
					t.Error("restored run sampled different spans than the monolithic run")
				}
			})
		}
	}
}

// TestLatBreakOffResultIdentity proves attribution observes without
// perturbing: the same configuration with LatBreak off yields the exact
// same Result, except for the attribution aggregates themselves (which are
// zero when off). Everything the simulator models — cycles, IPC, energy,
// device stats, the always-on latency sums — must match bit for bit.
func TestLatBreakOffResultIdentity(t *testing.T) {
	t.Parallel()
	cfg := latCfg("GUPS")
	cfg.Scheme = memctrl.PRA
	on, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.LatBreak = false
	cfg.LatSpanEvery = 0
	off, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if off.Ctrl.ReadLatBreak.Sum() != 0 || off.Ctrl.ReadLatHist.N != 0 {
		t.Error("attribution aggregates populated with LatBreak off")
	}
	scrub := on
	scrub.Ctrl.ReadLatBreak = memctrl.LatBreakdown{}
	scrub.Ctrl.WriteLatBreak = memctrl.LatBreakdown{}
	scrub.Ctrl.ReadLatHist = stats.LogHist{}
	scrub.Ctrl.WriteLatHist = stats.LogHist{}
	if !reflect.DeepEqual(scrub, off) {
		t.Errorf("results diverge beyond the attribution aggregates:\non:  %+v\noff: %+v", scrub, off)
	}
}

// FuzzLatAttribution stresses the conservation invariant across the edges
// where blame changes hands: randomized workloads and schemes crossed with
// power-down, self-refresh, per-bank refresh, and RowHammer-mitigation
// variants, all of which inject the episodic stall sources the sweep must
// attribute without ever over- or under-counting a cycle.
func FuzzLatAttribution(f *testing.F) {
	f.Add(int64(2_000), uint64(1), uint8(0), uint8(0), uint8(0))
	f.Add(int64(1_500), uint64(7), uint8(1), uint8(3), uint8(1))
	f.Add(int64(3_000), uint64(42), uint8(2), uint8(1), uint8(2))
	f.Add(int64(2_500), uint64(9), uint8(0), uint8(2), uint8(3))
	f.Fuzz(func(t *testing.T, instr int64, seed uint64, wsel, ssel, vsel uint8) {
		if instr < 200 || instr > 5_000 {
			t.Skip()
		}
		workloads := []string{"GUPS", "LinkedList", "bzip2", "HammerSingle"}
		schemes := memctrl.Schemes()
		cfg := DefaultConfig(workloads[int(wsel)%len(workloads)])
		cfg.Scheme = schemes[int(ssel)%len(schemes)]
		cfg.Cores = 2
		cfg.InstrPerCore = instr
		cfg.WarmupPerCore = instr / 2
		cfg.Seed = seed%1000 + 1
		cfg.LatBreak = true
		cfg.LatSpanEvery = 3
		switch vsel % 4 {
		case 1: // aggressive timed power-down with slow (DLL-off) exits
			cfg.PDPolicy = memctrl.PDTimed
			cfg.PDTimeout = 64
			cfg.PDSlowExit = true
		case 2: // self-refresh plus per-bank refresh
			cfg.SRTimeout = 2_000
			cfg.RefreshMode = memctrl.RefreshPerBank
		case 3: // RowHammer mitigation with a hair-trigger threshold
			cfg.MitThreshold = 4
		}
		res, err := RunOne(cfg)
		if err != nil {
			t.Fatal(err)
		}
		checkConserved(t, res)
	})
}

package sim

import "testing"

// Full-system wall-clock benchmarks for latency attribution, paired on/off
// so tools/benchgate -lat can gate on their ratio without a stored
// hardware baseline: the off leg proves the always-advancing sweep
// frontier costs nothing measurable, and the on leg bounds what the
// deadline sweep, histograms, and span sampling may add on a
// memory-intensive run. Runs are deterministic, so every iteration does
// identical work and ns/op differences are pure host effects.

func latBenchCfg(on bool) Config {
	cfg := DefaultConfig("GUPS")
	cfg.InstrPerCore = 30_000
	cfg.WarmupPerCore = 0
	cfg.Cores = 1
	if on {
		cfg.LatBreak = true
		cfg.LatSpanEvery = 64
	}
	return cfg
}

func benchLat(b *testing.B, on bool) {
	b.Helper()
	cfg := latBenchCfg(on)
	for i := 0; i < b.N; i++ {
		s, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			b.Fatal(err)
		}
		if on && res.Ctrl.ReadLatBreak.Sum() != res.Ctrl.ReadLatencySum {
			b.Fatal("attribution benchmark violated conservation; the overhead pair is vacuous")
		}
	}
}

func BenchmarkLatBreakOff(b *testing.B) { benchLat(b, false) }
func BenchmarkLatBreakOn(b *testing.B)  { benchLat(b, true) }

package sim

import (
	"testing"

	"pradram/internal/memctrl"
)

// Bit-identity matrices for the Alert/RFM mitigation (DESIGN.md §4g),
// extending the two determinism contracts — fast-forwarding and
// checkpoint restore change nothing observable — over the new scheme
// crossed with the adversarial workloads. The mitigation is the hard case
// for both: the alert back-off stalls the command stream on a deadline
// only the triggering ACT knows, and the counter tables plus the RFM FSM
// are state a checkpoint must carry exactly.

// mitIdentityVariants spans the mitigation feature space. Every variant
// arms the threshold the hammer experiment uses; the rest probe the
// interactions most likely to break identity — a table small enough to
// spill, a back-off long enough to cross epoch boundaries, and the
// alternative refresh modes with power-down in play (counter resets ride
// on REF/REFpb/self-refresh).
func mitIdentityVariants() []struct {
	name string
	mod  func(*Config)
} {
	arm := func(c *Config) { c.MitThreshold = hammerMitThreshold }
	return []struct {
		name string
		mod  func(*Config)
	}{
		{"alert-rfm", arm},
		{"tiny-table", func(c *Config) { arm(c); c.MitTableCap = 64 }},
		{"long-backoff", func(c *Config) { arm(c); c.MitAlertCycles = 600 }},
		{"perbank", func(c *Config) { arm(c); c.RefreshMode = memctrl.RefreshPerBank }},
		{"elastic-pd", func(c *Config) {
			arm(c)
			c.RefreshMode = memctrl.RefreshElastic
			c.PDSlowExit = true
			c.APD = true
		}},
	}
}

// mitIdentityCells pairs workloads with the variants worth crossing: the
// base alert-rfm cell for every hammer pattern plus the benign control,
// and the full variant fan for one aggressive hammer. RowStorm rides with
// the tiny table so the spill path (untracked rows alerting off the
// Misra-Gries floor) is in the matrix too.
func mitIdentityCells() []struct {
	workload, variant string
} {
	cells := []struct{ workload, variant string }{
		{"HammerSingle", "alert-rfm"},
		{"HammerDouble", "alert-rfm"},
		{"HammerDecoy", "alert-rfm"},
		{"RowStorm", "tiny-table"},
		{"GUPS", "alert-rfm"},
		{"HammerSingle", "tiny-table"},
		{"HammerSingle", "long-backoff"},
		{"HammerSingle", "perbank"},
		{"HammerSingle", "elastic-pd"},
	}
	return cells
}

func mitVariantByName(t *testing.T, name string) func(*Config) {
	t.Helper()
	for _, v := range mitIdentityVariants() {
		if v.name == name {
			return v.mod
		}
	}
	t.Fatalf("unknown mitigation variant %q", name)
	return nil
}

// TestMitigationSkipBitIdentityMatrix: a fast-forwarded run under active
// mitigation must match a per-cycle run bit for bit. The hammer cells
// additionally prove the mitigation engaged (alerts > 0), so no cell
// passes vacuously.
func TestMitigationSkipBitIdentityMatrix(t *testing.T) {
	t.Parallel()
	cells := mitIdentityCells()
	if testing.Short() {
		// The two cells with the most moving parts: spill-path alerts and
		// mitigation crossed with the power-down/elastic-refresh FSMs.
		cells = []struct{ workload, variant string }{
			{"RowStorm", "tiny-table"},
			{"HammerSingle", "elastic-pd"},
		}
	}
	for _, sch := range []memctrl.Scheme{memctrl.Baseline, memctrl.PRA} {
		for _, cell := range cells {
			sch, cell := sch, cell
			t.Run(cell.workload+"/"+sch.String()+"/"+cell.variant, func(t *testing.T) {
				t.Parallel()
				cfg := skipCfg(cell.workload)
				cfg.Scheme = sch
				mitVariantByName(t, cell.variant)(&cfg)
				skip, noskip, rs, rn := runBoth(t, cfg)
				checkIdentical(t, skip, noskip, rs, rn)
				if cell.workload != "GUPS" && rs.Ctrl.Alerts == 0 {
					t.Error("hammer cell raised no alerts; the mitigation identity check is vacuous")
				}
				if cell.variant == "tiny-table" && rs.Dev.RowSpills == 0 {
					t.Error("tiny-table cell never spilled; the overflow path is untested")
				}
			})
		}
	}
}

// TestMitigationCheckpointBitIdentityMatrix: warmup → checkpoint →
// restore → measure must equal a monolithic run for every mitigation
// cell. This is what proves the per-row counter tables and the alert/RFM
// FSM fields serialize completely — a missed field surfaces as a
// post-restore divergence.
func TestMitigationCheckpointBitIdentityMatrix(t *testing.T) {
	t.Parallel()
	cells := mitIdentityCells()
	if testing.Short() {
		cells = cells[:1]
	}
	for _, cell := range cells {
		cell := cell
		t.Run(cell.workload+"/"+cell.variant, func(t *testing.T) {
			t.Parallel()
			cfg := skipCfg(cell.workload)
			cfg.Scheme = memctrl.PRA
			mitVariantByName(t, cell.variant)(&cfg)

			mono, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			rm, err := mono.Run()
			if err != nil {
				t.Fatal(err)
			}
			data := warmAndCheckpoint(t, cfg)
			restored, rr := restoreAndMeasure(t, cfg, data)
			checkIdentical(t, mono, restored, rm, rr)
		})
	}
}

package sim

import (
	"fmt"
	"strings"

	"pradram/internal/memctrl"
	"pradram/internal/power"
	"pradram/internal/stats"
)

// paperTable1 holds the published Table 1 values for side-by-side
// reporting and the calibration tests: row-buffer hit rates and traffic /
// activation shares, in percent.
var paperTable1 = map[string][6]float64{
	//            hitR hitW trafR trafW actR actW
	"bzip2":      {32, 1, 69, 31, 60, 40},
	"lbm":        {29, 18, 57, 43, 54, 46},
	"libquantum": {73, 48, 66, 34, 50, 50},
	"mcf":        {18, 1, 79, 21, 76, 24},
	"omnetpp":    {47, 2, 71, 29, 57, 43},
	"em3d":       {5, 1, 51, 49, 50, 50},
	"GUPS":       {3, 1, 53, 47, 52, 48},
	"LinkedList": {4, 1, 65, 35, 64, 36},
}

// ExpTable1 regenerates Table 1: per-benchmark memory characteristics
// under the baseline (single instance, as in the paper's motivation).
func ExpTable1(r *Runner) (string, error) {
	t := stats.NewTable("benchmark",
		"hitR% (paper)", "hitW% (paper)",
		"trafR% (paper)", "trafW% (paper)",
		"actR% (paper)", "actW% (paper)")
	for _, b := range benchOrder {
		res, err := r.Run(runKey{workload: b, scheme: memctrl.Baseline, policy: memctrl.RelaxedClose, active: 1})
		if err != nil {
			return "", err
		}
		p := paperTable1[b]
		cell := func(v float64, ref float64) string {
			return fmt.Sprintf("%5.1f (%2.0f)", v, ref)
		}
		t.Row(b,
			cell(100*res.RowHitRateRead(), p[0]),
			cell(100*res.RowHitRateWrite(), p[1]),
			cell(100*res.ReadTrafficShare(), p[2]),
			cell(100*(1-res.ReadTrafficShare()), p[3]),
			cell(100*res.ReadActShare(), p[4]),
			cell(100*(1-res.ReadActShare()), p[5]))
	}
	return t.String(), nil
}

// ExpFig2 regenerates Figure 2: the baseline DRAM power breakdown
// (single-core, as the paper's motivational setup).
func ExpFig2(r *Runner) (string, error) {
	t := stats.NewTable("benchmark", "ACT-PRE%", "RD%", "WR%", "I/O%", "BG%", "REF%", "total mW")
	var actSum, ioSum float64
	for _, b := range benchOrder {
		res, err := r.Run(runKey{workload: b, scheme: memctrl.Baseline, policy: memctrl.RelaxedClose, active: 1})
		if err != nil {
			return "", err
		}
		e := res.Energy
		tot := e.Total()
		io := e.IO()
		t.Row(b,
			100*e.Share(power.CompActPre),
			100*e.Share(power.CompRd),
			100*e.Share(power.CompWr),
			100*stats.Ratio(io, tot),
			100*e.Share(power.CompBG),
			100*e.Share(power.CompRef),
			res.AvgPowerMW())
		actSum += e.Share(power.CompActPre)
		ioSum += stats.Ratio(io, tot)
	}
	n := float64(len(benchOrder))
	return t.String() + fmt.Sprintf("\nACT-PRE average %.0f%% (paper: ~25%%, up to 33%%); I/O average %.0f%% (paper: ~14%%, up to 19%%)\n",
		100*actSum/n, 100*ioSum/n), nil
}

// ExpFig3 regenerates Figure 3: the distribution of dirty words per cache
// line at LLC eviction.
func ExpFig3(r *Runner) (string, error) {
	t := stats.NewTable("benchmark", "1w%", "2w%", "3w%", "4w%", "5w%", "6w%", "7w%", "8w%", "mean")
	for _, b := range benchOrder {
		res, err := r.Run(runKey{workload: b, scheme: memctrl.Baseline, policy: memctrl.RelaxedClose, active: 1})
		if err != nil {
			return "", err
		}
		h := res.Cache.DirtyWords
		row := []any{b}
		for w := 1; w <= 8; w++ {
			row = append(row, 100*h.Share(w))
		}
		row = append(row, h.Mean())
		t.Row(row...)
	}
	return t.String() + "\nPaper shape: pointer/update codes (GUPS, LinkedList, mcf, em3d) cluster at 1 word;\nstreaming writers (libquantum, lbm) dirty most of the line.\n", nil
}

// ExpFig10 regenerates Figure 10: row-buffer hit rates under PRA with
// false-hit accounting, against the baseline.
func ExpFig10(r *Runner) (string, error) {
	t := stats.NewTable("workload", "base R%", "pra R%", "base W%", "pra W%", "base tot%", "pra tot%", "falseR%", "falseW%")
	var fr, fw float64
	var n int
	for _, w := range workloadOrder() {
		base, err := r.Run(runKey{workload: w, scheme: memctrl.Baseline, policy: memctrl.RelaxedClose, active: 4})
		if err != nil {
			return "", err
		}
		pra, err := r.Run(runKey{workload: w, scheme: memctrl.PRA, policy: memctrl.RelaxedClose, active: 4})
		if err != nil {
			return "", err
		}
		t.Row(w,
			100*base.RowHitRateRead(), 100*pra.RowHitRateRead(),
			100*base.RowHitRateWrite(), 100*pra.RowHitRateWrite(),
			100*base.RowHitRateTotal(), 100*pra.RowHitRateTotal(),
			100*pra.FalseHitRateRead(), 100*pra.FalseHitRateWrite())
		fr += pra.FalseHitRateRead()
		fw += pra.FalseHitRateWrite()
		n++
	}
	return t.String() + fmt.Sprintf("\nAverage false hit rate: reads %.2f%% (paper avg 0.04%%, max 0.26%%), writes %.2f%%\n",
		100*fr/float64(n), 100*fw/float64(n)), nil
}

// ExpFig11 regenerates Figure 11: activation-granularity proportions under
// PRA for both close-page policies.
func ExpFig11(r *Runner) (string, error) {
	var b strings.Builder
	for _, pol := range []memctrl.Policy{memctrl.RestrictedClose, memctrl.RelaxedClose} {
		fmt.Fprintf(&b, "-- %v --\n", pol)
		t := stats.NewTable("workload", "1/8%", "2/8%", "3/8%", "4/8%", "5/8%", "6/8%", "7/8%", "full%")
		sums := make([]float64, 9)
		var n int
		for _, w := range workloadOrder() {
			res, err := r.Run(runKey{workload: w, scheme: memctrl.PRA, policy: pol, active: 4})
			if err != nil {
				return "", err
			}
			row := []any{w}
			for g := 1; g <= 8; g++ {
				v := 100 * res.GranularityShare(g)
				row = append(row, v)
				sums[g] += v
			}
			n++
			t.Row(row...)
		}
		row := []any{"average"}
		for g := 1; g <= 8; g++ {
			row = append(row, sums[g]/float64(n))
		}
		t.Row(row...)
		b.WriteString(t.String())
		b.WriteString("\n")
	}
	b.WriteString("Paper averages (relaxed): 39, 2, 0.43, 0.45, 0.05, 0.05, 0.02, 58\n")
	b.WriteString("Paper averages (restricted): 36, 2.3, 0.4, 1.2, 0.04, 0.04, 0.02, 60\n")
	return b.String(), nil
}

// schemeComparison runs the Figure 12/13 matrix: every workload under
// baseline, FGA, Half-DRAM, and PRA with the relaxed close-page policy.
func schemeComparison(r *Runner, w string) (base, fga, half, pra Result, err error) {
	if base, err = r.Run(runKey{workload: w, scheme: memctrl.Baseline, policy: memctrl.RelaxedClose, active: 4}); err != nil {
		return
	}
	if fga, err = r.Run(runKey{workload: w, scheme: memctrl.FGA, policy: memctrl.RelaxedClose, active: 4}); err != nil {
		return
	}
	if half, err = r.Run(runKey{workload: w, scheme: memctrl.HalfDRAM, policy: memctrl.RelaxedClose, active: 4}); err != nil {
		return
	}
	pra, err = r.Run(runKey{workload: w, scheme: memctrl.PRA, policy: memctrl.RelaxedClose, active: 4})
	return
}

// ExpFig12 regenerates Figure 12: normalized activation, I/O, and total
// DRAM power for FGA, Half-DRAM, and PRA.
func ExpFig12(r *Runner) (string, error) {
	var b strings.Builder
	type row struct{ act, io, tot [3]float64 } // fga, half, pra
	var avg row
	t := stats.NewTable("workload",
		"ACT fga", "ACT half", "ACT pra",
		"I/O fga", "I/O half", "I/O pra",
		"TOT fga", "TOT half", "TOT pra")
	var n int
	for _, w := range workloadOrder() {
		base, fga, half, pra, err := schemeComparison(r, w)
		if err != nil {
			return "", err
		}
		norm := func(res Result, f func(Result) float64) float64 {
			return stats.Ratio(f(res), f(base))
		}
		actOf := func(res Result) float64 { return res.Energy[power.CompActPre] / res.RuntimeNs() }
		ioOf := func(res Result) float64 { return res.Energy.IO() / res.RuntimeNs() }
		totOf := func(res Result) float64 { return res.AvgPowerMW() }
		vals := row{
			act: [3]float64{norm(fga, actOf), norm(half, actOf), norm(pra, actOf)},
			io:  [3]float64{norm(fga, ioOf), norm(half, ioOf), norm(pra, ioOf)},
			tot: [3]float64{norm(fga, totOf), norm(half, totOf), norm(pra, totOf)},
		}
		t.Row(w, vals.act[0], vals.act[1], vals.act[2],
			vals.io[0], vals.io[1], vals.io[2],
			vals.tot[0], vals.tot[1], vals.tot[2])
		for i := 0; i < 3; i++ {
			avg.act[i] += vals.act[i]
			avg.io[i] += vals.io[i]
			avg.tot[i] += vals.tot[i]
		}
		n++
	}
	fn := float64(n)
	t.Row("average", avg.act[0]/fn, avg.act[1]/fn, avg.act[2]/fn,
		avg.io[0]/fn, avg.io[1]/fn, avg.io[2]/fn,
		avg.tot[0]/fn, avg.tot[1]/fn, avg.tot[2]/fn)
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\nPaper: PRA ACT power -34%% avg (-43%% max); PRA I/O power -45%% avg (-58%% max);\n")
	fmt.Fprintf(&b, "PRA total power -23%% avg (-32%% max); FGA total -15%%; Half-DRAM total -11%%.\n")
	return b.String(), nil
}

// ExpFig13 regenerates Figure 13: normalized performance (weighted
// speedup), DRAM energy, and EDP for FGA, Half-DRAM, and PRA.
func ExpFig13(r *Runner) (string, error) {
	t := stats.NewTable("workload",
		"perf fga", "perf half", "perf pra",
		"energy fga", "energy half", "energy pra",
		"edp fga", "edp half", "edp pra")
	var sums [9]float64
	var n int
	for _, w := range workloadOrder() {
		base, fga, half, pra, err := schemeComparison(r, w)
		if err != nil {
			return "", err
		}
		perf := func(res Result) float64 {
			v, err2 := r.NormalizedWS(res, base, memctrl.RelaxedClose)
			if err2 != nil {
				panic(err2) // alone runs already cached by this point
			}
			return v
		}
		energy := func(res Result) float64 { return stats.Ratio(res.TotalEnergyPJ(), base.TotalEnergyPJ()) }
		edp := func(res Result) float64 { return stats.Ratio(res.EDP(), base.EDP()) }
		vals := [9]float64{
			perf(fga), perf(half), perf(pra),
			energy(fga), energy(half), energy(pra),
			edp(fga), edp(half), edp(pra),
		}
		row := []any{w}
		for i, v := range vals {
			row = append(row, v)
			sums[i] += v
		}
		t.Row(row...)
		n++
	}
	row := []any{"average"}
	for _, s := range sums {
		row = append(row, s/float64(n))
	}
	t.Row(row...)
	return t.String() + "\nPaper: PRA perf -0.8% avg (-4.8% max); Half-DRAM +0.3%; FGA -14% avg (-18% max);\nPRA energy -23% avg (-34% max); PRA EDP -22% avg (-32% max).\n", nil
}

// ExpFig14 regenerates Figure 14: Half-DRAM, PRA, and the combined scheme
// under the restricted close-page policy (14-workload averages).
func ExpFig14(r *Runner) (string, error) {
	schemes := []memctrl.Scheme{memctrl.HalfDRAM, memctrl.PRA, memctrl.HalfDRAMPRA}
	sums := make(map[memctrl.Scheme][4]float64)
	var n int
	for _, w := range workloadOrder() {
		base, err := r.Run(runKey{workload: w, scheme: memctrl.Baseline, policy: memctrl.RestrictedClose, active: 4})
		if err != nil {
			return "", err
		}
		for _, s := range schemes {
			res, err := r.Run(runKey{workload: w, scheme: s, policy: memctrl.RestrictedClose, active: 4})
			if err != nil {
				return "", err
			}
			perf, err := r.NormalizedWS(res, base, memctrl.RestrictedClose)
			if err != nil {
				return "", err
			}
			v := sums[s]
			v[0] += stats.Ratio(res.AvgPowerMW(), base.AvgPowerMW())
			v[1] += perf
			v[2] += stats.Ratio(res.TotalEnergyPJ(), base.TotalEnergyPJ())
			v[3] += stats.Ratio(res.EDP(), base.EDP())
			sums[s] = v
		}
		n++
	}
	t := stats.NewTable("scheme", "power", "performance", "energy", "EDP")
	for _, s := range schemes {
		v := sums[s]
		fn := float64(n)
		t.Row(s.String(), v[0]/fn, v[1]/fn, v[2]/fn, v[3]/fn)
	}
	return t.String() + "\nAll values normalized to the restricted-close baseline, averaged over 14 workloads.\nPaper: the combined scheme beats both components on power/energy/EDP and both\nbenefit from relaxed tRRD/tFAW under the restricted policy.\n", nil
}

// ExpFig15 regenerates Figure 15: DBI, PRA, and DBI+PRA for the paper's
// representative benchmarks plus the 14-workload mean.
func ExpFig15(r *Runner) (string, error) {
	type variant struct {
		name   string
		scheme memctrl.Scheme
		dbi    bool
	}
	variants := []variant{
		{"dbi", memctrl.Baseline, true},
		{"pra", memctrl.PRA, false},
		{"dbi+pra", memctrl.PRA, true},
	}
	picks := []string{"bzip2", "GUPS", "em3d"}
	t := stats.NewTable("workload", "variant", "power", "performance", "energy", "EDP")
	sums := make(map[string][4]float64)
	var n int
	for _, w := range workloadOrder() {
		base, err := r.Run(runKey{workload: w, scheme: memctrl.Baseline, policy: memctrl.RelaxedClose, active: 4})
		if err != nil {
			return "", err
		}
		show := false
		for _, p := range picks {
			if p == w {
				show = true
			}
		}
		for _, v := range variants {
			res, err := r.Run(runKey{workload: w, scheme: v.scheme, policy: memctrl.RelaxedClose, dbi: v.dbi, active: 4})
			if err != nil {
				return "", err
			}
			perf, err := r.NormalizedWS(res, base, memctrl.RelaxedClose)
			if err != nil {
				return "", err
			}
			vals := [4]float64{
				stats.Ratio(res.AvgPowerMW(), base.AvgPowerMW()),
				perf,
				stats.Ratio(res.TotalEnergyPJ(), base.TotalEnergyPJ()),
				stats.Ratio(res.EDP(), base.EDP()),
			}
			if show {
				t.Row(w, v.name, vals[0], vals[1], vals[2], vals[3])
			}
			s := sums[v.name]
			for i := range vals {
				s[i] += vals[i]
			}
			sums[v.name] = s
		}
		n++
	}
	for _, v := range variants {
		s := sums[v.name]
		fn := float64(n)
		t.Row("MEAN", v.name, s[0]/fn, s[1]/fn, s[2]/fn, s[3]/fn)
	}
	return t.String() + "\nPaper: DBI helps performance, PRA helps power; combined sits between\n(extra false hits from DBI's write bursts cost PRA some of its saving).\n", nil
}

// ExpAblation quantifies the contribution of each PRA design element by
// disabling one at a time: the dirty-word-only I/O transfer (NoPartialIO),
// the weighted tRRD/tFAW relaxation (NoTimingRelax), and the extra
// mask-transfer cycle (NoMaskCycle — removing a *cost*, so it can only
// help). Values are normalized to the conventional baseline; "pra" is the
// full published scheme.
func ExpAblation(r *Runner) (string, error) {
	workloads := ablationWorkloads
	variants := []struct {
		name string
		k    func(w string) runKey
	}{
		{"pra", func(w string) runKey {
			return runKey{workload: w, scheme: memctrl.PRA, policy: memctrl.RelaxedClose, active: 4}
		}},
		{"pra-no-partial-io", func(w string) runKey {
			return runKey{workload: w, scheme: memctrl.PRA, policy: memctrl.RelaxedClose, active: 4, noIO: true}
		}},
		{"pra-no-timing-relax", func(w string) runKey {
			return runKey{workload: w, scheme: memctrl.PRA, policy: memctrl.RelaxedClose, active: 4, noRelax: true}
		}},
		{"pra-free-mask-cycle", func(w string) runKey {
			return runKey{workload: w, scheme: memctrl.PRA, policy: memctrl.RelaxedClose, active: 4, noCycle: true}
		}},
	}
	t := stats.NewTable("workload", "variant", "power", "energy", "perf (sumIPC)")
	for _, w := range workloads {
		base, err := r.Run(runKey{workload: w, scheme: memctrl.Baseline, policy: memctrl.RelaxedClose, active: 4})
		if err != nil {
			return "", err
		}
		for _, v := range variants {
			res, err := r.Run(v.k(w))
			if err != nil {
				return "", err
			}
			t.Row(w, v.name,
				stats.Ratio(res.AvgPowerMW(), base.AvgPowerMW()),
				stats.Ratio(res.TotalEnergyPJ(), base.TotalEnergyPJ()),
				stats.Ratio(res.SumIPC(), base.SumIPC()))
		}
	}
	return t.String() + "\nThe I/O ablation shows how much saving comes from transferring only dirty\nwords; the timing ablation isolates the relaxed tRRD/tFAW; the mask-cycle\nablation bounds the cost of delivering the PRA mask over the address bus.\n", nil
}

// ExpSec3Coverage regenerates the Section 3 comparison. Both metrics are
// averaged over ALL memory accesses, as the paper's 42%-vs-16% framing
// implies: PRA's average row-activation granularity comes from the PRA
// run's device histogram (reads stay full row, writes open only dirty MAT
// groups); SDS's average chip-access granularity keeps every read at 8
// chips and scales writes by the chip mask of the dirty bytes — one dirty
// word touches all eight byte positions, so SDS saves far less.
func ExpSec3Coverage(r *Runner) (string, error) {
	t := stats.NewTable("benchmark",
		"PRA act-gran reduction %", "SDS chip-access reduction %",
		"PRA power (norm)", "SDS power (norm)")
	var pSum, sSum, ppSum, spSum float64
	var n int
	for _, b := range benchOrder {
		base, err := r.Run(runKey{workload: b, scheme: memctrl.Baseline, policy: memctrl.RelaxedClose, active: 1})
		if err != nil {
			return "", err
		}
		pra, err := r.Run(runKey{workload: b, scheme: memctrl.PRA, policy: memctrl.RelaxedClose, active: 1})
		if err != nil {
			return "", err
		}
		sds, err := r.Run(runKey{workload: b, scheme: memctrl.SDS, policy: memctrl.RelaxedClose, active: 1})
		if err != nil {
			return "", err
		}
		praRed := 100 * (1 - pra.Dev.AvgGranularity()/8)
		sdsRed := 100 * (1 - sds.Dev.AvgGranularity()/8)
		praPow := stats.Ratio(pra.AvgPowerMW(), base.AvgPowerMW())
		sdsPow := stats.Ratio(sds.AvgPowerMW(), base.AvgPowerMW())
		t.Row(b, praRed, sdsRed, praPow, sdsPow)
		pSum += praRed
		sSum += sdsRed
		ppSum += praPow
		spSum += sdsPow
		n++
	}
	fn := float64(n)
	t.Row("average", pSum/fn, sSum/fn, ppSum/fn, spSum/fn)
	return t.String() + "\nPaper: PRA reduces average activation granularity by 42%; SDS reduces\naverage chip-access granularity by only 16%. The power columns run the\nfull SDS scheme (an extension beyond the paper's qualitative comparison).\n", nil
}

package sim

import (
	"runtime"
	"sync"

	"pradram/internal/memctrl"
	"pradram/internal/workload"
)

// This file is the concurrent half of the experiment layer. Every RunOne
// is a pure function of its configuration, so an experiment campaign is
// embarrassingly parallel: the runner precomputes an experiment's full
// runKey set across a worker pool, then the formatting pass walks the
// (fixed, paper-order) iteration and reads the memo. Execution order can
// therefore never reorder or perturb a table — the determinism test and
// the fig9 golden test enforce exactly that.

// workers resolves the configured pool size. The default tracks
// runtime.GOMAXPROCS(0) rather than NumCPU so an operator capping the
// process with the GOMAXPROCS environment variable caps the campaign too.
func (r *Runner) workers() int {
	if r.opt.Workers > 0 {
		return r.opt.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// AutoPar picks a Config.Par worker-share count that composes with an
// outer level of parallelism without oversubscribing the machine. The two
// levels multiply — outer campaign workers (praexp/prasim -j) each ticking
// a system whose controller runs Par shares — so the budget for the inner
// level is GOMAXPROCS(0)/outer: a campaign that already saturates the
// machine gets 0 (sequential ticking, today's BENCH_speed behaviour), and
// a single interactive run gets every core. outer < 1 is treated as 1.
func AutoPar(outer int) int {
	if outer < 1 {
		outer = 1
	}
	w := runtime.GOMAXPROCS(0) / outer
	if w < 2 {
		return 0
	}
	return w
}

// Precompute executes the given configurations across the runner's worker
// pool so a subsequent formatting pass finds every result memoized.
// Duplicate keys are collapsed before dispatch (the singleflight layer in
// Run would dedup them anyway, but collapsing keeps pool slots busy with
// distinct work), and keys already memoized are skipped so opt.Progress
// sees only real pending work — repeated Precompute calls over overlapping
// key sets ("-exp all" warms once, then each experiment re-asserts its
// keys) must not inflate the total. The first simulation error is returned
// after every in-flight run has finished.
func (r *Runner) Precompute(keys []runKey) error {
	seen := make(map[string]bool, len(keys))
	unique := keys[:0:0]
	r.mu.Lock()
	for _, k := range keys {
		s := k.String()
		if _, memoized := r.cache[s]; !memoized && !seen[s] {
			seen[s] = true
			unique = append(unique, k)
		}
	}
	r.mu.Unlock()
	prog := r.opt.Progress
	prog.AddTotal(int64(len(unique)))
	run := func(k runKey) error {
		prog.Start()
		defer prog.Done()
		_, err := r.Run(k)
		return err
	}

	workers := r.workers()
	if workers > len(unique) {
		workers = len(unique)
	}
	if workers <= 1 {
		for _, k := range unique {
			if err := run(k); err != nil {
				return err
			}
		}
		return nil
	}

	jobs := make(chan runKey)
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range jobs {
				if err := run(k); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
				}
			}
		}()
	}
	for _, k := range unique {
		jobs <- k
	}
	close(jobs)
	wg.Wait()
	return firstErr
}

// RunExperiment precomputes an experiment's key set in parallel, then
// runs its formatting pass against the warm memo.
func (r *Runner) RunExperiment(e Experiment) (string, error) {
	if e.Keys != nil {
		if err := r.Precompute(e.Keys()); err != nil {
			return "", err
		}
	}
	return e.Run(r)
}

// PrecomputeExperiments warms the memo for a batch of experiments in one
// wave, so a full campaign ("-exp all") parallelizes across experiment
// boundaries too instead of paying a pool drain per experiment.
func (r *Runner) PrecomputeExperiments(exps []Experiment) error {
	var keys []runKey
	for _, e := range exps {
		if e.Keys != nil {
			keys = append(keys, e.Keys()...)
		}
	}
	return r.Precompute(keys)
}

// --- per-experiment key enumeration ---

// crossKeys builds the workload x scheme product at one policy and active
// core count.
func crossKeys(workloads []string, schemes []memctrl.Scheme, policy memctrl.Policy, active int) []runKey {
	keys := make([]runKey, 0, len(workloads)*len(schemes))
	for _, w := range workloads {
		for _, s := range schemes {
			keys = append(keys, runKey{workload: w, scheme: s, policy: policy, active: active})
		}
	}
	return keys
}

// aloneKeys enumerates the Equation-3 denominator runs (each unique app of
// each workload alone on the baseline) that NormalizedWS resolves lazily.
func aloneKeys(workloads []string, policy memctrl.Policy) []runKey {
	var keys []runKey
	seen := make(map[string]bool)
	for _, w := range workloads {
		apps, err := workload.Set(w, DefaultConfig(w).Cores)
		if err != nil {
			continue // the experiment itself will surface the error
		}
		for _, app := range apps {
			if !seen[app] {
				seen[app] = true
				keys = append(keys, runKey{workload: app, scheme: memctrl.Baseline, policy: policy, active: 1})
			}
		}
	}
	return keys
}

// keysBenchBaseline covers the single-core motivational runs shared by
// Table 1, Figure 2, and Figure 3.
func keysBenchBaseline() []runKey {
	return crossKeys(benchOrder, []memctrl.Scheme{memctrl.Baseline}, memctrl.RelaxedClose, 1)
}

func keysFig10() []runKey {
	return crossKeys(workloadOrder(), []memctrl.Scheme{memctrl.Baseline, memctrl.PRA}, memctrl.RelaxedClose, 4)
}

func keysFig11() []runKey {
	keys := crossKeys(workloadOrder(), []memctrl.Scheme{memctrl.PRA}, memctrl.RestrictedClose, 4)
	return append(keys, crossKeys(workloadOrder(), []memctrl.Scheme{memctrl.PRA}, memctrl.RelaxedClose, 4)...)
}

func keysFig12() []runKey {
	return crossKeys(workloadOrder(),
		[]memctrl.Scheme{memctrl.Baseline, memctrl.FGA, memctrl.HalfDRAM, memctrl.PRA},
		memctrl.RelaxedClose, 4)
}

func keysFig13() []runKey {
	return append(keysFig12(), aloneKeys(workloadOrder(), memctrl.RelaxedClose)...)
}

func keysFig14() []runKey {
	keys := crossKeys(workloadOrder(),
		[]memctrl.Scheme{memctrl.Baseline, memctrl.HalfDRAM, memctrl.PRA, memctrl.HalfDRAMPRA},
		memctrl.RestrictedClose, 4)
	return append(keys, aloneKeys(workloadOrder(), memctrl.RestrictedClose)...)
}

func keysFig15() []runKey {
	var keys []runKey
	for _, w := range workloadOrder() {
		keys = append(keys,
			runKey{workload: w, scheme: memctrl.Baseline, policy: memctrl.RelaxedClose, active: 4},
			runKey{workload: w, scheme: memctrl.Baseline, policy: memctrl.RelaxedClose, dbi: true, active: 4},
			runKey{workload: w, scheme: memctrl.PRA, policy: memctrl.RelaxedClose, active: 4},
			runKey{workload: w, scheme: memctrl.PRA, policy: memctrl.RelaxedClose, dbi: true, active: 4})
	}
	return append(keys, aloneKeys(workloadOrder(), memctrl.RelaxedClose)...)
}

func keysSec3Coverage() []runKey {
	return crossKeys(benchOrder,
		[]memctrl.Scheme{memctrl.Baseline, memctrl.PRA, memctrl.SDS},
		memctrl.RelaxedClose, 1)
}

// ablationWorkloads is the representative spread the ablation study runs
// (a random-access writer, a streaming writer, and a mix).
var ablationWorkloads = []string{"GUPS", "lbm", "MIX2"}

func keysAblation() []runKey {
	var keys []runKey
	for _, w := range ablationWorkloads {
		keys = append(keys,
			runKey{workload: w, scheme: memctrl.Baseline, policy: memctrl.RelaxedClose, active: 4},
			runKey{workload: w, scheme: memctrl.PRA, policy: memctrl.RelaxedClose, active: 4},
			runKey{workload: w, scheme: memctrl.PRA, policy: memctrl.RelaxedClose, active: 4, noIO: true},
			runKey{workload: w, scheme: memctrl.PRA, policy: memctrl.RelaxedClose, active: 4, noRelax: true},
			runKey{workload: w, scheme: memctrl.PRA, policy: memctrl.RelaxedClose, active: 4, noCycle: true})
	}
	return keys
}

func keysModelCheck() []runKey {
	keys := make([]runKey, 0, len(modelCheckCases))
	for _, c := range modelCheckCases {
		keys = append(keys, runKey{workload: c.workload, scheme: c.scheme, policy: memctrl.RelaxedClose, active: 4})
	}
	return keys
}

package sim

import (
	"testing"

	"pradram/internal/memctrl"
)

func quickCfg(workload string) Config {
	cfg := DefaultConfig(workload)
	cfg.InstrPerCore = 60_000
	return cfg
}

func TestConfigValidation(t *testing.T) {
	t.Parallel()
	if err := DefaultConfig("GUPS").Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig("GUPS")
	bad.Cores = 0
	if bad.Validate() == nil {
		t.Error("zero cores must fail")
	}
	bad = DefaultConfig("GUPS")
	bad.InstrPerCore = 0
	if bad.Validate() == nil {
		t.Error("zero instructions must fail")
	}
	bad = DefaultConfig("")
	if bad.Validate() == nil {
		t.Error("empty workload must fail")
	}
	bad = DefaultConfig("GUPS")
	bad.ActiveCores = 9
	if bad.Validate() == nil {
		t.Error("active > total must fail")
	}
	if _, err := New(DefaultConfig("nosuch")); err == nil {
		t.Error("unknown workload must fail at New")
	}
}

func TestMappingFollowsPolicy(t *testing.T) {
	t.Parallel()
	c := DefaultConfig("GUPS")
	if c.mapping() != memctrl.RowInterleaved {
		t.Error("relaxed policy pairs with row-interleaved mapping")
	}
	c.Policy = memctrl.RestrictedClose
	if c.mapping() != memctrl.LineInterleaved {
		t.Error("restricted policy pairs with line-interleaved mapping")
	}
}

func TestSmokeRunGUPS(t *testing.T) {
	t.Parallel()
	res, err := RunOne(quickCfg("GUPS"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 {
		t.Fatal("no cycles elapsed")
	}
	for i, ipc := range res.CoreIPC {
		if ipc <= 0 || ipc > 8 {
			t.Errorf("core %d IPC = %v out of range", i, ipc)
		}
	}
	if res.Ctrl.ReadsServed == 0 || res.Ctrl.WritesServed == 0 {
		t.Error("GUPS must generate both read and write DRAM traffic")
	}
	if res.Energy.Total() <= 0 {
		t.Error("energy must accrue")
	}
	if res.AvgPowerMW() <= 0 {
		t.Error("average power must be positive")
	}
	// GUPS is random: row hit rates must be very low.
	if hr := res.RowHitRateRead(); hr > 0.15 {
		t.Errorf("GUPS read row-hit rate %.2f, want < 0.15", hr)
	}
}

func TestDeterministicRuns(t *testing.T) {
	t.Parallel()
	a, err := RunOne(quickCfg("em3d"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOne(quickCfg("em3d"))
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Ctrl != b.Ctrl || a.Energy != b.Energy {
		t.Error("identical configs must produce identical results")
	}
	c := quickCfg("em3d")
	c.Seed = 99
	d, err := RunOne(c)
	if err != nil {
		t.Fatal(err)
	}
	if d.Cycles == a.Cycles && d.Ctrl.ReadsServed == a.Ctrl.ReadsServed {
		t.Error("different seeds should diverge")
	}
}

func TestAllSchemesRun(t *testing.T) {
	t.Parallel()
	for _, s := range memctrl.Schemes() {
		cfg := quickCfg("GUPS")
		cfg.InstrPerCore = 30_000
		cfg.Scheme = s
		res, err := RunOne(cfg)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if res.Ctrl.ReadsServed == 0 {
			t.Errorf("%s: no reads served", s)
		}
	}
}

func TestBothPoliciesRun(t *testing.T) {
	t.Parallel()
	for _, p := range []memctrl.Policy{memctrl.RelaxedClose, memctrl.RestrictedClose} {
		cfg := quickCfg("libquantum")
		cfg.InstrPerCore = 30_000
		cfg.Policy = p
		res, err := RunOne(cfg)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if p == memctrl.RestrictedClose && res.Ctrl.RowHitRead+res.Ctrl.RowHitWrite > res.Ctrl.Forwarded {
			t.Errorf("restricted close-page must not have DRAM row hits beyond forwards")
		}
	}
}

func TestMixRuns(t *testing.T) {
	t.Parallel()
	cfg := quickCfg("MIX2")
	cfg.InstrPerCore = 30_000
	res, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Apps) != 4 || res.Apps[0] != "mcf" {
		t.Errorf("MIX2 apps = %v", res.Apps)
	}
}

func TestAloneRunSingleCore(t *testing.T) {
	t.Parallel()
	cfg := quickCfg("GUPS")
	cfg.ActiveCores = 1
	cfg.InstrPerCore = 30_000
	res, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CoreIPC) != 1 {
		t.Fatalf("alone run must have 1 core, got %d", len(res.CoreIPC))
	}
}

func TestPRAUsesPartialActivations(t *testing.T) {
	t.Parallel()
	cfg := quickCfg("GUPS")
	cfg.Scheme = memctrl.PRA
	res, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// GUPS dirties one word per line: its write activations must be 1/8.
	if res.Dev.ActsByGranularity[1] == 0 {
		t.Errorf("PRA on GUPS must produce 1/8 activations, histogram %v", res.Dev.ActsByGranularity)
	}
	if res.Dev.AvgGranularity() >= 8 {
		t.Error("average granularity must drop below 8")
	}
}

func TestPRASavesPowerOnGUPS(t *testing.T) {
	t.Parallel()
	base, err := RunOne(quickCfg("GUPS"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg("GUPS")
	cfg.Scheme = memctrl.PRA
	pra, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pra.AvgPowerMW() >= base.AvgPowerMW() {
		t.Errorf("PRA power %.1f mW must be below baseline %.1f mW", pra.AvgPowerMW(), base.AvgPowerMW())
	}
	// Performance must be nearly unchanged (paper: <= ~5% loss).
	if pra.SumIPC() < 0.90*base.SumIPC() {
		t.Errorf("PRA IPC %.3f lost too much vs baseline %.3f", pra.SumIPC(), base.SumIPC())
	}
}

func TestFGALosesPerformance(t *testing.T) {
	t.Parallel()
	base, err := RunOne(quickCfg("libquantum"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg("libquantum")
	cfg.Scheme = memctrl.FGA
	fga, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// FGA halves bandwidth: a streaming workload must slow down.
	if fga.SumIPC() >= base.SumIPC() {
		t.Errorf("FGA IPC %.3f must be below baseline %.3f on streaming", fga.SumIPC(), base.SumIPC())
	}
}

func TestDBIIncreasesWriteHits(t *testing.T) {
	t.Parallel()
	cfg := quickCfg("em3d")
	cfg.InstrPerCore = 80_000
	base, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DBI = true
	dbi, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dbi.Cache.DBIProactive == 0 {
		t.Error("DBI must produce proactive writebacks")
	}
	if dbi.RowHitRateWrite() <= base.RowHitRateWrite() {
		t.Errorf("DBI write hit rate %.3f must exceed baseline %.3f",
			dbi.RowHitRateWrite(), base.RowHitRateWrite())
	}
}

func TestWeightedSpeedupIdentity(t *testing.T) {
	t.Parallel()
	res := Result{
		Apps:    []string{"a", "b"},
		CoreIPC: []float64{2, 3},
	}
	ws := res.WeightedSpeedup(map[string]float64{"a": 2, "b": 3})
	if ws != 2 {
		t.Errorf("WS = %v, want 2 (each core at its alone IPC)", ws)
	}
	// Missing alone entries contribute nothing rather than exploding.
	if got := res.WeightedSpeedup(map[string]float64{"a": 2}); got != 1 {
		t.Errorf("WS with missing app = %v, want 1", got)
	}
}

func TestResultDerivedMetrics(t *testing.T) {
	t.Parallel()
	// libquantum needs the L2 warmed before dirty evictions (DRAM writes)
	// flow at their steady-state rate.
	cfg := quickCfg("libquantum")
	cfg.WarmupPerCore = 300_000
	cfg.InstrPerCore = 150_000
	res, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RuntimeNs() <= 0 || res.EDP() <= 0 {
		t.Error("runtime and EDP must be positive")
	}
	if s := res.ReadTrafficShare(); s <= 0 || s >= 1 {
		t.Errorf("read traffic share %v out of (0,1)", s)
	}
	var total float64
	for g := 1; g <= 8; g++ {
		total += res.GranularityShare(g)
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("granularity shares sum to %v, want 1", total)
	}
	if res.GranularityShare(0) != 0 || res.GranularityShare(9) != 0 {
		t.Error("out-of-range granularity shares must be 0")
	}
	// libquantum streams: high read row-hit rate expected.
	if hr := res.RowHitRateRead(); hr < 0.4 {
		t.Errorf("libquantum read hit rate %.2f, want > 0.4", hr)
	}
}

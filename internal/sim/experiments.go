package sim

import (
	"fmt"
	"sort"
	"strings"

	"pradram/internal/memctrl"
	"pradram/internal/power"
	"pradram/internal/stats"
	"pradram/internal/workload"
)

// ExpOptions controls experiment runs. The defaults trade runtime for
// fidelity; the paper's 200M-instruction regions are replaced by a warmed-up
// steady-state window (see DESIGN.md §5).
type ExpOptions struct {
	Instr  int64  // measured instructions per core
	Warmup int64  // warmup instructions per core before stats reset
	Seed   uint64 // workload seed

	cache map[string]Result
}

// DefaultExpOptions returns the standard experiment budget.
func DefaultExpOptions() ExpOptions {
	return ExpOptions{Instr: 400_000, Warmup: 400_000, Seed: 1}
}

// Runner executes simulation runs with memoization, so experiments that
// share configurations (Figures 12 and 13 use the same runs) pay once.
type Runner struct {
	opt ExpOptions
}

// NewRunner builds a runner; results are cached inside opt for the
// runner's lifetime.
func NewRunner(opt ExpOptions) *Runner {
	if opt.Instr <= 0 {
		opt.Instr = DefaultExpOptions().Instr
	}
	if opt.Warmup < 0 {
		opt.Warmup = 0
	}
	opt.cache = make(map[string]Result)
	return &Runner{opt: opt}
}

type runKey struct {
	workload string
	scheme   memctrl.Scheme
	policy   memctrl.Policy
	dbi      bool
	active   int

	// ablation variants
	noRelax, noIO, noCycle bool
}

func (k runKey) String() string {
	return fmt.Sprintf("%s/%v/%v/dbi=%v/active=%d/abl=%v%v%v",
		k.workload, k.scheme, k.policy, k.dbi, k.active, k.noRelax, k.noIO, k.noCycle)
}

// Run executes (or recalls) one configuration.
func (r *Runner) Run(k runKey) (Result, error) {
	key := k.String()
	if res, ok := r.opt.cache[key]; ok {
		return res, nil
	}
	cfg := DefaultConfig(k.workload)
	cfg.Scheme = k.scheme
	cfg.Policy = k.policy
	cfg.DBI = k.dbi
	cfg.ActiveCores = k.active
	cfg.InstrPerCore = r.opt.Instr
	cfg.WarmupPerCore = r.opt.Warmup
	if k.active > 1 {
		// The warmup budget exists to fill the shared L2 so dirty
		// evictions flow at steady state; n active cores fill it n times
		// faster, so scale the per-core budget down accordingly.
		cfg.WarmupPerCore = r.opt.Warmup / int64(k.active)
	}
	cfg.Seed = r.opt.Seed
	cfg.NoTimingRelax = k.noRelax
	cfg.NoPartialIO = k.noIO
	cfg.NoMaskCycle = k.noCycle
	res, err := RunOne(cfg)
	if err != nil {
		return Result{}, fmt.Errorf("run %s: %w", key, err)
	}
	r.opt.cache[key] = res
	return res, nil
}

// AloneIPC returns the IPC of one application running alone on the system
// under the baseline scheme with the given policy (the Equation 3
// denominator).
func (r *Runner) AloneIPC(app string, policy memctrl.Policy) (float64, error) {
	res, err := r.Run(runKey{workload: app, scheme: memctrl.Baseline, policy: policy, active: 1})
	if err != nil {
		return 0, err
	}
	return res.CoreIPC[0], nil
}

// AloneIPCs resolves Equation-3 denominators for every app of a workload.
func (r *Runner) AloneIPCs(apps []string, policy memctrl.Policy) (map[string]float64, error) {
	m := make(map[string]float64)
	for _, app := range apps {
		if _, ok := m[app]; ok {
			continue
		}
		ipc, err := r.AloneIPC(app, policy)
		if err != nil {
			return nil, err
		}
		m[app] = ipc
	}
	return m, nil
}

// NormalizedWS returns WS(res) / WS(base) with shared alone-IPC
// denominators ("normalized performance" in the paper).
func (r *Runner) NormalizedWS(res, base Result, policy memctrl.Policy) (float64, error) {
	alone, err := r.AloneIPCs(res.Apps, policy)
	if err != nil {
		return 0, err
	}
	return stats.Ratio(res.WeightedSpeedup(alone), base.WeightedSpeedup(alone)), nil
}

// Experiment is one regenerable paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(r *Runner) (string, error)
}

// Experiments returns every experiment in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "Table 1: memory characteristics of the benchmarks", ExpTable1},
		{"table2", "Table 2: DRAM die area and activation energy breakdown", ExpTable2},
		{"table3", "Table 3: derived activation power at each granularity (Eq. 1/2)", ExpTable3},
		{"fig2", "Figure 2: baseline DRAM power consumption breakdown", ExpFig2},
		{"fig3", "Figure 3: dirty words per cache line at LLC eviction", ExpFig3},
		{"fig9", "Figure 9: activation energy vs number of MATs activated", ExpFig9},
		{"fig10", "Figure 10: PRA impact on row-buffer hit rates (false hits)", ExpFig10},
		{"fig11", "Figure 11: proportion of row-activation granularities under PRA", ExpFig11},
		{"fig12", "Figure 12: normalized DRAM activation/IO/total power (FGA, Half-DRAM, PRA)", ExpFig12},
		{"fig13", "Figure 13: normalized performance, DRAM energy, EDP", ExpFig13},
		{"fig14", "Figure 14: Half-DRAM + PRA combination (restricted close-page)", ExpFig14},
		{"fig15", "Figure 15: DBI + PRA combination", ExpFig15},
		{"sec3cov", "Section 3: PRA vs SDS coverage (activation vs chip-access granularity)", ExpSec3Coverage},
		{"ablation", "Ablation: contribution of each PRA design element", ExpAblation},
		{"modelcheck", "Cross-validation: analytic power model vs cycle-level simulation", ExpModelCheck},
		{"sensitivity", "Sensitivity: PRA savings vs dirty words per line and write share", ExpSensitivity},
		{"speedgrades", "Speed grades: PRA savings across DDR3 data rates", ExpSpeedGrades},
	}
}

// ExperimentByID resolves an experiment.
func ExperimentByID(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range Experiments() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("sim: unknown experiment %q (have %s)", id, strings.Join(ids, ", "))
}

// --- analytic experiments (no simulation) ---

// ExpTable2 reproduces Table 2 from the MAT energy and die-area models.
func ExpTable2(*Runner) (string, error) {
	m := power.DefaultMATEnergy()
	a := power.DefaultDieArea()
	var b strings.Builder
	t := stats.NewTable("area component", "mm^2")
	t.Row("DRAM cell", a.DRAMCell)
	t.Row("Sense amplifier", a.SenseAmplifier)
	t.Row("Row predecoder", a.RowPredecoder)
	t.Row("Local wordline driver", a.LocalWordlineDriver)
	t.Row("Total chip area (incl. periphery)", a.TotalChip)
	b.WriteString(t.String())
	b.WriteString("\n")
	e := stats.NewTable("energy component", "pJ")
	e.Row("Local bitline (per MAT)", m.LocalBitline)
	e.Row("Local sense amplifier (per MAT)", m.LocalSenseAmp)
	e.Row("Local wordline (per MAT)", m.LocalWordline)
	e.Row("Row decoder (per MAT)", m.RowDecoder)
	e.Row("Total per MAT", m.PerMAT())
	e.Row("Row activation bus (per bank)", m.ActivationBus)
	e.Row("Row predecoder (per bank)", m.RowPredecoder)
	e.Row("Total row activation energy per bank", m.FullEnergy())
	b.WriteString(e.String())
	fmt.Fprintf(&b, "\nPRA overheads (Section 4.2): latch %.2f um^2 (%.2f%% die), %.1f uW/ACT (%.3f%% of ACT power), wordline gates ~%.0f%% die area\n",
		a.PRALatchAreaUm2, a.PRALatchAreaPct, a.PRALatchPowerUW, a.PRALatchPowerPct, a.WordlineGateAreaPct)
	fmt.Fprintf(&b, "Paper reference: per-MAT 16.921 pJ, shared 18.016 pJ, per-bank 288.752 pJ\n")
	return b.String(), nil
}

// ExpTable3 reproduces the derived Table 3 power block: Equations 1 and 2
// plus the MAT-scaled activation power series.
func ExpTable3(*Runner) (string, error) {
	idd := power.DefaultIDD()
	chip := power.DefaultChipPowers()
	mat := power.DefaultMATEnergy()
	const tCK = 1.25
	var b strings.Builder
	fmt.Fprintf(&b, "Equation 1/2: I_ACT = IDD0 - (IDD3N*tRAS + IDD2N*(tRC-tRAS))/tRC\n")
	fmt.Fprintf(&b, "  IDD0=%.0fmA IDD3N=%.0fmA IDD2N=%.0fmA VDD=%.1fV tRAS=28ck tRC=39ck\n",
		idd.IDD0, idd.IDD3N, idd.IDD2N, idd.VDD)
	fmt.Fprintf(&b, "  => P_ACT(full) = %.2f mW (paper: 22.2)\n\n", idd.ActPower(28*tCK, 39*tCK))
	t := stats.NewTable("granularity", "P_ACT derived (mW)", "P_ACT published (mW)", "scale")
	for g := 8; g >= 1; g-- {
		scale := mat.ScaleGranularity(g, false)
		t.Row(fmt.Sprintf("%d/8 row", g), chip.Act[7]*scale, chip.Act[g-1], scale)
	}
	b.WriteString(t.String())
	b.WriteString("\nStatic powers (mW/chip): ")
	fmt.Fprintf(&b, "PRE_STBY %.0f, PRE_PDN %.0f, REF %.0f, ACT_STBY %.0f, RD %.0f, WR %.0f, RD I/O %.1f, WR ODT %.1f, RD/WR TERM %.1f/%.1f\n",
		chip.PreStby, chip.PrePdn, chip.Ref, chip.ActStby, chip.Rd, chip.Wr, chip.RdIO, chip.WrODT, chip.RdTerm, chip.WrTerm)
	return b.String(), nil
}

// ExpFig9 reproduces the Figure 9 sweep: activation energy vs MATs.
func ExpFig9(*Runner) (string, error) {
	m := power.DefaultMATEnergy()
	t := stats.NewTable("MATs activated", "energy (pJ)", "vs full row")
	for n := 16; n >= 2; n -= 2 {
		t.Row(n, m.EnergyMATs(n), m.Scale(n))
	}
	return t.String() + "\nNote: halving MATs does not halve energy — the activation bus and row\npredecoder are shared across the sub-array (the Figure 9 observation).\n",
		nil
}

// benchOrder is the paper's presentation order for the 8 benchmarks.
var benchOrder = []string{"bzip2", "lbm", "libquantum", "mcf", "omnetpp", "em3d", "GUPS", "LinkedList"}

// workloadOrder is the 14-workload set of the evaluation (Figures 10-15).
func workloadOrder() []string {
	return append(append([]string{}, benchOrder...), workload.MixNames()...)
}

package sim

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"pradram/internal/memctrl"
	"pradram/internal/obs"
	"pradram/internal/power"
	"pradram/internal/stats"
	"pradram/internal/workload"
)

// ExpOptions controls experiment runs. The defaults trade runtime for
// fidelity; the paper's 200M-instruction regions are replaced by a warmed-up
// steady-state window (see DESIGN.md §5).
type ExpOptions struct {
	Instr  int64  // measured instructions per core
	Warmup int64  // warmup instructions per core before stats reset
	Seed   uint64 // workload seed

	// Workers bounds how many simulations execute concurrently when the
	// runner precomputes a key set; 0 means runtime.NumCPU(). Each RunOne
	// is a pure function of its configuration, so the worker count changes
	// wall-clock only, never results (enforced by determinism_test.go).
	Workers int

	// Obs is the telemetry configuration applied to every run the runner
	// launches. Probes are read-only, so results are identical with or
	// without it (enforced by determinism_test.go) — but note the on-disk
	// cache is keyed by configuration *results*, not telemetry, so cached
	// runs recall no time-series.
	Obs ObsConfig

	// Progress, when non-nil, receives run-level progress (total / done /
	// in-flight) as the runner precomputes key sets — the live feed behind
	// praexp's stderr progress line and the -http introspection endpoint.
	// Nil-safe: a nil *obs.Progress records nothing.
	Progress *obs.Progress

	// CacheDir, when non-empty, enables the on-disk result cache: every
	// completed run is persisted as JSON keyed by the run configuration,
	// the budget above, and ModelVersion, and later invocations — including
	// separate processes and CI reruns — recall it instead of simulating.
	CacheDir string

	// NoSkip disables event-driven cycle skipping on every run the runner
	// launches (praexp -noskip). Results are bit-identical either way
	// (enforced by the determinism suite), which is also why the on-disk
	// cache deliberately does not key on it.
	NoSkip bool

	// Par sets Config.Par — parallel-in-time controller ticking with
	// that many worker shares — on every run the runner launches
	// (praexp -par). Bit-identical to sequential like NoSkip, so the
	// on-disk cache and the warmup fingerprint deliberately do not key
	// on it. It multiplies with Workers; see AutoPar for the composition
	// rule that keeps the product within the machine.
	Par int

	// CkptDir, when non-empty, persists warmup checkpoints on disk so
	// later invocations sharing the directory restore instead of
	// re-warming (praexp/prasim -ckpt-dir). Independent of CacheDir: the
	// result cache skips whole runs, the checkpoint store skips warmups of
	// runs that still have to simulate their measured window.
	CkptDir string

	// NoCheckpoint disables warmup checkpoint reuse entirely; every run
	// warms from scratch. Results are bit-identical either way (enforced
	// by the checkpoint bit-identity suite) — this exists for A/B
	// benchmarking and as an escape hatch.
	NoCheckpoint bool
}

// DefaultExpOptions returns the standard experiment budget.
func DefaultExpOptions() ExpOptions {
	return ExpOptions{Instr: 400_000, Warmup: 400_000, Seed: 1}
}

// Runner executes simulation runs with memoization, so experiments that
// share configurations (Figures 12 and 13 use the same runs) pay once.
// It is safe for concurrent use: the memo is mutex-guarded and duplicate
// in-flight requests for one key are deduplicated (singleflight), so a key
// simulates exactly once no matter how many goroutines ask for it.
type Runner struct {
	opt  ExpOptions
	disk *diskCache

	mu       sync.Mutex
	cache    map[string]Result
	inflight map[string]*inflightRun

	// Warmup checkpoint memo (ckptcache.go): one snapshot per warmup
	// fingerprint, produced by the first run that needs it and reused by
	// every later run sharing the fingerprint.
	ckptMu     sync.Mutex
	ckpts      map[string][]byte
	ckptFlight map[string]*inflightCkpt
	ckptDisk   *ckptStore

	sims       atomic.Int64 // simulations actually executed
	diskHits   atomic.Int64 // runs recalled from the on-disk cache
	ckptHits   atomic.Int64 // simulations that reused a warmup checkpoint
	ckptMisses atomic.Int64 // checkpoint-eligible simulations that warmed cold
}

// inflightRun is one in-progress simulation other goroutines can wait on.
type inflightRun struct {
	done chan struct{}
	res  Result
	err  error
}

// NewRunner builds a runner; results are cached inside it for the
// runner's lifetime (and on disk when opt.CacheDir is set).
func NewRunner(opt ExpOptions) *Runner {
	if opt.Instr <= 0 {
		opt.Instr = DefaultExpOptions().Instr
	}
	if opt.Warmup < 0 {
		opt.Warmup = 0
	}
	r := &Runner{
		opt:        opt,
		cache:      make(map[string]Result),
		inflight:   make(map[string]*inflightRun),
		ckpts:      make(map[string][]byte),
		ckptFlight: make(map[string]*inflightCkpt),
	}
	if opt.CacheDir != "" {
		r.disk = newDiskCache(opt.CacheDir)
	}
	if opt.CkptDir != "" {
		r.ckptDisk = newCkptStore(opt.CkptDir)
	}
	return r
}

// Simulations returns how many simulations this runner actually executed
// (memo and disk hits excluded).
func (r *Runner) Simulations() int64 { return r.sims.Load() }

// DiskHits returns how many runs were recalled from the on-disk cache.
func (r *Runner) DiskHits() int64 { return r.diskHits.Load() }

// CheckpointHits returns how many simulations skipped their warmup by
// restoring a memoized (or persisted) warmup checkpoint.
func (r *Runner) CheckpointHits() int64 { return r.ckptHits.Load() }

// CheckpointMisses returns how many checkpoint-eligible simulations had to
// warm from scratch (first run of a fingerprint, or a rejected restore).
func (r *Runner) CheckpointMisses() int64 { return r.ckptMisses.Load() }

type runKey struct {
	workload string
	scheme   memctrl.Scheme
	policy   memctrl.Policy
	dbi      bool
	active   int

	// ablation variants
	noRelax, noIO, noCycle bool

	// power-down and refresh management (the pdsweep/powerband
	// experiments); zero values are the defaults, and the key string only
	// grows a suffix when any of them is set, so historical keys for
	// default runs are unchanged.
	pdPolicy  memctrl.PDPolicy
	pdTimeout int64
	srTimeout int64
	slowPD    bool
	apd       bool
	refMode   memctrl.RefreshMode
	powerCal  string

	// RowHammer mitigation (the hammer experiment); zero values keep the
	// key string unchanged, like the power-down block above.
	mitThreshold int
	mitAlert     int64
	mitTable     int

	// latency attribution (the latbreak experiment); false keeps the key
	// string unchanged, like the blocks above.
	latBreak bool
}

func (k runKey) String() string {
	s := fmt.Sprintf("%s/%v/%v/dbi=%v/active=%d/abl=%v%v%v",
		k.workload, k.scheme, k.policy, k.dbi, k.active, k.noRelax, k.noIO, k.noCycle)
	if k.pdPolicy != 0 || k.pdTimeout != 0 || k.srTimeout != 0 || k.slowPD || k.apd || k.refMode != 0 {
		s += fmt.Sprintf("/pd=%v,%d,%d,slow=%v,apd=%v,ref=%v",
			k.pdPolicy, k.pdTimeout, k.srTimeout, k.slowPD, k.apd, k.refMode)
	}
	if k.mitThreshold != 0 || k.mitAlert != 0 || k.mitTable != 0 {
		s += fmt.Sprintf("/mit=%d,%d,%d", k.mitThreshold, k.mitAlert, k.mitTable)
	}
	if k.powerCal != "" {
		s += "/cal=" + k.powerCal
	}
	if k.latBreak {
		s += "/latbreak"
	}
	return s
}

// Run executes (or recalls) one configuration. Concurrent callers are
// safe: the first requester of a key simulates it while later ones block
// on the same in-flight run and share its result.
func (r *Runner) Run(k runKey) (Result, error) {
	key := k.String()
	r.mu.Lock()
	if res, ok := r.cache[key]; ok {
		r.mu.Unlock()
		return res, nil
	}
	if in, ok := r.inflight[key]; ok {
		r.mu.Unlock()
		<-in.done
		return in.res, in.err
	}
	in := &inflightRun{done: make(chan struct{})}
	r.inflight[key] = in
	r.mu.Unlock()

	in.res, in.err = r.execute(k, key)

	r.mu.Lock()
	if in.err == nil {
		r.cache[key] = in.res
	}
	delete(r.inflight, key)
	r.mu.Unlock()
	close(in.done)
	return in.res, in.err
}

// config expands a run key into the full simulation configuration under
// the runner's budget.
func (r *Runner) config(k runKey) Config {
	cfg := DefaultConfig(k.workload)
	cfg.Scheme = k.scheme
	cfg.Policy = k.policy
	cfg.DBI = k.dbi
	cfg.ActiveCores = k.active
	cfg.InstrPerCore = r.opt.Instr
	cfg.WarmupPerCore = r.opt.Warmup
	if k.active > 1 {
		// The warmup budget exists to fill the shared L2 so dirty
		// evictions flow at steady state; n active cores fill it n times
		// faster, so scale the per-core budget down accordingly.
		cfg.WarmupPerCore = r.opt.Warmup / int64(k.active)
	}
	cfg.Seed = r.opt.Seed
	cfg.NoTimingRelax = k.noRelax
	cfg.NoPartialIO = k.noIO
	cfg.NoMaskCycle = k.noCycle
	cfg.PDPolicy = k.pdPolicy
	cfg.PDTimeout = k.pdTimeout
	cfg.SRTimeout = k.srTimeout
	cfg.PDSlowExit = k.slowPD
	cfg.APD = k.apd
	cfg.RefreshMode = k.refMode
	cfg.MitThreshold = k.mitThreshold
	cfg.MitAlertCycles = k.mitAlert
	cfg.MitTableCap = k.mitTable
	cfg.PowerCal = k.powerCal
	cfg.LatBreak = k.latBreak
	cfg.Obs = r.opt.Obs
	cfg.NoSkip = r.opt.NoSkip
	cfg.Par = r.opt.Par
	return cfg
}

// execute resolves one cache miss: disk cache first, then simulation.
func (r *Runner) execute(k runKey, key string) (Result, error) {
	if r.disk != nil {
		if res, ok := r.disk.load(key, r.opt); ok {
			r.diskHits.Add(1)
			return res, nil
		}
	}
	res, err := r.runOne(r.config(k))
	if err != nil {
		return Result{}, fmt.Errorf("run %s: %w", key, err)
	}
	r.sims.Add(1)
	if r.disk != nil {
		// A failed store only costs a future re-simulation.
		_ = r.disk.store(key, r.opt, res)
	}
	return res, nil
}

// AloneIPC returns the IPC of one application running alone on the system
// under the baseline scheme with the given policy (the Equation 3
// denominator).
func (r *Runner) AloneIPC(app string, policy memctrl.Policy) (float64, error) {
	res, err := r.Run(runKey{workload: app, scheme: memctrl.Baseline, policy: policy, active: 1})
	if err != nil {
		return 0, err
	}
	return res.CoreIPC[0], nil
}

// AloneIPCs resolves Equation-3 denominators for every app of a workload.
func (r *Runner) AloneIPCs(apps []string, policy memctrl.Policy) (map[string]float64, error) {
	m := make(map[string]float64)
	for _, app := range apps {
		if _, ok := m[app]; ok {
			continue
		}
		ipc, err := r.AloneIPC(app, policy)
		if err != nil {
			return nil, err
		}
		m[app] = ipc
	}
	return m, nil
}

// NormalizedWS returns WS(res) / WS(base) with shared alone-IPC
// denominators ("normalized performance" in the paper).
func (r *Runner) NormalizedWS(res, base Result, policy memctrl.Policy) (float64, error) {
	alone, err := r.AloneIPCs(res.Apps, policy)
	if err != nil {
		return 0, err
	}
	return stats.Ratio(res.WeightedSpeedup(alone), base.WeightedSpeedup(alone)), nil
}

// Experiment is one regenerable paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(r *Runner) (string, error)

	// Keys, when non-nil, enumerates every memoized simulation
	// configuration Run will consume, so the runner can execute them
	// across its worker pool before the (ordered, sequential) formatting
	// pass reads the memo. Experiments without Keys either need no
	// simulation at all or drive bespoke configurations internally.
	Keys func() []runKey
}

// Experiments returns every experiment in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "Table 1: memory characteristics of the benchmarks", ExpTable1, keysBenchBaseline},
		{"table2", "Table 2: DRAM die area and activation energy breakdown", ExpTable2, nil},
		{"table3", "Table 3: derived activation power at each granularity (Eq. 1/2)", ExpTable3, nil},
		{"fig2", "Figure 2: baseline DRAM power consumption breakdown", ExpFig2, keysBenchBaseline},
		{"fig3", "Figure 3: dirty words per cache line at LLC eviction", ExpFig3, keysBenchBaseline},
		{"fig9", "Figure 9: activation energy vs number of MATs activated", ExpFig9, nil},
		{"fig10", "Figure 10: PRA impact on row-buffer hit rates (false hits)", ExpFig10, keysFig10},
		{"fig11", "Figure 11: proportion of row-activation granularities under PRA", ExpFig11, keysFig11},
		{"fig12", "Figure 12: normalized DRAM activation/IO/total power (FGA, Half-DRAM, PRA)", ExpFig12, keysFig12},
		{"fig13", "Figure 13: normalized performance, DRAM energy, EDP", ExpFig13, keysFig13},
		{"fig14", "Figure 14: Half-DRAM + PRA combination (restricted close-page)", ExpFig14, keysFig14},
		{"fig15", "Figure 15: DBI + PRA combination", ExpFig15, keysFig15},
		{"sec3cov", "Section 3: PRA vs SDS coverage (activation vs chip-access granularity)", ExpSec3Coverage, keysSec3Coverage},
		{"ablation", "Ablation: contribution of each PRA design element", ExpAblation, keysAblation},
		{"modelcheck", "Cross-validation: analytic power model vs cycle-level simulation", ExpModelCheck, keysModelCheck},
		{"sensitivity", "Sensitivity: PRA savings vs dirty words per line and write share", ExpSensitivity, nil},
		{"speedgrades", "Speed grades: PRA savings across DDR3 data rates", ExpSpeedGrades, nil},
		{"pdsweep", "Power-down & refresh management: policy sweep (residency, energy)", ExpPDSweep, keysPDSweep},
		{"powerband", "Calibrated power bands: min/nominal/max under each correction set", ExpPowerBand, keysPowerBand},
		{"hammer", "RowHammer mitigation overhead: Alert/RFM under attack, PRA on/off", ExpHammer, keysHammer},
		{"latbreak", "Latency attribution: per-component read-latency breakdown and tail percentiles", ExpLatBreak, keysLatBreak},
		{"tensor", "Tensor loop permutations: analytic vs measured activation rate, locality vs power", ExpTensor, keysTensor},
	}
}

// ExperimentByID resolves an experiment.
func ExperimentByID(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range Experiments() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("sim: unknown experiment %q (have %s)", id, strings.Join(ids, ", "))
}

// --- analytic experiments (no simulation) ---

// ExpTable2 reproduces Table 2 from the MAT energy and die-area models.
func ExpTable2(*Runner) (string, error) {
	m := power.DefaultMATEnergy()
	a := power.DefaultDieArea()
	var b strings.Builder
	t := stats.NewTable("area component", "mm^2")
	t.Row("DRAM cell", a.DRAMCell)
	t.Row("Sense amplifier", a.SenseAmplifier)
	t.Row("Row predecoder", a.RowPredecoder)
	t.Row("Local wordline driver", a.LocalWordlineDriver)
	t.Row("Total chip area (incl. periphery)", a.TotalChip)
	b.WriteString(t.String())
	b.WriteString("\n")
	e := stats.NewTable("energy component", "pJ")
	e.Row("Local bitline (per MAT)", m.LocalBitline)
	e.Row("Local sense amplifier (per MAT)", m.LocalSenseAmp)
	e.Row("Local wordline (per MAT)", m.LocalWordline)
	e.Row("Row decoder (per MAT)", m.RowDecoder)
	e.Row("Total per MAT", m.PerMAT())
	e.Row("Row activation bus (per bank)", m.ActivationBus)
	e.Row("Row predecoder (per bank)", m.RowPredecoder)
	e.Row("Total row activation energy per bank", m.FullEnergy())
	b.WriteString(e.String())
	fmt.Fprintf(&b, "\nPRA overheads (Section 4.2): latch %.2f um^2 (%.2f%% die), %.1f uW/ACT (%.3f%% of ACT power), wordline gates ~%.0f%% die area\n",
		a.PRALatchAreaUm2, a.PRALatchAreaPct, a.PRALatchPowerUW, a.PRALatchPowerPct, a.WordlineGateAreaPct)
	fmt.Fprintf(&b, "Paper reference: per-MAT 16.921 pJ, shared 18.016 pJ, per-bank 288.752 pJ\n")
	return b.String(), nil
}

// ExpTable3 reproduces the derived Table 3 power block: Equations 1 and 2
// plus the MAT-scaled activation power series.
func ExpTable3(*Runner) (string, error) {
	idd := power.DefaultIDD()
	chip := power.DefaultChipPowers()
	mat := power.DefaultMATEnergy()
	const tCK = 1.25
	var b strings.Builder
	fmt.Fprintf(&b, "Equation 1/2: I_ACT = IDD0 - (IDD3N*tRAS + IDD2N*(tRC-tRAS))/tRC\n")
	fmt.Fprintf(&b, "  IDD0=%.0fmA IDD3N=%.0fmA IDD2N=%.0fmA VDD=%.1fV tRAS=28ck tRC=39ck\n",
		idd.IDD0, idd.IDD3N, idd.IDD2N, idd.VDD)
	fmt.Fprintf(&b, "  => P_ACT(full) = %.2f mW (paper: 22.2)\n\n", idd.ActPower(28*tCK, 39*tCK))
	t := stats.NewTable("granularity", "P_ACT derived (mW)", "P_ACT published (mW)", "scale")
	for g := 8; g >= 1; g-- {
		scale := mat.ScaleGranularity(g, false)
		t.Row(fmt.Sprintf("%d/8 row", g), chip.Act[7]*scale, chip.Act[g-1], scale)
	}
	b.WriteString(t.String())
	b.WriteString("\nStatic powers (mW/chip): ")
	fmt.Fprintf(&b, "PRE_STBY %.0f, PRE_PDN %.0f, REF %.0f, ACT_STBY %.0f, RD %.0f, WR %.0f, RD I/O %.1f, WR ODT %.1f, RD/WR TERM %.1f/%.1f\n",
		chip.PreStby, chip.PrePdn, chip.Ref, chip.ActStby, chip.Rd, chip.Wr, chip.RdIO, chip.WrODT, chip.RdTerm, chip.WrTerm)
	return b.String(), nil
}

// ExpFig9 reproduces the Figure 9 sweep: activation energy vs MATs.
func ExpFig9(*Runner) (string, error) {
	m := power.DefaultMATEnergy()
	t := stats.NewTable("MATs activated", "energy (pJ)", "vs full row")
	for n := 16; n >= 2; n -= 2 {
		t.Row(n, m.EnergyMATs(n), m.Scale(n))
	}
	return t.String() + "\nNote: halving MATs does not halve energy — the activation bus and row\npredecoder are shared across the sub-array (the Figure 9 observation).\n",
		nil
}

// benchOrder is the paper's presentation order for the 8 benchmarks.
var benchOrder = []string{"bzip2", "lbm", "libquantum", "mcf", "omnetpp", "em3d", "GUPS", "LinkedList"}

// workloadOrder is the 14-workload set of the evaluation (Figures 10-15).
func workloadOrder() []string {
	return append(append([]string{}, benchOrder...), workload.MixNames()...)
}

package sim

import "testing"

// Full-system wall-clock benchmarks for the Alert/RFM mitigation, paired
// on/off so tools/benchgate -hammer can gate on their ratio without a
// stored hardware baseline:
//
//   - The attack pair (single-core HammerSingle, the experiment's
//     threshold armed) bounds what defending an active attack may cost in
//     simulator wall clock: counter updates on every ACT, plus the extra
//     simulated work of the alerts and RFMs themselves.
//   - The benign pair (single-core GUPS, same threshold, which never
//     fires) is the tighter gate: with no alerts the only added cost is
//     the per-activation counter-table update, which must stay near free
//     relative to the whole simulation.
//
// Runs are deterministic, so every iteration does identical work and
// ns/op differences are pure host effects.

func hammerBenchCfg(workload string, mitigate bool) Config {
	cfg := DefaultConfig(workload)
	cfg.InstrPerCore = 30_000
	cfg.WarmupPerCore = 0
	cfg.Cores = 1
	if mitigate {
		cfg.MitThreshold = hammerMitThreshold
	}
	return cfg
}

func benchHammer(b *testing.B, workload string, mitigate bool) {
	b.Helper()
	cfg := hammerBenchCfg(workload, mitigate)
	for i := 0; i < b.N; i++ {
		s, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			b.Fatal(err)
		}
		if mitigate && workload == "HammerSingle" && res.Ctrl.Alerts == 0 {
			b.Fatal("attack benchmark raised no alerts; the overhead pair is vacuous")
		}
	}
}

func BenchmarkHammerAttackOff(b *testing.B) { benchHammer(b, "HammerSingle", false) }
func BenchmarkHammerAttackOn(b *testing.B)  { benchHammer(b, "HammerSingle", true) }
func BenchmarkHammerBenignOff(b *testing.B) { benchHammer(b, "GUPS", false) }
func BenchmarkHammerBenignOn(b *testing.B)  { benchHammer(b, "GUPS", true) }

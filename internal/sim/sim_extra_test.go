package sim

import (
	"strings"
	"testing"

	"pradram/internal/memctrl"
)

func TestHalfDRAMPRACombination(t *testing.T) {
	t.Parallel()
	base, err := RunOne(quickCfg("GUPS"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg("GUPS")
	cfg.Scheme = memctrl.HalfDRAMPRA
	combo, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Scheme = memctrl.PRA
	pra, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The combined scheme stacks Half-DRAM's read-side saving on PRA's
	// write-side saving: lower power than either alone (paper Fig. 14).
	if combo.AvgPowerMW() >= pra.AvgPowerMW() {
		t.Errorf("HalfDRAM+PRA power %.1f must beat PRA %.1f", combo.AvgPowerMW(), pra.AvgPowerMW())
	}
	if combo.AvgPowerMW() >= base.AvgPowerMW() {
		t.Error("combined scheme must beat baseline")
	}
}

func TestWarmupResetsStatistics(t *testing.T) {
	t.Parallel()
	cfg := quickCfg("GUPS")
	cfg.InstrPerCore = 40_000
	cfg.WarmupPerCore = 40_000
	res, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// IPC is measured over the post-warmup window only: cycles must be
	// consistent with the per-core finish points.
	for i, ipc := range res.CoreIPC {
		if ipc <= 0 {
			t.Errorf("core %d post-warmup IPC = %v", i, ipc)
		}
	}
	// The measured window must not include warmup retirement.
	if res.Cycles <= 0 {
		t.Error("measured cycles must be positive")
	}
	// Energy accrues only after the reset: average power must be in a
	// physically sensible band (hundreds of mW to a few W for 32 chips).
	if p := res.AvgPowerMW(); p < 500 || p > 20_000 {
		t.Errorf("avg power %.1f mW outside sanity band", p)
	}
}

func TestMaxCyclesAborts(t *testing.T) {
	t.Parallel()
	cfg := quickCfg("GUPS")
	cfg.MaxCycles = 10 // absurdly small: must abort, not hang
	_, err := RunOne(cfg)
	if err == nil || !strings.Contains(err.Error(), "no progress") {
		t.Errorf("tiny MaxCycles must abort with a progress error, got %v", err)
	}
}

func TestActiveCoresSubset(t *testing.T) {
	t.Parallel()
	cfg := quickCfg("MIX1")
	cfg.ActiveCores = 2
	cfg.InstrPerCore = 20_000
	res, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Apps) != 2 || res.Apps[0] != "bzip2" || res.Apps[1] != "lbm" {
		t.Errorf("active subset apps = %v", res.Apps)
	}
}

func TestSeedChangesWorkloadNotModel(t *testing.T) {
	t.Parallel()
	a, err := RunOne(quickCfg("em3d"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg("em3d")
	cfg.Seed = 7
	b, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Different seeds shift the exact numbers, but not the regime: both
	// runs are memory-bound random-access with ~50/50 traffic.
	if diff := a.ReadTrafficShare() - b.ReadTrafficShare(); diff > 0.05 || diff < -0.05 {
		t.Errorf("traffic split unstable across seeds: %.3f vs %.3f",
			a.ReadTrafficShare(), b.ReadTrafficShare())
	}
}

func TestAvgReadLatencyPlausible(t *testing.T) {
	t.Parallel()
	res, err := RunOne(quickCfg("GUPS"))
	if err != nil {
		t.Fatal(err)
	}
	// A loaded DDR3 system: tens to hundreds of ns.
	if l := res.AvgReadLatencyNs(); l < 20 || l > 2000 {
		t.Errorf("avg read latency %.1f ns outside plausible band", l)
	}
}

package sim

import (
	"math"
	"sync"
	"testing"

	"pradram/internal/memctrl"
	"pradram/internal/power"
	"pradram/internal/workload"
)

// The calibration suite checks the simulated workload characteristics
// against the paper's published per-benchmark numbers (Table 1, Figure 3)
// and the headline evaluation results (Figures 11-13) within documented
// tolerance bands. These runs are slow; `go test -short` skips them.

var (
	calRunner     *Runner
	calRunnerOnce sync.Once
)

// calibrationRunner returns a package-wide shared runner so the
// calibration tests reuse each other's (memoized) simulation runs.
func calibrationRunner(t *testing.T) *Runner {
	t.Helper()
	if testing.Short() {
		t.Skip("calibration runs are slow; skipped with -short")
	}
	calRunnerOnce.Do(func() {
		// The same budget the EXPERIMENTS.md regeneration uses: the 800k
		// warmup matters for the slowest-warming stream (libquantum's
		// register array only starts evicting near 700k instructions).
		calRunner = NewRunner(ExpOptions{Instr: 250_000, Warmup: 800_000, Seed: 1})
	})
	return calRunner
}

// within asserts |got - want| <= tol, all in percentage points.
func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.1f, want %.1f +- %.1f (paper)", name, got, want, tol)
	}
}

func TestCalibrationTable1(t *testing.T) {
	t.Parallel()
	r := calibrationRunner(t)
	// Tolerances: hit rates are emergent from generator + controller
	// interplay; traffic splits are structural and tighter. libquantum's
	// write hit rate is a documented deviation (our eviction stream is
	// perfectly sequential; see EXPERIMENTS.md) and gets a wide band.
	tols := map[string][3]float64{ // hitR, trafR, actR tolerances (pp)
		"bzip2":      {8, 6, 8},
		"lbm":        {15, 6, 8},
		"libquantum": {8, 5, 20},
		"mcf":        {8, 5, 8},
		"omnetpp":    {8, 8, 10},
		"em3d":       {6, 5, 5},
		"GUPS":       {6, 5, 6},
		"LinkedList": {6, 5, 5},
	}
	for _, b := range benchOrder {
		res, err := r.Run(runKey{workload: b, scheme: memctrl.Baseline, policy: memctrl.RelaxedClose, active: 1})
		if err != nil {
			t.Fatal(err)
		}
		p := paperTable1[b]
		tol := tols[b]
		within(t, b+" read hit rate", 100*res.RowHitRateRead(), p[0], tol[0])
		within(t, b+" read traffic share", 100*res.ReadTrafficShare(), p[2], tol[1])
		within(t, b+" read activation share", 100*res.ReadActShare(), p[4], tol[2])
		// Write hit rates: every benchmark except lbm and libquantum is
		// near zero in the paper; enforce the shape.
		switch b {
		case "libquantum":
			if 100*res.RowHitRateWrite() < 30 {
				t.Errorf("libquantum write hits must be high, got %.1f%%", 100*res.RowHitRateWrite())
			}
		case "lbm":
			within(t, "lbm write hit rate", 100*res.RowHitRateWrite(), 18, 12)
		default:
			if got := 100 * res.RowHitRateWrite(); got > 6 {
				t.Errorf("%s write hit rate = %.1f%%, want ~1%% (paper)", b, got)
			}
		}
	}
}

func TestCalibrationFig3DirtyWords(t *testing.T) {
	t.Parallel()
	r := calibrationRunner(t)
	// Structural expectations from the paper's Figure 3, by store model.
	for _, b := range []string{"GUPS", "LinkedList", "mcf"} {
		res, err := r.Run(runKey{workload: b, scheme: memctrl.Baseline, policy: memctrl.RelaxedClose, active: 1})
		if err != nil {
			t.Fatal(err)
		}
		if share := res.Cache.DirtyWords.Share(1); share < 0.9 {
			t.Errorf("%s: 1-dirty-word share = %.2f, want > 0.9", b, share)
		}
	}
	res, err := r.Run(runKey{workload: "libquantum", scheme: memctrl.Baseline, policy: memctrl.RelaxedClose, active: 1})
	if err != nil {
		t.Fatal(err)
	}
	if share := res.Cache.DirtyWords.Share(8); share < 0.9 {
		t.Errorf("libquantum: fully-dirty share = %.2f, want > 0.9", share)
	}
	res, err = r.Run(runKey{workload: "lbm", scheme: memctrl.Baseline, policy: memctrl.RelaxedClose, active: 1})
	if err != nil {
		t.Fatal(err)
	}
	if mean := res.Cache.DirtyWords.Mean(); mean < 1.5 || mean > 5 {
		t.Errorf("lbm: mean dirty words = %.2f, want 2-4", mean)
	}
}

func TestCalibrationFig11GranularityMix(t *testing.T) {
	t.Parallel()
	r := calibrationRunner(t)
	// Paper (relaxed policy, 14-workload average): 1/8-row 39%, full 58%,
	// everything between small. Average over our 14 workloads.
	var oneEighth, full float64
	var n int
	for _, w := range workloadOrder() {
		res, err := r.Run(runKey{workload: w, scheme: memctrl.PRA, policy: memctrl.RelaxedClose, active: 4})
		if err != nil {
			t.Fatal(err)
		}
		oneEighth += res.GranularityShare(1)
		full += res.GranularityShare(8)
		n++
	}
	oneEighth, full = 100*oneEighth/float64(n), 100*full/float64(n)
	within(t, "1/8-row activation share", oneEighth, 39, 15)
	within(t, "full-row activation share", full, 58, 15)
}

func TestCalibrationFig12HeadlineSavings(t *testing.T) {
	t.Parallel()
	r := calibrationRunner(t)
	var actSum, ioSum, totSum float64
	var n int
	for _, w := range workloadOrder() {
		base, err := r.Run(runKey{workload: w, scheme: memctrl.Baseline, policy: memctrl.RelaxedClose, active: 4})
		if err != nil {
			t.Fatal(err)
		}
		pra, err := r.Run(runKey{workload: w, scheme: memctrl.PRA, policy: memctrl.RelaxedClose, active: 4})
		if err != nil {
			t.Fatal(err)
		}
		actSum += (pra.Energy[power.CompActPre] / pra.RuntimeNs()) / (base.Energy[power.CompActPre] / base.RuntimeNs())
		ioSum += (pra.Energy.IO() / pra.RuntimeNs()) / (base.Energy.IO() / base.RuntimeNs())
		totSum += pra.AvgPowerMW() / base.AvgPowerMW()
		n++
	}
	fn := float64(n)
	// Paper: ACT power -34% avg, I/O power -45% avg, total power -23% avg.
	within(t, "PRA ACT power reduction %", 100*(1-actSum/fn), 34, 12)
	within(t, "PRA I/O power reduction %", 100*(1-ioSum/fn), 45, 15)
	within(t, "PRA total power reduction %", 100*(1-totSum/fn), 23, 10)
}

func TestCalibrationFig13Performance(t *testing.T) {
	t.Parallel()
	r := calibrationRunner(t)
	// PRA: near-zero performance loss (paper -0.8% avg, max -4.8%).
	// FGA: significant loss (paper -14% avg). Check on a representative
	// subset to bound runtime.
	subset := []string{"libquantum", "GUPS", "MIX1", "MIX2"}
	var praSum, fgaSum float64
	for _, w := range subset {
		base, err := r.Run(runKey{workload: w, scheme: memctrl.Baseline, policy: memctrl.RelaxedClose, active: 4})
		if err != nil {
			t.Fatal(err)
		}
		pra, err := r.Run(runKey{workload: w, scheme: memctrl.PRA, policy: memctrl.RelaxedClose, active: 4})
		if err != nil {
			t.Fatal(err)
		}
		fga, err := r.Run(runKey{workload: w, scheme: memctrl.FGA, policy: memctrl.RelaxedClose, active: 4})
		if err != nil {
			t.Fatal(err)
		}
		praSum += pra.SumIPC() / base.SumIPC()
		fgaSum += fga.SumIPC() / base.SumIPC()
	}
	praPerf := praSum / float64(len(subset))
	fgaPerf := fgaSum / float64(len(subset))
	if praPerf < 0.92 {
		t.Errorf("PRA relative performance = %.3f, want > 0.92 (paper: -0.8%% avg)", praPerf)
	}
	if fgaPerf > 0.95 {
		t.Errorf("FGA relative performance = %.3f, want < 0.95 (paper: -14%% avg)", fgaPerf)
	}
	if fgaPerf >= praPerf {
		t.Errorf("FGA (%.3f) must lose more performance than PRA (%.3f)", fgaPerf, praPerf)
	}
}

func TestCalibrationFig10FalseHits(t *testing.T) {
	t.Parallel()
	r := calibrationRunner(t)
	// Paper: false read hits are rare (avg 0.04%, max 0.26%).
	var worst float64
	for _, w := range workloadOrder() {
		res, err := r.Run(runKey{workload: w, scheme: memctrl.PRA, policy: memctrl.RelaxedClose, active: 4})
		if err != nil {
			t.Fatal(err)
		}
		if fr := 100 * res.FalseHitRateRead(); fr > worst {
			worst = fr
		}
	}
	if worst > 2.0 {
		t.Errorf("worst false read-hit rate = %.2f%%, want < 2%% (paper max 0.26%%)", worst)
	}
}

func TestCalibrationWorkloadSetComplete(t *testing.T) {
	t.Parallel()
	if got := len(workloadOrder()); got != 14 {
		t.Fatalf("evaluation set has %d workloads, want 14", got)
	}
	for _, w := range workloadOrder() {
		if _, err := workload.Set(w, 4); err != nil {
			t.Errorf("workload %s unavailable: %v", w, err)
		}
	}
}

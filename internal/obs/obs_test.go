package obs

import (
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// --- Recorder ---

func TestRecorderCounterDeltas(t *testing.T) {
	var acts int64
	var depth float64
	r := NewRecorder(100)
	r.Counter("acts", func() int64 { return acts })
	r.Gauge("depth", func() float64 { return depth })

	acts, depth = 50, 3 // pre-Begin activity must not leak into epoch 0
	r.Begin(1000)

	acts, depth = 80, 7
	r.Sample(1100)
	acts, depth = 80, 2 // idle epoch
	r.Sample(1200)
	acts = 95
	r.Flush(1250) // partial tail epoch

	if got := r.Column("acts"); len(got) != 3 || got[0] != 30 || got[1] != 0 || got[2] != 15 {
		t.Fatalf("acts deltas = %v, want [30 0 15]", got)
	}
	if got := r.Column("depth"); len(got) != 3 || got[0] != 7 || got[1] != 2 || got[2] != 2 {
		t.Fatalf("depth gauge = %v, want [7 2 2]", got)
	}
	if r.Rows() != 3 {
		t.Fatalf("rows = %d, want 3", r.Rows())
	}
}

func TestRecorderMaybeSampleBoundaries(t *testing.T) {
	var n int64
	r := NewRecorder(10)
	r.Counter("n", func() int64 { return n })
	r.Begin(0)
	for c := int64(1); c <= 35; c++ {
		n = c
		r.MaybeSample(c)
	}
	// Boundaries at 10, 20, 30; cycle 35 is mid-epoch until Flush.
	if r.Rows() != 3 {
		t.Fatalf("rows = %d, want 3", r.Rows())
	}
	r.Flush(35)
	col := r.Column("n")
	if len(col) != 4 || col[0] != 10 || col[1] != 10 || col[2] != 10 || col[3] != 5 {
		t.Fatalf("deltas = %v, want [10 10 10 5]", col)
	}
	// Flush at the same cycle again must not add an empty row.
	r.Flush(35)
	if r.Rows() != 4 {
		t.Fatalf("rows after double flush = %d, want 4", r.Rows())
	}
}

func TestRecorderBeginResets(t *testing.T) {
	var n int64
	r := NewRecorder(10)
	r.Counter("n", func() int64 { return n })
	r.Begin(0)
	n = 5
	r.Sample(10)
	r.Begin(100) // e.g. restart after warmup
	if r.Rows() != 0 {
		t.Fatalf("rows after re-Begin = %d, want 0", r.Rows())
	}
	n = 8
	r.Sample(110)
	if col := r.Column("n"); len(col) != 1 || col[0] != 3 {
		t.Fatalf("deltas after re-Begin = %v, want [3]", col)
	}
}

func TestRecorderRegisterAfterBeginPanics(t *testing.T) {
	r := NewRecorder(10)
	r.Begin(0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic registering a probe after Begin")
		}
	}()
	r.Counter("late", func() int64 { return 0 })
}

// TestRecorderCSVGolden pins the exact CSV shape: header naming, relative
// cycles, integral formatting of whole-valued floats.
func TestRecorderCSVGolden(t *testing.T) {
	var acts int64
	var frac float64
	r := NewRecorder(100)
	r.Counter("acts", func() int64 { return acts })
	r.Gauge("frac", func() float64 { return frac })
	r.Begin(200)
	acts, frac = 7, 0.5
	r.Sample(300)
	acts, frac = 9, 4
	r.Sample(400)

	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "epoch,cycle,acts,frac\n" +
		"0,100,7,0.5\n" +
		"1,200,2,4\n"
	if b.String() != want {
		t.Fatalf("CSV mismatch:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestRecorderSnapshotJSONShape(t *testing.T) {
	var n int64
	r := NewRecorder(10)
	r.Counter("n", func() int64 { return n })
	r.Begin(0)
	n = 4
	r.Sample(10)
	s := r.Snapshot()
	if s.EpochCycles != 10 {
		t.Fatalf("epoch = %d, want 10", s.EpochCycles)
	}
	if len(s.Header) != 3 || s.Header[2] != "n" {
		t.Fatalf("header = %v", s.Header)
	}
	if len(s.Rows) != 1 || len(s.Rows[0]) != 3 || s.Rows[0][2] != 4 {
		t.Fatalf("rows = %v", s.Rows)
	}
}

// --- EventLog ---

func TestEventLogRingWraparound(t *testing.T) {
	l := NewEventLog(4, LevelState)
	for i := 0; i < 10; i++ {
		l.Emit(Event{Cycle: int64(i), Level: LevelState, Kind: "k"})
	}
	if l.Len() != 4 {
		t.Fatalf("len = %d, want 4", l.Len())
	}
	if l.Total() != 10 || l.Dropped() != 6 {
		t.Fatalf("total/dropped = %d/%d, want 10/6", l.Total(), l.Dropped())
	}
	ev := l.Events()
	for i, e := range ev {
		if want := int64(6 + i); e.Cycle != want {
			t.Fatalf("event %d cycle = %d, want %d (oldest-first)", i, e.Cycle, want)
		}
	}
}

func TestEventLogLevelGating(t *testing.T) {
	var nilLog *EventLog
	if nilLog.Enabled(LevelState) || nilLog.Enabled(LevelCmd) {
		t.Fatal("nil log must report disabled")
	}
	nilLog.Emit(Event{Level: LevelState}) // must not panic
	nilLog.Reset()
	if nilLog.Len() != 0 || nilLog.Total() != 0 {
		t.Fatal("nil log must be empty")
	}

	l := NewEventLog(8, LevelState)
	if !l.Enabled(LevelState) || l.Enabled(LevelCmd) {
		t.Fatalf("state-level log gating wrong")
	}
	l.Emit(Event{Level: LevelCmd, Kind: "cmd"}) // above level: dropped
	l.Emit(Event{Level: LevelState, Kind: "state"})
	if l.Len() != 1 {
		t.Fatalf("len = %d, want 1 (cmd event must be gated out)", l.Len())
	}
	l.Reset()
	if l.Len() != 0 || l.Total() != 1 || l.Dropped() != 1 {
		t.Fatalf("after reset len=%d total=%d dropped=%d, want 0/1/1", l.Len(), l.Total(), l.Dropped())
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{"off": LevelOff, "": LevelOff, "state": LevelState, "cmd": LevelCmd} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLevel("verbose"); err == nil {
		t.Fatal("expected error for unknown level")
	}
}

func TestEventLogDump(t *testing.T) {
	l := NewEventLog(4, LevelCmd)
	l.Emit(Event{Cycle: 42, Level: LevelCmd, Scope: "dram.ch0", Kind: "ACT", Detail: "r0 b3"})
	var b strings.Builder
	if err := l.Dump(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "level cmd") || !strings.Contains(out, "ACT") || !strings.Contains(out, "r0 b3") {
		t.Fatalf("dump missing fields:\n%s", out)
	}
}

// --- Progress ---

func TestProgressCounts(t *testing.T) {
	var nilP *Progress
	nilP.AddTotal(3)
	nilP.Start()
	nilP.Done() // nil-safety
	if s := nilP.Snapshot(); s.Total != 0 {
		t.Fatalf("nil progress total = %d", s.Total)
	}

	p := NewProgress()
	p.AddTotal(3)
	p.Start()
	p.Start()
	p.Done()
	s := p.Snapshot()
	if s.Total != 3 || s.Done != 1 || s.InFlight != 1 {
		t.Fatalf("snapshot = %+v, want total 3 done 1 inflight 1", s)
	}
	if !strings.Contains(s.String(), "1/3 runs done") {
		t.Fatalf("string = %q", s.String())
	}
}

func TestProgressReporter(t *testing.T) {
	p := NewProgress()
	var b syncBuilder
	stop := p.Reporter(&b, time.Millisecond, "test")
	p.AddTotal(2)
	p.Start()
	p.Done()
	p.Start()
	p.Done()
	time.Sleep(20 * time.Millisecond)
	stop()
	stop() // idempotent
	out := b.String()
	if !strings.Contains(out, "test: 2/2 runs done") {
		t.Fatalf("reporter output missing final line:\n%s", out)
	}
}

// syncBuilder is a goroutine-safe strings.Builder for reporter tests.
type syncBuilder struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuilder) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuilder) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// --- HTTP server ---

func TestServerVars(t *testing.T) {
	srv := NewServer()
	p := NewProgress()
	p.AddTotal(5)
	srv.Publish("progress", func() any { return p.Snapshot() })

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) (int, string) {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		if _, err := io.Copy(&b, resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, b.String()
	}

	if code, body := get("/"); code != 200 || !strings.Contains(body, "/vars/progress") {
		t.Fatalf("index: code %d body %q", code, body)
	}
	if code, body := get("/vars/progress"); code != 200 || !strings.Contains(body, `"total": 5`) {
		t.Fatalf("one var: code %d body %q", code, body)
	}
	if code, body := get("/vars"); code != 200 || !strings.Contains(body, "progress") {
		t.Fatalf("all vars: code %d body %q", code, body)
	}
	if code, _ := get("/vars/nope"); code != 404 {
		t.Fatalf("unknown var: code %d, want 404", code)
	}
	if code, body := get("/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Fatalf("pprof: code %d", code)
	}
}

// TestServerContentTypes pins the response headers tooling depends on:
// JSON endpoints must say application/json (curl-into-jq pipelines and
// browsers both branch on it), the index stays plain text, and an error
// response does not masquerade as JSON.
func TestServerContentTypes(t *testing.T) {
	srv := NewServer()
	srv.Publish("x", func() any { return 1 })

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctype := func(path string) string {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.Header.Get("Content-Type")
	}

	const wantJSON = "application/json; charset=utf-8"
	if got := ctype("/vars"); got != wantJSON {
		t.Errorf("/vars Content-Type = %q, want %q", got, wantJSON)
	}
	if got := ctype("/vars/x"); got != wantJSON {
		t.Errorf("/vars/x Content-Type = %q, want %q", got, wantJSON)
	}
	if got := ctype("/"); !strings.HasPrefix(got, "text/plain") {
		t.Errorf("index Content-Type = %q, want text/plain", got)
	}
	if got := ctype("/vars/nope"); strings.Contains(got, "json") {
		t.Errorf("404 Content-Type = %q, must not claim JSON", got)
	}
}

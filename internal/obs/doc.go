// Package obs is the simulator-wide observability layer: cycle-sampled
// epoch time-series (Recorder), structured levelled event tracing
// (EventLog), campaign progress accounting (Progress), and a small HTTP
// server (Server) exposing live JSON snapshots plus net/http/pprof.
//
// The layer is strictly read-only with respect to simulation state: every
// probe is a getter over counters the substrates maintain anyway, and every
// event emission is guarded by a nil-safe level check, so telemetry-on and
// telemetry-off runs produce bit-identical Results (the sim package's
// determinism suite enforces this).
//
// Cost model:
//   - disabled: a nil-pointer check per potential emission and one int64
//     comparison per simulated cycle — nothing allocates.
//   - enabled: the Recorder touches every registered probe once per epoch
//     (default 100k DRAM cycles); the EventLog appends into a fixed ring,
//     overwriting the oldest entries, so memory stays bounded no matter how
//     long the run is.
package obs

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace-event export (DESIGN.md §4h). WriteChromeTrace renders
// sampled request spans and instant events as the Trace Event Format JSON
// that chrome://tracing and Perfetto's legacy importer load directly: one
// "X" (complete) event per span on a named track, one "i" (instant) event
// per log entry, and "M" (metadata) events naming the process and tracks.
// The format wants timestamps in microseconds; the options carry the
// cycle length so callers keep their native clocks.

// TraceSpan is one exported span: a named interval on a named track, with
// optional argument key/values shown in the trace viewer's detail pane.
// Times are in cycles of the clock ChromeTraceOptions.CycleNs describes.
type TraceSpan struct {
	Name  string
	Track string
	Start int64
	End   int64
	Args  map[string]int64
}

// ChromeTraceOptions configures the export.
type ChromeTraceOptions struct {
	// Process names the single process all tracks live under (shown as
	// the top-level group in the viewer). Empty means "pradram".
	Process string
	// CycleNs is the length in nanoseconds of one cycle of the clock the
	// spans and events are stamped in. Zero or negative means 1 ns per
	// cycle (timestamps then read as raw cycle counts).
	CycleNs float64
	// InstantTrack names the track instant events land on. Empty means
	// "events".
	InstantTrack string
}

// chromeEvent is one Trace Event Format entry. Only the fields the "X",
// "i", and "M" phases use are modeled.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes spans and instant events as one Trace Event
// Format JSON document. Tracks are assigned thread IDs in sorted name
// order, so the export is deterministic for deterministic inputs. Instant
// events use the event's Kind as the name and carry Scope and Detail as
// arguments.
func WriteChromeTrace(w io.Writer, opt ChromeTraceOptions, spans []TraceSpan, instants []Event) error {
	if opt.Process == "" {
		opt.Process = "pradram"
	}
	if opt.CycleNs <= 0 {
		opt.CycleNs = 1
	}
	if opt.InstantTrack == "" {
		opt.InstantTrack = "events"
	}
	us := func(cycle int64) float64 { return float64(cycle) * opt.CycleNs / 1e3 }

	tracks := map[string]bool{}
	for _, s := range spans {
		tracks[s.Track] = true
	}
	if len(instants) > 0 {
		tracks[opt.InstantTrack] = true
	}
	names := make([]string, 0, len(tracks))
	for n := range tracks {
		names = append(names, n)
	}
	sort.Strings(names)
	tid := make(map[string]int, len(names))
	for i, n := range names {
		tid[n] = i
	}

	evs := make([]chromeEvent, 0, len(spans)+len(instants)+len(names)+1)
	evs = append(evs, chromeEvent{
		Name: "process_name", Ph: "M",
		Args: map[string]any{"name": opt.Process},
	})
	for _, n := range names {
		evs = append(evs, chromeEvent{
			Name: "thread_name", Ph: "M", Tid: tid[n],
			Args: map[string]any{"name": n},
		})
	}
	for _, s := range spans {
		if s.End < s.Start {
			return fmt.Errorf("obs: span %q on %q ends at %d before it starts at %d", s.Name, s.Track, s.End, s.Start)
		}
		e := chromeEvent{
			Name: s.Name, Ph: "X",
			Ts: us(s.Start), Dur: us(s.End - s.Start),
			Tid: tid[s.Track],
		}
		if len(s.Args) > 0 {
			e.Args = make(map[string]any, len(s.Args))
			for k, v := range s.Args {
				e.Args[k] = v
			}
		}
		evs = append(evs, e)
	}
	for _, in := range instants {
		evs = append(evs, chromeEvent{
			Name: in.Kind, Ph: "i", S: "g",
			Ts: us(in.Cycle), Tid: tid[opt.InstantTrack],
			Args: map[string]any{"scope": in.Scope, "detail": in.Detail},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: evs, DisplayTimeUnit: "ns"})
}

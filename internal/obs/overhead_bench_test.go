package obs_test

import (
	"fmt"
	"testing"

	"pradram/internal/core"
	"pradram/internal/dram"
	"pradram/internal/obs"
	"pradram/internal/power"
)

// These paired benchmarks drive the same DRAM command hot path (the
// ACT / column-write / PRE cycle of the channel model) with telemetry
// disabled and fully enabled. CI's benchgate tool runs them at
// -benchtime 1x and fails if the disabled path is not at least as cheap as
// the enabled one — the regression it guards against is "disabled"
// telemetry that still pays for emission (a broken level guard, a probe
// read in the per-cycle path). Each b.N iteration performs innerOps
// command cycles so a single -benchtime 1x pass is long enough to be
// stable.

const innerOps = 2000

// commandCycles drives innerOps ACT/WR/PRE cycles, mirroring the
// controller's instrumentation pattern: a nil-safe Enabled guard before
// every emission and an epoch check against the recorder.
func commandCycles(b *testing.B, ch *dram.Channel, ev *obs.EventLog, rec *obs.Recorder) {
	now := int64(0)
	next := int64(-1)
	if rec != nil {
		rec.Begin(0)
		next = rec.NextSample()
	}
	for i := 0; i < b.N; i++ {
		for op := 0; op < innerOps; op++ {
			bank := op % ch.G.Banks
			now = ch.ActReadyAt(now, 0, bank, core.FullMask, false)
			if err := ch.Activate(now, 0, bank, op%ch.G.Rows, core.FullMask, false); err != nil {
				b.Fatal(err)
			}
			if ev.Enabled(obs.LevelState) {
				ev.Emit(obs.Event{Cycle: now, Level: obs.LevelState, Scope: "bench",
					Kind: "act", Detail: fmt.Sprintf("bank %d", bank)})
			}
			at := ch.WriteReadyAt(now, 0, bank, ch.T.TBURST)
			if _, err := ch.Write(at, 0, bank, ch.T.TBURST, 1, false); err != nil {
				b.Fatal(err)
			}
			pre := ch.PreReadyAt(at, 0, bank)
			if err := ch.Precharge(pre, 0, bank); err != nil {
				b.Fatal(err)
			}
			now = pre
			if rec != nil && now >= next {
				rec.Sample(now)
				next = rec.NextSample()
			}
		}
	}
}

func newBenchChannel(b *testing.B) *dram.Channel {
	ch, err := dram.NewChannel(dram.DefaultTiming(), dram.DefaultGeometry(), power.NewAccumulator())
	if err != nil {
		b.Fatal(err)
	}
	return ch
}

// BenchmarkTelemetryOffHotPath is the production telemetry-off path: a nil
// event log behind the Enabled guard, no recorder, no DRAM command trace.
func BenchmarkTelemetryOffHotPath(b *testing.B) {
	ch := newBenchChannel(b)
	b.ResetTimer()
	commandCycles(b, ch, nil, nil)
}

// BenchmarkTelemetryOnHotPath attaches everything: a cmd-level event ring
// fed by the channel's command trace, state events from the driver loop,
// and an epoch recorder with per-bank probes.
func BenchmarkTelemetryOnHotPath(b *testing.B) {
	ch := newBenchChannel(b)
	ev := obs.NewEventLog(obs.DefaultEventCap, obs.LevelCmd)
	ch.Trace = func(e dram.CmdEvent) {
		ev.Emit(obs.Event{Cycle: e.At, Level: obs.LevelCmd, Scope: "dram", Kind: e.Kind.String(), Detail: e.String()})
	}
	rec := obs.NewRecorder(10_000)
	for r := 0; r < ch.G.Ranks; r++ {
		for bank := 0; bank < ch.G.Banks; bank++ {
			r, bank := r, bank
			rec.Counter(fmt.Sprintf("r%d_b%d_act", r, bank), func() int64 { return ch.BankCounts(r, bank).Act })
			rec.Counter(fmt.Sprintf("r%d_b%d_wr", r, bank), func() int64 { return ch.BankCounts(r, bank).Wr })
		}
	}
	b.ResetTimer()
	commandCycles(b, ch, ev, rec)
}

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
)

// probeKind distinguishes how a probe's readings become column values.
type probeKind uint8

const (
	kindCounter probeKind = iota // monotonic; the column stores per-epoch deltas
	kindGauge                    // instantaneous; the column stores the reading
)

type probe struct {
	name string
	kind probeKind
	read func() float64
	last float64 // previous reading (counters only)
}

// Recorder samples registered probes every EpochCycles cycles into a
// columnar in-memory buffer. Counters record per-epoch deltas (so each row
// is "what happened during this epoch"); gauges record instantaneous
// values (queue depths, open-bank counts).
//
// Usage: register probes, call Begin(cycle) at the start of the measured
// window (it snapshots counter baselines), then Sample/MaybeSample as the
// clock advances and Flush at the end for the final partial epoch. All
// methods are safe for concurrent use with Snapshot, so an HTTP goroutine
// can read the buffer while the simulation appends to it.
type Recorder struct {
	mu sync.Mutex

	epoch  int64
	probes []probe
	began  bool

	base int64 // cycle passed to Begin; row cycles are relative to it
	last int64 // absolute cycle of the most recent sample
	next int64 // absolute cycle of the next due sample

	cycles []int64     // per-row epoch-end cycle (relative to base)
	cols   [][]float64 // one slice per probe, parallel to probes
}

// NewRecorder creates a recorder sampling every epochCycles cycles.
func NewRecorder(epochCycles int64) *Recorder {
	if epochCycles <= 0 {
		epochCycles = 100_000
	}
	return &Recorder{epoch: epochCycles}
}

// EpochCycles returns the sampling period.
func (r *Recorder) EpochCycles() int64 { return r.epoch }

// Counter registers a monotonic int64 probe; its column holds per-epoch
// deltas. Registration order fixes column order. Register before Begin.
func (r *Recorder) Counter(name string, read func() int64) {
	r.register(name, kindCounter, func() float64 { return float64(read()) })
}

// CounterF registers a monotonic float64 probe (e.g. accumulated energy).
func (r *Recorder) CounterF(name string, read func() float64) {
	r.register(name, kindCounter, read)
}

// Gauge registers an instantaneous probe (e.g. a queue depth).
func (r *Recorder) Gauge(name string, read func() float64) {
	r.register(name, kindGauge, read)
}

func (r *Recorder) register(name string, kind probeKind, read func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.began {
		panic(fmt.Sprintf("obs: probe %q registered after Begin", name))
	}
	r.probes = append(r.probes, probe{name: name, kind: kind, read: read})
	r.cols = append(r.cols, nil)
}

// Begin marks the start of the measured window at the given cycle: counter
// baselines are snapshotted (so the first epoch's deltas exclude anything
// before, e.g. warmup) and row cycles become relative to it. Any previously
// buffered rows are dropped.
func (r *Recorder) Begin(cycle int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.began = true
	r.base, r.last, r.next = cycle, cycle, cycle+r.epoch
	r.cycles = r.cycles[:0]
	for i := range r.probes {
		r.probes[i].last = r.probes[i].read()
		r.cols[i] = r.cols[i][:0]
	}
}

// NextSample returns the absolute cycle of the next due sample (callers
// keeping their own cheap inline check can mirror it).
func (r *Recorder) NextSample() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// MaybeSample samples iff the epoch boundary has been reached.
func (r *Recorder) MaybeSample(cycle int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.began && cycle >= r.next {
		r.sampleLocked(cycle)
	}
}

// Sample unconditionally closes an epoch at the given cycle and appends a
// row. The next epoch boundary is re-armed at cycle+EpochCycles.
func (r *Recorder) Sample(cycle int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.began {
		return
	}
	r.sampleLocked(cycle)
}

// Flush appends a final partial-epoch row if any cycles elapsed since the
// last sample, so runs whose length is not a multiple of the epoch lose no
// tail activity.
func (r *Recorder) Flush(cycle int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.began && cycle > r.last {
		r.sampleLocked(cycle)
	}
}

func (r *Recorder) sampleLocked(cycle int64) {
	r.cycles = append(r.cycles, cycle-r.base)
	for i := range r.probes {
		p := &r.probes[i]
		v := p.read()
		if p.kind == kindCounter {
			v, p.last = v-p.last, v
		}
		r.cols[i] = append(r.cols[i], v)
	}
	r.last, r.next = cycle, cycle+r.epoch
}

// Header returns the column names: "epoch", "cycle", then every probe in
// registration order.
func (r *Recorder) Header() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := make([]string, 0, len(r.probes)+2)
	h = append(h, "epoch", "cycle")
	for i := range r.probes {
		h = append(h, r.probes[i].name)
	}
	return h
}

// Rows returns how many epochs have been recorded.
func (r *Recorder) Rows() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.cycles)
}

// formatCell renders a value compactly: integral values print without a
// decimal point so counter columns stay readable.
func formatCell(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteCSV dumps the buffered time-series as CSV: a header row, then one
// row per epoch.
func (r *Recorder) WriteCSV(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var err error
	write := func(s string) {
		if err == nil {
			_, err = io.WriteString(w, s)
		}
	}
	write("epoch,cycle")
	for i := range r.probes {
		write(",")
		write(r.probes[i].name)
	}
	write("\n")
	for row := range r.cycles {
		write(strconv.Itoa(row))
		write(",")
		write(strconv.FormatInt(r.cycles[row], 10))
		for c := range r.cols {
			write(",")
			write(formatCell(r.cols[c][row]))
		}
		write("\n")
	}
	return err
}

// TimelineSnapshot is the JSON shape of a recorder dump: column-major would
// be smaller, but row-major matches the CSV and is easier to eyeball live.
type TimelineSnapshot struct {
	EpochCycles int64       `json:"epoch_cycles"`
	Header      []string    `json:"header"`
	Rows        [][]float64 `json:"rows"`
}

// Snapshot copies the buffered series; safe to call while sampling runs.
func (r *Recorder) Snapshot() TimelineSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := TimelineSnapshot{EpochCycles: r.epoch}
	s.Header = append(s.Header, "epoch", "cycle")
	for i := range r.probes {
		s.Header = append(s.Header, r.probes[i].name)
	}
	for row := range r.cycles {
		line := make([]float64, 0, len(r.cols)+2)
		line = append(line, float64(row), float64(r.cycles[row]))
		for c := range r.cols {
			line = append(line, r.cols[c][row])
		}
		s.Rows = append(s.Rows, line)
	}
	return s
}

// WriteJSON dumps the buffered time-series as one JSON document.
func (r *Recorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r.Snapshot())
}

// Column returns the recorded series for one probe name (nil if unknown).
// Intended for tests and programmatic consumers.
func (r *Recorder) Column(name string) []float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.probes {
		if r.probes[i].name == name {
			return append([]float64(nil), r.cols[i]...)
		}
	}
	return nil
}

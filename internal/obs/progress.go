package obs

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// Progress tracks a campaign of independent runs (the experiment runner's
// worker pool, a prasim batch): total known work, completions, and how many
// runs are in flight right now. All methods are nil-safe and lock-free, so
// instrumented code can call them unconditionally from worker goroutines.
type Progress struct {
	total    atomic.Int64
	done     atomic.Int64
	inflight atomic.Int64
	startNs  atomic.Int64 // wall clock of the first AddTotal/Start
}

// NewProgress returns an empty tracker.
func NewProgress() *Progress { return &Progress{} }

func (p *Progress) markStart() {
	p.startNs.CompareAndSwap(0, time.Now().UnixNano())
}

// AddTotal announces n more units of known work.
func (p *Progress) AddTotal(n int64) {
	if p == nil || n <= 0 {
		return
	}
	p.markStart()
	p.total.Add(n)
}

// Start marks one unit as in flight.
func (p *Progress) Start() {
	if p == nil {
		return
	}
	p.markStart()
	p.inflight.Add(1)
}

// Done marks one in-flight unit as completed.
func (p *Progress) Done() {
	if p == nil {
		return
	}
	p.inflight.Add(-1)
	p.done.Add(1)
}

// ProgressSnapshot is one consistent-enough view of the counters plus the
// derived timing estimates.
type ProgressSnapshot struct {
	Total    int64         `json:"total"`
	Done     int64         `json:"done"`
	InFlight int64         `json:"in_flight"`
	Elapsed  time.Duration `json:"elapsed_ns"`
	ETA      time.Duration `json:"eta_ns"` // 0 when unknown
}

// Snapshot reads the counters and derives elapsed/ETA. ETA extrapolates
// the mean completion rate so far; it is 0 until the first completion.
func (p *Progress) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{}
	}
	s := ProgressSnapshot{
		Total:    p.total.Load(),
		Done:     p.done.Load(),
		InFlight: p.inflight.Load(),
	}
	if start := p.startNs.Load(); start != 0 {
		s.Elapsed = time.Duration(time.Now().UnixNano() - start)
	}
	if s.Done > 0 && s.Total > s.Done {
		s.ETA = time.Duration(float64(s.Elapsed) / float64(s.Done) * float64(s.Total-s.Done))
	}
	return s
}

// String renders the standard one-line progress report.
func (s ProgressSnapshot) String() string {
	line := fmt.Sprintf("%d/%d runs done, %d in flight, elapsed %s",
		s.Done, s.Total, s.InFlight, s.Elapsed.Round(time.Second))
	if s.ETA > 0 {
		line += fmt.Sprintf(", ETA %s", s.ETA.Round(time.Second))
	}
	return line
}

// Reporter starts a goroutine that writes "prefix: <snapshot>" to w every
// interval while the counters are moving (unchanged snapshots are not
// re-printed). The returned stop function halts the reporter and, if any
// work was tracked, prints one final line; it is safe to call twice.
func (p *Progress) Reporter(w io.Writer, interval time.Duration, prefix string) (stop func()) {
	if p == nil || w == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = time.Second
	}
	quit := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		var last ProgressSnapshot
		for {
			select {
			case <-quit:
				if s := p.Snapshot(); s.Total > 0 {
					fmt.Fprintf(w, "%s: %s\n", prefix, s)
				}
				return
			case <-tick.C:
				s := p.Snapshot()
				if s.Total == 0 || (s.Done == last.Done && s.InFlight == last.InFlight && s.Total == last.Total) {
					continue
				}
				last = s
				fmt.Fprintf(w, "%s: %s\n", prefix, s)
			}
		}
	}()
	var once atomic.Bool
	return func() {
		if once.CompareAndSwap(false, true) {
			close(quit)
			<-finished
		}
	}
}

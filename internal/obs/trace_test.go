package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// decodeTrace parses an exported document back into the generic shape the
// assertions walk.
func decodeTrace(t *testing.T, doc string) map[string]any {
	t.Helper()
	var out map[string]any
	if err := json.Unmarshal([]byte(doc), &out); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, doc)
	}
	return out
}

func TestChromeTraceShape(t *testing.T) {
	spans := []TraceSpan{
		{Name: "read", Track: "ch0.b1", Start: 100, End: 140, Args: map[string]int64{"queue": 30, "xfer": 10}},
		{Name: "write", Track: "ch1.b0", Start: 200, End: 220},
	}
	instants := []Event{
		{Cycle: 150, Level: LevelState, Scope: "memctrl.ch0", Kind: "REF", Detail: "rank 0"},
	}
	var b strings.Builder
	opt := ChromeTraceOptions{Process: "prasim", CycleNs: 1.25, InstantTrack: "dram"}
	if err := WriteChromeTrace(&b, opt, spans, instants); err != nil {
		t.Fatal(err)
	}
	doc := decodeTrace(t, b.String())
	if doc["displayTimeUnit"] != "ns" {
		t.Errorf("displayTimeUnit = %v, want ns", doc["displayTimeUnit"])
	}
	evs := doc["traceEvents"].([]any)
	// 1 process_name + 3 thread_name (two span tracks + instant track) +
	// 2 spans + 1 instant.
	if len(evs) != 7 {
		t.Fatalf("exported %d events, want 7", len(evs))
	}
	byPhase := map[string][]map[string]any{}
	for _, raw := range evs {
		e := raw.(map[string]any)
		ph := e["ph"].(string)
		byPhase[ph] = append(byPhase[ph], e)
	}
	if len(byPhase["M"]) != 4 || len(byPhase["X"]) != 2 || len(byPhase["i"]) != 1 {
		t.Fatalf("phase counts M=%d X=%d i=%d, want 4/2/1",
			len(byPhase["M"]), len(byPhase["X"]), len(byPhase["i"]))
	}

	// Tracks get thread IDs in sorted name order: ch0.b1=0, ch1.b0=1,
	// dram=2 — deterministic, so repeated exports diff cleanly.
	read := byPhase["X"][0]
	if got, want := read["ts"].(float64), 100*1.25/1e3; got != want {
		t.Errorf("read span ts = %v us, want %v", got, want)
	}
	if got, want := read["dur"].(float64), 40*1.25/1e3; got != want {
		t.Errorf("read span dur = %v us, want %v", got, want)
	}
	if got := read["tid"].(float64); got != 0 {
		t.Errorf("read span tid = %v, want 0 (first sorted track)", got)
	}
	if args := read["args"].(map[string]any); args["queue"].(float64) != 30 {
		t.Errorf("read span args = %v, want queue=30", args)
	}
	inst := byPhase["i"][0]
	if inst["name"] != "REF" || inst["s"] != "g" || inst["tid"].(float64) != 2 {
		t.Errorf("instant = %v, want name REF, s g, tid 2", inst)
	}
	if args := inst["args"].(map[string]any); args["detail"] != "rank 0" {
		t.Errorf("instant args = %v, want detail 'rank 0'", args)
	}
}

func TestChromeTraceDefaults(t *testing.T) {
	var b strings.Builder
	if err := WriteChromeTrace(&b, ChromeTraceOptions{}, []TraceSpan{{Name: "s", Track: "t", Start: 2000, End: 3000}}, nil); err != nil {
		t.Fatal(err)
	}
	doc := decodeTrace(t, b.String())
	evs := doc["traceEvents"].([]any)
	var sawProcess bool
	for _, raw := range evs {
		e := raw.(map[string]any)
		switch e["ph"] {
		case "M":
			if e["name"] == "process_name" {
				sawProcess = true
				if name := e["args"].(map[string]any)["name"]; name != "pradram" {
					t.Errorf("default process name = %v, want pradram", name)
				}
			}
		case "X":
			// CycleNs defaults to 1 ns/cycle: 2000 cycles -> 2 us.
			if e["ts"].(float64) != 2 {
				t.Errorf("default-clock ts = %v us, want 2", e["ts"])
			}
		}
	}
	if !sawProcess {
		t.Error("no process_name metadata emitted")
	}
}

func TestChromeTraceRejectsBackwardsSpan(t *testing.T) {
	var b strings.Builder
	err := WriteChromeTrace(&b, ChromeTraceOptions{}, []TraceSpan{{Name: "s", Track: "t", Start: 10, End: 5}}, nil)
	if err == nil {
		t.Fatal("a span ending before it starts must be rejected")
	}
}

func TestChromeTraceEmpty(t *testing.T) {
	var b strings.Builder
	if err := WriteChromeTrace(&b, ChromeTraceOptions{}, nil, nil); err != nil {
		t.Fatal(err)
	}
	doc := decodeTrace(t, b.String())
	evs := doc["traceEvents"].([]any)
	if len(evs) != 1 { // just the process_name metadata
		t.Errorf("empty export has %d events, want 1", len(evs))
	}
}

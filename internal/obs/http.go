package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
)

// Server exposes live run introspection over HTTP in the expvar style:
// named variables are registered as lazy producers and evaluated per
// request, so the page always shows the current state of a running
// simulation. net/http/pprof is mounted under /debug/pprof/ for CPU and
// heap profiling of long campaigns.
//
// Routes:
//
//	/              index of registered variables
//	/vars          all variables as one JSON object
//	/vars/<name>   one variable as JSON
//	/debug/pprof/  the standard pprof handlers
type Server struct {
	mux *http.ServeMux

	mu   sync.Mutex
	vars map[string]func() any
}

// NewServer builds a server with the pprof handlers mounted.
func NewServer() *Server {
	s := &Server{mux: http.NewServeMux(), vars: make(map[string]func() any)}
	s.mux.HandleFunc("/", s.index)
	s.mux.HandleFunc("/vars", s.allVars)
	s.mux.HandleFunc("/vars/", s.oneVar)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Publish registers (or replaces) a lazy variable. The producer runs on
// every request, so it must be safe to call concurrently with the
// simulation (Recorder.Snapshot and Progress.Snapshot are).
func (s *Server) Publish(name string, produce func() any) {
	s.mu.Lock()
	s.vars[name] = produce
	s.mu.Unlock()
}

// names returns the registered variable names, sorted.
func (s *Server) names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.vars))
	for n := range s.vars {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (s *Server) index(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "pradram live introspection")
	fmt.Fprintln(w, "  /vars")
	for _, n := range s.names() {
		fmt.Fprintf(w, "  /vars/%s\n", n)
	}
	fmt.Fprintln(w, "  /debug/pprof/")
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) allVars(w http.ResponseWriter, _ *http.Request) {
	out := make(map[string]any)
	s.mu.Lock()
	producers := make(map[string]func() any, len(s.vars))
	for n, f := range s.vars {
		producers[n] = f
	}
	s.mu.Unlock()
	for n, f := range producers {
		out[n] = f()
	}
	writeJSON(w, out)
}

func (s *Server) oneVar(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/vars/")
	s.mu.Lock()
	f, ok := s.vars[name]
	s.mu.Unlock()
	if !ok {
		http.NotFound(w, r)
		return
	}
	writeJSON(w, f())
}

// Handler returns the server's root handler (useful for tests).
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe serves on addr until the process exits. Callers normally
// run it on its own goroutine and only log the returned error:
//
//	go func() {
//	    if err := srv.ListenAndServe(*httpAddr); err != nil {
//	        log.Print(err)
//	    }
//	}()
func (s *Server) ListenAndServe(addr string) error {
	return http.ListenAndServe(addr, s.mux)
}

package obs

import (
	"fmt"
	"io"
	"sync"
)

// Level orders event verbosity. A log at LevelCmd records state events too.
type Level uint8

const (
	// LevelOff records nothing; the zero value keeps tracing disabled.
	LevelOff Level = iota
	// LevelState records state transitions: write-drain start/stop,
	// refresh windows, rank power-down/wake, DBI proactive sweeps.
	LevelState
	// LevelCmd additionally records every DRAM command as issued.
	LevelCmd
)

// String returns the level's flag name ("off", "state", "cmd").
func (l Level) String() string {
	switch l {
	case LevelOff:
		return "off"
	case LevelState:
		return "state"
	case LevelCmd:
		return "cmd"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// ParseLevel resolves a level name ("off", "state", "cmd").
func ParseLevel(s string) (Level, error) {
	switch s {
	case "off", "":
		return LevelOff, nil
	case "state":
		return LevelState, nil
	case "cmd":
		return LevelCmd, nil
	}
	return LevelOff, fmt.Errorf("obs: unknown event level %q (off | state | cmd)", s)
}

// Event is one structured trace entry. Cycle is in the emitting component's
// clock domain (memory cycles for memctrl/dram scopes, CPU cycles for the
// cache scope); Scope disambiguates.
type Event struct {
	Cycle  int64  `json:"cycle"`
	Level  Level  `json:"level"`
	Scope  string `json:"scope"`
	Kind   string `json:"kind"`
	Detail string `json:"detail,omitempty"`
}

// String renders one post-mortem log line.
func (e Event) String() string {
	return fmt.Sprintf("%10d %-5s %-12s %-12s %s", e.Cycle, e.Level, e.Scope, e.Kind, e.Detail)
}

// EventLog is a fixed-capacity ring of Events: emission past capacity
// overwrites the oldest entries, so a run of any length keeps the most
// recent window for post-mortems. All methods are nil-safe — a nil
// *EventLog is simply "tracing disabled", which is what makes emission
// sites zero-cost when off:
//
//	if log.Enabled(obs.LevelState) {
//	    log.Emit(obs.Event{...}) // detail string built only when enabled
//	}
type EventLog struct {
	mu      sync.Mutex
	level   Level
	buf     []Event
	start   int    // index of the oldest entry
	n       int    // live entries (<= cap)
	total   uint64 // events ever emitted, including discarded ones
	dropped uint64 // events discarded: ring overwrites + Reset flushes
}

// DefaultEventCap is the ring capacity when none is given.
const DefaultEventCap = 4096

// NewEventLog creates a ring of the given capacity (<=0 selects
// DefaultEventCap) recording events at or below level.
func NewEventLog(capacity int, level Level) *EventLog {
	if capacity <= 0 {
		capacity = DefaultEventCap
	}
	return &EventLog{level: level, buf: make([]Event, capacity)}
}

// Enabled reports whether events of verbosity v are recorded. Nil-safe.
func (l *EventLog) Enabled(v Level) bool {
	return l != nil && v != LevelOff && v <= l.level
}

// Level returns the configured verbosity (LevelOff for a nil log).
func (l *EventLog) Level() Level {
	if l == nil {
		return LevelOff
	}
	return l.level
}

// Emit records an event if its level is enabled. Nil-safe.
func (l *EventLog) Emit(e Event) {
	if !l.Enabled(e.Level) {
		return
	}
	l.mu.Lock()
	if l.n < len(l.buf) {
		l.buf[(l.start+l.n)%len(l.buf)] = e
		l.n++
	} else {
		l.buf[l.start] = e
		l.start = (l.start + 1) % len(l.buf)
		l.dropped++
	}
	l.total++
	l.mu.Unlock()
}

// Len returns how many events the ring currently holds.
func (l *EventLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Total returns how many events were ever emitted (including those the
// ring has since overwritten).
func (l *EventLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Dropped returns how many events were discarded: ring overwrites plus
// events flushed by Reset.
func (l *EventLog) Dropped() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Events returns the ring's contents oldest-first.
func (l *EventLog) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, l.n)
	for i := 0; i < l.n; i++ {
		out[i] = l.buf[(l.start+i)%len(l.buf)]
	}
	return out
}

// Reset drops all buffered events (the emitted total is kept), e.g. at the
// warmup/measurement boundary.
func (l *EventLog) Reset() {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.dropped += uint64(l.n)
	l.start, l.n = 0, 0
	l.mu.Unlock()
}

// Dump writes the buffered events oldest-first as text, with a one-line
// header noting level and drop count.
func (l *EventLog) Dump(w io.Writer) error {
	if l == nil {
		_, err := io.WriteString(w, "event log disabled\n")
		return err
	}
	events := l.Events()
	if _, err := fmt.Fprintf(w, "event log: level %s, %d buffered, %d dropped (ring cap %d)\n",
		l.Level(), len(events), l.Dropped(), cap(l.buf)); err != nil {
		return err
	}
	for _, e := range events {
		if _, err := fmt.Fprintln(w, e.String()); err != nil {
			return err
		}
	}
	return nil
}

package core

import (
	"fmt"
	"math/bits"
)

// WordsPerLine is the number of 8-byte words in a 64-byte cache line. Each
// word maps to one group of two MATs inside a DRAM bank (Section 4.1.2), so
// a PRA mask has exactly one bit per word.
const WordsPerLine = 8

// BytesPerWord is the width of one word segment of a cache line. Each byte
// of a word is stored in a different x8 chip of the rank (Figure 1).
const BytesPerWord = 8

// LineBytes is the cache-line size used throughout the system.
const LineBytes = WordsPerLine * BytesPerWord

// Mask is an 8-bit PRA mask. Bit i selects the group of two MATs that holds
// word i of every cache line in the row. FullMask activates the whole row;
// the zero Mask selects nothing and is never a legal activation mask.
type Mask uint8

// FullMask selects all eight MAT groups, i.e. a conventional full-row
// activation.
const FullMask Mask = 0xFF

// Bit returns whether word i (0..7) is selected by the mask.
func (m Mask) Bit(i int) bool {
	if i < 0 || i >= WordsPerLine {
		return false
	}
	return m&(1<<uint(i)) != 0
}

// Granularity returns the number of selected word groups (0..8). A value of
// g means a g/8 partial row activation.
func (m Mask) Granularity() int { return bits.OnesCount8(uint8(m)) }

// Fraction returns the activated fraction of the row, Granularity()/8.
func (m Mask) Fraction() float64 { return float64(m.Granularity()) / WordsPerLine }

// IsFull reports whether the mask selects the entire row.
func (m Mask) IsFull() bool { return m == FullMask }

// IsZero reports whether the mask selects nothing.
func (m Mask) IsZero() bool { return m == 0 }

// Covers reports whether every word selected by need is also selected by m.
// It is the row-buffer-hit condition for a write request against a partially
// opened row: the write hits only if its dirty words are all activated.
func (m Mask) Covers(need Mask) bool { return need&^m == 0 }

// Union returns the OR-merge of two masks. The memory controller ORs the
// masks of all queued requests heading to the same row before issuing the
// activation (Section 5.2.1).
func (m Mask) Union(o Mask) Mask { return m | o }

// String renders the mask in the paper's bit-string notation, e.g.
// "10000001b" for words 0 and 7 (bit 7 printed first).
func (m Mask) String() string {
	var b [WordsPerLine + 1]byte
	for i := 0; i < WordsPerLine; i++ {
		if m.Bit(WordsPerLine - 1 - i) {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	b[WordsPerLine] = 'b'
	return string(b[:])
}

// MaskOfWords builds a mask selecting the given word indices. Out-of-range
// indices are an error: the caller is translating dirty-word positions and
// must never be out of range.
func MaskOfWords(words ...int) (Mask, error) {
	var m Mask
	for _, w := range words {
		if w < 0 || w >= WordsPerLine {
			return 0, fmt.Errorf("core: word index %d out of range [0,%d)", w, WordsPerLine)
		}
		m |= 1 << uint(w)
	}
	return m, nil
}

// ByteMask is a 64-bit per-byte dirty mask for one cache line: bit
// (8*word + byte) is set when that byte has been stored to since the line
// was last clean. The cache hierarchy maintains ByteMasks; PRA and SDS each
// project them differently.
type ByteMask uint64

// FullByteMask marks every byte of the line dirty.
const FullByteMask ByteMask = ^ByteMask(0)

// WordMask projects the byte mask to the PRA word mask: word i is dirty if
// any of its eight bytes is dirty. This is the FGD information a dirty L2
// eviction delivers to the memory controller (Section 4.1.4).
func (b ByteMask) WordMask() Mask {
	var m Mask
	for w := 0; w < WordsPerLine; w++ {
		if b&(ByteMask(0xFF)<<(uint(w)*BytesPerWord)) != 0 {
			m |= 1 << uint(w)
		}
	}
	return m
}

// ChipMask projects the byte mask to the SDS chip-access mask: chip k (byte
// position k of every word) must be accessed if byte k of any word is dirty.
// Used for the Section 3 coverage comparison against Skinflint DRAM.
func (b ByteMask) ChipMask() Mask {
	var m Mask
	for k := 0; k < BytesPerWord; k++ {
		for w := 0; w < WordsPerLine; w++ {
			if b&(ByteMask(1)<<(uint(w)*BytesPerWord+uint(k))) != 0 {
				m |= 1 << uint(k)
				break
			}
		}
	}
	return m
}

// DirtyBytes returns the number of dirty bytes in the line.
func (b ByteMask) DirtyBytes() int { return bits.OnesCount64(uint64(b)) }

// StoreBytes returns the byte mask touched by a store of size bytes at
// offset off within the line. Stores that spill past the end of the line are
// clipped; size <= 0 yields the zero mask.
func StoreBytes(off, size int) ByteMask {
	if off < 0 || off >= LineBytes || size <= 0 {
		return 0
	}
	if off+size > LineBytes {
		size = LineBytes - off
	}
	if size >= 64 {
		return FullByteMask
	}
	return ((ByteMask(1) << uint(size)) - 1) << uint(off)
}

package core

// FarFuture is the "no event scheduled" sentinel of the next-event
// protocol: a ticked component whose state cannot change again without
// external input reports it from NextEvent. It is far beyond any
// reachable cycle count yet small enough that converting between clock
// domains (multiplying by a CPU-to-memory ratio) cannot overflow int64.
const FarFuture = int64(1) << 62

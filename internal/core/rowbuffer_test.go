package core

import (
	"testing"
	"testing/quick"
)

func TestClassifyAccess(t *testing.T) {
	cases := []struct {
		name     string
		open     bool
		sameRow  bool
		openMask Mask
		kind     AccessKind
		need     Mask
		want     RowHitOutcome
	}{
		{"closed bank is a miss", false, false, 0, Read, 0, Miss},
		{"different row is a miss", true, false, FullMask, Read, 0, Miss},
		{"read vs full row hits", true, true, FullMask, Read, 0, Hit},
		{"read vs partial row false-hits", true, true, 0x03, Read, 0, FalseHit},
		{"write covered by partial row hits", true, true, 0x81, Write, 0x01, Hit},
		{"write outside partial row false-hits", true, true, 0x81, Write, 0x02, FalseHit},
		{"write vs full row hits", true, true, FullMask, Write, 0xAA, Hit},
		// The paper's example (Section 5.2.1): open 11000000b, write needs
		// the second MAT group counting from bit 7... we use bit positions:
		// open words 6,7; a write needing word 0 false-hits.
		{"paper example", true, true, 0xC0, Write, 0x01, FalseHit},
	}
	for _, c := range cases {
		if got := ClassifyAccess(c.open, c.sameRow, c.openMask, c.kind, c.need); got != c.want {
			t.Errorf("%s: got %s, want %s", c.name, got, c.want)
		}
	}
}

// Property: reads hit iff the open row is full; writes hit iff covered.
func TestClassifyAccessProperty(t *testing.T) {
	f := func(openMask, need uint8, kindBit bool) bool {
		kind := Read
		if kindBit {
			kind = Write
		}
		got := ClassifyAccess(true, true, Mask(openMask), kind, Mask(need))
		if kind == Read {
			want := FalseHit
			if Mask(openMask).IsFull() {
				want = Hit
			}
			return got == want
		}
		want := FalseHit
		if Mask(openMask).Covers(Mask(need)) {
			want = Hit
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestActivationWeight(t *testing.T) {
	if w := ActivationWeight(FullMask, false); w != 1.0 {
		t.Errorf("full activation weight = %v, want 1", w)
	}
	if w := ActivationWeight(0x01, false); w != 0.125 {
		t.Errorf("1/8 activation weight = %v, want 0.125", w)
	}
	if w := ActivationWeight(FullMask, true); w != 0.5 {
		t.Errorf("Half-DRAM full weight = %v, want 0.5", w)
	}
	if w := ActivationWeight(0x01, true); w != 0.0625 {
		t.Errorf("Half-DRAM+PRA 1/8 weight = %v, want 1/16", w)
	}
}

func TestScaledRRD(t *testing.T) {
	const tRRD = 5
	cases := []struct {
		w    float64
		want int
	}{
		{1.0, 5}, {0.5, 3}, {0.125, 1}, {0.0625, 1}, {0.875, 5}, {0.75, 4},
	}
	for _, c := range cases {
		if got := ScaledRRD(tRRD, c.w); got != c.want {
			t.Errorf("ScaledRRD(%d, %v) = %d, want %d", tRRD, c.w, got, c.want)
		}
	}
}

// Property: ScaledRRD is monotone in w and bounded by [1, tRRD].
func TestScaledRRDProperty(t *testing.T) {
	f := func(g uint8, tRRD uint8) bool {
		if tRRD == 0 {
			tRRD = 1
		}
		w := float64(g%9) / 8
		s := ScaledRRD(int(tRRD), w)
		if s < 1 || s > int(tRRD) {
			return false
		}
		// Monotonicity against the next granularity step.
		if g%9 < 8 {
			s2 := ScaledRRD(int(tRRD), float64(g%9+1)/8)
			if s2 < s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKindAndOutcomeStrings(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Error("AccessKind strings wrong")
	}
	if Hit.String() != "hit" || FalseHit.String() != "false-hit" || Miss.String() != "miss" {
		t.Error("RowHitOutcome strings wrong")
	}
}

// Package core implements the primitives of the Partial Row Activation (PRA)
// scheme from "Partial Row Activation for Low-Power DRAM System" (HPCA 2017):
// 8-bit PRA masks and their algebra, the fine-grained-dirtiness (FGD)
// byte-to-word mask conversions used by the cache hierarchy, the
// false-row-buffer-hit predicate used by the memory controller, the
// activation-weight model used to relax tRRD/tFAW for partial activations,
// and the Skinflint-DRAM (SDS) chip-mask projection used for the Section 3
// coverage comparison.
//
// Everything in this package is pure computation over small integer masks;
// it has no simulator state and no dependencies, so the rest of the system
// (cache, memory controller, power model) shares one definition of what a
// partial activation means.
package core

package core

// AccessKind distinguishes the two DRAM request classes PRA treats
// asymmetrically: reads always need the full row; writes need only the MAT
// groups holding their dirty words.
type AccessKind uint8

const (
	Read AccessKind = iota
	Write
)

func (k AccessKind) String() string {
	if k == Read {
		return "read"
	}
	return "write"
}

// RowHitOutcome classifies what happens when a request finds its target row
// already open in a bank under PRA (Section 5.2.1).
type RowHitOutcome uint8

const (
	// Hit: the open (possibly partial) row covers the request; the column
	// command can be issued directly.
	Hit RowHitOutcome = iota
	// FalseHit: the row is open but only partially, and the request needs
	// words outside the open mask (always the case for reads against a
	// partial row). The bank must precharge and re-activate — an ACT/PRE
	// pair a conventional DRAM would not have paid.
	FalseHit
	// Miss: a different row (or no row) is open; the normal conflict path.
	Miss
)

func (o RowHitOutcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case FalseHit:
		return "false-hit"
	default:
		return "miss"
	}
}

// ClassifyAccess applies the PRA row-buffer rules: given whether a row is
// open, whether it is the row the request targets, the open mask, the
// request kind, and the request's needed mask (dirty words for writes;
// ignored for reads, which need the full row).
func ClassifyAccess(open bool, sameRow bool, openMask Mask, kind AccessKind, need Mask) RowHitOutcome {
	if !open || !sameRow {
		return Miss
	}
	required := FullMask
	if kind == Write {
		required = need
	}
	if openMask.Covers(required) {
		return Hit
	}
	return FalseHit
}

// ActivationWeight returns the charge a partial activation contributes to
// the tRRD/tFAW budget. A conventional full-row activation weighs 1.0; a g/8
// partial activation weighs g/8. The paper states that partial activations
// relax tRRD and tFAW (Section 4.1.3) because those constraints exist to cap
// peak activation current, which is proportional to the number of bitlines
// activated; charging each activation its activated fraction concretizes
// that. halfDRAM halves the weight again (Half-DRAM activates half of every
// MAT's bitlines).
func ActivationWeight(m Mask, halfDRAM bool) float64 {
	w := m.Fraction()
	if halfDRAM {
		w /= 2
	}
	return w
}

// ScaledRRD returns the tRRD imposed on the *next* activation by an
// activation of weight w: ceil(tRRD*w), floored at one command cycle.
func ScaledRRD(tRRD int, w float64) int {
	scaled := int(float64(tRRD)*w + 0.9999)
	if scaled < 1 {
		scaled = 1
	}
	if scaled > tRRD {
		scaled = tRRD
	}
	return scaled
}

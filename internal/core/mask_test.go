package core

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestMaskGranularity(t *testing.T) {
	cases := []struct {
		m    Mask
		want int
	}{
		{0x00, 0}, {0x01, 1}, {0x80, 1}, {0x81, 2}, {0xFF, 8}, {0x0F, 4}, {0xAA, 4},
	}
	for _, c := range cases {
		if got := c.m.Granularity(); got != c.want {
			t.Errorf("Granularity(%s) = %d, want %d", c.m, got, c.want)
		}
	}
}

func TestMaskFraction(t *testing.T) {
	if f := Mask(0x01).Fraction(); f != 0.125 {
		t.Errorf("Fraction(1 bit) = %v, want 0.125", f)
	}
	if f := FullMask.Fraction(); f != 1.0 {
		t.Errorf("Fraction(full) = %v, want 1", f)
	}
}

func TestMaskString(t *testing.T) {
	cases := []struct {
		m    Mask
		want string
	}{
		{0x81, "10000001b"}, {0xFF, "11111111b"}, {0x01, "00000001b"}, {0xC0, "11000000b"},
	}
	for _, c := range cases {
		if got := c.m.String(); got != c.want {
			t.Errorf("String(%#x) = %q, want %q", uint8(c.m), got, c.want)
		}
	}
}

func TestMaskBit(t *testing.T) {
	m := Mask(0x81)
	if !m.Bit(0) || !m.Bit(7) {
		t.Error("bits 0 and 7 should be set in 0x81")
	}
	if m.Bit(1) || m.Bit(6) {
		t.Error("bits 1 and 6 should be clear in 0x81")
	}
	if m.Bit(-1) || m.Bit(8) {
		t.Error("out-of-range Bit must be false")
	}
}

func TestMaskOfWords(t *testing.T) {
	m, err := MaskOfWords(0, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if m != 0x83 {
		t.Errorf("MaskOfWords(0,1,7) = %#x, want 0x83", uint8(m))
	}
	if _, err := MaskOfWords(8); err == nil {
		t.Error("MaskOfWords(8) should error")
	}
	if _, err := MaskOfWords(-1); err == nil {
		t.Error("MaskOfWords(-1) should error")
	}
}

func TestCovers(t *testing.T) {
	if !FullMask.Covers(0x81) {
		t.Error("full mask must cover everything")
	}
	if !Mask(0x81).Covers(0x01) {
		t.Error("0x81 covers 0x01")
	}
	if Mask(0x81).Covers(0x02) {
		t.Error("0x81 does not cover 0x02")
	}
	if !Mask(0x81).Covers(0) {
		t.Error("any mask covers the empty need")
	}
}

// Property: Covers is exactly subset inclusion of set bits.
func TestCoversIsSubsetProperty(t *testing.T) {
	f := func(m, need uint8) bool {
		got := Mask(m).Covers(Mask(need))
		want := need&^m == 0
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Union covers both operands and nothing more.
func TestUnionProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		u := Mask(a).Union(Mask(b))
		if !u.Covers(Mask(a)) || !u.Covers(Mask(b)) {
			return false
		}
		return u.Granularity() == bits.OnesCount8(a|b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestByteMaskWordMask(t *testing.T) {
	// Dirty byte 0 of word 0 and byte 7 of word 7.
	b := ByteMask(1) | ByteMask(1)<<63
	if got := b.WordMask(); got != 0x81 {
		t.Errorf("WordMask = %s, want 10000001b", got)
	}
	if got := FullByteMask.WordMask(); got != FullMask {
		t.Errorf("WordMask(full) = %s, want full", got)
	}
	if got := ByteMask(0).WordMask(); got != 0 {
		t.Errorf("WordMask(0) = %s, want 0", got)
	}
}

func TestByteMaskChipMask(t *testing.T) {
	// A store of the full word 3 dirties every byte position exactly once:
	// every chip must be accessed under SDS even though only one word is
	// dirty — the asymmetry the paper exploits (Section 3).
	b := StoreBytes(3*BytesPerWord, BytesPerWord)
	if got := b.ChipMask(); got != FullMask {
		t.Errorf("ChipMask(one full word) = %s, want full", got)
	}
	if got := b.WordMask(); got.Granularity() != 1 {
		t.Errorf("WordMask(one full word) granularity = %d, want 1", got.Granularity())
	}
	// A 1-byte store at byte 2 of word 5 touches only chip 2.
	b = StoreBytes(5*BytesPerWord+2, 1)
	if got := b.ChipMask(); got != 0x04 {
		t.Errorf("ChipMask(1B store) = %s, want 00000100b", got)
	}
}

// Property: word mask granularity >= ceil(dirtyBytes/8) and chip mask is
// nonzero iff byte mask is nonzero.
func TestProjectionProperties(t *testing.T) {
	f := func(raw uint64) bool {
		b := ByteMask(raw)
		wm, cm := b.WordMask(), b.ChipMask()
		if (b == 0) != wm.IsZero() || (b == 0) != cm.IsZero() {
			return false
		}
		db := b.DirtyBytes()
		minWords := (db + BytesPerWord - 1) / BytesPerWord
		if wm.Granularity() < minWords && db > 0 {
			// Can't fit db dirty bytes in fewer than ceil(db/8) words.
			return false
		}
		// Total selected cells must be able to hold all dirty bytes.
		return wm.Granularity()*BytesPerWord >= db && cm.Granularity()*WordsPerLine >= db
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a byte is dirty only if both its word is in the word mask and
// its chip position is in the chip mask.
func TestProjectionCoverageProperty(t *testing.T) {
	f := func(raw uint64) bool {
		b := ByteMask(raw)
		wm, cm := b.WordMask(), b.ChipMask()
		for w := 0; w < WordsPerLine; w++ {
			for k := 0; k < BytesPerWord; k++ {
				if b&(ByteMask(1)<<(uint(w)*8+uint(k))) != 0 {
					if !wm.Bit(w) || !cm.Bit(k) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStoreBytes(t *testing.T) {
	if StoreBytes(0, 8) != 0xFF {
		t.Error("8B store at 0 should dirty bytes 0-7")
	}
	if StoreBytes(0, 64) != FullByteMask {
		t.Error("64B store should dirty the full line")
	}
	if StoreBytes(60, 8) != ByteMask(0xF)<<60 {
		t.Error("store spilling past line end must be clipped")
	}
	if StoreBytes(-1, 4) != 0 || StoreBytes(64, 4) != 0 || StoreBytes(0, 0) != 0 {
		t.Error("invalid stores must produce the zero mask")
	}
	if StoreBytes(0, 100) != FullByteMask {
		t.Error("oversized store clips to full line")
	}
}

func TestStoreBytesProperty(t *testing.T) {
	f := func(off, size uint8) bool {
		o, s := int(off%70), int(size%70)
		m := StoreBytes(o, s)
		if o >= LineBytes || s == 0 {
			return m == 0
		}
		want := s
		if o+s > LineBytes {
			want = LineBytes - o
		}
		return m.DirtyBytes() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package core

import "testing"

func BenchmarkWordMask(b *testing.B) {
	var sink Mask
	for i := 0; i < b.N; i++ {
		sink |= ByteMask(i * 0x9E3779B9).WordMask()
	}
	_ = sink
}

func BenchmarkChipMask(b *testing.B) {
	var sink Mask
	for i := 0; i < b.N; i++ {
		sink |= ByteMask(i * 0x9E3779B9).ChipMask()
	}
	_ = sink
}

func BenchmarkClassifyAccess(b *testing.B) {
	var sink RowHitOutcome
	for i := 0; i < b.N; i++ {
		sink = ClassifyAccess(true, true, Mask(i), Write, Mask(i>>3))
	}
	_ = sink
}

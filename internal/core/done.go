package core

// Checkpointing (internal/checkpoint, DESIGN.md §4e) must serialize
// simulator components that hold in-flight completion callbacks: a cache
// miss holds the core's wakeup, the memory controller holds the cache's
// fill. A bare func cannot cross a save/restore boundary, so every
// completion carries a Tag describing how to re-derive the same func from
// restored state. The Fn field is authoritative during live simulation;
// the Tag is only consulted by RestoreState implementations.

// DoneKind says which component owns the completion and how to rebind it.
type DoneKind uint8

const (
	// DoneNone marks a completion that never crosses a checkpoint (tests,
	// replay harnesses). Restoring state that holds one is an error.
	DoneNone DoneKind = iota
	// DoneLoad resolves to a cpu.Core ROB entry's load completion,
	// identified by (Core, per-core dispatch Serial).
	DoneLoad
	// DoneStore resolves to a cpu.Core's shared store completion,
	// identified by Core alone.
	DoneStore
	// DoneFill resolves to a cache MSHR entry's fill completion,
	// identified by the line id in Serial.
	DoneFill
)

// DoneTag is the serializable identity of a completion callback.
type DoneTag struct {
	Kind   DoneKind
	Core   int32
	Serial uint64
}

// Done is a completion callback plus its serializable identity. Call
// Fn(at) to complete; persist Tag across checkpoints and rebind Fn on
// restore.
type Done struct {
	Fn  func(at int64)
	Tag DoneTag
}

// Untagged wraps a bare callback that will never be checkpointed.
func Untagged(fn func(at int64)) Done { return Done{Fn: fn} }

package cache

import (
	"testing"

	"pradram/internal/core"
)

// nullMem accepts everything and completes fills immediately.
type nullMem struct{}

func (nullMem) Read(addr uint64, done core.Done) bool      { done.Fn(0); return true }
func (nullMem) Write(addr uint64, mask core.ByteMask) bool { return true }

func BenchmarkL1HitLoad(b *testing.B) {
	h, err := New(DefaultConfig(1), nullMem{})
	if err != nil {
		b.Fatal(err)
	}
	h.Load(0, 0x1000, 0, core.Untagged(func(int64) {}))
	sink := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Load(0, 0x1000, int64(i), core.Untagged(func(int64) { sink++ }))
		h.Tick(int64(i) + 3)
	}
	_ = sink
}

func BenchmarkRandomAccessMix(b *testing.B) {
	h, err := New(DefaultConfig(4), nullMem{})
	if err != nil {
		b.Fatal(err)
	}
	rng := uint64(99)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := (next() % (1 << 28)) &^ 63
		coreID := int(next() % 4)
		if next()%4 == 0 {
			h.Store(coreID, addr, core.StoreBytes(int(next()%8)*8, 8), int64(i), core.Untagged(func(int64) {}))
		} else {
			h.Load(coreID, addr, int64(i), core.Untagged(func(int64) {}))
		}
		if i%16 == 0 {
			h.Tick(int64(i) + 25)
		}
	}
}

package cache

import (
	"slices"
	"strconv"

	"pradram/internal/checkpoint"
	"pradram/internal/core"
)

// Checkpointing (DESIGN.md §4e). The hierarchy serializes cache contents
// (lines, LRU state), the miss machinery (MSHRs, waiters, the completion
// event heap, refused-operation retry lists), and the DBI index. Slices
// and the event heap's backing array are written verbatim — restoring them
// in the stored order preserves delivery order exactly, so a restored run
// is bit-identical to the monolithic one. Map contents (the DBI) are
// written in sorted key order so identical states produce identical bytes.
//
// Statistics are NOT serialized: checkpoints are taken at the warmup
// boundary, immediately after ResetStats, so a freshly built hierarchy
// already matches. Completion callbacks are rebound through their
// core.DoneTag via the resolver the CPU restore provides; the fill
// callbacks this hierarchy hands the backend are rebound through the
// resolver RestoreState returns.

func saveLevel(w *checkpoint.Writer, l *level) {
	w.Count(len(l.lines))
	for i := range l.lines {
		ln := &l.lines[i]
		w.U64(ln.tag)
		w.Bool(ln.valid)
		w.U64(uint64(ln.dirty))
	}
	for _, t := range l.lasts {
		w.I64(t)
	}
	w.I64(l.tick)
}

// restoreLevel decodes one level into temporaries and returns its commit.
func restoreLevel(r *checkpoint.Reader, l *level, name string) func() {
	if n := r.Count(); n != len(l.lines) {
		r.Fail("cache %s: %d lines, want %d", name, n, len(l.lines))
		return func() {}
	}
	lines := make([]line, len(l.lines))
	for i := range lines {
		lines[i] = line{tag: r.U64(), valid: r.Bool(), dirty: core.ByteMask(r.U64())}
	}
	lasts := make([]int64, len(l.lasts))
	for i := range lasts {
		lasts[i] = r.I64()
	}
	tick := r.I64()
	return func() {
		l.lines = lines
		l.lasts = lasts
		l.tick = tick
		// tags mirror lines; rebuild rather than trust the payload.
		for i := range lines {
			if lines[i].valid {
				l.tags[i] = lines[i].tag
			} else {
				l.tags[i] = invalidTag
			}
		}
	}
}

func saveTag(w *checkpoint.Writer, t core.DoneTag) {
	w.U8(uint8(t.Kind))
	w.I64(int64(t.Core))
	w.U64(t.Serial)
}

func readTag(r *checkpoint.Reader) core.DoneTag {
	return core.DoneTag{
		Kind:   core.DoneKind(r.U8()),
		Core:   int32(r.I64()),
		Serial: r.U64(),
	}
}

// SaveState appends the hierarchy's dynamic state.
func (h *Hierarchy) SaveState(w *checkpoint.Writer) {
	for _, l1 := range h.l1 {
		saveLevel(w, l1)
	}
	saveLevel(w, h.l2)

	w.Count(len(h.mshr))
	for _, e := range h.mshr {
		w.U64(e.id)
		w.Bool(e.issued)
		w.Count(len(e.waiters))
		for _, wt := range e.waiters {
			saveTag(w, wt.done.Tag)
			w.U64(uint64(wt.storeMask))
			w.Int(wt.core)
		}
	}
	for _, n := range h.mshrPerCore {
		w.Int(n)
	}
	// The event heap's backing array verbatim: the heap invariant is
	// position-independent, and same-cycle pop order depends on the exact
	// array layout, so no re-heapify on restore.
	w.Count(len(h.events))
	for _, e := range h.events {
		w.I64(e.at)
		saveTag(w, e.done.Tag)
	}
	w.Count(len(h.wbs))
	for _, wb := range h.wbs {
		w.U64(wb.id)
		w.U64(uint64(wb.dirty))
	}
	// Retry entries are MSHR members awaiting backend acceptance; store
	// their positions in the mshr slice.
	w.Count(len(h.retryFills))
	for _, e := range h.retryFills {
		idx := -1
		for i, m := range h.mshr {
			if m == e {
				idx = i
				break
			}
		}
		w.Int(idx)
	}
	w.Bool(h.dbi != nil)
	if h.dbi != nil {
		keys := make([]uint64, 0, len(h.dbi))
		for k := range h.dbi {
			keys = append(keys, k)
		}
		slices.Sort(keys)
		w.Count(len(keys))
		for _, k := range keys {
			w.U64(k)
			set := h.dbi[k]
			ids := make([]uint64, 0, len(set))
			for id := range set {
				ids = append(ids, id)
			}
			slices.Sort(ids)
			w.Count(len(ids))
			for _, id := range ids {
				w.U64(id)
			}
		}
		w.Count(len(h.dbiFIFO))
		for _, k := range h.dbiFIFO {
			w.U64(k)
		}
	}
	w.I64(h.now)
}

// RestoreState decodes a SaveState payload. resolve maps the CPU-side
// completion tags (load serials, store completions) held in waiters and
// scheduled events back to live callbacks. It returns a commit that
// installs the state and a resolver mapping line ids back to the fill
// callbacks this hierarchy handed the backend (for the controller's
// restore). On error the hierarchy is untouched. Statistics are not
// restored — the checkpoint contract is that saves happen at the warmup
// boundary where all statistics are freshly reset.
func (h *Hierarchy) RestoreState(r *checkpoint.Reader, resolve func(core.DoneTag) (core.Done, bool)) (func(), func(lineID uint64) (core.Done, bool), error) {
	resolveOrFail := func(tag core.DoneTag) core.Done {
		if tag.Kind != core.DoneLoad && tag.Kind != core.DoneStore {
			r.Fail("cache: completion tag kind %d is not a CPU tag", tag.Kind)
			return core.Done{}
		}
		d, ok := resolve(tag)
		if !ok && r.Err() == nil {
			r.Fail("cache: unresolvable completion tag kind=%d core=%d serial=%d",
				tag.Kind, tag.Core, tag.Serial)
		}
		return d
	}

	commits := make([]func(), 0, len(h.l1)+1)
	for i, l1 := range h.l1 {
		commits = append(commits, restoreLevel(r, l1, "L1."+strconv.Itoa(i)))
	}
	commits = append(commits, restoreLevel(r, h.l2, "L2"))

	nMSHR := r.Count()
	if nMSHR > h.cfg.Cores*h.cfg.MSHRs {
		r.Fail("cache: %d MSHR entries exceed capacity %d", nMSHR, h.cfg.Cores*h.cfg.MSHRs)
		nMSHR = 0
	}
	entries := make([]*missEntry, nMSHR)
	for i := range entries {
		e := &missEntry{}
		e.onFill = func(at int64) { h.fill(e, at) }
		e.id = r.U64()
		e.issued = r.Bool()
		nw := r.Count()
		if nw == 0 && r.Err() == nil {
			r.Fail("cache: MSHR entry %#x with no waiters", e.id)
		}
		e.waiters = make([]waiter, nw)
		for j := range e.waiters {
			tag := readTag(r)
			mask := core.ByteMask(r.U64())
			cid := r.Int()
			if cid < 0 || cid >= h.cfg.Cores {
				r.Fail("cache: waiter core %d of %d", cid, h.cfg.Cores)
				cid = 0
			}
			if r.Err() != nil {
				continue
			}
			e.waiters[j] = waiter{done: resolveOrFail(tag), storeMask: mask, core: cid}
		}
		entries[i] = e
	}
	perCore := make([]int, len(h.mshrPerCore))
	for i := range perCore {
		perCore[i] = r.Int()
		if perCore[i] < 0 || perCore[i] > h.cfg.MSHRs {
			r.Fail("cache: core %d MSHR count %d of %d", i, perCore[i], h.cfg.MSHRs)
		}
	}
	events := make(eventQueue, r.Count())
	for i := range events {
		at := r.I64()
		tag := readTag(r)
		if r.Err() != nil {
			continue
		}
		events[i] = event{at: at, done: resolveOrFail(tag)}
	}
	wbs := make([]pendingWB, r.Count())
	for i := range wbs {
		wbs[i] = pendingWB{id: r.U64(), dirty: core.ByteMask(r.U64())}
	}
	retries := make([]*missEntry, r.Count())
	for i := range retries {
		idx := r.Int()
		if idx < 0 || idx >= len(entries) {
			r.Fail("cache: retry index %d of %d", idx, len(entries))
			continue
		}
		if entries[idx].issued {
			r.Fail("cache: retry entry %#x marked issued", entries[idx].id)
		}
		retries[i] = entries[idx]
	}
	hasDBI := r.Bool()
	if r.Err() == nil && hasDBI != (h.dbi != nil) {
		r.Fail("cache: DBI presence %v, config says %v", hasDBI, h.dbi != nil)
	}
	var dbi map[uint64]map[uint64]struct{}
	var dbiFIFO []uint64
	if hasDBI && r.Err() == nil {
		dbi = make(map[uint64]map[uint64]struct{})
		nk := r.Count()
		for i := 0; i < nk && r.Err() == nil; i++ {
			k := r.U64()
			set := make(map[uint64]struct{})
			ni := r.Count()
			for j := 0; j < ni; j++ {
				set[r.U64()] = struct{}{}
			}
			if len(set) == 0 && r.Err() == nil {
				r.Fail("cache: empty DBI row entry %#x", k)
			}
			dbi[k] = set
		}
		dbiFIFO = make([]uint64, r.Count())
		for i := range dbiFIFO {
			dbiFIFO[i] = r.U64()
		}
	}
	now := r.I64()
	if err := r.Err(); err != nil {
		return nil, nil, err
	}

	fillResolve := func(lineID uint64) (core.Done, bool) {
		// An MSHR entry is the unique in-flight miss for its line, so the
		// line id rebinds unambiguously.
		for _, e := range entries {
			if e.id == lineID && e.issued {
				return h.fillDone(e), true
			}
		}
		return core.Done{}, false
	}

	commit := func() {
		for _, c := range commits {
			c()
		}
		h.mshr = make([]*missEntry, len(entries), h.cfg.Cores*h.cfg.MSHRs)
		copy(h.mshr, entries)
		copy(h.mshrPerCore, perCore)
		h.events = events
		h.wbs = wbs
		h.retryFills = retries
		h.freeMiss = nil
		if h.dbi != nil {
			h.dbi = dbi
			h.dbiFIFO = dbiFIFO
		}
		h.now = now
	}
	return commit, fillResolve, nil
}

// Package cache models the two-level cache hierarchy of the paper's
// baseline system (Table 3): per-core 32KB 4-way L1 data caches and a
// shared 4MB 8-way L2, write-back and write-allocate with LRU replacement,
// extended with the paper's fine-grained dirtiness (FGD) support (Section
// 4.1.4): every line carries a byte-granularity dirty mask, dirty masks are
// OR-merged on L1-to-L2 evictions, and the mask accompanies a dirty L2
// eviction to the memory controller where it becomes the PRA mask.
//
// The hierarchy is non-blocking: misses allocate MSHRs (merging waiters for
// the same line), fills and hit completions are delivered through an event
// queue, and writebacks are buffered until the memory controller accepts
// them. The optional Dirty-Block Index (Seshadri et al., modelled for the
// Figure 15 case study) proactively writes back all dirty L2 lines of a
// DRAM row when any dirty line of that row is evicted.
package cache

import (
	"fmt"
	"slices"

	"pradram/internal/core"
	"pradram/internal/obs"
	"pradram/internal/stats"
)

// Backend is the memory side of the hierarchy (the memory controller).
// Both methods may refuse (queue full); the hierarchy retries every Tick.
type Backend interface {
	// Read requests a line fill; done.Fn is called with the cycle the data
	// arrives. The tag lets a checkpointed backend rebind the callback.
	Read(addr uint64, done core.Done) bool
	// Write enqueues a dirty-line writeback with its FGD byte mask.
	Write(addr uint64, dirty core.ByteMask) bool
}

// Config sizes the hierarchy. Latencies are in CPU cycles.
type Config struct {
	Cores  int
	L1Sets int // 128 sets x 4 ways x 64B = 32KB
	L1Ways int
	L1Lat  int64
	L2Sets int // 8192 sets x 8 ways x 64B = 4MB
	L2Ways int
	L2Lat  int64
	MSHRs  int // outstanding L2 misses per core

	// DBI enables the Dirty-Block-Index proactive writeback. RowKey maps a
	// line address to its DRAM row identity and must be set when DBI is on.
	DBI    bool
	RowKey func(addr uint64) uint64
	// DBIEntries bounds the index to that many DRAM-row entries (the real
	// DBI is a small SRAM structure); inserting beyond capacity evicts
	// the oldest entry and force-writes-back its dirty blocks. Zero means
	// unbounded (an idealized DBI).
	DBIEntries int
}

// DefaultConfig returns the paper's Table 3 hierarchy for n cores.
func DefaultConfig(n int) Config {
	return Config{
		Cores:  n,
		L1Sets: 128, L1Ways: 4, L1Lat: 2,
		L2Sets: 8192, L2Ways: 8, L2Lat: 20,
		MSHRs: 16,
	}
}

// Validate reports the first inconsistency in the configuration.
func (c Config) Validate() error {
	switch {
	case c.Cores <= 0:
		return fmt.Errorf("cache: need at least one core")
	case c.L1Sets <= 0 || c.L1Ways <= 0 || c.L2Sets <= 0 || c.L2Ways <= 0:
		return fmt.Errorf("cache: sets/ways must be positive")
	case c.L1Sets&(c.L1Sets-1) != 0 || c.L2Sets&(c.L2Sets-1) != 0:
		return fmt.Errorf("cache: set counts must be powers of two")
	case c.MSHRs <= 0:
		return fmt.Errorf("cache: MSHRs must be positive")
	case c.DBI && c.RowKey == nil:
		return fmt.Errorf("cache: DBI requires a RowKey function")
	case c.DBIEntries < 0:
		return fmt.Errorf("cache: negative DBI capacity")
	}
	return nil
}

type line struct {
	tag   uint64
	valid bool
	dirty core.ByteMask
}

// invalidTag marks an empty way in level.tags. It cannot collide with a
// real line id: ids are addresses shifted right by 6, so all-ones would
// need an address past 2^63.
const invalidTag = ^uint64(0)

type level struct {
	// lines holds every way of every set in one contiguous slab (set-major).
	// tags mirrors lines[i].tag for valid ways (invalidTag otherwise) and
	// lasts the LRU timestamps, in packed parallel arrays, so the
	// associative scans touch a couple of host cache lines instead of
	// striding through the full line structs.
	lines   []line
	tags    []uint64
	lasts   []int64
	ways    int
	setMask uint64
	tick    int64

	Hits, Misses int64
}

func newLevel(nSets, ways int) *level {
	l := &level{lines: make([]line, nSets*ways), tags: make([]uint64, nSets*ways),
		lasts: make([]int64, nSets*ways), ways: ways, setMask: uint64(nSets - 1)}
	for i := range l.tags {
		l.tags[i] = invalidTag
	}
	return l
}

// index returns the slab index of id's line, or -1 when absent.
// (lineID is the line address, addr >> 6; set index uses its low bits.)
func (l *level) index(id uint64) int {
	base := int(id&l.setMask) * l.ways
	tags := l.tags[base : base+l.ways : base+l.ways]
	for i := range tags {
		if tags[i] == id {
			return base + i
		}
	}
	return -1
}

// lookup returns the line if present, bumping LRU when touch is set.
func (l *level) lookup(id uint64, touch bool) *line {
	i := l.index(id)
	if i < 0 {
		return nil
	}
	ln := &l.lines[i]
	if touch {
		l.tick++
		l.lasts[i] = l.tick
	}
	return ln
}

// victimIdx returns the slab index of the way to replace in id's set (an
// invalid way, else LRU).
func (l *level) victimIdx(id uint64) int {
	base := int(id&l.setMask) * l.ways
	tags := l.tags[base : base+l.ways : base+l.ways]
	v := base
	for i := range tags {
		if tags[i] == invalidTag {
			return base + i
		}
		if l.lasts[base+i] < l.lasts[v] {
			v = base + i
		}
	}
	return v
}

// install places id into the cache, returning the evicted line (valid=false
// in the return when the way was free).
func (l *level) install(id uint64, dirty core.ByteMask) (evicted line) {
	i := l.victimIdx(id)
	evicted = l.lines[i]
	l.tick++
	l.lines[i] = line{tag: id, valid: true, dirty: dirty}
	l.lasts[i] = l.tick
	l.tags[i] = id
	return evicted
}

// invalidate drops the line at slab index i (from index()).
func (l *level) invalidate(i int) {
	l.lines[i].valid = false
	l.tags[i] = invalidTag
}

// event is a scheduled completion callback.
type event struct {
	at   int64
	done core.Done
}

// eventQueue is a binary min-heap on at, hand-rolled over the concrete
// event type so the hot schedule/deliver path pays no interface boxing
// (container/heap allocates per Push) and no dynamic dispatch. The sift
// loops compare and swap in exactly container/heap's order, so same-cycle
// events pop in the same sequence the library heap produced — replacing
// the implementation does not perturb run results.
type eventQueue []event

// push appends e and sifts it up (container/heap.Push + up).
func (q *eventQueue) push(e event) {
	s := append(*q, e)
	j := len(s) - 1
	for j > 0 {
		i := (j - 1) / 2 // parent
		if s[i].at <= s[j].at {
			break
		}
		s[i], s[j] = s[j], s[i]
		j = i
	}
	*q = s
}

// pop removes and returns the minimum (container/heap.Pop: swap root to
// the end, sift the new root down over the shortened prefix, detach).
func (q *eventQueue) pop() event {
	s := *q
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	i := 0
	for {
		j := 2*i + 1
		if j >= n {
			break
		}
		if j2 := j + 1; j2 < n && s[j2].at < s[j].at {
			j = j2
		}
		if s[j].at >= s[i].at {
			break
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
	e := s[n]
	s[n] = event{} // release the callback for GC
	*q = s[:n]
	return e
}

type waiter struct {
	done      core.Done
	storeMask core.ByteMask // nonzero for stores: applied at fill
	core      int
}

type missEntry struct {
	id      uint64
	waiters []waiter
	issued  bool
	next    *missEntry // freelist link while recycled
	// onFill is the backend completion callback bound to this entry for
	// its pooled lifetime: entries recycle through the hierarchy's
	// freelist after fill, so the closure (and the waiters slice backing
	// array) are allocated once per in-flight-miss high-water mark.
	onFill func(at int64)
}

type pendingWB struct {
	id    uint64
	dirty core.ByteMask
}

// Stats aggregates hierarchy-level counters for the experiments.
type Stats struct {
	Loads, Stores    int64
	L1Hits, L1Misses int64
	L2Hits, L2Misses int64
	Writebacks       int64
	DBIProactive     int64
	DBIEvictions     int64
	// DirtyWords histograms dirty words per line at L2 dirty eviction
	// (Figure 3). DirtyChips is the SDS chip-mask equivalent (Section 3).
	DirtyWords *stats.Hist
	DirtyChips *stats.Hist
	DirtyBytes int64 // total dirty bytes written back
}

// Hierarchy is the full two-level cache system.
type Hierarchy struct {
	cfg Config
	mem Backend

	l1 []*level
	l2 *level

	// mshr is the set of outstanding L2 misses. It is a packed slice
	// rather than a map: occupancy is bounded by Cores*MSHRs, so a linear
	// scan beats hashing, and since nothing iterates it the swap-remove
	// ordering cannot influence simulation order.
	mshr        []*missEntry
	mshrPerCore []int
	events      eventQueue
	wbs         []pendingWB
	retryFills  []*missEntry
	freeMiss    *missEntry // missEntry freelist

	dbi     map[uint64]map[uint64]struct{} // rowKey -> dirty L2 line ids
	dbiFIFO []uint64                       // insertion order (lazy deletion)

	// Events, when non-nil, receives structured state events (DBI sweeps,
	// bounded-DBI force writebacks) stamped with the CPU cycle of the last
	// Tick/access. Emission is guarded by the nil-safe Enabled check, so
	// the disabled cost is one pointer compare.
	Events *obs.EventLog
	now    int64

	Stats Stats
}

// New builds a hierarchy over the given memory backend.
func New(cfg Config, mem Backend) (*Hierarchy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if mem == nil {
		return nil, fmt.Errorf("cache: nil backend")
	}
	h := &Hierarchy{
		cfg:         cfg,
		mem:         mem,
		l2:          newLevel(cfg.L2Sets, cfg.L2Ways),
		mshr:        make([]*missEntry, 0, cfg.Cores*cfg.MSHRs),
		mshrPerCore: make([]int, cfg.Cores),
	}
	h.l1 = make([]*level, cfg.Cores)
	for i := range h.l1 {
		h.l1[i] = newLevel(cfg.L1Sets, cfg.L1Ways)
	}
	if cfg.DBI {
		h.dbi = make(map[uint64]map[uint64]struct{})
	}
	h.Stats.DirtyWords = stats.NewHist(core.WordsPerLine)
	h.Stats.DirtyChips = stats.NewHist(core.BytesPerWord)
	return h, nil
}

func lineID(addr uint64) uint64 { return addr >> 6 }

// Load issues a load. Returns false when the core's MSHRs are exhausted
// (the core must retry next cycle). done is called with the completion
// cycle exactly once.
func (h *Hierarchy) Load(coreID int, addr uint64, now int64, done core.Done) bool {
	return h.access(coreID, addr, now, 0, done)
}

// Store issues a store of the given dirty byte mask (write-allocate).
// Returns false when the core's MSHRs are exhausted.
func (h *Hierarchy) Store(coreID int, addr uint64, mask core.ByteMask, now int64, done core.Done) bool {
	if mask == 0 {
		mask = core.StoreBytes(int(addr&63), 1)
	}
	return h.access(coreID, addr, now, mask, done)
}

func (h *Hierarchy) access(coreID int, addr uint64, now int64, storeMask core.ByteMask, done core.Done) bool {
	id := lineID(addr)
	isStore := storeMask != 0
	if isStore {
		h.Stats.Stores++
	} else {
		h.Stats.Loads++
	}

	// L1.
	if ln := h.l1[coreID].lookup(id, true); ln != nil {
		h.Stats.L1Hits++
		ln.dirty |= storeMask
		if storeMask != 0 {
			h.dbiMark(id)
		}
		h.schedule(now+h.cfg.L1Lat, done)
		return true
	}
	h.Stats.L1Misses++

	// L2.
	if ln := h.l2.lookup(id, true); ln != nil {
		h.Stats.L2Hits++
		h.fillL1(coreID, id, storeMask)
		h.schedule(now+h.cfg.L1Lat+h.cfg.L2Lat, done)
		return true
	}
	h.Stats.L2Misses++

	// MSHR merge.
	for _, e := range h.mshr {
		if e.id == id {
			e.waiters = append(e.waiters, waiter{done: done, storeMask: storeMask, core: coreID})
			return true
		}
	}
	if h.mshrPerCore[coreID] >= h.cfg.MSHRs {
		// Un-count: the access will be retried by the core.
		if isStore {
			h.Stats.Stores--
		} else {
			h.Stats.Loads--
		}
		h.Stats.L1Misses--
		h.Stats.L2Misses--
		return false
	}
	e := h.allocMiss()
	e.id = id
	e.waiters = append(e.waiters, waiter{done: done, storeMask: storeMask, core: coreID})
	h.mshr = append(h.mshr, e)
	h.mshrPerCore[coreID]++
	h.issueFill(e)
	return true
}

func (h *Hierarchy) allocMiss() *missEntry {
	e := h.freeMiss
	if e == nil {
		e = &missEntry{}
		e.onFill = func(at int64) { h.fill(e, at) }
	} else {
		h.freeMiss = e.next
		e.next = nil
	}
	return e
}

// fillDone builds the tagged completion the backend holds for e's fill.
// The line id is the checkpoint identity: an MSHR entry is the unique
// in-flight miss for its line, so (DoneFill, id) rebinds unambiguously.
func (h *Hierarchy) fillDone(e *missEntry) core.Done {
	return core.Done{Fn: e.onFill, Tag: core.DoneTag{Kind: core.DoneFill, Serial: e.id}}
}

func (h *Hierarchy) issueFill(e *missEntry) {
	addr := e.id << 6
	ok := h.mem.Read(addr, h.fillDone(e))
	if !ok {
		h.retryFills = append(h.retryFills, e)
		return
	}
	e.issued = true
}

// fill completes an L2 miss: install in L2 and the first waiter's L1, wake
// all waiters.
func (h *Hierarchy) fill(e *missEntry, at int64) {
	for i, m := range h.mshr {
		if m == e {
			last := len(h.mshr) - 1
			h.mshr[i] = h.mshr[last]
			h.mshr[last] = nil
			h.mshr = h.mshr[:last]
			break
		}
	}
	h.mshrPerCore[e.waiters[0].core]--

	h.installL2(e.id, 0)
	for _, w := range e.waiters {
		h.fillL1(w.core, e.id, w.storeMask)
	}
	for _, w := range e.waiters {
		w.done.Fn(at)
	}
	// Recycle: the backend calls onFill exactly once, so the entry is dead
	// here. Clearing waiter slots drops callback references for the GC;
	// the backing array is kept.
	for i := range e.waiters {
		e.waiters[i] = waiter{}
	}
	e.waiters = e.waiters[:0]
	e.issued = false
	e.next = h.freeMiss
	h.freeMiss = e
}

// fillL1 installs id into coreID's L1 with the store mask applied, merging
// any dirty victim's mask down into L2.
func (h *Hierarchy) fillL1(coreID int, id uint64, storeMask core.ByteMask) {
	ev := h.l1[coreID].install(id, storeMask)
	if storeMask != 0 {
		// The DBI tracks dirtiness anywhere in the hierarchy, so a store
		// that dirties an L1 line indexes immediately.
		h.dbiMark(id)
	}
	if !ev.valid || ev.dirty == 0 {
		return
	}
	if ln := h.l2.lookup(ev.tag, false); ln != nil {
		wasClean := ln.dirty == 0
		ln.dirty |= ev.dirty
		if wasClean {
			h.dbiMark(ev.tag)
		}
		return
	}
	// Inclusion violation shouldn't happen (L2 evictions invalidate L1
	// copies), but write the data back rather than lose it.
	h.queueWB(ev.tag, ev.dirty)
}

// installL2 places a line in the L2, handling the eviction cascade.
func (h *Hierarchy) installL2(id uint64, dirty core.ByteMask) {
	ev := h.l2.install(id, dirty)
	if dirty != 0 {
		h.dbiMark(id)
	}
	if !ev.valid {
		return
	}
	// Enforce inclusion: pull dirty bits from (and invalidate) L1 copies.
	mask := ev.dirty
	for _, l1 := range h.l1 {
		if i := l1.index(ev.tag); i >= 0 {
			mask |= l1.lines[i].dirty
			l1.invalidate(i)
		}
	}
	h.dbiUnmark(ev.tag)
	if mask == 0 {
		return
	}
	h.recordEviction(mask)
	h.queueWB(ev.tag, mask)
	h.dbiSweep(ev.tag)
}

// recordEviction logs the Figure-3 / Section-3 dirtiness of a line headed
// to DRAM.
func (h *Hierarchy) recordEviction(mask core.ByteMask) {
	h.Stats.Writebacks++
	h.Stats.DirtyWords.Add(mask.WordMask().Granularity())
	h.Stats.DirtyChips.Add(mask.ChipMask().Granularity())
	h.Stats.DirtyBytes += int64(mask.DirtyBytes())
}

func (h *Hierarchy) queueWB(id uint64, dirty core.ByteMask) {
	if h.mem.Write(id<<6, dirty) {
		return
	}
	h.wbs = append(h.wbs, pendingWB{id: id, dirty: dirty})
}

// --- DBI ---

func (h *Hierarchy) rowKey(id uint64) uint64 { return h.cfg.RowKey(id << 6) }

func (h *Hierarchy) dbiMark(id uint64) {
	if h.dbi == nil {
		return
	}
	k := h.rowKey(id)
	set, ok := h.dbi[k]
	if !ok {
		// A bounded DBI evicts its oldest row entry to make room; the
		// evicted entry's dirty blocks are force-written-back (they lose
		// their index coverage, so the structure writes them out — the
		// behaviour of Seshadri et al.'s design).
		if h.cfg.DBIEntries > 0 {
			for len(h.dbi) >= h.cfg.DBIEntries && len(h.dbiFIFO) > 0 {
				victim := h.dbiFIFO[0]
				h.dbiFIFO = h.dbiFIFO[1:]
				if _, live := h.dbi[victim]; !live {
					continue // lazily-deleted entry
				}
				h.Stats.DBIEvictions++
				if h.Events.Enabled(obs.LevelState) {
					h.Events.Emit(obs.Event{Cycle: h.now, Level: obs.LevelState, Scope: "cache",
						Kind: "dbi-evict", Detail: fmt.Sprintf("row key %#x force-written-back (DBI full)", victim)})
				}
				h.dbiSweepKey(victim)
			}
		}
		set = make(map[uint64]struct{})
		h.dbi[k] = set
		h.dbiFIFO = append(h.dbiFIFO, k)
	}
	set[id] = struct{}{}
}

func (h *Hierarchy) dbiUnmark(id uint64) {
	if h.dbi == nil {
		return
	}
	k := h.rowKey(id)
	if set, ok := h.dbi[k]; ok {
		delete(set, id)
		if len(set) == 0 {
			delete(h.dbi, k)
		}
	}
}

// dbiSweep proactively writes back (and cleans in place) every dirty L2
// line that shares evictedID's DRAM row.
func (h *Hierarchy) dbiSweep(evictedID uint64) {
	if h.dbi == nil {
		return
	}
	h.dbiSweepKey(h.rowKey(evictedID))
}

// dbiSweepKey writes back all indexed dirty lines of one DRAM row.
func (h *Hierarchy) dbiSweepKey(k uint64) {
	set, ok := h.dbi[k]
	if !ok {
		return
	}
	// Sweep in ascending line order: map iteration order is randomized, and
	// the writeback sequence reaching the controller must be deterministic
	// for runs to be reproducible bit-for-bit.
	ids := make([]uint64, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	swept := 0
	for _, id := range ids {
		ln := h.l2.lookup(id, false)
		if ln == nil {
			continue
		}
		// Dirtiness may live in L2, in an L1 copy, or both; merge all of
		// it so the writeback carries every dirty byte.
		mask := ln.dirty
		for _, l1 := range h.l1 {
			if l1ln := l1.lookup(id, false); l1ln != nil {
				mask |= l1ln.dirty
				l1ln.dirty = 0
			}
		}
		if mask == 0 {
			continue
		}
		ln.dirty = 0
		h.Stats.DBIProactive++
		swept++
		h.recordEviction(mask)
		h.queueWB(id, mask)
	}
	delete(h.dbi, k)
	if swept > 0 && h.Events.Enabled(obs.LevelState) {
		h.Events.Emit(obs.Event{Cycle: h.now, Level: obs.LevelState, Scope: "cache",
			Kind: "dbi-sweep", Detail: fmt.Sprintf("row key %#x: %d proactive writebacks", k, swept)})
	}
}

// --- event processing ---

func (h *Hierarchy) schedule(at int64, done core.Done) {
	h.events.push(event{at: at, done: done})
}

// Tick delivers due completions and retries refused backend operations.
// Call once per CPU cycle.
func (h *Hierarchy) Tick(now int64) {
	h.now = now
	for len(h.events) > 0 && h.events[0].at <= now {
		e := h.events.pop()
		e.done.Fn(e.at)
	}
	if len(h.retryFills) > 0 {
		keep := h.retryFills[:0]
		for _, e := range h.retryFills {
			addr := e.id << 6
			if h.mem.Read(addr, h.fillDone(e)) {
				e.issued = true
			} else {
				keep = append(keep, e)
			}
		}
		h.retryFills = keep
	}
	if len(h.wbs) > 0 {
		// Drain in FIFO order, stopping at the first refusal: when the
		// controller's write queue is full, everything behind the head
		// would be refused too, and rescanning a long backlog every tick
		// turns write bursts (e.g. DBI sweeps) quadratic.
		i := 0
		for ; i < len(h.wbs); i++ {
			if !h.mem.Write(h.wbs[i].id<<6, h.wbs[i].dirty) {
				break
			}
		}
		if i > 0 {
			h.wbs = append(h.wbs[:0], h.wbs[i:]...)
		}
	}
}

// ResetStats zeroes the hierarchy counters and histograms; cache contents
// are untouched. Used to exclude warmup from measurement.
func (h *Hierarchy) ResetStats() {
	h.Stats = Stats{
		DirtyWords: stats.NewHist(core.WordsPerLine),
		DirtyChips: stats.NewHist(core.BytesPerWord),
	}
}

// NextEvent reports the earliest CPU cycle at which the hierarchy's state
// can change without new input: the head of the completion-event heap, or
// the very next cycle while refused backend operations (fill retries,
// buffered writebacks) are pending — those retry every Tick, and each
// attempt bumps the controller's reject counters, so skipping them would
// be observable. In-flight misses whose fill was accepted need no entry
// here: their timing is owned by the controller, whose own NextEvent
// covers it. With nothing in flight it reports FarFuture.
func (h *Hierarchy) NextEvent(now int64) int64 {
	if len(h.retryFills) > 0 || len(h.wbs) > 0 {
		return now + 1
	}
	if len(h.events) > 0 {
		if at := h.events[0].at; at > now {
			return at
		}
		return now + 1
	}
	return core.FarFuture
}

// Drain returns whether any miss, event, or writeback is still in flight.
func (h *Hierarchy) Drain() bool {
	return len(h.mshr) > 0 || len(h.events) > 0 || len(h.wbs) > 0 || len(h.retryFills) > 0
}

// FlushDirty writes back every dirty line (L1 merged into L2 first). Used
// by the Figure 3 experiment so short runs account lines still resident at
// the end. It records eviction statistics exactly like natural evictions.
func (h *Hierarchy) FlushDirty() {
	for _, l1 := range h.l1 {
		// The slab is set-major, so this flat walk visits lines in the same
		// set-then-way order the per-set loops did.
		for wi := range l1.lines {
			ln := &l1.lines[wi]
			if !ln.valid || ln.dirty == 0 {
				continue
			}
			if l2ln := h.l2.lookup(ln.tag, false); l2ln != nil {
				wasClean := l2ln.dirty == 0
				l2ln.dirty |= ln.dirty
				if wasClean {
					h.dbiMark(ln.tag)
				}
			} else {
				h.recordEviction(ln.dirty)
				h.queueWB(ln.tag, ln.dirty)
			}
			ln.dirty = 0
		}
	}
	for wi := range h.l2.lines {
		ln := &h.l2.lines[wi]
		if !ln.valid || ln.dirty == 0 {
			continue
		}
		h.recordEviction(ln.dirty)
		h.queueWB(ln.tag, ln.dirty)
		h.dbiUnmark(ln.tag)
		ln.dirty = 0
	}
}

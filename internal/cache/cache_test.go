package cache

import (
	"testing"

	"pradram/internal/core"
)

// fakeMem is a controllable backend: it records requests and lets tests
// complete fills explicitly.
type fakeMem struct {
	reads  []uint64
	writes []struct {
		addr uint64
		mask core.ByteMask
	}
	fills       []func(at int64)
	acceptRead  bool
	acceptWrite bool
}

func newFakeMem() *fakeMem { return &fakeMem{acceptRead: true, acceptWrite: true} }

func (m *fakeMem) Read(addr uint64, done core.Done) bool {
	if !m.acceptRead {
		return false
	}
	m.reads = append(m.reads, addr)
	m.fills = append(m.fills, done.Fn)
	return true
}

func (m *fakeMem) Write(addr uint64, mask core.ByteMask) bool {
	if !m.acceptWrite {
		return false
	}
	m.writes = append(m.writes, struct {
		addr uint64
		mask core.ByteMask
	}{addr, mask})
	return true
}

func (m *fakeMem) fillAll(at int64) {
	fills := m.fills
	m.fills = nil
	for _, f := range fills {
		f(at)
	}
}

func newTestHierarchy(t *testing.T, cfg Config) (*Hierarchy, *fakeMem) {
	t.Helper()
	mem := newFakeMem()
	h, err := New(cfg, mem)
	if err != nil {
		t.Fatal(err)
	}
	return h, mem
}

func smallConfig() Config {
	c := DefaultConfig(2)
	c.L1Sets, c.L1Ways = 4, 2
	c.L2Sets, c.L2Ways = 16, 2
	c.MSHRs = 4
	return c
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(4)
	if err := good.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := good
	bad.Cores = 0
	if bad.Validate() == nil {
		t.Error("zero cores must fail")
	}
	bad = good
	bad.L1Sets = 100 // not a power of two
	if bad.Validate() == nil {
		t.Error("non-power-of-two sets must fail")
	}
	bad = good
	bad.MSHRs = 0
	if bad.Validate() == nil {
		t.Error("zero MSHRs must fail")
	}
	bad = good
	bad.DBI = true
	if bad.Validate() == nil {
		t.Error("DBI without RowKey must fail")
	}
	if _, err := New(good, nil); err == nil {
		t.Error("nil backend must fail")
	}
}

func TestL1HitLatency(t *testing.T) {
	h, mem := newTestHierarchy(t, smallConfig())
	var doneAt int64 = -1
	if !h.Load(0, 0x1000, 0, core.Untagged(func(at int64) { doneAt = at })) {
		t.Fatal("load refused")
	}
	mem.fillAll(30)
	if doneAt != 30 {
		t.Fatalf("miss completion at %d, want 30", doneAt)
	}
	// Second load hits L1 after L1Lat.
	doneAt = -1
	if !h.Load(0, 0x1000, 100, core.Untagged(func(at int64) { doneAt = at })) {
		t.Fatal("load refused")
	}
	h.Tick(100 + h.cfg.L1Lat)
	if doneAt != 100+h.cfg.L1Lat {
		t.Errorf("L1 hit at %d, want %d", doneAt, 100+h.cfg.L1Lat)
	}
	if h.Stats.L1Hits != 1 || h.Stats.L1Misses != 1 {
		t.Errorf("L1 stats = %d/%d, want 1/1", h.Stats.L1Hits, h.Stats.L1Misses)
	}
}

func TestL2HitFromOtherCore(t *testing.T) {
	h, mem := newTestHierarchy(t, smallConfig())
	h.Load(0, 0x2000, 0, core.Untagged(func(int64) {}))
	mem.fillAll(30)
	// Core 1 misses L1 but hits the shared L2.
	var doneAt int64 = -1
	h.Load(1, 0x2000, 50, core.Untagged(func(at int64) { doneAt = at }))
	want := 50 + h.cfg.L1Lat + h.cfg.L2Lat
	h.Tick(want)
	if doneAt != want {
		t.Errorf("L2 hit at %d, want %d", doneAt, want)
	}
	if h.Stats.L2Hits != 1 {
		t.Errorf("L2 hits = %d, want 1", h.Stats.L2Hits)
	}
	if len(mem.reads) != 1 {
		t.Errorf("backend reads = %d, want 1", len(mem.reads))
	}
}

func TestMSHRMerging(t *testing.T) {
	h, mem := newTestHierarchy(t, smallConfig())
	done := 0
	h.Load(0, 0x3000, 0, core.Untagged(func(int64) { done++ }))
	h.Load(1, 0x3000, 1, core.Untagged(func(int64) { done++ }))
	if len(mem.reads) != 1 {
		t.Fatalf("merged misses issued %d reads, want 1", len(mem.reads))
	}
	mem.fillAll(40)
	if done != 2 {
		t.Errorf("completions = %d, want 2", done)
	}
}

func TestMSHRLimit(t *testing.T) {
	cfg := smallConfig()
	cfg.MSHRs = 2
	h, _ := newTestHierarchy(t, cfg)
	if !h.Load(0, 0x0000, 0, core.Untagged(func(int64) {})) || !h.Load(0, 0x4000, 0, core.Untagged(func(int64) {})) {
		t.Fatal("first two misses must be accepted")
	}
	if h.Load(0, 0x8000, 0, core.Untagged(func(int64) {})) {
		t.Error("third miss must be refused (MSHRs full)")
	}
	// Another core has its own budget.
	if !h.Load(1, 0x8000, 0, core.Untagged(func(int64) {})) {
		t.Error("other core's miss must be accepted")
	}
	// Stats must not double-count the refused access.
	if h.Stats.Loads != 3 {
		t.Errorf("loads = %d, want 3", h.Stats.Loads)
	}
}

func TestStoreDirtyPropagation(t *testing.T) {
	h, mem := newTestHierarchy(t, smallConfig())
	mask := core.StoreBytes(8, 8) // word 1
	h.Store(0, 0x5000, mask, 0, core.Untagged(func(int64) {}))
	mem.fillAll(30)
	ln := h.l1[0].lookup(lineID(0x5000), false)
	if ln == nil || ln.dirty != mask {
		t.Fatal("store must dirty the L1 line with its byte mask")
	}
	// A second store widens the mask.
	h.Store(0, 0x5000+16, core.StoreBytes(16, 4), 50, core.Untagged(func(int64) {}))
	if ln.dirty != mask|core.StoreBytes(16, 4) {
		t.Error("second store must OR into the dirty mask")
	}
}

func TestStoreZeroMaskDefaultsToOneByte(t *testing.T) {
	h, mem := newTestHierarchy(t, smallConfig())
	h.Store(0, 0x7008, 0, 0, core.Untagged(func(int64) {}))
	mem.fillAll(10)
	ln := h.l1[0].lookup(lineID(0x7008), false)
	if ln == nil || ln.dirty.DirtyBytes() != 1 {
		t.Error("zero-mask store must dirty one byte")
	}
}

// Force an L1 eviction and check FGD merge into L2 (Section 4.1.4: "its
// dirty bits are ORed with the dirty bits of the corresponding cache line
// in the L2 cache").
func TestL1EvictionMergesFGDIntoL2(t *testing.T) {
	cfg := smallConfig() // L1: 4 sets x 2 ways
	h, mem := newTestHierarchy(t, cfg)
	// Three lines in the same L1 set (stride = sets*64 = 256B).
	m1 := core.StoreBytes(0, 8)
	h.Store(0, 0x0000, m1, 0, core.Untagged(func(int64) {}))
	h.Load(0, 0x0100, 1, core.Untagged(func(int64) {}))
	h.Load(0, 0x0200, 2, core.Untagged(func(int64) {})) // evicts 0x0000 from L1
	mem.fillAll(30)
	// L1 installs happen at fill; the dirty line is evicted during one of
	// them. Its mask must now be in L2.
	h.Load(0, 0x0300, 40, core.Untagged(func(int64) {}))
	mem.fillAll(80)
	l2ln := h.l2.lookup(lineID(0x0000), false)
	if l2ln == nil {
		t.Fatal("line must be resident in L2")
	}
	if l2ln.dirty != m1 {
		t.Errorf("L2 dirty mask = %v, want %v", l2ln.dirty, m1)
	}
}

// Force an L2 eviction of a dirty line and check the writeback carries the
// merged FGD mask and is recorded in the Figure-3 histogram.
func TestL2DirtyEvictionWritesBack(t *testing.T) {
	cfg := smallConfig() // L2: 16 sets x 2 ways
	h, mem := newTestHierarchy(t, cfg)
	stride := uint64(cfg.L2Sets * 64)
	m := core.StoreBytes(0, 16) // words 0,1
	h.Store(0, 0, m, 0, core.Untagged(func(int64) {}))
	mem.fillAll(10)
	// Fill the same L2 set with two more lines (same L1 set too, but L1
	// merge path is exercised by the earlier test).
	h.Load(0, stride, 20, core.Untagged(func(int64) {}))
	mem.fillAll(30)
	h.Load(0, 2*stride, 40, core.Untagged(func(int64) {}))
	mem.fillAll(50) // evicts line 0 from L2
	if len(mem.writes) != 1 {
		t.Fatalf("writebacks = %d, want 1", len(mem.writes))
	}
	if mem.writes[0].addr != 0 || mem.writes[0].mask != m {
		t.Errorf("writeback = %+v, want addr 0 mask %v", mem.writes[0], m)
	}
	if h.Stats.DirtyWords.N != 1 || h.Stats.DirtyWords.Buckets[2] != 1 {
		t.Error("Figure-3 histogram must record a 2-dirty-word line")
	}
	if h.Stats.DirtyChips.Buckets[8] != 1 {
		t.Error("SDS chip histogram must record 8 chips (two full words)")
	}
	if h.Stats.DirtyBytes != 16 {
		t.Errorf("dirty bytes = %d, want 16", h.Stats.DirtyBytes)
	}
}

// L2 eviction of a line still dirty in an L1 must pull the L1 dirty bits
// into the writeback (inclusion enforcement).
func TestL2EvictionInvalidatesAndMergesL1(t *testing.T) {
	cfg := smallConfig()
	h, mem := newTestHierarchy(t, cfg)
	stride := uint64(cfg.L2Sets * 64)
	m := core.StoreBytes(24, 8) // word 3
	h.Store(0, 0, m, 0, core.Untagged(func(int64) {}))
	mem.fillAll(10)
	h.Load(1, stride, 20, core.Untagged(func(int64) {}))
	mem.fillAll(30)
	h.Load(1, 2*stride, 40, core.Untagged(func(int64) {}))
	mem.fillAll(50) // evicts line 0 from L2 while core 0's L1 still has it dirty
	if ln := h.l1[0].lookup(0, false); ln != nil {
		t.Error("L1 copy must be invalidated on L2 eviction")
	}
	if len(mem.writes) != 1 || mem.writes[0].mask != m {
		t.Fatalf("writeback must carry the L1 dirty mask, got %+v", mem.writes)
	}
}

func TestBackendRefusalRetried(t *testing.T) {
	h, mem := newTestHierarchy(t, smallConfig())
	mem.acceptRead = false
	done := false
	h.Load(0, 0x9000, 0, core.Untagged(func(int64) { done = true }))
	if len(mem.reads) != 0 {
		t.Fatal("read must have been refused")
	}
	h.Tick(1)
	if len(mem.reads) != 0 {
		t.Fatal("still refused")
	}
	mem.acceptRead = true
	h.Tick(2)
	if len(mem.reads) != 1 {
		t.Fatal("retry must reach the backend once accepted")
	}
	mem.fillAll(60)
	if !done {
		t.Error("fill must complete the waiter")
	}
}

func TestWritebackRefusalRetried(t *testing.T) {
	cfg := smallConfig()
	h, mem := newTestHierarchy(t, cfg)
	stride := uint64(cfg.L2Sets * 64)
	h.Store(0, 0, core.StoreBytes(0, 8), 0, core.Untagged(func(int64) {}))
	mem.fillAll(10)
	mem.acceptWrite = false
	h.Load(0, stride, 20, core.Untagged(func(int64) {}))
	mem.fillAll(30)
	h.Load(0, 2*stride, 40, core.Untagged(func(int64) {}))
	mem.fillAll(50)
	if len(mem.writes) != 0 {
		t.Fatal("write must have been refused")
	}
	if !h.Drain() {
		t.Error("hierarchy must report in-flight writebacks")
	}
	mem.acceptWrite = true
	h.Tick(60)
	if len(mem.writes) != 1 {
		t.Error("writeback must be retried")
	}
}

func TestDBISweep(t *testing.T) {
	cfg := smallConfig()
	cfg.DBI = true
	// Row = 128 consecutive lines (8KB).
	cfg.RowKey = func(addr uint64) uint64 { return addr >> 13 }
	h, mem := newTestHierarchy(t, cfg)
	// Dirty two lines of the same DRAM row that live in different L2 sets.
	h.Store(0, 0x0000, core.StoreBytes(0, 8), 0, core.Untagged(func(int64) {}))
	h.Store(0, 0x0040, core.StoreBytes(0, 8), 1, core.Untagged(func(int64) {}))
	mem.fillAll(10)
	// Evict line 0 from L2 by filling its set.
	stride := uint64(cfg.L2Sets * 64)
	h.Load(0, stride, 20, core.Untagged(func(int64) {}))
	mem.fillAll(30)
	h.Load(0, 2*stride, 40, core.Untagged(func(int64) {}))
	mem.fillAll(50)
	// Both the evicted line and its row-mate must be written back.
	if len(mem.writes) != 2 {
		t.Fatalf("writebacks = %d, want 2 (eviction + DBI sweep)", len(mem.writes))
	}
	if h.Stats.DBIProactive != 1 {
		t.Errorf("DBI proactive writebacks = %d, want 1", h.Stats.DBIProactive)
	}
	// The swept line stays resident but clean.
	ln := h.l2.lookup(lineID(0x0040), false)
	if ln == nil || ln.dirty != 0 {
		t.Error("swept line must remain resident and clean")
	}
}

func TestFlushDirty(t *testing.T) {
	h, mem := newTestHierarchy(t, smallConfig())
	h.Store(0, 0x100, core.StoreBytes(0, 8), 0, core.Untagged(func(int64) {}))
	h.Store(1, 0x200, core.StoreBytes(8, 8), 0, core.Untagged(func(int64) {}))
	mem.fillAll(10)
	h.FlushDirty()
	if len(mem.writes) != 2 {
		t.Fatalf("flush writebacks = %d, want 2", len(mem.writes))
	}
	if h.Stats.DirtyWords.N != 2 {
		t.Errorf("flush must record histogram entries, got %d", h.Stats.DirtyWords.N)
	}
	// A second flush writes nothing (all clean).
	h.FlushDirty()
	if len(mem.writes) != 2 {
		t.Error("second flush must be a no-op")
	}
}

func TestLRUReplacement(t *testing.T) {
	l := newLevel(1, 2)
	l.install(1, 0)
	l.install(2, 0)
	l.lookup(1, true) // make 1 MRU
	ev := l.install(3, 0)
	if !ev.valid || ev.tag != 2 {
		t.Errorf("LRU victim = %+v, want tag 2", ev)
	}
	if l.lookup(1, false) == nil || l.lookup(3, false) == nil {
		t.Error("lines 1 and 3 must be resident")
	}
}

func TestDrainReflectsState(t *testing.T) {
	h, mem := newTestHierarchy(t, smallConfig())
	if h.Drain() {
		t.Error("fresh hierarchy must be drained")
	}
	h.Load(0, 0xA000, 0, core.Untagged(func(int64) {}))
	if !h.Drain() {
		t.Error("outstanding miss must report undrained")
	}
	mem.fillAll(30)
	if h.Drain() {
		t.Error("after fill the hierarchy must be drained")
	}
}

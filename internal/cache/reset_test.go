package cache

import (
	"testing"

	"pradram/internal/core"
)

func TestResetStatsKeepsContents(t *testing.T) {
	h, mem := newTestHierarchy(t, smallConfig())
	h.Store(0, 0x100, core.StoreBytes(0, 8), 0, core.Untagged(func(int64) {}))
	mem.fillAll(10)
	if h.Stats.Stores != 1 {
		t.Fatal("store not counted")
	}
	h.ResetStats()
	if h.Stats.Stores != 0 || h.Stats.L1Misses != 0 {
		t.Error("ResetStats must zero counters")
	}
	if h.Stats.DirtyWords == nil || h.Stats.DirtyWords.N != 0 {
		t.Error("ResetStats must produce fresh histograms")
	}
	// The line (and its dirty bytes) must survive the reset.
	done := false
	h.Load(0, 0x100, 20, core.Untagged(func(int64) { done = true }))
	h.Tick(20 + h.cfg.L1Lat)
	if !done {
		t.Fatal("line must still be resident (L1 hit)")
	}
	if h.Stats.L1Hits != 1 {
		t.Error("post-reset hit must be counted from zero")
	}
}

func TestDirtyBitsSurviveReset(t *testing.T) {
	cfg := smallConfig()
	h, mem := newTestHierarchy(t, cfg)
	m := core.StoreBytes(0, 8)
	h.Store(0, 0, m, 0, core.Untagged(func(int64) {}))
	mem.fillAll(10)
	h.ResetStats()
	h.FlushDirty()
	if len(mem.writes) != 1 || mem.writes[0].mask != m {
		t.Fatalf("dirty mask must survive stats reset: %+v", mem.writes)
	}
}

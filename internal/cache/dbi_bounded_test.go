package cache

import (
	"testing"

	"pradram/internal/core"
)

func TestBoundedDBIEvicts(t *testing.T) {
	cfg := smallConfig()
	cfg.DBI = true
	cfg.DBIEntries = 2
	cfg.RowKey = func(addr uint64) uint64 { return addr >> 13 } // 8KB rows
	h, mem := newTestHierarchy(t, cfg)
	// Dirty lines in three distinct DRAM rows (offset into distinct cache
	// sets so no natural L2 eviction interferes): inserting the third row
	// entry must evict the oldest and force-write-back its dirty block.
	h.Store(0, 0*8192+0*64, core.StoreBytes(0, 8), 0, core.Untagged(func(int64) {}))
	h.Store(0, 1*8192+1*64, core.StoreBytes(0, 8), 1, core.Untagged(func(int64) {}))
	mem.fillAll(10)
	if h.Stats.DBIEvictions != 0 {
		t.Fatal("no eviction before capacity reached")
	}
	h.Store(0, 2*8192+2*64, core.StoreBytes(0, 8), 20, core.Untagged(func(int64) {}))
	mem.fillAll(30)
	if h.Stats.DBIEvictions != 1 {
		t.Fatalf("DBI evictions = %d, want 1", h.Stats.DBIEvictions)
	}
	// The evicted row's dirty block was written back and cleaned.
	if len(mem.writes) != 1 || mem.writes[0].addr != 0 {
		t.Fatalf("forced writeback missing: %+v", mem.writes)
	}
	if ln := h.l2.lookup(lineID(0), false); ln == nil || ln.dirty != 0 {
		t.Error("evicted-entry line must stay resident but clean")
	}
}

func TestBoundedDBILazyDeletion(t *testing.T) {
	cfg := smallConfig()
	cfg.DBI = true
	cfg.DBIEntries = 2
	cfg.RowKey = func(addr uint64) uint64 { return addr >> 13 }
	h, mem := newTestHierarchy(t, cfg)
	// Mark row 0, then clean it via FlushDirty (entry becomes stale in
	// the FIFO), then fill two new rows: no spurious eviction of live
	// entries beyond the one needed.
	h.Store(0, 0, core.StoreBytes(0, 8), 0, core.Untagged(func(int64) {}))
	mem.fillAll(5)
	h.FlushDirty() // row 0 cleaned, dbi entry removed, FIFO key stale
	h.Store(0, 1*8192, core.StoreBytes(0, 8), 10, core.Untagged(func(int64) {}))
	h.Store(0, 2*8192, core.StoreBytes(0, 8), 11, core.Untagged(func(int64) {}))
	mem.fillAll(20)
	if h.Stats.DBIEvictions != 0 {
		t.Errorf("stale FIFO entries must not trigger evictions, got %d", h.Stats.DBIEvictions)
	}
	if len(h.dbi) != 2 {
		t.Errorf("live DBI entries = %d, want 2", len(h.dbi))
	}
}

func TestDBIConfigValidation(t *testing.T) {
	cfg := smallConfig()
	cfg.DBI = true
	cfg.RowKey = func(addr uint64) uint64 { return addr >> 13 }
	cfg.DBIEntries = -1
	if cfg.Validate() == nil {
		t.Error("negative DBI capacity must fail")
	}
}

package cache

import (
	"math/rand"
	"testing"
)

// Golden-reference check: the level's LRU replacement must agree with a
// brute-force model that tracks exact recency order per set.
func TestLRUGoldenReference(t *testing.T) {
	const sets, ways = 8, 4
	l := newLevel(sets, ways)
	// reference[set] holds resident ids, most recent last.
	reference := make([][]uint64, sets)
	rng := rand.New(rand.NewSource(3))

	touch := func(ref []uint64, id uint64) []uint64 {
		for i, v := range ref {
			if v == id {
				return append(append(ref[:i:i], ref[i+1:]...), id)
			}
		}
		return ref
	}

	for i := 0; i < 20000; i++ {
		id := uint64(rng.Intn(64)) // ids collide across sets
		set := int(id % sets)
		ref := reference[set]

		if ln := l.lookup(id, true); ln != nil {
			// Hit: reference must agree it is resident.
			found := false
			for _, v := range ref {
				if v == id {
					found = true
				}
			}
			if !found {
				t.Fatalf("step %d: level hit id %d but reference says absent", i, id)
			}
			reference[set] = touch(ref, id)
			continue
		}
		// Miss: reference must agree, then both install.
		for _, v := range ref {
			if v == id {
				t.Fatalf("step %d: level missed id %d but reference says resident", i, id)
			}
		}
		ev := l.install(id, 0)
		if len(ref) < ways {
			if ev.valid {
				t.Fatalf("step %d: eviction from non-full set", i)
			}
			reference[set] = append(ref, id)
			continue
		}
		if !ev.valid {
			t.Fatalf("step %d: full set produced no eviction", i)
		}
		if ev.tag != ref[0] {
			t.Fatalf("step %d: evicted %d, reference LRU is %d (set %v)", i, ev.tag, ref[0], ref)
		}
		reference[set] = append(ref[1:], id)
	}
}

package trace

import (
	"fmt"

	"pradram/internal/core"
	"pradram/internal/dram"
	"pradram/internal/memctrl"
	"pradram/internal/power"
)

// ReplayResult carries the metrics of one trace replay.
type ReplayResult struct {
	Cycles    int64 // CPU cycles until the last request completed
	Reads     int64
	Writes    int64
	Ctrl      memctrl.Stats
	Dev       dram.Stats
	Energy    power.Breakdown
	AvgReadNs float64
}

// AvgPowerMW returns the average DRAM power over the replay.
func (r ReplayResult) AvgPowerMW() float64 {
	ns := float64(r.Cycles) * 0.3125 // 3.2 GHz CPU clock
	if ns <= 0 {
		return 0
	}
	return r.Energy.Total() / ns
}

// ReplayOpts tunes the replay driver.
type ReplayOpts struct {
	// NoSkip disables event-driven fast-forwarding between DRAM events
	// and record arrivals, ticking every CPU cycle as the original driver
	// did. Results are bit-identical either way; the flag is a debugging
	// escape hatch (pratrace -noskip).
	NoSkip bool

	// Parallel enables parallel-in-time ticking with this many worker
	// shares on multi-channel replays (memctrl's conservative PDES
	// dispatch; see internal/memctrl/pdes.go). Results are bit-identical
	// to the sequential replay; zero keeps the classic tick loop.
	Parallel int
}

// Replay feeds a recorded request stream into a fresh controller built
// from cfg, preserving arrival times (with backpressure allowed to slip
// them), and runs until every request completes. Request ordering and
// addresses are exactly those of the capture; only the scheme/policy under
// test differs — the fast what-if path.
func Replay(t *Trace, cfg memctrl.Config) (ReplayResult, error) {
	return ReplayWith(t, cfg, ReplayOpts{})
}

// ReplayWith is Replay with explicit driver options. It is ReplayStream
// over the materialized records; a replay that should not hold the whole
// trace in memory passes Open's decoding stream to ReplayStream directly.
func ReplayWith(t *Trace, cfg memctrl.Config, opt ReplayOpts) (ReplayResult, error) {
	return ReplayStream(t.Stream(), cfg, opt)
}

// ReplayStream drives a replay from a Stream with a one-record lookahead
// window instead of a materialized slice, so memory use is O(1) in trace
// length and the only per-record work is the varint decode and the pooled
// controller enqueue — the steady state allocates nothing per record
// (enforced by TestReplayStreamAllocs and the -ingest benchgate). The
// driver loop is the same tick/skip/backpressure automaton as the
// original slice replay, so results are bit-identical to ReplayWith on
// the same records regardless of which format they decode from.
func ReplayStream(s Stream, cfg memctrl.Config, opt ReplayOpts) (ReplayResult, error) {
	ctrl, err := memctrl.New(cfg)
	if err != nil {
		return ReplayResult{}, err
	}
	if opt.Parallel > 0 {
		ctrl.EnableParallel(opt.Parallel)
		defer ctrl.StopWorkers()
	}
	var res ReplayResult
	outstanding := 0
	done := core.Untagged(func(int64) { outstanding-- })
	cycle := int64(0)

	// One-record lookahead: cur is the next record to issue (valid while
	// have). Arrival times are non-decreasing (streams enforce it), so
	// cur.At doubles as the arrival horizon for the skip loop.
	var cur Record
	have := s.Next(&cur)

	// A generous stall bound: replays are short, but a scheduling bug must
	// not hang the caller. The slice replay budgeted last-arrival plus
	// 2000 ticks per record plus a flat 10M; streaming accumulates the
	// same budget as records are read (it converges to the identical bound
	// by end of stream, and only the error path observes it).
	horizon := int64(0)
	budget := int64(10_000_000)
	if have {
		horizon = cur.At
		budget += 2000
	}
	ticks := int64(0)

	for have || outstanding > 0 || ctrl.Pending() {
		if ticks > horizon+budget {
			return res, fmt.Errorf("trace: replay stalled at cycle %d after %d executed ticks (%d outstanding)",
				cycle, ticks, outstanding)
		}
		ticks++
		blocked := false
		for have && cur.At <= cycle {
			if cur.Write {
				if !ctrl.Write(cur.Addr, cur.Mask) {
					blocked = true
					break // queue full: retry next cycle (time slips)
				}
				res.Writes++
			} else {
				if !ctrl.Read(cur.Addr, done) {
					blocked = true
					break
				}
				outstanding++
				res.Reads++
			}
			have = s.Next(&cur)
			if have {
				horizon = cur.At
				budget += 2000
			}
		}
		ctrl.Tick(cycle)
		cycle++
		// Fast-forward to the controller's next event or the next record
		// arrival, whichever is sooner. A refused record pins the loop to
		// per-cycle retries: each attempt bumps a reject counter, so
		// skipping retries would be observable in the stats. Once all
		// work has drained the loop is about to exit, and jumping (to the
		// next refresh, say) would inflate the cycle count.
		if !opt.NoSkip && !blocked &&
			(have || outstanding > 0 || ctrl.Pending()) {
			next := ctrl.NextEvent(cycle - 1)
			if have && cur.At < next {
				next = cur.At
			}
			if next > cycle {
				ctrl.SkipTo(next)
				cycle = next
			}
		}
	}
	if err := s.Err(); err != nil {
		return res, fmt.Errorf("trace: replay decode: %w", err)
	}
	ctrl.CatchUp(cycle)
	res.Cycles = cycle
	res.Ctrl = ctrl.Stats()
	res.Dev = ctrl.DeviceStats()
	res.Energy = ctrl.Energy()
	res.AvgReadNs = float64(res.Ctrl.ReadLatencySum) / float64(max64(res.Ctrl.ReadsServed, 1)) * 1.25
	return res, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

package trace

import (
	"fmt"

	"pradram/internal/dram"
	"pradram/internal/memctrl"
	"pradram/internal/power"
)

// ReplayResult carries the metrics of one trace replay.
type ReplayResult struct {
	Cycles    int64 // CPU cycles until the last request completed
	Reads     int64
	Writes    int64
	Ctrl      memctrl.Stats
	Dev       dram.Stats
	Energy    power.Breakdown
	AvgReadNs float64
}

// AvgPowerMW returns the average DRAM power over the replay.
func (r ReplayResult) AvgPowerMW() float64 {
	ns := float64(r.Cycles) * 0.3125 // 3.2 GHz CPU clock
	if ns <= 0 {
		return 0
	}
	return r.Energy.Total() / ns
}

// Replay feeds a recorded request stream into a fresh controller built
// from cfg, preserving arrival times (with backpressure allowed to slip
// them), and runs until every request completes. Request ordering and
// addresses are exactly those of the capture; only the scheme/policy under
// test differs — the fast what-if path.
func Replay(t *Trace, cfg memctrl.Config) (ReplayResult, error) {
	ctrl, err := memctrl.New(cfg)
	if err != nil {
		return ReplayResult{}, err
	}
	var res ReplayResult
	outstanding := 0
	i := 0
	cycle := int64(0)
	// A generous bound: replays are short, but a scheduling bug must not
	// hang the caller.
	last := int64(0)
	if n := len(t.Records); n > 0 {
		last = t.Records[n-1].At
	}
	maxCycles := last + int64(len(t.Records))*2000 + 10_000_000

	for i < len(t.Records) || outstanding > 0 || ctrl.Pending() {
		if cycle > maxCycles {
			return res, fmt.Errorf("trace: replay stalled at cycle %d (%d records left, %d outstanding)",
				cycle, len(t.Records)-i, outstanding)
		}
		for i < len(t.Records) && t.Records[i].At <= cycle {
			rec := t.Records[i]
			if rec.Write {
				if !ctrl.Write(rec.Addr, rec.Mask) {
					break // queue full: retry next cycle (time slips)
				}
				res.Writes++
			} else {
				if !ctrl.Read(rec.Addr, func(int64) { outstanding-- }) {
					break
				}
				outstanding++
				res.Reads++
			}
			i++
		}
		ctrl.Tick(cycle)
		cycle++
	}
	res.Cycles = cycle
	res.Ctrl = ctrl.Stats()
	res.Dev = ctrl.DeviceStats()
	res.Energy = ctrl.Energy()
	res.AvgReadNs = float64(res.Ctrl.ReadLatencySum) / float64(max64(res.Ctrl.ReadsServed, 1)) * 1.25
	return res, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

package trace

import (
	"fmt"

	"pradram/internal/core"
	"pradram/internal/dram"
	"pradram/internal/memctrl"
	"pradram/internal/power"
)

// ReplayResult carries the metrics of one trace replay.
type ReplayResult struct {
	Cycles    int64 // CPU cycles until the last request completed
	Reads     int64
	Writes    int64
	Ctrl      memctrl.Stats
	Dev       dram.Stats
	Energy    power.Breakdown
	AvgReadNs float64
}

// AvgPowerMW returns the average DRAM power over the replay.
func (r ReplayResult) AvgPowerMW() float64 {
	ns := float64(r.Cycles) * 0.3125 // 3.2 GHz CPU clock
	if ns <= 0 {
		return 0
	}
	return r.Energy.Total() / ns
}

// ReplayOpts tunes the replay driver.
type ReplayOpts struct {
	// NoSkip disables event-driven fast-forwarding between DRAM events
	// and record arrivals, ticking every CPU cycle as the original driver
	// did. Results are bit-identical either way; the flag is a debugging
	// escape hatch (pratrace -noskip).
	NoSkip bool

	// Parallel enables parallel-in-time ticking with this many worker
	// shares on multi-channel replays (memctrl's conservative PDES
	// dispatch; see internal/memctrl/pdes.go). Results are bit-identical
	// to the sequential replay; zero keeps the classic tick loop.
	Parallel int
}

// Replay feeds a recorded request stream into a fresh controller built
// from cfg, preserving arrival times (with backpressure allowed to slip
// them), and runs until every request completes. Request ordering and
// addresses are exactly those of the capture; only the scheme/policy under
// test differs — the fast what-if path.
func Replay(t *Trace, cfg memctrl.Config) (ReplayResult, error) {
	return ReplayWith(t, cfg, ReplayOpts{})
}

// ReplayWith is Replay with explicit driver options.
func ReplayWith(t *Trace, cfg memctrl.Config, opt ReplayOpts) (ReplayResult, error) {
	ctrl, err := memctrl.New(cfg)
	if err != nil {
		return ReplayResult{}, err
	}
	if opt.Parallel > 0 {
		ctrl.EnableParallel(opt.Parallel)
		defer ctrl.StopWorkers()
	}
	var res ReplayResult
	outstanding := 0
	i := 0
	cycle := int64(0)
	// A generous bound: replays are short, but a scheduling bug must not
	// hang the caller. Like the sim run loop, it is spent in ticks
	// executed so it stays meaningful under fast-forwarding.
	last := int64(0)
	if n := len(t.Records); n > 0 {
		last = t.Records[n-1].At
	}
	maxTicks := last + int64(len(t.Records))*2000 + 10_000_000
	ticks := int64(0)

	for i < len(t.Records) || outstanding > 0 || ctrl.Pending() {
		if ticks > maxTicks {
			return res, fmt.Errorf("trace: replay stalled at cycle %d after %d executed ticks (%d records left, %d outstanding)",
				cycle, ticks, len(t.Records)-i, outstanding)
		}
		ticks++
		blocked := false
		for i < len(t.Records) && t.Records[i].At <= cycle {
			rec := t.Records[i]
			if rec.Write {
				if !ctrl.Write(rec.Addr, rec.Mask) {
					blocked = true
					break // queue full: retry next cycle (time slips)
				}
				res.Writes++
			} else {
				if !ctrl.Read(rec.Addr, core.Untagged(func(int64) { outstanding-- })) {
					blocked = true
					break
				}
				outstanding++
				res.Reads++
			}
			i++
		}
		ctrl.Tick(cycle)
		cycle++
		// Fast-forward to the controller's next event or the next record
		// arrival, whichever is sooner. A refused record pins the loop to
		// per-cycle retries: each attempt bumps a reject counter, so
		// skipping retries would be observable in the stats. Once all
		// work has drained the loop is about to exit, and jumping (to the
		// next refresh, say) would inflate the cycle count.
		if !opt.NoSkip && !blocked &&
			(i < len(t.Records) || outstanding > 0 || ctrl.Pending()) {
			next := ctrl.NextEvent(cycle - 1)
			if i < len(t.Records) && t.Records[i].At < next {
				next = t.Records[i].At
			}
			if next > cycle {
				ctrl.SkipTo(next)
				cycle = next
			}
		}
	}
	ctrl.CatchUp(cycle)
	res.Cycles = cycle
	res.Ctrl = ctrl.Stats()
	res.Dev = ctrl.DeviceStats()
	res.Energy = ctrl.Energy()
	res.AvgReadNs = float64(res.Ctrl.ReadLatencySum) / float64(max64(res.Ctrl.ReadsServed, 1)) * 1.25
	return res, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

package trace

import (
	"bytes"
	"testing"
)

// v2Corpus returns seed inputs for the chunked-reader fuzzer: valid
// encodings at several chunk sizes plus an empty trace.
func v2Corpus() [][]byte {
	var out [][]byte
	for _, chunk := range []int{1, 3, 512} {
		var buf bytes.Buffer
		if err := sampleTrace().SaveV2Chunked(&buf, chunk); err != nil {
			panic(err)
		}
		out = append(out, buf.Bytes())
	}
	var empty bytes.Buffer
	if err := (&Trace{}).SaveV2(&empty); err != nil {
		panic(err)
	}
	out = append(out, empty.Bytes())
	return out
}

// drainAll decodes every record both through the sequential reader and,
// when the index parses, through every chunk of the seekable reader. It
// exists to give the fuzzer full coverage of both decode paths; all
// errors are acceptable outcomes, panics are not.
func drainAll(data []byte) ([]Record, error) {
	s, err := Open(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	var recs []Record
	var rec Record
	for s.Next(&rec) {
		recs = append(recs, rec)
	}
	if err := s.Err(); err != nil {
		return nil, err
	}
	if f, err := OpenV2(bytes.NewReader(data), int64(len(data))); err == nil {
		for ci := range f.Info().Chunks {
			cs := f.StreamAt(ci)
			for cs.Next(&rec) {
			}
			if err := cs.Err(); err != nil {
				return nil, err
			}
		}
	}
	return recs, nil
}

// FuzzTraceV2Chunks hammers the chunked reader with arbitrary bytes:
// truncated frames, corrupt varints, CRC mismatches, lying length
// prefixes, mangled footers. The contract under fuzz is (a) never panic,
// (b) never hand back out-of-order records — corruption surfaces as an
// error, not as silently wrong data.
func FuzzTraceV2Chunks(f *testing.F) {
	for _, seed := range v2Corpus() {
		f.Add(seed)
		if len(seed) > 8 {
			f.Add(seed[:len(seed)-8]) // trailer torn off
			f.Add(seed[:len(seed)/2]) // truncated mid-chunk
			mut := bytes.Clone(seed)
			mut[len(mut)/3] ^= 0x10 // CRC mismatch
			f.Add(mut)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := drainAll(data)
		if err != nil {
			return
		}
		prev := int64(0)
		for i, r := range recs {
			if r.At < prev {
				t.Fatalf("record %d time-travels: %d after %d", i, r.At, prev)
			}
			prev = r.At
		}
	})
}

// TestV2SingleByteCorruption flips every byte of a valid v2 encoding, one
// at a time, and requires each corrupted file to either fail decoding or
// still yield exactly the original records (bytes the decoders never read
// cannot matter) — a chunk CRC catches every single-byte payload flip, so
// corruption can never silently alter a replay.
func TestV2SingleByteCorruption(t *testing.T) {
	tr := synthTrace(600, 21)
	var buf bytes.Buffer
	if err := tr.SaveV2Chunked(&buf, 100); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()
	for pos := 0; pos < len(orig); pos++ {
		mut := bytes.Clone(orig)
		mut[pos] ^= 0xA5
		recs, err := drainAll(mut)
		if err != nil {
			continue
		}
		if len(recs) != len(tr.Records) {
			t.Fatalf("flip at %d: silently decoded %d records, want error or %d",
				pos, len(recs), len(tr.Records))
		}
		for i := range recs {
			if recs[i] != tr.Records[i] {
				t.Fatalf("flip at %d: record %d silently changed: %+v != %+v",
					pos, i, recs[i], tr.Records[i])
			}
		}
	}
}

// TestFuzzV2SeedCorpus runs the fuzz property over the seeds so `go test`
// exercises them even without -fuzz.
func TestFuzzV2SeedCorpus(t *testing.T) {
	for _, seed := range v2Corpus() {
		recs, err := drainAll(seed)
		if err != nil {
			t.Fatalf("valid seed failed to decode: %v", err)
		}
		_ = recs
		if len(seed) > 8 {
			if _, err := drainAll(seed[: len(seed)-8 : len(seed)-8]); err == nil {
				// Trailer removal leaves the sequential path intact (it
				// stops at the sentinel), so no error is fine; the seekable
				// path must reject it though.
				if _, err := OpenV2(bytes.NewReader(seed[:len(seed)-8]), int64(len(seed)-8)); err == nil {
					t.Fatal("OpenV2 accepted a trace with the trailer torn off")
				}
			}
		}
	}
}

package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"pradram/internal/core"
	"pradram/internal/memctrl"
)

func sampleTrace() *Trace {
	return &Trace{Records: []Record{
		{At: 0, Addr: 0x1000},
		{At: 4, Write: true, Addr: 0x2040, Mask: core.StoreBytes(0, 8)},
		{At: 4, Addr: 0x80_0000},
		{At: 1000, Write: true, Addr: 0x3000, Mask: core.FullByteMask},
	}}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("loaded %d records, want %d", got.Len(), tr.Len())
	}
	for i := range tr.Records {
		if got.Records[i] != tr.Records[i] {
			t.Errorf("record %d: %+v != %+v", i, got.Records[i], tr.Records[i])
		}
	}
}

func TestSaveLoadRoundTripProperty(t *testing.T) {
	f := func(deltas []uint16, addrs []uint32, writes []bool) bool {
		n := len(deltas)
		if len(addrs) < n {
			n = len(addrs)
		}
		if len(writes) < n {
			n = len(writes)
		}
		tr := &Trace{}
		at := int64(0)
		for i := 0; i < n; i++ {
			at += int64(deltas[i])
			rec := Record{At: at, Addr: uint64(addrs[i]) &^ 63, Write: writes[i]}
			if rec.Write {
				rec.Mask = core.ByteMask(addrs[i]) | 1
			}
			tr.Records = append(tr.Records, rec)
		}
		var buf bytes.Buffer
		if err := tr.Save(&buf); err != nil {
			return false
		}
		got, err := Load(&buf)
		if err != nil {
			return false
		}
		if got.Len() != tr.Len() {
			return false
		}
		for i := range tr.Records {
			if got.Records[i] != tr.Records[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSaveRejectsUnorderedRecords(t *testing.T) {
	tr := &Trace{Records: []Record{{At: 10, Addr: 0}, {At: 5, Addr: 64}}}
	if err := tr.Save(&bytes.Buffer{}); err == nil {
		t.Error("unordered trace must fail to save")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a trace")); err == nil {
		t.Error("bad magic must fail")
	}
	if _, err := Load(strings.NewReader("")); err == nil {
		t.Error("empty input must fail")
	}
	// Truncated body after valid magic.
	var buf bytes.Buffer
	tr := sampleTrace()
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := Load(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated trace must fail")
	}
}

type fakeBackend struct {
	reads, writes int
	accept        bool
}

func (f *fakeBackend) Read(addr uint64, done core.Done) bool {
	if f.accept {
		f.reads++
	}
	return f.accept
}
func (f *fakeBackend) Write(addr uint64, mask core.ByteMask) bool {
	if f.accept {
		f.writes++
	}
	return f.accept
}

func TestCaptureRecordsAcceptedOnly(t *testing.T) {
	inner := &fakeBackend{accept: false}
	now := int64(0)
	c := &Capture{Inner: inner, Now: func() int64 { return now }}
	if c.Read(0x40, core.Untagged(func(int64) {})) {
		t.Fatal("refusal must propagate")
	}
	if c.Trace.Len() != 0 {
		t.Error("refused requests must not be recorded")
	}
	inner.accept = true
	now = 7
	c.Read(0x40, core.Untagged(func(int64) {}))
	now = 9
	c.Write(0x80, core.StoreBytes(0, 8))
	if c.Trace.Len() != 2 {
		t.Fatalf("records = %d, want 2", c.Trace.Len())
	}
	if c.Trace.Records[0].At != 7 || c.Trace.Records[0].Write {
		t.Errorf("read record wrong: %+v", c.Trace.Records[0])
	}
	if c.Trace.Records[1].At != 9 || !c.Trace.Records[1].Write || c.Trace.Records[1].Mask == 0 {
		t.Errorf("write record wrong: %+v", c.Trace.Records[1])
	}
}

func TestReplayServesAllRequests(t *testing.T) {
	tr := &Trace{}
	for i := 0; i < 200; i++ {
		rec := Record{At: int64(i * 8), Addr: uint64(i) * 8192}
		if i%3 == 0 {
			rec.Write = true
			rec.Mask = core.StoreBytes(0, 8)
		}
		tr.Records = append(tr.Records, rec)
	}
	res, err := Replay(tr, memctrl.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	wantWrites := int64(67) // ceil(200/3)
	if res.Reads+res.Writes != 200 || res.Writes != wantWrites {
		t.Errorf("reads/writes = %d/%d", res.Reads, res.Writes)
	}
	if res.Ctrl.ReadsServed != res.Reads {
		t.Errorf("served %d reads, enqueued %d", res.Ctrl.ReadsServed, res.Reads)
	}
	if res.Energy.Total() <= 0 || res.AvgPowerMW() <= 0 {
		t.Error("replay must accrue energy")
	}
	if res.AvgReadNs <= 0 {
		t.Error("read latency must be positive")
	}
}

func TestReplayDeterministic(t *testing.T) {
	tr := &Trace{}
	for i := 0; i < 100; i++ {
		tr.Records = append(tr.Records, Record{At: int64(i * 4), Addr: uint64(i*64) % (1 << 20)})
	}
	a, err := Replay(tr, memctrl.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Replay(tr, memctrl.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Energy != b.Energy {
		t.Error("replay must be deterministic")
	}
}

// A PRA replay of a write-heavy trace with partial masks must use less
// power than a baseline replay of the same trace — the fast what-if path
// working end to end.
func TestReplaySchemeWhatIf(t *testing.T) {
	tr := &Trace{}
	for i := 0; i < 500; i++ {
		tr.Records = append(tr.Records, Record{
			At:    int64(i * 6),
			Write: true,
			Addr:  (uint64(i) * 524288) % (2 << 30),
			Mask:  core.StoreBytes((i%8)*8, 8),
		})
	}
	baseCfg := memctrl.DefaultConfig()
	base, err := Replay(tr, baseCfg)
	if err != nil {
		t.Fatal(err)
	}
	praCfg := memctrl.DefaultConfig()
	praCfg.Scheme = memctrl.PRA
	pra, err := Replay(tr, praCfg)
	if err != nil {
		t.Fatal(err)
	}
	if pra.AvgPowerMW() >= base.AvgPowerMW() {
		t.Errorf("PRA replay power %.1f must be below baseline %.1f", pra.AvgPowerMW(), base.AvgPowerMW())
	}
	if pra.Dev.AvgGranularity() >= 8 {
		t.Error("PRA replay must show partial activations")
	}
}

// TestReplayParallelIdentity pins the pratrace -par contract: a replay
// on a multi-channel controller with parallel-in-time ticking enabled is
// bit-identical — cycles, stats, energy — to the sequential replay of
// the same trace, across read- and write-heavy streams.
func TestReplayParallelIdentity(t *testing.T) {
	tr := &Trace{}
	for i := 0; i < 600; i++ {
		rec := Record{At: int64(i * 5), Addr: (uint64(i) * 93_241) % (2 << 30) &^ 63}
		if i%4 == 0 {
			rec.Write = true
			rec.Mask = core.StoreBytes((i%8)*8, 8)
		}
		tr.Records = append(tr.Records, rec)
	}
	cfg := memctrl.DefaultConfig()
	cfg.Channels = 4
	seq, err := ReplayWith(tr, cfg, ReplayOpts{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := ReplayWith(tr, cfg, ReplayOpts{Parallel: 3})
	if err != nil {
		t.Fatal(err)
	}
	if seq != par {
		t.Errorf("parallel replay diverges from sequential:\nseq %+v\npar %+v", seq, par)
	}
}

func TestReplayEmptyTrace(t *testing.T) {
	res, err := Replay(&Trace{}, memctrl.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Reads != 0 || res.Writes != 0 {
		t.Error("empty trace must serve nothing")
	}
}

package trace

import (
	"bytes"
	"reflect"
	"testing"

	"pradram/internal/core"
	"pradram/internal/memctrl"
)

// decodeRequests turns fuzz bytes into a bounded request stream: five
// bytes per request (kind/gap, three address bytes, mask shape). Requests
// are line-aligned and the count is capped so one fuzz iteration stays
// cheap even with a slow controller drain behind it.
func decodeRequests(data []byte) []Record {
	const maxRecords = 64
	var recs []Record
	for len(data) >= 5 && len(recs) < maxRecords {
		kind, a0, a1, a2, m := data[0], data[1], data[2], data[3], data[4]
		data = data[5:]
		addr := (uint64(a0) | uint64(a1)<<8 | uint64(a2)<<16) << 6 // line-aligned, 1 GiB space
		rec := Record{Write: kind&1 != 0, Addr: addr}
		if rec.Write {
			// Valid FGD store masks only: offset and size derived from
			// the mask byte, clamped by StoreBytes itself.
			rec.Mask = core.StoreBytes(int(m%8)*8, 8*(1+int(m>>4)%8))
		}
		recs = append(recs, rec)
	}
	return recs
}

// FuzzCaptureReplay round-trips arbitrary request streams through the
// full capture pipeline: live controller traffic recorded by Capture,
// serialized with Save, parsed back with Load, and re-executed with
// Replay. The serialized form must reproduce the records exactly and the
// replay must accept every record and drain without error.
func FuzzCaptureReplay(f *testing.F) {
	// Seed corpus: empty stream; single read; single write; a
	// read-after-write on one line (the forwarding path); a same-line
	// write pair (the merge path); and an interleaved burst across banks —
	// the request shapes the parallel experiment runner's workloads
	// produce in bulk.
	f.Add([]byte{})
	f.Add([]byte{0, 1, 0, 0, 0})
	f.Add([]byte{1, 1, 0, 0, 0x13})
	f.Add([]byte{1, 2, 0, 0, 0x71, 0, 2, 0, 0, 0})
	f.Add([]byte{1, 3, 0, 0, 0x01, 1, 3, 0, 0, 0x72})
	f.Add([]byte{
		0, 0, 0, 0, 0,
		1, 0, 1, 0, 0x24,
		0, 0, 2, 0, 0,
		1, 0, 3, 0, 0x55,
		0, 0, 0, 1, 0,
		1, 0, 0, 2, 0x66,
	})

	f.Fuzz(func(t *testing.T, data []byte) {
		recs := decodeRequests(data)
		cfg := memctrl.DefaultConfig()
		ctrl, err := memctrl.New(cfg)
		if err != nil {
			t.Fatal(err)
		}

		// Capture: feed the decoded stream through a live controller,
		// retrying rejected requests on later cycles as the cache
		// hierarchy would.
		var cycle int64
		cap := &Capture{Inner: ctrl, Now: func() int64 { return cycle }}
		outstanding := 0
		i := 0
		const maxCycles = 10_000_000
		for i < len(recs) {
			if cycle > maxCycles {
				t.Fatalf("capture stalled at cycle %d with %d records left", cycle, len(recs)-i)
			}
			r := recs[i]
			if r.Write {
				if cap.Write(r.Addr, r.Mask) {
					i++
				}
			} else {
				if cap.Read(r.Addr, core.Untagged(func(int64) { outstanding-- })) {
					outstanding++
					i++
				}
			}
			ctrl.Tick(cycle)
			cycle++
		}
		for ; (outstanding > 0 || ctrl.Pending()) && cycle <= maxCycles; cycle++ {
			ctrl.Tick(cycle)
		}
		if outstanding > 0 || ctrl.Pending() {
			t.Fatal("capture run failed to drain")
		}
		if got := cap.Trace.Len(); got != len(recs) {
			t.Fatalf("capture recorded %d of %d accepted requests", got, len(recs))
		}

		// Save -> Load must reproduce the records exactly.
		var buf bytes.Buffer
		if err := cap.Trace.Save(&buf); err != nil {
			t.Fatalf("save: %v", err)
		}
		loaded, err := Load(&buf)
		if err != nil {
			t.Fatalf("load: %v", err)
		}
		if !reflect.DeepEqual(loaded.Records, cap.Trace.Records) &&
			!(len(loaded.Records) == 0 && len(cap.Trace.Records) == 0) {
			t.Fatalf("round trip changed records:\nsaved:  %+v\nloaded: %+v", cap.Trace.Records, loaded.Records)
		}

		// Replay must accept the whole stream and drain.
		res, err := Replay(loaded, cfg)
		if err != nil {
			t.Fatalf("replay: %v", err)
		}
		var wantReads, wantWrites int64
		for _, r := range recs {
			if r.Write {
				wantWrites++
			} else {
				wantReads++
			}
		}
		if res.Reads != wantReads || res.Writes != wantWrites {
			t.Errorf("replay accepted %d reads / %d writes, want %d / %d",
				res.Reads, res.Writes, wantReads, wantWrites)
		}
	})
}

// TestCaptureReplaySeedCorpus runs the seed inputs as a plain test so the
// round trip is exercised on every `go test` run, not only under -fuzz.
func TestCaptureReplaySeedCorpus(t *testing.T) {
	t.Parallel()
	seeds := [][]byte{
		{},
		{0, 1, 0, 0, 0},
		{1, 1, 0, 0, 0x13},
		{1, 2, 0, 0, 0x71, 0, 2, 0, 0, 0},
		{1, 3, 0, 0, 0x01, 1, 3, 0, 0, 0x72},
	}
	for _, seed := range seeds {
		recs := decodeRequests(seed)
		tr := &Trace{}
		at := int64(0)
		for _, r := range recs {
			r.At = at
			at += 3
			tr.Records = append(tr.Records, r)
		}
		var buf bytes.Buffer
		if err := tr.Save(&buf); err != nil {
			t.Fatal(err)
		}
		loaded, err := Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if loaded.Len() != tr.Len() {
			t.Errorf("round trip: %d records, want %d", loaded.Len(), tr.Len())
		}
		if _, err := Replay(loaded, memctrl.DefaultConfig()); err != nil {
			t.Errorf("replay: %v", err)
		}
	}
}

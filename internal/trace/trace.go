// Package trace records and replays DRAM request streams. A capture wraps
// the memory controller during a full-system run and logs every line fill
// and dirty writeback (with its FGD byte mask and arrival cycle); a replay
// feeds a recorded stream straight into a fresh memory controller, without
// the CPU and cache layers, so scheme/policy what-ifs on an identical
// request sequence run an order of magnitude faster than full simulation.
//
// Two serializations exist (DESIGN.md §4j). The legacy v1 format ("PRA1")
// is a flat varint-delta record stream; the default v2 format ("PRA2")
// frames the same records into CRC-guarded chunks with a footer index, so
// a reader can print totals without decoding (ReadInfo), seek to any
// chunk through an io.ReaderAt (V2File.StreamAt), and detect truncation
// or corruption instead of silently mis-decoding. Both formats decode
// through the Stream interface (Open sniffs the magic), and ReplayStream
// drives a replay straight off a Stream — constant memory, zero
// steady-state allocations per record — while Replay/Load keep the
// materialized path for callers that need Trace.Records in hand.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"pradram/internal/core"
)

// Record is one DRAM request as seen at the controller boundary.
type Record struct {
	At    int64 // CPU cycle the request was enqueued
	Write bool
	Addr  uint64
	Mask  core.ByteMask // writes: FGD dirty bytes (0 for reads)
}

// Trace is an ordered request stream.
type Trace struct {
	Records []Record
}

// Len returns the number of records.
func (t *Trace) Len() int { return len(t.Records) }

// magic identifies the serialized format.
var magic = [4]byte{'P', 'R', 'A', '1'}

// checkOrdered validates the time ordering every serializer requires.
// Both Save and SaveV2 run it before writing a single byte, so an
// unordered trace fails cleanly instead of aborting mid-write and leaving
// a torn output file behind.
func (t *Trace) checkOrdered() error {
	prev := int64(0)
	for _, r := range t.Records {
		if r.At < prev {
			return fmt.Errorf("trace: records not time-ordered at cycle %d", r.At)
		}
		prev = r.At
	}
	return nil
}

// Save writes the trace in the v1 binary format: magic, count, then per
// record a varint time delta, a flag byte, a varint address, and (for
// writes) the byte mask. New captures should prefer SaveV2 (v2.go), which
// adds chunk framing, CRCs, and a seek index; Save remains for tools that
// interoperate with existing v1 traces.
func (t *Trace) Save(w io.Writer) error {
	if err := t.checkOrdered(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := put(uint64(len(t.Records))); err != nil {
		return err
	}
	prev := int64(0)
	for _, r := range t.Records {
		if err := put(uint64(r.At - prev)); err != nil {
			return err
		}
		prev = r.At
		flag := uint64(0)
		if r.Write {
			flag = 1
		}
		if err := put(flag); err != nil {
			return err
		}
		if err := put(r.Addr); err != nil {
			return err
		}
		if r.Write {
			if err := put(uint64(r.Mask)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Load reads a trace written by Save (v1) or SaveV2 (v2) — the magic
// selects the decoder — and materializes every record. Replays that do
// not need the whole stream in memory should use Open and ReplayStream
// instead.
func Load(r io.Reader) (*Trace, error) {
	s, err := Open(r)
	if err != nil {
		return nil, err
	}
	t := &Trace{}
	if sz, ok := s.(interface{ Remaining() int64 }); ok {
		t.Records = make([]Record, 0, sz.Remaining())
	}
	var rec Record
	for s.Next(&rec) {
		t.Records = append(t.Records, rec)
	}
	if err := s.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

// Backend is the controller-facing interface the capture tees into (a
// structural copy of cache.Backend, kept local to avoid a dependency
// cycle).
type Backend interface {
	Read(addr uint64, done core.Done) bool
	Write(addr uint64, mask core.ByteMask) bool
}

// Capture wraps a Backend and records every accepted request. Now must
// return the current CPU cycle.
type Capture struct {
	Inner Backend
	Now   func() int64
	Trace Trace
}

// Read records and forwards a line fill.
func (c *Capture) Read(addr uint64, done core.Done) bool {
	ok := c.Inner.Read(addr, done)
	if ok {
		c.Trace.Records = append(c.Trace.Records, Record{At: c.Now(), Addr: addr})
	}
	return ok
}

// Write records and forwards a writeback.
func (c *Capture) Write(addr uint64, mask core.ByteMask) bool {
	ok := c.Inner.Write(addr, mask)
	if ok {
		c.Trace.Records = append(c.Trace.Records, Record{At: c.Now(), Write: true, Addr: addr, Mask: mask})
	}
	return ok
}

// Package trace records and replays DRAM request streams. A capture wraps
// the memory controller during a full-system run and logs every line fill
// and dirty writeback (with its FGD byte mask and arrival cycle); a replay
// feeds a recorded stream straight into a fresh memory controller, without
// the CPU and cache layers, so scheme/policy what-ifs on an identical
// request sequence run an order of magnitude faster than full simulation.
// Traces serialize to a compact varint-delta binary format.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"pradram/internal/core"
)

// Record is one DRAM request as seen at the controller boundary.
type Record struct {
	At    int64 // CPU cycle the request was enqueued
	Write bool
	Addr  uint64
	Mask  core.ByteMask // writes: FGD dirty bytes (0 for reads)
}

// Trace is an ordered request stream.
type Trace struct {
	Records []Record
}

// Len returns the number of records.
func (t *Trace) Len() int { return len(t.Records) }

// magic identifies the serialized format.
var magic = [4]byte{'P', 'R', 'A', '1'}

// Save writes the trace in the binary format: magic, count, then per
// record a varint time delta, a flag byte, a varint address, and (for
// writes) the byte mask.
func (t *Trace) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := put(uint64(len(t.Records))); err != nil {
		return err
	}
	prev := int64(0)
	for _, r := range t.Records {
		if r.At < prev {
			return fmt.Errorf("trace: records not time-ordered at cycle %d", r.At)
		}
		if err := put(uint64(r.At - prev)); err != nil {
			return err
		}
		prev = r.At
		flag := uint64(0)
		if r.Write {
			flag = 1
		}
		if err := put(flag); err != nil {
			return err
		}
		if err := put(r.Addr); err != nil {
			return err
		}
		if r.Write {
			if err := put(uint64(r.Mask)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Load reads a trace written by Save.
func Load(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("trace: bad magic %q", m)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading count: %w", err)
	}
	const maxRecords = 1 << 30
	if count > maxRecords {
		return nil, fmt.Errorf("trace: implausible record count %d", count)
	}
	t := &Trace{Records: make([]Record, 0, count)}
	at := int64(0)
	for i := uint64(0); i < count; i++ {
		delta, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d time: %w", i, err)
		}
		at += int64(delta)
		flag, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d flag: %w", i, err)
		}
		addr, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d addr: %w", i, err)
		}
		rec := Record{At: at, Write: flag&1 != 0, Addr: addr}
		if rec.Write {
			mask, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: record %d mask: %w", i, err)
			}
			rec.Mask = core.ByteMask(mask)
		}
		t.Records = append(t.Records, rec)
	}
	return t, nil
}

// Backend is the controller-facing interface the capture tees into (a
// structural copy of cache.Backend, kept local to avoid a dependency
// cycle).
type Backend interface {
	Read(addr uint64, done core.Done) bool
	Write(addr uint64, mask core.ByteMask) bool
}

// Capture wraps a Backend and records every accepted request. Now must
// return the current CPU cycle.
type Capture struct {
	Inner Backend
	Now   func() int64
	Trace Trace
}

// Read records and forwards a line fill.
func (c *Capture) Read(addr uint64, done core.Done) bool {
	ok := c.Inner.Read(addr, done)
	if ok {
		c.Trace.Records = append(c.Trace.Records, Record{At: c.Now(), Addr: addr})
	}
	return ok
}

// Write records and forwards a writeback.
func (c *Capture) Write(addr uint64, mask core.ByteMask) bool {
	ok := c.Inner.Write(addr, mask)
	if ok {
		c.Trace.Records = append(c.Trace.Records, Record{At: c.Now(), Write: true, Addr: addr, Mask: mask})
	}
	return ok
}

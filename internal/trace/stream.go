package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"pradram/internal/core"
)

// Stream is the iterator every replay and decode path consumes: Next
// fills the caller's Record and reports whether one was produced, so a
// well-behaved stream decodes millions of records without allocating.
// After Next returns false, Err distinguishes end-of-stream (nil) from a
// decode failure. Records arrive in non-decreasing At order — decoders
// enforce it, so a corrupt input surfaces as an error, never as a
// time-travelling request.
type Stream interface {
	Next(rec *Record) bool
	Err() error
}

// Stream returns an in-memory Stream over the trace's records, the bridge
// from the materialized representation to the streaming replay path.
func (t *Trace) Stream() Stream { return &sliceStream{recs: t.Records} }

// sliceStream iterates a materialized record slice.
type sliceStream struct {
	recs []Record
	i    int
}

func (s *sliceStream) Next(rec *Record) bool {
	if s.i >= len(s.recs) {
		return false
	}
	*rec = s.recs[s.i]
	s.i++
	return true
}

func (s *sliceStream) Err() error { return nil }

// Remaining reports how many records are left, a capacity hint for
// materializing consumers.
func (s *sliceStream) Remaining() int64 { return int64(len(s.recs) - s.i) }

// Open sniffs the serialized format (v1 "PRA1" or v2 "PRA2") and returns
// a decoding Stream over r. Decoding is incremental: records are produced
// as bytes arrive, nothing is materialized, and v2 chunk CRCs are
// verified as each chunk is entered. The stream owns a buffered reader
// over r; the caller keeps ownership of r itself (closing files, etc.).
func Open(r io.Reader) (Stream, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	m, err := br.Peek(4)
	if err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	switch {
	case [4]byte(m) == magic:
		br.Discard(4)
		count, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: reading count: %w", err)
		}
		if count > maxStreamRecords {
			return nil, fmt.Errorf("trace: implausible record count %d", count)
		}
		return &v1Stream{br: br, remaining: count}, nil
	case [4]byte(m) == magicV2:
		br.Discard(4)
		return &v2Stream{r: br}, nil
	default:
		return nil, fmt.Errorf("trace: bad magic %q", m)
	}
}

// maxStreamRecords bounds the v1 header count (and any single v2 chunk)
// against corrupt length prefixes about to drive giant allocations.
const maxStreamRecords = 1 << 30

// v1Stream decodes the v1 format progressively: a global record count,
// then varint-delta records.
type v1Stream struct {
	br        *bufio.Reader
	remaining uint64
	at        int64
	err       error
}

func (s *v1Stream) Err() error { return s.err }

// Remaining reports how many records are left (the v1 header carries the
// total), a capacity hint for materializing consumers.
func (s *v1Stream) Remaining() int64 { return int64(s.remaining) }

func (s *v1Stream) Next(rec *Record) bool {
	if s.err != nil || s.remaining == 0 {
		return false
	}
	delta, err := binary.ReadUvarint(s.br)
	if err != nil {
		s.err = fmt.Errorf("trace: record time: %w", err)
		return false
	}
	if delta > maxTimeDelta {
		s.err = fmt.Errorf("trace: implausible time delta %d", delta)
		return false
	}
	flag, err := binary.ReadUvarint(s.br)
	if err != nil {
		s.err = fmt.Errorf("trace: record flag: %w", err)
		return false
	}
	addr, err := binary.ReadUvarint(s.br)
	if err != nil {
		s.err = fmt.Errorf("trace: record addr: %w", err)
		return false
	}
	s.at += int64(delta)
	rec.At = s.at
	rec.Write = flag&1 != 0
	rec.Addr = addr
	rec.Mask = 0
	if rec.Write {
		mask, err := binary.ReadUvarint(s.br)
		if err != nil {
			s.err = fmt.Errorf("trace: record mask: %w", err)
			return false
		}
		rec.Mask = core.ByteMask(mask)
	}
	s.remaining--
	return true
}

// maxTimeDelta rejects time deltas that would overflow the cycle clock
// when accumulated (corrupt varints decode to huge values long before a
// legitimate capture spans 2^60 cycles).
const maxTimeDelta = 1 << 60

package trace

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"pradram/internal/checkpoint"
	"pradram/internal/core"
)

// Format v2 ("PRA2", DESIGN.md §4j) is the at-scale trace container: the
// same varint-delta records as v1, framed into CRC-protected chunks with
// a footer index, so a reader can print header stats without decoding,
// seek to any chunk through an io.ReaderAt (a file, an mmap, a byte
// slice), and detect truncation or corruption at chunk granularity
// instead of silently replaying garbage.
//
// Layout:
//
//	"PRA2"
//	chunk*:  u32 payloadLen | u32 crc32(payload) | payload
//	end:     u32 0
//	footer:  u32 footerLen  | u32 crc32(footer)  | footer payload
//	trailer: u32 footerLen  | "PRAi"
//
// A chunk payload is: uvarint count, then count records encoded exactly
// as v1 encodes them (varint time delta, flag, varint address, and for
// writes the byte mask), with the delta accumulator starting at zero —
// the first record's delta is its absolute cycle, so every chunk decodes
// independently of its predecessors. The footer payload (checkpoint
// codec) carries the totals and one index entry per chunk: frame offset,
// payload length, record count, first cycle, cycle span, and write count.
// The trailing 8 bytes locate the footer from the end of the file, which
// is how OpenV2 bootstraps without scanning.
var magicV2 = [4]byte{'P', 'R', 'A', '2'}

// tailMagic terminates a v2 file; OpenV2 reads it (and the footer length
// beside it) from the end to locate the index.
var tailMagic = [4]byte{'P', 'R', 'A', 'i'}

const (
	// DefaultChunkRecords is the chunk granularity SaveV2 uses: large
	// enough that framing overhead vanishes (~10 bytes against ~5
	// bytes/record * 4096), small enough that a seek lands within a few
	// tens of KB of any target record.
	DefaultChunkRecords = 4096

	// maxChunkPayload bounds a chunk frame against corrupt lengths; real
	// chunks are a few tens of KB.
	maxChunkPayload = 1 << 26
)

// ChunkInfo is one footer index entry.
type ChunkInfo struct {
	Offset  int64 // file offset of the chunk's frame header
	Bytes   int64 // payload length
	Count   int64 // records in the chunk
	FirstAt int64 // cycle of the first record
	LastAt  int64 // cycle of the last record
	Writes  int64 // write records in the chunk
}

// Info summarizes a trace file without its records: format version,
// totals, cycle span, and (v2 only) the per-chunk index.
type Info struct {
	Version int   // 1 or 2
	Records int64 // total records
	Writes  int64 // total write records
	FirstAt int64 // cycle of the first record (0 when empty)
	LastAt  int64 // cycle of the last record (0 when empty)
	Chunks  []ChunkInfo
}

// V2Writer encodes a v2 trace incrementally: records append one at a
// time (in non-decreasing At order), chunks flush as they fill, and Close
// writes the end sentinel, footer index, and trailer. Nothing but the
// current chunk is buffered, so writing is O(chunk) in memory regardless
// of trace length.
type V2Writer struct {
	w        io.Writer
	perChunk int

	payload []byte // current chunk, reused between flushes
	count   int64
	writes  int64
	first   int64 // At of the chunk's first record
	prev    int64 // At of the chunk's last record

	total       int64
	totalWrites int64
	firstAt     int64
	lastAt      int64
	any         bool
	off         int64
	chunks      []ChunkInfo
	err         error
	closed      bool
}

// NewV2Writer starts a v2 encoding onto w with the given records per
// chunk (<= 0 selects DefaultChunkRecords). The magic is written
// immediately; call Append for each record and Close to finish.
func NewV2Writer(w io.Writer, perChunk int) *V2Writer {
	if perChunk <= 0 {
		perChunk = DefaultChunkRecords
	}
	v := &V2Writer{w: w, perChunk: perChunk}
	if _, err := w.Write(magicV2[:]); err != nil {
		v.err = err
	}
	v.off = 4
	return v
}

// Append encodes one record. Records must arrive in non-decreasing At
// order; a violation fails the writer before any byte of the record is
// emitted.
func (v *V2Writer) Append(rec Record) error {
	if v.err != nil {
		return v.err
	}
	if v.closed {
		v.err = fmt.Errorf("trace: append after Close")
		return v.err
	}
	if rec.At < v.lastAt {
		v.err = fmt.Errorf("trace: records not time-ordered at cycle %d", rec.At)
		return v.err
	}
	prev := v.prev
	if v.count == 0 {
		v.first = rec.At
		prev = 0 // first delta is the absolute cycle
	}
	v.payload = binary.AppendUvarint(v.payload, uint64(rec.At-prev))
	flag := uint64(0)
	if rec.Write {
		flag = 1
	}
	v.payload = binary.AppendUvarint(v.payload, flag)
	v.payload = binary.AppendUvarint(v.payload, rec.Addr)
	if rec.Write {
		v.payload = binary.AppendUvarint(v.payload, uint64(rec.Mask))
		v.writes++
	}
	v.prev = rec.At
	v.lastAt = rec.At
	if !v.any {
		v.firstAt = rec.At
		v.any = true
	}
	v.count++
	v.total++
	if v.count >= int64(v.perChunk) {
		v.flush()
	}
	return v.err
}

// flush frames and writes the pending chunk.
func (v *V2Writer) flush() {
	if v.err != nil || v.count == 0 {
		return
	}
	body := binary.AppendUvarint(nil, uint64(v.count))
	body = append(body, v.payload...)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(body))
	if _, err := v.w.Write(hdr[:]); err != nil {
		v.err = err
		return
	}
	if _, err := v.w.Write(body); err != nil {
		v.err = err
		return
	}
	v.chunks = append(v.chunks, ChunkInfo{
		Offset:  v.off,
		Bytes:   int64(len(body)),
		Count:   v.count,
		FirstAt: v.first,
		LastAt:  v.prev,
		Writes:  v.writes,
	})
	v.totalWrites += v.writes
	v.off += 8 + int64(len(body))
	v.payload = v.payload[:0]
	v.count, v.writes = 0, 0
}

// Close flushes the final chunk and writes the end sentinel, the footer
// index, and the trailer. The writer is unusable afterwards.
func (v *V2Writer) Close() error {
	if v.err != nil {
		return v.err
	}
	if v.closed {
		return nil
	}
	v.closed = true
	v.flush()
	if v.err != nil {
		return v.err
	}
	var w checkpoint.Writer
	w.U64(uint64(v.total))
	w.I64(v.firstAt)
	w.I64(v.lastAt)
	w.U64(uint64(v.totalWrites))
	w.Count(len(v.chunks))
	prevOff, prevFirst := int64(4), int64(0)
	for _, c := range v.chunks {
		w.Uvarint(uint64(c.Offset - prevOff))
		w.Uvarint(uint64(c.Bytes))
		w.Uvarint(uint64(c.Count))
		w.Varint(c.FirstAt - prevFirst)
		w.Uvarint(uint64(c.LastAt - c.FirstAt))
		w.Uvarint(uint64(c.Writes))
		prevOff, prevFirst = c.Offset, c.FirstAt
	}
	footer := w.Bytes()
	var frame [12]byte
	binary.LittleEndian.PutUint32(frame[0:], 0) // end-of-chunks sentinel
	binary.LittleEndian.PutUint32(frame[4:], uint32(len(footer)))
	binary.LittleEndian.PutUint32(frame[8:], crc32.ChecksumIEEE(footer))
	if _, err := v.w.Write(frame[:]); err != nil {
		v.err = err
		return v.err
	}
	if _, err := v.w.Write(footer); err != nil {
		v.err = err
		return v.err
	}
	var trailer [8]byte
	binary.LittleEndian.PutUint32(trailer[0:], uint32(len(footer)))
	copy(trailer[4:], tailMagic[:])
	if _, err := v.w.Write(trailer[:]); err != nil {
		v.err = err
	}
	return v.err
}

// SaveV2 writes the trace in format v2 with the default chunk size. Like
// Save, ordering is validated before the first byte is written.
func (t *Trace) SaveV2(w io.Writer) error {
	return t.SaveV2Chunked(w, DefaultChunkRecords)
}

// SaveV2Chunked is SaveV2 with an explicit records-per-chunk granularity.
func (t *Trace) SaveV2Chunked(w io.Writer, perChunk int) error {
	if err := t.checkOrdered(); err != nil {
		return err
	}
	vw := NewV2Writer(w, perChunk)
	for _, r := range t.Records {
		if err := vw.Append(r); err != nil {
			return err
		}
	}
	return vw.Close()
}

// V2File is a v2 trace opened through an io.ReaderAt: the footer index is
// decoded up front (Info), and record access streams chunk by chunk with
// per-chunk CRC verification — from the start (Stream) or from any index
// entry (StreamAt), which is what makes the format seekable.
type V2File struct {
	ra   io.ReaderAt
	info Info
}

// OpenV2 opens a v2 trace of the given total size via ra, validating the
// head magic, trailer, and footer index (its CRC and internal
// consistency). Chunk payloads are not touched until streamed.
func OpenV2(ra io.ReaderAt, size int64) (*V2File, error) {
	var head [4]byte
	if _, err := ra.ReadAt(head[:], 0); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if head == magic {
		return nil, fmt.Errorf("trace: v1 trace has no index; use Open to stream it")
	}
	if head != magicV2 {
		return nil, fmt.Errorf("trace: bad magic %q", head)
	}
	var trailer [8]byte
	if size < 4+12+8 {
		return nil, fmt.Errorf("trace: file too short (%d bytes) for a v2 trace", size)
	}
	if _, err := ra.ReadAt(trailer[:], size-8); err != nil {
		return nil, fmt.Errorf("trace: reading trailer: %w", err)
	}
	if [4]byte(trailer[4:8]) != tailMagic {
		return nil, fmt.Errorf("trace: bad trailer magic %q", trailer[4:8])
	}
	footerLen := int64(binary.LittleEndian.Uint32(trailer[0:4]))
	frameOff := size - 8 - footerLen - 12
	if footerLen > maxChunkPayload || frameOff < 4 {
		return nil, fmt.Errorf("trace: implausible footer length %d", footerLen)
	}
	frame := make([]byte, 12+footerLen)
	if _, err := ra.ReadAt(frame, frameOff); err != nil {
		return nil, fmt.Errorf("trace: reading footer: %w", err)
	}
	if s := binary.LittleEndian.Uint32(frame[0:4]); s != 0 {
		return nil, fmt.Errorf("trace: missing end-of-chunks sentinel before footer")
	}
	if l := int64(binary.LittleEndian.Uint32(frame[4:8])); l != footerLen {
		return nil, fmt.Errorf("trace: footer length mismatch (%d vs trailer %d)", l, footerLen)
	}
	footer := frame[12:]
	if crc := crc32.ChecksumIEEE(footer); crc != binary.LittleEndian.Uint32(frame[8:12]) {
		return nil, fmt.Errorf("trace: footer CRC mismatch")
	}
	r := checkpoint.NewReader(footer)
	info := Info{Version: 2}
	info.Records = int64(r.U64())
	info.FirstAt = r.I64()
	info.LastAt = r.I64()
	info.Writes = int64(r.U64())
	nchunks := r.Count()
	info.Chunks = make([]ChunkInfo, 0, nchunks)
	off, firstAt := int64(4), int64(0)
	var sum, sumW int64
	for i := 0; i < nchunks; i++ {
		c := ChunkInfo{}
		off += int64(r.Uvarint())
		c.Offset = off
		c.Bytes = int64(r.Uvarint())
		c.Count = int64(r.Uvarint())
		firstAt += r.Varint()
		c.FirstAt = firstAt
		c.LastAt = firstAt + int64(r.Uvarint())
		c.Writes = int64(r.Uvarint())
		if c.Bytes <= 0 || c.Bytes > maxChunkPayload || c.Count <= 0 ||
			c.Offset+8+c.Bytes > frameOff || c.Writes > c.Count {
			return nil, fmt.Errorf("trace: corrupt index entry %d: %+v", i, c)
		}
		sum += c.Count
		sumW += c.Writes
		info.Chunks = append(info.Chunks, c)
	}
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("trace: footer: %w", err)
	}
	if sum != info.Records || sumW != info.Writes {
		return nil, fmt.Errorf("trace: index totals (%d records, %d writes) disagree with chunks (%d, %d)",
			info.Records, info.Writes, sum, sumW)
	}
	return &V2File{ra: ra, info: info}, nil
}

// Info returns the decoded footer index.
func (f *V2File) Info() *Info { return &f.info }

// Stream returns a Stream over every record, decoding chunks lazily.
func (f *V2File) Stream() Stream { return f.StreamAt(0) }

// StreamAt returns a Stream starting at the given chunk index — the seek
// primitive: Info's chunk table maps a target cycle or record ordinal to
// a chunk, and StreamAt starts decoding there without touching the bytes
// before it. Records then flow to the end of the trace.
func (f *V2File) StreamAt(chunk int) Stream {
	if chunk < 0 || chunk > len(f.info.Chunks) {
		return &v2Stream{err: fmt.Errorf("trace: chunk %d out of range [0,%d]", chunk, len(f.info.Chunks))}
	}
	if chunk == len(f.info.Chunks) {
		return &sliceStream{} // past the last chunk: an empty stream
	}
	start := f.info.Chunks[chunk].Offset
	end := f.info.Chunks[len(f.info.Chunks)-1].Offset + 8 + f.info.Chunks[len(f.info.Chunks)-1].Bytes
	s := &v2Stream{r: io.NewSectionReader(f.ra, start, end-start)}
	s.prevAt = f.info.Chunks[chunk].FirstAt // chunks are self-contained; ordering resumes here
	return s
}

// ReadInfo decodes a v2 trace's footer index without touching the record
// chunks (the pratrace -info fast path). v1 traces have no index; scan
// them with Open.
func ReadInfo(ra io.ReaderAt, size int64) (*Info, error) {
	f, err := OpenV2(ra, size)
	if err != nil {
		return nil, err
	}
	return f.Info(), nil
}

// v2Stream decodes v2 chunk frames sequentially from an io.Reader,
// verifying each chunk's CRC on entry and reusing one payload buffer for
// the whole stream, so steady-state decode allocates nothing per record.
// The end of the chunk sequence is either the zero sentinel (full-file
// streams) or a clean EOF (section streams produced by StreamAt, which
// end before the footer).
type v2Stream struct {
	r       io.Reader
	payload []byte // reused frame buffer
	pos     int    // decode cursor within payload
	n       int64  // records left in the current chunk
	at      int64  // delta accumulator, reset per chunk
	prevAt  int64  // last record cycle seen, for cross-chunk order checks
	done    bool
	err     error
}

func (s *v2Stream) Err() error { return s.err }

// readChunk loads and verifies the next chunk frame. It returns false at
// the end of the chunk sequence or on error.
func (s *v2Stream) readChunk() bool {
	var hdr [8]byte
	if _, err := io.ReadFull(s.r, hdr[:]); err != nil {
		if err == io.EOF {
			s.done = true // section streams end exactly at the last chunk
			return false
		}
		s.err = fmt.Errorf("trace: chunk header: %w", err)
		return false
	}
	size := binary.LittleEndian.Uint32(hdr[0:4])
	if size == 0 {
		s.done = true // full-file streams end at the sentinel
		return false
	}
	if size > maxChunkPayload {
		s.err = fmt.Errorf("trace: implausible chunk size %d", size)
		return false
	}
	if cap(s.payload) < int(size) {
		s.payload = make([]byte, size)
	}
	s.payload = s.payload[:size]
	if _, err := io.ReadFull(s.r, s.payload); err != nil {
		s.err = fmt.Errorf("trace: chunk payload: %w", err)
		return false
	}
	if crc := crc32.ChecksumIEEE(s.payload); crc != binary.LittleEndian.Uint32(hdr[4:8]) {
		s.err = fmt.Errorf("trace: chunk CRC mismatch")
		return false
	}
	count, n := binary.Uvarint(s.payload)
	if n <= 0 || count == 0 || count > maxStreamRecords || count > uint64(size) {
		s.err = fmt.Errorf("trace: bad chunk record count")
		return false
	}
	s.pos = n
	s.n = int64(count)
	s.at = 0 // chunk deltas are self-contained
	return true
}

// uvarint decodes the next varint of the current chunk payload.
func (s *v2Stream) uvarint() (uint64, bool) {
	v, n := binary.Uvarint(s.payload[s.pos:])
	if n <= 0 {
		s.err = fmt.Errorf("trace: truncated record in chunk")
		return 0, false
	}
	s.pos += n
	return v, true
}

func (s *v2Stream) Next(rec *Record) bool {
	if s.err != nil || s.done {
		return false
	}
	for s.n == 0 {
		if s.pos != len(s.payload) && len(s.payload) > 0 {
			s.err = fmt.Errorf("trace: %d trailing bytes in chunk", len(s.payload)-s.pos)
			return false
		}
		if !s.readChunk() {
			return false
		}
	}
	delta, ok := s.uvarint()
	if !ok {
		return false
	}
	if delta > maxTimeDelta {
		s.err = fmt.Errorf("trace: implausible time delta %d", delta)
		return false
	}
	flag, ok := s.uvarint()
	if !ok {
		return false
	}
	addr, ok := s.uvarint()
	if !ok {
		return false
	}
	s.at += int64(delta)
	if s.at < s.prevAt {
		s.err = fmt.Errorf("trace: records not time-ordered at cycle %d", s.at)
		return false
	}
	s.prevAt = s.at
	rec.At = s.at
	rec.Write = flag&1 != 0
	rec.Addr = addr
	rec.Mask = 0
	if rec.Write {
		mask, ok := s.uvarint()
		if !ok {
			return false
		}
		rec.Mask = core.ByteMask(mask)
	}
	s.n--
	return true
}

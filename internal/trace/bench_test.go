package trace

import (
	"bytes"
	"testing"

	"pradram/internal/memctrl"
)

// benchBuf encodes a synthetic trace once per format for the decode
// benchmarks.
var benchBuf = func() map[int][]byte {
	tr := synthTrace(1<<16, 1234)
	var v1, v2 bytes.Buffer
	if err := tr.Save(&v1); err != nil {
		panic(err)
	}
	if err := tr.SaveV2(&v2); err != nil {
		panic(err)
	}
	return map[int][]byte{1: v1.Bytes(), 2: v2.Bytes()}
}()

// benchDecode measures per-record decode cost: one op is one record,
// reopening the buffer as it drains so b.N is unbounded. The v2 number is
// the Mreq/s figure tools/benchgate -ingest gates (floor: 500 ns/op,
// i.e. 2M records/sec).
func benchDecode(b *testing.B, data []byte) {
	b.SetBytes(int64(len(benchBuf[2])) / (1 << 16))
	b.ReportAllocs()
	var s Stream
	var rec Record
	for i := 0; i < b.N; i++ {
		if s == nil {
			var err error
			s, err = Open(bytes.NewReader(data))
			if err != nil {
				b.Fatal(err)
			}
		}
		if !s.Next(&rec) {
			if err := s.Err(); err != nil {
				b.Fatal(err)
			}
			s = nil
			i--
		}
	}
}

func BenchmarkIngestDecodeV2(b *testing.B) { benchDecode(b, benchBuf[2]) }
func BenchmarkIngestDecodeV1(b *testing.B) { benchDecode(b, benchBuf[1]) }

// synthStream generates records on the fly (no backing buffer), isolating
// the replay driver and controller path from decode cost: one op is one
// record replayed end to end. Arrivals are paced at 8 CPU cycles across a
// spread of rows so the controller stays busy without saturating a queue.
type synthStream struct {
	n     int
	i     int
	state uint64
}

func (s *synthStream) Next(rec *Record) bool {
	if s.i >= s.n {
		return false
	}
	s.state = s.state*6364136223846793005 + 1442695040888963407
	rec.At = int64(s.i) * 8
	rec.Addr = (s.state >> 20) << 6 & (1<<30 - 1)
	rec.Write = false
	rec.Mask = 0
	s.i++
	return true
}

func (s *synthStream) Err() error { return nil }

// BenchmarkIngestReplayStream is the allocation-ceiling benchmark: the
// controller is constructed once per run (amortized across b.N records),
// so allocs/op at the benchgate's record count rounds to the steady-state
// per-record figure, which must be zero.
func BenchmarkIngestReplayStream(b *testing.B) {
	b.ReportAllocs()
	if _, err := ReplayStream(&synthStream{n: b.N, state: 99}, memctrl.DefaultConfig(), ReplayOpts{}); err != nil {
		b.Fatal(err)
	}
}

// TestReplayStreamAllocs enforces the zero-allocation steady state of the
// streaming replay path via testing.AllocsPerOp — the in-repo twin of the
// benchgate -ingest ceiling.
func TestReplayStreamAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement needs a long run to amortize setup")
	}
	res := testing.Benchmark(BenchmarkIngestReplayStream)
	if a := res.AllocsPerOp(); a != 0 {
		t.Fatalf("streaming replay allocates %d/record in steady state, want 0", a)
	}
}

package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"pradram/internal/core"
	"pradram/internal/memctrl"
)

// synthTrace builds a deterministic pseudo-random trace of n records:
// bursty arrivals across a spread of rows and banks, ~30% writes.
func synthTrace(n int, seed int64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := &Trace{Records: make([]Record, 0, n)}
	at := int64(0)
	for i := 0; i < n; i++ {
		if rng.Intn(4) == 0 {
			at += int64(rng.Intn(400)) // gap between bursts
		}
		rec := Record{At: at, Addr: uint64(rng.Intn(1<<24)) << 6}
		if rng.Intn(10) < 3 {
			rec.Write = true
			rec.Mask = core.ByteMask(rng.Uint64()) | 1
		}
		tr.Records = append(tr.Records, rec)
	}
	return tr
}

func recordsEqual(t *testing.T, got, want []Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestSaveV2LoadRoundTrip(t *testing.T) {
	for _, tr := range []*Trace{sampleTrace(), synthTrace(10_000, 7), {}} {
		var buf bytes.Buffer
		if err := tr.SaveV2Chunked(&buf, 512); err != nil {
			t.Fatal(err)
		}
		got, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		recordsEqual(t, got.Records, tr.Records)
	}
}

// TestV1V2Equivalence decodes the same records from both serializations
// and requires identical streams — the back-compat contract: a v1 trace
// and its v2 re-encoding are interchangeable inputs.
func TestV1V2Equivalence(t *testing.T) {
	tr := synthTrace(5000, 11)
	var v1, v2 bytes.Buffer
	if err := tr.Save(&v1); err != nil {
		t.Fatal(err)
	}
	if err := tr.SaveV2Chunked(&v2, 100); err != nil {
		t.Fatal(err)
	}
	from1, err := Load(bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	from2, err := Load(bytes.NewReader(v2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	recordsEqual(t, from1.Records, tr.Records)
	recordsEqual(t, from2.Records, tr.Records)
}

func TestOpenV2Info(t *testing.T) {
	tr := synthTrace(2500, 3)
	var buf bytes.Buffer
	if err := tr.SaveV2Chunked(&buf, 1000); err != nil {
		t.Fatal(err)
	}
	f, err := OpenV2(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	info := f.Info()
	if info.Version != 2 {
		t.Errorf("version = %d, want 2", info.Version)
	}
	if info.Records != 2500 {
		t.Errorf("records = %d, want 2500", info.Records)
	}
	if len(info.Chunks) != 3 { // 1000 + 1000 + 500
		t.Fatalf("chunks = %d, want 3", len(info.Chunks))
	}
	wantWrites := int64(0)
	for _, r := range tr.Records {
		if r.Write {
			wantWrites++
		}
	}
	if info.Writes != wantWrites {
		t.Errorf("writes = %d, want %d", info.Writes, wantWrites)
	}
	if info.FirstAt != tr.Records[0].At || info.LastAt != tr.Records[len(tr.Records)-1].At {
		t.Errorf("span [%d,%d], want [%d,%d]", info.FirstAt, info.LastAt,
			tr.Records[0].At, tr.Records[len(tr.Records)-1].At)
	}
	// Per-chunk stats must agree with the records they cover.
	idx := 0
	for ci, c := range info.Chunks {
		if c.FirstAt != tr.Records[idx].At {
			t.Errorf("chunk %d firstAt = %d, want %d", ci, c.FirstAt, tr.Records[idx].At)
		}
		last := idx + int(c.Count) - 1
		if c.LastAt != tr.Records[last].At {
			t.Errorf("chunk %d lastAt = %d, want %d", ci, c.LastAt, tr.Records[last].At)
		}
		idx += int(c.Count)
	}
}

// TestStreamAt seeks to every chunk boundary and requires the stream to
// produce exactly the record suffix starting there.
func TestStreamAt(t *testing.T) {
	tr := synthTrace(1700, 5)
	var buf bytes.Buffer
	if err := tr.SaveV2Chunked(&buf, 500); err != nil {
		t.Fatal(err)
	}
	f, err := OpenV2(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	start := 0
	for ci := 0; ci <= len(f.Info().Chunks); ci++ {
		s := f.StreamAt(ci)
		var got []Record
		var rec Record
		for s.Next(&rec) {
			got = append(got, rec)
		}
		if err := s.Err(); err != nil {
			t.Fatalf("chunk %d: %v", ci, err)
		}
		recordsEqual(t, got, tr.Records[start:])
		if ci < len(f.Info().Chunks) {
			start += int(f.Info().Chunks[ci].Count)
		}
	}
	if s := f.StreamAt(99); s.Next(new(Record)) || s.Err() == nil {
		t.Error("out-of-range chunk index should error")
	}
}

func TestSaveV2RejectsUnorderedWithoutWriting(t *testing.T) {
	tr := &Trace{Records: []Record{{At: 10, Addr: 64}, {At: 5, Addr: 128}}}
	var buf bytes.Buffer
	err := tr.SaveV2(&buf)
	if err == nil || !strings.Contains(err.Error(), "not time-ordered") {
		t.Fatalf("err = %v, want ordering error", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("wrote %d bytes before failing; torn output", buf.Len())
	}
}

func TestSaveRejectsUnorderedWithoutWriting(t *testing.T) {
	tr := &Trace{Records: []Record{{At: 10, Addr: 64}, {At: 5, Addr: 128}}}
	var buf bytes.Buffer
	err := tr.Save(&buf)
	if err == nil || !strings.Contains(err.Error(), "not time-ordered") {
		t.Fatalf("err = %v, want ordering error", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("wrote %d bytes before failing; torn output", buf.Len())
	}
}

func TestV2WriterRejectsOutOfOrderAppend(t *testing.T) {
	var buf bytes.Buffer
	w := NewV2Writer(&buf, 16)
	if err := w.Append(Record{At: 100, Addr: 64}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{At: 99, Addr: 64}); err == nil {
		t.Fatal("out-of-order append accepted")
	}
	if err := w.Close(); err == nil {
		t.Fatal("Close after failed append should report the error")
	}
}

// TestReplayStreamIdentity is the tentpole acceptance check: a streaming
// replay of the v2 encoding must be bit-identical (the full ReplayResult,
// which embeds controller stats, device stats, and the energy breakdown)
// to the materialized v1 replay, across skip/noskip and parallel drivers.
func TestReplayStreamIdentity(t *testing.T) {
	tr := synthTrace(4000, 42)
	var v1, v2 bytes.Buffer
	if err := tr.Save(&v1); err != nil {
		t.Fatal(err)
	}
	if err := tr.SaveV2Chunked(&v2, 512); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, opt := range []ReplayOpts{{}, {NoSkip: true}, {Parallel: 2}} {
		want, err := ReplayWith(loaded, memctrl.DefaultConfig(), opt)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Open(bytes.NewReader(v2.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		got, err := ReplayStream(s, memctrl.DefaultConfig(), opt)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("opt %+v: streaming v2 replay diverged:\n got %+v\nwant %+v", opt, got, want)
		}
		// The seekable path must replay identically too.
		f, err := OpenV2(bytes.NewReader(v2.Bytes()), int64(v2.Len()))
		if err != nil {
			t.Fatal(err)
		}
		got2, err := ReplayStream(f.Stream(), memctrl.DefaultConfig(), opt)
		if err != nil {
			t.Fatal(err)
		}
		if got2 != want {
			t.Errorf("opt %+v: V2File replay diverged", opt)
		}
	}
}

// TestReplayStreamDecodeError verifies a mid-stream decode failure
// surfaces as an error after the issued prefix drains, not a panic or a
// silent truncation.
func TestReplayStreamDecodeError(t *testing.T) {
	tr := synthTrace(2000, 9)
	var buf bytes.Buffer
	if err := tr.SaveV2Chunked(&buf, 256); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)/2] ^= 0x40 // corrupt a mid-file chunk
	s, err := Open(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayStream(s, memctrl.DefaultConfig(), ReplayOpts{}); err == nil {
		t.Fatal("replay of corrupt stream succeeded")
	}
}

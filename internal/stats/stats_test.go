package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRatioAndPct(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Error("division by zero must yield 0")
	}
	if Ratio(3, 4) != 0.75 {
		t.Error("Ratio(3,4) != 0.75")
	}
	if Pct(1, 4) != 25 {
		t.Error("Pct(1,4) != 25")
	}
}

func TestHistBasics(t *testing.T) {
	h := NewHist(8)
	for i := 0; i < 4; i++ {
		h.Add(1)
	}
	h.Add(8)
	h.Add(100) // clamps to 8
	h.Add(-3)  // clamps to 0
	if h.N != 7 {
		t.Errorf("N = %d, want 7", h.N)
	}
	if h.Buckets[8] != 2 || h.Buckets[0] != 1 {
		t.Error("clamping failed")
	}
	if got := h.Share(1); got != 4.0/7 {
		t.Errorf("Share(1) = %v", got)
	}
	if h.Share(-1) != 0 || h.Share(99) != 0 {
		t.Error("out-of-range share must be 0")
	}
	want := (4.0*1 + 2*8 + 0) / 7
	if got := h.Mean(); got != want {
		t.Errorf("Mean = %v, want %v", got, want)
	}
}

func TestHistMerge(t *testing.T) {
	a, b := NewHist(4), NewHist(4)
	a.Add(1)
	b.Add(2)
	b.Add(2)
	a.Merge(b)
	if a.N != 3 || a.Buckets[2] != 2 {
		t.Error("merge failed")
	}
}

// TestHistOverflowCounters pins that edge clamping is observable: a
// saturated top bucket must be distinguishable from legitimately-maximal
// observations.
func TestHistOverflowCounters(t *testing.T) {
	h := NewHist(8)
	h.Add(8)   // legitimate top bucket, no overflow
	h.Add(9)   // clamped
	h.Add(100) // clamped
	h.Add(-1)  // clamped low
	if h.Overflow != 2 {
		t.Errorf("Overflow = %d, want 2", h.Overflow)
	}
	if h.Underflow != 1 {
		t.Errorf("Underflow = %d, want 1", h.Underflow)
	}
	if h.Buckets[8] != 3 || h.Buckets[0] != 1 || h.N != 4 {
		t.Errorf("buckets perturbed: %+v", h)
	}

	o := NewHist(8)
	o.Add(42)
	o.Merge(h)
	if o.Overflow != 3 || o.Underflow != 1 {
		t.Errorf("merged Overflow/Underflow = %d/%d, want 3/1", o.Overflow, o.Underflow)
	}
}

func TestHistSharesSumToOne(t *testing.T) {
	f := func(vals []uint8) bool {
		h := NewHist(8)
		for _, v := range vals {
			h.Add(int(v % 12))
		}
		if len(vals) == 0 {
			return true
		}
		var sum float64
		for i := range h.Buckets {
			sum += h.Share(i)
		}
		return sum > 0.999 && sum < 1.001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.Row("alpha", 1.5)
	tb.Row("b", 42)
	out := tb.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "1.500") || !strings.Contains(out, "42") {
		t.Errorf("table output missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Errorf("table has %d lines, want 4 (header, rule, 2 rows)", len(lines))
	}
	if len(lines[0]) != len(lines[1]) {
		t.Errorf("rule width %d != header width %d", len(lines[1]), len(lines[0]))
	}
}

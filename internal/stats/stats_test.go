package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRatioAndPct(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Error("division by zero must yield 0")
	}
	if Ratio(3, 4) != 0.75 {
		t.Error("Ratio(3,4) != 0.75")
	}
	if Pct(1, 4) != 25 {
		t.Error("Pct(1,4) != 25")
	}
}

func TestHistBasics(t *testing.T) {
	h := NewHist(8)
	for i := 0; i < 4; i++ {
		h.Add(1)
	}
	h.Add(8)
	h.Add(100) // clamps to 8
	h.Add(-3)  // clamps to 0
	if h.N != 7 {
		t.Errorf("N = %d, want 7", h.N)
	}
	if h.Buckets[8] != 2 || h.Buckets[0] != 1 {
		t.Error("clamping failed")
	}
	if got := h.Share(1); got != 4.0/7 {
		t.Errorf("Share(1) = %v", got)
	}
	if h.Share(-1) != 0 || h.Share(99) != 0 {
		t.Error("out-of-range share must be 0")
	}
	want := (4.0*1 + 2*8 + 0) / 7
	if got := h.Mean(); got != want {
		t.Errorf("Mean = %v, want %v", got, want)
	}
}

func TestHistMerge(t *testing.T) {
	a, b := NewHist(4), NewHist(4)
	a.Add(1)
	b.Add(2)
	b.Add(2)
	a.Merge(b)
	if a.N != 3 || a.Buckets[2] != 2 {
		t.Error("merge failed")
	}
}

// TestHistOverflowCounters pins that edge clamping is observable: a
// saturated top bucket must be distinguishable from legitimately-maximal
// observations.
func TestHistOverflowCounters(t *testing.T) {
	h := NewHist(8)
	h.Add(8)   // legitimate top bucket, no overflow
	h.Add(9)   // clamped
	h.Add(100) // clamped
	h.Add(-1)  // clamped low
	if h.Overflow != 2 {
		t.Errorf("Overflow = %d, want 2", h.Overflow)
	}
	if h.Underflow != 1 {
		t.Errorf("Underflow = %d, want 1", h.Underflow)
	}
	if h.Buckets[8] != 3 || h.Buckets[0] != 1 || h.N != 4 {
		t.Errorf("buckets perturbed: %+v", h)
	}

	o := NewHist(8)
	o.Add(42)
	o.Merge(h)
	if o.Overflow != 3 || o.Underflow != 1 {
		t.Errorf("merged Overflow/Underflow = %d/%d, want 3/1", o.Overflow, o.Underflow)
	}
}

func TestHistSharesSumToOne(t *testing.T) {
	f := func(vals []uint8) bool {
		h := NewHist(8)
		for _, v := range vals {
			h.Add(int(v % 12))
		}
		if len(vals) == 0 {
			return true
		}
		var sum float64
		for i := range h.Buckets {
			sum += h.Share(i)
		}
		return sum > 0.999 && sum < 1.001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestHistQuantileBoundaries pins the quantile convention exactly at the
// bucket edges: with four observations of 1 and four of 3, the 50th
// percentile must resolve to the lower bucket (cumulative count reaches
// exactly half there) and anything above it to the upper.
func TestHistQuantileBoundaries(t *testing.T) {
	h := NewHist(8)
	for i := 0; i < 4; i++ {
		h.Add(1)
		h.Add(3)
	}
	cases := []struct {
		q    float64
		want float64
	}{
		{-1, 1}, {0, 1}, {0.25, 1}, {0.5, 1}, // cum hits 4/8 at bucket 1
		{0.500001, 3}, {0.75, 3}, {1, 3}, {2, 3},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if (&Hist{Buckets: make([]int64, 4)}).Quantile(0.5) != 0 {
		t.Error("empty histogram must report 0")
	}
}

// TestHistQuantileClamped pins the Overflow/Underflow interaction: clamped
// observations participate at the edge buckets, so extreme quantiles land
// on the edges rather than disappearing.
func TestHistQuantileClamped(t *testing.T) {
	h := NewHist(4)
	h.Add(-5) // clamps to 0
	h.Add(2)
	h.Add(99) // clamps to 4
	if got := h.Quantile(0); got != 0 {
		t.Errorf("Quantile(0) = %v, want 0 (underflow edge)", got)
	}
	if got := h.Quantile(1); got != 4 {
		t.Errorf("Quantile(1) = %v, want 4 (overflow edge)", got)
	}
	if h.Overflow != 1 || h.Underflow != 1 {
		t.Errorf("clamp counters = %d/%d, want 1/1", h.Overflow, h.Underflow)
	}
}

// TestLogHistBuckets pins the log2 bucket edges: 0 is its own bucket, and
// each power of two opens a new one.
func TestLogHistBuckets(t *testing.T) {
	var h LogHist
	for _, v := range []int64{0, 1, 2, 3, 4, 7, 8, -1} {
		h.Add(v)
	}
	if h.N != 8 || h.Underflow != 1 {
		t.Fatalf("N=%d Underflow=%d, want 8/1", h.N, h.Underflow)
	}
	want := map[int]int64{0: 2, 1: 1, 2: 2, 3: 2, 4: 1} // -1 clamps into bucket 0
	for i, c := range h.Buckets {
		if c != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, c, want[i])
		}
	}
}

// TestLogHistQuantile pins the upper-edge estimate at bucket boundaries:
// values 4..7 share bucket 3, whose representative is 7.
func TestLogHistQuantile(t *testing.T) {
	var h LogHist
	for i := 0; i < 9; i++ {
		h.Add(1) // bucket 1, exact
	}
	h.Add(5) // bucket 3 -> reported as 7
	if got := h.Quantile(0.5); got != 1 {
		t.Errorf("p50 = %v, want 1", got)
	}
	if got := h.Quantile(0.9); got != 1 {
		t.Errorf("p90 = %v, want 1 (cum reaches 9/10 in bucket 1)", got)
	}
	if got := h.Quantile(0.99); got != 7 {
		t.Errorf("p99 = %v, want 7 (upper edge of bucket 3)", got)
	}
	if got := (&LogHist{}).Quantile(0.99); got != 0 {
		t.Errorf("empty LogHist quantile = %v, want 0", got)
	}

	var zeros LogHist
	zeros.Add(0)
	if got := zeros.Quantile(1); got != 0 {
		t.Errorf("all-zero quantile = %v, want 0", got)
	}
}

func TestLogHistMerge(t *testing.T) {
	var a, b LogHist
	a.Add(1)
	b.Add(16)
	b.Add(-2)
	a.Merge(&b)
	if a.N != 3 || a.Underflow != 1 || a.Buckets[5] != 1 || a.Buckets[1] != 1 {
		t.Errorf("merge failed: %+v", a)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.Row("alpha", 1.5)
	tb.Row("b", 42)
	out := tb.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "1.500") || !strings.Contains(out, "42") {
		t.Errorf("table output missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Errorf("table has %d lines, want 4 (header, rule, 2 rows)", len(lines))
	}
	if len(lines[0]) != len(lines[1]) {
		t.Errorf("rule width %d != header width %d", len(lines[1]), len(lines[0]))
	}
}

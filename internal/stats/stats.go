// Package stats provides the small counting and formatting helpers shared
// by the simulator, the experiment harness, and the CLI tools: ratio-safe
// division, fixed-bucket histograms, and plain-text table rendering for the
// paper's tables and figures.
package stats

import (
	"fmt"
	"strings"
)

// Ratio returns num/den, or 0 when den is 0. Every hit-rate and share in
// the experiment reports goes through it so empty runs render as zeros
// rather than NaNs.
func Ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// Pct returns num/den as a percentage.
func Pct(num, den float64) float64 { return 100 * Ratio(num, den) }

// Hist is a fixed-bucket histogram of non-negative integer observations
// (e.g. dirty words per line: buckets 0..8).
type Hist struct {
	Buckets []int64
	N       int64
	// Overflow counts observations that exceeded the top bucket and were
	// clamped into it (Underflow is the negative-value equivalent). A
	// silent clamp would make a saturated top bucket indistinguishable
	// from a legitimate one in telemetry dumps; these counters keep the
	// saturation visible.
	Overflow  int64
	Underflow int64
}

// NewHist creates a histogram with buckets 0..max.
func NewHist(max int) *Hist { return &Hist{Buckets: make([]int64, max+1)} }

// Add records one observation; out-of-range values clamp to the edges and
// are tallied in Overflow/Underflow so the clamping is observable.
func (h *Hist) Add(v int) {
	if v < 0 {
		v = 0
		h.Underflow++
	}
	if v >= len(h.Buckets) {
		v = len(h.Buckets) - 1
		h.Overflow++
	}
	h.Buckets[v]++
	h.N++
}

// Share returns bucket b's fraction of all observations.
func (h *Hist) Share(b int) float64 {
	if b < 0 || b >= len(h.Buckets) {
		return 0
	}
	return Ratio(float64(h.Buckets[b]), float64(h.N))
}

// Mean returns the average observed value.
func (h *Hist) Mean() float64 {
	var sum int64
	for v, c := range h.Buckets {
		sum += int64(v) * c
	}
	return Ratio(float64(sum), float64(h.N))
}

// Merge adds other's buckets into h; histograms must have the same size.
func (h *Hist) Merge(other *Hist) {
	for i, c := range other.Buckets {
		h.Buckets[i] += c
	}
	h.N += other.N
	h.Overflow += other.Overflow
	h.Underflow += other.Underflow
}

// Table renders aligned plain-text tables for the experiment reports.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// Row appends a row; cells are formatted with %v, floats with 3 decimals.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case float32:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with column alignment.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

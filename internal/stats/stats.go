// Package stats provides the small counting and formatting helpers shared
// by the simulator, the experiment harness, and the CLI tools: ratio-safe
// division, fixed-bucket histograms, and plain-text table rendering for the
// paper's tables and figures.
package stats

import (
	"fmt"
	"math/bits"
	"strings"
)

// Ratio returns num/den, or 0 when den is 0. Every hit-rate and share in
// the experiment reports goes through it so empty runs render as zeros
// rather than NaNs.
func Ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// Pct returns num/den as a percentage.
func Pct(num, den float64) float64 { return 100 * Ratio(num, den) }

// Hist is a fixed-bucket histogram of non-negative integer observations
// (e.g. dirty words per line: buckets 0..8).
type Hist struct {
	Buckets []int64
	N       int64
	// Overflow counts observations that exceeded the top bucket and were
	// clamped into it (Underflow is the negative-value equivalent). A
	// silent clamp would make a saturated top bucket indistinguishable
	// from a legitimate one in telemetry dumps; these counters keep the
	// saturation visible.
	Overflow  int64
	Underflow int64
}

// NewHist creates a histogram with buckets 0..max.
func NewHist(max int) *Hist { return &Hist{Buckets: make([]int64, max+1)} }

// Add records one observation; out-of-range values clamp to the edges and
// are tallied in Overflow/Underflow so the clamping is observable.
func (h *Hist) Add(v int) {
	if v < 0 {
		v = 0
		h.Underflow++
	}
	if v >= len(h.Buckets) {
		v = len(h.Buckets) - 1
		h.Overflow++
	}
	h.Buckets[v]++
	h.N++
}

// Share returns bucket b's fraction of all observations.
func (h *Hist) Share(b int) float64 {
	if b < 0 || b >= len(h.Buckets) {
		return 0
	}
	return Ratio(float64(h.Buckets[b]), float64(h.N))
}

// Mean returns the average observed value.
func (h *Hist) Mean() float64 {
	var sum int64
	for v, c := range h.Buckets {
		sum += int64(v) * c
	}
	return Ratio(float64(sum), float64(h.N))
}

// Merge adds other's buckets into h; histograms must have the same size.
func (h *Hist) Merge(other *Hist) {
	for i, c := range other.Buckets {
		h.Buckets[i] += c
	}
	h.N += other.N
	h.Overflow += other.Overflow
	h.Underflow += other.Underflow
}

// Quantile returns the smallest bucket value whose cumulative count reaches
// the q-th fraction of all observations (q clamped to [0, 1]; 0 with no
// observations). Clamped observations participate at the edge they were
// clamped to, so a quantile landing in the top bucket with Overflow > 0 is
// a lower bound on the true value, and one landing in bucket 0 with
// Underflow > 0 is an upper bound.
func (h *Hist) Quantile(q float64) float64 {
	if h.N == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.N)
	var cum int64
	for v, c := range h.Buckets {
		cum += c
		if float64(cum) >= target && cum > 0 {
			return float64(v)
		}
	}
	return float64(len(h.Buckets) - 1)
}

// LogHist is a log2-bucketed histogram of non-negative int64 observations
// (latencies in cycles, sizes in bytes). Bucket 0 counts zeros; bucket i
// counts values in [2^(i-1), 2^i). The bucket array is a fixed-size value —
// no allocation on Add — so one can live inside a hot-path stats struct and
// be merged or snapshotted by plain assignment.
type LogHist struct {
	// N counts all observations; Underflow counts the negative ones, which
	// clamp into bucket 0 (same visibility rule as Hist).
	N         int64
	Underflow int64
	Buckets   [64]int64
}

// Add records one observation. Negative values clamp to bucket 0 and are
// tallied in Underflow.
func (h *LogHist) Add(v int64) {
	if v < 0 {
		v = 0
		h.Underflow++
	}
	h.Buckets[bits.Len64(uint64(v))]++
	h.N++
}

// Merge adds other's observations into h.
func (h *LogHist) Merge(other *LogHist) {
	for i, c := range other.Buckets {
		h.Buckets[i] += c
	}
	h.N += other.N
	h.Underflow += other.Underflow
}

// Quantile returns an upper-bound estimate of the q-th quantile: the
// inclusive upper edge (2^i - 1) of the smallest bucket whose cumulative
// count reaches the q-th fraction of all observations (q clamped to [0, 1];
// 0 with no observations). The log2 bucketing makes the estimate exact for
// zeros and ones and otherwise overestimates by strictly less than 2x.
func (h *LogHist) Quantile(q float64) float64 {
	if h.N == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.N)
	var cum int64
	for i, c := range h.Buckets {
		cum += c
		if float64(cum) >= target && cum > 0 {
			if i == 0 {
				return 0
			}
			return float64(uint64(1)<<uint(i) - 1)
		}
	}
	return float64(uint64(1)<<63 - 1)
}

// Table renders aligned plain-text tables for the experiment reports.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// Row appends a row; cells are formatted with %v, floats with 3 decimals.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case float32:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with column alignment.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Command doccheck is CI's documentation gate: it fails when an exported
// top-level symbol in any of the named package directories lacks a doc
// comment. It parses source directly (go/parser), so it needs no build and
// runs in milliseconds.
//
// A symbol passes when its own declaration carries a doc comment, or — for
// const/var/type specs inside a grouped declaration — when the group does.
// Test files are ignored.
//
// Usage: go run ./tools/doccheck [DIR ...]   (defaults to the godoc-
// guaranteed packages: ./internal/power ./internal/dram)
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = []string{"./internal/power", "./internal/dram"}
	}
	missing := 0
	for _, dir := range dirs {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %s: %v\n", dir, err)
			os.Exit(1)
		}
		for _, pkg := range pkgs {
			for _, file := range pkg.Files {
				missing += checkFile(fset, file)
			}
		}
	}
	if missing > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d exported symbol(s) without doc comments\n", missing)
		os.Exit(1)
	}
}

// checkFile reports every undocumented exported top-level symbol in one
// file and returns how many it found.
func checkFile(fset *token.FileSet, file *ast.File) int {
	missing := 0
	report := func(pos token.Pos, kind, name string) {
		fmt.Printf("%s: undocumented exported %s %s\n", fset.Position(pos), kind, name)
		missing++
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil && exportedRecv(d) {
				report(d.Pos(), "function", d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					for _, name := range s.Names {
						if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							report(name.Pos(), kindOf(d.Tok), name.Name)
						}
					}
				}
			}
		}
	}
	return missing
}

// exportedRecv reports whether a function is plain or a method on an
// exported type — methods on unexported types are not part of the godoc
// surface, so they are exempt.
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Strip generic receiver type parameters, e.g. List[T].
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.IsExported()
	}
	return true
}

// kindOf names a value declaration's token for the report line.
func kindOf(tok token.Token) string {
	if tok == token.CONST {
		return "constant"
	}
	return "variable"
}

package main

import (
	"fmt"
	"os"
	"runtime"
)

// The -pdes gate guards parallel-in-time ticking (internal/pdes +
// memctrl's conservative dispatch) from both directions, as seq/par
// ratios measured back to back on the same host (main.go explains why
// ratios, not stored ns/op):
//
//   - The multi-channel pair (four-core lbm over four channels, a
//     write-drain-heavy workload whose ticks are almost all provably
//     completion-free and therefore dispatch to the worker team) gates
//     the speedup floor: partitioned ticking must pay for itself where
//     it is supposed to. A true parallel win needs real cores, so the
//     floor is only *enforced* when runtime.GOMAXPROCS reports at least
//     pdesFloorMinProcs — below that the measurement is still taken and
//     recorded (with floor_enforced=false in the report), so a
//     single-core CI host degrades the gate to a regression record, not
//     a spurious failure.
//   - The one-channel pair gates the overhead ceiling, always: with
//     nothing to partition EnableParallel declines, so requesting -par
//     must cost nothing regardless of host parallelism. This is the
//     degenerate-case contract and it holds on any machine.
//
// The two runs of each pair are bit-identical by construction (the pdes
// identity suite enforces it), so ns/op differences isolate dispatch
// cost and scheduling alone.
const (
	pdesSpeedupFloor  = 1.4
	pdesOverheadCeil  = 1.05
	pdesFloorMinProcs = 4 // floor needs one core per channel share to mean anything
	pdesMultiSeq      = "BenchmarkPdesMultiChanSeq"
	pdesMultiPar      = "BenchmarkPdesMultiChanPar"
	pdesOneSeq        = "BenchmarkPdesOneChanSeq"
	pdesOnePar        = "BenchmarkPdesOneChanPar"
)

type pdesPair struct {
	SeqNsOp float64 `json:"seq_ns_op"`
	ParNsOp float64 `json:"par_ns_op"`
	Speedup float64 `json:"seq_over_par"`
}

type pdesReport struct {
	MultiChannel  pdesPair `json:"multi_channel"` // 4-core lbm, 4 channels, 4 worker shares
	OneChannel    pdesPair `json:"one_channel"`   // degenerate: EnableParallel declines
	SpeedupFloor  float64  `json:"multi_channel_speedup_floor"`
	FloorEnforced bool     `json:"floor_enforced"` // false when GOMAXPROCS < min procs: recorded, not gated
	FloorMinProcs int      `json:"floor_min_gomaxprocs"`
	OverheadCeil  float64  `json:"one_channel_overhead_ceiling"`
	GoMaxProcs    int      `json:"gomaxprocs"`
	Count         int      `json:"count"`
	Pass          bool     `json:"pass"`
	// Reference records the development-time measurements that sized the
	// gate (best of 3, single host). CI never compares against these —
	// they are context for a human reading the artifact, not a baseline.
	Reference pdesRef `json:"reference_dev_measurements"`
}

type pdesRef struct {
	Host          string  `json:"host"`
	MultiSeqMs    float64 `json:"multi_channel_seq_ms"`
	MultiParMs    float64 `json:"multi_channel_par_ms"`
	OneSeqMs      float64 `json:"one_channel_seq_ms"`
	OneParMs      float64 `json:"one_channel_par_ms"`
	ParallelTicks string  `json:"parallel_dispatch"`
	Detail        string  `json:"detail"`
}

func runPdes(out string, count int) {
	mins := runBench("BenchmarkPdes", "./internal/sim", count)
	for _, n := range []string{pdesMultiSeq, pdesMultiPar, pdesOneSeq, pdesOnePar} {
		if _, ok := mins[n]; !ok {
			fmt.Fprintf(os.Stderr, "benchgate: missing benchmark %s (parsed %v)\n", n, mins)
			os.Exit(1)
		}
	}
	procs := runtime.GOMAXPROCS(0)
	rep := pdesReport{
		MultiChannel: pdesPair{
			SeqNsOp: mins[pdesMultiSeq],
			ParNsOp: mins[pdesMultiPar],
			Speedup: mins[pdesMultiSeq] / mins[pdesMultiPar],
		},
		OneChannel: pdesPair{
			SeqNsOp: mins[pdesOneSeq],
			ParNsOp: mins[pdesOnePar],
			Speedup: mins[pdesOneSeq] / mins[pdesOnePar],
		},
		SpeedupFloor:  pdesSpeedupFloor,
		FloorEnforced: procs >= pdesFloorMinProcs,
		FloorMinProcs: pdesFloorMinProcs,
		OverheadCeil:  pdesOverheadCeil,
		GoMaxProcs:    procs,
		Count:         count,
		Reference: pdesRef{
			Host:          "single-core development container (GOMAXPROCS=1; floor not enforceable)",
			MultiSeqMs:    1481.0,
			MultiParMs:    1671.0,
			OneSeqMs:      1582.0,
			OneParMs:      1573.0,
			ParallelTicks: "~35k team dispatches covering ~115k channel ticks per multi-channel run",
			Detail:        "lbm scatter stores keep all four write queues draining with empty read queues, so nearly every executed tick is provably completion-free and dispatches the full channel set",
		},
	}
	rep.Pass = rep.OneChannel.ParNsOp <= rep.OneChannel.SeqNsOp*pdesOverheadCeil &&
		(!rep.FloorEnforced || rep.MultiChannel.Speedup >= pdesSpeedupFloor)
	writeReport(out, rep)
	floorNote := fmt.Sprintf("floor %.1fx", pdesSpeedupFloor)
	if !rep.FloorEnforced {
		floorNote = fmt.Sprintf("floor %.1fx not enforced: GOMAXPROCS=%d < %d", pdesSpeedupFloor, procs, pdesFloorMinProcs)
	}
	fmt.Printf("benchgate: multi-chan %.1fms seq / %.1fms par (%.2fx, %s); one-chan %.1fms seq / %.1fms par (ceiling %.2fx) -> %s\n",
		rep.MultiChannel.SeqNsOp/1e6, rep.MultiChannel.ParNsOp/1e6, rep.MultiChannel.Speedup, floorNote,
		rep.OneChannel.SeqNsOp/1e6, rep.OneChannel.ParNsOp/1e6, pdesOverheadCeil,
		map[bool]string{true: "PASS", false: "FAIL"}[rep.Pass])
	if !rep.Pass {
		fmt.Fprintln(os.Stderr, "benchgate: parallel-ticking gate failed: either the partitioned dispatch lost its multi-channel speedup, or requesting -par now taxes a run with nothing to partition")
		os.Exit(1)
	}
}

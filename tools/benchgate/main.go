// Command benchgate is CI's telemetry-overhead gate. It runs the paired
// internal/obs hot-path benchmarks (the same DRAM command loop with
// telemetry disabled and fully enabled), takes the minimum ns/op of
// several repetitions of each, writes the measurements to BENCH_obs.json,
// and fails when the telemetry-off path costs more than 1.05x the
// telemetry-on path.
//
// The invariant under guard is directional, not absolute: the disabled
// path must stay at least as cheap as the enabled one. A disabled path
// that drifts up toward (or past) the enabled cost means "off" is no
// longer free — a broken level guard, a probe read left in the per-cycle
// path — which is exactly the class of regression a hand-run benchmark
// comparison would catch and CI otherwise cannot (it has no stored
// baseline hardware-normalized ns/op to diff against).
//
// Usage: go run ./tools/benchgate [-out BENCH_obs.json] [-count 5]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
)

const threshold = 1.05

type report struct {
	OffNsOp   float64 `json:"off_ns_op"`
	OnNsOp    float64 `json:"on_ns_op"`
	Ratio     float64 `json:"off_over_on_ratio"`
	Threshold float64 `json:"threshold"`
	Count     int     `json:"count"`
	Pass      bool    `json:"pass"`
}

// benchLine matches e.g. "BenchmarkTelemetryOffHotPath  1  115029 ns/op".
var benchLine = regexp.MustCompile(`(?m)^(BenchmarkTelemetry\w+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

func main() {
	out := flag.String("out", "BENCH_obs.json", "where to write the measurement report")
	count := flag.Int("count", 5, "benchmark repetitions (minimum is kept)")
	flag.Parse()

	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", "BenchmarkTelemetry", "-benchtime", "1x",
		"-count", strconv.Itoa(*count), "./internal/obs")
	raw, err := cmd.CombinedOutput()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: benchmark run failed: %v\n%s", err, raw)
		os.Exit(1)
	}

	// Keep the minimum per benchmark: noise on shared CI machines only
	// inflates timings, so the minimum is the best estimate of true cost.
	mins := map[string]float64{}
	for _, m := range benchLine.FindAllStringSubmatch(string(raw), -1) {
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		if cur, ok := mins[m[1]]; !ok || ns < cur {
			mins[m[1]] = ns
		}
	}
	off, okOff := mins["BenchmarkTelemetryOffHotPath"]
	on, okOn := mins["BenchmarkTelemetryOnHotPath"]
	if !okOff || !okOn {
		fmt.Fprintf(os.Stderr, "benchgate: missing benchmark results (parsed %v) in:\n%s", mins, raw)
		os.Exit(1)
	}

	rep := report{
		OffNsOp:   off,
		OnNsOp:    on,
		Ratio:     off / on,
		Threshold: threshold,
		Count:     *count,
		Pass:      off <= on*threshold,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
	fmt.Printf("benchgate: off %.0f ns/op, on %.0f ns/op, ratio %.3f (threshold %.2f) -> %s\n",
		rep.OffNsOp, rep.OnNsOp, rep.Ratio, rep.Threshold, map[bool]string{true: "PASS", false: "FAIL"}[rep.Pass])
	if !rep.Pass {
		fmt.Fprintln(os.Stderr, "benchgate: telemetry-off hot path is no longer cheap relative to telemetry-on; a disabled-path guard has likely broken")
		os.Exit(1)
	}
}

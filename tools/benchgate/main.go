// Command benchgate is CI's performance gate. It has two modes, both built
// on the same principle: CI has no stored hardware-normalized ns/op to
// diff against, so every invariant under guard is a *ratio between two
// benchmarks run back to back on the same host*, which cancels the
// machine out.
//
// The default mode is the telemetry-overhead gate: it runs the paired
// internal/obs hot-path benchmarks (the same DRAM command loop with
// telemetry disabled and fully enabled), takes the minimum ns/op of
// several repetitions of each, writes the measurements to BENCH_obs.json,
// and fails when the telemetry-off path costs more than 1.05x the
// telemetry-on path — a disabled path drifting up toward the enabled cost
// means "off" is no longer free (a broken level guard, a probe read left
// in the per-cycle path).
//
// -speed switches to the cycle-skipping gate: it runs the paired
// full-system internal/sim benchmarks (identical deterministic runs with
// event-driven fast-forwarding on and off) and fails when either
//
//   - the memory-bound pair's noskip/skip ratio falls below its floor
//     (the skip path stopped skipping, or its bookkeeping got expensive —
//     the ">5% skip-path regression" class of bug shows up here first,
//     since the run work is identical by construction), or
//   - the compute-bound skip run costs more than 1.05x its noskip twin
//     (the NextEvent bookkeeping must be free when there is nothing to
//     skip, which also guards the per-cycle baseline itself: both runs
//     share every instruction of the simulation proper).
//
// Measurements go to BENCH_speed.json, alongside a reference block with
// the development-time absolute numbers against the pre-skipping tree.
//
// -warm switches to the warmup-checkpointing gate: it runs the paired
// full-system internal/sim campaign benchmarks (four configurations
// sharing one warmup fingerprint, with checkpoint reuse on and off) and
// fails when either
//
//   - the campaign's cold/checkpoint ratio falls below the 1.3x floor
//     (restoring a warmed snapshot stopped paying for itself), or
//   - the single-run producer pair (warm + serialize + measure versus a
//     monolithic run) exceeds its overhead ceiling — serializing the
//     ~1.7 MB snapshot costs 1-3 ms regardless of run length, so a ratio
//     past the ceiling means serialization grew with the run.
//
// Measurements go to BENCH_warm.json.
//
// -power switches to the energy-band gate (power.go): a deterministic
// configuration matrix is simulated and its calibrated min/nominal/max
// power bands are compared against the checked-in golden table
// (golden_power.json), so a change that silently shifts power-model
// numbers fails CI until the table is regenerated (-update-power) and the
// diff committed. Measurements go to BENCH_power.json.
//
// -hammer switches to the RowHammer mitigation-overhead gate (hammer.go):
// paired full-system runs with the Alert/RFM mitigation on and off, on an
// attacking and a benign workload, gated on the on/off wall-clock ratios.
// Measurements go to BENCH_hammer.json.
//
// -lat switches to the latency-attribution overhead gate (lat.go): paired
// full-system runs with per-request latency attribution on and off, gated
// on the on/off wall-clock ratio. Measurements go to BENCH_lat.json.
//
// -pdes switches to the parallel-in-time ticking gate (pdes.go): paired
// full-system runs with the conservative PDES channel dispatch on and
// off. The multi-channel pair gates a speedup floor (enforced only when
// the host has real cores to parallelize over — GOMAXPROCS is recorded
// in the report); the one-channel pair gates the degenerate-case
// overhead ceiling unconditionally. Measurements go to BENCH_pdes.json.
//
// -ingest switches to the workload-ingestion gate (ingest.go): the v2
// trace decoder must sustain the records/sec floor and the streaming
// replay loop must run at zero steady-state allocations per record.
// These are absolute contracts of the format, not host-relative ratios.
// Measurements go to BENCH_ingest.json.
//
// Usage: go run ./tools/benchgate [-speed|-warm|-power|-hammer|-lat|-pdes|-ingest] [-out FILE] [-count 5]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
)

const threshold = 1.05

// Floors/ceilings for the -speed gate. The memory-bound speedup floor sits
// well under the ~2.4x measured at development time so host variation
// cannot flake the gate, while still catching any change that stops the
// fast path from paying for itself.
const (
	speedupFloor  = 1.5
	overheadCeil  = 1.05
	memBoundSkip  = "BenchmarkSpeedMemBoundSkip"
	memBoundFull  = "BenchmarkSpeedMemBoundNoSkip"
	compBoundSkip = "BenchmarkSpeedComputeBoundSkip"
	compBoundFull = "BenchmarkSpeedComputeBoundNoSkip"
)

// Floors/ceilings for the -warm gate. The campaign floor is the feature's
// contract (a warmup-dominated campaign must run at least 1.3x faster with
// checkpoint reuse; ~2.1x measured at development time). The single-run
// ceiling is looser than the -speed one because the producer pair carries
// a real constant cost — serializing the snapshot, 1-3 ms against a
// ~150 ms run — that sits near the host noise floor.
const (
	warmSpeedupFloor = 1.3
	warmOverheadCeil = 1.10
	warmCampCkpt     = "BenchmarkWarmCampaignCheckpoint"
	warmCampCold     = "BenchmarkWarmCampaignCold"
	warmSingleCkpt   = "BenchmarkWarmSingleCheckpoint"
	warmSingleCold   = "BenchmarkWarmSingleCold"
)

type report struct {
	OffNsOp   float64 `json:"off_ns_op"`
	OnNsOp    float64 `json:"on_ns_op"`
	Ratio     float64 `json:"off_over_on_ratio"`
	Threshold float64 `json:"threshold"`
	Count     int     `json:"count"`
	Pass      bool    `json:"pass"`
}

type speedPair struct {
	SkipNsOp   float64 `json:"skip_ns_op"`
	NoSkipNsOp float64 `json:"noskip_ns_op"`
	Speedup    float64 `json:"noskip_over_skip"`
}

type speedReport struct {
	MemoryBound  speedPair `json:"memory_bound"`  // single-core LinkedList
	ComputeBound speedPair `json:"compute_bound"` // 4-core bzip2
	SpeedupFloor float64   `json:"memory_bound_speedup_floor"`
	OverheadCeil float64   `json:"compute_bound_overhead_ceiling"`
	Count        int       `json:"count"`
	Pass         bool      `json:"pass"`
	// Reference records the development-time absolute measurements that
	// motivated the gate (best of 3, single host), including the wall
	// clock of the same runs on the tree as it stood before event-driven
	// skipping landed. CI never compares against these — they are context
	// for a human reading the artifact, not a baseline.
	Reference speedRef `json:"reference_dev_measurements"`
}

type warmPair struct {
	CkptNsOp float64 `json:"checkpoint_ns_op"`
	ColdNsOp float64 `json:"cold_ns_op"`
	Ratio    float64 `json:"cold_over_checkpoint"`
}

type warmReport struct {
	Campaign     warmPair `json:"campaign"`   // 4 configs sharing one warmup fingerprint
	Single       warmPair `json:"single_run"` // producer path vs monolithic run
	SpeedupFloor float64  `json:"campaign_speedup_floor"`
	OverheadCeil float64  `json:"single_run_overhead_ceiling"`
	Count        int      `json:"count"`
	Pass         bool     `json:"pass"`
	// Reference records the development-time measurements that sized the
	// gate (best of 5, single host). CI never compares against these —
	// they are context for a human reading the artifact, not a baseline.
	Reference warmRef `json:"reference_dev_measurements"`
}

type warmRef struct {
	Host            string  `json:"host"`
	CampaignCkptMs  float64 `json:"campaign_checkpoint_ms"`
	CampaignColdMs  float64 `json:"campaign_cold_ms"`
	CampaignSpeedup float64 `json:"campaign_speedup"`
	CheckpointBytes int64   `json:"checkpoint_payload_bytes"`
	SerializeMs     float64 `json:"checkpoint_serialize_ms"`
}

type speedRef struct {
	Host             string  `json:"host"`
	MemBoundSkipMs   float64 `json:"memory_bound_skip_ms"`
	MemBoundNoSkipMs float64 `json:"memory_bound_noskip_ms"`
	MemBoundSeedMs   float64 `json:"memory_bound_preskip_tree_ms"`
	MemBoundVsSeed   float64 `json:"memory_bound_speedup_vs_preskip_tree"`
	GUPSSkipMs       float64 `json:"gups_skip_ms"`
	GUPSSeedMs       float64 `json:"gups_preskip_tree_ms"`
	GUPSVsSeed       float64 `json:"gups_speedup_vs_preskip_tree"`
}

// benchLine matches e.g. "BenchmarkTelemetryOffHotPath  1  115029 ns/op".
var benchLine = regexp.MustCompile(`(?m)^(Benchmark\w+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

func main() {
	speed := flag.Bool("speed", false, "run the cycle-skipping speed gate instead of the telemetry-overhead gate")
	warm := flag.Bool("warm", false, "run the warmup-checkpointing speed gate instead of the telemetry-overhead gate")
	pwr := flag.Bool("power", false, "run the energy-band golden-table gate instead of the telemetry-overhead gate")
	hammer := flag.Bool("hammer", false, "run the RowHammer mitigation-overhead gate instead of the telemetry-overhead gate")
	lat := flag.Bool("lat", false, "run the latency-attribution overhead gate instead of the telemetry-overhead gate")
	pdes := flag.Bool("pdes", false, "run the parallel-in-time ticking gate instead of the telemetry-overhead gate")
	ingest := flag.Bool("ingest", false, "run the workload-ingestion gate (v2 decode throughput, zero-alloc streaming replay) instead of the telemetry-overhead gate")
	out := flag.String("out", "", "where to write the measurement report (default BENCH_obs.json; BENCH_speed.json with -speed; BENCH_warm.json with -warm; BENCH_power.json with -power; BENCH_hammer.json with -hammer; BENCH_lat.json with -lat; BENCH_pdes.json with -pdes; BENCH_ingest.json with -ingest)")
	count := flag.Int("count", 5, "benchmark repetitions (minimum is kept)")
	updatePower, golden := powerFlags()
	flag.Parse()
	modes := 0
	for _, m := range []bool{*speed, *warm, *pwr, *hammer, *lat, *pdes, *ingest} {
		if m {
			modes++
		}
	}
	if modes > 1 {
		fmt.Fprintln(os.Stderr, "benchgate: -speed, -warm, -power, -hammer, -lat, -pdes, and -ingest are mutually exclusive")
		os.Exit(1)
	}
	if *out == "" {
		switch {
		case *speed:
			*out = "BENCH_speed.json"
		case *warm:
			*out = "BENCH_warm.json"
		case *pwr:
			*out = "BENCH_power.json"
		case *hammer:
			*out = "BENCH_hammer.json"
		case *lat:
			*out = "BENCH_lat.json"
		case *pdes:
			*out = "BENCH_pdes.json"
		case *ingest:
			*out = "BENCH_ingest.json"
		default:
			*out = "BENCH_obs.json"
		}
	}
	switch {
	case *speed:
		runSpeed(*out, *count)
	case *warm:
		runWarm(*out, *count)
	case *pwr:
		runPower(*out, *golden, *updatePower)
	case *hammer:
		runHammer(*out, *count)
	case *lat:
		runLat(*out, *count)
	case *pdes:
		runPdes(*out, *count)
	case *ingest:
		runIngest(*out, *count)
	default:
		runObs(*out, *count)
	}
}

// runBench runs the named benchmarks in pkg count times at -benchtime 1x
// and returns the minimum ns/op per benchmark: noise on shared CI machines
// only inflates timings, so the minimum is the best estimate of true cost.
func runBench(pattern, pkg string, count int) map[string]float64 {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", pattern, "-benchtime", "1x",
		"-count", strconv.Itoa(count), pkg)
	raw, err := cmd.CombinedOutput()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: benchmark run failed: %v\n%s", err, raw)
		os.Exit(1)
	}
	mins := map[string]float64{}
	for _, m := range benchLine.FindAllStringSubmatch(string(raw), -1) {
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		if cur, ok := mins[m[1]]; !ok || ns < cur {
			mins[m[1]] = ns
		}
	}
	return mins
}

func writeReport(out string, rep any) {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func runSpeed(out string, count int) {
	mins := runBench("BenchmarkSpeed", "./internal/sim", count)
	need := []string{memBoundSkip, memBoundFull, compBoundSkip, compBoundFull}
	for _, n := range need {
		if _, ok := mins[n]; !ok {
			fmt.Fprintf(os.Stderr, "benchgate: missing benchmark %s (parsed %v)\n", n, mins)
			os.Exit(1)
		}
	}
	rep := speedReport{
		MemoryBound: speedPair{
			SkipNsOp:   mins[memBoundSkip],
			NoSkipNsOp: mins[memBoundFull],
			Speedup:    mins[memBoundFull] / mins[memBoundSkip],
		},
		ComputeBound: speedPair{
			SkipNsOp:   mins[compBoundSkip],
			NoSkipNsOp: mins[compBoundFull],
			Speedup:    mins[compBoundFull] / mins[compBoundSkip],
		},
		SpeedupFloor: speedupFloor,
		OverheadCeil: overheadCeil,
		Count:        count,
		Reference: speedRef{
			Host:             "Intel Xeon @ 2.10GHz (development container)",
			MemBoundSkipMs:   35.6,
			MemBoundNoSkipMs: 86.6,
			MemBoundSeedMs:   119.5,
			MemBoundVsSeed:   3.36,
			GUPSSkipMs:       92.3,
			GUPSSeedMs:       165.0,
			GUPSVsSeed:       1.79,
		},
	}
	rep.Pass = rep.MemoryBound.Speedup >= speedupFloor &&
		rep.ComputeBound.SkipNsOp <= rep.ComputeBound.NoSkipNsOp*overheadCeil
	writeReport(out, rep)
	fmt.Printf("benchgate: mem-bound %.1fms skip / %.1fms noskip (%.2fx, floor %.1fx); compute-bound %.1fms skip / %.1fms noskip -> %s\n",
		rep.MemoryBound.SkipNsOp/1e6, rep.MemoryBound.NoSkipNsOp/1e6, rep.MemoryBound.Speedup, speedupFloor,
		rep.ComputeBound.SkipNsOp/1e6, rep.ComputeBound.NoSkipNsOp/1e6,
		map[bool]string{true: "PASS", false: "FAIL"}[rep.Pass])
	if !rep.Pass {
		fmt.Fprintln(os.Stderr, "benchgate: cycle-skipping gate failed: either the fast-forward path lost its speedup on the memory-bound run, or its bookkeeping now taxes the compute-bound run")
		os.Exit(1)
	}
}

func runWarm(out string, count int) {
	mins := runBench("BenchmarkWarm", "./internal/sim", count)
	need := []string{warmCampCkpt, warmCampCold, warmSingleCkpt, warmSingleCold}
	for _, n := range need {
		if _, ok := mins[n]; !ok {
			fmt.Fprintf(os.Stderr, "benchgate: missing benchmark %s (parsed %v)\n", n, mins)
			os.Exit(1)
		}
	}
	rep := warmReport{
		Campaign: warmPair{
			CkptNsOp: mins[warmCampCkpt],
			ColdNsOp: mins[warmCampCold],
			Ratio:    mins[warmCampCold] / mins[warmCampCkpt],
		},
		Single: warmPair{
			CkptNsOp: mins[warmSingleCkpt],
			ColdNsOp: mins[warmSingleCold],
			Ratio:    mins[warmSingleCold] / mins[warmSingleCkpt],
		},
		SpeedupFloor: warmSpeedupFloor,
		OverheadCeil: warmOverheadCeil,
		Count:        count,
		Reference: warmRef{
			Host:            "Intel Xeon @ 2.10GHz (development container)",
			CampaignCkptMs:  142.7,
			CampaignColdMs:  300.8,
			CampaignSpeedup: 2.11,
			CheckpointBytes: 1_658_243,
			SerializeMs:     2.0,
		},
	}
	rep.Pass = rep.Campaign.Ratio >= warmSpeedupFloor &&
		rep.Single.CkptNsOp <= rep.Single.ColdNsOp*warmOverheadCeil
	writeReport(out, rep)
	fmt.Printf("benchgate: campaign %.1fms ckpt / %.1fms cold (%.2fx, floor %.1fx); single %.1fms ckpt / %.1fms cold (ceiling %.2fx) -> %s\n",
		rep.Campaign.CkptNsOp/1e6, rep.Campaign.ColdNsOp/1e6, rep.Campaign.Ratio, warmSpeedupFloor,
		rep.Single.CkptNsOp/1e6, rep.Single.ColdNsOp/1e6, warmOverheadCeil,
		map[bool]string{true: "PASS", false: "FAIL"}[rep.Pass])
	if !rep.Pass {
		fmt.Fprintln(os.Stderr, "benchgate: warmup-checkpointing gate failed: either restoring a warmed snapshot no longer beats re-warming the campaign, or producing a snapshot now taxes a single run")
		os.Exit(1)
	}
}

func runObs(out string, count int) {
	mins := runBench("BenchmarkTelemetry", "./internal/obs", count)
	off, okOff := mins["BenchmarkTelemetryOffHotPath"]
	on, okOn := mins["BenchmarkTelemetryOnHotPath"]
	if !okOff || !okOn {
		fmt.Fprintf(os.Stderr, "benchgate: missing benchmark results (parsed %v)\n", mins)
		os.Exit(1)
	}

	rep := report{
		OffNsOp:   off,
		OnNsOp:    on,
		Ratio:     off / on,
		Threshold: threshold,
		Count:     count,
		Pass:      off <= on*threshold,
	}
	writeReport(out, rep)
	fmt.Printf("benchgate: off %.0f ns/op, on %.0f ns/op, ratio %.3f (threshold %.2f) -> %s\n",
		rep.OffNsOp, rep.OnNsOp, rep.Ratio, rep.Threshold, map[bool]string{true: "PASS", false: "FAIL"}[rep.Pass])
	if !rep.Pass {
		fmt.Fprintln(os.Stderr, "benchgate: telemetry-off hot path is no longer cheap relative to telemetry-on; a disabled-path guard has likely broken")
		os.Exit(1)
	}
}

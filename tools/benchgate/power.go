package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"

	"pradram/internal/memctrl"
	"pradram/internal/power"
	"pradram/internal/sim"
)

// The -power gate is CI's energy-accounting gate. Unlike the timing gates,
// it compares *values*, not wall-clock: the simulator is deterministic, so
// a small fixed-budget run produces the same energy breakdown on every
// host, and the calibrated min/nominal/max bands derived from it form a
// golden table (golden_power.json, checked in). The gate fails when
//
//   - any band is malformed (min > nominal or nominal > max),
//   - the "none" calibration stops being the identity (non-zero spread, or
//     a nominal that disagrees with the uncalibrated average power), or
//   - any band edge drifts from its golden value by more than the relative
//     tolerance — the "silent power-model drift" class of bug: a change
//     that shifts energy numbers without anyone noticing or bumping
//     ModelVersion.
//
// Intentional model changes regenerate the table with -update-power and
// commit the diff, which makes every power-model change visible in review.

// powerRelTol absorbs cross-architecture floating-point differences (the
// simulation is deterministic, but float reassociation across compilers is
// not guaranteed); real model changes move numbers by orders of magnitude
// more.
const powerRelTol = 0.001

// powerBudget keeps the gate fast: four full-system runs of 60k measured
// instructions each, a few seconds total.
const (
	powerInstr  = 60_000
	powerWarmup = 20_000
)

type powerRow struct {
	Workload    string  `json:"workload"`
	Scheme      string  `json:"scheme"`
	Calibration string  `json:"calibration"`
	MinMW       float64 `json:"min_mw"`
	NomMW       float64 `json:"nom_mw"`
	MaxMW       float64 `json:"max_mw"`
}

type powerReport struct {
	Rows       []powerRow `json:"rows"`
	RelTol     float64    `json:"relative_tolerance"`
	GoldenPath string     `json:"golden_path"`
	Pass       bool       `json:"pass"`
}

// measurePower runs the gate's configuration matrix and expands each run
// into one row per calibration preset. The runs enable immediate
// power-down (the default policy) so the background-energy path under the
// power-down FSM is part of what the golden table pins.
func measurePower() ([]powerRow, error) {
	var rows []powerRow
	for _, wl := range []string{"GUPS", "bzip2"} {
		for _, sch := range []memctrl.Scheme{memctrl.Baseline, memctrl.PRA} {
			cfg := sim.DefaultConfig(wl)
			cfg.Scheme = sch
			cfg.InstrPerCore = powerInstr
			cfg.WarmupPerCore = powerWarmup
			res, err := sim.RunOne(cfg)
			if err != nil {
				return nil, fmt.Errorf("%s/%v: %w", wl, sch, err)
			}
			for _, spec := range []string{"none", "vendor", "ghose"} {
				cal, err := power.ParseCalibration(spec)
				if err != nil {
					return nil, err
				}
				band := cal.Total(res.Energy).Scale(1 / res.RuntimeNs())
				if band.Min > band.Nom || band.Nom > band.Max {
					return nil, fmt.Errorf("%s/%v/%s: malformed band %+v", wl, sch, spec, band)
				}
				if spec == "none" {
					if band.Spread() != 0 {
						return nil, fmt.Errorf("%s/%v: 'none' calibration has non-zero spread %v", wl, sch, band.Spread())
					}
					if nom, raw := band.Nom, res.AvgPowerMW(); !within(nom, raw, 1e-9) {
						return nil, fmt.Errorf("%s/%v: 'none' nominal %.6f mW != uncalibrated %.6f mW", wl, sch, nom, raw)
					}
				}
				rows = append(rows, powerRow{
					Workload: wl, Scheme: sch.String(), Calibration: spec,
					MinMW: band.Min, NomMW: band.Nom, MaxMW: band.Max,
				})
			}
		}
	}
	return rows, nil
}

// within reports whether got is inside the relative tolerance of want.
func within(got, want, tol float64) bool {
	if want == 0 {
		return math.Abs(got) <= tol
	}
	return math.Abs(got-want) <= tol*math.Abs(want)
}

func runPower(out, golden string, update bool) {
	rows, err := measurePower()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
	rep := powerReport{Rows: rows, RelTol: powerRelTol, GoldenPath: golden}

	if update {
		data, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(golden, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(1)
		}
		rep.Pass = true
		writeReport(out, rep)
		fmt.Printf("benchgate: regenerated %s (%d rows); commit the diff\n", golden, len(rows))
		return
	}

	raw, err := os.ReadFile(golden)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: cannot read golden table %s: %v (run with -power -update-power to create it)\n", golden, err)
		os.Exit(1)
	}
	var want []powerRow
	if err := json.Unmarshal(raw, &want); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: corrupt golden table %s: %v\n", golden, err)
		os.Exit(1)
	}
	wantByKey := make(map[string]powerRow, len(want))
	for _, w := range want {
		wantByKey[w.Workload+"/"+w.Scheme+"/"+w.Calibration] = w
	}

	rep.Pass = true
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
		rep.Pass = false
	}
	if len(rows) != len(want) {
		fail("golden table has %d rows, gate produced %d (regenerate with -power -update-power)", len(want), len(rows))
	}
	for _, got := range rows {
		key := got.Workload + "/" + got.Scheme + "/" + got.Calibration
		w, ok := wantByKey[key]
		if !ok {
			fail("no golden row for %s (regenerate with -power -update-power)", key)
			continue
		}
		if !within(got.MinMW, w.MinMW, powerRelTol) ||
			!within(got.NomMW, w.NomMW, powerRelTol) ||
			!within(got.MaxMW, w.MaxMW, powerRelTol) {
			fail("%s drifted: got %.3f/%.3f/%.3f mW, golden %.3f/%.3f/%.3f mW (tol %.2g)",
				key, got.MinMW, got.NomMW, got.MaxMW, w.MinMW, w.NomMW, w.MaxMW, powerRelTol)
		}
	}

	writeReport(out, rep)
	fmt.Printf("benchgate: %d power-band rows vs %s (tol %.2g) -> %s\n",
		len(rows), golden, powerRelTol, map[bool]string{true: "PASS", false: "FAIL"}[rep.Pass])
	if !rep.Pass {
		fmt.Fprintln(os.Stderr, "benchgate: energy-band gate failed: the power model's numbers moved without a golden-table update; if the change is intentional, regenerate with -power -update-power and commit the diff")
		os.Exit(1)
	}
}

// powerFlags registers the -power mode's own flags; split out so main.go
// stays a mode dispatcher.
func powerFlags() (update *bool, golden *string) {
	update = flag.Bool("update-power", false, "with -power: regenerate the golden table instead of gating against it")
	golden = flag.String("golden", "tools/benchgate/golden_power.json", "with -power: path of the checked-in golden band table")
	return
}

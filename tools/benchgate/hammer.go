package main

import (
	"fmt"
	"os"
)

// The -hammer gate bounds what the Alert/RFM RowHammer mitigation costs in
// simulator wall clock, as a pair of on/off ratios measured back to back
// on the same host (main.go explains why ratios, not stored ns/op):
//
//   - the benign pair (GUPS with the threshold armed but never firing)
//     isolates the per-activation counter-table update — the cost every
//     run pays once mitigation is configured — and holds it near free;
//   - the attack pair (HammerSingle alerting steadily) bounds the full
//     defense: counter updates plus the extra simulated work of the
//     alerts, back-offs, and RFM commands. Its ceiling is looser because
//     a defended attack legitimately simulates more cycles (the golden
//     hammer table records about +4% simulated cycles at this threshold);
//     the gate exists to catch the wall-clock cost growing out of
//     proportion to that.
const (
	hammerAttackCeil = 1.35
	hammerBenignCeil = 1.15
	hammerAttackOff  = "BenchmarkHammerAttackOff"
	hammerAttackOn   = "BenchmarkHammerAttackOn"
	hammerBenignOff  = "BenchmarkHammerBenignOff"
	hammerBenignOn   = "BenchmarkHammerBenignOn"
)

type hammerPair struct {
	OffNsOp float64 `json:"off_ns_op"`
	OnNsOp  float64 `json:"on_ns_op"`
	Ratio   float64 `json:"on_over_off"`
}

type hammerReport struct {
	Attack     hammerPair `json:"attack"` // single-core HammerSingle
	Benign     hammerPair `json:"benign"` // single-core GUPS
	AttackCeil float64    `json:"attack_overhead_ceiling"`
	BenignCeil float64    `json:"benign_overhead_ceiling"`
	Count      int        `json:"count"`
	Pass       bool       `json:"pass"`
	// Reference records the development-time measurements that sized the
	// gate (best of 3, single host). CI never compares against these —
	// they are context for a human reading the artifact, not a baseline.
	Reference hammerRef `json:"reference_dev_measurements"`
}

type hammerRef struct {
	Host          string  `json:"host"`
	AttackOffMs   float64 `json:"attack_off_ms"`
	AttackOnMs    float64 `json:"attack_on_ms"`
	AttackRatio   float64 `json:"attack_ratio"`
	BenignOffMs   float64 `json:"benign_off_ms"`
	BenignOnMs    float64 `json:"benign_on_ms"`
	BenignRatio   float64 `json:"benign_ratio"`
	SimCycleDelta string  `json:"attack_simulated_cycle_delta"`
}

func runHammer(out string, count int) {
	mins := runBench("BenchmarkHammer", "./internal/sim", count)
	need := []string{hammerAttackOff, hammerAttackOn, hammerBenignOff, hammerBenignOn}
	for _, n := range need {
		if _, ok := mins[n]; !ok {
			fmt.Fprintf(os.Stderr, "benchgate: missing benchmark %s (parsed %v)\n", n, mins)
			os.Exit(1)
		}
	}
	rep := hammerReport{
		Attack: hammerPair{
			OffNsOp: mins[hammerAttackOff],
			OnNsOp:  mins[hammerAttackOn],
			Ratio:   mins[hammerAttackOn] / mins[hammerAttackOff],
		},
		Benign: hammerPair{
			OffNsOp: mins[hammerBenignOff],
			OnNsOp:  mins[hammerBenignOn],
			Ratio:   mins[hammerBenignOn] / mins[hammerBenignOff],
		},
		AttackCeil: hammerAttackCeil,
		BenignCeil: hammerBenignCeil,
		Count:      count,
		Reference: hammerRef{
			Host:          "Intel Xeon @ 2.10GHz (development container)",
			AttackOffMs:   18.9,
			AttackOnMs:    20.5,
			AttackRatio:   1.08,
			BenignOffMs:   9.4,
			BenignOnMs:    9.7,
			BenignRatio:   1.03,
			SimCycleDelta: "+3.75% simulated cycles under HammerSingle at threshold 4",
		},
	}
	rep.Pass = rep.Attack.OnNsOp <= rep.Attack.OffNsOp*hammerAttackCeil &&
		rep.Benign.OnNsOp <= rep.Benign.OffNsOp*hammerBenignCeil
	writeReport(out, rep)
	fmt.Printf("benchgate: attack %.1fms off / %.1fms on (%.2fx, ceiling %.2fx); benign %.1fms off / %.1fms on (%.2fx, ceiling %.2fx) -> %s\n",
		rep.Attack.OffNsOp/1e6, rep.Attack.OnNsOp/1e6, rep.Attack.Ratio, hammerAttackCeil,
		rep.Benign.OffNsOp/1e6, rep.Benign.OnNsOp/1e6, rep.Benign.Ratio, hammerBenignCeil,
		map[bool]string{true: "PASS", false: "FAIL"}[rep.Pass])
	if !rep.Pass {
		fmt.Fprintln(os.Stderr, "benchgate: mitigation-overhead gate failed: either the per-ACT counter updates now tax benign runs, or defending an attack costs wall clock far beyond its simulated-cycle delta")
		os.Exit(1)
	}
}

package main

import (
	"fmt"
	"os"
)

// The -lat gate bounds what per-request latency attribution costs in
// simulator wall clock, as an on/off ratio measured back to back on the
// same host (main.go explains why ratios, not stored ns/op). The pair runs
// the same deterministic memory-intensive configuration (single-core GUPS)
// with attribution plus span sampling enabled and disabled; simulated work
// is bit-identical by construction (the sim-level identity test enforces
// it), so the ratio isolates the accounting itself — the per-command
// deadline sweep, the histogram updates, and the sampled-span ring. The
// ceiling is sized for "a few percent, never double digits": attribution
// is meant to be left on in exploratory runs, and a ratio past the ceiling
// means the hot path grew an allocation or the sweep stopped being O(1).
const (
	latOverheadCeil = 1.15
	latOff          = "BenchmarkLatBreakOff"
	latOn           = "BenchmarkLatBreakOn"
)

type latPair struct {
	OffNsOp float64 `json:"off_ns_op"`
	OnNsOp  float64 `json:"on_ns_op"`
	Ratio   float64 `json:"on_over_off"`
}

type latReport struct {
	Attribution latPair `json:"attribution"` // single-core GUPS
	Ceil        float64 `json:"overhead_ceiling"`
	Count       int     `json:"count"`
	Pass        bool    `json:"pass"`
	// Reference records the development-time measurements that sized the
	// gate (best of 3, single host). CI never compares against these —
	// they are context for a human reading the artifact, not a baseline.
	Reference latRef `json:"reference_dev_measurements"`
}

type latRef struct {
	Host    string  `json:"host"`
	OffMs   float64 `json:"off_ms"`
	OnMs    float64 `json:"on_ms"`
	Ratio   float64 `json:"ratio"`
	Detail  string  `json:"detail"`
	Spanned string  `json:"span_sampling"`
}

func runLat(out string, count int) {
	mins := runBench("BenchmarkLatBreak", "./internal/sim", count)
	for _, n := range []string{latOff, latOn} {
		if _, ok := mins[n]; !ok {
			fmt.Fprintf(os.Stderr, "benchgate: missing benchmark %s (parsed %v)\n", n, mins)
			os.Exit(1)
		}
	}
	rep := latReport{
		Attribution: latPair{
			OffNsOp: mins[latOff],
			OnNsOp:  mins[latOn],
			Ratio:   mins[latOn] / mins[latOff],
		},
		Ceil:  latOverheadCeil,
		Count: count,
		Reference: latRef{
			Host:    "Intel Xeon @ 2.10GHz (development container)",
			OffMs:   9.4,
			OnMs:    9.5,
			Ratio:   1.00,
			Detail:  "per-command 5-deadline insertion sweep + LogHist updates, allocation-free",
			Spanned: "every 64th completion into the 4096-entry span ring",
		},
	}
	rep.Pass = rep.Attribution.OnNsOp <= rep.Attribution.OffNsOp*latOverheadCeil
	writeReport(out, rep)
	fmt.Printf("benchgate: attribution %.1fms off / %.1fms on (%.2fx, ceiling %.2fx) -> %s\n",
		rep.Attribution.OffNsOp/1e6, rep.Attribution.OnNsOp/1e6, rep.Attribution.Ratio, latOverheadCeil,
		map[bool]string{true: "PASS", false: "FAIL"}[rep.Pass])
	if !rep.Pass {
		fmt.Fprintln(os.Stderr, "benchgate: latency-attribution gate failed: the per-command accounting (deadline sweep, histograms, span sampling) now costs real wall clock; look for an allocation or a non-O(1) sweep on the hot path")
		os.Exit(1)
	}
}

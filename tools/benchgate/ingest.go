package main

import (
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
)

// The -ingest gate guards the workload-ingestion path (DESIGN.md §4j):
// the chunked v2 trace decoder and the streaming replay loop. Unlike the
// other gates, both invariants here are absolute rather than ratios —
// they are contracts of the format and the replay path, not relative
// speeds:
//
//   - the v2 decoder must sustain at least ingestFloorRecPerSec records
//     per second (the "millions of requests per second" contract; the
//     floor sits >10x under the development-time measurement so host
//     variation cannot flake it, while still catching an accidental
//     per-record allocation or a quadratic buffer pattern), and
//   - the streaming replay loop must run at zero steady-state heap
//     allocations per record — the benchmark replays ingestBenchTime
//     records in one ReplayStream call, so one-time setup (controller,
//     queues) amortizes below one allocation per op and any per-record
//     allocation shows up as allocs/op >= 1.

const (
	// ingestFloorRecPerSec is the decode-throughput floor: 2M records/s,
	// i.e. at most 500 ns/op on the per-record decode benchmark.
	// Development-time measurement: ~37 ns/op (~27M rec/s).
	ingestFloorRecPerSec = 2_000_000

	// ingestBenchTime fixes -benchtime so every repetition decodes (and
	// replays) the same record count: long enough to amortize setup under
	// one alloc/op, short enough to keep the gate fast.
	ingestBenchTime = "300000x"

	ingestDecodeV2 = "BenchmarkIngestDecodeV2"
	ingestDecodeV1 = "BenchmarkIngestDecodeV1"
	ingestReplay   = "BenchmarkIngestReplayStream"
)

type ingestReport struct {
	DecodeV2NsOp    float64 `json:"decode_v2_ns_op"`
	DecodeV2MRecS   float64 `json:"decode_v2_mrec_per_sec"`
	DecodeV1NsOp    float64 `json:"decode_v1_ns_op"`
	ReplayNsOp      float64 `json:"replay_stream_ns_op"`
	ReplayAllocsOp  int64   `json:"replay_stream_allocs_op"`
	DecodeFloorRecS float64 `json:"decode_floor_rec_per_sec"`
	AllocCeil       int64   `json:"replay_allocs_op_ceiling"`
	Count           int     `json:"count"`
	Pass            bool    `json:"pass"`
}

// ingestLine also captures the -benchmem columns the shared benchLine
// ignores: "BenchmarkX-8  300000  37.34 ns/op  0 B/op  0 allocs/op".
var ingestLine = regexp.MustCompile(`(?m)^(Benchmark\w+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:\s+[0-9.]+ B/op\s+([0-9]+) allocs/op)?`)

// runIngestBench runs the ingestion benchmarks with -benchmem at the
// fixed benchtime and returns minimum ns/op and allocs/op per benchmark.
func runIngestBench(count int) (map[string]float64, map[string]int64) {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", "BenchmarkIngest", "-benchtime", ingestBenchTime, "-benchmem",
		"-count", strconv.Itoa(count), "./internal/trace")
	raw, err := cmd.CombinedOutput()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: benchmark run failed: %v\n%s", err, raw)
		os.Exit(1)
	}
	ns := map[string]float64{}
	allocs := map[string]int64{}
	for _, m := range ingestLine.FindAllStringSubmatch(string(raw), -1) {
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		if cur, ok := ns[m[1]]; !ok || v < cur {
			ns[m[1]] = v
		}
		if m[3] != "" {
			a, err := strconv.ParseInt(m[3], 10, 64)
			if err != nil {
				continue
			}
			if cur, ok := allocs[m[1]]; !ok || a < cur {
				allocs[m[1]] = a
			}
		}
	}
	return ns, allocs
}

func runIngest(out string, count int) {
	ns, allocs := runIngestBench(count)
	for _, n := range []string{ingestDecodeV2, ingestDecodeV1, ingestReplay} {
		if _, ok := ns[n]; !ok {
			fmt.Fprintf(os.Stderr, "benchgate: missing benchmark %s (parsed %v)\n", n, ns)
			os.Exit(1)
		}
	}
	replayAllocs, ok := allocs[ingestReplay]
	if !ok {
		fmt.Fprintf(os.Stderr, "benchgate: no allocs/op for %s (is -benchmem being dropped?)\n", ingestReplay)
		os.Exit(1)
	}
	rep := ingestReport{
		DecodeV2NsOp:    ns[ingestDecodeV2],
		DecodeV2MRecS:   1e3 / ns[ingestDecodeV2],
		DecodeV1NsOp:    ns[ingestDecodeV1],
		ReplayNsOp:      ns[ingestReplay],
		ReplayAllocsOp:  replayAllocs,
		DecodeFloorRecS: ingestFloorRecPerSec,
		AllocCeil:       0,
		Count:           count,
	}
	rep.Pass = rep.DecodeV2NsOp <= 1e9/ingestFloorRecPerSec && replayAllocs == 0
	writeReport(out, rep)
	fmt.Printf("benchgate: v2 decode %.1f ns/op (%.1f Mrec/s, floor %.1f); v1 decode %.1f ns/op; replay %.0f ns/op, %d allocs/op (ceiling 0) -> %s\n",
		rep.DecodeV2NsOp, rep.DecodeV2MRecS, float64(ingestFloorRecPerSec)/1e6,
		rep.DecodeV1NsOp, rep.ReplayNsOp, replayAllocs,
		map[bool]string{true: "PASS", false: "FAIL"}[rep.Pass])
	if !rep.Pass {
		fmt.Fprintln(os.Stderr, "benchgate: ingestion gate failed: either the v2 decoder fell under the records/sec floor, or the streaming replay loop allocates per record")
		os.Exit(1)
	}
}

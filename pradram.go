// Package pradram is a full-system reproduction of "Partial Row Activation
// for Low-Power DRAM System" (Lee, Kim, Hong, Kim — HPCA 2017): a
// cycle-level DDR3 memory-system simulator with the paper's partial row
// activation (PRA) scheme, its comparison points (fine-grained activation,
// Half-DRAM, the Dirty-Block Index), the FGD cache hierarchy, an
// out-of-order multicore front end, the Micron/CACTI power model, and
// synthetic workloads calibrated to the paper's published benchmark
// characteristics.
//
// The public API is a thin façade over the internal packages. Typical use:
//
//	cfg := pradram.DefaultConfig("GUPS")
//	cfg.Scheme = pradram.PRA
//	res, err := pradram.Run(cfg)
//	fmt.Println(res.AvgPowerMW(), res.RowHitRateWrite())
//
// The experiment drivers that regenerate every table and figure of the
// paper's evaluation are exposed through Experiments and NewRunner; the
// praexp command wraps them.
package pradram

import (
	"pradram/internal/memctrl"
	"pradram/internal/power"
	"pradram/internal/sim"
	"pradram/internal/workload"
)

// CPUCycleNs is one CPU cycle in nanoseconds (the 3.2 GHz core clock of
// Table 3); Result.Cycles converts to wall time through it.
const CPUCycleNs = sim.CPUCycleNs

// MemCycleNs is one DRAM command-clock cycle in nanoseconds (DDR3-1600:
// the memory controller ticks every fourth CPU cycle). Latency breakdowns
// and spans are stamped in this clock.
const MemCycleNs = sim.CPUCycleNs * 4

// Scheme selects the row-activation architecture (Section 5.2 of the
// paper).
type Scheme = memctrl.Scheme

// The schemes under study.
const (
	// Baseline is the conventional DRAM system.
	Baseline = memctrl.Baseline
	// FGA is half-row fine-grained activation with broken prefetch.
	FGA = memctrl.FGA
	// HalfDRAM is Zhang et al.'s half-row, full-bandwidth organization.
	HalfDRAM = memctrl.HalfDRAM
	// PRA is the paper's partial row activation for writes.
	PRA = memctrl.PRA
	// HalfDRAMPRA combines Half-DRAM with PRA (Section 5.2.3).
	HalfDRAMPRA = memctrl.HalfDRAMPRA
	// SDS is the Skinflint DRAM System, the inter-chip comparison point
	// of Section 3 (writes skip clean chips).
	SDS = memctrl.SDS
)

// Policy selects the row-buffer management policy.
type Policy = memctrl.Policy

// The row-buffer management policies of Section 5.1.2, plus the classic
// open-page policy provided as an extension.
const (
	RelaxedClose    = memctrl.RelaxedClose
	RestrictedClose = memctrl.RestrictedClose
	OpenPage        = memctrl.OpenPage
)

// PDPolicy selects when idle ranks enter power-down (DESIGN.md §4f).
type PDPolicy = memctrl.PDPolicy

// The power-down entry policies.
const (
	// PDImmediate enters power-down as soon as a rank is idle and the
	// entry is timing-legal (the default).
	PDImmediate = memctrl.PDImmediate
	// PDNone never powers ranks down (the pre-§4f behaviour).
	PDNone = memctrl.PDNone
	// PDTimed enters power-down after Config.PDTimeout idle memory cycles.
	PDTimed = memctrl.PDTimed
	// PDQueueAware enters immediately when the rank's queues are empty,
	// after PDTimeout otherwise.
	PDQueueAware = memctrl.PDQueueAware
)

// RefreshMode selects the refresh-management strategy.
type RefreshMode = memctrl.RefreshMode

// The refresh-management modes.
const (
	// RefreshAllBank issues conventional all-bank REF every tREFI (the
	// default).
	RefreshAllBank = memctrl.RefreshAllBank
	// RefreshPerBank issues per-bank REFpb on a tREFI/Banks cadence,
	// blocking one bank for tRFCpb instead of the rank for tRFC.
	RefreshPerBank = memctrl.RefreshPerBank
	// RefreshElastic postpones due refreshes while a rank has work and
	// pulls them in before power-down, within the JEDEC 8×tREFI window.
	RefreshElastic = memctrl.RefreshElastic
)

// Calibration scales a finished energy breakdown by per-component
// correction factors, turning every energy figure into a min/nominal/max
// Band (Result.EnergyBand, Result.PowerBandMW). Presets: "none", "vendor",
// "ghose" (the real-device deviations of Ghose et al., arXiv:1807.05102),
// optionally with ":P" percent device-to-device variation appended.
type Calibration = power.Calibration

// Band is a min/nominal/max interval produced by a Calibration.
type Band = power.Band

// Config describes one simulation run; see DefaultConfig.
type Config = sim.Config

// Result carries the metrics of one run, with derived-metric methods
// (AvgPowerMW, EDP, RowHitRate*, GranularityShare, WeightedSpeedup, ...).
type Result = sim.Result

// System is an assembled simulator instance.
type System = sim.System

// Experiment is one regenerable paper artifact (table or figure).
type Experiment = sim.Experiment

// ExpOptions controls experiment budgets.
type ExpOptions = sim.ExpOptions

// ObsConfig selects the telemetry a run carries (Config.Obs /
// ExpOptions.Obs): epoch time-series recorder and structured event trace.
// The zero value disables both.
type ObsConfig = sim.ObsConfig

// Runner executes experiment simulations with memoization.
type Runner = sim.Runner

// LatComponent indexes one component of a request's latency breakdown
// (Config.LatBreak, DESIGN.md §4h): queue, bank, timing, refresh,
// power-down, alert, transfer.
type LatComponent = memctrl.LatComponent

// NumLatComponents sizes LatBreakdown.
const NumLatComponents = memctrl.NumLatComponents

// LatBreakdown is one latency decomposition in memory cycles, indexed by
// LatComponent; for a completed request (and for the aggregates in
// Result.Ctrl) the components sum exactly to the arrival-to-data latency.
type LatBreakdown = memctrl.LatBreakdown

// LatSpan is one sampled request lifetime (Config.LatSpanEvery /
// System.LatSpans), for trace export.
type LatSpan = memctrl.LatSpan

// ParseScheme resolves a scheme name ("baseline", "fga", "halfdram",
// "pra", "halfdram+pra").
func ParseScheme(name string) (Scheme, error) { return memctrl.ParseScheme(name) }

// ParsePolicy resolves a policy name ("relaxed", "restricted").
func ParsePolicy(name string) (Policy, error) { return memctrl.ParsePolicy(name) }

// ParsePDPolicy resolves a power-down policy name ("immediate", "none",
// "timeout", "queue").
func ParsePDPolicy(name string) (PDPolicy, error) { return memctrl.ParsePDPolicy(name) }

// ParseRefreshMode resolves a refresh mode name ("allbank", "perbank",
// "elastic").
func ParseRefreshMode(name string) (RefreshMode, error) { return memctrl.ParseRefreshMode(name) }

// ParseCalibration resolves a calibration spec: a preset name ("none",
// "vendor", "ghose"), optionally suffixed with ":P" to add ±P% device
// variation (e.g. "ghose:10").
func ParseCalibration(spec string) (Calibration, error) { return power.ParseCalibration(spec) }

// Calibrations lists the calibration preset names.
func Calibrations() []string { return power.Calibrations() }

// DefaultConfig returns the paper's baseline 4-core system running the
// named workload — one of Workloads() (run as four identical instances) or
// Mixes() (Table 4 combinations).
func DefaultConfig(workload string) Config { return sim.DefaultConfig(workload) }

// CheckpointStore persists warmup checkpoints on disk, keyed by warmup
// fingerprint (prasim/praexp -ckpt-dir). See System.Checkpoint/Restore.
type CheckpointStore = sim.CheckpointStore

// NewCheckpointStore opens (lazily creating) a checkpoint directory.
func NewCheckpointStore(dir string) *CheckpointStore { return sim.NewCheckpointStore(dir) }

// WarmupFingerprint returns the checkpoint key of cfg's warmup phase and
// whether the configuration supports warmup checkpointing at all.
func WarmupFingerprint(cfg Config) (string, bool) { return sim.WarmupFingerprint(cfg) }

// NewSystem assembles a simulator from a configuration.
func NewSystem(cfg Config) (*System, error) { return sim.New(cfg) }

// Run builds and runs a configuration.
func Run(cfg Config) (Result, error) { return sim.RunOne(cfg) }

// AutoPar picks a Config.Par worker-share count for parallel-in-time
// channel ticking that composes with an outer level of parallelism (a
// -j worker pool) without oversubscribing the machine; see sim.AutoPar.
func AutoPar(outer int) int { return sim.AutoPar(outer) }

// Workloads lists the eight benchmark models.
func Workloads() []string { return workload.Names() }

// Mixes lists the six multiprogrammed mixes of Table 4.
func Mixes() []string { return workload.MixNames() }

// Hammers lists the adversarial RowHammer workload generators.
func Hammers() []string { return workload.HammerNames() }

// Tensors lists the tensor/conv streaming generators (loop permutations
// with analytically predictable row locality).
func Tensors() []string { return workload.TensorNames() }

// WorkloadSets lists every runnable workload set (benchmarks + hammers +
// tensors + mixes). Custom SPEC-rate-style co-runs compose any of the
// single-core names as "name[:count],..." (e.g. "GUPS:2,LinkedList:2").
func WorkloadSets() []string { return workload.SetNames() }

// Experiments returns the paper's tables and figures in paper order.
func Experiments() []Experiment { return sim.Experiments() }

// ExperimentByID resolves an experiment by id (e.g. "fig12", "table1").
func ExperimentByID(id string) (Experiment, error) { return sim.ExperimentByID(id) }

// NewRunner builds an experiment runner with the given budgets.
func NewRunner(opt ExpOptions) *Runner { return sim.NewRunner(opt) }

// DefaultExpOptions returns the standard experiment budget.
func DefaultExpOptions() ExpOptions { return sim.DefaultExpOptions() }

// BuildInfo returns the version block the binaries publish over the
// introspection server (/vars/build): model version, checkpoint format,
// and the toolchain's module/VCS stamps.
func BuildInfo() map[string]any { return sim.BuildInfo() }

// Package pradram is a full-system reproduction of "Partial Row Activation
// for Low-Power DRAM System" (Lee, Kim, Hong, Kim — HPCA 2017): a
// cycle-level DDR3 memory-system simulator with the paper's partial row
// activation (PRA) scheme, its comparison points (fine-grained activation,
// Half-DRAM, the Dirty-Block Index), the FGD cache hierarchy, an
// out-of-order multicore front end, the Micron/CACTI power model, and
// synthetic workloads calibrated to the paper's published benchmark
// characteristics.
//
// The public API is a thin façade over the internal packages. Typical use:
//
//	cfg := pradram.DefaultConfig("GUPS")
//	cfg.Scheme = pradram.PRA
//	res, err := pradram.Run(cfg)
//	fmt.Println(res.AvgPowerMW(), res.RowHitRateWrite())
//
// The experiment drivers that regenerate every table and figure of the
// paper's evaluation are exposed through Experiments and NewRunner; the
// praexp command wraps them.
package pradram

import (
	"pradram/internal/memctrl"
	"pradram/internal/sim"
	"pradram/internal/workload"
)

// Scheme selects the row-activation architecture (Section 5.2 of the
// paper).
type Scheme = memctrl.Scheme

// The schemes under study.
const (
	// Baseline is the conventional DRAM system.
	Baseline = memctrl.Baseline
	// FGA is half-row fine-grained activation with broken prefetch.
	FGA = memctrl.FGA
	// HalfDRAM is Zhang et al.'s half-row, full-bandwidth organization.
	HalfDRAM = memctrl.HalfDRAM
	// PRA is the paper's partial row activation for writes.
	PRA = memctrl.PRA
	// HalfDRAMPRA combines Half-DRAM with PRA (Section 5.2.3).
	HalfDRAMPRA = memctrl.HalfDRAMPRA
	// SDS is the Skinflint DRAM System, the inter-chip comparison point
	// of Section 3 (writes skip clean chips).
	SDS = memctrl.SDS
)

// Policy selects the row-buffer management policy.
type Policy = memctrl.Policy

// The row-buffer management policies of Section 5.1.2, plus the classic
// open-page policy provided as an extension.
const (
	RelaxedClose    = memctrl.RelaxedClose
	RestrictedClose = memctrl.RestrictedClose
	OpenPage        = memctrl.OpenPage
)

// Config describes one simulation run; see DefaultConfig.
type Config = sim.Config

// Result carries the metrics of one run, with derived-metric methods
// (AvgPowerMW, EDP, RowHitRate*, GranularityShare, WeightedSpeedup, ...).
type Result = sim.Result

// System is an assembled simulator instance.
type System = sim.System

// Experiment is one regenerable paper artifact (table or figure).
type Experiment = sim.Experiment

// ExpOptions controls experiment budgets.
type ExpOptions = sim.ExpOptions

// ObsConfig selects the telemetry a run carries (Config.Obs /
// ExpOptions.Obs): epoch time-series recorder and structured event trace.
// The zero value disables both.
type ObsConfig = sim.ObsConfig

// Runner executes experiment simulations with memoization.
type Runner = sim.Runner

// ParseScheme resolves a scheme name ("baseline", "fga", "halfdram",
// "pra", "halfdram+pra").
func ParseScheme(name string) (Scheme, error) { return memctrl.ParseScheme(name) }

// ParsePolicy resolves a policy name ("relaxed", "restricted").
func ParsePolicy(name string) (Policy, error) { return memctrl.ParsePolicy(name) }

// DefaultConfig returns the paper's baseline 4-core system running the
// named workload — one of Workloads() (run as four identical instances) or
// Mixes() (Table 4 combinations).
func DefaultConfig(workload string) Config { return sim.DefaultConfig(workload) }

// CheckpointStore persists warmup checkpoints on disk, keyed by warmup
// fingerprint (prasim/praexp -ckpt-dir). See System.Checkpoint/Restore.
type CheckpointStore = sim.CheckpointStore

// NewCheckpointStore opens (lazily creating) a checkpoint directory.
func NewCheckpointStore(dir string) *CheckpointStore { return sim.NewCheckpointStore(dir) }

// WarmupFingerprint returns the checkpoint key of cfg's warmup phase and
// whether the configuration supports warmup checkpointing at all.
func WarmupFingerprint(cfg Config) (string, bool) { return sim.WarmupFingerprint(cfg) }

// NewSystem assembles a simulator from a configuration.
func NewSystem(cfg Config) (*System, error) { return sim.New(cfg) }

// Run builds and runs a configuration.
func Run(cfg Config) (Result, error) { return sim.RunOne(cfg) }

// Workloads lists the eight benchmark models.
func Workloads() []string { return workload.Names() }

// Mixes lists the six multiprogrammed mixes of Table 4.
func Mixes() []string { return workload.MixNames() }

// WorkloadSets lists every runnable workload set (benchmarks + mixes, the
// paper's 14 workloads).
func WorkloadSets() []string { return workload.SetNames() }

// Experiments returns the paper's tables and figures in paper order.
func Experiments() []Experiment { return sim.Experiments() }

// ExperimentByID resolves an experiment by id (e.g. "fig12", "table1").
func ExperimentByID(id string) (Experiment, error) { return sim.ExperimentByID(id) }

// NewRunner builds an experiment runner with the given budgets.
func NewRunner(opt ExpOptions) *Runner { return sim.NewRunner(opt) }

// DefaultExpOptions returns the standard experiment budget.
func DefaultExpOptions() ExpOptions { return sim.DefaultExpOptions() }

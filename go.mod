module pradram

go 1.22

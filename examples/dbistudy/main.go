// Dbistudy: the Figure 15 case study — PRA combined with the Dirty-Block
// Index. DBI proactively writes back all dirty LLC lines of a DRAM row when
// any dirty line of that row is evicted, which raises write row-buffer hit
// rates (good for performance) but creates bursts of same-row writes whose
// PRA masks conflict, raising false row-buffer hits (bad for PRA's power
// saving). This example quantifies that tension on em3d.
package main

import (
	"fmt"
	"log"

	"pradram"
)

type variant struct {
	name   string
	scheme pradram.Scheme
	dbi    bool
}

func main() {
	variants := []variant{
		{"baseline", pradram.Baseline, false},
		{"dbi", pradram.Baseline, true},
		{"pra", pradram.PRA, false},
		{"dbi+pra", pradram.PRA, true},
	}

	results := make(map[string]pradram.Result)
	for _, v := range variants {
		cfg := pradram.DefaultConfig("em3d")
		cfg.Scheme = v.scheme
		cfg.DBI = v.dbi
		cfg.InstrPerCore = 150_000
		cfg.WarmupPerCore = 250_000
		res, err := pradram.Run(cfg)
		if err != nil {
			log.Fatalf("%s: %v", v.name, err)
		}
		results[v.name] = res
	}

	base := results["baseline"]
	fmt.Println("em3d, relaxed close-page — DBI x PRA interaction (paper Fig. 15)")
	fmt.Printf("\n%-10s %10s %10s %10s %10s %12s %12s\n",
		"variant", "power", "energy", "EDP", "perf", "hitW %", "falseW %")
	for _, v := range variants {
		r := results[v.name]
		fmt.Printf("%-10s %10.3f %10.3f %10.3f %10.3f %12.1f %12.2f\n",
			v.name,
			r.AvgPowerMW()/base.AvgPowerMW(),
			r.TotalEnergyPJ()/base.TotalEnergyPJ(),
			r.EDP()/base.EDP(),
			r.SumIPC()/base.SumIPC(),
			100*r.RowHitRateWrite(),
			100*r.FalseHitRateWrite())
	}
	fmt.Println("\nDBI lifts the write hit rate; PRA cuts power; combining them trades a")
	fmt.Println("little of PRA's saving for DBI's performance (extra false hits).")
}

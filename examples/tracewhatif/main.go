// Tracewhatif: record one DRAM request stream from a full-system run, then
// replay the identical stream under every scheme — the library-level
// version of the pratrace CLI. Because replays skip the CPU and caches,
// the five what-ifs together cost less than the one recording run.
package main

import (
	"fmt"
	"log"

	"pradram"
	"pradram/internal/memctrl"
	"pradram/internal/sim"
	"pradram/internal/trace"
)

func main() {
	// 1. Record: one full-system run of em3d with capture enabled.
	cfg := pradram.DefaultConfig("em3d")
	cfg.InstrPerCore = 120_000
	cfg.WarmupPerCore = 200_000
	cfg.Capture = true
	sys, err := sim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}
	tr := sys.Trace()
	fmt.Printf("recorded %d DRAM requests from em3d (%d reads, %d writes)\n\n",
		tr.Len(), res.Ctrl.ReadsServed, res.Ctrl.WritesServed)

	// 2. Replay under every scheme on the identical request stream.
	fmt.Printf("%-14s %10s %12s %10s\n", "scheme", "power mW", "vs baseline", "act gran")
	var basePower float64
	for _, s := range memctrl.Schemes() {
		mcfg := memctrl.DefaultConfig()
		mcfg.Scheme = s
		rr, err := trace.Replay(tr, mcfg)
		if err != nil {
			log.Fatalf("%v: %v", s, err)
		}
		if basePower == 0 {
			basePower = rr.AvgPowerMW()
		}
		fmt.Printf("%-14s %10.1f %12.3f %9.2f/8\n",
			s, rr.AvgPowerMW(), rr.AvgPowerMW()/basePower, rr.Dev.AvgGranularity())
	}
	fmt.Println("\nThe stream is identical across rows: differences are purely the scheme.")
}

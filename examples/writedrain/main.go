// Writedrain: the Section 4.1.3 timing-relaxation story. Under the
// restricted close-page policy every request pays an ACT-PRE pair, so tRRD
// and tFAW bound throughput. PRA's partial activations are charged only
// their activated fraction of the four-activation window, so write-heavy
// traffic (GUPS: ~50% writes, all one dirty word) can issue activations
// faster. This example runs GUPS under the restricted policy on the
// baseline and on PRA and reports throughput, activation rate, and power.
package main

import (
	"fmt"
	"log"

	"pradram"
)

func run(scheme pradram.Scheme) pradram.Result {
	cfg := pradram.DefaultConfig("GUPS")
	cfg.Policy = pradram.RestrictedClose
	cfg.Scheme = scheme
	cfg.InstrPerCore = 150_000
	cfg.WarmupPerCore = 200_000
	res, err := pradram.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	baseline := run(pradram.Baseline)
	pra := run(pradram.PRA)

	actRate := func(r pradram.Result) float64 {
		return float64(r.Dev.Activations()) / (r.RuntimeNs() / 1000) // per us
	}

	fmt.Println("GUPS under restricted close-page (every access = ACT + column + PRE)")
	fmt.Printf("\n%-26s %12s %12s\n", "", "baseline", "PRA")
	fmt.Printf("%-26s %12.3f %12.3f\n", "sum IPC", baseline.SumIPC(), pra.SumIPC())
	fmt.Printf("%-26s %12.1f %12.1f\n", "activations / us", actRate(baseline), actRate(pra))
	fmt.Printf("%-26s %12.2f %12.2f\n", "avg act granularity /8", baseline.Dev.AvgGranularity(), pra.Dev.AvgGranularity())
	fmt.Printf("%-26s %12.1f %12.1f\n", "DRAM power (mW)", baseline.AvgPowerMW(), pra.AvgPowerMW())
	fmt.Printf("%-26s %12.1f %12.1f\n", "avg read latency (ns)", baseline.AvgReadLatencyNs(), pra.AvgReadLatencyNs())

	fmt.Printf("\nPRA throughput delta: %+.2f%%  (relaxed tRRD/tFAW on 1/8-row write ACTs)\n",
		100*(pra.SumIPC()/baseline.SumIPC()-1))
	fmt.Printf("PRA power delta:      %+.2f%%\n",
		100*(pra.AvgPowerMW()/baseline.AvgPowerMW()-1))
}

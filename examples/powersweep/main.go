// Powersweep: the Figure 12/13 story on one workload — sweep every scheme
// (baseline, FGA, Half-DRAM, PRA, Half-DRAM+PRA) over a chosen workload and
// report normalized activation power, I/O power, total power, energy, EDP,
// and performance. Shows where each scheme wins and what it costs.
//
//	go run ./examples/powersweep            # default: MIX2
//	go run ./examples/powersweep omnetpp
package main

import (
	"fmt"
	"log"
	"os"

	"pradram"
	"pradram/internal/power"
)

func main() {
	workload := "MIX2"
	if len(os.Args) > 1 {
		workload = os.Args[1]
	}

	schemes := []pradram.Scheme{
		pradram.Baseline, pradram.FGA, pradram.HalfDRAM, pradram.PRA, pradram.HalfDRAMPRA,
	}

	results := make(map[pradram.Scheme]pradram.Result)
	for _, s := range schemes {
		cfg := pradram.DefaultConfig(workload)
		cfg.Scheme = s
		cfg.InstrPerCore = 150_000
		cfg.WarmupPerCore = 250_000
		res, err := pradram.Run(cfg)
		if err != nil {
			log.Fatalf("%v: %v", s, err)
		}
		results[s] = res
	}

	base := results[pradram.Baseline]
	actPower := func(r pradram.Result) float64 { return r.Energy[power.CompActPre] / r.RuntimeNs() }
	ioPower := func(r pradram.Result) float64 { return r.Energy.IO() / r.RuntimeNs() }

	fmt.Printf("workload %s — all values normalized to baseline\n\n", workload)
	fmt.Printf("%-14s %8s %8s %8s %8s %8s %8s\n",
		"scheme", "ACT pwr", "I/O pwr", "total", "energy", "EDP", "perf")
	for _, s := range schemes {
		r := results[s]
		fmt.Printf("%-14s %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f\n",
			s,
			actPower(r)/actPower(base),
			ioPower(r)/ioPower(base),
			r.AvgPowerMW()/base.AvgPowerMW(),
			r.TotalEnergyPJ()/base.TotalEnergyPJ(),
			r.EDP()/base.EDP(),
			r.SumIPC()/base.SumIPC())
	}
	fmt.Println("\nExpected shape (paper Figs. 12-13): PRA cuts ACT and I/O power with ~no")
	fmt.Println("performance loss; FGA saves activation energy but loses bandwidth;")
	fmt.Println("Half-DRAM sits between; the combination stacks both savings.")
}

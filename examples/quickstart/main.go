// Quickstart: run one workload on the baseline DRAM system and on PRA, and
// compare power, energy, and performance — the library's ten-line version
// of the paper's headline claim.
package main

import (
	"fmt"
	"log"

	"pradram"
)

func main() {
	base := pradram.DefaultConfig("GUPS")
	base.InstrPerCore = 200_000
	base.WarmupPerCore = 200_000

	baseline, err := pradram.Run(base)
	if err != nil {
		log.Fatal(err)
	}

	cfg := base
	cfg.Scheme = pradram.PRA
	pra, err := pradram.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s (4 instances)\n\n", base.Workload)
	fmt.Printf("%-22s %12s %12s\n", "", "baseline", "PRA")
	fmt.Printf("%-22s %12.1f %12.1f\n", "DRAM power (mW)", baseline.AvgPowerMW(), pra.AvgPowerMW())
	fmt.Printf("%-22s %12.3g %12.3g\n", "DRAM energy (pJ)", baseline.TotalEnergyPJ(), pra.TotalEnergyPJ())
	fmt.Printf("%-22s %12.3f %12.3f\n", "sum IPC", baseline.SumIPC(), pra.SumIPC())
	fmt.Printf("%-22s %12.2f %12.2f\n", "avg act granularity", baseline.Dev.AvgGranularity(), pra.Dev.AvgGranularity())
	fmt.Printf("\nPRA: %.1f%% less DRAM power, %.1f%% less energy, %.2f%% performance delta\n",
		100*(1-pra.AvgPowerMW()/baseline.AvgPowerMW()),
		100*(1-pra.TotalEnergyPJ()/baseline.TotalEnergyPJ()),
		100*(pra.SumIPC()/baseline.SumIPC()-1))
}

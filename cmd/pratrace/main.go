// Command pratrace records DRAM request traces from full-system runs and
// replays them under different schemes — the fast what-if path: a replay
// skips the CPU and cache layers entirely and re-schedules the identical
// request stream on a fresh memory controller.
//
// Usage:
//
//	pratrace -record gups.trace -workload GUPS -instr 200000
//	pratrace -record mix.trace -workload GUPS:2,LinkedList:2
//	pratrace -info gups.trace                     # header + chunk index, no decode
//	pratrace -replay gups.trace -scheme pra
//	pratrace -replay gups.trace -compare          # all schemes side by side
//
// Traces record in the chunked, seekable v2 format ("PRA2", DESIGN.md
// §4j) unless -v1 selects the legacy format; both replay identically.
// Replays stream records straight off the file — no trace is ever
// materialized in memory, so file size is bounded by disk, not RAM.
//
// Replays on multi-channel controllers tick their channel partitions
// concurrently by default (parallel-in-time, DESIGN.md §4i) with results
// bit-identical to the sequential loop; -par N forces N worker shares,
// -seq forces sequential ticking.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pradram"
	"pradram/internal/memctrl"
	"pradram/internal/obs"
	"pradram/internal/sim"
	"pradram/internal/stats"
	"pradram/internal/trace"
)

func main() {
	var (
		record       = flag.String("record", "", "record a trace from -workload into this file")
		replay       = flag.String("replay", "", "replay the trace in this file")
		info         = flag.String("info", "", "print the trace file's header and chunk index without decoding records")
		v1           = flag.Bool("v1", false, "record in the legacy v1 format instead of chunked v2")
		workloadName = flag.String("workload", "GUPS", "workload to record (a name or a name[:count],... mix spec)")
		schemeName   = flag.String("scheme", "baseline", "scheme for -replay")
		policyName   = flag.String("policy", "relaxed", "policy for -replay")
		compare      = flag.Bool("compare", false, "replay under every scheme")
		instr        = flag.Int64("instr", 200_000, "instructions per core to record")
		warmup       = flag.Int64("warmup", 300_000, "warmup instructions per core")
		seed         = flag.Uint64("seed", 1, "workload seed")
		noskip       = flag.Bool("noskip", false, "disable event-driven cycle skipping in both record and replay (identical results, slower runs)")
		par          = flag.Int("par", -1, "worker shares for parallel-in-time channel ticking during -replay (results are identical; -1 = auto, 0 = sequential)")
		seq          = flag.Bool("seq", false, "force sequential channel ticking (same as -par 0)")
		httpAddr     = flag.String("http", "", "serve pprof introspection on this address (e.g. :6060)")

		pdPolicyName = flag.String("pd-policy", "immediate", "power-down entry policy: immediate | none | timeout | queue")
		pdTimeout    = flag.Int64("pd-timeout", 200, "idle memory cycles before power-down entry (timeout/queue policies)")
		srTimeout    = flag.Int64("sr-timeout", 0, "idle memory cycles before self-refresh entry (0 = never)")
		pdSlow       = flag.Bool("pd-slow", false, "use slow-exit (DLL-off) precharge power-down")
		apd          = flag.Bool("apd", false, "allow active power-down (CKE low with banks open)")
		refModeName  = flag.String("refresh-mode", "allbank", "refresh management: allbank | perbank | elastic")
	)
	flag.Parse()

	pdPolicy, err := pradram.ParsePDPolicy(*pdPolicyName)
	if err != nil {
		fatal(err)
	}
	refMode, err := pradram.ParseRefreshMode(*refModeName)
	if err != nil {
		fatal(err)
	}
	// lowPower is the power-management configuration both the record and
	// replay paths apply — the recorded trace's timing and every replay's
	// scheduling honour the same FSMs.
	lowPower := lowPowerFlags{
		policy: pdPolicy, pdTimeout: *pdTimeout, srTimeout: *srTimeout,
		slowExit: *pdSlow, apd: *apd, refMode: refMode,
	}

	if *httpAddr != "" {
		srv := obs.NewServer()
		srv.Publish("build", func() any { return pradram.BuildInfo() })
		go func() {
			if err := srv.ListenAndServe(*httpAddr); err != nil {
				fmt.Fprintln(os.Stderr, "pratrace: http:", err)
			}
		}()
	}

	switch {
	case *record != "":
		if err := doRecord(*record, *workloadName, *instr, *warmup, *seed, *noskip, *v1, lowPower); err != nil {
			fatal(err)
		}
	case *info != "":
		if err := doInfo(*info); err != nil {
			fatal(err)
		}
	case *replay != "":
		// Replays run one at a time (no outer pool), so auto mode gives
		// the controller every core.
		shares := *par
		if *seq {
			shares = 0
		} else if shares < 0 {
			shares = pradram.AutoPar(1)
		}
		if err := doReplay(*replay, *schemeName, *policyName, *compare, *noskip, shares, lowPower); err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "pratrace: need -record FILE, -replay FILE, or -info FILE")
		os.Exit(2)
	}
}

// lowPowerFlags carries the power-down and refresh-management flags to the
// record and replay paths.
type lowPowerFlags struct {
	policy               pradram.PDPolicy
	pdTimeout, srTimeout int64
	slowExit, apd        bool
	refMode              pradram.RefreshMode
}

func (l lowPowerFlags) applySim(cfg *pradram.Config) {
	cfg.PDPolicy = l.policy
	cfg.PDTimeout = l.pdTimeout
	cfg.SRTimeout = l.srTimeout
	cfg.PDSlowExit = l.slowExit
	cfg.APD = l.apd
	cfg.RefreshMode = l.refMode
}

func (l lowPowerFlags) applyCtrl(cfg *memctrl.Config) {
	cfg.PDPolicy = l.policy
	cfg.PDTimeout = l.pdTimeout
	cfg.SRTimeout = l.srTimeout
	cfg.PDSlowExit = l.slowExit
	cfg.APD = l.apd
	cfg.RefreshMode = l.refMode
}

func doRecord(path, workloadName string, instr, warmup int64, seed uint64, noskip, v1 bool, lp lowPowerFlags) error {
	cfg := pradram.DefaultConfig(workloadName)
	cfg.InstrPerCore = instr
	cfg.WarmupPerCore = warmup
	cfg.Seed = seed
	cfg.Capture = true
	cfg.NoSkip = noskip
	lp.applySim(&cfg)
	sys, err := sim.New(cfg)
	if err != nil {
		return err
	}
	res, err := sys.Run()
	if err != nil {
		return err
	}
	tr := sys.Trace()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	save, format := tr.SaveV2, "v2"
	if v1 {
		save, format = tr.Save, "v1"
	}
	if err := save(f); err != nil {
		return err
	}
	fmt.Printf("recorded %d requests (%d reads, %d writes) from %s over %d cycles -> %s (%s)\n",
		tr.Len(), res.Ctrl.ReadsServed, res.Ctrl.WritesServed, workloadName, res.Cycles, path, format)
	return f.Sync()
}

// doInfo prints a trace file's header and per-chunk stats. For v2 this
// reads only the footer index — constant work regardless of trace size;
// v1 files have no index, so their records are scanned (not materialized)
// for the same totals.
func doInfo(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	info, err := trace.ReadInfo(f, st.Size())
	if err != nil {
		var scanErr error
		if info, scanErr = scanV1Info(f); scanErr != nil {
			return fmt.Errorf("%w (and not a readable v1 trace: %v)", err, scanErr)
		}
	}
	fmt.Printf("%s: format v%d, %d bytes\n", path, info.Version, st.Size())
	fmt.Printf("  records: %d (%d reads, %d writes)\n", info.Records, info.Records-info.Writes, info.Writes)
	fmt.Printf("  cycles:  %d .. %d (span %d)\n", info.FirstAt, info.LastAt, info.LastAt-info.FirstAt)
	if info.Version == 2 {
		fmt.Printf("  chunks:  %d\n", len(info.Chunks))
		table := stats.NewTable("chunk", "offset", "bytes", "records", "writes", "first cycle", "span")
		for i, c := range info.Chunks {
			table.Row(i, c.Offset, c.Bytes, c.Count, c.Writes, c.FirstAt, c.LastAt-c.FirstAt)
		}
		fmt.Print(table.String())
	}
	return nil
}

// scanV1Info decodes a v1 trace sequentially to produce the same summary
// the v2 footer stores.
func scanV1Info(f *os.File) (*trace.Info, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	s, err := trace.Open(f)
	if err != nil {
		return nil, err
	}
	info := &trace.Info{Version: 1}
	var rec trace.Record
	for s.Next(&rec) {
		if info.Records == 0 {
			info.FirstAt = rec.At
		}
		info.LastAt = rec.At
		info.Records++
		if rec.Write {
			info.Writes++
		}
	}
	if err := s.Err(); err != nil {
		return nil, err
	}
	return info, nil
}

func doReplay(path, schemeName, policyName string, compare, noskip bool, par int, lp lowPowerFlags) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	// Replays stream records straight off the file; each pass re-opens a
	// decoding stream at the start, so -compare never holds the trace in
	// memory either.
	openStream := func() (trace.Stream, error) {
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return nil, err
		}
		return trace.Open(f)
	}
	s, err := openStream()
	if err != nil {
		return err
	}
	count := int64(-1)
	if sz, ok := s.(interface{ Remaining() int64 }); ok {
		count = sz.Remaining()
	} else if st, err := f.Stat(); err == nil {
		if info, err := trace.ReadInfo(f, st.Size()); err == nil {
			count = info.Records
		}
	}
	if count >= 0 {
		fmt.Printf("trace %s: %d requests\n\n", path, count)
	} else {
		fmt.Printf("trace %s\n\n", path)
	}

	replayOne := func(s memctrl.Scheme, p memctrl.Policy) (trace.ReplayResult, error) {
		cfg := memctrl.DefaultConfig()
		cfg.Scheme = s
		cfg.Policy = p
		if p == memctrl.RestrictedClose {
			cfg.Mapping = memctrl.LineInterleaved
		}
		lp.applyCtrl(&cfg)
		stream, err := openStream()
		if err != nil {
			return trace.ReplayResult{}, err
		}
		return trace.ReplayStream(stream, cfg, trace.ReplayOpts{NoSkip: noskip, Parallel: par})
	}

	policy, err := pradram.ParsePolicy(policyName)
	if err != nil {
		return err
	}
	table := stats.NewTable("scheme", "cycles", "power mW", "avg gran", "read ns", "vs baseline")
	addRow := func(name string, r trace.ReplayResult, base *trace.ReplayResult) {
		rel := ""
		if base != nil && base.AvgPowerMW() > 0 {
			rel = fmt.Sprintf("%.3f", r.AvgPowerMW()/base.AvgPowerMW())
		}
		table.Row(name, r.Cycles, r.AvgPowerMW(), fmt.Sprintf("%.2f/8", r.Dev.AvgGranularity()), r.AvgReadNs, rel)
	}

	if !compare {
		scheme, err := pradram.ParseScheme(schemeName)
		if err != nil {
			return err
		}
		res, err := replayOne(scheme, policy)
		if err != nil {
			return err
		}
		addRow(scheme.String(), res, nil)
		fmt.Print(table.String())
		return nil
	}
	var base *trace.ReplayResult
	for _, s := range memctrl.Schemes() {
		res, err := replayOne(s, policy)
		if err != nil {
			return err
		}
		if base == nil {
			b := res
			base = &b
		}
		addRow(s.String(), res, base)
	}
	fmt.Print(table.String())
	fmt.Println("\nNote: replays are open-loop (arrival times fixed), so queueing delay is")
	fmt.Println("amplified relative to the closed-loop full-system simulation.")
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pratrace:", err)
	os.Exit(1)
}

// Command pratrace records DRAM request traces from full-system runs and
// replays them under different schemes — the fast what-if path: a replay
// skips the CPU and cache layers entirely and re-schedules the identical
// request stream on a fresh memory controller.
//
// Usage:
//
//	pratrace -record gups.trace -workload GUPS -instr 200000
//	pratrace -replay gups.trace -scheme pra
//	pratrace -replay gups.trace -compare          # all schemes side by side
//
// Replays on multi-channel controllers tick their channel partitions
// concurrently by default (parallel-in-time, DESIGN.md §4i) with results
// bit-identical to the sequential loop; -par N forces N worker shares,
// -seq forces sequential ticking.
package main

import (
	"flag"
	"fmt"
	"os"

	"pradram"
	"pradram/internal/memctrl"
	"pradram/internal/obs"
	"pradram/internal/sim"
	"pradram/internal/stats"
	"pradram/internal/trace"
)

func main() {
	var (
		record       = flag.String("record", "", "record a trace from -workload into this file")
		replay       = flag.String("replay", "", "replay the trace in this file")
		workloadName = flag.String("workload", "GUPS", "workload to record")
		schemeName   = flag.String("scheme", "baseline", "scheme for -replay")
		policyName   = flag.String("policy", "relaxed", "policy for -replay")
		compare      = flag.Bool("compare", false, "replay under every scheme")
		instr        = flag.Int64("instr", 200_000, "instructions per core to record")
		warmup       = flag.Int64("warmup", 300_000, "warmup instructions per core")
		seed         = flag.Uint64("seed", 1, "workload seed")
		noskip       = flag.Bool("noskip", false, "disable event-driven cycle skipping in both record and replay (identical results, slower runs)")
		par          = flag.Int("par", -1, "worker shares for parallel-in-time channel ticking during -replay (results are identical; -1 = auto, 0 = sequential)")
		seq          = flag.Bool("seq", false, "force sequential channel ticking (same as -par 0)")
		httpAddr     = flag.String("http", "", "serve pprof introspection on this address (e.g. :6060)")

		pdPolicyName = flag.String("pd-policy", "immediate", "power-down entry policy: immediate | none | timeout | queue")
		pdTimeout    = flag.Int64("pd-timeout", 200, "idle memory cycles before power-down entry (timeout/queue policies)")
		srTimeout    = flag.Int64("sr-timeout", 0, "idle memory cycles before self-refresh entry (0 = never)")
		pdSlow       = flag.Bool("pd-slow", false, "use slow-exit (DLL-off) precharge power-down")
		apd          = flag.Bool("apd", false, "allow active power-down (CKE low with banks open)")
		refModeName  = flag.String("refresh-mode", "allbank", "refresh management: allbank | perbank | elastic")
	)
	flag.Parse()

	pdPolicy, err := pradram.ParsePDPolicy(*pdPolicyName)
	if err != nil {
		fatal(err)
	}
	refMode, err := pradram.ParseRefreshMode(*refModeName)
	if err != nil {
		fatal(err)
	}
	// lowPower is the power-management configuration both the record and
	// replay paths apply — the recorded trace's timing and every replay's
	// scheduling honour the same FSMs.
	lowPower := lowPowerFlags{
		policy: pdPolicy, pdTimeout: *pdTimeout, srTimeout: *srTimeout,
		slowExit: *pdSlow, apd: *apd, refMode: refMode,
	}

	if *httpAddr != "" {
		srv := obs.NewServer()
		srv.Publish("build", func() any { return pradram.BuildInfo() })
		go func() {
			if err := srv.ListenAndServe(*httpAddr); err != nil {
				fmt.Fprintln(os.Stderr, "pratrace: http:", err)
			}
		}()
	}

	switch {
	case *record != "":
		if err := doRecord(*record, *workloadName, *instr, *warmup, *seed, *noskip, lowPower); err != nil {
			fatal(err)
		}
	case *replay != "":
		// Replays run one at a time (no outer pool), so auto mode gives
		// the controller every core.
		shares := *par
		if *seq {
			shares = 0
		} else if shares < 0 {
			shares = pradram.AutoPar(1)
		}
		if err := doReplay(*replay, *schemeName, *policyName, *compare, *noskip, shares, lowPower); err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "pratrace: need -record FILE or -replay FILE")
		os.Exit(2)
	}
}

// lowPowerFlags carries the power-down and refresh-management flags to the
// record and replay paths.
type lowPowerFlags struct {
	policy               pradram.PDPolicy
	pdTimeout, srTimeout int64
	slowExit, apd        bool
	refMode              pradram.RefreshMode
}

func (l lowPowerFlags) applySim(cfg *pradram.Config) {
	cfg.PDPolicy = l.policy
	cfg.PDTimeout = l.pdTimeout
	cfg.SRTimeout = l.srTimeout
	cfg.PDSlowExit = l.slowExit
	cfg.APD = l.apd
	cfg.RefreshMode = l.refMode
}

func (l lowPowerFlags) applyCtrl(cfg *memctrl.Config) {
	cfg.PDPolicy = l.policy
	cfg.PDTimeout = l.pdTimeout
	cfg.SRTimeout = l.srTimeout
	cfg.PDSlowExit = l.slowExit
	cfg.APD = l.apd
	cfg.RefreshMode = l.refMode
}

func doRecord(path, workloadName string, instr, warmup int64, seed uint64, noskip bool, lp lowPowerFlags) error {
	cfg := pradram.DefaultConfig(workloadName)
	cfg.InstrPerCore = instr
	cfg.WarmupPerCore = warmup
	cfg.Seed = seed
	cfg.Capture = true
	cfg.NoSkip = noskip
	lp.applySim(&cfg)
	sys, err := sim.New(cfg)
	if err != nil {
		return err
	}
	res, err := sys.Run()
	if err != nil {
		return err
	}
	tr := sys.Trace()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tr.Save(f); err != nil {
		return err
	}
	fmt.Printf("recorded %d requests (%d reads, %d writes) from %s over %d cycles -> %s\n",
		tr.Len(), res.Ctrl.ReadsServed, res.Ctrl.WritesServed, workloadName, res.Cycles, path)
	return f.Sync()
}

func doReplay(path, schemeName, policyName string, compare, noskip bool, par int, lp lowPowerFlags) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.Load(f)
	if err != nil {
		return err
	}
	fmt.Printf("trace %s: %d requests\n\n", path, tr.Len())

	replayOne := func(s memctrl.Scheme, p memctrl.Policy) (trace.ReplayResult, error) {
		cfg := memctrl.DefaultConfig()
		cfg.Scheme = s
		cfg.Policy = p
		if p == memctrl.RestrictedClose {
			cfg.Mapping = memctrl.LineInterleaved
		}
		lp.applyCtrl(&cfg)
		return trace.ReplayWith(tr, cfg, trace.ReplayOpts{NoSkip: noskip, Parallel: par})
	}

	policy, err := pradram.ParsePolicy(policyName)
	if err != nil {
		return err
	}
	table := stats.NewTable("scheme", "cycles", "power mW", "avg gran", "read ns", "vs baseline")
	addRow := func(name string, r trace.ReplayResult, base *trace.ReplayResult) {
		rel := ""
		if base != nil && base.AvgPowerMW() > 0 {
			rel = fmt.Sprintf("%.3f", r.AvgPowerMW()/base.AvgPowerMW())
		}
		table.Row(name, r.Cycles, r.AvgPowerMW(), fmt.Sprintf("%.2f/8", r.Dev.AvgGranularity()), r.AvgReadNs, rel)
	}

	if !compare {
		scheme, err := pradram.ParseScheme(schemeName)
		if err != nil {
			return err
		}
		res, err := replayOne(scheme, policy)
		if err != nil {
			return err
		}
		addRow(scheme.String(), res, nil)
		fmt.Print(table.String())
		return nil
	}
	var base *trace.ReplayResult
	for _, s := range memctrl.Schemes() {
		res, err := replayOne(s, policy)
		if err != nil {
			return err
		}
		if base == nil {
			b := res
			base = &b
		}
		addRow(s.String(), res, base)
	}
	fmt.Print(table.String())
	fmt.Println("\nNote: replays are open-loop (arrival times fixed), so queueing delay is")
	fmt.Println("amplified relative to the closed-loop full-system simulation.")
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pratrace:", err)
	os.Exit(1)
}

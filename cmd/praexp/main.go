// Command praexp regenerates the tables and figures of "Partial Row
// Activation for Low-Power DRAM System" (HPCA 2017) on the Go
// reproduction. Each experiment prints a plain-text table with the paper's
// published numbers alongside for comparison.
//
// Usage:
//
//	praexp -exp fig12              # one experiment
//	praexp -exp all                # everything, in paper order
//	praexp -list                   # enumerate experiment IDs
//	praexp -exp fig13 -instr 2000000 -warmup 1000000
//	praexp -exp all -j 8           # 8 simulations in flight
//	praexp -exp all -cache ~/.cache/pradram   # reuse results across runs
//	praexp -exp all -ckpt-dir ~/.cache/pradram-ckpt   # reuse warmups too
//	praexp -exp all -http :6060    # live progress JSON + pprof
//	praexp -exp tensor             # analytic vs measured tensor-stream ACT rates
//
// Beyond the paper's artifacts, extension experiments (DESIGN.md §4b-§4j)
// cover power-down/refresh sweeps, RowHammer mitigation overhead, latency
// attribution, and the tensor loop-permutation locality study; -list
// enumerates all of them.
//
// While a campaign runs, a progress line (runs done / in flight / ETA)
// refreshes on stderr about once a second (-q silences it); tables print
// to stdout only, so redirected output is unchanged.
//
// Simulation-backed experiments share a memoized run cache within one
// invocation, so "-exp all" pays for each (workload, scheme, policy)
// configuration once. Each experiment's configuration set is precomputed
// across a -j-sized worker pool before its table is formatted; the tables
// on stdout are byte-identical for every -j (timings go to stderr).
// With -cache, results also persist on disk keyed by configuration,
// budget, and model version, so repeated invocations skip simulation.
//
// Runs that still have to simulate reuse warmup checkpoints (DESIGN.md
// §4e): configurations sharing a warmup fingerprint warm once and restore
// the snapshot thereafter, with bit-identical results. -ckpt-dir persists
// the snapshots across invocations; -nockpt disables reuse entirely. The
// closing summary and the -http /vars/checkpoints endpoint report how many
// warmups were reused versus paid cold.
//
// Campaign parallelism composes two levels (DESIGN.md §4i): the -j pool
// fans independent simulations out, and within each simulation the
// memory controller can tick its channel partitions concurrently
// (parallel-in-time, bit-identical to sequential). The inner level is
// sized automatically as GOMAXPROCS/-j so the product never
// oversubscribes the machine — a campaign that saturates it with -j
// ticks each run sequentially, exactly as before. -par N forces N
// worker shares per run, -seq forces sequential ticking; tables are
// byte-identical for every choice.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"pradram/internal/obs"
	"pradram/internal/sim"
)

func main() {
	var (
		expID    = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		instr    = flag.Int64("instr", 400_000, "measured instructions per core")
		warmup   = flag.Int64("warmup", 400_000, "warmup instructions per core")
		seed     = flag.Uint64("seed", 1, "workload seed")
		workers  = flag.Int("j", runtime.GOMAXPROCS(0), "max simulations in flight (worker pool size)")
		par      = flag.Int("par", -1, "worker shares for parallel-in-time channel ticking per run (results are identical; -1 = auto-size against -j, 0 = sequential)")
		seq      = flag.Bool("seq", false, "force sequential channel ticking (same as -par 0)")
		cacheDir = flag.String("cache", "", "on-disk result cache directory (empty = disabled)")
		quiet    = flag.Bool("q", false, "suppress the stderr progress line")
		noskip   = flag.Bool("noskip", false, "disable event-driven cycle skipping (identical results, slower campaign)")
		httpAddr = flag.String("http", "", "serve live campaign progress and pprof on this address (e.g. :6060)")
		ckptDir  = flag.String("ckpt-dir", "", "persist warmup checkpoints in this directory so later invocations restore instead of re-warming (empty = in-memory reuse only)")
		nockpt   = flag.Bool("nockpt", false, "disable warmup checkpoint reuse (identical results, every run warms from scratch)")
	)
	flag.Parse()

	if *list {
		for _, e := range sim.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	// A full campaign is minutes of silence without feedback: the progress
	// tracker feeds a once-a-second stderr line (runs done / in flight /
	// ETA) and, with -http, a live JSON endpoint. Tables still go to
	// stdout only, so redirected output is unchanged.
	prog := obs.NewProgress()
	stopReporter := func() {}
	if !*quiet {
		stopReporter = prog.Reporter(os.Stderr, time.Second, "praexp")
	}
	defer stopReporter()

	// The inner (per-run) parallelism budget divides GOMAXPROCS by the
	// outer pool so the two levels compose without oversubscription.
	shares := *par
	if *seq {
		shares = 0
	} else if shares < 0 {
		shares = sim.AutoPar(*workers)
	}

	runner := sim.NewRunner(sim.ExpOptions{
		Instr: *instr, Warmup: *warmup, Seed: *seed,
		Workers: *workers, CacheDir: *cacheDir,
		Progress: prog, NoSkip: *noskip, Par: shares,
		CkptDir: *ckptDir, NoCheckpoint: *nockpt,
	})

	if *httpAddr != "" {
		srv := obs.NewServer()
		srv.Publish("build", func() any { return sim.BuildInfo() })
		srv.Publish("progress", func() any { return prog.Snapshot() })
		srv.Publish("checkpoints", func() any {
			return map[string]int64{
				"hits":   runner.CheckpointHits(),
				"misses": runner.CheckpointMisses(),
			}
		})
		go func() {
			if err := srv.ListenAndServe(*httpAddr); err != nil {
				fmt.Fprintln(os.Stderr, "praexp: http:", err)
			}
		}()
	}

	run := func(e sim.Experiment) error {
		start := time.Now()
		out, err := runner.RunExperiment(e)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Printf("== %s: %s ==\n%s\n", e.ID, e.Title, out)
		fmt.Fprintf(os.Stderr, "(%s: %v)\n", e.ID, time.Since(start).Round(time.Millisecond))
		return nil
	}

	start := time.Now()
	if *expID == "all" {
		// Warm the memo for the whole campaign in one wave, so the pool
		// parallelizes across experiment boundaries too.
		if err := runner.PrecomputeExperiments(sim.Experiments()); err != nil {
			fmt.Fprintln(os.Stderr, "praexp:", err)
			os.Exit(1)
		}
		for _, e := range sim.Experiments() {
			if err := run(e); err != nil {
				fmt.Fprintln(os.Stderr, "praexp:", err)
				os.Exit(1)
			}
		}
	} else {
		e, err := sim.ExperimentByID(*expID)
		if err != nil {
			fmt.Fprintln(os.Stderr, "praexp:", err)
			os.Exit(1)
		}
		if err := run(e); err != nil {
			fmt.Fprintln(os.Stderr, "praexp:", err)
			os.Exit(1)
		}
	}
	stopReporter()
	fmt.Fprintf(os.Stderr, "(total: %v, %d simulations run, %d disk-cache hits, %d warmups reused / %d cold, -j %d)\n",
		time.Since(start).Round(time.Millisecond), runner.Simulations(), runner.DiskHits(),
		runner.CheckpointHits(), runner.CheckpointMisses(), *workers)
}

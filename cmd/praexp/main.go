// Command praexp regenerates the tables and figures of "Partial Row
// Activation for Low-Power DRAM System" (HPCA 2017) on the Go
// reproduction. Each experiment prints a plain-text table with the paper's
// published numbers alongside for comparison.
//
// Usage:
//
//	praexp -exp fig12              # one experiment
//	praexp -exp all                # everything, in paper order
//	praexp -list                   # enumerate experiment IDs
//	praexp -exp fig13 -instr 2000000 -warmup 1000000
//
// Simulation-backed experiments share a memoized run cache within one
// invocation, so "-exp all" pays for each (workload, scheme, policy)
// configuration once.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pradram/internal/sim"
)

func main() {
	var (
		expID  = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		list   = flag.Bool("list", false, "list experiment ids and exit")
		instr  = flag.Int64("instr", 400_000, "measured instructions per core")
		warmup = flag.Int64("warmup", 400_000, "warmup instructions per core")
		seed   = flag.Uint64("seed", 1, "workload seed")
	)
	flag.Parse()

	if *list {
		for _, e := range sim.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	runner := sim.NewRunner(sim.ExpOptions{Instr: *instr, Warmup: *warmup, Seed: *seed})

	run := func(e sim.Experiment) error {
		start := time.Now()
		out, err := e.Run(runner)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Printf("== %s: %s ==\n%s(%s, %v)\n\n", e.ID, e.Title, out, e.ID, time.Since(start).Round(time.Millisecond))
		return nil
	}

	if *expID == "all" {
		for _, e := range sim.Experiments() {
			if err := run(e); err != nil {
				fmt.Fprintln(os.Stderr, "praexp:", err)
				os.Exit(1)
			}
		}
		return
	}
	e, err := sim.ExperimentByID(*expID)
	if err != nil {
		fmt.Fprintln(os.Stderr, "praexp:", err)
		os.Exit(1)
	}
	if err := run(e); err != nil {
		fmt.Fprintln(os.Stderr, "praexp:", err)
		os.Exit(1)
	}
}
